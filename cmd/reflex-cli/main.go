// Command reflex-cli is a small client for a running reflex-server:
// register tenants, read and write blocks, and run a quick latency probe.
//
// Examples:
//
//	reflex-cli -addr 127.0.0.1:7700 register -best-effort -writable
//	reflex-cli -addr 127.0.0.1:7700 write -handle 1 -lba 0 -data "hello flash"
//	reflex-cli -addr 127.0.0.1:7700 read -handle 1 -lba 0 -len 512
//	reflex-cli -addr 127.0.0.1:7700 bench -handle 1 -n 10000 -depth 8
//	reflex-cli -addr 127.0.0.1:7700 ring
//	reflex-cli top -cluster http://127.0.0.1:9090/cluster
//	reflex-cli top -nodes node0=http://h0:9090/snapshot,node1=http://h1:9090/snapshot
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"sort"
	"strings"
	"time"

	"github.com/reflex-go/reflex/internal/client"
	"github.com/reflex-go/reflex/internal/obs"
	"github.com/reflex-go/reflex/internal/protocol"
	"github.com/reflex-go/reflex/internal/shard"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7700", "server address")
	flag.Parse()
	if flag.NArg() < 1 {
		fmt.Fprintln(os.Stderr, "usage: reflex-cli -addr HOST:PORT {register|unregister|read|write|barrier|stats|bench|ring|vol|top} [flags]")
		os.Exit(2)
	}

	// top talks HTTP to the telemetry plane, not the data-plane protocol
	// — handle it before dialing the server.
	if flag.Arg(0) == "top" {
		cmdTop(flag.Args()[1:])
		return
	}

	cl, err := client.Dial(*addr)
	if err != nil {
		log.Fatal(err)
	}
	defer cl.Close()

	cmd := flag.Arg(0)
	args := flag.Args()[1:]
	switch cmd {
	case "register":
		cmdRegister(cl, args)
	case "unregister":
		cmdUnregister(cl, args)
	case "read":
		cmdRead(cl, args)
	case "write":
		cmdWrite(cl, args)
	case "bench":
		cmdBench(cl, args)
	case "barrier":
		cmdBarrier(cl, args)
	case "stats":
		cmdStats(cl, args)
	case "ring":
		cmdRing(cl, args)
	case "vol":
		cmdVol(cl, *addr, args)
	default:
		log.Fatalf("unknown command %q", cmd)
	}
}

// cmdTop renders a live fleet dashboard from the telemetry plane:
// either a /cluster aggregation endpoint (-cluster URL) or a set of
// per-node /snapshot endpoints the CLI aggregates itself (-nodes).
func cmdTop(args []string) {
	fs := flag.NewFlagSet("top", flag.ExitOnError)
	clusterURL := fs.String("cluster", "", "a /cluster aggregation endpoint to render")
	nodes := fs.String("nodes", "", "comma-separated name=snapshot-URL pairs to aggregate locally")
	interval := fs.Duration("interval", 2*time.Second, "refresh interval")
	once := fs.Bool("once", false, "render one frame and exit (no screen clearing)")
	fs.Parse(args)

	var poll func() (*obs.ClusterView, error)
	switch {
	case *clusterURL != "":
		httpc := &http.Client{Timeout: 10 * time.Second}
		poll = func() (*obs.ClusterView, error) {
			resp, err := httpc.Get(*clusterURL)
			if err != nil {
				return nil, err
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				return nil, fmt.Errorf("%s: %s", *clusterURL, resp.Status)
			}
			var v obs.ClusterView
			if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
				return nil, err
			}
			return &v, nil
		}
	case *nodes != "":
		var targets []obs.FleetNode
		for _, pair := range strings.Split(*nodes, ",") {
			name, url, ok := strings.Cut(strings.TrimSpace(pair), "=")
			if !ok || name == "" || url == "" {
				log.Fatalf("bad -nodes entry %q (want name=url)", pair)
			}
			targets = append(targets, obs.FleetNode{Name: name, URL: url})
		}
		fleet := obs.NewFleet(targets)
		poll = func() (*obs.ClusterView, error) { return fleet.Poll(), nil }
	default:
		log.Fatal("top: need -cluster URL or -nodes name=url,...")
	}

	for {
		view, err := poll()
		if err != nil {
			log.Fatal(err)
		}
		if !*once {
			fmt.Print("\x1b[2J\x1b[H") // clear screen, home cursor
		}
		renderTop(view)
		if *once {
			return
		}
		time.Sleep(*interval)
	}
}

// renderTop prints one dashboard frame.
func renderTop(v *obs.ClusterView) {
	fmt.Printf("reflex top — %s  (rates over %.1fs)\n\n",
		time.Now().Format("15:04:05"), float64(v.IntervalNS)/1e9)
	fmt.Printf("%-12s %5s %4s %6s %7s %10s %10s %8s %8s %9s %6s\n",
		"NODE", "EPOCH", "MAP", "CONNS", "TENANTS", "CLIENT/S", "INTERNAL/S",
		"REDIR/S", "SHED/S", "ACKLAG95", "PEND")
	for _, n := range v.Nodes {
		if n.Err != "" {
			fmt.Printf("%-12s DOWN: %s\n", n.Name, n.Err)
			continue
		}
		role := ""
		if n.Backup {
			role = " (backup)"
		}
		if n.Fenced {
			role = " (fenced)"
		}
		fmt.Printf("%-12s %5d %4d %6d %7d %10.0f %10.0f %8.1f %8.1f %9s %6d%s\n",
			n.Name, n.Epoch, n.MapVersion, n.Conns, n.Tenants,
			n.ClientIOPS, n.InternalIOPS, n.RedirectsPS, n.ShedPS,
			time.Duration(n.AckLagP95NS).Round(time.Microsecond), n.MigrPending, role)
	}
	renderCtrl(v.Ctrl)
	if len(v.Shards) > 0 {
		fmt.Printf("\n%-8s %12s %12s  %s\n", "SHARD", "READ/S", "WRITE/S", "SERVING NODES")
		for _, sh := range v.Shards {
			fmt.Printf("%-8d %12.0f %12.0f  %s\n",
				sh.Shard, sh.ReadIOPS, sh.WriteIOPS, strings.Join(sh.Nodes, ","))
		}
	}
	if len(v.Tenants) > 0 {
		fmt.Printf("\n%-12s %8s %10s\n", "NODE", "TENANT", "SLO BURN")
		for _, t := range v.Tenants {
			marker := ""
			if t.Burn > 1 {
				marker = "  << violating"
			}
			fmt.Printf("%-12s %8d %10.2f%s\n", t.Node, t.Tenant, t.Burn, marker)
		}
	}
}

// renderCtrl prints the control-plane health table: who leads at what
// term, how far the committed log reaches, and (from the leader's view)
// how many committed entries each follower still lacks.
func renderCtrl(ctrl []obs.CtrlView) {
	if len(ctrl) == 0 {
		return
	}
	fmt.Printf("\n%-12s %-10s %5s %6s %7s %5s %6s  %s\n",
		"CTRL", "ROLE", "TERM", "COMMIT", "APPLIED", "MAP", "LEASE", "LEADER / FOLLOWER LAG")
	for _, c := range ctrl {
		lease := "-"
		if c.LeaseValid {
			lease = "held"
		}
		detail := c.Leader
		if len(c.PeerLag) > 0 {
			peers := make([]string, 0, len(c.PeerLag))
			for p := range c.PeerLag {
				peers = append(peers, p)
			}
			sort.Strings(peers)
			parts := make([]string, 0, len(peers))
			for _, p := range peers {
				parts = append(parts, fmt.Sprintf("%s lag=%d", p, c.PeerLag[p]))
			}
			detail = strings.Join(parts, "  ")
		}
		fmt.Printf("%-12s %-10s %5d %6d %7d %5d %6s  %s\n",
			c.Node, c.Role, c.Term, c.CommitIndex, c.LastIndex,
			c.MapVersion, lease, detail)
	}
}

func cmdBarrier(cl *client.Client, args []string) {
	fs := flag.NewFlagSet("barrier", flag.ExitOnError)
	handle := fs.Uint("handle", 0, "tenant handle")
	fs.Parse(args)
	start := time.Now()
	if err := cl.Barrier(uint16(*handle)); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("barrier completed in %v (all prior I/O ordered before it)\n",
		time.Since(start).Round(time.Microsecond))
}

func cmdStats(cl *client.Client, args []string) {
	fs := flag.NewFlagSet("stats", flag.ExitOnError)
	handle := fs.Uint("handle", 0, "tenant handle")
	fs.Parse(args)
	st, err := cl.Stats(uint16(*handle))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("tenant %d:\n", *handle)
	fmt.Printf("  enqueued:         %d\n", st.Enqueued)
	fmt.Printf("  submitted:        %d\n", st.Submitted)
	fmt.Printf("  submitted tokens: %.1f\n", float64(st.SubmittedTokens)/1000)
	fmt.Printf("  queue length:     %d\n", st.QueueLen)
	fmt.Printf("  token balance:    %.1f\n", float64(st.Tokens)/1000)
	fmt.Printf("  neg-limit hits:   %d\n", st.NegLimitHits)
	fmt.Printf("  donated tokens:   %.1f\n", float64(st.Donated)/1000)
	fmt.Printf("  claimed tokens:   %.1f\n", float64(st.Claimed)/1000)
}

// cmdRing fetches the node's installed shard map over OpShardMap and
// prints the cluster view it encodes: map version, per-node membership
// state and shard ownership, and any open dual-ownership migration
// windows.
func cmdRing(cl *client.Client, args []string) {
	fs := flag.NewFlagSet("ring", flag.ExitOnError)
	clusterURL := fs.String("cluster", "", "also render control-plane health from this /cluster endpoint")
	fs.Parse(args)

	version, raw, err := cl.FetchShardMap()
	if err != nil {
		log.Fatal(err)
	}
	if version == 0 || len(raw) == 0 {
		fmt.Println("no shard map installed (standalone node, or coordinator has not run InstallAll)")
		return
	}
	m, err := shard.Unmarshal(raw)
	if err != nil {
		log.Fatalf("server returned an unparseable shard map: %v", err)
	}

	fmt.Printf("shard map v%d: %d shards x %d blocks (%.1f MiB per shard)\n",
		m.Version, m.NumShards(), m.ShardBlocks,
		float64(m.ShardBlocks)*protocol.BlockSize/(1<<20))

	owned := make([][]int, len(m.Nodes))
	unassigned := []int{}
	for s, o := range m.Assign {
		if o < 0 {
			unassigned = append(unassigned, s)
			continue
		}
		owned[o] = append(owned[o], s)
	}
	fmt.Println("nodes:")
	for i, n := range m.Nodes {
		fmt.Printf("  %-12s %-8s %-3d shards  %-24s %s\n",
			n.Name, n.State, len(owned[i]), shardRanges(owned[i]),
			strings.Join(n.Addrs, ","))
	}
	if len(unassigned) > 0 {
		fmt.Printf("  %-12s %-8s %-3d shards  %s\n",
			"(unassigned)", "-", len(unassigned), shardRanges(unassigned))
	}

	moving := false
	for s, dest := range m.Migrating {
		if dest < 0 {
			continue
		}
		if !moving {
			fmt.Println("migrating (dual-ownership windows):")
			moving = true
		}
		src := "(unassigned)"
		if o := m.Assign[s]; o >= 0 {
			src = m.Nodes[o].Name
		}
		fmt.Printf("  shard %d: %s -> %s\n", s, src, m.Nodes[dest].Name)
	}
	if !moving {
		fmt.Println("migrating: none")
	}

	// With a /cluster endpoint, show who is driving this map: the elected
	// coordinator, its term and commit index, and follower replication lag.
	if *clusterURL != "" {
		httpc := &http.Client{Timeout: 10 * time.Second}
		resp, err := httpc.Get(*clusterURL)
		if err != nil {
			log.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			log.Fatalf("%s: %s", *clusterURL, resp.Status)
		}
		var v obs.ClusterView
		if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
			log.Fatal(err)
		}
		if len(v.Ctrl) == 0 {
			fmt.Println("control plane: none (static coordinator)")
			return
		}
		renderCtrl(v.Ctrl)
	}
}

// shardRanges renders a sorted shard list compactly, e.g. "0-3,7,9-12".
func shardRanges(shards []int) string {
	if len(shards) == 0 {
		return "-"
	}
	var b strings.Builder
	for i := 0; i < len(shards); {
		j := i
		for j+1 < len(shards) && shards[j+1] == shards[j]+1 {
			j++
		}
		if b.Len() > 0 {
			b.WriteByte(',')
		}
		if j > i {
			fmt.Fprintf(&b, "%d-%d", shards[i], shards[j])
		} else {
			fmt.Fprintf(&b, "%d", shards[i])
		}
		i = j + 1
	}
	return b.String()
}

func cmdRegister(cl *client.Client, args []string) {
	fs := flag.NewFlagSet("register", flag.ExitOnError)
	be := fs.Bool("best-effort", false, "best-effort tenant (no SLO)")
	iops := fs.Int("iops", 10000, "LC tenant IOPS SLO")
	readPct := fs.Int("read-pct", 100, "LC tenant read percentage")
	latency := fs.Duration("latency", 500*time.Microsecond, "LC p95 latency SLO")
	writable := fs.Bool("writable", false, "grant write permission")
	first := fs.Uint64("first-lba", 0, "namespace start LBA (512B units)")
	count := fs.Uint64("lba-count", 0, "namespace length in LBAs (0 = whole device)")
	fs.Parse(args)

	h, err := cl.Register(protocol.Registration{
		BestEffort:  *be,
		ReadPercent: uint8(*readPct),
		IOPS:        uint32(*iops),
		LatencyP95:  uint64(latency.Nanoseconds()),
		FirstLBA:    uint32(*first),
		LBACount:    uint32(*count),
		Writable:    *writable,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("registered tenant handle=%d\n", h)
}

func cmdUnregister(cl *client.Client, args []string) {
	fs := flag.NewFlagSet("unregister", flag.ExitOnError)
	handle := fs.Uint("handle", 0, "tenant handle")
	fs.Parse(args)
	if err := cl.Unregister(uint16(*handle)); err != nil {
		log.Fatal(err)
	}
	fmt.Println("unregistered")
}

func cmdRead(cl *client.Client, args []string) {
	fs := flag.NewFlagSet("read", flag.ExitOnError)
	handle := fs.Uint("handle", 0, "tenant handle")
	lba := fs.Uint64("lba", 0, "logical block address (512B units)")
	n := fs.Int("len", 512, "bytes to read")
	raw := fs.Bool("raw", false, "write raw bytes to stdout")
	fs.Parse(args)

	data, err := cl.Read(uint16(*handle), uint32(*lba), *n)
	if err != nil {
		log.Fatal(err)
	}
	if *raw {
		os.Stdout.Write(data)
		return
	}
	fmt.Printf("%d bytes @ lba %d:\n%q\n", len(data), *lba, string(trimZeros(data)))
}

func trimZeros(b []byte) []byte {
	end := len(b)
	for end > 0 && b[end-1] == 0 {
		end--
	}
	return b[:end]
}

func cmdWrite(cl *client.Client, args []string) {
	fs := flag.NewFlagSet("write", flag.ExitOnError)
	handle := fs.Uint("handle", 0, "tenant handle")
	lba := fs.Uint64("lba", 0, "logical block address (512B units)")
	data := fs.String("data", "", "data to write (padded to a 512B block)")
	fs.Parse(args)

	buf := make([]byte, (len(*data)+511)/512*512)
	if len(buf) == 0 {
		buf = make([]byte, 512)
	}
	copy(buf, *data)
	if err := cl.Write(uint16(*handle), uint32(*lba), buf); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %d bytes @ lba %d\n", len(buf), *lba)
}

func cmdBench(cl *client.Client, args []string) {
	fs := flag.NewFlagSet("bench", flag.ExitOnError)
	handle := fs.Uint("handle", 0, "tenant handle")
	n := fs.Int("n", 10000, "operations")
	depth := fs.Int("depth", 8, "queue depth")
	size := fs.Int("size", 4096, "I/O size")
	writePct := fs.Int("write-pct", 0, "write percentage")
	span := fs.Uint64("span", 1<<16, "LBA span")
	fs.Parse(args)

	lat := make([]time.Duration, 0, *n)
	start := time.Now()
	sem := make(chan struct{}, *depth)
	done := make(chan time.Duration, *depth)
	issued, completed := 0, 0
	for completed < *n {
		for issued < *n && len(sem) < cap(sem) {
			sem <- struct{}{}
			lba := uint32(uint64(issued*8) % *span)
			t0 := time.Now()
			var call *client.Call
			var err error
			if issued%100 < *writePct {
				call, err = cl.GoWrite(uint16(*handle), lba, make([]byte, *size))
			} else {
				call, err = cl.GoRead(uint16(*handle), lba, *size)
			}
			if err != nil {
				log.Fatal(err)
			}
			go func() {
				<-call.Done
				if call.Err != nil {
					log.Fatal(call.Err)
				}
				done <- time.Since(t0)
			}()
			issued++
		}
		lat = append(lat, <-done)
		<-sem
		completed++
	}
	elapsed := time.Since(start)
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	p := func(q float64) time.Duration { return lat[int(q*float64(len(lat)-1))] }
	fmt.Printf("%d ops in %v: %.0f IOPS\n", *n, elapsed.Round(time.Millisecond),
		float64(*n)/elapsed.Seconds())
	fmt.Printf("latency p50=%v p95=%v p99=%v max=%v\n",
		p(0.50).Round(time.Microsecond), p(0.95).Round(time.Microsecond),
		p(0.99).Round(time.Microsecond), lat[len(lat)-1].Round(time.Microsecond))
}
