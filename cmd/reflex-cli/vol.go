package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"github.com/reflex-go/reflex/internal/client"
	"github.com/reflex-go/reflex/internal/protocol"
)

// cmdVol dispatches the volume-management subcommands (DESIGN.md §18):
//
//	reflex-cli vol list
//	reflex-cli vol create -name tenants/alpha -blocks 1048576
//	reflex-cli vol snap -name tenants/alpha
//	reflex-cli vol clone -source tenants/alpha -gen 3 -name tenants/alpha-restore
//	reflex-cli vol diff -name tenants/alpha -from 3
//	reflex-cli vol delete -name tenants/alpha-restore
//	reflex-cli vol restore -name tenants/alpha -from 0 -out image.bin
func cmdVol(cl *client.Client, addr string, args []string) {
	if len(args) < 1 {
		fmt.Fprintln(os.Stderr, "usage: reflex-cli vol {list|create|snap|clone|diff|delete|restore} [flags]")
		os.Exit(2)
	}
	sub, args := args[0], args[1:]
	switch sub {
	case "list":
		cmdVolList(cl, args)
	case "create":
		cmdVolCreate(cl, args)
	case "snap":
		cmdVolSnap(cl, args)
	case "clone":
		cmdVolClone(cl, args)
	case "diff":
		cmdVolDiff(cl, args)
	case "delete":
		cmdVolDelete(cl, args)
	case "restore":
		cmdVolRestore(addr, args)
	default:
		log.Fatalf("unknown vol subcommand %q", sub)
	}
}

func cmdVolList(cl *client.Client, args []string) {
	fs := flag.NewFlagSet("vol list", flag.ExitOnError)
	fs.Parse(args)
	vols, err := cl.VolList()
	if err != nil {
		log.Fatal(err)
	}
	if len(vols) == 0 {
		fmt.Println("no volumes (create one with: reflex-cli vol create -name NAME -blocks N)")
		return
	}
	fmt.Printf("%-24s %6s %10s %12s %12s %6s  %s\n",
		"NAME", "HANDLE", "GEN", "LOGICAL", "ALLOCATED", "SNAPS", "SNAPSHOT GENS")
	for _, v := range vols {
		snaps := "-"
		if len(v.Snaps) > 0 {
			snaps = fmt.Sprint(v.Snaps)
		}
		fmt.Printf("%-24s %6d %10d %9.1fMiB %9.1fMiB %6d  %s\n",
			v.Name, v.Handle, v.Gen,
			float64(v.Blocks)*protocol.BlockSize/(1<<20),
			float64(v.Extents)*float64(v.ExtentBlocks)*protocol.BlockSize/(1<<20),
			len(v.Snaps), snaps)
	}
}

func cmdVolCreate(cl *client.Client, args []string) {
	fs := flag.NewFlagSet("vol create", flag.ExitOnError)
	name := fs.String("name", "", "volume name")
	blocks := fs.Uint64("blocks", 0, "logical size in 512B blocks")
	fs.Parse(args)
	if *name == "" || *blocks == 0 {
		log.Fatal("vol create: need -name and -blocks")
	}
	h, err := cl.VolCreate(*name, *blocks)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("created volume %q handle=%d (%.1f MiB logical, thin)\n",
		*name, h, float64(*blocks)*protocol.BlockSize/(1<<20))
	fmt.Printf("bind a tenant with: reflex-cli register ... then OpenVolume(reg, %d) from the client library\n", h)
}

func cmdVolSnap(cl *client.Client, args []string) {
	fs := flag.NewFlagSet("vol snap", flag.ExitOnError)
	name := fs.String("name", "", "volume name")
	fs.Parse(args)
	if *name == "" {
		log.Fatal("vol snap: need -name")
	}
	start := time.Now()
	gen, err := cl.VolSnapshot(*name)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("snapshot %s@%d taken in %v\n", *name, gen,
		time.Since(start).Round(time.Microsecond))
}

func cmdVolClone(cl *client.Client, args []string) {
	fs := flag.NewFlagSet("vol clone", flag.ExitOnError)
	source := fs.String("source", "", "source volume name")
	gen := fs.Uint64("gen", 0, "source snapshot generation (from vol snap)")
	name := fs.String("name", "", "clone volume name")
	fs.Parse(args)
	if *source == "" || *name == "" || *gen == 0 {
		log.Fatal("vol clone: need -source, -gen and -name")
	}
	h, err := cl.VolClone(*source, *gen, *name)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("cloned %s@%d -> %q handle=%d (writable, CoW-shared extents)\n",
		*source, *gen, *name, h)
}

func cmdVolDiff(cl *client.Client, args []string) {
	fs := flag.NewFlagSet("vol diff", flag.ExitOnError)
	name := fs.String("name", "", "volume name")
	from := fs.Uint64("from", 0, "lower generation, exclusive (0 = everything ever written)")
	to := fs.Uint64("to", 0, "upper generation, inclusive (0 = current)")
	fs.Parse(args)
	if *name == "" {
		log.Fatal("vol diff: need -name")
	}
	d, gen, err := cl.VolDiff(*name, *from, *to)
	if err != nil {
		log.Fatal(err)
	}
	blocks := uint64(len(d.Extents)) * uint64(d.ExtentBlocks)
	fmt.Printf("diff %s (%d, %d]: %d extents x %d blocks, %.1f MiB to ship\n",
		*name, *from, gen, len(d.Extents), d.ExtentBlocks,
		float64(blocks)*protocol.BlockSize/(1<<20))
	for _, e := range d.Extents {
		fmt.Printf("  lba %10d  +%d\n", uint64(e)*uint64(d.ExtentBlocks), d.ExtentBlocks)
	}
}

func cmdVolDelete(cl *client.Client, args []string) {
	fs := flag.NewFlagSet("vol delete", flag.ExitOnError)
	name := fs.String("name", "", "volume name")
	gen := fs.Uint64("gen", 0, "snapshot generation to delete (0 = the volume itself)")
	fs.Parse(args)
	if *name == "" {
		log.Fatal("vol delete: need -name")
	}
	freed, err := cl.VolDelete(*name, *gen)
	if err != nil {
		log.Fatal(err)
	}
	what := fmt.Sprintf("volume %q", *name)
	if *gen != 0 {
		what = fmt.Sprintf("snapshot %s@%d", *name, *gen)
	}
	fmt.Printf("deleted %s, reclaimed %d extents\n", what, freed)
}

// cmdVolRestore pulls an incremental snapshot-diff stream over a
// dedicated connection and writes it into a local image file: the
// receiving half of volume replication.
func cmdVolRestore(addr string, args []string) {
	fs := flag.NewFlagSet("vol restore", flag.ExitOnError)
	name := fs.String("name", "", "volume name")
	from := fs.Uint64("from", 0, "base generation the local image already holds (0 = full restore)")
	to := fs.Uint64("to", 0, "upper generation, inclusive (0 = current)")
	out := fs.String("out", "", "image file to apply the diff into (created if missing)")
	fs.Parse(args)
	if *name == "" || *out == "" {
		log.Fatal("vol restore: need -name and -out")
	}
	f, err := os.OpenFile(*out, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	var bytes, chunks int64
	start := time.Now()
	gen, err := client.VolRestore(addr, *name, *from, *to, func(off int64, data []byte) error {
		_, werr := f.WriteAt(data, off)
		bytes += int64(len(data))
		chunks++
		return werr
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("restored %s (%d, %d] into %s: %d chunks, %.1f MiB in %v\n",
		*name, *from, gen, *out, chunks, float64(bytes)/(1<<20),
		time.Since(start).Round(time.Millisecond))
}
