package main

import "testing"

func TestParseSize(t *testing.T) {
	cases := []struct {
		in   string
		want int64
	}{
		{"4096", 4096},
		{"0", 0},
		{"1KiB", 1 << 10},
		{"64MiB", 64 << 20},
		{"1GiB", 1 << 30},
		{"2gib", 2 << 30},     // case-insensitive
		{"16 MiB", 16 << 20},  // inner whitespace tolerated
		{" 512 ", 512},        // surrounding whitespace
	}
	for _, c := range cases {
		got, err := parseSize(c.in)
		if err != nil {
			t.Errorf("parseSize(%q) error: %v", c.in, err)
			continue
		}
		if got != c.want {
			t.Errorf("parseSize(%q) = %d, want %d", c.in, got, c.want)
		}
	}
	for _, bad := range []string{"", "abc", "12XB", "MiB", "1.5GiB"} {
		if _, err := parseSize(bad); err == nil {
			t.Errorf("parseSize(%q) did not fail", bad)
		}
	}
}
