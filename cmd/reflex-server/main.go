// Command reflex-server runs the real TCP ReFlex server over an in-memory
// or file-backed flash store. Clients connect with the user-level library
// (internal/client, exercised by cmd/reflex-cli and the examples).
//
// Example:
//
//	reflex-server -addr :7700 -size 1GiB -threads 4 -token-rate 420000
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"github.com/reflex-go/reflex/internal/core"
	"github.com/reflex-go/reflex/internal/server"
	"github.com/reflex-go/reflex/internal/storage"
)

// parseSize parses "64MiB"/"1GiB"/"4096" into bytes.
func parseSize(s string) (int64, error) {
	mult := int64(1)
	upper := strings.ToUpper(s)
	switch {
	case strings.HasSuffix(upper, "GIB"):
		mult, upper = 1<<30, strings.TrimSuffix(upper, "GIB")
	case strings.HasSuffix(upper, "MIB"):
		mult, upper = 1<<20, strings.TrimSuffix(upper, "MIB")
	case strings.HasSuffix(upper, "KIB"):
		mult, upper = 1<<10, strings.TrimSuffix(upper, "KIB")
	}
	n, err := strconv.ParseInt(strings.TrimSpace(upper), 10, 64)
	if err != nil {
		return 0, fmt.Errorf("bad size %q: %w", s, err)
	}
	return n * mult, nil
}

func main() {
	addr := flag.String("addr", "127.0.0.1:7700", "TCP listen address")
	udpAddr := flag.String("udp", "", "optional UDP listen address (e.g. :7701)")
	size := flag.String("size", "256MiB", "device size (e.g. 64MiB, 1GiB)")
	file := flag.String("file", "", "optional backing file (default: in-memory)")
	threads := flag.Int("threads", 2, "scheduler threads")
	tokenRate := flag.Int64("token-rate", 420_000, "token rate (tokens/s) at the strictest SLO")
	writeCost := flag.Int64("write-cost", 10, "write cost in tokens (device calibration)")
	readLat := flag.Duration("read-latency", 0, "simulated device read latency (demos)")
	writeLat := flag.Duration("write-latency", 0, "simulated device write latency (demos)")
	flag.Parse()

	bytes, err := parseSize(*size)
	if err != nil {
		log.Fatal(err)
	}
	var backend storage.Backend
	if *file != "" {
		backend, err = storage.OpenFile(*file, bytes)
		if err != nil {
			log.Fatal(err)
		}
	} else {
		backend = storage.NewMem(bytes)
	}

	srv, err := server.New(server.Config{
		Addr:    *addr,
		UDPAddr: *udpAddr,
		Threads: *threads,
		Model: core.CostModel{
			ReadCost:         core.TokenUnit,
			ReadOnlyReadCost: core.TokenUnit / 2,
			WriteCost:        core.Tokens(*writeCost) * core.TokenUnit,
		},
		TokenRate:      core.Tokens(*tokenRate) * core.TokenUnit,
		ReadLatency:    *readLat,
		WriteLatency:   *writeLat,
		ReadOnlyWindow: 10 * time.Millisecond,
	}, backend)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("reflex-server listening on %s (%s device, %d threads, %d tokens/s)",
		srv.Addr(), *size, *threads, *tokenRate)
	if u := srv.UDPAddr(); u != "" {
		log.Printf("udp endpoint on %s", u)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	log.Printf("shutting down")
	srv.Close()
	backend.Close()
}
