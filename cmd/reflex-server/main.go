// Command reflex-server runs the real TCP ReFlex server over an in-memory
// or file-backed flash store. Clients connect with the user-level library
// (internal/client, exercised by cmd/reflex-cli and the examples).
//
// Example:
//
//	reflex-server -addr :7700 -size 1GiB -cores 4 -token-rate 420000
package main

import (
	"flag"
	"fmt"
	"log"
	"math"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"github.com/reflex-go/reflex/internal/cluster"
	"github.com/reflex-go/reflex/internal/core"
	"github.com/reflex-go/reflex/internal/ctrl"
	"github.com/reflex-go/reflex/internal/ctrlplane"
	"github.com/reflex-go/reflex/internal/faults"
	"github.com/reflex-go/reflex/internal/obs"
	"github.com/reflex-go/reflex/internal/server"
	"github.com/reflex-go/reflex/internal/shard"
	"github.com/reflex-go/reflex/internal/storage"
)

// parseSize parses "64MiB"/"1GiB"/"4096" into bytes.
func parseSize(s string) (int64, error) {
	mult := int64(1)
	upper := strings.ToUpper(s)
	switch {
	case strings.HasSuffix(upper, "GIB"):
		mult, upper = 1<<30, strings.TrimSuffix(upper, "GIB")
	case strings.HasSuffix(upper, "MIB"):
		mult, upper = 1<<20, strings.TrimSuffix(upper, "MIB")
	case strings.HasSuffix(upper, "KIB"):
		mult, upper = 1<<10, strings.TrimSuffix(upper, "KIB")
	}
	n, err := strconv.ParseInt(strings.TrimSpace(upper), 10, 64)
	if err != nil {
		return 0, fmt.Errorf("bad size %q: %w", s, err)
	}
	return n * mult, nil
}

// parseDataNodes parses "name=addr,name=addr" into the coordinator's
// data-plane node set.
func parseDataNodes(s string) ([]shard.Node, error) {
	var nodes []shard.Node
	for _, pair := range strings.Split(s, ",") {
		pair = strings.TrimSpace(pair)
		if pair == "" {
			continue
		}
		name, addr, ok := strings.Cut(pair, "=")
		if !ok || name == "" || addr == "" {
			return nil, fmt.Errorf("bad node entry %q (want name=addr)", pair)
		}
		nodes = append(nodes, shard.Node{Name: name, Addrs: []string{addr}})
	}
	if len(nodes) == 0 {
		return nil, fmt.Errorf("no data nodes")
	}
	return nodes, nil
}

// parseFleet parses "name=url,name=url" into scrape targets.
func parseFleet(s string) ([]obs.FleetNode, error) {
	var nodes []obs.FleetNode
	for _, pair := range strings.Split(s, ",") {
		pair = strings.TrimSpace(pair)
		if pair == "" {
			continue
		}
		name, url, ok := strings.Cut(pair, "=")
		if !ok || name == "" || url == "" {
			return nil, fmt.Errorf("bad fleet entry %q (want name=url)", pair)
		}
		nodes = append(nodes, obs.FleetNode{Name: name, URL: url})
	}
	if len(nodes) == 0 {
		return nil, fmt.Errorf("no fleet entries")
	}
	return nodes, nil
}

func main() {
	addr := flag.String("addr", "127.0.0.1:7700", "TCP listen address")
	udpAddr := flag.String("udp", "", "optional UDP listen address (e.g. :7701)")
	size := flag.String("size", "256MiB", "device size (e.g. 64MiB, 1GiB)")
	file := flag.String("file", "", "optional backing file (default: in-memory)")
	cores := flag.Int("cores", 0, "shared-nothing event-loop cores (0 = use -threads)")
	threads := flag.Int("threads", 2, "deprecated alias of -cores")
	busyPoll := flag.Duration("busy-poll", 0, "spin each core this long before parking (lower wakeup latency, higher CPU; 0 = park immediately)")
	tokenRate := flag.Int64("token-rate", 420_000, "token rate (tokens/s) at the strictest SLO")
	writeCost := flag.Int64("write-cost", 10, "write cost in tokens (device calibration)")
	readLat := flag.Duration("read-latency", 0, "simulated device read latency (demos)")
	writeLat := flag.Duration("write-latency", 0, "simulated device write latency (demos)")
	metricsAddr := flag.String("metrics-addr", "", "HTTP telemetry address serving /metrics (Prometheus), /snapshot, /slow, /traces, /debug/vars, /debug/pprof (e.g. :9090)")
	sampleEvery := flag.Duration("sample-interval", time.Second, "SLO time-series sampling period")
	sampleCSV := flag.String("sample-csv", "", "write the sampled time series to this CSV file on shutdown")
	chaos := flag.Bool("chaos", false, "inject faults on every accepted connection and on the device path (soak testing)")
	chaosSeed := flag.Int64("chaos-seed", 1, "fault-injection PRNG seed (reproducible chaos runs)")
	volumes := flag.String("volumes", "", "reserve this much of the device for thin-provisioned volumes (e.g. 64MiB; empty = volume layer off; manage with reflex-cli vol)")
	volExtent := flag.Int("volume-extent", 0, "volume extent size in 512B blocks (0 = default 128 = 64KiB)")
	cacheMB := flag.Int64("cache-mb", 0, "DRAM read-cache size in MiB (0 = no cache)")
	cacheAdmit := flag.String("cache-admit", "cost", "read-cache admission policy: cost (cost-model hurdle) or always")
	idleTimeout := flag.Duration("idle-timeout", 0, "reap connections idle longer than this (0 = default 2m, negative = never)")
	connLimit := flag.Int("conn-limit", 0, "shed best-effort work while connections exceed this (0 = unlimited)")
	backupOf := flag.String("backup-of", "", "run as replication backup of the primary at this address (refuses client writes until promoted)")
	epoch := flag.Uint("epoch", 0, "initial cluster epoch (0 = standalone; replicated pairs start at 1)")
	nodeName := flag.String("node-name", "", "cluster node name (enables shard-map enforcement and names this node's trace spans)")
	fleet := flag.String("fleet", "", "comma-separated name=snapshot-URL pairs to aggregate at /cluster (e.g. node0=http://10.0.0.1:9090/snapshot,node1=...)")
	coordinator := flag.String("coordinator", "", "run a control-plane replica listening on this address (elects a leader among -ctrl-peers; the leader drives the shard map)")
	ctrlPeers := flag.String("ctrl-peers", "", "comma-separated control-plane replica set, including -coordinator (default: just this replica)")
	ctrlNodes := flag.String("ctrl-nodes", "", "comma-separated name=addr data-plane nodes the coordinator places shards on (required with -coordinator)")
	ctrlShards := flag.Int("ctrl-shards", 16, "shard count for the coordinator's placement map")
	ctrlShardBlocks := flag.Int64("ctrl-shard-blocks", 4096, "blocks per shard in the placement map")
	ctrlLease := flag.Duration("ctrl-lease", time.Second, "control-plane leader lease TTL (elections re-run within ~2x this on leader death)")
	flag.Parse()

	bytes, err := parseSize(*size)
	if err != nil {
		log.Fatal(err)
	}
	var backend storage.Backend
	if *file != "" {
		backend, err = storage.OpenFile(*file, bytes)
		if err != nil {
			log.Fatal(err)
		}
	} else {
		backend = storage.NewMem(bytes)
	}

	var volBytes int64
	if *volumes != "" {
		if volBytes, err = parseSize(*volumes); err != nil {
			log.Fatalf("-volumes: %v", err)
		}
	}

	var inj *faults.Injector
	if *chaos {
		inj = faults.New(faults.Chaos(*chaosSeed))
	}
	srv, err := server.New(server.Config{
		Addr:       *addr,
		UDPAddr:    *udpAddr,
		Cores:      *cores,
		Threads:    *threads,
		BusyPoll:   *busyPoll,
		Epoch:      uint16(*epoch),
		BackupRole: *backupOf != "",
		NodeName:   *nodeName,
		Model: core.CostModel{
			ReadCost:         core.TokenUnit,
			ReadOnlyReadCost: core.TokenUnit / 2,
			WriteCost:        core.Tokens(*writeCost) * core.TokenUnit,
		},
		TokenRate:          core.Tokens(*tokenRate) * core.TokenUnit,
		ReadLatency:        *readLat,
		WriteLatency:       *writeLat,
		ReadOnlyWindow:     10 * time.Millisecond,
		IdleTimeout:        *idleTimeout,
		CacheBytes:         *cacheMB << 20,
		CacheAdmit:         *cacheAdmit,
		VolumeBytes:        volBytes,
		VolumeExtentBlocks: *volExtent,
		Faults:             inj,
		Shed:               ctrl.ShedConfig{ConnLimit: *connLimit},
	}, backend)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("reflex-server listening on %s (%s device, %d cores, %d tokens/s)",
		srv.Addr(), *size, srv.Cores(), *tokenRate)
	if volBytes > 0 {
		log.Printf("volume layer: %s thin pool (reflex-cli vol create/snap/clone/diff)", *volumes)
	}

	// Replicated-pair wiring: as a backup, join the primary and apply its
	// replication stream until a failing-over client promotes us; the
	// promotion hook stops the join loop so we don't re-join the deposed
	// primary at a stale epoch.
	if *backupOf != "" {
		bk := cluster.StartBackup(*backupOf, srv, cluster.BackupOptions{Logf: log.Printf})
		srv.SetOnPromote(func(e uint16) {
			log.Printf("cluster: promoted to primary at epoch %d", e)
			go bk.Stop()
		})
		defer bk.Stop()
		log.Printf("cluster: backup of %s (epoch %d)", *backupOf, srv.ClusterEpoch())
	}
	// Control-plane replica: quorum-elected coordinator with a replicated
	// map-edit log. The leader seeds/owns the shard map for -ctrl-nodes;
	// followers stay hot and re-drive any in-flight migration on failover.
	if *coordinator != "" {
		dataNodes, err := parseDataNodes(*ctrlNodes)
		if err != nil {
			log.Fatalf("-ctrl-nodes: %v", err)
		}
		if *ctrlShardBlocks <= 0 || *ctrlShardBlocks > math.MaxUint32 {
			log.Fatalf("-ctrl-shard-blocks: %d out of range (1..%d)", *ctrlShardBlocks, uint32(math.MaxUint32))
		}
		peers := []string{*coordinator}
		if *ctrlPeers != "" {
			peers = peers[:0]
			for _, p := range strings.Split(*ctrlPeers, ",") {
				if p = strings.TrimSpace(p); p != "" {
					peers = append(peers, p)
				}
			}
		}
		rep, err := ctrlplane.NewReplica(ctrlplane.ReplicaConfig{
			Ctrl: ctrlplane.Config{
				Self:     *coordinator,
				Peers:    peers,
				LeaseTTL: *ctrlLease,
				Journal:  srv.EventJournal(),
				Reg:      srv.Metrics(),
				Logf:     log.Printf,
			},
			Coord: shard.CoordinatorConfig{
				Nodes:       dataNodes,
				NumShards:   *ctrlShards,
				ShardBlocks: uint32(*ctrlShardBlocks),
				AutoHeal:    true,
				Journal:     srv.EventJournal(),
				Logf:        log.Printf,
			},
		})
		if err != nil {
			log.Fatalf("control plane: %v", err)
		}
		if err := rep.Start(); err != nil {
			log.Fatalf("control plane: %v", err)
		}
		defer rep.Stop()
		log.Printf("control plane: replica %s of %v (lease %v, %d shards over %d nodes)",
			*coordinator, peers, *ctrlLease, *ctrlShards, len(dataNodes))
	}
	if inj != nil {
		log.Printf("chaos mode: fault injection armed (seed %d)", *chaosSeed)
	}
	if u := srv.UDPAddr(); u != "" {
		log.Printf("udp endpoint on %s", u)
	}

	// Live exposition: Prometheus text format, JSON snapshots, the top-K
	// slow-request log, expvar and pprof.
	if *metricsAddr != "" {
		obs.PublishExpvar("reflex", srv.Metrics())
		cfg := obs.MuxConfig{
			Reg:     srv.Metrics(),
			Ring:    srv.TraceRing(),
			Journal: srv.EventJournal(),
		}
		if *fleet != "" {
			nodes, err := parseFleet(*fleet)
			if err != nil {
				log.Fatalf("-fleet: %v", err)
			}
			cfg.Cluster = obs.NewFleet(nodes).Handler()
		}
		ms, err := obs.ServeWith(*metricsAddr, cfg)
		if err != nil {
			log.Fatalf("metrics endpoint: %v", err)
		}
		defer ms.Close()
		extra := "/snapshot /slow /traces /events /debug/pprof"
		if cfg.Cluster != nil {
			extra += " /cluster"
		}
		log.Printf("telemetry on http://%s/metrics (also %s)", ms.Addr(), extra)
	}

	// SLO time-series sampler (per-op interval p95, IOPS, queue depths,
	// token-bucket levels), dumped as CSV on shutdown when requested.
	series, stopSampler := srv.StartSampler(*sampleEvery)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	log.Printf("shutting down")
	stopSampler()
	if *sampleCSV != "" {
		if f, err := os.Create(*sampleCSV); err != nil {
			log.Printf("sample csv: %v", err)
		} else {
			if err := series.WriteCSV(f); err != nil {
				log.Printf("sample csv: %v", err)
			}
			f.Close()
			log.Printf("wrote %d samples to %s", series.Len(), *sampleCSV)
		}
	}

	// Final metrics snapshot: one last look at the counters and latency
	// summaries, plus the slow-request breakdowns.
	fmt.Fprintln(os.Stderr, "=== final metrics snapshot ===")
	srv.Metrics().WritePrometheus(os.Stderr)
	if slow := srv.TraceRing().Slowest(); len(slow) > 0 {
		fmt.Fprintln(os.Stderr, "=== slow-request log (top-K by total latency) ===")
		srv.TraceRing().WriteSlowLog(os.Stderr)
	}

	srv.Close()
	backend.Close()
}
