package main

import (
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"github.com/reflex-go/reflex/internal/client"
	"github.com/reflex-go/reflex/internal/faults"
	"github.com/reflex-go/reflex/internal/protocol"
)

// chaosConfig parameterizes one soak run.
type chaosConfig struct {
	addr    string
	rate    float64
	conns   int
	readPct int
	size    int
	span    int64
	dur     time.Duration
	seed    int64
	timeout time.Duration
}

// outcome tally: every issued request lands in exactly one bucket.
type tally struct {
	issued     atomic.Int64
	ok         atomic.Int64
	device     atomic.Int64 // typed device error (retryable)
	overloaded atomic.Int64 // BE request shed by the server
	timeout    atomic.Int64 // per-request deadline expired
	connErr    atomic.Int64 // connection-level failures (reset, closed)
	other      atomic.Int64
	unresolved atomic.Int64 // Done never closed — the failure mode the soak exists to catch
	lcShed     atomic.Int64 // LC probe refused with overload — must stay zero
}

func classify(t *tally, err error) {
	switch {
	case err == nil:
		t.ok.Add(1)
	case errors.Is(err, client.ErrDevice):
		t.device.Add(1)
	case errors.Is(err, client.ErrOverloaded):
		t.overloaded.Add(1)
	case errors.Is(err, client.ErrTimeout):
		t.timeout.Add(1)
	case errors.Is(err, client.ErrClosed):
		t.connErr.Add(1)
	default:
		t.other.Add(1)
	}
}

// runChaos is the -chaos soak: faulted, reconnecting load connections with
// per-connection best-effort tenants, an LC probe that must never be shed,
// and strict all-requests-resolved accounting. Returns a process exit code.
func runChaos(cfg chaosConfig) int {
	fmt.Printf("chaos soak: %v at %.0f IOPS over %d conns, seed %d\n",
		cfg.dur, cfg.rate, cfg.conns, cfg.seed)
	baseGoroutines := runtime.NumGoroutine()

	// Client-side fault injector shared by all load connections. The
	// injector only consults connection-level probabilities here; device
	// faults are the server's business.
	inj := faults.New(faults.Chaos(cfg.seed))
	opts := client.Options{
		Timeout:   cfg.timeout,
		Reconnect: true,
		Dialer:    faults.Dialer("tcp", cfg.addr, inj),
	}

	// Admin connection: preload the span so reads return data. Its dialer
	// is un-faulted, but when the server itself runs -chaos every accepted
	// connection is wrapped server-side — so the admin must reconnect and
	// tolerate per-write device errors (a skipped block just stays zero).
	admin, err := client.DialOptions(cfg.addr, client.Options{
		Timeout:   cfg.timeout,
		Reconnect: true,
	})
	if err != nil {
		fmt.Printf("chaos: dial admin: %v\n", err)
		return 1
	}
	adminH, err := admin.Register(protocol.Registration{Writable: true, BestEffort: true})
	if err != nil {
		fmt.Printf("chaos: register admin tenant: %v\n", err)
		return 1
	}
	buf := make([]byte, cfg.size)
	var preloadErrs, consecTimeouts int
	for lba := int64(0); lba < cfg.span; lba += int64(cfg.size / 512) {
		err := admin.Write(adminH, uint32(lba), buf)
		if err == nil {
			consecTimeouts = 0
			continue
		}
		preloadErrs++
		if errors.Is(err, client.ErrTimeout) {
			consecTimeouts++
		} else {
			consecTimeouts = 0
		}
		// ErrClosed: reconnect gave up. Consecutive timeouts: the conn is
		// blackholed (a half-open peer never errors, every call just times
		// out). Either way the session is dead — start a fresh one.
		if errors.Is(err, client.ErrClosed) || consecTimeouts >= 2 {
			admin.Close()
			admin, err = client.DialOptions(cfg.addr, client.Options{
				Timeout:   cfg.timeout,
				Reconnect: true,
			})
			if err != nil {
				fmt.Printf("chaos: re-dial admin: %v\n", err)
				return 1
			}
			if adminH, err = admin.Register(protocol.Registration{Writable: true, BestEffort: true}); err != nil {
				fmt.Printf("chaos: re-register admin tenant: %v\n", err)
				return 1
			}
			consecTimeouts = 0
		}
	}
	if preloadErrs > 0 {
		fmt.Printf("chaos: preload: %d writes failed under injected faults (blocks left zero)\n", preloadErrs)
	}
	admin.Unregister(adminH)
	admin.Close()

	var t tally
	var reconnects, replays atomic.Uint64
	stop := make(chan struct{})
	var wg sync.WaitGroup      // load + probe goroutines
	var inflight sync.WaitGroup // one unit per issued async call

	// Load connections: open-loop over faulted, reconnecting clients. Each
	// registers its own tenant, so a reconnect's re-registration stays
	// connection-local.
	perConn := cfg.rate / float64(cfg.conns)
	for i := 0; i < cfg.conns; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			var cl *client.Client
			var h uint16
			// consecTimeouts counts back-to-back ErrTimeout resolutions. A
			// blackholed (half-open) connection never errors outright — every
			// call just times out — so a run of timeouts is the only signal
			// the transport is dead. Past the threshold the worker redials.
			var consecTimeouts atomic.Int64
			retire := func() {
				if cl != nil {
					reconnects.Add(cl.Reconnects())
					replays.Add(cl.Replayed())
					cl.Close()
					cl = nil
				}
			}
			redial := func() bool {
				retire()
				var err error
				cl, err = client.DialOptions(cfg.addr, opts)
				if err != nil {
					return false
				}
				h, err = cl.Register(protocol.Registration{Writable: true, BestEffort: true})
				if err != nil {
					return false
				}
				consecTimeouts.Store(0)
				return true
			}
			if !redial() {
				fmt.Printf("chaos: conn %d: no initial session\n", i)
				retire()
				return
			}
			defer retire()
			rng := rand.New(rand.NewSource(cfg.seed ^ int64(i)*7919))
			ticker := time.NewTicker(time.Millisecond)
			defer ticker.Stop()
			begin := time.Now()
			sent := 0.0
			for {
				select {
				case <-stop:
					return
				case <-ticker.C:
				}
				if cl == nil || consecTimeouts.Load() >= 8 {
					if !redial() {
						retire()
						continue // try again next tick
					}
				}
				due := perConn * time.Since(begin).Seconds()
				for ; sent < due; sent++ {
					lba := uint32(rng.Int63n(cfg.span) / int64(cfg.size/512) * int64(cfg.size/512))
					t.issued.Add(1)
					var call *client.Call
					var err error
					if rng.Intn(100) < cfg.readPct {
						call, err = cl.GoRead(h, lba, cfg.size)
					} else {
						call, err = cl.GoWrite(h, lba, buf)
					}
					if err != nil {
						classify(&t, err)
						continue
					}
					inflight.Add(1)
					go func() {
						defer inflight.Done()
						<-call.Done
						classify(&t, call.Err)
						if errors.Is(call.Err, client.ErrTimeout) {
							consecTimeouts.Add(1)
						} else {
							consecTimeouts.Store(0)
						}
					}()
				}
			}
		}()
	}

	// LC probe: a latency-critical tenant issuing one request at a time
	// through the same faulted dialer. Overload must never touch it.
	wg.Add(1)
	go func() {
		defer wg.Done()
		lcReg := protocol.Registration{
			Writable:    true,
			IOPS:        1000,
			ReadPercent: 100,
			LatencyP95:  uint64(time.Millisecond.Nanoseconds()),
		}
		var cl *client.Client
		var h uint16
		redial := func() bool {
			if cl != nil {
				cl.Close()
				cl = nil
			}
			var err error
			cl, err = client.DialOptions(cfg.addr, opts)
			if err != nil {
				return false
			}
			h, err = cl.Register(lcReg)
			return err == nil
		}
		if !redial() {
			fmt.Printf("chaos: probe: no initial session\n")
			if cl != nil {
				cl.Close()
			}
			return
		}
		defer func() { cl.Close() }()
		rng := rand.New(rand.NewSource(cfg.seed * 4242))
		consecTimeouts := 0
		for {
			select {
			case <-stop:
				return
			default:
			}
			lba := uint32(rng.Int63n(cfg.span) / int64(cfg.size/512) * int64(cfg.size/512))
			_, err := cl.Read(h, lba, cfg.size)
			switch {
			case errors.Is(err, client.ErrOverloaded):
				t.lcShed.Add(1)
				consecTimeouts = 0
			case errors.Is(err, client.ErrTimeout):
				// The probe is synchronous: two straight timeouts mean the
				// transport is blackholed, not slow. Redial.
				if consecTimeouts++; consecTimeouts >= 2 && redial() {
					consecTimeouts = 0
				}
			case errors.Is(err, client.ErrClosed), errors.Is(err, client.ErrNoTenant):
				if redial() {
					consecTimeouts = 0
				}
			default:
				consecTimeouts = 0
			}
			time.Sleep(time.Millisecond)
		}
	}()

	time.Sleep(cfg.dur)
	close(stop)
	wg.Wait()

	// All in-flight calls must resolve: a correct client completes every
	// call with success, a typed error, or ErrTimeout — never leaves it
	// hanging. Give stragglers one timeout's grace, then count them.
	settled := make(chan struct{})
	go func() { inflight.Wait(); close(settled) }()
	select {
	case <-settled:
	case <-time.After(cfg.timeout + 5*time.Second):
		resolved := t.ok.Load() + t.device.Load() + t.overloaded.Load() +
			t.timeout.Load() + t.connErr.Load() + t.other.Load()
		t.unresolved.Store(t.issued.Load() - resolved)
	}

	// Leaked-goroutine check: after everything is closed, the count must
	// return to (near) the baseline. Allow brief runtime noise to settle.
	var after int
	for i := 0; i < 50; i++ {
		time.Sleep(100 * time.Millisecond)
		if after = runtime.NumGoroutine(); after <= baseGoroutines+2 {
			break
		}
	}

	resolved := t.ok.Load() + t.device.Load() + t.overloaded.Load() +
		t.timeout.Load() + t.connErr.Load() + t.other.Load()
	fmt.Printf("issued %d resolved %d: ok %d, device-err %d, shed %d, timeout %d, conn-err %d, other %d\n",
		t.issued.Load(), resolved, t.ok.Load(), t.device.Load(),
		t.overloaded.Load(), t.timeout.Load(), t.connErr.Load(), t.other.Load())
	fmt.Printf("client faults injected %d, reconnects %d, replayed %d\n",
		inj.Injected(), reconnects.Load(), replays.Load())
	fmt.Printf("goroutines %d -> %d, LC shed %d, unresolved %d\n",
		baseGoroutines, after, t.lcShed.Load(), t.unresolved.Load())

	fail := false
	if t.unresolved.Load() > 0 {
		fmt.Println("FAIL: requests left unresolved (hung calls)")
		fail = true
	}
	if t.lcShed.Load() > 0 {
		fmt.Println("FAIL: latency-critical probe was shed")
		fail = true
	}
	if after > baseGoroutines+2 {
		fmt.Printf("FAIL: goroutine leak (%d -> %d)\n", baseGoroutines, after)
		fail = true
	}
	if fail {
		return 1
	}
	fmt.Println("chaos soak PASS")
	return 0
}
