package main

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"github.com/reflex-go/reflex/internal/client"
	"github.com/reflex-go/reflex/internal/protocol"
	"github.com/reflex-go/reflex/internal/shard"
)

// shardedConfig parameterizes -shards mode: the load generator drives a
// sharded cluster through the client-side shard router instead of one
// server through one connection pool.
type shardedConfig struct {
	seeds   []string
	rate    float64
	workers int
	readPct int
	size    int
	dur     time.Duration
	warmup  time.Duration
	timeout time.Duration
}

// runSharded offers a paced open-loop load across every shard of the
// cluster's installed map and prints a per-shard summary: which node owns
// it, how many ops it absorbed, and its delivered IOPS — plus the router's
// StatusWrongShard redirect and map-refresh counts, which measure how much
// the map churned (or how stale the client started) during the run.
func runSharded(c shardedConfig) int {
	router, err := shard.NewRouter(shard.RouterConfig{
		Seeds: c.seeds,
		Reg:   protocol.Registration{BestEffort: true, Writable: true},
		Opts:  client.Options{Timeout: c.timeout},
	})
	if err != nil {
		fmt.Printf("sharded: %v\n", err)
		return 1
	}
	defer router.Close()
	m, err := router.Refresh(0)
	if err != nil {
		fmt.Printf("sharded: no shard map reachable via %v: %v\n", c.seeds, err)
		return 1
	}
	numShards := m.NumShards()
	blocksPer := int64(c.size / protocol.BlockSize)
	if blocksPer < 1 {
		blocksPer = 1
	}
	fmt.Printf("shard map v%d: %d shards x %d blocks over %d nodes\n",
		m.Version, numShards, m.ShardBlocks, len(m.Nodes))

	perShard := make([]atomic.Int64, numShards)
	var errs atomic.Int64
	jobs := make(chan uint32, 4*c.workers)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	buf := make([]byte, c.size)
	for w := 0; w < c.workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)*6151 + 3))
			for lba := range jobs {
				var err error
				if rng.Intn(100) < c.readPct {
					_, err = router.Read(lba, c.size)
				} else {
					err = router.Write(lba, buf)
				}
				if err != nil {
					errs.Add(1)
					continue
				}
				perShard[int(lba)/int(m.ShardBlocks)].Add(1)
			}
		}(w)
	}

	// Pacer: accumulator pacing as in the single-target path; each due
	// request lands on a uniformly random in-shard, size-aligned LBA so
	// every shard sees rate/numShards of the offered load.
	rng := rand.New(rand.NewSource(101))
	span := int64(numShards) * int64(m.ShardBlocks)
	ticker := time.NewTicker(time.Millisecond)
	defer ticker.Stop()
	begin := time.Now()
	measureFrom := begin.Add(c.warmup)
	deadline := begin.Add(c.warmup + c.dur)
	sent, measured := 0.0, false
	for time.Now().Before(deadline) {
		select {
		case <-stop:
		case <-ticker.C:
		}
		if !measured && time.Now().After(measureFrom) {
			for i := range perShard {
				perShard[i].Store(0)
			}
			errs.Store(0)
			measured = true
		}
		due := c.rate * time.Since(begin).Seconds()
		for ; sent < due; sent++ {
			lba := uint32(rng.Int63n(span) / blocksPer * blocksPer)
			select {
			case jobs <- lba:
			default:
				// Saturated workers: the cluster is slower than the offered
				// rate; dropping keeps the pacer open-loop instead of
				// letting client-side queueing hide the shortfall.
			}
		}
	}
	close(jobs)
	wg.Wait()

	elapsed := c.dur.Seconds()
	m = router.Map() // re-read: a move during the run changed ownership
	var total int64
	fmt.Printf("%-5s  %-12s  %10s  %10s\n", "shard", "node", "ops", "iops")
	for s := 0; s < numShards; s++ {
		ops := perShard[s].Load()
		total += ops
		owner := "(unassigned)"
		if o := m.Assign[s]; o >= 0 {
			owner = m.Nodes[o].Name
		}
		if d := m.Migrating[s]; d >= 0 {
			owner += "->" + m.Nodes[d].Name
		}
		fmt.Printf("%-5d  %-12s  %10d  %10.0f\n", s, owner, ops, float64(ops)/elapsed)
	}
	fmt.Printf("total: %d ops (%.0f IOPS) over %v, %d errors\n",
		total, float64(total)/elapsed, c.dur, errs.Load())
	fmt.Printf("router: %d wrong-shard redirects, %d map refreshes, map v%d\n",
		router.Redirects(), router.Refreshes(), m.Version)
	if errs.Load() > 0 {
		return 1
	}
	return 0
}
