// Command reflex-loadgen drives a running reflex-server the way the
// paper's extended mutilate does (§5.1): a set of load connections offers
// a fixed open-loop request rate, while one separate, unloaded probe
// connection issues one request at a time to measure latency unpolluted by
// client-side queueing.
//
// Example:
//
//	reflex-server -addr :7700 &
//	reflex-loadgen -addr 127.0.0.1:7700 -rate 50000 -conns 8 -read-pct 90 -duration 10s
//
// With -chaos the load generator becomes a soak harness: every load
// connection dials through a client-side fault injector (drops, stalls,
// partial I/O, resets), uses request timeouts and transparent reconnect,
// registers its own best-effort tenant, and classifies every outcome.
// A latency-critical probe runs alongside to verify LC work is never shed.
// The soak fails if any request ends unresolved (hung) or the LC probe is
// ever refused with an overload status.
//
// With -shards the target is a sharded cluster (DESIGN.md §13): requests
// route through the client-side shard router (fetch-on-miss map, redirect
// chasing), and the summary breaks throughput down per shard alongside the
// router's wrong-shard redirect and map-refresh counts:
//
//	reflex-loadgen -shards 127.0.0.1:7700,127.0.0.1:7701 -rate 20000 -duration 10s
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/reflex-go/reflex/internal/bufpool"
	"github.com/reflex-go/reflex/internal/client"
	"github.com/reflex-go/reflex/internal/protocol"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7700", "server address")
	rate := flag.Float64("rate", 10_000, "offered load in IOPS across all connections")
	conns := flag.Int("conns", 4, "load connections")
	readPct := flag.Int("read-pct", 100, "read percentage")
	size := flag.Int("size", 4096, "I/O size in bytes")
	span := flag.Int64("span", 1<<17, "LBA span (512B units)")
	duration := flag.Duration("duration", 5*time.Second, "measurement duration")
	warmup := flag.Duration("warmup", time.Second, "warmup before measuring")
	udp := flag.Bool("udp", false, "use the UDP transport")
	bestEffort := flag.Bool("best-effort", true, "register a best-effort tenant")
	iopsSLO := flag.Int("slo-iops", 0, "register a latency-critical tenant with this IOPS SLO")
	sloLatency := flag.Duration("slo-latency", 500*time.Microsecond, "LC tenant p95 SLO")
	chaos := flag.Bool("chaos", false, "chaos soak mode: client-side fault injection, per-connection tenants, outcome accounting")
	chaosSeed := flag.Int64("chaos-seed", 1, "client-side fault-injection seed")
	reqTimeout := flag.Duration("req-timeout", 2*time.Second, "per-request timeout in chaos mode")
	failover := flag.Bool("failover", false, "kill-the-primary soak: in-process replicated pair, acked-write ledger, zero-loss + stale-epoch-fencing checks")
	shards := flag.String("shards", "", "comma-separated seed addresses of a sharded cluster: route through the shard map and print a per-shard summary")
	flag.Parse()

	if *shards != "" {
		os.Exit(runSharded(shardedConfig{
			seeds:   strings.Split(*shards, ","),
			rate:    *rate,
			workers: *conns,
			readPct: *readPct,
			size:    *size,
			dur:     *duration,
			warmup:  *warmup,
			timeout: *reqTimeout,
		}))
	}

	if *failover {
		os.Exit(runFailover(failoverConfig{
			dur:  *duration,
			size: *size,
			span: *span,
		}))
	}

	if *chaos {
		os.Exit(runChaos(chaosConfig{
			addr:    *addr,
			rate:    *rate,
			conns:   *conns,
			readPct: *readPct,
			size:    *size,
			span:    *span,
			dur:     *duration,
			seed:    *chaosSeed,
			timeout: *reqTimeout,
		}))
	}

	dial := func() *client.Client {
		var cl *client.Client
		var err error
		if *udp {
			cl, err = client.DialUDP(*addr)
		} else {
			cl, err = client.Dial(*addr)
		}
		if err != nil {
			log.Fatal(err)
		}
		return cl
	}

	// Register one tenant shared by every connection, as in §3.2.
	admin := dial()
	defer admin.Close()
	reg := protocol.Registration{Writable: true, BestEffort: *bestEffort}
	if *iopsSLO > 0 {
		reg.BestEffort = false
		reg.IOPS = uint32(*iopsSLO)
		reg.ReadPercent = uint8(*readPct)
		reg.LatencyP95 = uint64(sloLatency.Nanoseconds())
	}
	handle, err := admin.Register(reg)
	if err != nil {
		log.Fatalf("register: %v", err)
	}
	fmt.Printf("tenant handle %d (%s)\n", handle, map[bool]string{true: "best-effort", false: "latency-critical"}[reg.BestEffort])

	// Preload the address span so reads return real data.
	buf := make([]byte, *size)
	for lba := int64(0); lba < *span; lba += int64(*size / 512) {
		if err := admin.Write(handle, uint32(lba), buf); err != nil {
			log.Fatalf("preload: %v", err)
		}
	}

	var issued, completed, errs atomic.Int64
	stop := make(chan struct{})
	var wg sync.WaitGroup

	// Load connections: open-loop, evenly paced.
	perConn := *rate / float64(*conns)
	for i := 0; i < *conns; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			cl := dial()
			defer cl.Close()
			rng := rand.New(rand.NewSource(int64(i) * 7919))
			// One reaper per connection instead of a goroutine per
			// in-flight call: calls complete in submission order on a
			// single connection, so a bounded FIFO drains them without
			// per-request goroutine+closure allocations (which would
			// pollute the zero-allocation client hot path this harness
			// is meant to exercise). The channel bound doubles as an
			// in-flight cap providing backpressure.
			pendCh := make(chan *client.Call, 1024)
			var reaper sync.WaitGroup
			reaper.Add(1)
			go func() {
				defer reaper.Done()
				for call := range pendCh {
					<-call.Done
					if call.Err != nil {
						select {
						case <-stop: // teardown races are not errors
						default:
							errs.Add(1)
						}
					} else {
						completed.Add(1)
					}
				}
			}()
			defer reaper.Wait()
			defer close(pendCh)
			// Accumulator pacing: issue however many requests the elapsed
			// time calls for each 1ms tick (sub-millisecond tickers
			// coalesce and would undershoot the offered rate).
			ticker := time.NewTicker(time.Millisecond)
			defer ticker.Stop()
			begin := time.Now()
			sent := 0.0
			for {
				select {
				case <-stop:
					return
				case <-ticker.C:
				}
				due := perConn * time.Since(begin).Seconds()
				for ; sent < due; sent++ {
					lba := uint32(rng.Int63n(*span) / int64(*size/512) * int64(*size/512))
					issued.Add(1)
					var call *client.Call
					var err error
					if rng.Intn(100) < *readPct {
						call, err = cl.GoRead(handle, lba, *size)
					} else {
						call, err = cl.GoWrite(handle, lba, buf)
					}
					if err != nil {
						errs.Add(1)
						continue
					}
					pendCh <- call
				}
			}
		}()
	}

	// The unloaded latency probe: one request at a time.
	var lat []time.Duration
	var latMu sync.Mutex
	wg.Add(1)
	go func() {
		defer wg.Done()
		cl := dial()
		defer cl.Close()
		rng := rand.New(rand.NewSource(4242))
		measureFrom := time.Now().Add(*warmup)
		for {
			select {
			case <-stop:
				return
			default:
			}
			lba := uint32(rng.Int63n(*span) / int64(*size/512) * int64(*size/512))
			t0 := time.Now()
			_, err := cl.Read(handle, lba, *size)
			if err != nil {
				return
			}
			if time.Now().After(measureFrom) {
				latMu.Lock()
				lat = append(lat, time.Since(t0))
				latMu.Unlock()
			}
			time.Sleep(200 * time.Microsecond) // stay unloaded
		}
	}()

	time.Sleep(*warmup)
	issued.Store(0)
	completed.Store(0)
	start := time.Now()
	time.Sleep(*duration)
	elapsed := time.Since(start)
	close(stop)
	wg.Wait()

	fmt.Printf("offered %.0f IOPS for %v\n", *rate, elapsed.Round(time.Millisecond))
	fmt.Printf("issued %d, completed %d (%.0f IOPS), errors %d\n",
		issued.Load(), completed.Load(),
		float64(completed.Load())/elapsed.Seconds(), errs.Load())
	var hits, misses uint64
	for _, cs := range bufpool.Stats() {
		hits += cs.Hits
		misses += cs.Misses
	}
	if hits+misses > 0 {
		fmt.Printf("client bufpool: %d hits, %d misses (%.1f%% pooled)\n",
			hits, misses, 100*float64(hits)/float64(hits+misses))
	}

	latMu.Lock()
	defer latMu.Unlock()
	if len(lat) == 0 {
		fmt.Println("no probe samples")
		return
	}
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	p := func(q float64) time.Duration { return lat[int(q*float64(len(lat)-1))] }
	var sum time.Duration
	for _, l := range lat {
		sum += l
	}
	fmt.Printf("probe latency (%d samples): avg %v p50 %v p95 %v p99 %v\n",
		len(lat), (sum / time.Duration(len(lat))).Round(time.Microsecond),
		p(0.50).Round(time.Microsecond), p(0.95).Round(time.Microsecond),
		p(0.99).Round(time.Microsecond))
}
