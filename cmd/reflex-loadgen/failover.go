package main

import (
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"time"

	"github.com/reflex-go/reflex/internal/client"
	"github.com/reflex-go/reflex/internal/cluster"
	"github.com/reflex-go/reflex/internal/core"
	"github.com/reflex-go/reflex/internal/protocol"
	"github.com/reflex-go/reflex/internal/server"
	"github.com/reflex-go/reflex/internal/storage"
)

// failoverConfig parameterizes the kill-the-primary soak.
type failoverConfig struct {
	dur  time.Duration
	size int
	span int64
}

// pairMember is one half of the in-process replicated pair.
type pairMember struct {
	name    string
	srv     *server.Server
	backend storage.Backend
	bk      *cluster.Backup
}

func startMember(name string, backend storage.Backend, epoch uint16, backup bool) (*pairMember, error) {
	srv, err := server.New(server.Config{
		Addr:       "127.0.0.1:0",
		Threads:    1,
		Epoch:      epoch,
		BackupRole: backup,
		Model: core.CostModel{
			ReadCost:         core.TokenUnit,
			ReadOnlyReadCost: core.TokenUnit / 2,
			WriteCost:        10 * core.TokenUnit,
		},
		TokenRate: 400_000 * core.TokenUnit,
	}, backend)
	if err != nil {
		return nil, err
	}
	return &pairMember{name: name, srv: srv, backend: backend}, nil
}

// join attaches m as a live replication backup of the primary.
func (m *pairMember) join(primaryAddr string) {
	m.bk = cluster.StartBackup(primaryAddr, m.srv, cluster.BackupOptions{})
	bk := m.bk
	m.srv.SetOnPromote(func(epoch uint16) { go bk.Stop() })
}

func (m *pairMember) stop() {
	if m.bk != nil {
		m.bk.Stop()
	}
	m.srv.Close()
}

// runFailover is the -failover soak: an in-process primary/backup pair, a
// cluster client issuing sequential acked verifiable writes, a primary
// kill mid-run, and three hard checks afterwards:
//
//  1. zero lost acked writes — every write the client saw acked is
//     readable (with matching contents) from the promoted replica;
//  2. no stale-epoch write accepted — the deposed primary, restarted
//     ignorant of the failover and then fenced, refuses writes;
//  3. the pair heals — the deposed primary rejoins as backup of the new
//     primary and catches up to the full acked history.
//
// Returns a process exit code.
func runFailover(cfg failoverConfig) int {
	if cfg.size < protocol.BlockSize {
		cfg.size = protocol.BlockSize
	}
	fmt.Printf("failover soak: %v of sequential acked writes, kill primary at half-time\n", cfg.dur)

	backendA := storage.NewMem(cfg.span * protocol.BlockSize)
	backendB := storage.NewMem(cfg.span * protocol.BlockSize)
	a, err := startMember("A", backendA, 1, false)
	if err != nil {
		fmt.Printf("failover: start primary: %v\n", err)
		return 1
	}
	b, err := startMember("B", backendB, 1, true)
	if err != nil {
		fmt.Printf("failover: start backup: %v\n", err)
		a.stop()
		return 1
	}
	defer b.stop()
	b.join(a.srv.Addr())

	// Wait for the catch-up stream to complete so every subsequent ack is
	// backed by a replicated copy.
	for i := 0; i < 200 && !a.srv.ReplicaCaughtUp(); i++ {
		time.Sleep(10 * time.Millisecond)
	}
	if !a.srv.ReplicaCaughtUp() {
		fmt.Println("failover: backup never caught up")
		a.stop()
		return 1
	}

	cl, err := client.DialCluster([]string{a.srv.Addr(), b.srv.Addr()}, client.Options{
		Timeout:  500 * time.Millisecond,
		Checksum: true,
	})
	if err != nil {
		fmt.Printf("failover: dial cluster: %v\n", err)
		a.stop()
		return 1
	}
	defer cl.Close()
	h, err := cl.Register(protocol.Registration{Writable: true, BestEffort: true})
	if err != nil {
		fmt.Printf("failover: register: %v\n", err)
		a.stop()
		return 1
	}

	// Sequential verifiable writes: payload block stamped with (seq, lba).
	// An acked seq goes into the ledger; the zero-loss check replays the
	// ledger against whatever replica survives.
	blocks := cfg.span / int64(cfg.size/protocol.BlockSize)
	acked := make(map[uint32]uint64) // lba -> last acked seq
	payload := func(seq uint64, lba uint32) []byte {
		p := make([]byte, cfg.size)
		binary.BigEndian.PutUint64(p, seq)
		binary.BigEndian.PutUint32(p[8:], lba)
		return p
	}
	var seq, ackCount, errCount uint64
	killAt := time.Now().Add(cfg.dur / 2)
	deadline := time.Now().Add(cfg.dur)
	killed := false
	for time.Now().Before(deadline) {
		if !killed && time.Now().After(killAt) {
			fmt.Printf("failover: killing primary %s after %d acked writes\n", a.name, ackCount)
			a.srv.Close()
			killed = true
		}
		seq++
		lba := uint32(int64(seq) % blocks * int64(cfg.size/protocol.BlockSize))
		if err := cl.Write(h, lba, payload(seq, lba)); err != nil {
			errCount++
			continue
		}
		ackCount++
		acked[lba] = seq
	}
	if !killed { // degenerate tiny -duration
		a.srv.Close()
		killed = true
	}
	fmt.Printf("failover: %d acked, %d errored during the outage window; client epoch %d, failovers %d\n",
		ackCount, errCount, cl.Epoch(), cl.Failovers())

	fail := false
	if cl.Failovers() == 0 || cl.Epoch() < 2 {
		fmt.Println("FAIL: client never failed over to the backup")
		fail = true
	}

	// Check 1: zero lost acked writes. Every acked (lba, seq) must read
	// back intact from the promoted replica.
	lost := 0
	for lba, want := range acked {
		got, err := cl.Read(h, lba, cfg.size)
		if err != nil {
			fmt.Printf("FAIL: acked lba %d unreadable after failover: %v\n", lba, err)
			lost++
			continue
		}
		if binary.BigEndian.Uint64(got) != want || binary.BigEndian.Uint32(got[8:]) != lba {
			fmt.Printf("FAIL: acked lba %d holds seq %d, want %d\n",
				lba, binary.BigEndian.Uint64(got), want)
			lost++
		}
	}
	if lost > 0 {
		fmt.Printf("FAIL: %d acked writes lost\n", lost)
		fail = true
	} else {
		fmt.Printf("failover: all %d acked blocks verified on the new primary\n", len(acked))
	}

	// Check 2: no stale-epoch write accepted. Restart the deposed primary
	// on its old backend, still believing it is the epoch-1 primary (the
	// classic zombie). Fence it at the new epoch — exactly what the
	// failing-over client does best-effort — then prove a write bounces.
	z, err := startMember("A'", backendA, 1, false)
	if err != nil {
		fmt.Printf("failover: restart deposed primary: %v\n", err)
		return 1
	}
	if err := fence(z.srv.Addr(), cl.Epoch()); err != nil {
		fmt.Printf("FAIL: fence deposed primary: %v\n", err)
		fail = true
	}
	zc, err := client.DialOptions(z.srv.Addr(), client.Options{Timeout: time.Second})
	if err != nil {
		fmt.Printf("failover: dial deposed primary: %v\n", err)
		return 1
	}
	zh, err := zc.Register(protocol.Registration{Writable: true, BestEffort: true})
	if err != nil {
		fmt.Printf("failover: register on deposed primary: %v\n", err)
		zc.Close()
		return 1
	}
	if err := zc.Write(zh, 0, payload(1<<40, 0)); !errors.Is(err, client.ErrStaleEpoch) {
		fmt.Printf("FAIL: fenced zombie primary accepted a write (err=%v)\n", err)
		fail = true
	} else {
		fmt.Println("failover: fenced zombie refuses writes (stale-epoch)")
	}
	zc.Close()
	z.stop()

	// Check 3: the pair heals. Restart the deposed node as a backup of the
	// new primary; catch-up must deliver the full acked history.
	c, err := startMember("A''", storage.NewMem(cfg.span*protocol.BlockSize), 0, true)
	if err != nil {
		fmt.Printf("failover: restart as backup: %v\n", err)
		return 1
	}
	defer c.stop()
	c.join(b.srv.Addr())
	for i := 0; i < 500 && !b.srv.ReplicaCaughtUp(); i++ {
		time.Sleep(10 * time.Millisecond)
	}
	if !b.srv.ReplicaCaughtUp() {
		fmt.Println("FAIL: rejoined backup never caught up")
		fail = true
	} else {
		// Backups serve reads: verify the acked ledger straight off it.
		bc, err := client.DialOptions(c.srv.Addr(), client.Options{Timeout: time.Second})
		if err != nil {
			fmt.Printf("failover: dial rejoined backup: %v\n", err)
			return 1
		}
		bh, err := bc.Register(protocol.Registration{BestEffort: true})
		if err != nil {
			fmt.Printf("failover: register on rejoined backup: %v\n", err)
			bc.Close()
			return 1
		}
		stale := 0
		for lba, want := range acked {
			got, err := bc.Read(bh, lba, cfg.size)
			if err != nil || binary.BigEndian.Uint64(got) != want {
				stale++
			}
		}
		bc.Close()
		if stale > 0 {
			fmt.Printf("FAIL: rejoined backup missing %d acked blocks after catch-up\n", stale)
			fail = true
		} else {
			fmt.Printf("failover: rejoined backup caught up with all %d acked blocks\n", len(acked))
		}
	}

	if fail {
		return 1
	}
	fmt.Println("failover soak PASS")
	return 0
}

// fence sends a raw OpFence at epoch e and waits for the ack.
func fence(addr string, e uint16) error {
	c, err := net.Dial("tcp", addr)
	if err != nil {
		return err
	}
	defer c.Close()
	c.SetDeadline(time.Now().Add(2 * time.Second))
	hdr := protocol.Header{Opcode: protocol.OpFence, Epoch: e}
	if err := protocol.WriteMessage(c, &hdr, nil); err != nil {
		return err
	}
	_, err = protocol.ReadMessage(c)
	return err
}
