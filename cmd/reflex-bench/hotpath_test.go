package main

import "testing"

// TestMatrixGates pins the scaling-gate policy: gates only bind on rungs
// the host can parallelize, sub-linear collapse (>30% off linear at 4
// cores) fails, and the 8-proc rung must clear 2x the shared-scheduler
// baseline.
func TestMatrixGates(t *testing.T) {
	linear := []matrixEntry{
		{GOMAXPROCS: 1, Cores: 1, MsgPerSec: 250_000, ScalingVs1: 1},
		{GOMAXPROCS: 2, Cores: 2, MsgPerSec: 480_000, ScalingVs1: 1.92},
		{GOMAXPROCS: 4, Cores: 4, MsgPerSec: 900_000, ScalingVs1: 3.6},
		{GOMAXPROCS: 8, Cores: 8, MsgPerSec: 1_600_000, ScalingVs1: 6.4},
	}
	collapsed := []matrixEntry{
		{GOMAXPROCS: 1, Cores: 1, MsgPerSec: 250_000, ScalingVs1: 1},
		{GOMAXPROCS: 4, Cores: 4, MsgPerSec: 500_000, ScalingVs1: 2.0}, // 50% off linear
	}
	slow8 := []matrixEntry{
		{GOMAXPROCS: 1, Cores: 1, MsgPerSec: 100_000, ScalingVs1: 1},
		{GOMAXPROCS: 4, Cores: 4, MsgPerSec: 380_000, ScalingVs1: 3.8},
		{GOMAXPROCS: 8, Cores: 8, MsgPerSec: 400_000, ScalingVs1: 4.0}, // < 2x 226k
	}

	if err := checkMatrixGates(linear, 8); err != nil {
		t.Errorf("linear scaling on an 8-CPU host failed gates: %v", err)
	}
	if err := checkMatrixGates(collapsed, 8); err == nil {
		t.Error("4-core collapse passed gates on an 8-CPU host")
	}
	if err := checkMatrixGates(slow8, 8); err == nil {
		t.Error("sub-2x 8-proc rate passed gates on an 8-CPU host")
	}
	// A 1-CPU host records everything but can fail nothing.
	if err := checkMatrixGates(collapsed, 1); err != nil {
		t.Errorf("1-CPU host enforced a scaling gate it cannot measure: %v", err)
	}
	if err := checkMatrixGates(slow8, 2); err != nil {
		t.Errorf("2-CPU host enforced the 8-proc gate: %v", err)
	}
}

// TestMatrixGateStatuses pins the artifact honesty rule: a gate the host
// cannot measure is recorded as "skipped" with a reason, never "passed".
func TestMatrixGateStatuses(t *testing.T) {
	linear := []matrixEntry{
		{GOMAXPROCS: 1, Cores: 1, MsgPerSec: 250_000, ScalingVs1: 1},
		{GOMAXPROCS: 4, Cores: 4, MsgPerSec: 900_000, ScalingVs1: 3.6},
		{GOMAXPROCS: 8, Cores: 8, MsgPerSec: 1_600_000, ScalingVs1: 6.4},
	}
	want := func(gates []gateStatus, name, status string) {
		t.Helper()
		for _, g := range gates {
			if g.Name != name {
				continue
			}
			if g.Status != status {
				t.Errorf("gate %s = %q (%s), want %q", name, g.Status, g.Reason, status)
			}
			if g.Reason == "" {
				t.Errorf("gate %s has no reason", name)
			}
			return
		}
		t.Errorf("gate %s missing", name)
	}

	g8 := matrixGates(linear, 8)
	want(g8, "scaling_4core_linearity", "passed")
	want(g8, "multicore_8proc_speedup", "passed")

	// Same matrix, 1-CPU host: both gates skipped, not passed.
	g1 := matrixGates(linear, 1)
	want(g1, "scaling_4core_linearity", "skipped")
	want(g1, "multicore_8proc_speedup", "skipped")

	// A 4-CPU host judges linearity but must still skip the 8-proc gate.
	g4 := matrixGates(linear, 4)
	want(g4, "scaling_4core_linearity", "passed")
	want(g4, "multicore_8proc_speedup", "skipped")

	collapsed := []matrixEntry{
		{GOMAXPROCS: 1, Cores: 1, MsgPerSec: 250_000, ScalingVs1: 1},
		{GOMAXPROCS: 4, Cores: 4, MsgPerSec: 500_000, ScalingVs1: 2.0},
	}
	want(matrixGates(collapsed, 8), "scaling_4core_linearity", "failed")
}
