package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"github.com/reflex-go/reflex/internal/experiments"
)

// Tiered-cache acceptance measurement (-cache <file>): runs ext-cache at
// the given scale and writes BENCH_cache.json with every gate's verdict.
// Unlike the hotpath gates these are simulation results, so no gate ever
// depends on host CPUs — each is judged on every run.
const (
	// cacheSpeedupFloor: the cache must buy best-effort tenants at least
	// this multiple of cache-off throughput at identical token budgets.
	cacheSpeedupFloor = 1.5
	// cacheHitFloor: and it must do so from real locality, not a
	// degenerate single-block workload.
	cacheHitFloor = 0.5
)

type cacheResultJSON struct {
	Generated string  `json:"generated"`
	GoVersion string  `json:"go_version"`
	Scale     float64 `json:"scale"`

	BEIOPSOff          float64 `json:"be_iops_cache_off"`
	BEIOPSOn           float64 `json:"be_iops_cache_on"`
	BESpeedup          float64 `json:"be_speedup"`
	HitRatio           float64 `json:"hit_ratio"`
	LCReadP99OffUs     float64 `json:"lc_read_p99_us_cache_off"`
	LCReadP99OnUs      float64 `json:"lc_read_p99_us_cache_on"`
	WriteAmpMixed      float64 `json:"write_amp_mixed"`
	WriteAmpSegregated float64 `json:"write_amp_segregated"`

	Gates []gateStatus `json:"gates"`
}

// cacheGates judges the ext-cache acceptance criteria.
func cacheGates(r experiments.CacheBenchResult) []gateStatus {
	judge := func(name string, ok bool, reason string) gateStatus {
		st := "passed"
		if !ok {
			st = "failed"
		}
		return gateStatus{Name: name, Status: st, Reason: reason}
	}
	return []gateStatus{
		judge("be_speedup", r.BESpeedup() >= cacheSpeedupFloor,
			fmt.Sprintf("best-effort %.2fx with cache on (floor %.1fx)", r.BESpeedup(), cacheSpeedupFloor)),
		judge("hit_ratio", r.HitRatio >= cacheHitFloor,
			fmt.Sprintf("hit ratio %.2f (floor %.2f)", r.HitRatio, cacheHitFloor)),
		judge("lc_p99_not_worse", r.LCReadP99On <= r.LCReadP99Off,
			fmt.Sprintf("LC read p99 %.0fus on vs %.0fus off", float64(r.LCReadP99On)/1e3, float64(r.LCReadP99Off)/1e3)),
		judge("write_amp_segregation", r.WriteAmpSegregated < r.WriteAmpMixed,
			fmt.Sprintf("write amp %.3f segregated vs %.3f mixed", r.WriteAmpSegregated, r.WriteAmpMixed)),
	}
}

// runCacheBench performs the measurement and writes the JSON artifact.
func runCacheBench(path string, scale float64) error {
	res, tbl := experiments.CacheBench(experiments.Scale(scale))
	fmt.Print(tbl.Format())

	gates := cacheGates(res)
	out := cacheResultJSON{
		Generated:          time.Now().UTC().Format(time.RFC3339),
		GoVersion:          runtime.Version(),
		Scale:              scale,
		BEIOPSOff:          res.BEIOPSOff,
		BEIOPSOn:           res.BEIOPSOn,
		BESpeedup:          res.BESpeedup(),
		HitRatio:           res.HitRatio,
		LCReadP99OffUs:     float64(res.LCReadP99Off) / 1e3,
		LCReadP99OnUs:      float64(res.LCReadP99On) / 1e3,
		WriteAmpMixed:      res.WriteAmpMixed,
		WriteAmpSegregated: res.WriteAmpSegregated,
		Gates:              gates,
	}
	buf, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		return err
	}
	for _, g := range gates {
		fmt.Printf("cache gate %s: %s (%s)\n", g.Name, g.Status, g.Reason)
	}
	fmt.Printf("cache: %s\n", path)
	for _, g := range gates {
		if g.Status == "failed" {
			return fmt.Errorf("cache: %s", g.Reason)
		}
	}
	return nil
}
