package main

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// -summary: aggregate every BENCH_*.json acceptance artifact in a
// directory into one trajectory table — when each was generated, which
// gates passed/failed/skipped, and the artifact's headline numbers. The
// artifacts are the repo's performance ledger (each acceptance run
// overwrites its own file), so this is the one-screen answer to "where
// does the build stand".

// summaryGate mirrors gateStatus for decoding foreign artifacts.
type summaryGate struct {
	Name   string `json:"name"`
	Status string `json:"status"`
	Reason string `json:"reason"`
}

// summaryRow is one artifact's digest.
type summaryRow struct {
	file      string
	generated string
	passed    int
	skipped   int
	failed    []string
	headline  string
}

// runSummary scans dir for BENCH_*.json and prints the trajectory table.
// Any artifact without a gates array still gets a row (headline only).
func runSummary(dir string) error {
	paths, err := filepath.Glob(filepath.Join(dir, "BENCH_*.json"))
	if err != nil {
		return err
	}
	if len(paths) == 0 {
		return fmt.Errorf("summary: no BENCH_*.json artifacts under %s (generate them with -hotpath/-cache/-volume)", dir)
	}
	sort.Strings(paths)

	rows := make([]summaryRow, 0, len(paths))
	for _, p := range paths {
		row, err := summarize(p)
		if err != nil {
			rows = append(rows, summaryRow{file: filepath.Base(p), headline: "unreadable: " + err.Error()})
			continue
		}
		rows = append(rows, row)
	}

	fmt.Printf("%-22s %-20s %-14s %s\n", "ARTIFACT", "GENERATED", "GATES", "HEADLINE")
	anyFailed := false
	for _, r := range rows {
		gates := "-"
		if r.passed+r.skipped+len(r.failed) > 0 {
			gates = fmt.Sprintf("%d ok", r.passed)
			if r.skipped > 0 {
				gates += fmt.Sprintf(", %d skip", r.skipped)
			}
			if len(r.failed) > 0 {
				gates += fmt.Sprintf(", %d FAIL", len(r.failed))
				anyFailed = true
			}
		}
		fmt.Printf("%-22s %-20s %-14s %s\n", r.file, r.generated, gates, r.headline)
		for _, f := range r.failed {
			fmt.Printf("%-22s %-20s %-14s failed: %s\n", "", "", "", f)
		}
	}
	if anyFailed {
		return fmt.Errorf("summary: at least one artifact has failed gates")
	}
	return nil
}

// summarize digests one artifact: generic gate counting plus a
// per-artifact headline drawn from the fields that matter for that
// measurement.
func summarize(path string) (summaryRow, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return summaryRow{}, err
	}
	var doc map[string]json.RawMessage
	if err := json.Unmarshal(raw, &doc); err != nil {
		return summaryRow{}, err
	}
	row := summaryRow{file: filepath.Base(path)}
	if g, ok := doc["generated"]; ok {
		json.Unmarshal(g, &row.generated)
	}
	var gates []summaryGate
	if g, ok := doc["gates"]; ok {
		json.Unmarshal(g, &gates)
	}
	for _, g := range gates {
		switch g.Status {
		case "passed":
			row.passed++
		case "skipped":
			row.skipped++
		default:
			row.failed = append(row.failed, fmt.Sprintf("%s (%s)", g.Name, g.Reason))
		}
	}

	num := func(key string) (float64, bool) {
		r, ok := doc[key]
		if !ok {
			return 0, false
		}
		var v float64
		if json.Unmarshal(r, &v) != nil {
			return 0, false
		}
		return v, true
	}
	var parts []string
	add := func(format string, args ...any) { parts = append(parts, fmt.Sprintf(format, args...)) }
	switch {
	case strings.Contains(row.file, "hotpath"):
		var tcp, udp struct {
			MsgPerSec float64 `json:"msg_per_sec"`
			Speedup   float64 `json:"speedup"`
		}
		if r, ok := doc["tcp"]; ok && json.Unmarshal(r, &tcp) == nil && tcp.MsgPerSec > 0 {
			add("tcp %.0fK msg/s (%.1fx)", tcp.MsgPerSec/1000, tcp.Speedup)
		}
		if r, ok := doc["udp"]; ok && json.Unmarshal(r, &udp) == nil && udp.MsgPerSec > 0 {
			add("udp %.0fK msg/s (%.1fx)", udp.MsgPerSec/1000, udp.Speedup)
		}
		if v, ok := num("protocol_roundtrip_allocs_per_op"); ok {
			add("proto %.0f allocs/op", v)
		}
	case strings.Contains(row.file, "cache"):
		if v, ok := num("be_speedup"); ok {
			add("BE %.2fx with cache", v)
		}
		if v, ok := num("hit_ratio"); ok {
			add("hits %.0f%%", v*100)
		}
		if m, ok := num("write_amp_mixed"); ok {
			if s, ok := num("write_amp_segregated"); ok {
				add("WA %.2f->%.2f", m, s)
			}
		}
	case strings.Contains(row.file, "volume"):
		if v, ok := num("p95_ratio"); ok {
			add("snap-phase p95 %.2fx", v)
		}
		if v, ok := num("snapshot_us"); ok {
			add("snap %.0fus", v)
		}
		if v, ok := num("restored_mib"); ok {
			add("restored %.1fMiB", v)
		}
		if v, ok := num("lost_acked"); ok {
			add("lost %d", int(v))
		}
	default:
		// Unknown artifact kind: the gate verdicts are the digest.
	}
	row.headline = strings.Join(parts, "  ")
	return row, nil
}
