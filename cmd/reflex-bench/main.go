// Command reflex-bench regenerates the paper's tables and figures from the
// simulated system. Each experiment prints the rows/series the paper
// reports; EXPERIMENTS.md records the comparison against the published
// numbers.
//
// Usage:
//
//	reflex-bench -list
//	reflex-bench [-scale 1.0] fig1 tab2 fig5 ...
//	reflex-bench -all
//	reflex-bench -hotpath BENCH_hotpath.json   (hot-path acceptance run)
//	reflex-bench -cache BENCH_cache.json       (tiered-cache acceptance run)
//	reflex-bench -volume BENCH_volume.json     (volume-layer acceptance run)
//	reflex-bench -summary .                    (aggregate all BENCH_*.json artifacts)
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"github.com/reflex-go/reflex/internal/experiments"
)

func main() {
	list := flag.Bool("list", false, "list experiment IDs and exit")
	all := flag.Bool("all", false, "run every experiment")
	scale := flag.Float64("scale", 1.0, "measurement-window scale factor (smaller = faster, noisier)")
	csvDir := flag.String("csv-dir", "", "also write each experiment's table as <dir>/<id>.csv")
	hotpath := flag.String("hotpath", "", "run the hot-path throughput/allocation measurement and write results JSON to this file")
	hotWindow := flag.Duration("hotpath-window", 3*time.Second, "per-transport measurement window for -hotpath")
	cache := flag.String("cache", "", "run the tiered-cache/placement acceptance measurement (ext-cache) and write results JSON to this file")
	volume := flag.String("volume", "", "run the volume-layer acceptance measurement (ext-volume) and write results JSON to this file")
	summary := flag.String("summary", "", "aggregate the BENCH_*.json artifacts in this directory into one trajectory table (use . for the repo root)")
	flag.Parse()

	if *summary != "" {
		if err := runSummary(*summary); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	if *hotpath != "" {
		if err := runHotpath(*hotpath, *hotWindow); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	if *cache != "" {
		if err := runCacheBench(*cache, *scale); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	if *volume != "" {
		if err := runVolumeBench(*volume, *scale); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	if *list {
		for _, id := range experiments.IDs() {
			fmt.Println(id)
		}
		return
	}

	ids := flag.Args()
	if *all {
		ids = experiments.IDs()
	}
	if len(ids) == 0 {
		fmt.Fprintln(os.Stderr, "usage: reflex-bench [-scale S] <experiment-id>... | -all | -list")
		os.Exit(2)
	}

	for _, id := range ids {
		start := time.Now()
		tbl, err := experiments.Run(id, experiments.Scale(*scale))
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Print(tbl.Format())
		fmt.Printf("(%s in %.1fs wall clock)\n\n", id, time.Since(start).Seconds())
		if *csvDir != "" {
			if err := writeCSV(*csvDir, id, tbl); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		}
	}
}

// writeCSV writes one experiment table to <dir>/<id>.csv, creating the
// directory if needed.
func writeCSV(dir, id string, tbl *experiments.Table) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	path := filepath.Join(dir, id+".csv")
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := tbl.WriteCSV(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
