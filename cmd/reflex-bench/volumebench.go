package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"github.com/reflex-go/reflex/internal/experiments"
)

// Volume-layer acceptance measurement (-volume <file>): runs ext-volume
// at the given scale and writes BENCH_volume.json with every gate's
// verdict. The run uses the real TCP server wall-clock, so the tail
// gate is judged against the phase pair measured on the same host in
// the same process.
const (
	// volumeP95Ceiling: taking a snapshot, cutting a clone and pulling
	// the full diff stream mid-run may cost the LC reader at most this
	// multiple of its no-snapshot p95.
	volumeP95Ceiling = 2.0
)

type volumeResultJSON struct {
	Generated string  `json:"generated"`
	GoVersion string  `json:"go_version"`
	Scale     float64 `json:"scale"`

	LCReadP95BaseUs float64 `json:"lc_read_p95_us_baseline"`
	LCReadP95SnapUs float64 `json:"lc_read_p95_us_snapshot"`
	P95Ratio        float64 `json:"p95_ratio"`
	SnapshotUs      float64 `json:"snapshot_us"`
	RestoredMiB     float64 `json:"restored_mib"`
	RestoredGen     uint64  `json:"restored_gen"`
	TornBlocks      int     `json:"torn_blocks"`
	StaleSlots      int     `json:"stale_slots"`
	LostAcked       int     `json:"lost_acked"`

	Gates []gateStatus `json:"gates"`
}

// volumeGates judges the ext-volume acceptance criteria.
func volumeGates(r experiments.VolumeBenchResult) []gateStatus {
	judge := func(name string, ok bool, reason string) gateStatus {
		st := "passed"
		if !ok {
			st = "failed"
		}
		return gateStatus{Name: name, Status: st, Reason: reason}
	}
	return []gateStatus{
		judge("crash_consistent_restore", r.TornBlocks == 0 && r.StaleSlots == 0,
			fmt.Sprintf("%d torn records, %d outside the ledger bracket in the diff-restored image",
				r.TornBlocks, r.StaleSlots)),
		judge("zero_lost_acked", r.LostAcked == 0,
			fmt.Sprintf("%d acked writes missing from the live volume", r.LostAcked)),
		judge("lc_p95_bounded", r.P95Ratio() > 0 && r.P95Ratio() <= volumeP95Ceiling,
			fmt.Sprintf("snapshot-phase LC p95 %.2fx baseline (%.0fus vs %.0fus, ceiling %.1fx)",
				r.P95Ratio(), float64(r.LCReadP95Snap)/1e3, float64(r.LCReadP95Base)/1e3, volumeP95Ceiling)),
		judge("diff_shipped_data", r.RestoredMiB > 0 && r.RestoredGen > 0,
			fmt.Sprintf("diff stream shipped %.2f MiB up to gen %d", r.RestoredMiB, r.RestoredGen)),
	}
}

// runVolumeBench performs the measurement and writes the JSON artifact.
func runVolumeBench(path string, scale float64) error {
	res, tbl := experiments.VolumeBench(experiments.Scale(scale))
	fmt.Print(tbl.Format())

	gates := volumeGates(res)
	out := volumeResultJSON{
		Generated:       time.Now().UTC().Format(time.RFC3339),
		GoVersion:       runtime.Version(),
		Scale:           scale,
		LCReadP95BaseUs: float64(res.LCReadP95Base) / 1e3,
		LCReadP95SnapUs: float64(res.LCReadP95Snap) / 1e3,
		P95Ratio:        res.P95Ratio(),
		SnapshotUs:      float64(res.SnapshotLat) / 1e3,
		RestoredMiB:     res.RestoredMiB,
		RestoredGen:     res.RestoredGen,
		TornBlocks:      res.TornBlocks,
		StaleSlots:      res.StaleSlots,
		LostAcked:       res.LostAcked,
		Gates:           gates,
	}
	buf, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		return err
	}
	for _, g := range gates {
		fmt.Printf("volume gate %s: %s (%s)\n", g.Name, g.Status, g.Reason)
	}
	fmt.Printf("volume: %s\n", path)
	for _, g := range gates {
		if g.Status == "failed" {
			return fmt.Errorf("volume: %s", g.Reason)
		}
	}
	return nil
}
