package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sort"
	"sync"
	"testing"
	"time"

	"github.com/reflex-go/reflex/internal/bufpool"
	"github.com/reflex-go/reflex/internal/client"
	"github.com/reflex-go/reflex/internal/core"
	"github.com/reflex-go/reflex/internal/protocol"
	"github.com/reflex-go/reflex/internal/server"
	"github.com/reflex-go/reflex/internal/storage"
)

// Hot-path acceptance measurement (-hotpath <file>): drives the real
// TCP/UDP request path over loopback exactly like the
// BenchmarkHotPathTCP/UDP benchmarks, plus the deterministic
// protocol-roundtrip allocation count, and writes BENCH_hotpath.json.
// The baseline constants are the pre-optimization numbers (recorded on
// the same harness before the zero-allocation + wire-batching work);
// the JSON carries the speedup against them so the ≥2× acceptance
// criterion is auditable from the artifact alone.

// Pre-change baseline: allocating per-message framing, flush-per-response
// writes, unpooled payloads (commit history: before the bufpool + adaptive
// wire batching change).
const (
	baselineTCPMsgPerSec = 81708
	baselineTCPAllocsOp  = 18
	baselineUDPMsgPerSec = 50413
	baselineUDPAllocsOp  = 28
)

// baselineMultiCoreTCP is the shared-scheduler server's TCP loopback rate
// (pre-per-core refactor, PR 4 harness): the multicore acceptance gate
// requires ≥2× this at GOMAXPROCS ≥ 8.
const baselineMultiCoreTCP = 226_428

// matrixProcs is the GOMAXPROCS ladder for the core-scaling matrix.
var matrixProcs = []int{1, 2, 4, 8}

// Scaling gates, enforced only where the host has the CPUs to make them
// meaningful (a 1-CPU CI runner records the matrix but cannot fail it).
const (
	// linearityFloor fails the run when 4-core scaling collapses more
	// than 30% off linear (scaling_vs_1 < 4 × 0.7).
	linearityFloor = 0.70
	// multicoreSpeedup is the ≥2×-over-226k acceptance bar at 8 procs.
	multicoreSpeedup = 2.0
)

type hotpathTransport struct {
	MsgPerSec          float64 `json:"msg_per_sec"`
	P99Us              float64 `json:"p99_us"`
	BaselineMsgPerSec  float64 `json:"baseline_msg_per_sec"`
	BaselineAllocsPerO float64 `json:"baseline_allocs_per_op"`
	Speedup            float64 `json:"speedup"`
}

// matrixEntry is one GOMAXPROCS rung of the core-scaling matrix: an
// n-core server driven by n pipelined connections at GOMAXPROCS=n.
type matrixEntry struct {
	GOMAXPROCS int     `json:"gomaxprocs"`
	Cores      int     `json:"cores"`
	MsgPerSec  float64 `json:"msg_per_sec"`
	// ScalingVs1 is MsgPerSec over the 1-proc rung's rate — the
	// near-linear-scaling acceptance signal (≈n when scaling is linear).
	ScalingVs1 float64 `json:"scaling_vs_1"`
}

// gateStatus records one acceptance gate's outcome in the artifact. A
// gate the host cannot measure (fewer CPUs than the rung needs) is
// recorded as "skipped" with the reason — so a green artifact from a
// 1-CPU runner is distinguishable from one that actually cleared the
// scaling bars.
type gateStatus struct {
	Name   string `json:"name"`
	Status string `json:"status"` // "passed" | "skipped" | "failed"
	Reason string `json:"reason,omitempty"`
}

type hotpathResult struct {
	Generated  string  `json:"generated"`
	GoVersion  string  `json:"go_version"`
	NumCPU     int     `json:"num_cpu"`
	DurationS  float64 `json:"window_seconds"`
	IOSize     int     `json:"io_size_bytes"`
	ProtoAlloc float64 `json:"protocol_roundtrip_allocs_per_op"`

	TCP hotpathTransport `json:"tcp"`
	UDP hotpathTransport `json:"udp"`

	// Matrix is the per-core scaling sweep (TCP loopback, one pipelined
	// connection per core). Rungs above num_cpu are still recorded —
	// they document where the host ran out of CPUs, and the gates only
	// apply to rungs the host can actually parallelize.
	Matrix []matrixEntry `json:"matrix"`
	// Gates is the verdict on each scaling gate, including the ones this
	// host had to skip.
	Gates []gateStatus `json:"gates"`

	BufpoolHits     uint64 `json:"bufpool_hits"`
	BufpoolMisses   uint64 `json:"bufpool_misses"`
	BufpoolUnpooled uint64 `json:"bufpool_unpooled"`
}

// runHotpath performs the measurement and writes the JSON artifact.
func runHotpath(path string, window time.Duration) error {
	const ioSize = 4096

	protoAllocs := protoRoundtripAllocs()

	tcpRate, tcpP99, err := measureLoopback(false, ioSize, 256, window)
	if err != nil {
		return fmt.Errorf("hotpath tcp: %w", err)
	}
	udpRate, udpP99, err := measureLoopback(true, ioSize, 16, window)
	if err != nil {
		return fmt.Errorf("hotpath udp: %w", err)
	}

	matrix, err := measureMatrix(ioSize, window)
	if err != nil {
		return fmt.Errorf("hotpath matrix: %w", err)
	}

	var hits, misses uint64
	for _, cs := range bufpool.Stats() {
		hits += cs.Hits
		misses += cs.Misses
	}
	gates := matrixGates(matrix, runtime.NumCPU())
	res := hotpathResult{
		Generated:  time.Now().UTC().Format(time.RFC3339),
		GoVersion:  runtime.Version(),
		NumCPU:     runtime.NumCPU(),
		DurationS:  window.Seconds(),
		IOSize:     ioSize,
		ProtoAlloc: protoAllocs,
		Matrix:     matrix,
		Gates:      gates,
		TCP: hotpathTransport{
			MsgPerSec:          tcpRate,
			P99Us:              float64(tcpP99) / 1e3,
			BaselineMsgPerSec:  baselineTCPMsgPerSec,
			BaselineAllocsPerO: baselineTCPAllocsOp,
			Speedup:            tcpRate / baselineTCPMsgPerSec,
		},
		UDP: hotpathTransport{
			MsgPerSec:          udpRate,
			P99Us:              float64(udpP99) / 1e3,
			BaselineMsgPerSec:  baselineUDPMsgPerSec,
			BaselineAllocsPerO: baselineUDPAllocsOp,
			Speedup:            udpRate / baselineUDPMsgPerSec,
		},
		BufpoolHits:     hits,
		BufpoolMisses:   misses,
		BufpoolUnpooled: bufpool.Unpooled(),
	}

	out, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return err
	}
	out = append(out, '\n')
	if err := os.WriteFile(path, out, 0o644); err != nil {
		return err
	}
	fmt.Printf("hotpath: tcp %.0f msg/s (%.2fx baseline, p99 %.0fus), udp %.0f msg/s (%.2fx), protocol roundtrip %.1f allocs/op -> %s\n",
		tcpRate, res.TCP.Speedup, res.TCP.P99Us, udpRate, res.UDP.Speedup, protoAllocs, path)
	for _, e := range matrix {
		fmt.Printf("hotpath matrix: GOMAXPROCS=%d cores=%d %.0f msg/s (%.2fx vs 1 proc)\n",
			e.GOMAXPROCS, e.Cores, e.MsgPerSec, e.ScalingVs1)
	}
	for _, g := range gates {
		fmt.Printf("hotpath gate %s: %s (%s)\n", g.Name, g.Status, g.Reason)
	}
	if protoAllocs > 0 {
		return fmt.Errorf("hotpath: protocol roundtrip allocates %.1f objects/op, want 0", protoAllocs)
	}
	for _, g := range gates {
		if g.Status == "failed" {
			return fmt.Errorf("hotpath: %s", g.Reason)
		}
	}
	return nil
}

// matrixGates judges the core-scaling acceptance criteria on the rungs
// the host can actually parallelize: ≤30%-off-linear at 4 cores
// (NumCPU ≥ 4) and ≥2× the 226k msg/s shared-scheduler baseline at 8
// (NumCPU ≥ 8). A host with fewer CPUs cannot distinguish scheduler
// collapse from having one CPU, so the gate is recorded as skipped
// rather than silently passed.
func matrixGates(matrix []matrixEntry, ncpu int) []gateStatus {
	linearity := gateStatus{
		Name:   "scaling_4core_linearity",
		Status: "skipped",
		Reason: fmt.Sprintf("needs a 4-proc rung on a >=4-CPU host (num_cpu=%d)", ncpu),
	}
	multicore := gateStatus{
		Name:   "multicore_8proc_speedup",
		Status: "skipped",
		Reason: fmt.Sprintf("needs an 8-proc rung on a >=8-CPU host (num_cpu=%d)", ncpu),
	}
	for _, e := range matrix {
		if e.GOMAXPROCS > ncpu {
			continue
		}
		if e.GOMAXPROCS == 4 {
			if e.ScalingVs1 < 4*linearityFloor {
				linearity.Status = "failed"
				linearity.Reason = fmt.Sprintf("4-core scaling %.2fx vs 1 proc, want >= %.2fx (<=30%% off linear)",
					e.ScalingVs1, 4*linearityFloor)
			} else {
				linearity.Status = "passed"
				linearity.Reason = fmt.Sprintf("%.2fx vs 1 proc at 4 cores", e.ScalingVs1)
			}
		}
		if e.GOMAXPROCS >= 8 {
			if e.MsgPerSec < multicoreSpeedup*baselineMultiCoreTCP {
				multicore.Status = "failed"
				multicore.Reason = fmt.Sprintf("%.0f msg/s at GOMAXPROCS=%d, want >= %.0f (2x the %d shared-scheduler baseline)",
					e.MsgPerSec, e.GOMAXPROCS, multicoreSpeedup*baselineMultiCoreTCP, baselineMultiCoreTCP)
			} else {
				multicore.Status = "passed"
				multicore.Reason = fmt.Sprintf("%.2fx the shared-scheduler baseline at GOMAXPROCS=%d",
					e.MsgPerSec/baselineMultiCoreTCP, e.GOMAXPROCS)
			}
		}
	}
	return []gateStatus{linearity, multicore}
}

// checkMatrixGates is the pass/fail view of matrixGates: the first
// failed gate becomes the error.
func checkMatrixGates(matrix []matrixEntry, ncpu int) error {
	for _, g := range matrixGates(matrix, ncpu) {
		if g.Status == "failed" {
			return fmt.Errorf("hotpath: %s", g.Reason)
		}
	}
	return nil
}

// measureMatrix sweeps the GOMAXPROCS ladder: each rung runs an n-core
// server and n concurrent pipelined connections at GOMAXPROCS=n, so a
// rung's rate reflects n shared-nothing cores each owning one
// connection's traffic. GOMAXPROCS is restored before returning.
func measureMatrix(ioSize int, dur time.Duration) ([]matrixEntry, error) {
	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)

	var out []matrixEntry
	var base float64
	for _, n := range matrixProcs {
		runtime.GOMAXPROCS(n)
		rate, err := measureCores(ioSize, n, dur)
		if err != nil {
			return nil, fmt.Errorf("gomaxprocs=%d: %w", n, err)
		}
		e := matrixEntry{GOMAXPROCS: n, Cores: n, MsgPerSec: rate}
		if n == 1 {
			base = rate
		}
		if base > 0 {
			e.ScalingVs1 = rate / base
		}
		out = append(out, e)
	}
	return out, nil
}

// measureCores drives an n-core server with n pipelined TCP connections
// (one tenant per connection, so accept-time pinning spreads them one
// per core) and returns the aggregate msg/s.
func measureCores(ioSize, n int, dur time.Duration) (float64, error) {
	srv, err := server.New(server.Config{
		Addr:      "127.0.0.1:0",
		Cores:     n,
		Model:     core.CostModel{ReadCost: core.TokenUnit, ReadOnlyReadCost: core.TokenUnit / 2, WriteCost: 10 * core.TokenUnit},
		TokenRate: 100_000_000 * core.TokenUnit,
	}, storage.NewMem(64<<20))
	if err != nil {
		return 0, err
	}
	defer srv.Close()

	const window = 128
	var (
		wg     sync.WaitGroup
		counts = make([]int, n)
		errs   = make([]error, n)
	)
	begin := time.Now()
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			counts[i], errs[i] = driveConn(srv.Addr(), ioSize, window, dur)
		}(i)
	}
	wg.Wait()
	elapsed := time.Since(begin)
	total := 0
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			return 0, errs[i]
		}
		total += counts[i]
	}
	return float64(total) / elapsed.Seconds(), nil
}

// driveConn runs one pipelined read loop over its own connection and
// tenant for the wall-clock window, returning the completed count.
func driveConn(addr string, size, window int, dur time.Duration) (int, error) {
	cl, err := client.Dial(addr)
	if err != nil {
		return 0, err
	}
	defer cl.Close()
	h, err := cl.Register(protocol.Registration{Writable: true, BestEffort: true})
	if err != nil {
		return 0, err
	}
	data := make([]byte, size)
	for i := range data {
		data[i] = byte(i)
	}
	if err := cl.Write(h, 0, data); err != nil {
		return 0, err
	}
	calls := make([]*client.Call, 0, window)
	n := 0
	begin := time.Now()
	for time.Since(begin) < dur {
		if len(calls) == window {
			c := calls[0]
			calls = calls[:copy(calls, calls[1:])]
			<-c.Done
			if c.Err != nil {
				return 0, c.Err
			}
		}
		c, err := cl.GoRead(h, 0, size)
		if err != nil {
			return 0, err
		}
		calls = append(calls, c)
		n++
	}
	for _, c := range calls {
		<-c.Done
		if c.Err != nil {
			return 0, c.Err
		}
	}
	return n, nil
}

// protoRoundtripAllocs is the deterministic allocation count of one full
// frame-encode + frame-decode with pooled buffers — the same harness as
// TestProtocolRoundtripZeroAlloc.
func protoRoundtripAllocs() float64 {
	payload := make([]byte, 4096)
	hdr := protocol.Header{Opcode: protocol.OpWrite, LBA: 8, Count: 4096}
	arena := make([]byte, 0, protocol.HeaderSize+len(payload))
	lease := bufpool.Get(4096)
	defer lease.Release()
	var rd bytes.Reader
	var m protocol.Message
	alloc := func(n int) []byte { lease.SetLen(n); return lease.Bytes() }
	run := func() {
		var err error
		arena, err = protocol.AppendMessage(arena[:0], &hdr, payload)
		if err != nil {
			panic(err)
		}
		rd.Reset(arena)
		if err := protocol.ReadMessageInto(&rd, &m, alloc); err != nil {
			panic(err)
		}
	}
	run() // warm up (arena growth, pool priming)
	return testing.AllocsPerRun(200, run)
}

// measureLoopback runs pipelined reads against an in-process server for
// the given wall-clock window and returns msg/s and p99 latency.
func measureLoopback(udp bool, size, window int, dur time.Duration) (float64, time.Duration, error) {
	cfg := server.Config{
		Addr:      "127.0.0.1:0",
		Cores:     2,
		Model:     core.CostModel{ReadCost: core.TokenUnit, ReadOnlyReadCost: core.TokenUnit / 2, WriteCost: 10 * core.TokenUnit},
		TokenRate: 100_000_000 * core.TokenUnit,
	}
	if udp {
		cfg.UDPAddr = "127.0.0.1:0"
	}
	srv, err := server.New(cfg, storage.NewMem(64<<20))
	if err != nil {
		return 0, 0, err
	}
	defer srv.Close()

	var cl *client.Client
	if udp {
		cl, err = client.DialUDP(srv.UDPAddr())
	} else {
		cl, err = client.Dial(srv.Addr())
	}
	if err != nil {
		return 0, 0, err
	}
	defer cl.Close()

	h, err := cl.Register(protocol.Registration{Writable: true, BestEffort: true})
	if err != nil {
		return 0, 0, err
	}
	data := make([]byte, size)
	for i := range data {
		data[i] = byte(i)
	}
	if err := cl.Write(h, 0, data); err != nil {
		return 0, 0, err
	}

	type inflight struct {
		c     *client.Call
		start time.Time
	}
	calls := make([]inflight, 0, window)
	lats := make([]time.Duration, 0, 1<<18)
	reap := func(f inflight) error {
		<-f.c.Done
		if f.c.Err != nil {
			return f.c.Err
		}
		lats = append(lats, time.Since(f.start))
		return nil
	}

	n := 0
	begin := time.Now()
	for time.Since(begin) < dur {
		if len(calls) == window {
			f := calls[0]
			calls = calls[:copy(calls, calls[1:])]
			if err := reap(f); err != nil {
				return 0, 0, err
			}
		}
		c, err := cl.GoRead(h, 0, size)
		if err != nil {
			return 0, 0, err
		}
		calls = append(calls, inflight{c: c, start: time.Now()})
		n++
	}
	for _, f := range calls {
		if err := reap(f); err != nil {
			return 0, 0, err
		}
	}
	elapsed := time.Since(begin)

	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	var p99 time.Duration
	if len(lats) > 0 {
		p99 = lats[len(lats)*99/100]
	}
	return float64(n) / elapsed.Seconds(), p99, nil
}
