// Command reflex-calibrate derives a device's request cost model the way
// the paper's control plane does (§3.2.1): it sweeps tail latency versus
// throughput at several read/write ratios on the (simulated) device, fits
// the write cost and the read-only read cost by least squares, and prints
// the token rates available at common latency SLOs.
//
// Usage:
//
//	reflex-calibrate -device deviceA
package main

import (
	"flag"
	"fmt"
	"log"
	"sort"

	"github.com/reflex-go/reflex/internal/core"
	"github.com/reflex-go/reflex/internal/ctrl"
	"github.com/reflex-go/reflex/internal/flashsim"
	"github.com/reflex-go/reflex/internal/sim"
)

func main() {
	device := flag.String("device", "deviceA", "device profile to calibrate")
	verbose := flag.Bool("v", false, "print the raw sweep curves")
	flag.Parse()

	profiles := flashsim.Profiles()
	spec, ok := profiles[*device]
	if !ok {
		names := make([]string, 0, len(profiles))
		for n := range profiles {
			names = append(names, n)
		}
		sort.Strings(names)
		log.Fatalf("unknown device %q (have %v)", *device, names)
	}

	fmt.Printf("calibrating %s: %d channels, %.0fK tokens/s raw capacity\n",
		spec.Name, spec.Channels, spec.TokenCapacityPerSec()/1000)

	cal := ctrl.DefaultCalibrator(spec)
	res, err := cal.Run()
	if err != nil {
		log.Fatal(err)
	}

	if *verbose {
		for _, curve := range res.Curves {
			fmt.Printf("\n%d%% read sweep:\n", curve.ReadPercent)
			for _, pt := range curve.Points {
				fmt.Printf("  %8.0f IOPS  p95 %6dus\n", pt.IOPS, pt.P95/sim.Microsecond)
			}
		}
		fmt.Println()
	}

	fmt.Printf("fitted write cost:      %.2f tokens (rounded to %d)\n",
		res.WriteCostFit, res.Model.WriteCost/core.TokenUnit)
	fmt.Printf("fitted read-only cost:  %.2f tokens (snapped to %.1f)\n",
		res.ReadOnlyCostFit, float64(res.Model.ReadOnlyReadCost)/float64(core.TokenUnit))

	fmt.Println("token rate by p95 latency SLO:")
	for _, slo := range []sim.Time{300 * sim.Microsecond, 500 * sim.Microsecond,
		sim.Millisecond, 2 * sim.Millisecond} {
		rate := res.TokenRateForP95(slo)
		fmt.Printf("  %6dus: %7.0fK tokens/s\n", slo/sim.Microsecond,
			float64(rate)/float64(core.TokenUnit)/1000)
	}
}
