// Command reflex-calibrate derives a device's request cost model the way
// the paper's control plane does (§3.2.1): it sweeps tail latency versus
// throughput at several read/write ratios on the (simulated) device, fits
// the write cost and the read-only read cost by least squares, and prints
// the token rates available at common latency SLOs.
//
// Usage:
//
//	reflex-calibrate -device deviceA
package main

import (
	"flag"
	"fmt"
	"log"
	"sort"

	"github.com/reflex-go/reflex/internal/core"
	"github.com/reflex-go/reflex/internal/ctrl"
	"github.com/reflex-go/reflex/internal/flashsim"
	"github.com/reflex-go/reflex/internal/sim"
)

func main() {
	device := flag.String("device", "deviceA", "device profile to calibrate")
	verbose := flag.Bool("v", false, "print the raw sweep curves")
	placeStreams := flag.Int("placement-streams", 0,
		"also measure GC write amplification with this many FDP-style placement streams (hot/cold writer mix on an explicit erase-unit geometry of the device); 1 = everything mixed")
	trim := flag.Bool("trim", false,
		"also measure the discard (OpTrim) effect on GC write amplification: a delete-heavy workload run with and without trimming the deleted data")
	flag.Parse()

	profiles := flashsim.Profiles()
	spec, ok := profiles[*device]
	if !ok {
		names := make([]string, 0, len(profiles))
		for n := range profiles {
			names = append(names, n)
		}
		sort.Strings(names)
		log.Fatalf("unknown device %q (have %v)", *device, names)
	}

	fmt.Printf("calibrating %s: %d channels, %.0fK tokens/s raw capacity\n",
		spec.Name, spec.Channels, spec.TokenCapacityPerSec()/1000)

	cal := ctrl.DefaultCalibrator(spec)
	res, err := cal.Run()
	if err != nil {
		log.Fatal(err)
	}

	if *verbose {
		for _, curve := range res.Curves {
			fmt.Printf("\n%d%% read sweep:\n", curve.ReadPercent)
			for _, pt := range curve.Points {
				fmt.Printf("  %8.0f IOPS  p95 %6dus\n", pt.IOPS, pt.P95/sim.Microsecond)
			}
		}
		fmt.Println()
	}

	fmt.Printf("fitted write cost:      %.2f tokens (rounded to %d)\n",
		res.WriteCostFit, res.Model.WriteCost/core.TokenUnit)
	fmt.Printf("fitted read-only cost:  %.2f tokens (snapped to %.1f)\n",
		res.ReadOnlyCostFit, float64(res.Model.ReadOnlyReadCost)/float64(core.TokenUnit))

	fmt.Println("token rate by p95 latency SLO:")
	for _, slo := range []sim.Time{300 * sim.Microsecond, 500 * sim.Microsecond,
		sim.Millisecond, 2 * sim.Millisecond} {
		rate := res.TokenRateForP95(slo)
		fmt.Printf("  %6dus: %7.0fK tokens/s\n", slo/sim.Microsecond,
			float64(rate)/float64(core.TokenUnit)/1000)
	}

	if *trim {
		fmt.Printf("\ndiscard (trim) effect on GC write amplification (cold fill deleted mid-run, hot overwriter continues):\n")
		waOff, _ := measureTrimWA(spec, false)
		waOn, trimmed := measureTrimWA(spec, true)
		fmt.Printf("  without trim: %.3f\n", waOff)
		fmt.Printf("  with trim:    %.3f  (%d pages discarded)\n", waOn, trimmed)
	}

	if *placeStreams > 0 {
		fmt.Printf("\nGC write amplification (hot 64-block overwriter + cold 400-block writer, erase-unit geometry):\n")
		for _, n := range []int{1, *placeStreams} {
			wa := measureWriteAmp(spec, n)
			label := "mixed"
			if n > 1 {
				label = "segregated"
			}
			fmt.Printf("  %d stream(s) (%s): %.3f\n", n, label, wa)
			if n == *placeStreams {
				break
			}
		}
	}
}

// measureWriteAmp drives a hot overwriter and a cold writer against the
// device under the explicit erase-unit placement model with the given
// number of streams, and returns the measured device-wide write
// amplification. The geometry is shrunk so a short run wraps the physical
// space many times and GC reaches steady state.
func measureWriteAmp(spec flashsim.Spec, streams int) float64 {
	s := spec
	s.Channels = 4
	s.EraseUnitPages = 32
	s.UnitsPerChannel = 10
	s.PlacementStreams = streams
	eng := sim.NewEngine()
	dev := flashsim.New(eng, s, 42)

	const dur = 300 * sim.Millisecond
	coldStream := 0
	if streams > 1 {
		coldStream = 1
	}
	// Hot: 20K writes/s over 64 blocks (stream 0). Cold: 5K writes/s
	// over 400 blocks at an offset (coldStream). Unthrottled (no token
	// scheduler in front), so the rates sit below the 4-channel program
	// bandwidth and GC keeps pace.
	submit := func(period sim.Time, blocks, base uint64, stream int, seed uint64) {
		rng := seed
		for t := sim.Time(0); t < dur; t += period {
			rng = rng*6364136223846793005 + 1442695040888963407
			blk := base + (rng>>33)%blocks
			st := stream
			eng.At(t, func() {
				dev.Submit(&flashsim.Request{Op: flashsim.OpWrite, Block: blk, Size: flashsim.PageSize, Stream: st})
			})
		}
	}
	submit(dur/6000, 64, 0, 0, 7)
	submit(dur/1500, 400, 1024, coldStream, 11)
	eng.RunUntil(dur + 5*sim.Millisecond)
	return dev.WriteAmp()
}

// measureTrimWA measures how discard changes GC write amplification on
// a delete-heavy workload: a cold data set is written once and then
// logically deleted mid-run while a hot overwriter keeps the device
// busy. Without trim the FTL still sees every cold page as live, so GC
// relocates dead-to-the-host data over and over; with trim the deleted
// pages are invalid and their units reclaim for free. Returns the
// device-wide write amplification and the number of pages the trim
// actually invalidated.
func measureTrimWA(spec flashsim.Spec, trim bool) (float64, int) {
	s := spec
	s.Channels = 4
	s.EraseUnitPages = 32
	s.UnitsPerChannel = 10 // 1280 pages physical
	s.PlacementStreams = 1
	eng := sim.NewEngine()
	dev := flashsim.New(eng, s, 42)

	const (
		coldBlocks = 800 // ~62% of physical capacity, written once
		hotBlocks  = 64
		hotBase    = 4096
		fillEnd    = 50 * sim.Millisecond
		deleteAt   = 60 * sim.Millisecond
		dur        = 300 * sim.Millisecond
	)
	// Cold fill: sequential, once.
	for i := 0; i < coldBlocks; i++ {
		blk := uint64(i)
		eng.At(fillEnd*sim.Time(i)/coldBlocks, func() {
			dev.Submit(&flashsim.Request{Op: flashsim.OpWrite, Block: blk, Size: flashsim.PageSize})
		})
	}
	// Mid-run delete of the cold set; only the trim variant tells the FTL.
	trimmed := 0
	if trim {
		eng.At(deleteAt, func() { trimmed = dev.Trim(0, coldBlocks) })
	}
	// Hot overwriter: 20K writes/s over a small set, forcing GC.
	rng := uint64(7)
	for t := deleteAt; t < dur; t += dur / 6000 {
		rng = rng*6364136223846793005 + 1442695040888963407
		blk := hotBase + (rng>>33)%hotBlocks
		eng.At(t, func() {
			dev.Submit(&flashsim.Request{Op: flashsim.OpWrite, Block: blk, Size: flashsim.PageSize})
		})
	}
	eng.RunUntil(dur + 5*sim.Millisecond)
	return dev.WriteAmp(), trimmed
}
