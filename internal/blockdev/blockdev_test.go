package blockdev

import (
	"testing"

	"github.com/reflex-go/reflex/internal/core"
	"github.com/reflex-go/reflex/internal/flashsim"
	"github.com/reflex-go/reflex/internal/sim"
	"github.com/reflex-go/reflex/internal/workload"
)

// instant completes everything immediately.
func instant(eng *sim.Engine) workload.Target {
	return workload.TargetFunc(func(op core.OpType, b uint64, s int, done func(sim.Time)) {
		eng.After(0, func() { done(0) })
	})
}

func TestLocalAddsOverhead(t *testing.T) {
	eng := sim.NewEngine()
	dev := flashsim.New(eng, flashsim.DeviceA(), 31)
	local := NewLocal(eng, workload.DeviceTarget(eng, dev))
	var lat sim.Time
	eng.Spawn("app", func(p *sim.Proc) {
		lat = Read(p, local, 42, 4096)
	})
	eng.Run()
	// Device ~78us + 12us driver overhead.
	if lat < 75*sim.Microsecond || lat > 110*sim.Microsecond {
		t.Fatalf("local read latency = %dus, want ~90us", lat/1000)
	}
}

func TestProcBlockingHelpers(t *testing.T) {
	eng := sim.NewEngine()
	local := NewLocal(eng, instant(eng))
	local.Overhead = 10 * sim.Microsecond
	var rl, wl sim.Time
	eng.Spawn("app", func(p *sim.Proc) {
		rl = Read(p, local, 0, 4096)
		wl = Write(p, local, 1, 4096)
		ReadMany(p, local, []uint64{1, 2, 3, 4}, 4096)
	})
	eng.Run()
	if rl != 10*sim.Microsecond || wl != 10*sim.Microsecond {
		t.Fatalf("latencies %d, %d", rl, wl)
	}
}

func TestReadManyParallel(t *testing.T) {
	// 8 blocks on an unlimited target with 50us latency: ReadMany takes
	// ~50us, not 400us.
	eng := sim.NewEngine()
	tgt := workload.TargetFunc(func(op core.OpType, b uint64, s int, done func(sim.Time)) {
		eng.After(50*sim.Microsecond, func() { done(50 * sim.Microsecond) })
	})
	local := NewLocal(eng, tgt)
	local.Overhead = 0
	var elapsed sim.Time
	eng.Spawn("app", func(p *sim.Proc) {
		start := p.Now()
		blocks := make([]uint64, 8)
		for i := range blocks {
			blocks[i] = uint64(i)
		}
		ReadMany(p, local, blocks, 4096)
		elapsed = p.Now() - start
	})
	eng.Run()
	if elapsed != 50*sim.Microsecond {
		t.Fatalf("ReadMany of 8 blocks took %dus, want 50 (parallel)", elapsed/1000)
	}
}

func TestRemoteContextCPUCeiling(t *testing.T) {
	// One context at 14us round-trip CPU -> ~70K IOPS ceiling (§4.2).
	eng := sim.NewEngine()
	r := NewRemote(eng, []workload.Target{instant(eng)})
	res := workload.OpenLoop{
		IOPS:     150_000,
		Mix:      workload.Mix{ReadPercent: 100, Size: 4096, Blocks: 1000},
		Warmup:   10 * sim.Millisecond,
		Duration: 200 * sim.Millisecond,
		Seed:     1,
	}.Start(eng, r)
	eng.Run()
	if iops := res.IOPS(); iops < 62_000 || iops > 80_000 {
		t.Fatalf("single-context ceiling = %.0f IOPS, want ~71K", iops)
	}
}

func TestRemoteScalesWithContexts(t *testing.T) {
	run := func(n int) float64 {
		eng := sim.NewEngine()
		conns := make([]workload.Target, n)
		for i := range conns {
			conns[i] = instant(eng)
		}
		r := NewRemote(eng, conns)
		res := workload.OpenLoop{
			IOPS:     500_000,
			Mix:      workload.Mix{ReadPercent: 100, Size: 4096, Blocks: 1000},
			Warmup:   10 * sim.Millisecond,
			Duration: 100 * sim.Millisecond,
			Seed:     2,
		}.Start(eng, r)
		eng.Run()
		return res.IOPS()
	}
	one, four := run(1), run(4)
	if four < 3.2*one {
		t.Fatalf("4 contexts (%.0f) not ~4x one context (%.0f)", four, one)
	}
}

func TestContextPinning(t *testing.T) {
	eng := sim.NewEngine()
	conns := []workload.Target{instant(eng), instant(eng)}
	r := NewRemote(eng, conns)
	if r.Contexts() != 2 {
		t.Fatal("Contexts()")
	}
	d0 := r.Context(0)
	n := 0
	eng.At(0, func() {
		for i := 0; i < 100; i++ {
			d0.Submit(core.OpRead, 0, 4096, func(sim.Time) { n++ })
		}
	})
	eng.Run()
	if n != 100 {
		t.Fatalf("completed %d", n)
	}
	// All work landed on context 0's core.
	if r.ctxs[0].core.Jobs() == 0 || r.ctxs[1].core.Jobs() != 0 {
		t.Fatalf("pinning failed: ctx0=%d ctx1=%d jobs",
			r.ctxs[0].core.Jobs(), r.ctxs[1].core.Jobs())
	}
}

func TestRemoteValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("empty conns accepted")
		}
	}()
	NewRemote(sim.NewEngine(), nil)
}
