// Package blockdev models the client-side block device paths used by the
// legacy-application evaluation (§4.2, §5.6):
//
//   - Local: the kernel NVMe block driver over the local simulated device.
//   - Remote: the paper's remote block device driver — a blk-mq driver
//     with one hardware context per core, each owning a socket to a
//     ReFlex (or iSCSI/libaio) server and a kernel thread for receive
//     processing. Client-side CPU per message is what limits a context to
//     ~70K 4KB messages/s on the Linux stack (§4.2).
//
// Applications submit through a Device; the helper functions give
// process-style (blocking) access on top of the callback API.
package blockdev

import (
	"fmt"

	"github.com/reflex-go/reflex/internal/core"
	"github.com/reflex-go/reflex/internal/sim"
	"github.com/reflex-go/reflex/internal/workload"
)

// Device accepts block I/O and reports completion latency. Block addresses
// are in 4KB units.
type Device interface {
	Submit(op core.OpType, block uint64, size int, done func(lat sim.Time))
}

// Read blocks the calling process until a read completes.
func Read(p *sim.Proc, d Device, block uint64, size int) sim.Time {
	c := p.NewCompletion()
	var lat sim.Time
	d.Submit(core.OpRead, block, size, func(l sim.Time) {
		lat = l
		c.Complete()
	})
	c.Wait()
	return lat
}

// Write blocks the calling process until a write completes.
func Write(p *sim.Proc, d Device, block uint64, size int) sim.Time {
	c := p.NewCompletion()
	var lat sim.Time
	d.Submit(core.OpWrite, block, size, func(l sim.Time) {
		lat = l
		c.Complete()
	})
	c.Wait()
	return lat
}

// ReadMany fetches several blocks concurrently and blocks until all have
// completed (the driver issues each block without coalescing, §4.2).
func ReadMany(p *sim.Proc, d Device, blocks []uint64, size int) {
	if len(blocks) == 0 {
		return
	}
	wg := p.NewWaitGroup()
	wg.Add(len(blocks))
	for _, b := range blocks {
		d.Submit(core.OpRead, b, size, func(sim.Time) { wg.Done() })
	}
	wg.Wait()
}

// Local is the kernel NVMe block driver over a local device: a fixed
// driver/interrupt overhead around each I/O, no network.
type Local struct {
	eng *sim.Engine
	tgt workload.Target
	// Overhead is the block-layer + interrupt cost added to each I/O.
	Overhead sim.Time
}

// NewLocal wraps a local target (usually workload.DeviceTarget).
func NewLocal(eng *sim.Engine, tgt workload.Target) *Local {
	return &Local{eng: eng, tgt: tgt, Overhead: 12 * sim.Microsecond}
}

// Submit implements Device.
func (l *Local) Submit(op core.OpType, block uint64, size int, done func(lat sim.Time)) {
	start := l.eng.Now()
	l.eng.After(l.Overhead/2, func() {
		l.tgt.Issue(op, block, size, func(sim.Time) {
			l.eng.After(l.Overhead/2, func() {
				if done != nil {
					done(l.eng.Now() - start)
				}
			})
		})
	})
}

// Remote is the blk-mq remote block device driver: per-context kernel CPU
// cost around each message plus a remote connection per context.
type Remote struct {
	eng  *sim.Engine
	ctxs []*hwContext
	next int

	// TxCPU and RxCPU are per-message kernel costs on the context's core
	// (the Linux TCP stack's ~70K msgs/s/thread ceiling: ~14us round
	// trip, §4.2).
	TxCPU sim.Time
	RxCPU sim.Time
	// BlockLayer is the fixed bio-layer overhead per I/O.
	BlockLayer sim.Time
}

// hwContext is one blk-mq hardware context: a core and a connection. The
// core alternates bounded batches of transmissions and receptions (the
// kernel's softirq budget), so neither direction starves under overload.
type hwContext struct {
	r       *Remote
	core    *sim.Resource
	conn    workload.Target
	txQ     []*bio
	rxQ     []*bio
	running bool
}

// bio is one in-flight block I/O.
type bio struct {
	op    core.OpType
	block uint64
	size  int
	start sim.Time
	done  func(lat sim.Time)
}

const ctxBudget = 32 // NAPI-style per-pass budget

func (c *hwContext) kick() {
	if c.running {
		return
	}
	c.running = true
	c.r.eng.After(0, c.pass)
}

func (c *hwContext) pass() {
	take := func(q *[]*bio) []*bio {
		n := len(*q)
		if n > ctxBudget {
			n = ctxBudget
		}
		batch := (*q)[:n:n]
		*q = append([]*bio(nil), (*q)[n:]...)
		return batch
	}
	for _, b := range take(&c.rxQ) {
		b := b
		c.core.Schedule(c.r.RxCPU, func(at sim.Time) {
			if b.done != nil {
				b.done(at - b.start)
			}
		})
	}
	for _, b := range take(&c.txQ) {
		b := b
		c.core.Schedule(c.r.TxCPU, func(sim.Time) {
			c.conn.Issue(b.op, b.block, b.size, func(sim.Time) {
				c.rxQ = append(c.rxQ, b)
				c.kick()
			})
		})
	}
	c.core.Schedule(0, func(sim.Time) {
		c.running = false
		if len(c.txQ) > 0 || len(c.rxQ) > 0 {
			c.kick()
		}
	})
}

// NewRemote builds a remote block device over one connection per hardware
// context. conns typically come from dataplane.Server.Connect or
// baseline.Server.Connect, one per context.
func NewRemote(eng *sim.Engine, conns []workload.Target) *Remote {
	if len(conns) == 0 {
		panic("blockdev: NewRemote needs at least one connection")
	}
	r := &Remote{
		eng:        eng,
		TxCPU:      7 * sim.Microsecond,
		RxCPU:      7 * sim.Microsecond,
		BlockLayer: 3 * sim.Microsecond,
	}
	for i, c := range conns {
		r.ctxs = append(r.ctxs, &hwContext{
			r:    r,
			core: sim.NewResource(eng, fmt.Sprintf("blkmq/ctx%d", i)),
			conn: c,
		})
	}
	return r
}

// NewLocalMQ builds the kernel NVMe multi-queue driver over a local device
// target: the same blk-mq context structure as the remote driver but with
// the cheaper local submission/interrupt path (~7us of CPU per I/O, so one
// context sustains ~140K IOPS, matching the FIO local scaling of §5.6).
func NewLocalMQ(eng *sim.Engine, tgt workload.Target, contexts int) *Remote {
	if contexts <= 0 {
		panic("blockdev: NewLocalMQ needs at least one context")
	}
	conns := make([]workload.Target, contexts)
	for i := range conns {
		conns[i] = tgt
	}
	r := NewRemote(eng, conns)
	r.TxCPU = 3500
	r.RxCPU = 3500
	r.BlockLayer = 3 * sim.Microsecond
	return r
}

// Contexts returns the number of hardware contexts.
func (r *Remote) Contexts() int { return len(r.ctxs) }

// Submit implements Device, spreading I/Os across contexts round-robin the
// way blk-mq maps submitting CPUs to contexts.
func (r *Remote) Submit(op core.OpType, block uint64, size int, done func(lat sim.Time)) {
	ctx := r.ctxs[r.next%len(r.ctxs)]
	r.next++
	r.SubmitOn(ctx, op, block, size, done)
}

// Issue makes Remote satisfy workload.Target.
func (r *Remote) Issue(op core.OpType, block uint64, size int, done func(lat sim.Time)) {
	r.Submit(op, block, size, done)
}

// Context returns a Device view pinned to one hardware context (an
// application thread submitting from one CPU).
func (r *Remote) Context(i int) Device {
	return pinned{r: r, ctx: r.ctxs[i%len(r.ctxs)]}
}

type pinned struct {
	r   *Remote
	ctx *hwContext
}

// Submit implements Device.
func (p pinned) Submit(op core.OpType, block uint64, size int, done func(lat sim.Time)) {
	p.r.SubmitOn(p.ctx, op, block, size, done)
}

// Issue makes a pinned context satisfy workload.Target.
func (p pinned) Issue(op core.OpType, block uint64, size int, done func(lat sim.Time)) {
	p.Submit(op, block, size, done)
}

// Issue makes Local satisfy workload.Target.
func (l *Local) Issue(op core.OpType, block uint64, size int, done func(lat sim.Time)) {
	l.Submit(op, block, size, done)
}

// SubmitOn issues an I/O through a specific context.
func (r *Remote) SubmitOn(ctx *hwContext, op core.OpType, block uint64, size int, done func(lat sim.Time)) {
	b := &bio{op: op, block: block, size: size, start: r.eng.Now(), done: done}
	r.eng.After(r.BlockLayer, func() {
		ctx.txQ = append(ctx.txQ, b)
		ctx.kick()
	})
}
