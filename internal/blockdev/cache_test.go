package blockdev

import (
	"testing"

	"github.com/reflex-go/reflex/internal/core"
	"github.com/reflex-go/reflex/internal/sim"
	"github.com/reflex-go/reflex/internal/workload"
)

func instantDevice(eng *sim.Engine) Device {
	l := NewLocal(eng, workload.TargetFunc(
		func(op core.OpType, b uint64, s int, done func(sim.Time)) {
			eng.After(0, func() { done(0) })
		}))
	l.Overhead = 0
	return l
}

func countingDevice(eng *sim.Engine, lat sim.Time, reads *int) Device {
	l := NewLocal(eng, workload.TargetFunc(
		func(op core.OpType, b uint64, s int, done func(sim.Time)) {
			if op == core.OpRead {
				*reads++
			}
			eng.After(lat, func() { done(lat) })
		}))
	l.Overhead = 0
	return l
}

func TestPageCacheHitMissEvict(t *testing.T) {
	eng := sim.NewEngine()
	c := NewPageCache(instantDevice(eng), 3)
	if c.Cap() != 3 {
		t.Fatal("Cap")
	}
	eng.Spawn("t", func(p *sim.Proc) {
		c.Ensure(p, []uint64{1, 2, 3})
		if c.Misses != 3 || c.Len() != 3 {
			t.Errorf("fill: misses=%d len=%d", c.Misses, c.Len())
		}
		c.Ensure(p, []uint64{1, 1, 1}) // duplicates collapse
		if c.Hits != 1 {
			t.Errorf("duplicate hits counted: %d", c.Hits)
		}
		c.Ensure(p, []uint64{4}) // evicts LRU page 2
		if c.Evictions != 1 {
			t.Errorf("evictions=%d", c.Evictions)
		}
		c.Ensure(p, []uint64{1}) // still resident (recently touched)
		if c.Hits != 2 {
			t.Errorf("LRU recency lost: hits=%d", c.Hits)
		}
	})
	eng.Run()
}

func TestPageCacheSingleFlightAcrossProcs(t *testing.T) {
	eng := sim.NewEngine()
	reads := 0
	c := NewPageCache(countingDevice(eng, 200*sim.Microsecond, &reads), 8)
	finished := 0
	for i := 0; i < 5; i++ {
		eng.Spawn("t", func(p *sim.Proc) {
			c.Ensure(p, []uint64{42})
			finished++
		})
	}
	eng.Run()
	if reads != 1 {
		t.Fatalf("single-flight violated: %d device reads", reads)
	}
	if finished != 5 {
		t.Fatalf("%d waiters finished", finished)
	}
	if c.Waits != 4 {
		t.Fatalf("Waits=%d, want 4", c.Waits)
	}
}

func TestPageCachePrefetchDedup(t *testing.T) {
	eng := sim.NewEngine()
	reads := 0
	c := NewPageCache(countingDevice(eng, 100*sim.Microsecond, &reads), 8)
	eng.Spawn("t", func(p *sim.Proc) {
		c.Prefetch([]uint64{1, 2})
		c.Prefetch([]uint64{1, 2}) // already inflight: no new reads
		p.Sleep(150 * sim.Microsecond)
		c.Prefetch([]uint64{1, 2}) // already resident: no new reads
		c.Ensure(p, []uint64{1, 2})
	})
	eng.Run()
	if reads != 2 {
		t.Fatalf("prefetch issued %d reads, want 2", reads)
	}
	if c.Hits != 2 {
		t.Fatalf("hits=%d", c.Hits)
	}
}

func TestPageCacheCapacityValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero capacity accepted")
		}
	}()
	NewPageCache(instantDevice(sim.NewEngine()), 0)
}

func TestLocalMQContextsAndValidation(t *testing.T) {
	eng := sim.NewEngine()
	tgt := workload.TargetFunc(func(op core.OpType, b uint64, s int, done func(sim.Time)) {
		eng.After(0, func() { done(0) })
	})
	mq := NewLocalMQ(eng, tgt, 3)
	if mq.Contexts() != 3 {
		t.Fatal("contexts")
	}
	n := 0
	eng.At(0, func() {
		for i := 0; i < 30; i++ {
			mq.Issue(core.OpRead, uint64(i), 4096, func(sim.Time) { n++ })
		}
	})
	eng.Run()
	if n != 30 {
		t.Fatalf("completed %d", n)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("zero contexts accepted")
		}
	}()
	NewLocalMQ(eng, tgt, 0)
}

func TestWriteHelperAndPinnedIssue(t *testing.T) {
	eng := sim.NewEngine()
	var ops []core.OpType
	tgt := workload.TargetFunc(func(op core.OpType, b uint64, s int, done func(sim.Time)) {
		ops = append(ops, op)
		eng.After(sim.Microsecond, func() { done(sim.Microsecond) })
	})
	r := NewRemote(eng, []workload.Target{tgt, tgt})
	pinned := r.Context(1)
	eng.Spawn("t", func(p *sim.Proc) {
		Write(p, r, 0, 4096)
		done := false
		pinned.(interface {
			Issue(core.OpType, uint64, int, func(sim.Time))
		}).Issue(core.OpWrite, 1, 4096, func(sim.Time) { done = true })
		p.Sleep(sim.Millisecond)
		if !done {
			t.Error("pinned Issue never completed")
		}
	})
	eng.Run()
	if len(ops) != 2 || ops[0] != core.OpWrite || ops[1] != core.OpWrite {
		t.Fatalf("ops = %v", ops)
	}
}
