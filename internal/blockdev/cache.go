package blockdev

import (
	"container/list"

	"github.com/reflex-go/reflex/internal/core"
	"github.com/reflex-go/reflex/internal/sim"
)

// PageCache is an LRU cache of device pages with single-flight fetches:
// concurrent requests for the same missing page issue one device read.
// It serves as the SAFS-style page cache of the flashx engine and the block cache of the kv store.
type PageCache struct {
	dev Device
	cap int

	lru      *list.List               // of uint64 page numbers, front = MRU
	resident map[uint64]*list.Element // page -> lru node
	inflight map[uint64]*fetch

	// Stats.
	Hits, Misses, Waits, Evictions uint64
}

type fetch struct {
	waiters []func()
}

// NewPageCache creates a cache holding up to capacity pages.
func NewPageCache(dev Device, capacity int) *PageCache {
	if capacity <= 0 {
		panic("blockdev: cache capacity must be positive")
	}
	return &PageCache{
		dev:      dev,
		cap:      capacity,
		lru:      list.New(),
		resident: make(map[uint64]*list.Element),
		inflight: make(map[uint64]*fetch),
	}
}

// Len returns the number of resident pages.
func (c *PageCache) Len() int { return len(c.resident) }

// Cap returns the cache capacity in pages.
func (c *PageCache) Cap() int { return c.cap }

// insert marks a page resident, evicting the LRU page if needed.
func (c *PageCache) insert(page uint64) {
	if el, ok := c.resident[page]; ok {
		c.lru.MoveToFront(el)
		return
	}
	if len(c.resident) >= c.cap {
		tail := c.lru.Back()
		if tail != nil {
			c.lru.Remove(tail)
			delete(c.resident, tail.Value.(uint64))
			c.Evictions++
		}
	}
	c.resident[page] = c.lru.PushFront(page)
}

// startFetch issues the device read for a missing page.
func (c *PageCache) startFetch(page uint64) *fetch {
	f := &fetch{}
	c.inflight[page] = f
	c.dev.Submit(core.OpRead, page, 4096, func(sim.Time) {
		delete(c.inflight, page)
		c.insert(page)
		for _, w := range f.waiters {
			w()
		}
	})
	return f
}

// Ensure blocks the process until every listed page is resident. Duplicate
// page numbers are fine.
func (c *PageCache) Ensure(p *sim.Proc, pages []uint64) {
	wg := p.NewWaitGroup()
	seen := make(map[uint64]bool, len(pages))
	for _, page := range pages {
		if seen[page] {
			continue
		}
		seen[page] = true
		if el, ok := c.resident[page]; ok {
			c.Hits++
			c.lru.MoveToFront(el)
			continue
		}
		var f *fetch
		if inf, ok := c.inflight[page]; ok {
			c.Waits++
			f = inf
		} else {
			c.Misses++
			f = c.startFetch(page)
		}
		wg.Add(1)
		f.waiters = append(f.waiters, wg.Done)
	}
	wg.Wait()
}

// Prefetch starts fetching pages without waiting (readahead).
func (c *PageCache) Prefetch(pages []uint64) {
	for _, page := range pages {
		if _, ok := c.resident[page]; ok {
			continue
		}
		if _, ok := c.inflight[page]; ok {
			continue
		}
		c.Misses++
		c.startFetch(page)
	}
}
