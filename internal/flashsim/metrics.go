package flashsim

import "github.com/reflex-go/reflex/internal/obs"

// RegisterMetrics exposes the device's counters and instantaneous state on
// a telemetry registry. All values are read-side functions evaluated at
// scrape/sample time; the device hot path is untouched. The device is
// single-writer (engine context), so the registry must be scraped from
// engine context or after the simulation stops.
func (d *Device) RegisterMetrics(reg *obs.Registry, labels ...obs.Label) {
	reg.CounterFunc("flash_reads_total", "read requests submitted to the device",
		func() float64 { return float64(d.stats.Reads) }, labels...)
	reg.CounterFunc("flash_writes_total", "write requests submitted to the device",
		func() float64 { return float64(d.stats.Writes) }, labels...)
	reg.CounterFunc("flash_read_pages_total", "4KB pages read",
		func() float64 { return float64(d.stats.ReadPages) }, labels...)
	reg.CounterFunc("flash_write_pages_total", "4KB pages written",
		func() float64 { return float64(d.stats.WritePages) }, labels...)
	reg.CounterFunc("flash_erases_total", "GC/erase pulses (channel-blocking, §2.2)",
		func() float64 { return float64(d.stats.Erases) }, labels...)
	reg.GaugeFunc("flash_busy_channels", "channels currently occupied",
		func() float64 { return float64(d.BusyChannels()) }, labels...)
	reg.GaugeFunc("flash_pending_program_ns", "background program backlog (write buffer pressure)",
		func() float64 { return float64(d.pendingProg) }, labels...)
	reg.GaugeFunc("flash_max_channel_backlog_ns", "booking horizon of the busiest channel",
		func() float64 { return float64(d.MaxChannelBacklog()) }, labels...)
	reg.GaugeFunc("flash_utilization", "mean channel utilization since start",
		d.Utilization, labels...)
	reg.GaugeFunc("flash_wear_multiplier", "service-time inflation from wear-out (§3.2.1)",
		d.WearMultiplier, labels...)
	reg.GaugeFunc("flash_readonly_mode", "1 when serving the read-only fast mode",
		func() float64 {
			if d.ReadOnlyMode() {
				return 1
			}
			return 0
		}, labels...)
}
