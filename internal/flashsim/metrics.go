package flashsim

import (
	"strconv"

	"github.com/reflex-go/reflex/internal/obs"
)

// RegisterMetrics exposes the device's counters and instantaneous state on
// a telemetry registry. All values are read-side functions evaluated at
// scrape/sample time; the device hot path is untouched. The device is
// single-writer (engine context), so the registry must be scraped from
// engine context or after the simulation stops.
func (d *Device) RegisterMetrics(reg *obs.Registry, labels ...obs.Label) {
	reg.CounterFunc("flash_reads_total", "read requests submitted to the device",
		func() float64 { return float64(d.stats.Reads) }, labels...)
	reg.CounterFunc("flash_writes_total", "write requests submitted to the device",
		func() float64 { return float64(d.stats.Writes) }, labels...)
	reg.CounterFunc("flash_read_pages_total", "4KB pages read",
		func() float64 { return float64(d.stats.ReadPages) }, labels...)
	reg.CounterFunc("flash_write_pages_total", "4KB pages written",
		func() float64 { return float64(d.stats.WritePages) }, labels...)
	reg.CounterFunc("flash_erases_total", "GC/erase pulses (channel-blocking, §2.2)",
		func() float64 { return float64(d.stats.Erases) }, labels...)
	reg.GaugeFunc("flash_busy_channels", "channels currently occupied",
		func() float64 { return float64(d.BusyChannels()) }, labels...)
	reg.GaugeFunc("flash_pending_program_ns", "background program backlog (write buffer pressure)",
		func() float64 { return float64(d.pendingProg) }, labels...)
	reg.GaugeFunc("flash_max_channel_backlog_ns", "booking horizon of the busiest channel",
		func() float64 { return float64(d.MaxChannelBacklog()) }, labels...)
	reg.GaugeFunc("flash_utilization", "mean channel utilization since start",
		d.Utilization, labels...)
	reg.GaugeFunc("flash_wear_multiplier", "service-time inflation from wear-out (§3.2.1)",
		d.WearMultiplier, labels...)
	reg.GaugeFunc("flash_readonly_mode", "1 when serving the read-only fast mode",
		func() float64 {
			if d.ReadOnlyMode() {
				return 1
			}
			return 0
		}, labels...)
	if d.pl == nil {
		return
	}
	reg.GaugeFunc("flash_write_amp", "measured device-wide write amplification (host+reloc)/host",
		d.WriteAmp, labels...)
	reg.GaugeFunc("flash_free_erase_units", "free erase units across channels",
		func() float64 { f, _, _ := d.LiveUnits(); return float64(f) }, labels...)
	for s := range d.pl.streams {
		s := s
		slbl := append(append([]obs.Label(nil), labels...), obs.L("stream", strconv.Itoa(s)))
		reg.CounterFunc("flash_stream_host_pages_total", "host pages written via this placement stream",
			func() float64 { return float64(d.pl.streams[s].HostPages) }, slbl...)
		reg.CounterFunc("flash_stream_reloc_pages_total", "pages GC relocated out of this stream's erase units",
			func() float64 { return float64(d.pl.streams[s].RelocPages) }, slbl...)
		reg.CounterFunc("flash_stream_erases_total", "erase-unit reclaims charged to this stream",
			func() float64 { return float64(d.pl.streams[s].Erases) }, slbl...)
		reg.GaugeFunc("flash_stream_write_amp", "measured per-stream write amplification",
			func() float64 { return d.pl.streams[s].WriteAmp() }, slbl...)
	}
}
