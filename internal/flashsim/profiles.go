package flashsim

import "github.com/reflex-go/reflex/internal/sim"

// The three device profiles correspond to the three NVMe devices the paper
// characterizes in Figure 3. Absolute constants are calibrated so that:
//
//   - Device A: ~600K tokens/s capacity, ~1.2M read-only IOPS, 4KB write
//     cost 10 tokens, unloaded 4KB read ~78us (p95 ~90us) and write ~11us
//     (p95 ~17us), matching Figure 1 and Table 2 (local SPDK row).
//   - Device B: ~320K tokens/s, write cost 20 (Figure 3b).
//   - Device C: ~640K tokens/s, write cost 16 (Figure 3c).
//
// The shapes (knee positions per read ratio, 10-20x write cost, read-only
// doubling on A) are what the reproduction preserves; absolute numbers are
// a calibrated fit, re-derivable with cmd/reflex-calibrate.

// DeviceA returns the profile of the paper's device A (the highest-IOPS
// device, used for all headline experiments).
func DeviceA() Spec {
	return Spec{
		Name:     "deviceA",
		Channels: 8,
		Blocks:   1 << 26, // 256 GiB of 4KB pages

		UnitService:           13300,               // 13.3us -> ~601K tokens/s
		ReadArray:             65350,               // + jitter mean 6us + unit/2 = 78us avg
		ReadArrayJitterMean:   6000,                // p95 ~= 90us
		WriteBuffer:           8 * sim.Microsecond, // + jitter mean 3us = 11us avg
		WriteBufferJitterMean: 3000,                // p95 ~= 17us
		WriteBufferSlack:      2 * sim.Millisecond,

		// Erase pulses are rare enough to shape the p99, not the p95: the
		// paper's device A sustains 420K tokens/s under a 500us p95 SLO,
		// while "stricter SLOs, such as 99th ... are difficult to enforce"
		// (§6).
		WriteCost:          10,
		ProgramChunkTokens: 2,
		EraseProb:          0.002,
		EraseDuration:      2 * sim.Millisecond,

		ReadOnlyHalf:   true,
		ReadOnlyWindow: 10 * sim.Millisecond,
	}
}

// DeviceB returns the profile of the paper's device B (lowest capacity,
// most expensive writes).
func DeviceB() Spec {
	return Spec{
		Name:     "deviceB",
		Channels: 8,
		Blocks:   1 << 25, // 128 GiB

		UnitService:           25000, // ~320K tokens/s
		ReadArray:             72000,
		ReadArrayJitterMean:   8000,
		WriteBuffer:           10 * sim.Microsecond,
		WriteBufferJitterMean: 4000,
		WriteBufferSlack:      2 * sim.Millisecond,

		WriteCost:          20,
		ProgramChunkTokens: 2,
		EraseProb:          0.003,
		EraseDuration:      3 * sim.Millisecond,
	}
}

// DeviceC returns the profile of the paper's device C.
func DeviceC() Spec {
	return Spec{
		Name:     "deviceC",
		Channels: 8,
		Blocks:   1 << 26,

		UnitService:           12500, // ~640K tokens/s
		ReadArray:             78000,
		ReadArrayJitterMean:   7000,
		WriteBuffer:           9 * sim.Microsecond,
		WriteBufferJitterMean: 3000,
		WriteBufferSlack:      2 * sim.Millisecond,

		WriteCost:          16,
		ProgramChunkTokens: 2,
		EraseProb:          0.0025,
		EraseDuration:      2500 * sim.Microsecond,
	}
}

// Profiles returns all built-in device profiles keyed by name.
func Profiles() map[string]Spec {
	return map[string]Spec{
		"deviceA": DeviceA(),
		"deviceB": DeviceB(),
		"deviceC": DeviceC(),
	}
}
