package flashsim

import (
	"fmt"

	"github.com/reflex-go/reflex/internal/sim"
)

// GC-aware placement (FDP-style): when Spec.EraseUnitPages > 0 the device
// replaces the per-page erase coin flip with explicit erase units. Each
// channel owns UnitsPerChannel erase units of EraseUnitPages pages;
// writes carry a placement stream tag (Request.Stream) and are appended
// to the tagged stream's open unit on their channel. When a channel runs
// low on free units it garbage-collects: the sealed unit with the fewest
// valid pages is picked (stream-agnostic greedy — this is what makes
// segregation pay: a stream of short-lived data leaves near-empty units
// that GC reclaims for free), its surviving pages are relocated into
// their stream's open unit (each relocation is a real program, charged as
// channel occupancy), and the unit is erased (EraseDuration channel
// occupancy — the GC pulse, now caused by actual fill instead of a
// probability).
//
// Per-stream accounting exposes measured write amplification:
// WA(stream) = (host pages + relocated pages) / host pages.

// StreamStats are cumulative per-placement-stream counters.
type StreamStats struct {
	// HostPages counts pages written by host requests tagged with this
	// stream.
	HostPages uint64
	// RelocPages counts pages GC relocated out of this stream's victims.
	RelocPages uint64
	// Erases counts erase-unit reclaims whose victim belonged to this
	// stream.
	Erases uint64
}

// WriteAmp returns the stream's measured write amplification, or 1 when
// it has absorbed no host writes.
func (s StreamStats) WriteAmp() float64 {
	if s.HostPages == 0 {
		return 1
	}
	return float64(s.HostPages+s.RelocPages) / float64(s.HostPages)
}

// eraseUnit is one physical erase block: an append-only run of pages.
// blocks records every page programmed into the unit since its last
// erase; entries whose current location moved elsewhere are stale and
// counted out of valid.
type eraseUnit struct {
	ch     int
	stream int
	blocks []uint64
	valid  int
	sealed bool
}

type chanUnits struct {
	units  []*eraseUnit
	free   []int32 // indexes into units
	open   []int32 // per stream; noUnit when none open
	sealed []int32 // GC victim candidates
}

const noUnit = int32(-1)

type placer struct {
	d       *Device
	chans   []chanUnits
	loc     map[uint64]*eraseUnit // logical page -> current unit
	streams []StreamStats
	// gcDepth guards against pathological recursion when relocations
	// themselves force GC on an over-subscribed device.
	gcDepth int
}

func newPlacer(d *Device) *placer {
	p := &placer{
		d:       d,
		chans:   make([]chanUnits, d.spec.Channels),
		loc:     make(map[uint64]*eraseUnit),
		streams: make([]StreamStats, d.spec.PlacementStreams),
	}
	for c := range p.chans {
		cu := &p.chans[c]
		cu.units = make([]*eraseUnit, d.spec.UnitsPerChannel)
		cu.free = make([]int32, 0, d.spec.UnitsPerChannel)
		cu.open = make([]int32, d.spec.PlacementStreams)
		cu.sealed = make([]int32, 0, d.spec.UnitsPerChannel)
		for u := range cu.units {
			cu.units[u] = &eraseUnit{ch: c, blocks: make([]uint64, 0, d.spec.EraseUnitPages)}
			cu.free = append(cu.free, int32(u))
		}
		for s := range cu.open {
			cu.open[s] = noUnit
		}
	}
	return p
}

// clampStream folds an out-of-range tag onto the last stream so untagged
// callers on a placement device still work.
func (p *placer) clampStream(s int) int {
	if s < 0 {
		return 0
	}
	if s >= len(p.streams) {
		return len(p.streams) - 1
	}
	return s
}

// hostWrite places one host-written page and charges its stream.
func (p *placer) hostWrite(block uint64, stream int) {
	stream = p.clampStream(stream)
	p.streams[stream].HostPages++
	p.place(block, stream)
}

// place appends block to stream's open unit on the block's channel,
// invalidating the page's previous location.
func (p *placer) place(block uint64, stream int) {
	ch := int(block % uint64(len(p.chans)))
	if old, ok := p.loc[block]; ok {
		old.valid--
	}
	u := p.openUnit(ch, stream)
	u.blocks = append(u.blocks, block)
	u.valid++
	p.loc[block] = u
}

// trim drops a page's current flash location without programming a
// replacement: the page stops being live, its unit's valid count falls,
// and GC relocates one page fewer when that unit is reclaimed. This is
// the whole mechanism by which discard reduces write amplification.
func (p *placer) trim(block uint64) bool {
	old, ok := p.loc[block]
	if !ok {
		return false
	}
	old.valid--
	delete(p.loc, block)
	return true
}

// openUnit returns the open erase unit for (ch, stream), sealing a full
// one and allocating (GC-ing first if the channel is down to its spare)
// as needed.
func (p *placer) openUnit(ch, stream int) *eraseUnit {
	cu := &p.chans[ch]
	// spins bounds GC thrash: when every victim is fully valid each
	// reclaim refills exactly what it freed, so looping is futile — the
	// live working set no longer fits and the device is genuinely full.
	for spins := 0; ; spins++ {
		if spins > 2*p.d.spec.UnitsPerChannel+4 {
			panic(fmt.Sprintf(
				"flashsim: %s: channel %d out of erase units (live working set exceeds physical capacity: %d units × %d pages; widen UnitsPerChannel/EraseUnitPages or shrink the workload's footprint)",
				p.d.spec.Name, ch, p.d.spec.UnitsPerChannel, p.d.spec.EraseUnitPages))
		}
		// Re-read the open slot on every pass: a GC below relocates pages
		// through place → openUnit for this same (ch, stream), which may
		// itself open a unit. Allocating blindly after GC would orphan it.
		if oi := cu.open[stream]; oi != noUnit {
			u := cu.units[oi]
			if len(u.blocks) < p.d.spec.EraseUnitPages {
				return u
			}
			u.sealed = true
			cu.sealed = append(cu.sealed, oi)
			cu.open[stream] = noUnit
		}
		// Keep one spare free unit per channel so GC always has a landing
		// zone; reclaim ahead of exhaustion.
		if p.gcDepth == 0 && len(cu.free) <= 1 && len(cu.sealed) > 0 {
			p.gc(ch)
			if cu.open[stream] != noUnit {
				continue
			}
		}
		// Reclaim until a unit is free. Bounded: if a full sweep of
		// victims frees nothing (every victim fully valid, so relocation
		// refills what the erase freed), the live working set has
		// outgrown the device.
		for attempts := 0; len(cu.free) == 0 && len(cu.sealed) > 0 && attempts < p.d.spec.UnitsPerChannel; attempts++ {
			p.gc(ch)
		}
		if cu.open[stream] != noUnit {
			continue
		}
		if len(cu.free) == 0 {
			panic(fmt.Sprintf(
				"flashsim: %s: channel %d out of erase units (live working set exceeds physical capacity: %d units × %d pages; widen UnitsPerChannel/EraseUnitPages or shrink the workload's footprint)",
				p.d.spec.Name, ch, p.d.spec.UnitsPerChannel, p.d.spec.EraseUnitPages))
		}
		ui := cu.free[len(cu.free)-1]
		cu.free = cu.free[:len(cu.free)-1]
		u := cu.units[ui]
		u.stream = stream
		cu.open[stream] = ui
		return u
	}
}

// gc reclaims the sealed unit with the fewest valid pages on channel ch:
// erase-pulse occupancy, relocation programs for surviving pages, unit
// back on the free list.
func (p *placer) gc(ch int) {
	cu := &p.chans[ch]
	best, bestIdx := -1, -1
	for i, ui := range cu.sealed {
		if v := cu.units[ui].valid; best == -1 || v < best {
			best, bestIdx = v, i
		}
	}
	if bestIdx == -1 {
		return
	}
	victimIdx := cu.sealed[bestIdx]
	cu.sealed = append(cu.sealed[:bestIdx], cu.sealed[bestIdx+1:]...)
	victim := cu.units[victimIdx]

	// Snapshot survivors, then free the unit first so relocations have a
	// unit to land in.
	var live []uint64
	for _, b := range victim.blocks {
		if p.loc[b] == victim {
			live = append(live, b)
		}
	}
	d := p.d
	d.stats.Erases++
	p.streams[victim.stream].Erases++
	d.channels[ch].Occupy(d.spec.EraseDuration)

	victimStream := victim.stream
	victim.blocks = victim.blocks[:0]
	victim.valid = 0
	victim.sealed = false
	cu.free = append(cu.free, victimIdx)

	p.gcDepth++
	occ := sim.Time(float64(d.spec.programOccupancy()) * d.wearMultiplier())
	for _, b := range live {
		delete(p.loc, b) // drop the stale mapping before re-placing
		p.streams[victimStream].RelocPages++
		d.pendingProg += occ
		d.program(d.channels[ch], occ)
		p.place(b, victimStream)
	}
	p.gcDepth--
}

// StreamStats returns a copy of the per-stream counters; nil when the
// device runs the legacy (coin-flip) GC model.
func (d *Device) StreamStats() []StreamStats {
	if d.pl == nil {
		return nil
	}
	out := make([]StreamStats, len(d.pl.streams))
	copy(out, d.pl.streams)
	return out
}

// WriteAmp returns the device-wide measured write amplification
// (host + relocated pages over host pages), or 1 when placement is off
// or nothing was written.
func (d *Device) WriteAmp() float64 {
	if d.pl == nil {
		return 1
	}
	var host, reloc uint64
	for _, s := range d.pl.streams {
		host += s.HostPages
		reloc += s.RelocPages
	}
	return StreamStats{HostPages: host, RelocPages: reloc}.WriteAmp()
}

// LiveUnits returns (free, sealed, open) erase-unit counts summed across
// channels; zeros when placement is off.
func (d *Device) LiveUnits() (free, sealed, open int) {
	if d.pl == nil {
		return 0, 0, 0
	}
	for c := range d.pl.chans {
		cu := &d.pl.chans[c]
		free += len(cu.free)
		sealed += len(cu.sealed)
		for _, oi := range cu.open {
			if oi != noUnit {
				open++
			}
		}
	}
	return free, sealed, open
}
