package flashsim

import (
	"testing"
	"time"

	"github.com/reflex-go/reflex/internal/faults"
	"github.com/reflex-go/reflex/internal/sim"
)

// TestFaultsDeviceError: with p(err)=1 every request fails through
// OnError (or OnComplete when no error callback is set), after the
// unloaded access latency — errors are not free.
func TestFaultsDeviceError(t *testing.T) {
	eng := sim.NewEngine()
	d := New(eng, DeviceA(), 1)
	d.SetFaults(faults.New(faults.Config{Seed: 1, DeviceErrProb: 1}))
	var failed, completed int
	var at sim.Time
	eng.At(0, func() {
		d.Submit(&Request{
			Op: OpRead, Block: 0, Size: 4096,
			OnComplete: func(sim.Time) { completed++ },
			OnError:    func(t2 sim.Time) { failed++; at = t2 },
		})
		// No OnError: the failure must still resolve via OnComplete so no
		// caller ever hangs.
		d.Submit(&Request{
			Op: OpWrite, Block: 8, Size: 4096,
			OnComplete: func(sim.Time) { completed++ },
		})
	})
	eng.Run()
	if failed != 1 || completed != 1 {
		t.Fatalf("failed=%d completed=%d, want 1/1", failed, completed)
	}
	if at == 0 {
		t.Fatal("error completion must take nonzero service time")
	}
	if st := d.Stats(); st.Errors != 2 {
		t.Fatalf("Stats.Errors = %d, want 2", st.Errors)
	}
}

// TestFaultsDeviceStall: an injected timeout pulse delays completion
// beyond the fault-free latency but the request still completes.
func TestFaultsDeviceStall(t *testing.T) {
	run := func(in *faults.Injector) sim.Time {
		eng := sim.NewEngine()
		d := New(eng, DeviceA(), 1)
		d.SetFaults(in)
		var at sim.Time
		eng.At(0, func() {
			d.Submit(&Request{
				Op: OpRead, Block: 0, Size: 4096,
				OnComplete: func(t2 sim.Time) { at = t2 },
			})
		})
		eng.Run()
		return at
	}
	clean := run(nil)
	stalled := run(faults.New(faults.Config{
		Seed: 1, DeviceStallProb: 1, DeviceStallDur: 5 * time.Millisecond,
	}))
	if clean == 0 || stalled == 0 {
		t.Fatal("request did not complete")
	}
	if stalled <= clean {
		t.Fatalf("stalled completion %d not after clean completion %d", stalled, clean)
	}
}
