// Package flashsim simulates NVMe Flash devices in virtual time.
//
// The model reproduces the phenomena that motivate ReFlex's QoS scheduler
// (paper §2.2, Figures 1 and 3):
//
//   - Tail read latency is a function of total weighted load (IOPS weighted
//     by request cost) and of the read/write ratio.
//   - Writes complete quickly to a DRAM buffer but consume large amounts of
//     device bandwidth in the background (program + amortized garbage
//     collection), which is what delays concurrently queued reads.
//   - Occasional erase/GC pulses block a channel for milliseconds, producing
//     the long tail at write-heavy mixes.
//   - Some devices serve read-only loads at roughly double the IOPS
//     (C(read, r=100%) = 1/2 token on device A).
//
// Internally a device is a set of independent channels, each a FIFO serial
// resource. A request is split into 4KB pages striped across channels by
// logical block address; cost therefore scales linearly with request size
// above 4KB and is constant at or below 4KB, matching §3.2.1.
//
// The simulator models time only; it stores no data. Data placement is the
// concern of the storage backends in the real server.
package flashsim

import (
	"fmt"

	"github.com/reflex-go/reflex/internal/faults"
	"github.com/reflex-go/reflex/internal/sim"
)

// Op is the I/O operation type.
type Op uint8

const (
	// OpRead is a logical block read.
	OpRead Op = iota
	// OpWrite is a logical block write.
	OpWrite
)

// String returns "read" or "write".
func (o Op) String() string {
	if o == OpWrite {
		return "write"
	}
	return "read"
}

// PageSize is the device's internal access granularity. Requests smaller
// than a page cost a full page (§3.2.1: "Cost is constant for requests 4KB
// and smaller").
const PageSize = 4096

// Request is one I/O submitted to a device.
type Request struct {
	Op Op
	// Block is the logical block address in PageSize units.
	Block uint64
	// Size is the transfer size in bytes; 0 is treated as one page.
	Size int
	// OnComplete fires in engine context when the device completes the I/O
	// (for writes: when the write is acknowledged from the DRAM buffer).
	OnComplete func(completeAt sim.Time)
	// OnError fires instead of OnComplete when a fault injector fails the
	// request (media error / controller reset pulse). When nil, injected
	// errors fall back to OnComplete so legacy callers never hang.
	OnError func(at sim.Time)
	// Stream is the FDP-style placement stream tag for writes, used only
	// when the device runs the erase-unit placement model
	// (Spec.EraseUnitPages > 0). Callers tag by tenant class or client
	// lifetime hint; out-of-range tags clamp. Ignored for reads.
	Stream int

	submitAt sim.Time
	// extra is injected per-request stall (timeout pulse), added to the
	// host-visible completion latency.
	extra sim.Time
}

// Pages returns the number of device pages the request touches.
func (r *Request) Pages() int {
	if r.Size <= PageSize {
		return 1
	}
	return (r.Size + PageSize - 1) / PageSize
}

// Spec describes the performance characteristics of a device model. All
// durations are in nanoseconds.
type Spec struct {
	Name     string
	Channels int
	// Blocks is the device capacity in PageSize units.
	Blocks uint64

	// UnitService is the channel occupancy of one token (one 4KB read at
	// the normal read cost). Token capacity = Channels / UnitService.
	UnitService sim.Time
	// ReadArray is the flash array access latency pipelined off-channel;
	// it sets the unloaded read latency floor together with UnitService.
	ReadArray sim.Time
	// ReadArrayJitterMean adds an exponential jitter to ReadArray,
	// producing the measured gap between average and p95 unloaded latency.
	ReadArrayJitterMean sim.Time

	// WriteBuffer is the host-visible write latency (DRAM buffer hit).
	WriteBuffer sim.Time
	// WriteBufferJitterMean adds exponential jitter to WriteBuffer.
	WriteBufferJitterMean sim.Time
	// WriteBufferSlack is how much background program work (per channel)
	// the DRAM write buffer absorbs before host write completions are
	// delayed to the program rate — sustained write floods become
	// device-throughput-bound instead of completing at buffer speed.
	// Zero disables backpressure.
	WriteBufferSlack sim.Time

	// WriteCost is the cost of a 4KB write in tokens (§3.2.1: 10, 20 and 16
	// for devices A, B and C).
	WriteCost int
	// EraseProb is the per-written-page probability of a GC/erase pulse
	// (legacy GC model; ignored when EraseUnitPages > 0).
	EraseProb float64
	// EraseDuration is the channel occupancy of one erase pulse. In the
	// legacy model the steady-state background cost of a write page is
	// kept equal to WriteCost tokens: the per-page program occupancy is
	// reduced by the expected erase contribution. In the placement model
	// it is the cost of reclaiming one erase unit.
	EraseDuration sim.Time

	// EraseUnitPages switches the device from the per-page erase coin
	// flip to explicit erase units of this many pages with FDP-style
	// placement streams (see placement.go). Zero keeps the legacy model.
	EraseUnitPages int
	// PlacementStreams is the number of placement streams writes may be
	// tagged with (Request.Stream); 0 defaults to 1 when placement is on.
	PlacementStreams int
	// UnitsPerChannel is the physical erase-unit count per channel; the
	// device's physical capacity is Channels × UnitsPerChannel ×
	// EraseUnitPages pages. 0 defaults to 8 when placement is on.
	UnitsPerChannel int

	// WearPagesScale models flash wear-out: every WearPagesScale pages
	// written slow the device's service times by another 100% (§3.2.1:
	// "the model can be re-calibrated after deployment to account for
	// performance degradation due to Flash wear-out"). Zero disables
	// aging. PreAgedPages starts the device with write history, for
	// calibrating a worn device.
	WearPagesScale uint64
	PreAgedPages   uint64

	// ProgramChunkTokens splits a page's background program occupancy into
	// chunks of this many tokens, submitted back-to-back as each chunk
	// finishes. Reads arriving between chunks are served in between
	// (program suspend/resume), which bounds how long one write blocks
	// queued reads. Zero means the program occupies the channel in one
	// piece.
	ProgramChunkTokens int

	// ReadOnlyHalf halves the read cost when the device has seen no write
	// within ReadOnlyWindow (C(read, r=100%) = 1/2, device A).
	ReadOnlyHalf   bool
	ReadOnlyWindow sim.Time
}

// TokenCapacityPerSec returns the device's service capacity in tokens per
// second at the normal (r < 100%) read cost.
func (s *Spec) TokenCapacityPerSec() float64 {
	return float64(s.Channels) * float64(sim.Second) / float64(s.UnitService)
}

// programOccupancy returns the background channel occupancy of one written
// page. In the legacy GC model it is net of the expected erase-pulse
// contribution (so program + amortized erase = WriteCost tokens); in the
// placement model erases are explicit events charged when a unit is
// reclaimed, so the full program cost applies.
func (s *Spec) programOccupancy() sim.Time {
	total := sim.Time(s.WriteCost) * s.UnitService
	if s.EraseUnitPages > 0 {
		return total
	}
	erase := sim.Time(s.EraseProb * float64(s.EraseDuration))
	if erase >= total {
		// Validate rejects this spec (the device would write for free);
		// kept only as a floor for specs built without New.
		return 0
	}
	return total - erase
}

// Validate reports configuration errors.
func (s *Spec) Validate() error {
	switch {
	case s.Channels <= 0:
		return fmt.Errorf("flashsim: %s: Channels must be positive", s.Name)
	case s.UnitService <= 0:
		return fmt.Errorf("flashsim: %s: UnitService must be positive", s.Name)
	case s.WriteCost <= 0:
		return fmt.Errorf("flashsim: %s: WriteCost must be positive", s.Name)
	case s.EraseProb < 0 || s.EraseProb > 1:
		return fmt.Errorf("flashsim: %s: EraseProb out of range", s.Name)
	case s.Blocks == 0:
		return fmt.Errorf("flashsim: %s: Blocks must be positive", s.Name)
	case s.EraseUnitPages < 0:
		return fmt.Errorf("flashsim: %s: EraseUnitPages must be non-negative", s.Name)
	}
	if s.EraseUnitPages == 0 {
		// Legacy GC model: the expected erase contribution must leave real
		// program work, or writes cost nothing in the background and the
		// device "writes for free" — a silently miscalibrated spec.
		if erase := sim.Time(s.EraseProb * float64(s.EraseDuration)); s.EraseProb > 0 && erase >= sim.Time(s.WriteCost)*s.UnitService {
			return fmt.Errorf(
				"flashsim: %s: EraseProb×EraseDuration (%v) >= WriteCost×UnitService (%v): expected erase work swallows the whole program budget, writes would cost nothing in the background; lower EraseProb/EraseDuration or raise WriteCost",
				s.Name, erase, sim.Time(s.WriteCost)*s.UnitService)
		}
		return nil
	}
	switch {
	case s.PlacementStreams < 1 || s.PlacementStreams > 16:
		return fmt.Errorf("flashsim: %s: PlacementStreams must be in [1,16]", s.Name)
	case s.UnitsPerChannel < 3:
		return fmt.Errorf("flashsim: %s: UnitsPerChannel must be at least 3 (open + spare + GC victim)", s.Name)
	case s.PlacementStreams > s.UnitsPerChannel-2:
		return fmt.Errorf("flashsim: %s: PlacementStreams (%d) needs UnitsPerChannel >= streams+2 (got %d)",
			s.Name, s.PlacementStreams, s.UnitsPerChannel)
	case s.EraseDuration <= 0:
		return fmt.Errorf("flashsim: %s: placement model needs a positive EraseDuration", s.Name)
	}
	return nil
}

// Stats are cumulative device counters.
type Stats struct {
	Reads      uint64
	Writes     uint64
	ReadPages  uint64
	WritePages uint64
	Erases     uint64
	// TrimmedPages counts pages invalidated by Trim (placement model).
	TrimmedPages uint64
	// Errors counts requests failed by the fault injector.
	Errors uint64
	// Stalls counts requests delayed by an injected timeout pulse.
	Stalls uint64
}

// Device is a simulated NVMe Flash device.
type Device struct {
	eng      *sim.Engine
	spec     Spec
	channels []*sim.Resource
	rng      *sim.RNG

	lastWrite sim.Time // most recent write arrival; -1 when none ever
	// pendingProg is the background program work scheduled but not yet
	// performed, summed across channels (drives write backpressure).
	pendingProg sim.Time
	stats       Stats
	// inj optionally injects per-request I/O errors and timeout pulses.
	inj *faults.Injector
	// pl is the erase-unit placement state; nil in the legacy GC model.
	pl *placer
}

// SetFaults installs a fault injector: per-request I/O errors (OnError)
// and timeout pulses (extra completion latency). Pass nil to disable.
func (d *Device) SetFaults(in *faults.Injector) { d.inj = in }

// New creates a device from spec. It panics on an invalid spec; device
// specs are program constants, not user input.
func New(eng *sim.Engine, spec Spec, seed int64) *Device {
	if spec.EraseUnitPages > 0 {
		if spec.PlacementStreams == 0 {
			spec.PlacementStreams = 1
		}
		if spec.UnitsPerChannel == 0 {
			spec.UnitsPerChannel = 8
		}
	}
	if err := spec.Validate(); err != nil {
		panic(err)
	}
	d := &Device{
		eng:       eng,
		spec:      spec,
		rng:       sim.NewRNG(seed),
		lastWrite: -1,
	}
	d.stats.WritePages = spec.PreAgedPages
	for i := 0; i < spec.Channels; i++ {
		d.channels = append(d.channels, sim.NewResource(eng, fmt.Sprintf("%s/ch%d", spec.Name, i)))
	}
	if spec.EraseUnitPages > 0 {
		d.pl = newPlacer(d)
	}
	return d
}

// Spec returns the device's spec.
func (d *Device) Spec() Spec { return d.spec }

// Stats returns a copy of the cumulative counters.
func (d *Device) Stats() Stats { return d.stats }

// ReadOnlyMode reports whether the device is currently in the read-only
// fast mode (no writes within the configured window).
func (d *Device) ReadOnlyMode() bool {
	if !d.spec.ReadOnlyHalf {
		return false
	}
	return d.lastWrite < 0 || d.eng.Now()-d.lastWrite > d.spec.ReadOnlyWindow
}

// wearMultiplier returns the current service-time inflation from
// accumulated writes (1.0 on a fresh device or when aging is disabled).
func (d *Device) wearMultiplier() float64 {
	if d.spec.WearPagesScale == 0 {
		return 1
	}
	return 1 + float64(d.stats.WritePages)/float64(d.spec.WearPagesScale)
}

// WearMultiplier exposes the device's current wear factor.
func (d *Device) WearMultiplier() float64 { return d.wearMultiplier() }

// channelOf maps a device page to its channel (LBA striping).
func (d *Device) channelOf(block uint64) *sim.Resource {
	return d.channels[block%uint64(len(d.channels))]
}

// Submit issues a request. The completion callback fires in engine context.
func (d *Device) Submit(r *Request) {
	r.submitAt = d.eng.Now()
	if d.inj.DeviceError() {
		// Injected media error / controller reset: fail after the
		// unloaded access latency (errors are not free), without touching
		// channel state.
		d.stats.Errors++
		lat := d.spec.ReadArray
		if r.Op == OpWrite {
			lat = d.spec.WriteBuffer
		}
		cb := r.OnError
		if cb == nil {
			cb = r.OnComplete
		}
		if cb != nil {
			d.eng.After(lat, func() { cb(d.eng.Now()) })
		}
		return
	}
	if extra := d.inj.DeviceStallSim(); extra > 0 {
		d.stats.Stalls++
		r.extra = extra
	}
	switch r.Op {
	case OpRead:
		d.submitRead(r)
	case OpWrite:
		d.submitWrite(r)
	default:
		panic(fmt.Sprintf("flashsim: unknown op %d", r.Op))
	}
}

func (d *Device) submitRead(r *Request) {
	pages := r.Pages()
	d.stats.Reads++
	d.stats.ReadPages += uint64(pages)

	service := sim.Time(float64(d.spec.UnitService) * d.wearMultiplier())
	if d.ReadOnlyMode() {
		service /= 2
	}

	// Each page occupies its channel for the service time; the array access
	// completes off-channel afterwards. The request completes when its last
	// page does.
	var last sim.Time
	for p := 0; p < pages; p++ {
		ch := d.channelOf(r.Block + uint64(p))
		_, end := ch.Schedule(service, nil)
		array := d.spec.ReadArray
		if d.spec.ReadArrayJitterMean > 0 {
			array += d.rng.Exp(d.spec.ReadArrayJitterMean)
		}
		doneAt := end + array
		if doneAt > last {
			last = doneAt
		}
	}
	last += r.extra // injected timeout pulse
	if r.OnComplete != nil {
		d.eng.At(last, func() { r.OnComplete(last) })
	}
}

func (d *Device) submitWrite(r *Request) {
	pages := r.Pages()
	d.stats.Writes++
	d.stats.WritePages += uint64(pages)
	d.lastWrite = d.eng.Now()

	// Host-visible completion: DRAM buffer, plus backpressure once the
	// buffered program backlog exceeds the buffer's slack.
	lat := d.spec.WriteBuffer + r.extra // extra: injected timeout pulse
	if d.spec.WriteBufferJitterMean > 0 {
		lat += d.rng.Exp(d.spec.WriteBufferJitterMean)
	}
	if d.spec.WriteBufferSlack > 0 {
		backlog := d.pendingProg / sim.Time(len(d.channels))
		if over := backlog - d.spec.WriteBufferSlack; over > 0 {
			lat += over
		}
	}
	if r.OnComplete != nil {
		d.eng.After(lat, func() { r.OnComplete(d.eng.Now()) })
	}

	// Background program work per page, plus GC: explicit erase-unit
	// bookkeeping under the placement model, the legacy per-page erase
	// coin flip otherwise.
	occ := sim.Time(float64(d.spec.programOccupancy()) * d.wearMultiplier())
	for p := 0; p < pages; p++ {
		ch := d.channelOf(r.Block + uint64(p))
		d.pendingProg += occ
		d.program(ch, occ)
		if d.pl != nil {
			d.pl.hostWrite(r.Block+uint64(p), r.Stream)
		} else if d.spec.EraseProb > 0 && d.rng.Float64() < d.spec.EraseProb {
			d.stats.Erases++
			ch.Occupy(d.spec.EraseDuration)
		}
	}
}

// program occupies the channel for total background work, in chunks chained
// completion-to-submission so that concurrently queued reads interleave.
func (d *Device) program(ch *sim.Resource, remaining sim.Time) {
	if remaining <= 0 {
		return
	}
	chunk := sim.Time(d.spec.ProgramChunkTokens) * d.spec.UnitService
	if chunk <= 0 || chunk >= remaining {
		chunk = remaining
	}
	ch.Schedule(chunk, func(sim.Time) {
		d.pendingProg -= chunk
		d.program(ch, remaining-chunk)
	})
}

// Trim discards pages [block, block+pages): each page's current flash
// location is marked invalid, so GC stops relocating it — a trimmed page
// costs zero program operations when its erase unit is reclaimed, which
// is exactly how discard lowers write amplification. Only meaningful
// under the placement model (EraseUnitPages > 0); the legacy coin-flip
// GC has no notion of page liveness, so Trim is a no-op there. Returns
// the number of pages that were actually mapped.
func (d *Device) Trim(block uint64, pages int) int {
	if d.pl == nil {
		return 0
	}
	n := 0
	for p := 0; p < pages; p++ {
		if d.pl.trim(block + uint64(p)) {
			n++
		}
	}
	d.stats.TrimmedPages += uint64(n)
	return n
}

// BusyChannels returns how many channels are occupied right now — the
// instantaneous channel occupancy a time-series sampler records.
func (d *Device) BusyChannels() int {
	n := 0
	for _, ch := range d.channels {
		if !ch.Idle() {
			n++
		}
	}
	return n
}

// Channels returns the number of channels.
func (d *Device) Channels() int { return len(d.channels) }

// PendingProgram returns the background program backlog in nanoseconds of
// channel occupancy, summed across channels (the write-buffer pressure).
func (d *Device) PendingProgram() sim.Time { return d.pendingProg }

// MaxChannelBacklog returns the largest per-channel booking horizon — how
// far ahead of the clock the busiest channel is committed.
func (d *Device) MaxChannelBacklog() sim.Time {
	var m sim.Time
	for _, ch := range d.channels {
		if b := ch.Backlog(); b > m {
			m = b
		}
	}
	return m
}

// Utilization returns the mean channel utilization since simulation start.
func (d *Device) Utilization() float64 {
	var u float64
	for _, ch := range d.channels {
		u += ch.Utilization()
	}
	return u / float64(len(d.channels))
}
