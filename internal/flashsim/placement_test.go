package flashsim

import (
	"strings"
	"testing"

	"github.com/reflex-go/reflex/internal/sim"
)

// placementSpec is a small placement-model device: 4 channels × 6 units ×
// 32 pages = 768 physical pages.
func placementSpec(streams int) Spec {
	s := DeviceA()
	s.Name = "placed"
	s.Channels = 4
	s.EraseUnitPages = 32
	s.UnitsPerChannel = 6
	s.PlacementStreams = streams
	return s
}

// churn drives a hot/cold write mix: the hot writer overwrites a small
// set of blocks (short-lived data), the cold writer walks a wide range
// once (long-lived data). hotStream/coldStream pick the placement tags.
func churn(t *testing.T, spec Spec, hotStream, coldStream int) *Device {
	t.Helper()
	eng := sim.NewEngine()
	dev := New(eng, spec, 42)
	rng := sim.NewRNG(7)
	const (
		hotBlocks  = 64
		coldBlocks = 400
		hotWrites  = 2400
		coldWrites = 600
		gap        = 50 * sim.Microsecond
	)
	for i := 0; i < hotWrites; i++ {
		b := uint64(rng.Intn(hotBlocks))
		s := hotStream
		eng.At(sim.Time(i)*gap, func() {
			dev.Submit(&Request{Op: OpWrite, Block: b, Size: PageSize, Stream: s})
		})
	}
	for i := 0; i < coldWrites; i++ {
		b := uint64(1024 + rng.Intn(coldBlocks))
		s := coldStream
		eng.At(sim.Time(i*4)*gap, func() {
			dev.Submit(&Request{Op: OpWrite, Block: b, Size: PageSize, Stream: s})
		})
	}
	eng.Run()
	return dev
}

// TestPlacementSegregationCutsWriteAmp is the headline property: tagging
// short-lived and long-lived writes into separate streams must yield
// strictly lower measured write amplification than mixing them, because
// GC victims from the hot stream are near-empty while mixed units always
// carry live cold pages that must be relocated.
func TestPlacementSegregationCutsWriteAmp(t *testing.T) {
	mixed := churn(t, placementSpec(1), 0, 0)
	seg := churn(t, placementSpec(2), 1, 0)

	waM, waS := mixed.WriteAmp(), seg.WriteAmp()
	t.Logf("write-amp mixed=%.3f segregated=%.3f (streams: %+v)", waM, waS, seg.StreamStats())
	if waM <= 1 {
		t.Fatalf("mixed run never triggered GC (WA=%.3f); workload too small for the spec", waM)
	}
	if waS >= waM {
		t.Fatalf("segregated write-amp %.3f not below mixed %.3f", waS, waM)
	}
}

func TestPlacementEraseAccounting(t *testing.T) {
	dev := churn(t, placementSpec(2), 1, 0)
	st := dev.Stats()
	if st.Erases == 0 {
		t.Fatal("no erases despite writing several times the physical capacity")
	}
	var perStream uint64
	for _, s := range dev.StreamStats() {
		perStream += s.Erases
	}
	if perStream != st.Erases {
		t.Fatalf("per-stream erases %d != device erases %d", perStream, st.Erases)
	}
	free, sealed, open := dev.LiveUnits()
	if total := free + sealed + open; total != 4*6 {
		t.Fatalf("units leak: free=%d sealed=%d open=%d, want total %d", free, sealed, open, 24)
	}
}

// TestPlacementLocTracksLatestWrite checks the valid-page bookkeeping:
// overwriting one block forever must keep exactly one live page, so GC
// victims are empty and write-amp stays 1 (no relocations).
func TestPlacementOverwriteOnlyHasUnitWriteAmp(t *testing.T) {
	eng := sim.NewEngine()
	dev := New(eng, placementSpec(1), 1)
	for i := 0; i < 1500; i++ {
		eng.At(sim.Time(i)*sim.Microsecond, func() {
			dev.Submit(&Request{Op: OpWrite, Block: 5, Size: PageSize})
		})
	}
	eng.Run()
	if wa := dev.WriteAmp(); wa != 1 {
		t.Fatalf("pure-overwrite write-amp = %.3f, want exactly 1 (GC victims hold no live pages)", wa)
	}
	if dev.Stats().Erases == 0 {
		t.Fatal("expected GC activity after 1500 single-page writes into 6×32-page units on the block's channel")
	}
}

// TestTrimCutsWriteAmp: deleting a cold data set with Trim must drop
// write amplification versus leaving it dead-but-valid, because GC stops
// relocating pages the host will never read again. Also checks the
// mapped-page accounting and that a second trim of the same range is a
// no-op.
func TestTrimCutsWriteAmp(t *testing.T) {
	run := func(trim bool) (*Device, int) {
		eng := sim.NewEngine()
		dev := New(eng, placementSpec(1), 42)
		// Cold fill: 400 distinct pages (~52% of the 768-page device).
		for i := 0; i < 400; i++ {
			b := uint64(i)
			eng.At(sim.Time(i)*sim.Microsecond, func() {
				dev.Submit(&Request{Op: OpWrite, Block: b, Size: PageSize})
			})
		}
		trimmed := 0
		if trim {
			eng.At(600*sim.Microsecond, func() { trimmed = dev.Trim(0, 400) })
		}
		// Hot overwriter drives GC after the delete point.
		rng := sim.NewRNG(7)
		for i := 0; i < 2000; i++ {
			b := uint64(1024 + rng.Intn(32))
			eng.At(700*sim.Microsecond+sim.Time(i)*sim.Microsecond, func() {
				dev.Submit(&Request{Op: OpWrite, Block: b, Size: PageSize})
			})
		}
		eng.Run()
		return dev, trimmed
	}
	noTrim, _ := run(false)
	withTrim, trimmed := run(true)
	if trimmed != 400 {
		t.Fatalf("trimmed %d mapped pages, want 400", trimmed)
	}
	if got := withTrim.Stats().TrimmedPages; got != 400 {
		t.Fatalf("TrimmedPages = %d, want 400", got)
	}
	waOff, waOn := noTrim.WriteAmp(), withTrim.WriteAmp()
	t.Logf("write-amp without trim=%.3f with trim=%.3f", waOff, waOn)
	if waOff <= 1 {
		t.Fatalf("no-trim run never relocated (WA=%.3f); workload too small", waOff)
	}
	if waOn >= waOff {
		t.Fatalf("trim did not reduce write-amp: %.3f vs %.3f", waOn, waOff)
	}
	// Re-trimming an already-trimmed (now unmapped) range frees nothing.
	if n := withTrim.Trim(0, 400); n != 0 {
		t.Fatalf("second trim freed %d pages, want 0", n)
	}
}

// TestTrimLegacyModelNoop: the coin-flip GC model has no liveness map,
// so Trim must be a harmless no-op there.
func TestTrimLegacyModelNoop(t *testing.T) {
	eng := sim.NewEngine()
	dev := New(eng, DeviceA(), 1)
	eng.At(0, func() {
		dev.Submit(&Request{Op: OpWrite, Block: 9, Size: PageSize})
	})
	eng.Run()
	if n := dev.Trim(9, 1); n != 0 {
		t.Fatalf("legacy-model trim freed %d pages, want 0", n)
	}
}

func TestPlacementDeviceFullPanics(t *testing.T) {
	eng := sim.NewEngine()
	spec := placementSpec(1)
	dev := New(eng, spec, 1)
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("writing more live blocks than physical pages did not panic")
		}
		if !strings.Contains(r.(string), "out of erase units") {
			t.Fatalf("unexpected panic: %v", r)
		}
	}()
	// 4 channels × 6 units × 32 pages = 768 physical pages; write 2000
	// distinct live blocks on one channel's stripe (block % 4 == 0).
	eng.At(0, func() {
		for b := uint64(0); b < 2000; b++ {
			dev.Submit(&Request{Op: OpWrite, Block: b * 4, Size: PageSize})
		}
	})
	eng.Run()
}

func TestPlacementStreamClamp(t *testing.T) {
	eng := sim.NewEngine()
	dev := New(eng, placementSpec(2), 1)
	eng.At(0, func() {
		dev.Submit(&Request{Op: OpWrite, Block: 1, Size: PageSize, Stream: -3})
		dev.Submit(&Request{Op: OpWrite, Block: 2, Size: PageSize, Stream: 99})
	})
	eng.Run()
	st := dev.StreamStats()
	if st[0].HostPages != 1 || st[1].HostPages != 1 {
		t.Fatalf("clamped stream accounting wrong: %+v", st)
	}
}

func TestPlacementSpecValidation(t *testing.T) {
	cases := []func(*Spec){
		func(s *Spec) { s.PlacementStreams = 0 },
		func(s *Spec) { s.PlacementStreams = 17 },
		func(s *Spec) { s.UnitsPerChannel = 2 },
		func(s *Spec) { s.PlacementStreams = 5 }, // > UnitsPerChannel-2
		func(s *Spec) { s.EraseDuration = 0 },
	}
	for i, mutate := range cases {
		spec := placementSpec(1)
		mutate(&spec)
		if err := spec.Validate(); err == nil {
			t.Errorf("case %d: invalid placement spec passed validation", i)
		}
	}
	spec := placementSpec(2)
	if err := spec.Validate(); err != nil {
		t.Errorf("valid placement spec rejected: %v", err)
	}
}

// TestWritesForFreeSpecRejected is the regression test for the
// programOccupancy clamp: a legacy-GC spec whose expected erase work
// swallows the whole program budget used to silently produce a device
// whose writes cost nothing in the background; it must now fail Validate.
func TestWritesForFreeSpecRejected(t *testing.T) {
	spec := DeviceA()
	spec.EraseProb = 1 // expected erase work 2ms/page >> 133µs program budget
	err := spec.Validate()
	if err == nil {
		t.Fatal("spec with EraseProb×EraseDuration >= WriteCost×UnitService passed validation")
	}
	if !strings.Contains(err.Error(), "cost nothing") {
		t.Fatalf("unexpected error: %v", err)
	}
	// Exactly at the boundary is still free writing (occupancy 0).
	spec = DeviceA()
	spec.EraseProb = 1
	spec.EraseDuration = sim.Time(spec.WriteCost) * spec.UnitService
	if spec.Validate() == nil {
		t.Fatal("boundary spec (erase == program budget) passed validation")
	}
	// Strictly under the budget is fine.
	spec.EraseDuration--
	if err := spec.Validate(); err != nil {
		t.Fatalf("spec with erase work under the budget rejected: %v", err)
	}
}
