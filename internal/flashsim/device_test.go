package flashsim

import (
	"testing"

	"github.com/reflex-go/reflex/internal/hist"
	"github.com/reflex-go/reflex/internal/sim"
)

// runQD1 issues n back-to-back (queue depth 1) ops spaced by gap and returns
// the latency histogram.
func runQD1(t *testing.T, spec Spec, op Op, n int, gap sim.Time) *hist.Hist {
	t.Helper()
	eng := sim.NewEngine()
	dev := New(eng, spec, 42)
	h := hist.New()
	var issue func(i int)
	issue = func(i int) {
		if i >= n {
			return
		}
		start := eng.Now()
		dev.Submit(&Request{
			Op:    op,
			Block: uint64(i*7919) % spec.Blocks,
			Size:  PageSize,
			OnComplete: func(at sim.Time) {
				h.Record(at - start)
				eng.After(gap, func() { issue(i + 1) })
			},
		})
	}
	eng.At(0, func() { issue(0) })
	eng.Run()
	return h
}

func TestUnloadedReadLatencyDeviceA(t *testing.T) {
	// Table 2, "Local (SPDK)" row: 4KB random reads, QD1: avg 78us, p95 90us.
	h := runQD1(t, DeviceA(), OpRead, 2000, 20*sim.Microsecond)
	avg := h.Mean() / 1000
	p95 := float64(h.Quantile(0.95)) / 1000
	if avg < 70 || avg > 86 {
		t.Errorf("unloaded read avg = %.1fus, want ~78us", avg)
	}
	if p95 < 80 || p95 > 100 {
		t.Errorf("unloaded read p95 = %.1fus, want ~90us", p95)
	}
}

func TestUnloadedWriteLatencyDeviceA(t *testing.T) {
	// Table 2: local write avg 11us, p95 17us (DRAM buffered).
	h := runQD1(t, DeviceA(), OpWrite, 2000, 50*sim.Microsecond)
	avg := h.Mean() / 1000
	p95 := float64(h.Quantile(0.95)) / 1000
	if avg < 8 || avg > 14 {
		t.Errorf("unloaded write avg = %.1fus, want ~11us", avg)
	}
	if p95 < 13 || p95 > 22 {
		t.Errorf("unloaded write p95 = %.1fus, want ~17us", p95)
	}
}

func TestWriteMuchCheaperLatencyThanRead(t *testing.T) {
	r := runQD1(t, DeviceA(), OpRead, 500, 20*sim.Microsecond)
	w := runQD1(t, DeviceA(), OpWrite, 500, 50*sim.Microsecond)
	if w.Mean() >= r.Mean() {
		t.Errorf("write avg %.1fus not below read avg %.1fus", w.Mean()/1000, r.Mean()/1000)
	}
}

// runOpenLoop drives the device with Poisson arrivals at the given total
// IOPS and read ratio for dur, returning the read-latency histogram.
func runOpenLoop(spec Spec, iops float64, readPct int, size int, dur sim.Time, seed int64) *hist.Hist {
	eng := sim.NewEngine()
	dev := New(eng, spec, seed)
	rng := sim.NewRNG(seed + 1)
	h := hist.New()
	mean := sim.Time(float64(sim.Second) / iops)
	var arrive func()
	arrive = func() {
		if eng.Now() >= dur {
			return
		}
		op := OpRead
		if rng.Intn(100) >= readPct {
			op = OpWrite
		}
		start := eng.Now()
		dev.Submit(&Request{
			Op:    op,
			Block: uint64(rng.Int63n(int64(spec.Blocks))),
			Size:  size,
			OnComplete: func(at sim.Time) {
				if op == OpRead {
					h.Record(at - start)
				}
			},
		})
		eng.After(rng.Exp(mean), arrive)
	}
	eng.At(0, arrive)
	eng.Run()
	return h
}

func TestTailLatencyGrowsWithLoad(t *testing.T) {
	// Figure 1 shape: p95 read latency is monotonically non-decreasing in
	// IOPS (beyond noise) at a fixed mix.
	spec := DeviceA()
	var prev float64
	for i, iops := range []float64{50_000, 150_000, 250_000} {
		h := runOpenLoop(spec, iops, 90, PageSize, 300*sim.Millisecond, 7)
		p95 := float64(h.Quantile(0.95))
		if i > 0 && p95 < prev*0.8 {
			t.Errorf("p95 dropped sharply with load: %.0f -> %.0f at %v IOPS", prev, p95, iops)
		}
		prev = p95
	}
}

func TestTailLatencyGrowsWithWriteFraction(t *testing.T) {
	// Figure 1 shape: at the same total IOPS, more writes => higher p95
	// read latency.
	spec := DeviceA()
	p95at := func(readPct int) float64 {
		h := runOpenLoop(spec, 150_000, readPct, PageSize, 300*sim.Millisecond, 11)
		return float64(h.Quantile(0.95))
	}
	ro := p95at(100)
	w10 := p95at(90)
	w50 := p95at(50)
	if !(ro < w10 && w10 < w50) {
		t.Errorf("p95 not increasing with write fraction: 100%%=%.0f 90%%=%.0f 50%%=%.0f",
			ro, w10, w50)
	}
}

func TestReadOnlyModeDoublesCapacity(t *testing.T) {
	// Device A serves ~1.2M read-only IOPS but saturates near 600K IOPS
	// when even 1% writes are present (cost 1 vs 1/2 per read).
	spec := DeviceA()
	hro := runOpenLoop(spec, 800_000, 100, PageSize, 200*sim.Millisecond, 3)
	hmix := runOpenLoop(spec, 800_000, 99, PageSize, 200*sim.Millisecond, 3)
	ro95 := float64(hro.Quantile(0.95))
	mix95 := float64(hmix.Quantile(0.95))
	// 800K IOPS: comfortable read-only (util ~0.66), far beyond saturation
	// with 1% writes (0.99 + 0.1 = 1.09 tokens -> 872K tokens/s > 601K).
	if ro95 > 500_000 {
		t.Errorf("read-only p95 at 800K IOPS = %.0fus, want moderate (<500us)", ro95/1000)
	}
	if mix95 < 4*ro95 {
		t.Errorf("99%%-read p95 (%.0fus) should blow up vs read-only (%.0fus)",
			mix95/1000, ro95/1000)
	}
}

func TestReadOnlyModeToggles(t *testing.T) {
	eng := sim.NewEngine()
	dev := New(eng, DeviceA(), 1)
	eng.At(0, func() {
		if !dev.ReadOnlyMode() {
			t.Error("fresh device should start in read-only mode")
		}
		dev.Submit(&Request{Op: OpWrite, Block: 1, Size: PageSize})
		if dev.ReadOnlyMode() {
			t.Error("device in read-only mode right after a write")
		}
	})
	eng.At(DeviceA().ReadOnlyWindow+2*sim.Millisecond, func() {
		if !dev.ReadOnlyMode() {
			t.Error("device not back in read-only mode after the window")
		}
	})
	eng.Run()
}

func TestLargeRequestCostScalesLinearly(t *testing.T) {
	// §3.2.1: a 32KB request costs as much as 8 back-to-back 4KB requests.
	// Verify through channel busy time.
	eng := sim.NewEngine()
	spec := DeviceA()
	spec.EraseProb = 0 // determinism
	dev := New(eng, spec, 1)
	eng.At(0, func() {
		dev.Submit(&Request{Op: OpRead, Block: 0, Size: 32 * 1024})
	})
	eng.Run()
	var busy sim.Time
	for _, ch := range dev.channels {
		busy += ch.BusyTime()
	}
	// Read-only mode: 8 pages x UnitService/2.
	want := 8 * spec.UnitService / 2
	if busy != want {
		t.Errorf("32KB read busy time = %d, want %d", busy, want)
	}
}

func TestSubPageRequestCostsFullPage(t *testing.T) {
	r := &Request{Op: OpRead, Block: 0, Size: 512}
	if r.Pages() != 1 {
		t.Errorf("512B request pages = %d, want 1", r.Pages())
	}
	r.Size = 0
	if r.Pages() != 1 {
		t.Errorf("0B request pages = %d, want 1", r.Pages())
	}
	r.Size = PageSize + 1
	if r.Pages() != 2 {
		t.Errorf("4097B request pages = %d, want 2", r.Pages())
	}
}

func TestStats(t *testing.T) {
	eng := sim.NewEngine()
	spec := DeviceA()
	spec.EraseProb = 1 // every write page erases...
	// ...which is only a valid spec while the expected erase work stays
	// under the program budget (Validate's writes-for-free check).
	spec.EraseDuration = spec.UnitService * sim.Time(spec.WriteCost) / 2
	dev := New(eng, spec, 1)
	eng.At(0, func() {
		dev.Submit(&Request{Op: OpRead, Block: 0, Size: 8 * 1024})
		dev.Submit(&Request{Op: OpWrite, Block: 9, Size: PageSize})
	})
	eng.Run()
	s := dev.Stats()
	if s.Reads != 1 || s.ReadPages != 2 {
		t.Errorf("reads=%d readPages=%d, want 1, 2", s.Reads, s.ReadPages)
	}
	if s.Writes != 1 || s.WritePages != 1 {
		t.Errorf("writes=%d writePages=%d, want 1, 1", s.Writes, s.WritePages)
	}
	if s.Erases != 1 {
		t.Errorf("erases=%d, want 1", s.Erases)
	}
}

func TestSpecValidation(t *testing.T) {
	cases := []func(*Spec){
		func(s *Spec) { s.Channels = 0 },
		func(s *Spec) { s.UnitService = 0 },
		func(s *Spec) { s.WriteCost = 0 },
		func(s *Spec) { s.EraseProb = 1.5 },
		func(s *Spec) { s.Blocks = 0 },
	}
	for i, mutate := range cases {
		spec := DeviceA()
		mutate(&spec)
		if err := spec.Validate(); err == nil {
			t.Errorf("case %d: invalid spec passed validation", i)
		}
	}
	spec := DeviceA()
	if err := spec.Validate(); err != nil {
		t.Errorf("valid spec rejected: %v", err)
	}
}

func TestNewPanicsOnInvalidSpec(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("New with invalid spec did not panic")
		}
	}()
	spec := DeviceA()
	spec.Channels = 0
	New(sim.NewEngine(), spec, 1)
}

func TestSubmitUnknownOpPanics(t *testing.T) {
	eng := sim.NewEngine()
	dev := New(eng, DeviceA(), 1)
	eng.At(0, func() {
		defer func() {
			if recover() == nil {
				t.Error("unknown op did not panic")
			}
		}()
		dev.Submit(&Request{Op: Op(99), Block: 0, Size: PageSize})
	})
	eng.Run()
}

func TestTokenCapacities(t *testing.T) {
	for name, want := range map[string]float64{
		"deviceA": 601_503, // 8 / 13.3us
		"deviceB": 320_000,
		"deviceC": 640_000,
	} {
		spec := Profiles()[name]
		got := spec.TokenCapacityPerSec()
		if got < want*0.99 || got > want*1.01 {
			t.Errorf("%s capacity = %.0f tokens/s, want ~%.0f", name, got, want)
		}
	}
}

func TestWriteCostsPerProfile(t *testing.T) {
	// §3.2.1: C(write) is 10, 20, 16 tokens for devices A, B, C.
	want := map[string]int{"deviceA": 10, "deviceB": 20, "deviceC": 16}
	for name, w := range want {
		if got := Profiles()[name].WriteCost; got != w {
			t.Errorf("%s write cost = %d, want %d", name, got, w)
		}
	}
}

func TestOpString(t *testing.T) {
	if OpRead.String() != "read" || OpWrite.String() != "write" {
		t.Fatal("Op.String wrong")
	}
}

func TestUtilizationBounded(t *testing.T) {
	spec := DeviceA()
	eng := sim.NewEngine()
	dev := New(eng, spec, 5)
	rng := sim.NewRNG(6)
	var arrive func()
	n := 0
	arrive = func() {
		if n >= 20000 {
			return
		}
		n++
		dev.Submit(&Request{Op: OpRead, Block: uint64(rng.Int63n(1000)), Size: PageSize})
		eng.After(rng.Exp(3*sim.Microsecond), arrive) // heavy overload
	}
	eng.At(0, arrive)
	eng.Run()
	if u := dev.Utilization(); u < 0 || u > 1 {
		t.Errorf("utilization = %v out of [0,1]", u)
	}
}

func TestWearSlowsDevice(t *testing.T) {
	fresh := DeviceA()
	worn := DeviceA()
	worn.WearPagesScale = 1 << 20
	worn.PreAgedPages = 1 << 20 // 2x service inflation
	hf := runQD1(t, fresh, OpRead, 1000, 20*sim.Microsecond)
	hw := runQD1(t, worn, OpRead, 1000, 20*sim.Microsecond)
	// Worn read-only service doubles: 6.65us -> 13.3us extra on the floor.
	if hw.Mean() < hf.Mean()+5000 {
		t.Fatalf("worn device read avg %.1fus not slower than fresh %.1fus",
			hw.Mean()/1000, hf.Mean()/1000)
	}
}

func TestWearAccumulatesFromWrites(t *testing.T) {
	eng := sim.NewEngine()
	spec := DeviceA()
	spec.WearPagesScale = 1000
	dev := New(eng, spec, 1)
	if dev.WearMultiplier() != 1 {
		t.Fatalf("fresh multiplier = %v", dev.WearMultiplier())
	}
	eng.At(0, func() {
		for i := 0; i < 500; i++ {
			dev.Submit(&Request{Op: OpWrite, Block: uint64(i), Size: PageSize})
		}
	})
	eng.Run()
	if m := dev.WearMultiplier(); m < 1.49 || m > 1.51 {
		t.Fatalf("multiplier after 500/1000 pages = %v, want 1.5", m)
	}
}

func TestWearDisabledByDefault(t *testing.T) {
	eng := sim.NewEngine()
	dev := New(eng, DeviceA(), 1)
	eng.At(0, func() {
		for i := 0; i < 1000; i++ {
			dev.Submit(&Request{Op: OpWrite, Block: uint64(i), Size: PageSize})
		}
	})
	eng.Run()
	if dev.WearMultiplier() != 1 {
		t.Fatal("default profile must not age")
	}
}
