package experiments

import (
	"fmt"

	"github.com/reflex-go/reflex/internal/apps/fio"
	"github.com/reflex-go/reflex/internal/apps/flashx"
	"github.com/reflex-go/reflex/internal/apps/kv"
	"github.com/reflex-go/reflex/internal/blockdev"
	"github.com/reflex-go/reflex/internal/core"
	"github.com/reflex-go/reflex/internal/sim"
	"github.com/reflex-go/reflex/internal/workload"
)

// blockBackend names a block-device path of §5.6.
type blockBackend string

// The three block device paths compared in Figure 7.
const (
	backendLocal  blockBackend = "Local"
	backendISCSI  blockBackend = "iSCSI"
	backendReflex blockBackend = "ReFlex"
)

// mkBlockDevice assembles the client-side block device for a backend with
// the given number of blk-mq contexts.
func mkBlockDevice(r *rig, backend blockBackend, contexts int) blockdev.Device {
	switch backend {
	case backendLocal:
		return blockdev.NewLocalMQ(r.eng, workload.DeviceTarget(r.eng, r.dev), contexts)
	case backendISCSI:
		// The Linux iSCSI target serializes around one service thread;
		// Fig. 7a's "ReFlex provides 4x higher throughput than iSCSI"
		// pins the whole target near 70K IOPS.
		srv := r.iscsiServer(1)
		conns := make([]workload.Target, contexts)
		for i := range conns {
			conns[i] = srv.Connect(r.linuxClient(int64(70 + i)))
		}
		return blockdev.NewRemote(r.eng, conns)
	case backendReflex:
		srv := r.reflexServer(2, 1_200_000*core.TokenUnit)
		conns := make([]workload.Target, contexts)
		for i := range conns {
			conns[i] = srv.Connect(r.linuxClient(int64(80+i)), beTenant(srv, i+1))
		}
		return blockdev.NewRemote(r.eng, conns)
	default:
		panic(fmt.Sprintf("experiments: unknown backend %q", backend))
	}
}

// mkJobDevices returns per-job device views (pinned contexts for remote
// backends; the shared local device otherwise).
func mkJobDevices(r *rig, backend blockBackend, jobs int) []blockdev.Device {
	dev := mkBlockDevice(r, backend, jobs)
	if remote, ok := dev.(*blockdev.Remote); ok {
		out := make([]blockdev.Device, jobs)
		for i := range out {
			out[i] = remote.Context(i)
		}
		return out
	}
	return []blockdev.Device{dev}
}

// Fig7a reproduces Figure 7a: FIO 4KB random reads at queue depth 64 per
// job, sweeping thread (job) counts for the local driver, iSCSI and the
// ReFlex block driver. Reported as p95 latency versus throughput.
func Fig7a(scale Scale) *Table {
	t := &Table{
		ID:      "fig7a",
		Title:   "FIO 4KB randread: p95 latency vs throughput per backend and thread count",
		Columns: []string{"backend", "jobs", "MBps", "IOPS", "p95_us"},
		Notes:   "QD 64 per job; ReFlex/iSCSI through the remote block driver on Linux clients",
	}
	warm := scale.dur(20 * sim.Millisecond)
	dur := scale.dur(150 * sim.Millisecond)

	jobCounts := map[blockBackend][]int{
		backendLocal:  {1, 2, 3, 5},
		backendISCSI:  {1, 2, 3},
		backendReflex: {1, 2, 4, 6},
	}
	for _, backend := range []blockBackend{backendLocal, backendISCSI, backendReflex} {
		for _, jobs := range jobCounts[backend] {
			r := newRig(7000 + int64(jobs))
			devs := mkJobDevices(r, backend, jobs)
			res := fio.Run(r.eng, devs, fio.Config{
				Jobs: jobs, Depth: 64, ReadPercent: 100, BlockSize: 4096,
				Blocks: 1 << 22, Warmup: warm, Runtime: dur, Seed: int64(jobs),
			})
			r.stopAt = warm + dur
			r.finish()
			t.Add(string(backend), jobs, fmt.Sprintf("%.0f", res.MBps()),
				k(res.IOPS()), us(res.ReadLat.Quantile(0.95)))
		}
	}
	return t
}

// flashxScale holds the scaled-down graph parameters (the paper uses
// SOC-LiveJournal1: 4.8M vertices, 68.9M edges; see EXPERIMENTS.md).
const (
	flashxVertices = 60_000
	flashxAvgDeg   = 14
)

// Fig7b reproduces Figure 7b: FlashX graph benchmarks (WCC, PR, BFS, SCC)
// on local flash versus remote flash through iSCSI and ReFlex, reported as
// slowdown over local.
func Fig7b(scale Scale) *Table {
	t := &Table{
		ID:      "fig7b",
		Title:   "FlashX graph analytics: slowdown over local Flash",
		Columns: []string{"algorithm", "backend", "runtime_ms", "slowdown", "check"},
		Notes: fmt.Sprintf("synthetic power-law graph, %d vertices, ~%d edges (scaled from LiveJournal)",
			flashxVertices, flashxVertices*flashxAvgDeg),
	}
	_ = scale // graph size fixes the runtime; scale is accepted for interface symmetry
	g := flashx.GenPowerLaw(flashxVertices, flashxAvgDeg, 12345)
	cachePages := int(g.TotalPages() / 4)

	// Initiator CPU per missed page, stolen from the application core: the
	// local NVMe path is cheap, the ReFlex driver adds TCP processing, and
	// the iSCSI initiator additionally copies data between socket, SCSI
	// and application buffers (§2.1).
	missCPU := map[blockBackend]sim.Time{
		backendLocal:  1 * sim.Microsecond,
		backendReflex: 5 * sim.Microsecond / 2,
		backendISCSI:  8 * sim.Microsecond,
	}
	for _, algo := range []flashx.Algo{flashx.AlgoWCC, flashx.AlgoPR, flashx.AlgoBFS, flashx.AlgoSCC} {
		var localTime sim.Time
		for _, backend := range []blockBackend{backendLocal, backendISCSI, backendReflex} {
			r := newRig(7100)
			dev := mkBlockDevice(r, backend, 6)
			pg := flashx.NewPaged(g, dev, cachePages)
			pg.MissCPU = missCPU[backend]
			elapsed, summary := flashx.Run(r.eng, pg, algo)
			if backend == backendLocal {
				localTime = elapsed
			}
			slow := float64(elapsed) / float64(localTime)
			t.Add(string(algo), string(backend), elapsed/sim.Millisecond,
				fmt.Sprintf("%.2fx", slow), summary)
		}
	}
	return t
}

// kvWorkload names a Figure 7c benchmark.
type kvWorkload string

// The db_bench workloads of §5.6.
const (
	kvBulkLoad   kvWorkload = "BL"
	kvRandomRead kvWorkload = "RR"
	kvReadWrite  kvWorkload = "RwW"
)

// kv workload scale: the paper uses a 43GB database under a cgroup memory
// limit with multi-threaded db_bench clients; we scale database, cache and
// client cores proportionally.
const (
	kvKeys       = 30_000
	kvValueBytes = 400
	kvReaders    = 16 // db_bench reader threads
	kvCores      = 2  // client CPU cores the readers contend for
	kvGets       = kvKeys * 2
)

// runKV executes one KV benchmark and returns its duration.
func runKV(r *rig, dev blockdev.Device, w kvWorkload, seed int64) sim.Time {
	opt := kv.DefaultOptions()
	opt.MemtableBytes = 256 << 10
	opt.CacheBlocks = 2600 // ~10MB cache vs ~13MB working set (cgroup limit)
	// kvCores of client compute modeled on one serial resource: per-op
	// service is divided by the core count.
	opt.GetCPU = 6 * sim.Microsecond / kvCores
	opt.ClientCPU = sim.NewResource(r.eng, "dbbench-cpu")
	db := kv.Open(dev, opt)
	var elapsed sim.Time

	key := func(i int) string { return fmt.Sprintf("user%08d", i) }
	val := make([]byte, kvValueBytes)

	// readPhase fans kvGets point lookups over kvReaders processes that
	// contend for the shared client CPU (kvCores of service in parallel
	// is approximated by scaling per-op CPU by 1/kvCores on the shared
	// serial resource).
	readPhase := func(p *sim.Proc, requireHit bool) {
		done := 0
		wg := p.NewWaitGroup()
		wg.Add(kvReaders)
		for t := 0; t < kvReaders; t++ {
			t := t
			r.eng.Spawn("reader", func(rp *sim.Proc) {
				rng := sim.NewRNG(seed + int64(t))
				for i := 0; i < kvGets/kvReaders; i++ {
					if _, ok := db.Get(rp, key(rng.Intn(kvKeys))); !ok && requireHit {
						panic("kv: loaded key missing")
					}
					done++
				}
				wg.Done()
			})
		}
		wg.Wait()
		if done != kvGets/kvReaders*kvReaders {
			panic("kv: reader accounting broken")
		}
	}

	r.eng.Spawn("kv", func(p *sim.Proc) {
		// Bulkload always runs first to populate the database.
		start := p.Now()
		for i := 0; i < kvKeys; i++ {
			db.Put(p, key(i), val)
		}
		db.Flush(p)
		if w == kvBulkLoad {
			elapsed = p.Now() - start
			return
		}

		switch w {
		case kvRandomRead:
			start = p.Now()
			readPhase(p, true)
			elapsed = p.Now() - start
		case kvReadWrite:
			start = p.Now()
			r.eng.Spawn("writer", func(wp *sim.Proc) {
				for i := 0; i < kvKeys/2; i++ {
					db.Put(wp, key(kvKeys+i), val)
				}
			})
			readPhase(p, false)
			elapsed = p.Now() - start
		}
	})
	r.eng.Run()
	return elapsed
}

// Fig7c reproduces Figure 7c: the RocksDB-style benchmarks (bulkload,
// randomread, readwhilewriting) over local, iSCSI and ReFlex block
// devices, as slowdown over local.
func Fig7c(scale Scale) *Table {
	t := &Table{
		ID:      "fig7c",
		Title:   "LSM KV store (RocksDB-style): slowdown over local Flash",
		Columns: []string{"benchmark", "backend", "runtime_ms", "slowdown"},
		Notes: fmt.Sprintf("%d keys x %dB values, cache-limited block cache (scaled from 43GB)",
			kvKeys, kvValueBytes),
	}
	_ = scale
	for _, w := range []kvWorkload{kvBulkLoad, kvRandomRead, kvReadWrite} {
		var localTime sim.Time
		for _, backend := range []blockBackend{backendLocal, backendISCSI, backendReflex} {
			r := newRig(7200)
			dev := mkBlockDevice(r, backend, 6)
			elapsed := runKV(r, dev, w, 99)
			if backend == backendLocal {
				localTime = elapsed
			}
			t.Add(string(w), string(backend), elapsed/sim.Millisecond,
				fmt.Sprintf("%.2fx", float64(elapsed)/float64(localTime)))
		}
	}
	return t
}
