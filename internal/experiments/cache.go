package experiments

import (
	"fmt"

	"github.com/reflex-go/reflex/internal/core"
	"github.com/reflex-go/reflex/internal/dataplane"
	"github.com/reflex-go/reflex/internal/flashsim"
	"github.com/reflex-go/reflex/internal/netsim"
	"github.com/reflex-go/reflex/internal/sim"
	"github.com/reflex-go/reflex/internal/workload"
)

// CacheBenchResult carries the numeric outcomes of ext-cache that the
// bench gates check (cmd/reflex-bench -cache): the tiered read cache must
// actually buy best-effort throughput at a real hit ratio without hurting
// LC tail latency, and stream-segregated placement must actually cut
// write amplification versus mixing lifetimes.
type CacheBenchResult struct {
	// Part 1 (tiered cache, Fig-5 mixed tenants with Zipf reads).
	BEIOPSOff    float64 // aggregate best-effort IOPS, cache off
	BEIOPSOn     float64 // aggregate best-effort IOPS, cache on
	HitRatio     float64 // cache hit ratio over the run (0..1)
	LCReadP99Off int64   // LC tenant A p99 read latency (ns), cache off
	LCReadP99On  int64   // LC tenant A p99 read latency (ns), cache on

	// Part 2 (GC-aware placement, hot/cold writers).
	WriteAmpMixed      float64 // device write amplification, 1 stream
	WriteAmpSegregated float64 // device write amplification, 2 streams
}

// BESpeedup is the best-effort throughput multiple the cache bought.
func (r CacheBenchResult) BESpeedup() float64 {
	if r.BEIOPSOff <= 0 {
		return 0
	}
	return r.BEIOPSOn / r.BEIOPSOff
}

// cacheWorkingSet is the Zipf address range of part 1; cacheBlocks the
// DRAM cache capacity (8192 blocks = 32 MiB). The cache holds <1% of the
// working set, so any hit ratio it earns comes from skew, not size.
const (
	cacheWorkingSet = 1 << 20
	cacheBlocks     = 8192
	cacheZipfSkew   = 1.3
)

// cachePlacementSpec is device A shrunk to an explicit-erase-unit
// geometry: 4 channels x 6 units x 32 pages = 768 physical pages, so a
// few thousand writes exercise real GC.
func cachePlacementSpec(streams int) flashsim.Spec {
	s := flashsim.DeviceA()
	s.Name = "placed"
	s.Channels = 4
	s.EraseUnitPages = 32
	s.UnitsPerChannel = 6
	s.PlacementStreams = streams
	return s
}

// ExtCache runs the two-part tiered-cache/placement experiment and
// returns its table; CacheBench exposes the raw numbers for gating.
func ExtCache(scale Scale) *Table {
	_, t := CacheBench(scale)
	return t
}

// CacheBench runs ext-cache and returns both the gateable numbers and
// the human-readable table.
//
// Part 1 replays the Figure-5 tenant mix — A (LC, 120K IOPS reserved,
// 100% read, paced) plus best-effort C (95% read) and D (25% read) —
// with block addresses Zipf-distributed over a 1M-block working set,
// once without and once with a 8192-block DRAM cache, at identical
// device token budgets. Hits are charged CacheServeCost instead of a
// device read, so every hit returns tokens to the shared pool and the
// best-effort tenants get to spend them.
//
// Part 2 drives a hot overwriter (LC class, 64-block range) against a
// cold writer (BE class, 400-block range) on the explicit erase-unit
// device, once with both classes mixed into one placement stream and
// once segregated (StreamByClass), and reports device write
// amplification for each.
func CacheBench(scale Scale) (CacheBenchResult, *Table) {
	t := &Table{
		ID:    "ext-cache",
		Title: "Tiered DRAM read cache + GC-aware placement (1 ReFlex thread, 4KB)",
		Columns: []string{
			"part", "config", "tenant", "p95_read_us", "p99_read_us", "IOPS", "hit_pct", "write_amp",
		},
		Notes: fmt.Sprintf("cache %d blocks over Zipf(%.1f) x %dK-block set; identical 420K tokens/s budgets; hit_pct is config-global",
			cacheBlocks, cacheZipfSkew, cacheWorkingSet/1000),
	}
	var out CacheBenchResult

	// The cache-on configs start cold: every hot block must miss, clear
	// the admission hurdle and fill before steady state, so the warmup
	// is long enough to cover that transient plus the queue drain.
	warm := scale.dur(100 * sim.Millisecond)
	dur := scale.dur(300 * sim.Millisecond)

	for _, cacheOn := range []bool{false, true} {
		// A 100GbE link keeps the NIC out of the way: with the cache on,
		// aggregate read throughput exceeds what 10GbE can carry in 4KB
		// responses, and the experiment is about token accounting, not
		// wire saturation (ext-100gbe covers that regime).
		eng := sim.NewEngine()
		r := &rig{
			eng: eng,
			net: netsim.New(eng, netsim.HundredGbE()),
		}
		r.dev = flashsim.New(eng, flashsim.DeviceA(), 4200)
		cfg := dataplane.DefaultConfig(1, deviceTokenRate(500*sim.Microsecond))
		if cacheOn {
			cfg.CacheBlocks = cacheBlocks
			cfg.CacheAdmit = "cost"
			cfg.CacheHitService = 2 * sim.Microsecond
		}
		srv := dataplane.NewServer(r.eng, r.net, r.dev, cfg)

		a := lcTenant(srv, 1, 120_000, 100, 500*sim.Microsecond)
		c := beTenant(srv, 3)
		d := beTenant(srv, 4)

		// Reads are Zipf-skewed over the working set; write streams are
		// uniform (a skewed read set over a spread write set is the usual
		// shape of caching-friendly storage workloads — and a write
		// stream aimed at the read hot set would simply invalidate the
		// cache as fast as it fills, which is the cache-off row again).
		// C keeps Fig 5's 95/5 mix via two generators on one tenant.
		type load struct {
			tn      *core.Tenant
			name    string
			iops    float64
			readPct int
			skew    float64
			paced   bool
		}
		loads := []load{
			{a, "A", 117_500, 100, cacheZipfSkew, true},
			{c, "C", 200_000, 100, cacheZipfSkew, false},
			{c, "Cw", 10_000, 0, 0, false},
			{d, "D", 40_000, 25, 0, false},
		}
		results := make(map[string]*workload.Result)
		for li, l := range loads {
			conn := srv.Connect(r.ixClient(int64(li)), l.tn)
			results[l.name] = r.zipfLoop(conn, l.iops, l.readPct, 4096,
				cacheWorkingSet, l.skew, warm, dur, int64(500+li), l.paced)
		}
		r.finish()
		results["C"].Merge(results["Cw"])
		delete(results, "Cw")
		loads = append(loads[:2], loads[3])

		config := "cache off"
		hitPct := "-"
		if cacheOn {
			config = "cache on"
			hitPct = fmt.Sprintf("%.0f", srv.Cache().HitRatio()*100)
		}
		beIOPS := results["C"].IOPS() + results["D"].IOPS()
		for _, l := range loads {
			res := results[l.name]
			t.Add("1-cache", config, l.name,
				us(res.ReadLat.Quantile(0.95)), us(res.ReadLat.Quantile(0.99)),
				k(res.IOPS()), hitPct, "-")
		}
		if cacheOn {
			out.BEIOPSOn = beIOPS
			out.HitRatio = srv.Cache().HitRatio()
			out.LCReadP99On = results["A"].ReadLat.Quantile(0.99)
		} else {
			out.BEIOPSOff = beIOPS
			out.LCReadP99Off = results["A"].ReadLat.Quantile(0.99)
		}
	}

	for _, streams := range []int{1, 2} {
		r := newRigOn(cachePlacementSpec(streams), 4300)
		cfg := dataplane.DefaultConfig(1, deviceTokenRate(2*sim.Millisecond))
		cfg.StreamByClass = streams > 1
		srv := dataplane.NewServer(r.eng, r.net, r.dev, cfg)

		// Hot overwriter is LC (stream 0 when segregated), cold writer BE
		// (stream 1): same split the real server draws from tenant class.
		hot := lcTenant(srv, 1, 40_000, 20, 2*sim.Millisecond)
		cold := beTenant(srv, 2)

		hotConn := srv.Connect(r.ixClient(1), hot)
		coldConn := srv.Connect(r.ixClient(2), cold)
		r.zipfLoop(hotConn, 30_000, 20, 4096, 64, 0, warm, dur, 61, true)
		r.zipfLoop(offsetTarget(coldConn, 1024), 7_500, 20, 4096, 400, 0, warm, dur, 62, false)
		r.finish()

		config := "mixed (1 stream)"
		if streams > 1 {
			config = "segregated (2 streams)"
		}
		wa := r.dev.WriteAmp()
		t.Add("2-placement", config, "-", "-", "-", "-", "-", fmt.Sprintf("%.3f", wa))
		if streams > 1 {
			out.WriteAmpSegregated = wa
		} else {
			out.WriteAmpMixed = wa
		}
	}
	return out, t
}
