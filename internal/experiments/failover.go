package experiments

import (
	"encoding/binary"
	"sort"
	"time"

	"github.com/reflex-go/reflex/internal/client"
	"github.com/reflex-go/reflex/internal/cluster"
	"github.com/reflex-go/reflex/internal/core"
	"github.com/reflex-go/reflex/internal/faults"
	"github.com/reflex-go/reflex/internal/protocol"
	"github.com/reflex-go/reflex/internal/server"
	"github.com/reflex-go/reflex/internal/sim"
	"github.com/reflex-go/reflex/internal/storage"
)

// ExtFailover is the replication/failover extension experiment. Unlike the
// simulator-driven tables it runs the real TCP server pair wall-clock,
// because the subjects under test — the replication stream, the hedged-read
// race, and the client's failover machinery — live in the real stack.
//
// Three phases, one row each:
//
//   - "gc-pulse unhedged": the primary suffers injected device stalls (a
//     GC pulse: ~10% of reads stall for milliseconds). A plain cluster
//     client reads through them; its p95 is the stall.
//   - "gc-pulse hedged": same pulse, hedging on. Once the adaptive delay
//     (the client's own windowed read p95, clamped) is overtaken, the read
//     is duplicated to the backup and the first response wins; the stall
//     disappears from the tail. The claim: hedged p95 <= unhedged p95.
//   - "kill-primary": sequential acked writes with the primary killed
//     mid-run. The client promotes the backup (epoch bump) and every acked
//     write must remain readable — lost_acked is the zero-loss check.
type failPhase struct {
	name      string
	reads     int
	p50, p95  time.Duration
	p99       time.Duration
	hIssued   uint64
	hWon      uint64
	failovers uint64
	lost      int
}

// ExtFailover runs the three phases and tabulates them.
func ExtFailover(scale Scale) *Table {
	t := &Table{
		ID:    "ext-failover",
		Title: "Replicated pair: hedged reads under GC pulses, kill-the-primary failover",
		Columns: []string{
			"phase", "ops", "p50_us", "p95_us", "p99_us",
			"hedge_issued", "hedge_won", "failovers", "lost_acked",
		},
		Notes: "hedged p95 <= unhedged p95 under the pulse; lost_acked must be 0 after failover",
	}
	dur := time.Duration(scale.dur(2 * sim.Second))

	rows := []failPhase{
		runGCPulsePhase("gc-pulse unhedged", false, dur),
		runGCPulsePhase("gc-pulse hedged", true, dur),
		runKillPhase("kill-primary", dur),
	}
	for _, r := range rows {
		t.Add(r.name, r.reads,
			us(int64(r.p50)), us(int64(r.p95)), us(int64(r.p99)),
			r.hIssued, r.hWon, r.failovers, r.lost)
	}
	return t
}

// failPair is an in-process primary/backup pair over mem backends.
type failPair struct {
	a, b     *server.Server
	backendA storage.Backend
	bk       *cluster.Backup
}

func startFailPair(inj *faults.Injector) (*failPair, error) {
	const span = 4096 * protocol.BlockSize
	mk := func(backend storage.Backend, epoch uint16, backup bool, faultsInj *faults.Injector) (*server.Server, error) {
		return server.New(server.Config{
			Addr:       "127.0.0.1:0",
			Threads:    1,
			Epoch:      epoch,
			BackupRole: backup,
			Faults:     faultsInj,
			Model: core.CostModel{
				ReadCost:         core.TokenUnit,
				ReadOnlyReadCost: core.TokenUnit / 2,
				WriteCost:        10 * core.TokenUnit,
			},
			TokenRate: 400_000 * core.TokenUnit,
		}, backend)
	}
	backendA := storage.NewMem(span)
	a, err := mk(backendA, 1, false, inj) // the pulse hits only the primary
	if err != nil {
		return nil, err
	}
	b, err := mk(storage.NewMem(span), 1, true, nil)
	if err != nil {
		a.Close()
		return nil, err
	}
	p := &failPair{a: a, b: b, backendA: backendA}
	p.bk = cluster.StartBackup(a.Addr(), b, cluster.BackupOptions{})
	bk := p.bk
	b.SetOnPromote(func(uint16) { go bk.Stop() })
	for i := 0; i < 200 && !a.ReplicaCaughtUp(); i++ {
		time.Sleep(5 * time.Millisecond)
	}
	return p, nil
}

func (p *failPair) close() {
	p.bk.Stop()
	p.a.Close()
	p.b.Close()
}

func pct(lat []time.Duration, q float64) time.Duration {
	if len(lat) == 0 {
		return 0
	}
	return lat[int(q*float64(len(lat)-1))]
}

// runGCPulsePhase measures synchronous read latency through a primary
// whose device stalls (hedged or not).
func runGCPulsePhase(name string, hedged bool, dur time.Duration) failPhase {
	// The pulse: ~10% of primary reads stall for 8ms — far above the
	// sub-millisecond base service time, so it owns the unhedged tail.
	inj := faults.New(faults.Config{
		Seed:            11,
		DeviceStallProb: 0.10,
		DeviceStallDur:  8 * time.Millisecond,
	})
	p, err := startFailPair(inj)
	if err != nil {
		return failPhase{name: name}
	}
	defer p.close()

	cl, err := client.DialCluster([]string{p.a.Addr(), p.b.Addr()}, client.Options{
		Timeout:    2 * time.Second,
		HedgeReads: hedged,
	})
	if err != nil {
		return failPhase{name: name}
	}
	defer cl.Close()
	h, err := cl.Register(protocol.Registration{Writable: true, BestEffort: true})
	if err != nil {
		return failPhase{name: name}
	}
	buf := make([]byte, 4096)
	for lba := uint32(0); lba < 512; lba += 8 {
		cl.Write(h, lba, buf)
	}

	var lat []time.Duration
	deadline := time.Now().Add(dur)
	lba := uint32(0)
	for time.Now().Before(deadline) {
		t0 := time.Now()
		if _, err := cl.Read(h, lba, 4096); err == nil {
			lat = append(lat, time.Since(t0))
		}
		lba = (lba + 8) % 512
	}
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	return failPhase{
		name:    name,
		reads:   len(lat),
		p50:     pct(lat, 0.50),
		p95:     pct(lat, 0.95),
		p99:     pct(lat, 0.99),
		hIssued: cl.HedgesIssued(),
		hWon:    cl.HedgesWon(),
	}
}

// runKillPhase issues sequential acked verifiable writes, kills the
// primary mid-run, and counts acked writes lost after the failover.
func runKillPhase(name string, dur time.Duration) failPhase {
	p, err := startFailPair(nil)
	if err != nil {
		return failPhase{name: name}
	}
	defer p.close()

	cl, err := client.DialCluster([]string{p.a.Addr(), p.b.Addr()}, client.Options{
		Timeout:  300 * time.Millisecond,
		Checksum: true,
	})
	if err != nil {
		return failPhase{name: name}
	}
	defer cl.Close()
	h, err := cl.Register(protocol.Registration{Writable: true, BestEffort: true})
	if err != nil {
		return failPhase{name: name}
	}

	acked := make(map[uint32]uint64)
	var lat []time.Duration
	var seq uint64
	killAt := time.Now().Add(dur / 2)
	deadline := time.Now().Add(dur)
	killed := false
	buf := make([]byte, 4096)
	for time.Now().Before(deadline) {
		if !killed && time.Now().After(killAt) {
			p.a.Close()
			killed = true
		}
		seq++
		lba := uint32(seq % 512 * 8)
		binary.BigEndian.PutUint64(buf, seq)
		t0 := time.Now()
		if err := cl.Write(h, lba, buf); err == nil {
			lat = append(lat, time.Since(t0))
			acked[lba] = seq
		}
	}
	if !killed {
		p.a.Close()
	}

	lost := 0
	for lba, want := range acked {
		got, err := cl.Read(h, lba, 4096)
		if err != nil || binary.BigEndian.Uint64(got) != want {
			lost++
		}
	}
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	return failPhase{
		name:      name,
		reads:     len(lat),
		p50:       pct(lat, 0.50),
		p95:       pct(lat, 0.95),
		p99:       pct(lat, 0.99),
		failovers: cl.Failovers(),
		lost:      lost,
	}
}
