package experiments

import (
	"strconv"
	"testing"
)

// TestExtFailoverShape runs the wall-clock replication experiment at quick
// scale and asserts its acceptance criteria:
//
//   - hedged p95 <= unhedged p95 during the GC pulse (the hedge rescues
//     the tail; with a 10% x 8ms pulse the gap is enormous, so the bare
//     inequality is a safe, non-flaky bound);
//   - the kill phase observed at least one failover and lost zero acked
//     writes.
func TestExtFailoverShape(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock experiment is not short")
	}
	tbl := ExtFailover(quick)
	if len(tbl.Rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(tbl.Rows))
	}
	cell := func(phase, col string) string {
		v, ok := tbl.Cell(col, func(r []string) bool { return r[0] == phase })
		if !ok {
			t.Fatalf("missing cell %s/%s", phase, col)
		}
		return v
	}
	mustInt := func(s string) int {
		v, err := strconv.Atoi(s)
		if err != nil {
			t.Fatalf("bad int cell %q: %v", s, err)
		}
		return v
	}

	unhedged := parseUS(t, cell("gc-pulse unhedged", "p95_us"))
	hedged := parseUS(t, cell("gc-pulse hedged", "p95_us"))
	if unhedged <= 0 || hedged <= 0 {
		t.Fatalf("empty pulse phases (unhedged %v, hedged %v)", unhedged, hedged)
	}
	if hedged > unhedged {
		t.Fatalf("hedged p95 %vus > unhedged p95 %vus under the GC pulse", hedged, unhedged)
	}
	if mustInt(cell("gc-pulse hedged", "hedge_issued")) == 0 {
		t.Fatal("hedged phase issued no hedges")
	}

	if mustInt(cell("kill-primary", "failovers")) < 1 {
		t.Fatal("kill phase saw no failover")
	}
	if lost := mustInt(cell("kill-primary", "lost_acked")); lost != 0 {
		t.Fatalf("kill phase lost %d acked writes", lost)
	}
	if mustInt(cell("kill-primary", "ops")) == 0 {
		t.Fatal("kill phase acked nothing")
	}
}
