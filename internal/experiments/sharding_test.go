package experiments

import (
	"strconv"
	"testing"
)

// TestExtShardingShape runs the wall-clock scale-out experiment at quick
// scale and asserts its acceptance criteria:
//
//   - 4-node aggregate read throughput >= 3.5x the 1-node row (each node
//     is token-capped at the same per-node budget, so anything much below
//     4.0x means the shard map concentrated load instead of spreading it);
//   - the live shard migration in the 4-node row completed, bumping the
//     map by two versions (dual-ownership window + cutover);
//   - StatusWrongShard redirects across the move stay under 1% of ops
//     (the router's single-flight refresh converges instead of storming).
func TestExtShardingShape(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock experiment is not short")
	}
	tbl := ExtSharding(quick)
	if len(tbl.Rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(tbl.Rows))
	}
	cell := func(nodes, col string) string {
		v, ok := tbl.Cell(col, func(r []string) bool { return r[0] == nodes })
		if !ok {
			t.Fatalf("missing cell nodes=%s col=%s", nodes, col)
		}
		return v
	}
	mustFloat := func(s string) float64 {
		v, err := strconv.ParseFloat(s, 64)
		if err != nil {
			t.Fatalf("bad float cell %q: %v", s, err)
		}
		return v
	}

	for _, n := range []string{"1", "2", "4"} {
		if ops := mustFloat(cell(n, "ops")); ops < 100 {
			t.Fatalf("%s-node phase completed only %.0f ops", n, ops)
		}
	}
	if speedup := mustFloat(cell("4", "speedup")); speedup < 3.5 {
		t.Fatalf("4-node speedup = %.2fx, want >= 3.5x", speedup)
	}
	if moves := mustFloat(cell("4", "moves")); moves != 1 {
		t.Fatalf("4-node phase recorded %.0f moves, want 1", moves)
	}
	if v := mustFloat(cell("4", "map_version")); v != 3 {
		t.Fatalf("4-node map at v%.0f after the move, want v3 (window + cutover)", v)
	}
	if pct := mustFloat(cell("4", "redirect_pct")); pct >= 1.0 {
		t.Fatalf("redirects = %.3f%% of ops across the move, want < 1%%", pct)
	}
}
