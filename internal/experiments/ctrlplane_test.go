package experiments

import (
	"strings"
	"testing"
	"time"
)

// TestExtCtrlplaneShape runs the wall-clock control-plane experiment at a
// single trial and asserts the acceptance bound: the outage from killing
// the leader to a successor holding a valid lease stays within one lease
// TTL plus one election round, and the restarted replica catches back up.
func TestExtCtrlplaneShape(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock experiment is not short")
	}
	tbl := ExtCtrlplane(0.34) // one trial
	if len(tbl.Rows) == 0 {
		t.Fatalf("no rows (notes: %s)", tbl.Notes)
	}
	parseDur := func(s string) time.Duration {
		d, err := time.ParseDuration(s)
		if err != nil {
			t.Fatalf("bad duration cell %q: %v", s, err)
		}
		return d
	}
	for i, row := range tbl.Rows {
		cells := map[string]string{}
		for c, col := range tbl.Columns {
			cells[col] = row[c]
		}
		if cells["within_bound"] != "true" {
			t.Fatalf("trial %d outage %s exceeded bound %s (row %v)",
				i, cells["outage_ms"], cells["bound_ms"], row)
		}
		outage, bound := parseDur(cells["outage_ms"]), parseDur(cells["bound_ms"])
		if outage <= 0 || outage > bound {
			t.Fatalf("trial %d outage %v vs bound %v inconsistent with within_bound",
				i, outage, bound)
		}
		if strings.Contains(cells["rejoin_ms"], "failed") {
			t.Fatalf("trial %d rejoin: %s", i, cells["rejoin_ms"])
		}
		if rejoin := parseDur(cells["rejoin_ms"]); rejoin <= 0 {
			t.Fatalf("trial %d restarted replica never caught up", i)
		}
	}
}
