package experiments

import (
	"encoding/binary"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/reflex-go/reflex/internal/client"
	"github.com/reflex-go/reflex/internal/core"
	"github.com/reflex-go/reflex/internal/protocol"
	"github.com/reflex-go/reflex/internal/server"
	"github.com/reflex-go/reflex/internal/sim"
	"github.com/reflex-go/reflex/internal/storage"
)

// ExtVolume is the volume-layer extension experiment (DESIGN.md §18).
// Like ext-failover it runs the real TCP server wall-clock, because the
// subjects under test — the extent map on the pcore fast path, the CoW
// snapshot barrier, and the self-paced diff-restore stream — live in the
// real stack.
//
// Two phases over the same mixed-tenant load (an LC reader with a
// latency SLO plus a best-effort writer hammering verifiable records
// into a thin volume):
//
//   - "baseline": the load alone; the LC read percentiles are the
//     reference tail.
//   - "snapshot": mid-run, a management client takes a CoW snapshot,
//     cuts a writable clone, and pulls the full diff stream (0, gen]
//     into a local image over a dedicated connection — all while the
//     load keeps running.
//
// The phase-2 claims: the diff-restored image is crash-consistent (no
// torn records, every record's sequence number inside the write-ledger
// bracket taken around the snapshot), the live volume loses no acked
// write, and the LC read p95 stays within 2x of baseline while the
// snapshot machinery runs.
type VolumeBenchResult struct {
	LCReadP95Base time.Duration // baseline LC read p95
	LCReadP95Snap time.Duration // LC read p95 with snapshot+clone+restore mid-run
	SnapshotLat   time.Duration // VolSnapshot call latency under load
	RestoredMiB   float64       // bytes shipped by the diff stream
	RestoredGen   uint64        // generation the restore reached
	TornBlocks    int           // torn records in the restored image (must be 0)
	StaleSlots    int           // restored records outside the ledger bracket (must be 0)
	LostAcked     int           // acked writes missing from the live volume (must be 0)
}

// P95Ratio is the snapshot-phase LC tail expansion over baseline.
func (r VolumeBenchResult) P95Ratio() float64 {
	if r.LCReadP95Base <= 0 {
		return 0
	}
	return float64(r.LCReadP95Snap) / float64(r.LCReadP95Base)
}

const (
	volName      = "tenants/fig5"
	volSlots     = 16   // write slots, one 4KB record each
	volRecBytes  = 4096 // record size
	volRecBlocks = volRecBytes / protocol.BlockSize
)

// volRecord fills a 4KB record with (seq, slot) stamped every 16 bytes,
// so a torn write (mixed generations inside one record) is detectable.
func volRecord(buf []byte, slot int, seq uint64) {
	for off := 0; off < len(buf); off += 16 {
		binary.BigEndian.PutUint64(buf[off:], seq)
		binary.BigEndian.PutUint64(buf[off+8:], uint64(slot))
	}
}

// volDecode returns the record's sequence number and whether any stamp
// disagrees (a torn record). An all-zero record decodes as (0, false).
func volDecode(buf []byte, slot int) (uint64, bool) {
	seq := binary.BigEndian.Uint64(buf)
	for off := 0; off < len(buf); off += 16 {
		if binary.BigEndian.Uint64(buf[off:]) != seq {
			return seq, true
		}
		s := binary.BigEndian.Uint64(buf[off+8:])
		if seq != 0 && s != uint64(slot) {
			return seq, true
		}
	}
	return seq, false
}

type volPhase struct {
	reads, writes int
	p50, p95, p99 time.Duration
	snapLat       time.Duration
	restoredMiB   float64
	gen           uint64
	torn, stale   int
	lost          int
	err           error
}

// ExtVolume runs both phases and tabulates them.
func ExtVolume(scale Scale) *Table {
	_, t := VolumeBench(scale)
	return t
}

// VolumeBench runs ext-volume and returns both the gateable numbers and
// the human-readable table.
func VolumeBench(scale Scale) (VolumeBenchResult, *Table) {
	t := &Table{
		ID:    "ext-volume",
		Title: "Volume layer: CoW snapshot + clone + diff-restore under mixed-tenant load",
		Columns: []string{
			"phase", "lc_reads", "be_writes", "p50_us", "p95_us", "p99_us",
			"snap_us", "restore_mib", "torn", "stale", "lost_acked",
		},
		Notes: "gates: restored image crash-consistent (torn=0, stale=0), lost_acked=0, snapshot-phase LC p95 <= 2x baseline",
	}
	dur := time.Duration(scale.dur(2 * sim.Second))

	base := runVolumePhase(false, dur)
	snap := runVolumePhase(true, dur)
	for _, ph := range []struct {
		name string
		p    volPhase
	}{{"baseline", base}, {"snapshot", snap}} {
		p := ph.p
		snapUS, restore := "-", "-"
		if ph.name == "snapshot" {
			snapUS = us(int64(p.snapLat))
			restore = fmt.Sprintf("%.2f", p.restoredMiB)
		}
		t.Add(ph.name, p.reads, p.writes,
			us(int64(p.p50)), us(int64(p.p95)), us(int64(p.p99)),
			snapUS, restore, p.torn, p.stale, p.lost)
	}

	return VolumeBenchResult{
		LCReadP95Base: base.p95,
		LCReadP95Snap: snap.p95,
		SnapshotLat:   snap.snapLat,
		RestoredMiB:   snap.restoredMiB,
		RestoredGen:   snap.gen,
		TornBlocks:    base.torn + snap.torn,
		StaleSlots:    base.stale + snap.stale,
		LostAcked:     base.lost + snap.lost,
	}, t
}

type volSnapOutcome struct {
	snapLat time.Duration
	gen     uint64
	floor   [volSlots]uint64
	ceil    [volSlots]uint64
	image   []byte
	bytes   int64
	err     error
}

// runVolumePhase runs one load window against a fresh server and, when
// doSnap is set, drives the snapshot/clone/restore sequence at the
// half-way point while the load continues.
func runVolumePhase(doSnap bool, dur time.Duration) volPhase {
	fail := func(err error) volPhase { return volPhase{err: err} }
	srv, err := server.New(server.Config{
		Addr:    "127.0.0.1:0",
		Threads: 2,
		Model: core.CostModel{
			ReadCost:         core.TokenUnit,
			ReadOnlyReadCost: core.TokenUnit / 2,
			WriteCost:        10 * core.TokenUnit,
		},
		TokenRate:   400_000 * core.TokenUnit,
		VolumeBytes: 32 << 20,
	}, storage.NewMem(64<<20))
	if err != nil {
		return fail(err)
	}
	defer srv.Close()

	cl, err := client.Dial(srv.Addr())
	if err != nil {
		return fail(err)
	}
	defer cl.Close()
	vol, err := cl.VolCreate(volName, 4096) // 2 MiB logical, thin
	if err != nil {
		return fail(err)
	}
	wh, err := cl.OpenVolume(protocol.Registration{BestEffort: true, Writable: true}, vol)
	if err != nil {
		return fail(err)
	}
	lch, err := cl.OpenVolume(protocol.Registration{
		ReadPercent: 100,
		IOPS:        20_000,
		LatencyP95:  uint64(2 * time.Millisecond),
	}, vol)
	if err != nil {
		return fail(err)
	}

	// Best-effort writer: verifiable records round-robin over the slots.
	// The per-slot ledger entry is stored only after the ack, so the
	// ledger is a lower bound on what the volume durably holds.
	var acked [volSlots]atomic.Uint64
	var writes atomic.Int64
	stopWriter := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		buf := make([]byte, volRecBytes)
		var seq uint64
		for {
			select {
			case <-stopWriter:
				return
			default:
			}
			seq++
			slot := int(seq % volSlots)
			volRecord(buf, slot, seq)
			if err := cl.Write(wh, uint32(slot*volRecBlocks), buf); err != nil {
				return
			}
			acked[slot].Store(seq)
			writes.Add(1)
		}
	}()

	// Mid-run management sequence on its own goroutine: ledger bracket
	// around the snapshot, writable clone, and a full diff restore over a
	// dedicated stream connection. floor is read before the snapshot
	// request (every ack observed then is durably pre-snapshot); ceil
	// after it returns, plus one write-in-flight allowance per slot (the
	// writer is synchronous, so at most one unacked write exists, and
	// per-slot sequence numbers step by volSlots).
	snapDone := make(chan volSnapOutcome, 1)
	launchSnap := func() {
		go func() {
			var out volSnapOutcome
			for i := range out.floor {
				out.floor[i] = acked[i].Load()
			}
			t0 := time.Now()
			gen, err := cl.VolSnapshot(volName)
			out.snapLat = time.Since(t0)
			if err != nil {
				out.err = err
				snapDone <- out
				return
			}
			out.gen = gen
			for i := range out.ceil {
				out.ceil[i] = acked[i].Load() + volSlots
			}
			if _, err := cl.VolClone(volName, gen, volName+"-r"); err != nil {
				out.err = err
				snapDone <- out
				return
			}
			out.image = make([]byte, volSlots*volRecBytes)
			_, err = client.VolRestore(srv.Addr(), volName, 0, gen, func(off int64, data []byte) error {
				out.bytes += int64(len(data))
				if off < int64(len(out.image)) {
					copy(out.image[off:], data)
				}
				return nil
			})
			out.err = err
			snapDone <- out
		}()
	}

	// LC reader: synchronous 4KB reads over the slot range; every latency
	// sample lands in the phase percentiles.
	var lat []time.Duration
	deadline := time.Now().Add(dur)
	snapAt := time.Now().Add(dur / 2)
	snapped := false
	slot := 0
	for time.Now().Before(deadline) {
		if doSnap && !snapped && time.Now().After(snapAt) {
			snapped = true
			launchSnap()
		}
		t0 := time.Now()
		if _, err := cl.Read(lch, uint32(slot*volRecBlocks), volRecBytes); err != nil {
			close(stopWriter)
			wg.Wait()
			return fail(err)
		}
		lat = append(lat, time.Since(t0))
		slot = (slot + 1) % volSlots
	}
	close(stopWriter)
	wg.Wait()

	ph := volPhase{reads: len(lat), writes: int(writes.Load())}
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	ph.p50, ph.p95, ph.p99 = pct(lat, 0.50), pct(lat, 0.95), pct(lat, 0.99)

	// Zero-lost-acked check: the writer is joined, so the live volume
	// must hold exactly the last acked record in every slot.
	for i := 0; i < volSlots; i++ {
		want := acked[i].Load()
		if want == 0 {
			continue
		}
		b, err := cl.Read(wh, uint32(i*volRecBlocks), volRecBytes)
		if err != nil {
			ph.lost++
			continue
		}
		seq, torn := volDecode(b, i)
		if torn || seq != want {
			ph.lost++
		}
	}

	if doSnap {
		if !snapped {
			return fail(fmt.Errorf("ext-volume: window too short to reach the snapshot point"))
		}
		out := <-snapDone
		if out.err != nil {
			return fail(out.err)
		}
		ph.snapLat = out.snapLat
		ph.gen = out.gen
		ph.restoredMiB = float64(out.bytes) / (1 << 20)
		// Crash-consistency of the diff-restored image: every slot record
		// untorn and inside the ledger bracket (all-zero only if the slot
		// had never been acked when the bracket opened).
		for i := 0; i < volSlots; i++ {
			rec := out.image[i*volRecBytes : (i+1)*volRecBytes]
			seq, torn := volDecode(rec, i)
			if torn {
				ph.torn++
				continue
			}
			if seq == 0 {
				if out.floor[i] != 0 {
					ph.stale++
				}
				continue
			}
			if seq < out.floor[i] || seq > out.ceil[i] || int(seq%volSlots) != i {
				ph.stale++
			}
		}
	}
	return ph
}
