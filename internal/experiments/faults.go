package experiments

import (
	"fmt"
	"time"

	"github.com/reflex-go/reflex/internal/faults"
	"github.com/reflex-go/reflex/internal/sim"
)

// ExtFaults is the fault-injection extension experiment: the simulated
// ReFlex rig runs an LC tenant at its SLO rate next to a saturating BE
// tenant while message faults (loss, duplication, delay — netsim) and
// device faults (per-request errors and timeout pulses — flashsim) are
// injected at increasing rates from one seeded injector.
//
// The claim under test: faults degrade throughput proportionally to the
// loss rate but do not break QoS isolation — the LC tenant's p95 for the
// requests that do complete stays near its SLO, because the scheduler's
// token accounting is per-admitted-request and unaffected by losses
// elsewhere.
func ExtFaults(scale Scale) *Table {
	t := &Table{
		ID:    "ext-faults",
		Title: "Fault injection: QoS isolation under message loss and device errors",
		Columns: []string{
			"profile", "msg_fault_prob", "dev_err_prob", "faults_injected",
			"dev_errors", "dev_stalls", "lc_p95_us", "lc_IOPS", "be_IOPS",
		},
		Notes: "LC p95 holds near its SLO as fault rates rise; losses cost completions, not isolation",
	}
	warm := scale.dur(20 * sim.Millisecond)
	dur := scale.dur(200 * sim.Millisecond)

	profiles := []struct {
		name string
		msg  float64 // message loss/dup probability (delay runs at 5x)
		dev  float64 // device error probability (stalls run at half)
	}{
		{"none", 0, 0},
		{"light", 0.001, 0.002},
		{"moderate", 0.005, 0.01},
		{"heavy", 0.02, 0.05},
	}

	for _, p := range profiles {
		r := newRig(7)
		inj := faults.New(faults.Config{
			Seed:            7,
			MsgLossProb:     p.msg,
			MsgDupProb:      p.msg,
			MsgDelayProb:    p.msg * 5,
			MsgDelayMax:     200 * sim.Microsecond,
			DeviceErrProb:   p.dev,
			DeviceStallProb: p.dev / 2,
			DeviceStallDur:  200 * time.Microsecond,
		})
		r.net.SetFaults(inj)
		r.dev.SetFaults(inj)

		srv := r.reflexServer(2, deviceTokenRate(sim.Millisecond))
		lc := lcTenant(srv, 1, 50_000, 100, sim.Millisecond)
		be := beTenant(srv, 2)
		lcConn := srv.Connect(r.ixClient(11), lc)
		beConn := srv.Connect(r.ixClient(12), be)

		lcRes := r.pacedLoop(lcConn, 50_000, 100, 4096, warm, dur, 21)
		beRes := r.openLoop(beConn, 150_000, 100, 4096, warm, dur, 22)
		r.finish()

		st := r.dev.Stats()
		t.Add(p.name,
			fmt.Sprintf("%.3f", p.msg), fmt.Sprintf("%.3f", p.dev),
			inj.Injected(), st.Errors, st.Stalls,
			us(lcRes.ReadLat.Quantile(0.95)), k(lcRes.IOPS()), k(beRes.IOPS()))
	}
	return t
}
