package experiments

import (
	"fmt"
	"sort"
)

// Runner produces one experiment table at the given scale.
type Runner func(scale Scale) *Table

// Registry maps experiment IDs to their drivers. cmd/reflex-bench and the
// root benchmark suite both dispatch through it.
func Registry() map[string]Runner {
	return map[string]Runner{
		"fig1":  Fig1,
		"fig3a": func(s Scale) *Table { return Fig3("deviceA", s) },
		"fig3b": func(s Scale) *Table { return Fig3("deviceB", s) },
		"fig3c": func(s Scale) *Table { return Fig3("deviceC", s) },
		"tab2":  Table2,
		"fig4":  Fig4,
		"fig5":  Fig5,
		"fig6a": func(s Scale) *Table { return Fig6a(s, 12) },
		"fig6a-series": func(s Scale) *Table {
			return SeriesTable("fig6a-series",
				"Fig. 6a time series: per-tenant p95 vs SLO, IOPS, token usage, queues",
				Fig6aSeries(s, 2))
		},
		"fig6b": func(s Scale) *Table { return Fig6b(s, nil) },
		"fig6c": Fig6c,
		"fig7a": Fig7a,
		"fig7b": Fig7b,
		"fig7c": Fig7c,

		"ext-rightsizing": ExtRightsizing,
		"ext-100gbe":      ExtProjection,
		"ext-faults":      ExtFaults,
		"ext-failover":    ExtFailover,
		"ext-sharding":    ExtSharding,
		"ext-ctrlplane":   ExtCtrlplane,
		"ext-cache":       ExtCache,
		"ext-volume":      ExtVolume,

		"ablation-batching":  AblationBatching,
		"ablation-twostep":   AblationTwoStep,
		"ablation-costmodel": AblationCostModel,
		"ablation-neglimit":  AblationNegLimit,
		"ablation-fraction":  AblationFraction,
	}
}

// IDs returns all experiment IDs in sorted order.
func IDs() []string {
	reg := Registry()
	out := make([]string, 0, len(reg))
	for id := range reg {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Run executes one experiment by ID.
func Run(id string, scale Scale) (*Table, error) {
	fn, ok := Registry()[id]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown id %q (known: %v)", id, IDs())
	}
	return fn(scale), nil
}
