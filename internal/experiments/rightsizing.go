package experiments

import (
	"fmt"

	"github.com/reflex-go/reflex/internal/core"
	"github.com/reflex-go/reflex/internal/ctrl"
	"github.com/reflex-go/reflex/internal/sim"
	"github.com/reflex-go/reflex/internal/workload"
)

// ExtRightsizing demonstrates the §4.3 local control plane dynamically
// rightsizing the dataplane: offered load ramps up and back down over
// three phases while a control loop samples per-thread utilization every
// few milliseconds, feeds it to ctrl.ThreadScaler, and repacks tenants
// onto the recommended number of active threads. Idle threads would be
// returned to Linux in the real system; here they simply go quiet.
func ExtRightsizing(scale Scale) *Table {
	t := &Table{
		ID:    "ext-rightsizing",
		Title: "Dynamic thread rightsizing under a load ramp (8 threads available)",
		Columns: []string{
			"phase", "offered_IOPS", "achieved_IOPS", "threads_at_end", "p95_us",
		},
		Notes: "control loop: 2ms utilization samples -> ThreadScaler -> Repack",
	}
	const (
		maxThreads = 8
		tenants    = 8
	)
	phaseDur := scale.dur(120 * sim.Millisecond)

	r := newRig(8500)
	srv := r.reflexServer(maxThreads, 1_500_000*core.TokenUnit)
	scaler := ctrl.NewThreadScaler(1, maxThreads)

	var tens []*core.Tenant
	var conns []workload.Target
	for i := 0; i < tenants; i++ {
		tn, err := core.NewTenant(i+1, fmt.Sprintf("t%d", i), core.BestEffort, core.SLO{})
		if err != nil {
			panic(err)
		}
		// Everyone starts packed on thread 0 (the 1-thread configuration).
		srv.RegisterTenantOn(tn, 0)
		tens = append(tens, tn)
		conns = append(conns, srv.Connect(r.ixClient(int64(i)), tn))
	}

	// Control loop: windowed utilization over the active threads.
	active := 1
	prevBusy := srv.ThreadBusy()
	const tick = 2 * sim.Millisecond
	var control func()
	stop := 3 * phaseDur
	control = func() {
		if r.eng.Now() >= stop {
			return
		}
		busy := srv.ThreadBusy()
		var used sim.Time
		for i := 0; i < active; i++ {
			used += busy[i] - prevBusy[i]
		}
		prevBusy = busy
		util := float64(used) / float64(tick) / float64(active)
		if rec := scaler.Observe(util); rec != active {
			active = rec
			srv.Repack(active)
		}
		r.eng.After(tick, control)
	}
	r.eng.After(tick, control)

	// Three load phases per tenant: light, heavy, light.
	type phase struct {
		name    string
		perTen  float64
		startAt sim.Time
	}
	// The heavy phase needs two or three cores but stays under the device
	// and NIC ceilings, so no phase leaves a backlog behind.
	phases := []phase{
		{"light", 20_000, 0},
		{"heavy", 140_000, phaseDur},
		{"light-again", 20_000, 2 * phaseDur},
	}
	results := make([][]*workload.Result, len(phases))
	threadsAtEnd := make([]int, len(phases))
	for pi, ph := range phases {
		pi, ph := pi, ph
		r.eng.At(ph.startAt, func() {
			for ci, conn := range conns {
				results[pi] = append(results[pi], workload.OpenLoop{
					IOPS:     ph.perTen,
					Mix:      workload.Mix{ReadPercent: 100, Size: 512, Blocks: 1 << 22},
					Duration: phaseDur,
					Seed:     int64(pi*100 + ci),
				}.Start(r.eng, conn))
			}
		})
		r.eng.At(ph.startAt+phaseDur-sim.Millisecond, func() {
			threadsAtEnd[pi] = active
		})
	}
	r.stopAt = stop
	r.finish()

	for pi, ph := range phases {
		var iops float64
		lat := results[pi][0].ReadLat
		for i, res := range results[pi] {
			iops += res.IOPS()
			if i > 0 {
				lat.Merge(res.ReadLat)
			}
		}
		t.Add(ph.name, k(ph.perTen*float64(tenants)), k(iops),
			threadsAtEnd[pi], us(lat.Quantile(0.95)))
	}
	return t
}
