package experiments

import (
	"fmt"

	"github.com/reflex-go/reflex/internal/core"
	"github.com/reflex-go/reflex/internal/dataplane"
	"github.com/reflex-go/reflex/internal/flashsim"
	"github.com/reflex-go/reflex/internal/netsim"
	"github.com/reflex-go/reflex/internal/sim"
	"github.com/reflex-go/reflex/internal/workload"
)

// ExtProjection reproduces the §5.3 projection: "using 4 Flash devices,
// ReFlex will need 8% of the server's compute capacity to saturate a
// 100GbE link with 4KB I/Os." Four devices, each behind its own ReFlex
// server instance, share one 100GbE NIC; a handful of dataplane cores
// carries the whole link.
func ExtProjection(scale Scale) *Table {
	t := &Table{
		ID:    "ext-100gbe",
		Title: "Projection: 4 devices on one 100GbE link (4KB reads)",
		Columns: []string{
			"devices", "cores_total", "offered_IOPS", "achieved_IOPS",
			"GBps", "nic_tx_util", "mean_core_util",
		},
		Notes: "§5.3: a few cores saturate 100GbE; the NIC, not CPU or flash, is the limit",
	}
	warm := scale.dur(20 * sim.Millisecond)
	dur := scale.dur(120 * sim.Millisecond)

	for _, devices := range []int{1, 2, 4} {
		coresPerDev := 1
		eng := sim.NewEngine()
		net := netsim.New(eng, netsim.HundredGbE())
		shared := net.NewEndpoint("reflex-4dev", netsim.NullStack(), 9100)

		var servers []*dataplane.Server
		for d := 0; d < devices; d++ {
			dev := flashsim.New(eng, flashsim.DeviceA(), int64(9000+d))
			srv := dataplane.NewServerOn(eng, net, shared, dev,
				dataplane.DefaultConfig(coresPerDev, 1_200_000*core.TokenUnit))
			servers = append(servers, srv)
		}

		// Each device gets enough offered load to saturate its server
		// core (~850K 4KB reads/s per core).
		perDevOffered := 900_000.0
		var results []*workload.Result
		for d, srv := range servers {
			tn, err := core.NewTenant(d+1, fmt.Sprintf("dev%d", d), core.BestEffort, core.SLO{})
			if err != nil {
				panic(err)
			}
			srv.RegisterTenant(tn)
			for c := 0; c < 4; c++ {
				client := net.NewEndpoint("client", netsim.IXClientStack(), int64(d*10+c))
				conn := srv.Connect(client, tn)
				results = append(results, workload.OpenLoop{
					IOPS:     perDevOffered / 4,
					Mix:      workload.Mix{ReadPercent: 100, Size: 4096, Blocks: 1 << 24},
					Warmup:   warm,
					Duration: dur,
					Seed:     int64(d*100 + c),
				}.Start(eng, conn))
			}
		}
		eng.RunUntil(warm + dur + 5*sim.Millisecond)

		var achieved float64
		for _, res := range results {
			achieved += res.IOPS()
		}
		var coreUtil float64
		for _, srv := range servers {
			coreUtil += srv.CoreUtilization()
		}
		coreUtil /= float64(len(servers))
		t.Add(devices, devices*coresPerDev,
			k(perDevOffered*float64(devices)), k(achieved),
			fmt.Sprintf("%.1f", achieved*4096/1e9),
			fmt.Sprintf("%.2f", shared.Port().TxUtilization()),
			fmt.Sprintf("%.2f", coreUtil))
	}
	return t
}
