package experiments

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"github.com/reflex-go/reflex/internal/client"
	"github.com/reflex-go/reflex/internal/core"
	"github.com/reflex-go/reflex/internal/protocol"
	"github.com/reflex-go/reflex/internal/server"
	"github.com/reflex-go/reflex/internal/shard"
	"github.com/reflex-go/reflex/internal/sim"
	"github.com/reflex-go/reflex/internal/storage"
)

// ExtSharding is the scale-out extension experiment (DESIGN.md §13): N
// independent ReFlex nodes under one consistent-hash shard map, driven
// through the client-side Router. Like ext-failover it runs the real TCP
// stack wall-clock, because the subjects — shard-map routing, the
// StatusWrongShard redirect path, and live migration — live there.
//
// Each node's token rate is capped at a fixed per-node budget standing in
// for calibrated device capacity (the paper's bottleneck resource; §3.2.2),
// so the table isolates placement scaling from host-CPU contention: if the
// shard map spreads load evenly, aggregate read throughput scales with the
// node count. One row per cluster size; the 4-node row additionally forces
// a live shard migration mid-window and reports the StatusWrongShard
// redirect fraction the move induced — the steady-state redirect rate the
// routing table's fetch-on-miss refresh must keep under 1%.
type shardPhase struct {
	nodes      int
	ops        uint64
	errs       uint64
	iops       float64
	redirects  uint64
	refreshes  uint64
	moves      int
	mapVersion uint32
	err        error
}

// shardNodeIOPS is the per-node read budget (token-capped): the stand-in
// for one device's calibrated rate, deliberately far below what loopback
// TCP can carry — even the 4-node aggregate must sit under the host's
// syscall throughput wall — so the cluster-size rows differ only in
// aggregate budget.
const shardNodeIOPS = 2000

// ExtSharding runs 1-, 2-, and 4-node phases and tabulates them.
func ExtSharding(scale Scale) *Table {
	t := &Table{
		ID:    "ext-sharding",
		Title: "Sharded cluster scale-out: aggregate read throughput vs node count, redirects across a live shard move",
		Columns: []string{
			"nodes", "ops", "read_iops", "speedup",
			"moves", "redirects", "redirect_pct", "map_version",
		},
		Notes: fmt.Sprintf("per-node budget %dK reads/s (token-capped device stand-in); 4-node row includes one live shard migration (read_iops is steady-state, the move window excluded; redirect_pct covers the whole run); speedup is vs the 1-node row; acceptance: 4-node >= 3.5x, redirect_pct < 1%%", shardNodeIOPS/1000),
	}
	dur := time.Duration(scale.dur(2 * sim.Second))

	var base float64
	for _, n := range []int{1, 2, 4} {
		p := runShardingPhase(n, dur, n == 4)
		if p.err != nil {
			t.Add(n, 0, "0", "0.00", 0, 0, "0.000", 0)
			continue
		}
		if n == 1 {
			base = p.iops
		}
		speedup := 0.0
		if base > 0 {
			speedup = p.iops / base
		}
		pct := 0.0
		if p.ops > 0 {
			pct = 100 * float64(p.redirects) / float64(p.ops)
		}
		t.Add(p.nodes, p.ops, k(p.iops), fmt.Sprintf("%.2f", speedup),
			p.moves, p.redirects, fmt.Sprintf("%.3f", pct), p.mapVersion)
	}
	return t
}

// runShardingPhase stands up n token-capped solo nodes behind a
// coordinator, sprays uniform single-block reads through one shared Router
// from 4 QD1 workers per node, and (optionally) forces one live shard
// migration halfway through the window.
func runShardingPhase(n int, dur time.Duration, withMove bool) shardPhase {
	const (
		numShards   = 16
		shardBlocks = 1024
	)
	ph := shardPhase{nodes: n}

	srvs := make([]*server.Server, 0, n)
	defer func() {
		for _, s := range srvs {
			s.Close()
		}
	}()
	nodes := make([]shard.Node, n)
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("node%d", i)
		srv, err := server.New(server.Config{
			Addr:     "127.0.0.1:0",
			Threads:  1,
			NodeName: name,
			Model: core.CostModel{
				ReadCost:         core.TokenUnit,
				ReadOnlyReadCost: core.TokenUnit / 2,
				WriteCost:        10 * core.TokenUnit,
			},
			TokenRate: shardNodeIOPS * core.TokenUnit,
		}, storage.NewMem(numShards*shardBlocks*protocol.BlockSize))
		if err != nil {
			ph.err = err
			return ph
		}
		srvs = append(srvs, srv)
		nodes[i] = shard.Node{Name: name, Addrs: []string{srv.Addr()}}
	}

	coord, err := shard.NewCoordinator(shard.CoordinatorConfig{
		Nodes:          nodes,
		NumShards:      numShards,
		ShardBlocks:    shardBlocks,
		InstallTimeout: 2 * time.Second,
	})
	if err != nil {
		ph.err = err
		return ph
	}
	defer coord.Stop()
	if err := coord.InstallAll(); err != nil {
		ph.err = err
		return ph
	}

	var seeds []string
	for _, nd := range nodes {
		seeds = append(seeds, nd.Addrs...)
	}
	router, err := shard.NewRouter(shard.RouterConfig{
		Seeds: seeds,
		Reg:   protocol.Registration{BestEffort: true, Writable: true},
		Opts:  client.Options{Timeout: 2 * time.Second},
	})
	if err != nil {
		ph.err = err
		return ph
	}
	defer router.Close()

	// Workers: two QD1 readers pinned to every shard (uniform demand over
	// shards — the shape a population of per-shard tenants offers). Pinning
	// matters: consistent hashing splits shards over nodes only to within
	// ~25% at this size, and free-roaming QD1 workers pile up at the
	// biggest-share node while smaller nodes' queues run dry and forfeit
	// tokens. Per-shard pinning keeps at least two requests queued at every
	// node that owns anything, so each node saturates its budget and the
	// table measures the aggregate capacity the shard map exposes.
	workers := 2 * numShards
	var (
		ops  atomic.Uint64
		errs atomic.Uint64
		wg   sync.WaitGroup
		stop = make(chan struct{})
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)*7919 + 1))
			myShard := w % numShards
			for {
				select {
				case <-stop:
					return
				default:
				}
				lba := uint32(myShard*shardBlocks + rng.Intn(shardBlocks))
				if _, err := router.Read(lba, protocol.BlockSize); err == nil {
					ops.Add(1)
				} else {
					errs.Add(1)
				}
			}
		}(w)
	}

	start := time.Now()
	var moveOps uint64
	var moveDur time.Duration
	if withMove && n > 1 {
		// Halfway through: re-home one shard, live, under full read load.
		// The workers' stale maps answer StatusWrongShard at the old owner
		// until the router's single-flight refresh converges.
		time.Sleep(dur / 2)
		m := coord.Map()
		src := int(m.Assign[0])
		dest := ""
		for i, nd := range m.Nodes {
			if i != src {
				dest = nd.Name
				break
			}
		}
		preOps, preT := ops.Load(), time.Now()
		if err := coord.MoveShard(0, dest, 10*time.Second); err != nil {
			ph.err = err
			close(stop)
			wg.Wait()
			return ph
		}
		// The move window (catch-up stream + dual-ownership cutover +
		// drain) steals source/dest capacity by design; read_iops is the
		// steady-state rate, so the window's ops and wall time are carved
		// out of the rate computation below.
		moveOps, moveDur = ops.Load()-preOps, time.Since(preT)
		ph.moves = 1
		time.Sleep(dur - time.Since(start))
	} else {
		time.Sleep(dur)
	}
	elapsed := time.Since(start)
	close(stop)
	wg.Wait()

	ph.ops = ops.Load()
	ph.errs = errs.Load()
	ph.iops = float64(ph.ops-moveOps) / (elapsed - moveDur).Seconds()
	ph.redirects = router.Redirects()
	ph.refreshes = router.Refreshes()
	ph.mapVersion = coord.Map().Version
	return ph
}
