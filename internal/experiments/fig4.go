package experiments

import (
	"github.com/reflex-go/reflex/internal/baseline"
	"github.com/reflex-go/reflex/internal/core"
	"github.com/reflex-go/reflex/internal/sim"
	"github.com/reflex-go/reflex/internal/workload"
)

// Fig4 reproduces Figure 4: p95 latency versus throughput for 1KB
// read-only requests — local SPDK, ReFlex, and the libaio server, each
// with 1 and 2 threads. Load is offered open-loop from several IX clients
// (mutilate-style).
func Fig4(scale Scale) *Table {
	t := &Table{
		ID:      "fig4",
		Title:   "Tail latency vs throughput, 1KB read-only requests",
		Columns: []string{"system", "offered_IOPS", "achieved_IOPS", "p95_us"},
		Notes:   "curves stop once p95 exceeds 1ms (the figure's y-range)",
	}
	warm := scale.dur(20 * sim.Millisecond)
	dur := scale.dur(150 * sim.Millisecond)

	type system struct {
		name    string
		threads int
		mk      func(r *rig, threads, clients int) []workload.Target
	}
	systems := []system{
		{"Local", 1, mkLocalTargets},
		{"Local", 2, mkLocalTargets},
		{"ReFlex", 1, mkReflexTargets},
		{"ReFlex", 2, mkReflexTargets},
		{"Libaio", 1, mkLibaioTargets},
		{"Libaio", 2, mkLibaioTargets},
	}
	for si, sys := range systems {
		name := sys.name + suffixT(sys.threads)
		// Sweep offered load geometrically per system.
		offered := 20_000.0
		if sys.name == "Libaio" {
			offered = 10_000.0
		}
		for step := 0; step < 14; step++ {
			r := newRig(2000 + int64(si*100+step))
			clients := 8
			targets := sys.mk(r, sys.threads, clients)
			var results []*workload.Result
			for ci, tgt := range targets {
				results = append(results, r.openLoop(tgt, offered/float64(len(targets)),
					100, 1024, warm, dur, int64(si*1000+step*10+ci)))
			}
			r.finish()
			var achieved float64
			lat := results[0].ReadLat
			for i, res := range results {
				achieved += res.IOPS()
				if i > 0 {
					lat.Merge(res.ReadLat)
				}
			}
			p95 := lat.Quantile(0.95)
			t.Add(name, k(offered), k(achieved), us(p95))
			if p95 > sim.Millisecond {
				break
			}
			offered *= 1.5
		}
	}
	return t
}

func suffixT(threads int) string {
	if threads == 1 {
		return "-1T"
	}
	return "-2T"
}

func mkLocalTargets(r *rig, threads, clients int) []workload.Target {
	node := baseline.NewLocalNode(r.eng, r.dev, threads)
	out := make([]workload.Target, clients)
	for i := range out {
		out[i] = node.Core(i % threads)
	}
	return out
}

func mkReflexTargets(r *rig, threads, clients int) []workload.Target {
	srv := r.reflexServer(threads, 1_200_000*core.TokenUnit)
	out := make([]workload.Target, clients)
	for i := range out {
		// One tenant per thread so both threads carry load.
		tn := beTenant(srv, i%threads+1)
		out[i] = srv.Connect(r.ixClient(int64(40+i)), tn)
	}
	return out
}

func mkLibaioTargets(r *rig, threads, clients int) []workload.Target {
	srv := r.libaioServer(threads)
	out := make([]workload.Target, clients)
	for i := range out {
		out[i] = srv.Connect(r.ixClient(int64(60 + i)))
	}
	return out
}
