package experiments

import (
	"strings"
	"testing"
)

// TestFig6aSeriesShape checks the time-series port of Fig. 6a: the series
// must carry per-tenant p95/SLO and token-usage columns, sample repeatedly
// over the run, and convert cleanly to CSV.
func TestFig6aSeriesShape(t *testing.T) {
	if testing.Short() {
		t.Skip("sim experiment")
	}
	s := Fig6aSeries(quick, 2)
	if s.Len() < 5 {
		t.Fatalf("expected at least 5 samples, got %d", s.Len())
	}
	for _, want := range []string{
		"lc0_p95_us", "lc0_slo_us", "lc0_iops",
		"lc1_p95_us", "lc1_slo_us", "lc1_iops",
		"be_iops", "ktokens_per_s", "bucket_ktokens",
		"queue_depth", "busy_channels", "erases_per_s",
	} {
		if _, ok := s.Column(want); !ok {
			t.Errorf("missing column %q (have %v)", want, s.Columns())
		}
	}

	// The SLO column is the constant target in microseconds.
	slo, _ := s.Column("lc0_slo_us")
	for _, v := range slo {
		if v != 2000 {
			t.Fatalf("lc0_slo_us = %v, want constant 2000", v)
		}
	}

	// Once traffic starts, the windowed p95 and the token usage rate must
	// both go positive — these are the SLO-compliance signals.
	p95, _ := s.Column("lc0_p95_us")
	tokens, _ := s.Column("ktokens_per_s")
	var sawP95, sawTokens bool
	for i := range p95 {
		if p95[i] > 0 {
			sawP95 = true
		}
		if tokens[i] > 0 {
			sawTokens = true
		}
	}
	if !sawP95 {
		t.Error("lc0_p95_us never went positive")
	}
	if !sawTokens {
		t.Error("ktokens_per_s never went positive")
	}

	// Table conversion and CSV round-trip.
	tbl := SeriesTable("fig6a-series", "test", s)
	var b strings.Builder
	if err := tbl.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	if len(lines) != s.Len()+1 {
		t.Fatalf("CSV has %d lines, want %d (header + samples)", len(lines), s.Len()+1)
	}
	if !strings.HasPrefix(lines[0], "time_us,lc0_p95_us,lc0_slo_us") {
		t.Fatalf("unexpected CSV header %q", lines[0])
	}
}
