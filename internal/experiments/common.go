package experiments

import (
	"fmt"

	"github.com/reflex-go/reflex/internal/baseline"
	"github.com/reflex-go/reflex/internal/core"
	"github.com/reflex-go/reflex/internal/dataplane"
	"github.com/reflex-go/reflex/internal/flashsim"
	"github.com/reflex-go/reflex/internal/netsim"
	"github.com/reflex-go/reflex/internal/sim"
	"github.com/reflex-go/reflex/internal/workload"
)

// Scale shrinks measurement windows for quick runs. 1.0 is the full
// experiment; tests use smaller values.
type Scale float64

func (s Scale) dur(d sim.Time) sim.Time {
	if s <= 0 {
		s = 1
	}
	out := sim.Time(float64(d) * float64(s))
	if out < 10*sim.Millisecond {
		out = 10 * sim.Millisecond
	}
	return out
}

// us formats nanoseconds as microseconds.
func us(t int64) string { return fmt.Sprintf("%d", t/1000) }

// k formats a float as thousands.
func k(v float64) string { return fmt.Sprintf("%.0fK", v/1000) }

// rig is a simulated cluster: engine, network, device A, and optionally a
// ReFlex server.
type rig struct {
	eng *sim.Engine
	net *netsim.Network
	dev *flashsim.Device
	// stopAt is the latest workload window end started on this rig; see
	// finish.
	stopAt sim.Time
}

// finish runs the simulation to just past the last measurement window. It
// deliberately does not drain every pending event: a starved best-effort
// queue (zero fair rate, nothing donating) re-arms scheduler ticks forever
// — exactly as a real polling dataplane would spin — so experiments bound
// their horizon instead.
func (r *rig) finish() {
	if r.stopAt == 0 {
		r.eng.Run()
		return
	}
	r.eng.RunUntil(r.stopAt + 5*sim.Millisecond)
}

func newRig(seed int64) *rig {
	eng := sim.NewEngine()
	return &rig{
		eng: eng,
		net: netsim.New(eng, netsim.TenGbE()),
		dev: flashsim.New(eng, flashsim.DeviceA(), seed),
	}
}

func newRigOn(spec flashsim.Spec, seed int64) *rig {
	eng := sim.NewEngine()
	return &rig{
		eng: eng,
		net: netsim.New(eng, netsim.TenGbE()),
		dev: flashsim.New(eng, spec, seed),
	}
}

// reflexServer builds a ReFlex dataplane server on the rig.
func (r *rig) reflexServer(threads int, tokenRate core.Tokens) *dataplane.Server {
	return dataplane.NewServer(r.eng, r.net, r.dev, dataplane.DefaultConfig(threads, tokenRate))
}

// beTenant registers a fresh best-effort tenant.
func beTenant(srv *dataplane.Server, id int) *core.Tenant {
	t, err := core.NewTenant(id, fmt.Sprintf("be%d", id), core.BestEffort, core.SLO{})
	if err != nil {
		panic(err)
	}
	srv.RegisterTenant(t)
	return t
}

// lcTenant registers a latency-critical tenant.
func lcTenant(srv *dataplane.Server, id, iops, readPct int, p95 sim.Time) *core.Tenant {
	t, err := core.NewTenant(id, fmt.Sprintf("lc%d", id), core.LatencyCritical,
		core.SLO{IOPS: iops, ReadPercent: readPct, LatencyP95: p95})
	if err != nil {
		panic(err)
	}
	srv.RegisterTenant(t)
	return t
}

// ixClient creates an IX-stack client endpoint.
func (r *rig) ixClient(seed int64) *netsim.Endpoint {
	return r.net.NewEndpoint("ix-client", netsim.IXClientStack(), seed)
}

// linuxClient creates a Linux-stack client endpoint.
func (r *rig) linuxClient(seed int64) *netsim.Endpoint {
	return r.net.NewEndpoint("linux-client", netsim.LinuxClientStack(), seed)
}

// deviceTokenRate is the calibrated token rate of device A at the given
// p95 SLO. The constants mirror cmd/reflex-calibrate output on the
// simulated device (§3.2.2's 420K tokens/s at 500us, 570K at 2ms).
func deviceTokenRate(p95 sim.Time) core.Tokens {
	switch {
	case p95 <= 500*sim.Microsecond:
		return 420_000 * core.TokenUnit
	case p95 <= sim.Millisecond:
		return 500_000 * core.TokenUnit
	default:
		return 570_000 * core.TokenUnit
	}
}

// openLoop runs a Poisson open-loop generator against a target on the rig.
func (r *rig) openLoop(tgt workload.Target, iops float64, readPct, size int, warm, dur sim.Time, seed int64) *workload.Result {
	return r.openLoopOpt(tgt, iops, readPct, size, warm, dur, seed, false)
}

// pacedLoop runs a uniformly paced, evenly mixed open-loop generator
// (mutilate's fixed-rate mode with a fixed op pattern), used for LC
// tenants driven at their SLO rate.
func (r *rig) pacedLoop(tgt workload.Target, iops float64, readPct, size int, warm, dur sim.Time, seed int64) *workload.Result {
	return r.openLoopOpt(tgt, iops, readPct, size, warm, dur, seed, true)
}

func (r *rig) openLoopOpt(tgt workload.Target, iops float64, readPct, size int, warm, dur sim.Time, seed int64, paced bool) *workload.Result {
	if end := r.eng.Now() + warm + dur; end > r.stopAt {
		r.stopAt = end
	}
	return workload.OpenLoop{
		IOPS:     iops,
		Mix:      workload.Mix{ReadPercent: readPct, Size: size, Blocks: 1 << 24},
		Uniform:  paced,
		EvenMix:  paced,
		Warmup:   warm,
		Duration: dur,
		Seed:     seed,
	}.Start(r.eng, tgt)
}

// zipfLoop runs an open-loop generator whose block addresses cover a
// bounded working set, Zipf-skewed when skew > 1 (the hot-spot pattern
// the DRAM read cache exploits) and uniform otherwise. paced selects the
// fixed-rate LC pacing of pacedLoop.
func (r *rig) zipfLoop(tgt workload.Target, iops float64, readPct, size int,
	blocks uint64, skew float64, warm, dur sim.Time, seed int64, paced bool) *workload.Result {
	if end := r.eng.Now() + warm + dur; end > r.stopAt {
		r.stopAt = end
	}
	return workload.OpenLoop{
		IOPS:     iops,
		Mix:      workload.Mix{ReadPercent: readPct, Size: size, Blocks: blocks, ZipfSkew: skew},
		Uniform:  paced,
		EvenMix:  paced,
		Warmup:   warm,
		Duration: dur,
		Seed:     seed,
	}.Start(r.eng, tgt)
}

// offsetTarget shifts a target's block addresses by base, letting two
// generators with independent [0, Blocks) ranges occupy disjoint regions
// of one device (hot/cold lifetime separation in ext-cache part 2).
func offsetTarget(tgt workload.Target, base uint64) workload.Target {
	return workload.TargetFunc(func(op core.OpType, block uint64, size int, done func(lat sim.Time)) {
		tgt.Issue(op, block+base, size, done)
	})
}

// qd1 runs a queue-depth-1 closed loop against a target.
func (r *rig) qd1(tgt workload.Target, readPct, size int, dur sim.Time, seed int64) *workload.Result {
	if end := r.eng.Now() + dur; end > r.stopAt {
		r.stopAt = end
	}
	return workload.ClosedLoop{
		Depth:    1,
		Mix:      workload.Mix{ReadPercent: readPct, Size: size, Blocks: 1 << 24},
		Duration: dur,
		Seed:     seed,
	}.Start(r.eng, tgt)
}

// libaioServer builds the libaio baseline on the rig.
func (r *rig) libaioServer(threads int) *baseline.Server {
	return baseline.NewServer(r.eng, r.net, r.dev, baseline.LibaioProfile(threads))
}

// iscsiServer builds the iSCSI baseline on the rig.
func (r *rig) iscsiServer(threads int) *baseline.Server {
	return baseline.NewServer(r.eng, r.net, r.dev, baseline.ISCSIProfile(threads))
}
