package experiments

import (
	"fmt"

	"github.com/reflex-go/reflex/internal/core"
	"github.com/reflex-go/reflex/internal/obs"
	"github.com/reflex-go/reflex/internal/sim"
)

// seriesPeriod is the sampling interval for time-series experiments: fine
// enough to resolve SLO excursions, coarse enough that windowed quantiles
// see a few hundred samples per tick at the paper's rates.
const seriesPeriod = 2 * sim.Millisecond

// Fig6aSeries ports the Figure 6a workload into a time-series run on one
// server: per-core LC tenants driven at their SLO rate plus two
// best-effort tenants soaking spare bandwidth. Instead of one summary row
// per core count, it samples the live system every few milliseconds and
// reports, per tick:
//
//   - per-LC-tenant windowed read p95 (interval, not cumulative) next to
//     the tenant's SLO target, so compliance is visible over time
//   - per-tenant achieved IOPS and the aggregate BE IOPS
//   - the token usage rate and the global spare-token bucket level
//   - scheduler queue depth, busy flash channels and the GC erase rate
//
// The columns are the raw material for an SLO-compliance plot; see
// SeriesTable and cmd/reflex-bench's -csv-dir for CSV output.
func Fig6aSeries(scale Scale, cores int) *obs.Series {
	if cores <= 0 {
		cores = 2
	}
	warm := scale.dur(30 * sim.Millisecond)
	dur := scale.dur(200 * sim.Millisecond)

	r := newRig(4300 + int64(cores))
	srv := r.reflexServer(cores, deviceTokenRate(2*sim.Millisecond))
	clock := func() int64 { return int64(r.eng.Now()) }

	series := obs.NewSeries("fig6a-series")

	const sloP95 = 2 * sim.Millisecond
	for i := 0; i < cores; i++ {
		tn, err := core.NewTenant(i+1, fmt.Sprintf("lc%d", i), core.LatencyCritical,
			core.SLO{IOPS: 20_000, ReadPercent: 90, LatencyP95: sloP95})
		if err != nil {
			panic(err)
		}
		srv.RegisterTenantOn(tn, i)
		conn := srv.Connect(r.ixClient(int64(i)), tn)
		res := r.pacedLoop(conn, 19_600, 90, 4096, warm, dur, int64(cores*100+i))
		series.AddColumn(fmt.Sprintf("lc%d_p95_us", i), obs.WindowedQuantile(res.ReadLat, 0.95))
		series.AddColumn(fmt.Sprintf("lc%d_slo_us", i), func() float64 {
			return float64(sloP95) / 1000
		})
		series.AddColumn(fmt.Sprintf("lc%d_iops", i), obs.WindowedRate(func() float64 {
			return float64(res.Completed)
		}, clock))
	}

	var beCompleted []func() float64
	for i := 0; i < 2; i++ {
		tn, err := core.NewTenant(100+i, fmt.Sprintf("be%d", i), core.BestEffort, core.SLO{})
		if err != nil {
			panic(err)
		}
		srv.RegisterTenantOn(tn, i%cores)
		conn := srv.Connect(r.ixClient(int64(50+i)), tn)
		res := r.openLoop(conn, 300_000, 80, 4096, warm, dur, int64(cores*100+50+i))
		beCompleted = append(beCompleted, func() float64 { return float64(res.Completed) })
	}
	series.AddColumn("be_iops", obs.WindowedRate(func() float64 {
		var total float64
		for _, fn := range beCompleted {
			total += fn()
		}
		return total
	}, clock))

	series.AddColumn("ktokens_per_s", obs.WindowedRate(func() float64 {
		return float64(srv.SubmittedTokens()) / float64(core.TokenUnit) / 1000
	}, clock))
	series.AddColumn("bucket_ktokens", func() float64 {
		return float64(srv.Shared().Bucket.Tokens()) / float64(core.TokenUnit) / 1000
	})
	series.AddColumn("queue_depth", func() float64 { return float64(srv.Pending()) })
	series.AddColumn("busy_channels", func() float64 {
		return float64(srv.Device().BusyChannels())
	})
	series.AddColumn("erases_per_s", obs.WindowedRate(func() float64 {
		return float64(srv.Device().Stats().Erases)
	}, clock))

	obs.SampleSim(r.eng, series, seriesPeriod, r.stopAt)
	r.finish()
	return series
}

// SeriesTable converts a sampled series into the Table shape the bench
// driver prints and writes as CSV: a time_us column followed by every
// series column, one row per tick.
func SeriesTable(id, title string, s *obs.Series) *Table {
	t := &Table{
		ID:      id,
		Title:   title,
		Columns: append([]string{"time_us"}, s.Columns()...),
	}
	times, rows := s.Rows()
	for i, row := range rows {
		cells := make([]any, 0, len(row)+1)
		cells = append(cells, times[i]/1000)
		for _, v := range row {
			if v == float64(int64(v)) {
				cells = append(cells, int64(v))
			} else {
				cells = append(cells, v)
			}
		}
		t.Add(cells...)
	}
	return t
}
