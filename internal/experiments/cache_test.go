package experiments

import (
	"testing"
)

// TestExtCacheShape runs ext-cache at test scale and checks structure
// plus the directional claims that survive short windows: the cache
// earns a real hit ratio on the Zipf mix, best-effort throughput does
// not get worse for it, and stream segregation does not increase write
// amplification. The strict quantitative gates (>=1.5x BE, >=50% hits,
// seg WA strictly below mixed) run at full scale in cmd/reflex-bench.
func TestExtCacheShape(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment smoke tests are not short")
	}
	res, tbl := CacheBench(quick)
	if tbl.ID != "ext-cache" {
		t.Fatalf("table ID = %q", tbl.ID)
	}
	// 3 tenants x 2 cache configs + 2 placement configs.
	if got, want := len(tbl.Rows), 3*2+2; got != want {
		t.Fatalf("rows = %d, want %d:\n%s", got, want, tbl.Format())
	}
	for _, row := range tbl.Rows {
		if len(row) != len(tbl.Columns) {
			t.Fatalf("row width %d != %d columns", len(row), len(tbl.Columns))
		}
	}
	if res.BEIOPSOff <= 0 || res.BEIOPSOn <= 0 {
		t.Fatalf("best-effort tenants completed no work: %+v", res)
	}
	if res.HitRatio < 0.3 {
		t.Errorf("hit ratio %.2f: Zipf(%.1f) working set should hit far more", res.HitRatio, cacheZipfSkew)
	}
	if sp := res.BESpeedup(); sp < 1.0 {
		t.Errorf("cache made best-effort slower: %.2fx (off %.0f, on %.0f)",
			sp, res.BEIOPSOff, res.BEIOPSOn)
	}
	if res.WriteAmpMixed < 1 || res.WriteAmpSegregated < 1 {
		t.Errorf("write amp below 1 is impossible: mixed %.3f seg %.3f",
			res.WriteAmpMixed, res.WriteAmpSegregated)
	}
	if res.WriteAmpSegregated > res.WriteAmpMixed {
		t.Errorf("segregated WA %.3f > mixed %.3f", res.WriteAmpSegregated, res.WriteAmpMixed)
	}
}
