package experiments

import (
	"testing"
	"time"
)

// TestExtVolumeShape runs ext-volume at test scale and checks structure
// plus the correctness gates that must hold at any window length: the
// diff-restored image is crash-consistent (no torn records, nothing
// outside the write-ledger bracket), no acked write is lost from the
// live volume, and the snapshot phase actually ran the snapshot. The
// quantitative tail gate (snapshot-phase LC p95 <= 2x baseline) runs at
// full scale in cmd/reflex-bench; short noisy windows only get a sanity
// ceiling here.
func TestExtVolumeShape(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment smoke tests are not short")
	}
	res, tbl := VolumeBench(quick)
	if tbl.ID != "ext-volume" {
		t.Fatalf("table ID = %q", tbl.ID)
	}
	if got, want := len(tbl.Rows), 2; got != want {
		t.Fatalf("rows = %d, want %d:\n%s", got, want, tbl.Format())
	}
	for _, row := range tbl.Rows {
		if len(row) != len(tbl.Columns) {
			t.Fatalf("row width %d != %d columns", len(row), len(tbl.Columns))
		}
	}
	if res.LCReadP95Base <= 0 || res.LCReadP95Snap <= 0 {
		t.Fatalf("LC reader completed no work: %+v", res)
	}
	if res.RestoredGen == 0 {
		t.Fatalf("snapshot phase never snapshotted: %+v", res)
	}
	if res.SnapshotLat <= 0 || res.SnapshotLat > time.Second {
		t.Errorf("snapshot latency %v implausible for an instant CoW snapshot", res.SnapshotLat)
	}
	if res.TornBlocks != 0 {
		t.Errorf("restored image holds %d torn records", res.TornBlocks)
	}
	if res.StaleSlots != 0 {
		t.Errorf("restored image holds %d records outside the ledger bracket", res.StaleSlots)
	}
	if res.LostAcked != 0 {
		t.Errorf("%d acked writes lost from the live volume", res.LostAcked)
	}
	if res.RestoredMiB <= 0 {
		t.Errorf("diff restore shipped no data: %+v", res)
	}
}
