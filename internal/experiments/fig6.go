package experiments

import (
	"fmt"

	"github.com/reflex-go/reflex/internal/core"
	"github.com/reflex-go/reflex/internal/sim"
	"github.com/reflex-go/reflex/internal/workload"
)

// Fig6a reproduces Figure 6a: multi-core scaling. Each added core brings
// one LC tenant (20K IOPS, 90% read, 2ms p95 SLO); two BE tenants (80%
// read) soak spare bandwidth throughout. Reported: aggregate LC IOPS,
// aggregate BE IOPS, and the total token usage rate.
func Fig6a(scale Scale, maxCores int) *Table {
	t := &Table{
		ID:    "fig6a",
		Title: "Multi-core scaling: LC/BE IOPS and token usage vs cores",
		Columns: []string{
			"cores", "LC_tenants", "LC_IOPS", "BE_IOPS", "ktokens_per_s", "LC_p95_us",
		},
		Notes: "LC: 20K IOPS @90%r, 2ms SLO per core; 2 BE tenants @80%r; rate 570K tokens/s",
	}
	if maxCores <= 0 {
		maxCores = 12
	}
	warm := scale.dur(30 * sim.Millisecond)
	dur := scale.dur(200 * sim.Millisecond)

	for cores := 1; cores <= maxCores; cores++ {
		lcTenants := cores // one LC tenant per core, as in the paper
		r := newRig(4000 + int64(cores))
		srv := r.reflexServer(cores, deviceTokenRate(2*sim.Millisecond))

		var lcResults, beResults []*workload.Result
		for i := 0; i < lcTenants; i++ {
			tn, err := core.NewTenant(i+1, fmt.Sprintf("lc%d", i), core.LatencyCritical,
				core.SLO{IOPS: 20_000, ReadPercent: 90, LatencyP95: 2 * sim.Millisecond})
			if err != nil {
				panic(err)
			}
			srv.RegisterTenantOn(tn, i)
			conn := srv.Connect(r.ixClient(int64(i)), tn)
			lcResults = append(lcResults, r.pacedLoop(conn, 19_600, 90, 4096,
				warm, dur, int64(cores*100+i)))
		}
		for i := 0; i < 2; i++ {
			tn, err := core.NewTenant(100+i, fmt.Sprintf("be%d", i), core.BestEffort, core.SLO{})
			if err != nil {
				panic(err)
			}
			srv.RegisterTenantOn(tn, i%cores)
			conn := srv.Connect(r.ixClient(int64(50+i)), tn)
			beResults = append(beResults, r.openLoop(conn, 300_000, 80, 4096,
				warm, dur, int64(cores*100+50+i)))
		}
		r.finish()

		var lcIOPS, beIOPS float64
		lcLat := lcResults[0].ReadLat
		for i, res := range lcResults {
			lcIOPS += res.IOPS()
			if i > 0 {
				lcLat.Merge(res.ReadLat)
			}
		}
		for _, res := range beResults {
			beIOPS += res.IOPS()
		}
		elapsed := float64(r.eng.Now()) / float64(sim.Second)
		tokens := float64(srv.SubmittedTokens()) / float64(core.TokenUnit) / elapsed
		t.Add(cores, lcTenants, k(lcIOPS), k(beIOPS),
			fmt.Sprintf("%.0f", tokens/1000), us(lcLat.Quantile(0.95)))
	}
	return t
}

// Fig6b reproduces Figure 6b: tenant scaling. Every tenant issues 100 1KB
// read IOPS over its own connection; servers with 1, 2 and 4 cores are
// swept over tenant counts until throughput saturates.
func Fig6b(scale Scale, tenantCounts []int) *Table {
	t := &Table{
		ID:      "fig6b",
		Title:   "Tenant scaling: total IOPS vs tenant count (100 1KB read IOPS each)",
		Columns: []string{"cores", "tenants", "offered_IOPS", "achieved_IOPS"},
		Notes:   "scheduling cost grows with tenant count; a core saturates near 2500 tenants",
	}
	if len(tenantCounts) == 0 {
		tenantCounts = []int{500, 1000, 2000, 2500, 3500, 5000, 7500, 10000}
	}
	warm := scale.dur(20 * sim.Millisecond)
	dur := scale.dur(100 * sim.Millisecond)

	for _, cores := range []int{1, 2, 4} {
		for _, tenants := range tenantCounts {
			if tenants > cores*3500 {
				continue // far past this configuration's saturation
			}
			r := newRig(5000 + int64(cores*100000+tenants))
			srv := r.reflexServer(cores, 1_200_000*core.TokenUnit)
			client := r.ixClient(3)
			var results []*workload.Result
			for i := 0; i < tenants; i++ {
				tn, err := core.NewTenant(i, "", core.LatencyCritical,
					core.SLO{IOPS: 100, ReadPercent: 100, LatencyP95: 10 * sim.Millisecond})
				if err != nil {
					panic(err)
				}
				srv.RegisterTenantOn(tn, i%cores)
				conn := srv.Connect(client, tn)
				results = append(results, r.openLoop(conn, 100, 100, 1024,
					warm, dur, int64(i)))
			}
			r.finish()
			var achieved float64
			for _, res := range results {
				achieved += res.IOPS()
			}
			t.Add(cores, tenants, k(float64(tenants)*100), k(achieved))
		}
	}
	return t
}

// Fig6c reproduces Figure 6c: connection scaling on one ReFlex thread. A
// single tenant spreads its load over a growing number of connections at
// 100, 500 or 1000 IOPS per connection; per-request CPU inflates as TCP
// state falls out of the LLC.
func Fig6c(scale Scale) *Table {
	t := &Table{
		ID:      "fig6c",
		Title:   "Connection scaling: total IOPS vs connections (1 thread, 1 tenant, 1KB reads)",
		Columns: []string{"iops_per_conn", "conns", "offered_IOPS", "achieved_IOPS"},
	}
	warm := scale.dur(20 * sim.Millisecond)
	dur := scale.dur(100 * sim.Millisecond)

	sweep := map[int][]int{
		100:  {100, 500, 1000, 2500, 5000, 7500, 10000},
		500:  {100, 250, 500, 1000, 1600, 2200},
		1000: {50, 100, 250, 500, 850, 1100},
	}
	for _, perConn := range []int{100, 500, 1000} {
		for _, conns := range sweep[perConn] {
			r := newRig(6000 + int64(perConn*100000+conns))
			srv := r.reflexServer(1, 1_500_000*core.TokenUnit)
			tn := beTenant(srv, 1)
			client := r.ixClient(9)
			var results []*workload.Result
			for i := 0; i < conns; i++ {
				conn := srv.Connect(client, tn)
				results = append(results, r.openLoop(conn, float64(perConn), 100, 1024,
					warm, dur, int64(i)))
			}
			r.finish()
			var achieved float64
			for _, res := range results {
				achieved += res.IOPS()
			}
			t.Add(perConn, conns, k(float64(perConn*conns)), k(achieved))
		}
	}
	return t
}
