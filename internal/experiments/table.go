// Package experiments contains one driver per table and figure of the
// paper's evaluation (§5), plus ablations of the design choices called out
// in DESIGN.md. Each driver assembles the simulated cluster it needs,
// runs the workload, and returns a Table whose rows mirror what the paper
// plots or tabulates. EXPERIMENTS.md records paper-versus-measured values.
package experiments

import (
	"fmt"
	"io"
	"strings"
)

// Table is a printable experiment result.
type Table struct {
	ID      string
	Title   string
	Columns []string
	Rows    [][]string
	// Notes documents scaling or substitutions applied.
	Notes string
}

// Add appends a row, formatting each cell with %v.
func (t *Table) Add(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.1f", v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Format renders the table as aligned text.
func (t *Table) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	line(t.Columns)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range t.Rows {
		line(row)
	}
	if t.Notes != "" {
		fmt.Fprintf(&b, "note: %s\n", t.Notes)
	}
	return b.String()
}

// WriteCSV renders the table as a plain CSV file (header row then data
// rows). Cells are written as-is; the formatting applied by Add is already
// plot-friendly.
func (t *Table) WriteCSV(w io.Writer) error {
	var b strings.Builder
	b.WriteString(strings.Join(t.Columns, ","))
	b.WriteByte('\n')
	for _, row := range t.Rows {
		b.WriteString(strings.Join(row, ","))
		b.WriteByte('\n')
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// Cell looks up a cell by row predicate and column name (test helper and
// programmatic consumer API).
func (t *Table) Cell(col string, match func(row []string) bool) (string, bool) {
	ci := -1
	for i, c := range t.Columns {
		if c == col {
			ci = i
		}
	}
	if ci < 0 {
		return "", false
	}
	for _, row := range t.Rows {
		if match(row) && ci < len(row) {
			return row[ci], true
		}
	}
	return "", false
}
