package experiments

import (
	"fmt"

	"github.com/reflex-go/reflex/internal/flashsim"
	"github.com/reflex-go/reflex/internal/sim"
	"github.com/reflex-go/reflex/internal/workload"
)

// fig1Point measures p95 read latency at one local-device operating point.
func fig1Point(spec flashsim.Spec, readPct, size int, iops float64, dur sim.Time, seed int64) (p95 sim.Time, achieved float64) {
	eng := sim.NewEngine()
	dev := flashsim.New(eng, spec, seed)
	res := workload.OpenLoop{
		IOPS:     iops,
		Mix:      workload.Mix{ReadPercent: readPct, Size: size, Blocks: spec.Blocks},
		Warmup:   dur / 5,
		Duration: dur,
		Seed:     seed + 1,
	}.Start(eng, workload.DeviceTarget(eng, dev))
	eng.Run()
	return res.ReadLat.Quantile(0.95), res.IOPS()
}

// Fig1 reproduces Figure 1: p95 read latency versus total IOPS on local
// device A for six read/write ratios (4KB requests).
func Fig1(scale Scale) *Table {
	t := &Table{
		ID:      "fig1",
		Title:   "Impact of interference on Flash: p95 read latency vs total IOPS (device A, 4KB)",
		Columns: []string{"read%", "offered_IOPS", "achieved_IOPS", "p95_read_us"},
		Notes:   "curves end when p95 exceeds 2ms, as in the figure's y-range",
	}
	dur := scale.dur(200 * sim.Millisecond)
	for _, readPct := range []int{100, 99, 95, 90, 75, 50} {
		iops := 25_000.0
		for step := 0; step < 20; step++ {
			p95, achieved := fig1Point(flashsim.DeviceA(), readPct, 4096, iops, dur, 100+int64(step))
			t.Add(readPct, k(iops), k(achieved), us(p95))
			if p95 > 2*sim.Millisecond {
				break
			}
			iops *= 1.45
		}
	}
	return t
}

// Fig3 reproduces Figure 3: p95 read latency versus weighted IOPS
// (tokens/s) for one device, across mixes and request sizes. The weighting
// uses the device's cost model, which is what makes the curves collapse.
func Fig3(device string, scale Scale) *Table {
	spec, ok := flashsim.Profiles()[device]
	if !ok {
		panic(fmt.Sprintf("experiments: unknown device %q", device))
	}
	t := &Table{
		ID:    "fig3-" + device,
		Title: fmt.Sprintf("Request cost model: p95 read latency vs weighted IOPS (%s, write cost %d)", device, spec.WriteCost),
		Columns: []string{
			"workload", "offered_IOPS", "ktokens_per_s", "p95_read_us",
		},
		Notes: "tokens computed with the device's calibrated cost model",
	}
	dur := scale.dur(200 * sim.Millisecond)

	type mix struct {
		label   string
		readPct int
		size    int
	}
	mixes := []mix{
		{"100%rd (1KB)", 100, 1024},
		{"100%rd (32KB)", 100, 32 * 1024},
		{"100%rd (4KB)", 100, 4096},
		{"99%rd (4KB)", 99, 4096},
		{"95%rd (4KB)", 95, 4096},
		{"90%rd (4KB)", 90, 4096},
		{"75%rd (4KB)", 75, 4096},
		{"50%rd (4KB)", 50, 4096},
	}
	// Token weight per request for a mix, in tokens.
	weight := func(m mix) float64 {
		pages := float64((m.size + 4095) / 4096)
		readCost := 1.0
		if m.readPct == 100 && spec.ReadOnlyHalf {
			readCost = 0.5
		}
		r := float64(m.readPct) / 100
		return pages * (r*readCost + (1-r)*float64(spec.WriteCost))
	}

	for mi, m := range mixes {
		w := weight(m)
		iops := 20_000.0 / w * 4
		for step := 0; step < 18; step++ {
			p95, achieved := fig1Point(spec, m.readPct, m.size, iops, dur, 300+int64(mi*20+step))
			t.Add(m.label, k(iops), fmt.Sprintf("%.0f", achieved*w/1000), us(p95))
			if p95 > 2*sim.Millisecond {
				break
			}
			iops *= 1.5
		}
	}
	return t
}
