package experiments

import (
	"encoding/binary"
	"net"
	"time"

	"github.com/reflex-go/reflex/internal/ctrlplane"
)

// ExtCtrlplane measures control-plane unavailability across leader kills.
// Like ext-failover it runs wall-clock against the real stack: three
// ctrlplane replicas over loopback TCP, the current leader killed per
// trial, and the outage — kill to a successor holding a valid lease —
// tabulated against the design bound of one lease TTL (vote stickiness
// while the dead leader's lease drains) plus up to two election rounds
// (the randomized timeout is in [TTL, 2·TTL) per round, plus a vote RPC
// exchange). Two rounds, not one: the dead leader's final heartbeat can
// reach one survivor but not the other, so the staler survivor's first
// campaign may be legitimately refused by stickiness — the voter's
// refusal window outlives the candidate's election timeout by the
// heartbeat skew — and the election then completes on the next round.
//
// Each trial also restarts the killed replica on its old address; since
// control-plane state is in-memory, the rejoin exercises the catch-up
// path (append backfill or whole-state snapshot) and the rejoin_ms
// column bounds how long a restarted replica lags the quorum.
func ExtCtrlplane(scale Scale) *Table {
	const leaseTTL = 150 * time.Millisecond
	// Bound: lease drain + two max randomized election timeouts (the
	// first round may be refused by vote stickiness) + a vote round.
	bound := leaseTTL + 2*(2*leaseTTL) + leaseTTL/2

	t := &Table{
		ID:    "ext-ctrlplane",
		Title: "Replicated control plane: leader-kill outage vs lease+election bound",
		Columns: []string{
			"trial", "outage_ms", "bound_ms", "within_bound",
			"succ_term", "commit_idx", "rejoin_ms",
		},
		Notes: "outage = kill -> successor lease; bound = lease TTL + two election rounds " +
			"(stickiness may refuse the first) + vote RPC; " +
			"killed replica restarts empty and catches up from the successor's log",
	}
	trials := int(3 * float64(scale))
	if trials < 1 {
		trials = 1
	}

	lns := make([]net.Listener, 3)
	addrs := make([]string, 3)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Notes = "listen failed: " + err.Error()
			return t
		}
		addrs[i] = ln.Addr().String()
		lns[i] = ln
	}
	live := make(map[string]*ctrlplane.Node, 3)
	start := func(self string, ln net.Listener) error {
		nd, err := ctrlplane.NewNode(ctrlplane.Config{
			Self:     self,
			Peers:    addrs,
			LeaseTTL: leaseTTL,
			Listener: ln,
		})
		if err != nil {
			return err
		}
		if err := nd.Start(); err != nil {
			return err
		}
		live[self] = nd
		return nil
	}
	for i := range addrs {
		if err := start(addrs[i], lns[i]); err != nil {
			t.Notes = "start failed: " + err.Error()
			return t
		}
	}
	defer func() {
		for _, nd := range live {
			nd.Stop()
		}
	}()

	// waitLease returns the address of a replica holding a valid lease,
	// excluding `not` (the just-killed leader), or "" on timeout.
	waitLease := func(not string, timeout time.Duration) string {
		deadline := time.Now().Add(timeout)
		for time.Now().Before(deadline) {
			for addr, nd := range live {
				if addr == not {
					continue
				}
				if st := nd.Status(); st.Role == ctrlplane.Leader && st.LeaseValid {
					return addr
				}
			}
			time.Sleep(2 * time.Millisecond)
		}
		return ""
	}

	version := uint32(0)
	for trial := 0; trial < trials; trial++ {
		leader := waitLease("", 10*time.Second)
		if leader == "" {
			t.Add(trial, "-", ms(bound), false, 0, 0, "no leader elected")
			return t
		}
		// Prove the commit pipeline live before the kill: a state entry
		// must replicate to a quorum and apply.
		version++
		raw := make([]byte, 4)
		binary.BigEndian.PutUint32(raw, version)
		if _, err := live[leader].Propose(ctrlplane.Entry{
			Kind:   ctrlplane.EntryState,
			Map:    raw,
			Detail: "trial seed",
		}); err != nil {
			// A lease flapped between waitLease and Propose; retry the trial.
			trial--
			continue
		}

		killedAt := time.Now()
		live[leader].Stop()
		delete(live, leader)
		succ := waitLease(leader, 10*time.Second)
		outage := time.Since(killedAt)
		if succ == "" {
			t.Add(trial, ms(outage), ms(bound), false, 0, 0, "no successor")
			return t
		}
		st := live[succ].Status()

		// Restart the killed replica on its old address (the listener may
		// linger briefly after Stop).
		var ln net.Listener
		for i := 0; i < 200; i++ {
			var err error
			if ln, err = net.Listen("tcp", leader); err == nil {
				break
			}
			time.Sleep(10 * time.Millisecond)
		}
		rejoin := time.Duration(0)
		if ln == nil {
			t.Add(trial, ms(outage), ms(bound), outage <= bound,
				st.Term, st.CommitIndex, "rebind failed")
			continue
		}
		if err := start(leader, ln); err != nil {
			ln.Close()
			t.Add(trial, ms(outage), ms(bound), outage <= bound,
				st.Term, st.CommitIndex, "restart failed")
			continue
		}
		back := time.Now()
		deadline := time.Now().Add(10 * time.Second)
		for time.Now().Before(deadline) {
			if live[leader].Status().MapVersion >= version {
				rejoin = time.Since(back)
				break
			}
			time.Sleep(2 * time.Millisecond)
		}
		t.Add(trial, ms(outage), ms(bound), outage <= bound,
			st.Term, st.CommitIndex, ms(rejoin))
	}
	return t
}

// ms formats a duration as fractional milliseconds.
func ms(d time.Duration) string {
	return time.Duration(d.Round(100 * time.Microsecond)).String()
}
