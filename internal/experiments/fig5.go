package experiments

import (
	"fmt"

	"github.com/reflex-go/reflex/internal/core"
	"github.com/reflex-go/reflex/internal/dataplane"
	"github.com/reflex-go/reflex/internal/sim"
	"github.com/reflex-go/reflex/internal/workload"
)

// Fig5 reproduces Figure 5: four tenants share one ReFlex thread — A (LC,
// 120K IOPS, 100% read), B (LC, 70K IOPS, 80% read), C (BE, 95% read) and
// D (BE, 25% read), all with 4KB requests and 500us p95 SLOs for the LC
// tenants. Scenario 1 has A and B using their full reservations; in
// Scenario 2, B issues only 45K IOPS. Each scenario runs with the QoS
// scheduler disabled and enabled.
func Fig5(scale Scale) *Table {
	t := &Table{
		ID:    "fig5",
		Title: "QoS isolation: per-tenant p95 read latency and IOPS (1 ReFlex thread, 4KB)",
		Columns: []string{
			"scenario", "sched", "tenant", "p95_read_us", "IOPS", "slo",
		},
		Notes: "LC SLOs: A=120K IOPS @100%r, B=70K @80%r, both 500us p95; device rate 420K tokens/s",
	}
	warm := scale.dur(30 * sim.Millisecond)
	dur := scale.dur(300 * sim.Millisecond)

	for _, scenario := range []int{1, 2} {
		// LC tenants "attempt to use all the IOPS in their SLO": mutilate
		// holds the offered rate just under the reservation (a generator
		// cannot sit exactly at the token rate without unbounded critical
		// queueing).
		bOffered := 68_500.0
		if scenario == 2 {
			bOffered = 45_000.0
		}
		for _, disabled := range []bool{true, false} {
			r := newRig(3000 + int64(scenario*10))
			cfg := dataplane.DefaultConfig(1, deviceTokenRate(500*sim.Microsecond))
			cfg.DisableQoS = disabled
			srv := dataplane.NewServer(r.eng, r.net, r.dev, cfg)

			a := lcTenant(srv, 1, 120_000, 100, 500*sim.Microsecond)
			b := lcTenant(srv, 2, 70_000, 80, 500*sim.Microsecond)
			c := beTenant(srv, 3)
			d := beTenant(srv, 4)

			type load struct {
				tn      *core.Tenant
				name    string
				iops    float64
				readPct int
				slo     string
			}
			loads := []load{
				{a, "A", 117_500, 100, "LC 120K"},
				{b, "B", bOffered, 80, "LC 70K"},
				{c, "C", 80_000, 95, "BE"},
				{d, "D", 80_000, 25, "BE"},
			}
			results := make(map[string]*workload.Result)
			for li, l := range loads {
				conn := srv.Connect(r.ixClient(int64(li)), l.tn)
				if l.tn.Class == core.LatencyCritical {
					// LC clients pace at their target rate (mutilate's
					// fixed-rate mode).
					results[l.name] = r.pacedLoop(conn, l.iops, l.readPct, 4096,
						warm, dur, int64(scenario*100+li))
				} else {
					results[l.name] = r.openLoop(conn, l.iops, l.readPct, 4096,
						warm, dur, int64(scenario*100+li))
				}
			}
			r.finish()

			sched := "enabled"
			if disabled {
				sched = "disabled"
			}
			for _, l := range loads {
				res := results[l.name]
				t.Add(fmt.Sprintf("%d", scenario), sched, l.name,
					us(res.ReadLat.Quantile(0.95)), k(res.IOPS()), l.slo)
			}
		}
	}
	return t
}
