package experiments

import (
	"fmt"

	"github.com/reflex-go/reflex/internal/core"
	"github.com/reflex-go/reflex/internal/dataplane"
	"github.com/reflex-go/reflex/internal/sim"
)

// AblationBatching varies the adaptive batching cap (the paper fixes it at
// 64, §3.1) and reports throughput and tail latency under heavy load plus
// tail latency under light load — showing why "adaptive, capped" wins over
// both no batching and unbounded batching.
func AblationBatching(scale Scale) *Table {
	t := &Table{
		ID:      "ablation-batching",
		Title:   "Adaptive batching cap: throughput and p95 at heavy load, p95 at light load",
		Columns: []string{"max_batch", "heavy_IOPS", "heavy_p95_us", "light_p95_us"},
	}
	warm := scale.dur(20 * sim.Millisecond)
	dur := scale.dur(150 * sim.Millisecond)

	for _, batch := range []int{1, 8, 64, 512} {
		run := func(offered float64, seed int64) (float64, sim.Time) {
			r := newRig(8000 + int64(batch) + seed)
			cfg := dataplane.DefaultConfig(1, 1_200_000*core.TokenUnit)
			cfg.MaxBatch = batch
			srv := dataplane.NewServer(r.eng, r.net, r.dev, cfg)
			tn := beTenant(srv, 1)
			conn := srv.Connect(r.ixClient(seed), tn)
			res := r.openLoop(conn, offered, 100, 1024, warm, dur, seed)
			r.finish()
			return res.IOPS(), res.ReadLat.Quantile(0.95)
		}
		heavyIOPS, heavyP95 := run(800_000, 1)
		_, lightP95 := run(20_000, 2)
		t.Add(batch, k(heavyIOPS), us(heavyP95), us(lightP95))
	}
	return t
}

// AblationTwoStep compares the two-step run-to-completion model against
// the monolithic blocking model the paper rejects in §4.1 (the thread
// blocks on every Flash access).
func AblationTwoStep(scale Scale) *Table {
	t := &Table{
		ID:      "ablation-twostep",
		Title:   "Two-step run-to-completion vs blocking on Flash accesses (1 core, 1KB reads)",
		Columns: []string{"model", "offered_IOPS", "achieved_IOPS", "p95_us"},
	}
	warm := scale.dur(20 * sim.Millisecond)
	dur := scale.dur(150 * sim.Millisecond)

	for _, blocking := range []bool{false, true} {
		name := "two-step"
		if blocking {
			name = "blocking"
		}
		for _, offered := range []float64{10_000, 100_000, 400_000} {
			r := newRig(8100)
			cfg := dataplane.DefaultConfig(1, 1_200_000*core.TokenUnit)
			cfg.DisableQoS = true
			cfg.BlockingModel = blocking
			srv := dataplane.NewServer(r.eng, r.net, r.dev, cfg)
			tn := beTenant(srv, 1)
			conn := srv.Connect(r.ixClient(5), tn)
			res := r.openLoop(conn, offered, 100, 1024, warm, dur, 7)
			r.finish()
			t.Add(name, k(offered), k(res.IOPS()), us(res.ReadLat.Quantile(0.95)))
		}
	}
	return t
}

// AblationCostModel compares the calibrated request cost model against a
// naive unit-cost model (every I/O costs one token) in the Figure 5
// Scenario-1 setting: with unit costs the scheduler cannot account for
// write amplification and the LC read tenant's SLO is violated.
func AblationCostModel(scale Scale) *Table {
	t := &Table{
		ID:      "ablation-costmodel",
		Title:   "Cost model: calibrated (write=10) vs naive (write=1), Fig.5 scenario",
		Columns: []string{"model", "tenant", "p95_read_us", "IOPS"},
		Notes:   "naive model admits far more write work, destroying the LC read tenant's tail",
	}
	warm := scale.dur(30 * sim.Millisecond)
	dur := scale.dur(250 * sim.Millisecond)

	run := func(naive bool) {
		name := "calibrated"
		if naive {
			name = "naive"
		}
		r := newRig(8200)
		cfg := dataplane.DefaultConfig(1, deviceTokenRate(500*sim.Microsecond))
		srv := dataplane.NewServer(r.eng, r.net, r.dev, cfg)
		if naive {
			// Unit-cost model: writes cost the same as reads, and the token
			// rate is reinterpreted as plain IOPS.
			naiveModel := core.CostModel{
				ReadCost:         core.TokenUnit,
				ReadOnlyReadCost: core.TokenUnit,
				WriteCost:        core.TokenUnit,
			}
			srv.OverrideModel(naiveModel)
		}
		reader := lcTenant(srv, 1, 120_000, 100, 500*sim.Microsecond)
		writerBE := beTenant(srv, 2)
		rres := r.openLoop(srv.Connect(r.ixClient(1), reader), 120_000, 100, 4096, warm, dur, 11)
		wres := r.openLoop(srv.Connect(r.ixClient(2), writerBE), 120_000, 0, 4096, warm, dur, 12)
		r.finish()
		t.Add(name, "LC reader", us(rres.ReadLat.Quantile(0.95)), k(rres.IOPS()))
		t.Add(name, "BE writer", "-", k(wres.IOPS()))
	}
	run(false)
	run(true)
	return t
}

// AblationNegLimit varies the LC burst deficit floor (§3.2.2 sets it to
// -50 tokens) and reports how long an LC tenant's write burst can degrade
// a second LC tenant's reads.
func AblationNegLimit(scale Scale) *Table {
	t := &Table{
		ID:      "ablation-neglimit",
		Title:   "NEG_LIMIT burst floor: victim read p95 under a bursty LC writer",
		Columns: []string{"neg_limit_tokens", "victim_p95_us", "burster_IOPS"},
	}
	warm := scale.dur(20 * sim.Millisecond)
	dur := scale.dur(250 * sim.Millisecond)

	for _, limit := range []core.Tokens{0, -50, -2000} {
		r := newRig(8300)
		cfg := dataplane.DefaultConfig(1, deviceTokenRate(500*sim.Microsecond))
		srv := dataplane.NewServer(r.eng, r.net, r.dev, cfg)
		srv.OverrideNegLimit(limit * core.TokenUnit)
		victim := lcTenant(srv, 1, 100_000, 100, 500*sim.Microsecond)
		burster := lcTenant(srv, 2, 10_000, 0, sim.Millisecond) // writes, loose SLO
		vres := r.openLoop(srv.Connect(r.ixClient(1), victim), 100_000, 100, 4096, warm, dur, 13)

		// The burster fires 600 back-to-back writes (6000 tokens of
		// demand) every 20ms: with a deep deficit floor, a large slug of
		// expensive writes is admitted at once.
		bconn := srv.Connect(r.ixClient(2), burster)
		submitted := 0
		stop := warm + dur
		var burstTick func()
		burstTick = func() {
			if r.eng.Now() >= stop {
				return
			}
			for i := 0; i < 600; i++ {
				blk := uint64(submitted % (1 << 22))
				bconn.Write(blk, 4096, func(sim.Time) { submitted++ })
			}
			r.eng.After(20*sim.Millisecond, burstTick)
		}
		r.eng.After(warm, burstTick)

		r.finish()
		t.Add(limit, us(vres.ReadLat.Quantile(0.95)),
			k(float64(submitted)/(float64(dur)/float64(sim.Second))))
	}
	return t
}

// AblationFraction varies the POS_LIMIT donation fraction (§3.2.2 uses
// 90%). In steady state any positive fraction eventually forwards the full
// unused reservation, so the discriminating metric is responsiveness: how
// quickly a best-effort tenant picks up an LC tenant's reservation right
// after the LC tenant goes idle. The donation fraction is the ramp's time
// constant.
func AblationFraction(scale Scale) *Table {
	t := &Table{
		ID:      "ablation-fraction",
		Title:   "Donation fraction: BE throughput in the 25ms after an LC tenant goes idle",
		Columns: []string{"fraction", "BE_IOPS_in_window"},
		Notes:   "LC consumes its full 418K-token reservation (220K IOPS @90%r), then idles at t=100ms",
	}
	_ = scale // the ramp window is physics, not measurement budget
	active := 100 * sim.Millisecond
	window := 25 * sim.Millisecond

	for _, frac := range []float64{0.1, 0.5, 0.9, 1.0} {
		r := newRig(8400)
		cfg := dataplane.DefaultConfig(2, 420_000*core.TokenUnit)
		srv := dataplane.NewServer(r.eng, r.net, r.dev, cfg)
		srv.OverrideDonateFraction(frac)
		// 90% reads at full token cost (the write share keeps the device
		// out of its read-only discount mode, so the reservation is
		// genuinely consumed while active).
		lc, err := core.NewTenant(1, "lc", core.LatencyCritical,
			core.SLO{IOPS: 220_000, ReadPercent: 90, LatencyP95: 2 * sim.Millisecond})
		if err != nil {
			panic(err)
		}
		srv.RegisterTenantOn(lc, 0)
		be, err := core.NewTenant(2, "be", core.BestEffort, core.SLO{})
		if err != nil {
			panic(err)
		}
		srv.RegisterTenantOn(be, 1)

		// LC at full reservation until t=100ms, then a trickle (which
		// keeps its thread's scheduler rounds running, like continuous
		// polling would).
		r.pacedLoop(srv.Connect(r.ixClient(1), lc), 218_000, 90, 4096, 0, active, 14)
		r.pacedLoop(srv.Connect(r.ixClient(2), lc), 1_000, 90, 4096, active, 4*window, 15)
		// BE offers heavy load throughout; measured only in the ramp
		// window right after the LC tenant idles.
		res := r.openLoop(srv.Connect(r.ixClient(3), be), 400_000, 100, 4096, active, window, 16)
		r.finish()
		t.Add(fmt.Sprintf("%.0f%%", frac*100), k(res.IOPS()))
	}
	return t
}
