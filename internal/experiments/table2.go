package experiments

import (
	"github.com/reflex-go/reflex/internal/baseline"
	"github.com/reflex-go/reflex/internal/core"
	"github.com/reflex-go/reflex/internal/hist"
	"github.com/reflex-go/reflex/internal/sim"
	"github.com/reflex-go/reflex/internal/workload"
)

// Table2 reproduces Table 2: unloaded latency (average and p95) of 4KB
// random reads and writes at queue depth 1, for local SPDK access and the
// remote paths (iSCSI, libaio with Linux/IX clients, ReFlex with Linux/IX
// clients).
func Table2(scale Scale) *Table {
	t := &Table{
		ID:    "tab2",
		Title: "Unloaded Flash latency for 4KB random I/Os (us), incl. round-trip network",
		Columns: []string{
			"system", "read_avg", "read_p95", "write_avg", "write_p95",
		},
	}
	dur := scale.dur(150 * sim.Millisecond)

	measure := func(mk func(r *rig) workload.Target, seed int64) (readLat, writeLat *hist.Hist) {
		r := newRig(seed)
		res := r.qd1(mk(r), 100, 4096, dur, seed+1)
		r.finish()
		// The write probe is paced below the device's sustained random
		// write rate (~60K/s): an unloaded-latency measurement must not
		// fill the write buffer, or it measures backpressure instead.
		r2 := newRig(seed + 50)
		r2.stopAt = dur
		res2 := workload.ClosedLoop{
			Depth:     1,
			ThinkTime: 30 * sim.Microsecond,
			Mix:       workload.Mix{ReadPercent: 0, Size: 4096, Blocks: 1 << 24},
			Duration:  dur,
			Seed:      seed + 51,
		}.Start(r2.eng, mk(r2))
		r2.finish()
		return res.ReadLat, res2.WriteLat
	}

	row := func(name string, mk func(r *rig) workload.Target, seed int64) {
		rl, wl := measure(mk, seed)
		t.Add(name,
			us(int64(rl.Mean())), us(rl.Quantile(0.95)),
			us(int64(wl.Mean())), us(wl.Quantile(0.95)))
	}

	row("Local (SPDK)", func(r *rig) workload.Target {
		return baseline.NewLocalNode(r.eng, r.dev, 1).Core(0)
	}, 1000)

	row("iSCSI", func(r *rig) workload.Target {
		return r.iscsiServer(1).Connect(r.linuxClient(7))
	}, 1100)

	row("Libaio (Linux Client)", func(r *rig) workload.Target {
		return r.libaioServer(1).Connect(r.linuxClient(7))
	}, 1200)

	row("Libaio (IX Client)", func(r *rig) workload.Target {
		return r.libaioServer(1).Connect(r.ixClient(7))
	}, 1300)

	row("ReFlex (Linux Client)", func(r *rig) workload.Target {
		srv := r.reflexServer(1, 600_000*core.TokenUnit)
		return srv.Connect(r.linuxClient(7), beTenant(srv, 1))
	}, 1400)

	row("ReFlex (IX Client)", func(r *rig) workload.Target {
		srv := r.reflexServer(1, 600_000*core.TokenUnit)
		return srv.Connect(r.ixClient(7), beTenant(srv, 1))
	}, 1500)

	return t
}
