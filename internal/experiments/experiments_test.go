package experiments

import (
	"strconv"
	"strings"
	"testing"

	"github.com/reflex-go/reflex/internal/sim"
)

// quick is the test scale: short windows, same structure.
const quick Scale = 0.15

// parseUS reads a microsecond cell.
func parseUS(t *testing.T, s string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("bad us cell %q: %v", s, err)
	}
	return v
}

// parseK reads a "123K" cell.
func parseK(t *testing.T, s string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(strings.TrimSuffix(s, "K"), 64)
	if err != nil {
		t.Fatalf("bad K cell %q: %v", s, err)
	}
	return v * 1000
}

func TestTableFormatting(t *testing.T) {
	tb := &Table{ID: "x", Title: "T", Columns: []string{"a", "bb"}, Notes: "n"}
	tb.Add(1, 2.5)
	tb.Add("long-cell", "y")
	out := tb.Format()
	for _, want := range []string{"== x: T ==", "a", "bb", "long-cell", "2.5", "note: n"} {
		if !strings.Contains(out, want) {
			t.Errorf("Format missing %q:\n%s", want, out)
		}
	}
	if _, ok := tb.Cell("bb", func(r []string) bool { return r[0] == "1" }); !ok {
		t.Error("Cell lookup failed")
	}
	if _, ok := tb.Cell("zz", func(r []string) bool { return true }); ok {
		t.Error("Cell found nonexistent column")
	}
}

func TestRegistryRunsEverything(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment smoke tests are not short")
	}
	// Smoke: every registered experiment runs at tiny scale and produces
	// rows. Heavier shape assertions live in the dedicated tests below.
	skipHeavy := map[string]bool{
		"fig1": true, "fig3a": true, "fig3b": true, "fig3c": true,
		"fig4": true, "fig6a": true, "fig6b": true, "fig6c": true,
		"fig7a": true, "fig7b": true, "fig7c": true, "fig5": true,
		"ext-cache":     true, // fig5-weight; has its own dedicated test
		"ext-failover":  true, // wall-clock; has its own dedicated test
		"ext-sharding":  true, // wall-clock; has its own dedicated test
		"ext-ctrlplane": true, // wall-clock; has its own dedicated test
	}
	for _, id := range IDs() {
		if skipHeavy[id] {
			continue
		}
		tbl, err := Run(id, quick)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if len(tbl.Rows) == 0 {
			t.Errorf("%s produced no rows", id)
		}
	}
	if _, err := Run("nope", 1); err == nil {
		t.Error("unknown id accepted")
	}
}

func TestFig1Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("long")
	}
	tbl := Fig1(quick)
	// For each ratio, p95 at the lightest load must be far below p95 at
	// the heaviest measured load, and write-heavier mixes must give up at
	// lower IOPS.
	lastIOPS := map[int]float64{}
	firstP95 := map[int]float64{}
	lastP95 := map[int]float64{}
	for _, row := range tbl.Rows {
		ratio, _ := strconv.Atoi(row[0])
		iops := parseK(t, row[2])
		p95 := parseUS(t, row[3])
		if _, ok := firstP95[ratio]; !ok {
			firstP95[ratio] = p95
		}
		lastIOPS[ratio] = iops
		lastP95[ratio] = p95
	}
	for ratio, fp := range firstP95 {
		if lastP95[ratio] < 3*fp {
			t.Errorf("ratio %d%%: p95 did not blow up (%.0f -> %.0f us)", ratio, fp, lastP95[ratio])
		}
	}
	if lastIOPS[50] >= lastIOPS[100]/2 {
		t.Errorf("50%%-read saturation (%.0f) should be far below read-only (%.0f)",
			lastIOPS[50], lastIOPS[100])
	}
}

func TestTable2Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("long")
	}
	tbl := Table2(quick)
	if len(tbl.Rows) != 6 {
		t.Fatalf("Table 2 has %d rows, want 6", len(tbl.Rows))
	}
	readAvg := map[string]float64{}
	writeAvg := map[string]float64{}
	for _, row := range tbl.Rows {
		readAvg[row[0]] = parseUS(t, row[1])
		writeAvg[row[0]] = parseUS(t, row[3])
	}
	// The paper's ordering: local < ReFlex-IX < ReFlex-Linux ~< libaio-IX
	// < libaio-Linux < iSCSI for reads.
	order := []string{"Local (SPDK)", "ReFlex (IX Client)", "ReFlex (Linux Client)",
		"Libaio (IX Client)", "Libaio (Linux Client)", "iSCSI"}
	for i := 1; i < len(order); i++ {
		if readAvg[order[i]] <= readAvg[order[i-1]]*0.98 {
			t.Errorf("read ordering violated: %s (%.0f) <= %s (%.0f)",
				order[i], readAvg[order[i]], order[i-1], readAvg[order[i-1]])
		}
	}
	// Headline number: ReFlex adds ~21us to local reads.
	adder := readAvg["ReFlex (IX Client)"] - readAvg["Local (SPDK)"]
	if adder < 14 || adder > 30 {
		t.Errorf("ReFlex-IX adder = %.1fus over local, want ~21us", adder)
	}
	// Writes: local ~11us, ReFlex-IX ~31us.
	if writeAvg["Local (SPDK)"] > 16 {
		t.Errorf("local write avg = %.0fus, want ~11us", writeAvg["Local (SPDK)"])
	}
	if w := writeAvg["ReFlex (IX Client)"]; w < 24 || w > 42 {
		t.Errorf("ReFlex-IX write avg = %.0fus, want ~31us", w)
	}
	// iSCSI read latency is ~2.8x local (the paper's 2.8x claim).
	if ratio := readAvg["iSCSI"] / readAvg["Local (SPDK)"]; ratio < 2.2 || ratio > 3.4 {
		t.Errorf("iSCSI/local read ratio = %.2f, want ~2.7", ratio)
	}
}

func TestFig5Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("long")
	}
	tbl := Fig5(0.4)
	get := func(scenario, sched, tenant, col string) float64 {
		cell, ok := tbl.Cell(col, func(r []string) bool {
			return r[0] == scenario && r[1] == sched && r[2] == tenant
		})
		if !ok {
			t.Fatalf("missing row %s/%s/%s", scenario, sched, tenant)
		}
		if strings.HasSuffix(cell, "K") {
			return parseK(t, cell)
		}
		return parseUS(t, cell)
	}

	// Scenario 1, scheduler enabled: both LC tenants meet their SLOs.
	for _, tenant := range []string{"A", "B"} {
		if p95 := get("1", "enabled", tenant, "p95_read_us"); p95 > 550 {
			t.Errorf("scenario 1 enabled: tenant %s p95 = %.0fus, SLO 500us", tenant, p95)
		}
	}
	if iops := get("1", "enabled", "A", "IOPS"); iops < 112_000 {
		t.Errorf("tenant A IOPS = %.0f, want ~120K", iops)
	}
	if iops := get("1", "enabled", "B", "IOPS"); iops < 64_000 {
		t.Errorf("tenant B IOPS = %.0f, want ~70K", iops)
	}
	// Scheduler disabled: massive SLO violation for LC tenants.
	if p95 := get("1", "disabled", "A", "p95_read_us"); p95 < 1500 {
		t.Errorf("scenario 1 disabled: tenant A p95 = %.0fus, want >2ms-ish", p95)
	}
	// BE tenants: C (95% read) far out-runs D (25% read) when enabled.
	cIOPS, dIOPS := get("1", "enabled", "C", "IOPS"), get("1", "enabled", "D", "IOPS")
	if cIOPS < 2.5*dIOPS {
		t.Errorf("C (%.0f) should far exceed D (%.0f)", cIOPS, dIOPS)
	}
	// Scenario 2: B under-uses its SLO; BE tenants gain throughput.
	c2 := get("2", "enabled", "C", "IOPS")
	if c2 <= cIOPS {
		t.Errorf("scenario 2: C IOPS (%.0f) should exceed scenario 1 (%.0f)", c2, cIOPS)
	}
}

func TestFig6aShape(t *testing.T) {
	if testing.Short() {
		t.Skip("long")
	}
	tbl := Fig6a(quick, 4)
	if len(tbl.Rows) != 4 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	var lc1, lc4, be1, be4 float64
	for _, row := range tbl.Rows {
		cores, _ := strconv.Atoi(row[0])
		lc := parseK(t, row[2])
		be := parseK(t, row[3])
		p95 := parseUS(t, row[5])
		if cores == 1 {
			lc1, be1 = lc, be
		}
		if cores == 4 {
			lc4, be4 = lc, be
		}
		if p95 > 2000 {
			t.Errorf("%d cores: LC p95 %.0fus exceeds the 2ms SLO", cores, p95)
		}
	}
	// LC IOPS scale linearly with cores; BE IOPS shrink.
	if lc4 < 3.3*lc1 {
		t.Errorf("LC IOPS not scaling: 1 core %.0f, 4 cores %.0f", lc1, lc4)
	}
	if be4 >= be1 {
		t.Errorf("BE IOPS did not shrink as LC tenants joined: %.0f -> %.0f", be1, be4)
	}
}

func TestFig6bShape(t *testing.T) {
	if testing.Short() {
		t.Skip("long")
	}
	tbl := Fig6b(quick, []int{500, 2500, 3500})
	get := func(cores, tenants int) float64 {
		cell, ok := tbl.Cell("achieved_IOPS", func(r []string) bool {
			return r[0] == strconv.Itoa(cores) && r[1] == strconv.Itoa(tenants)
		})
		if !ok {
			t.Fatalf("missing %d cores / %d tenants", cores, tenants)
		}
		return parseK(t, cell)
	}
	// A single core sustains 2500 tenants near the offered load but falls
	// behind at 3500; more cores recover it.
	if got := get(1, 2500); got < 200_000 {
		t.Errorf("1 core / 2500 tenants = %.0f IOPS, want ~250K", got)
	}
	short1 := get(1, 3500) / 350_000
	short2 := get(2, 3500) / 350_000
	if short1 > 0.92 {
		t.Errorf("1 core / 3500 tenants delivered %.0f%% of offered; expected saturation", short1*100)
	}
	if short2 < short1+0.05 {
		t.Errorf("2 cores should relieve the 3500-tenant bottleneck (%.2f vs %.2f)", short2, short1)
	}
}

func TestFig6cShape(t *testing.T) {
	if testing.Short() {
		t.Skip("long")
	}
	tbl := Fig6c(quick)
	get := func(perConn, conns int) float64 {
		cell, ok := tbl.Cell("achieved_IOPS", func(r []string) bool {
			return r[0] == strconv.Itoa(perConn) && r[1] == strconv.Itoa(conns)
		})
		if !ok {
			t.Fatalf("missing %d/%d", perConn, conns)
		}
		return parseK(t, cell)
	}
	// 100 IOPS/conn: near-linear to 5000 conns, degraded at 10000.
	if got := get(100, 5000); got < 430_000 {
		t.Errorf("5000 conns delivered %.0f, want ~500K", got)
	}
	frac10k := get(100, 10000) / 1_000_000
	if frac10k > 0.85 {
		t.Errorf("10000 conns delivered %.0f%% of offered; expected LLC-pressure degradation",
			frac10k*100)
	}
	// 1000 IOPS/conn peaks below the 850K zero-pressure ceiling.
	if got := get(1000, 850); got < 600_000 || got > 860_000 {
		t.Errorf("850 conns x 1000 IOPS = %.0f, want ~780K", got)
	}
}

func TestFig7bShape(t *testing.T) {
	if testing.Short() {
		t.Skip("long")
	}
	tbl := Fig7b(quick)
	slow := func(algo, backend string) float64 {
		cell, ok := tbl.Cell("slowdown", func(r []string) bool {
			return r[0] == algo && r[1] == backend
		})
		if !ok {
			t.Fatalf("missing %s/%s", algo, backend)
		}
		v, err := strconv.ParseFloat(strings.TrimSuffix(cell, "x"), 64)
		if err != nil {
			t.Fatal(err)
		}
		return v
	}
	check := func(algo string, reflexMax, iscsiMin float64) {
		r := slow(algo, "ReFlex")
		i := slow(algo, "iSCSI")
		if r > reflexMax {
			t.Errorf("%s: ReFlex slowdown %.2fx, want <= %.2fx", algo, r, reflexMax)
		}
		if i < iscsiMin {
			t.Errorf("%s: iSCSI slowdown %.2fx, want >= %.2fx", algo, i, iscsiMin)
		}
		if i <= r {
			t.Errorf("%s: iSCSI (%.2fx) not slower than ReFlex (%.2fx)", algo, i, r)
		}
	}
	// Paper: ReFlex 1-4% slowdown; iSCSI 15-40%.
	check("WCC", 1.15, 1.05)
	check("PR", 1.15, 1.05)
	check("BFS", 1.20, 1.10)
	check("SCC", 1.20, 1.10)
	// Result consistency across backends.
	for _, algo := range []string{"WCC", "PR", "BFS", "SCC"} {
		var vals []string
		for _, row := range tbl.Rows {
			if row[0] == algo {
				vals = append(vals, row[4])
			}
		}
		for _, v := range vals {
			if v != vals[0] {
				t.Errorf("%s: result differs across backends: %v", algo, vals)
			}
		}
	}
}

func TestFig7cShape(t *testing.T) {
	if testing.Short() {
		t.Skip("long")
	}
	tbl := Fig7c(quick)
	slow := func(bench, backend string) float64 {
		cell, ok := tbl.Cell("slowdown", func(r []string) bool {
			return r[0] == bench && r[1] == backend
		})
		if !ok {
			t.Fatalf("missing %s/%s", bench, backend)
		}
		v, err := strconv.ParseFloat(strings.TrimSuffix(cell, "x"), 64)
		if err != nil {
			t.Fatal(err)
		}
		return v
	}
	// BL is device-bound: all backends within ~10%.
	if v := slow("BL", "iSCSI"); v > 1.30 {
		t.Errorf("bulkload iSCSI slowdown %.2fx, want near 1x (flash-bound)", v)
	}
	// RR/RwW: ReFlex < 10%, iSCSI > 15%.
	for _, bench := range []string{"RR", "RwW"} {
		if v := slow(bench, "ReFlex"); v > 1.12 {
			t.Errorf("%s ReFlex slowdown %.2fx, want <~1.05x", bench, v)
		}
		if v := slow(bench, "iSCSI"); v < 1.12 {
			t.Errorf("%s iSCSI slowdown %.2fx, want >~1.2x", bench, v)
		}
	}
}

func TestAblationTwoStepShape(t *testing.T) {
	if testing.Short() {
		t.Skip("long")
	}
	tbl := AblationTwoStep(quick)
	get := func(model, offered string) float64 {
		cell, ok := tbl.Cell("achieved_IOPS", func(r []string) bool {
			return r[0] == model && r[1] == offered
		})
		if !ok {
			t.Fatalf("missing %s/%s", model, offered)
		}
		return parseK(t, cell)
	}
	two := get("two-step", "400K")
	blocking := get("blocking", "400K")
	if blocking > two/5 {
		t.Errorf("blocking model (%.0f) should collapse vs two-step (%.0f)", blocking, two)
	}
}

func TestScaleClamp(t *testing.T) {
	var s Scale // zero
	if d := s.dur(100 * sim.Millisecond); d != 100*sim.Millisecond {
		t.Errorf("zero scale should mean 1.0, got %d", d)
	}
	s = 0.001
	if d := s.dur(100 * sim.Millisecond); d != 10*sim.Millisecond {
		t.Errorf("floor not applied: %d", d)
	}
}

func TestExtRightsizingShape(t *testing.T) {
	if testing.Short() {
		t.Skip("long")
	}
	tbl := ExtRightsizing(quick)
	get := func(phase, col string) string {
		cell, ok := tbl.Cell(col, func(r []string) bool { return r[0] == phase })
		if !ok {
			t.Fatalf("missing phase %s", phase)
		}
		return cell
	}
	if th := get("light", "threads_at_end"); th != "1" {
		t.Errorf("light phase ended with %s threads, want 1", th)
	}
	heavyThreads, _ := strconv.Atoi(get("heavy", "threads_at_end"))
	if heavyThreads < 2 {
		t.Errorf("heavy phase ended with %d threads, want >= 2", heavyThreads)
	}
	if th := get("light-again", "threads_at_end"); th != "1" {
		t.Errorf("scaler did not shrink back: %s threads", th)
	}
	// No phase loses throughput: achieved within 10% of offered.
	for _, phase := range []string{"light", "heavy", "light-again"} {
		offered := parseK(t, get(phase, "offered_IOPS"))
		achieved := parseK(t, get(phase, "achieved_IOPS"))
		if achieved < 0.88*offered {
			t.Errorf("%s: achieved %.0f of %.0f offered", phase, achieved, offered)
		}
	}
}

func TestFig3Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("long")
	}
	// The defining property of Figure 3: measured in weighted tokens/s,
	// every mix and size saturates at (roughly) the same knee.
	tbl := Fig3("deviceA", quick)
	lastTokens := map[string]float64{}
	for _, row := range tbl.Rows {
		v, err := strconv.ParseFloat(row[2], 64)
		if err != nil {
			t.Fatal(err)
		}
		p95 := parseUS(t, row[3])
		if p95 <= 2000 { // the figure's y-range
			if v > lastTokens[row[0]] {
				lastTokens[row[0]] = v
			}
		}
	}
	var min, max float64
	for wl, v := range lastTokens {
		if v == 0 {
			t.Fatalf("workload %s never reached a knee", wl)
		}
		if min == 0 || v < min {
			min = v
		}
		if v > max {
			max = v
		}
	}
	// All eight curves collapse within ~1.6x of each other in token space
	// (the raw IOPS knees differ by >10x).
	if max > 1.6*min {
		t.Errorf("token knees spread %0.f..%0.f ktokens/s; cost model did not collapse curves",
			min, max)
	}
}

func TestFig4Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("long")
	}
	tbl := Fig4(quick)
	best := map[string]float64{}   // highest achieved IOPS with p95 <= 1ms
	lowLat := map[string]float64{} // p95 at the lightest load
	for _, row := range tbl.Rows {
		sys := row[0]
		achieved := parseK(t, row[2])
		p95 := parseUS(t, row[3])
		if _, ok := lowLat[sys]; !ok {
			lowLat[sys] = p95
		}
		if p95 <= 1000 && achieved > best[sys] {
			best[sys] = achieved
		}
	}
	// §5.3 headline ceilings.
	if b := best["Local-1T"]; b < 700_000 || b > 950_000 {
		t.Errorf("Local-1T ceiling = %.0f, want ~870K", b)
	}
	if b := best["ReFlex-1T"]; b < 680_000 || b > 900_000 {
		t.Errorf("ReFlex-1T ceiling = %.0f, want ~850K", b)
	}
	// 2T matches 1T until the single core saturates and extends beyond it
	// at full scale; at test scale the extra headroom point can be lost to
	// sampling noise, so only require parity.
	if b := best["ReFlex-2T"]; b < 0.93*best["ReFlex-1T"] {
		t.Errorf("ReFlex-2T (%.0f) below ReFlex-1T (%.0f)", b, best["ReFlex-1T"])
	}
	if b := best["Libaio-1T"]; b > 100_000 {
		t.Errorf("Libaio-1T ceiling = %.0f, want ~75K", b)
	}
	// "over 10x more CPU cores to achieve the throughput of ReFlex".
	if best["ReFlex-1T"] < 9*best["Libaio-1T"] {
		t.Errorf("ReFlex/libaio per-core ratio = %.1f, want ~11",
			best["ReFlex-1T"]/best["Libaio-1T"])
	}
	// ReFlex's unloaded latency is within ~25us of local (Table 2's 21us).
	if d := lowLat["ReFlex-1T"] - lowLat["Local-1T"]; d < 5 || d > 35 {
		t.Errorf("ReFlex light-load latency adder = %.0fus, want ~16-21us", d)
	}
}

func TestFig7aShape(t *testing.T) {
	if testing.Short() {
		t.Skip("long")
	}
	tbl := Fig7a(quick)
	maxMBps := map[string]float64{}
	minP95 := map[string]float64{}
	for _, row := range tbl.Rows {
		sys := row[0]
		mbps, err := strconv.ParseFloat(row[2], 64)
		if err != nil {
			t.Fatal(err)
		}
		p95 := parseUS(t, row[4])
		if mbps > maxMBps[sys] {
			maxMBps[sys] = mbps
		}
		if minP95[sys] == 0 || p95 < minP95[sys] {
			minP95[sys] = p95
		}
	}
	// "ReFlex provides 4x higher throughput than iSCSI and 2x lower tail
	// and average latency."
	if r := maxMBps["ReFlex"] / maxMBps["iSCSI"]; r < 3 {
		t.Errorf("ReFlex/iSCSI throughput = %.1fx, want ~4x+", r)
	}
	if r := minP95["iSCSI"] / minP95["ReFlex"]; r < 1.4 {
		t.Errorf("iSCSI/ReFlex p95 = %.1fx, want ~2x", r)
	}
	// Local tops everything; ReFlex is NIC-bound below it.
	if maxMBps["Local"] <= maxMBps["ReFlex"] {
		t.Errorf("local (%.0f) not above NIC-bound ReFlex (%.0f)",
			maxMBps["Local"], maxMBps["ReFlex"])
	}
	// ReFlex saturates the 10GbE link (~1.1 GB/s).
	if maxMBps["ReFlex"] < 900 {
		t.Errorf("ReFlex peak = %.0f MB/s, want ~1100 (10GbE)", maxMBps["ReFlex"])
	}
}
