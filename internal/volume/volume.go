// Package volume is the volume manager layered over the server's
// block/shard path (DESIGN.md §18): thin-provisioned logical volumes with
// a logical→physical extent map, instant copy-on-write snapshots,
// writable clones, and snapshot-diff enumeration for incremental
// replication/backup streams.
//
// Model:
//
//   - A volume is a logical block space carved into fixed-size extents
//     (DefaultExtentBlocks protocol blocks each). Physical extents are
//     lazily allocated from a Pool — a reserved physical block range of
//     the device — on first write (thin provisioning). Unmapped logical
//     space reads as zeros.
//   - A snapshot freezes the volume's live extent map under a generation
//     number in O(1): the live map becomes an immutable chain layer and a
//     fresh empty map takes its place. Reads walk live→layer chain,
//     newest first. Writes after a snapshot allocate fresh extents and
//     touch only the live map (copy-on-write), so the frozen layers — and
//     every clone sharing them — are immutable forever.
//   - A clone is a writable volume whose chain starts at a snapshot
//     layer. Chain layers are reference-counted; an extent is owned by
//     exactly one map (the live map or one frozen layer) and is returned
//     to the pool when its owner dies.
//   - Diff(genA, genB] enumerates the logical extents written between two
//     generations — the layer chain makes this a walk of the layers in
//     that window — feeding the OpVolStream incremental backup stream.
//
// Concurrency: the data path (ReadAt/WriteAt/ReadAtGen) takes the
// volume's RWMutex — shared for reads and in-place overwrites of
// live-owned extents (the steady state, allocation-free), exclusive only
// for first-touch extent allocation and CoW breaks. Structural operations
// (create/snapshot/clone/delete/trim) serialize on the Manager.
package volume

import (
	"errors"
	"fmt"
	"sync"

	"github.com/reflex-go/reflex/internal/bufpool"
	"github.com/reflex-go/reflex/internal/protocol"
	"github.com/reflex-go/reflex/internal/storage"
)

// DefaultExtentBlocks is the default extent size in protocol blocks
// (128 × 512 B = 64 KiB): large enough that the map stays small, small
// enough that CoW first-touch copies stay cheap, and a multiple of the
// read cache's 4 KiB page so cache blocks never straddle extents.
const DefaultExtentBlocks = 128

// Hole marks a logical extent explicitly unmapped by a trim: the chain
// walk stops at it and the extent reads as zeros even when an older layer
// still maps it.
const Hole = ^uint32(0)

// MaxVolumes bounds live volume handles; handle 0 means "no volume" on
// the wire (the Registration.Volume byte), so handles run 1..MaxVolumes.
const MaxVolumes = 255

// Typed failures the server maps onto wire statuses.
var (
	// ErrNoSpace means the extent pool is exhausted (thin provisioning
	// overcommitted) — the wire's StatusNoCapacity.
	ErrNoSpace = errors.New("volume: extent pool exhausted")
	// ErrDead means the volume was deleted while still referenced.
	ErrDead = errors.New("volume: deleted")
	// ErrRange means an access beyond the volume's logical size.
	ErrRange = errors.New("volume: out of range")
	// ErrExists / ErrNotFound are name-registry failures.
	ErrExists   = errors.New("volume: name exists")
	ErrNotFound = errors.New("volume: not found")
)

// Pool allocates fixed-size physical extents from a reserved block range
// [FirstBlock, FirstBlock+Blocks) of the device. Extents are identified
// by dense indexes (what the maps store) and returned to a free list on
// release; OnFree, when set, observes releases (trim/discard plumbing —
// e.g. a simulated device invalidating the pages in their erase units).
type Pool struct {
	mu         sync.Mutex
	firstBlock uint64
	extBlocks  uint32
	total      uint32
	free       []uint32
	allocated  uint32

	// OnFree observes extent releases with the extent's physical block
	// range. Set before first use; called with the pool lock held.
	OnFree func(firstBlock uint64, blocks uint32)
}

// NewPool builds a pool of blocks/extentBlocks extents over the physical
// block range starting at firstBlock.
func NewPool(firstBlock, blocks uint64, extentBlocks uint32) (*Pool, error) {
	if extentBlocks == 0 {
		return nil, fmt.Errorf("volume: zero extent size")
	}
	total := blocks / uint64(extentBlocks)
	if total == 0 {
		return nil, fmt.Errorf("volume: pool of %d blocks holds no %d-block extent", blocks, extentBlocks)
	}
	if total >= uint64(Hole) {
		return nil, fmt.Errorf("volume: pool of %d extents exceeds the index space", total)
	}
	p := &Pool{firstBlock: firstBlock, extBlocks: extentBlocks, total: uint32(total)}
	p.free = make([]uint32, total)
	for i := range p.free {
		// LIFO off the tail; seed so extent 0 is handed out first.
		p.free[i] = uint32(total) - 1 - uint32(i)
	}
	return p, nil
}

// alloc hands out one extent index.
func (p *Pool) alloc() (uint32, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if len(p.free) == 0 {
		return 0, false
	}
	idx := p.free[len(p.free)-1]
	p.free = p.free[:len(p.free)-1]
	p.allocated++
	return idx, true
}

// release returns one extent index to the free list.
func (p *Pool) release(idx uint32) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.free = append(p.free, idx)
	p.allocated--
	if p.OnFree != nil {
		p.OnFree(p.firstBlock+uint64(idx)*uint64(p.extBlocks), p.extBlocks)
	}
}

// physBlock is the first physical block of an extent.
func (p *Pool) physBlock(idx uint32) uint64 {
	return p.firstBlock + uint64(idx)*uint64(p.extBlocks)
}

// Allocated and Total report pool occupancy in extents.
func (p *Pool) Allocated() uint32 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.allocated
}
func (p *Pool) Total() uint32 { return p.total }

// layer is one frozen generation of a volume's extent map. Immutable
// after freeze; shared by the volume's later generations and by clones.
// refs counts chain children (exactly one — the next layer or a volume's
// live map), clone attachments, and the snapshot registry entry; the
// Manager guards it and returns the layer's extents to the pool at zero.
type layer struct {
	gen    uint64
	parent *layer
	ents   map[uint32]uint32 // logical extent index → pool extent index or Hole
	refs   int32
}

// Volume is one logical volume (or writable clone).
type Volume struct {
	mgr    *Manager
	name   string
	handle uint16
	blocks uint64 // logical size in protocol blocks

	// mu guards the live map, chain head, generation and dead flag.
	// Shared on reads and in-place overwrites; exclusive on extent
	// allocation (first touch / CoW break), trim, snapshot and delete.
	mu     sync.RWMutex
	live   map[uint32]uint32
	parent *layer
	gen    uint64
	snaps  map[uint64]*layer
	dead   bool
}

// Name, Handle, Blocks, LogicalBytes, Gen — cheap accessors.
func (v *Volume) Name() string   { return v.name }
func (v *Volume) Handle() uint16 { return v.handle }
func (v *Volume) Blocks() uint64 { return v.blocks }
func (v *Volume) LogicalBytes() int64 {
	return int64(v.blocks) * protocol.BlockSize
}

// Gen returns the current write generation (snapshots freeze gens below
// it; the live map writes under it).
func (v *Volume) Gen() uint64 {
	v.mu.RLock()
	defer v.mu.RUnlock()
	return v.gen
}

// Dead reports whether the volume has been deleted.
func (v *Volume) Dead() bool {
	v.mu.RLock()
	defer v.mu.RUnlock()
	return v.dead
}

// extBytes is the extent size in bytes.
func (v *Volume) extBytes() int64 {
	return int64(v.mgr.extBlocks) * protocol.BlockSize
}

// lookupLocked resolves a logical extent through live→chain, newest
// first. Returns (pool extent, true) for a mapping, (Hole, true) for an
// explicit trim hole, (0, false) for never-written. Caller holds v.mu.
func (v *Volume) lookupLocked(lext uint32) (uint32, bool) {
	if e, ok := v.live[lext]; ok {
		return e, true
	}
	for l := v.parent; l != nil; l = l.parent {
		if e, ok := l.ents[lext]; ok {
			return e, true
		}
	}
	return 0, false
}

// lookupGenLocked is lookupLocked bounded to generations <= gen (reading
// the volume as of a snapshot). The live map counts as generation v.gen.
func (v *Volume) lookupGenLocked(lext uint32, gen uint64) (uint32, bool) {
	if v.gen <= gen {
		if e, ok := v.live[lext]; ok {
			return e, true
		}
	}
	for l := v.parent; l != nil; l = l.parent {
		if l.gen > gen {
			continue
		}
		if e, ok := l.ents[lext]; ok {
			return e, true
		}
	}
	return 0, false
}

// zeroChunk backs hole reads (thin-provisioned space reads as zeros).
var zeroChunk [4096]byte

// zeroFill writes zeros into p without allocating.
func zeroFill(p []byte) {
	for len(p) > 0 {
		n := copy(p, zeroChunk[:])
		p = p[n:]
	}
}

// Translate resolves a byte range that must lie within one mapped extent
// to its physical byte offset on the device. ok is false when the range
// spans extents, is unmapped (a hole), or the volume is dead — callers
// (the read-cache probe) then skip the fast path. Allocation-free.
func (v *Volume) Translate(off int64, n int) (int64, bool) {
	if n <= 0 || off < 0 || off+int64(n) > v.LogicalBytes() {
		return 0, false
	}
	eb := v.extBytes()
	if off/eb != (off+int64(n)-1)/eb {
		return 0, false // spans extents
	}
	v.mu.RLock()
	defer v.mu.RUnlock()
	if v.dead {
		return 0, false
	}
	ext, ok := v.lookupLocked(uint32(off / eb))
	if !ok || ext == Hole {
		return 0, false
	}
	phys := int64(v.mgr.pool.physBlock(ext)) * protocol.BlockSize
	return phys + off%eb, true
}

// ReadAt reads len(p) bytes at logical byte offset off, walking the
// live→snapshot chain per extent; unmapped space reads as zeros.
// Allocation-free at steady state.
func (v *Volume) ReadAt(p []byte, off int64) error {
	return v.readAt(p, off, ^uint64(0))
}

// ReadAtGen reads the volume as of generation gen (a frozen snapshot, or
// the current generation for the live image) — the diff stream's source.
func (v *Volume) ReadAtGen(p []byte, off int64, gen uint64) error {
	return v.readAt(p, off, gen)
}

func (v *Volume) readAt(p []byte, off int64, gen uint64) error {
	if off < 0 || off+int64(len(p)) > v.LogicalBytes() {
		return ErrRange
	}
	eb := v.extBytes()
	v.mu.RLock()
	defer v.mu.RUnlock()
	if v.dead {
		return ErrDead
	}
	for len(p) > 0 {
		lext := uint32(off / eb)
		in := off % eb
		n := eb - in
		if n > int64(len(p)) {
			n = int64(len(p))
		}
		ext, ok := v.lookupGenLocked(lext, gen)
		if !ok || ext == Hole {
			zeroFill(p[:n])
		} else {
			phys := int64(v.mgr.pool.physBlock(ext))*protocol.BlockSize + in
			if _, err := v.mgr.backend.ReadAt(p[:n], phys); err != nil {
				return err
			}
		}
		p = p[n:]
		off += n
	}
	return nil
}

// WriteAt writes p at logical byte offset off. Overwrites of extents the
// live map already owns go straight to the device (shared lock, zero
// allocations — the steady state). First touches and CoW breaks take the
// exclusive lock, allocate a fresh extent from the pool, materialize its
// full image (old bytes from the chain, zeros for thin holes, the new
// bytes overlaid) and write it before publishing the mapping — so a
// physical extent is always fully written before any reader can map it,
// which is also what keeps recycled extents from leaking stale bytes
// through the physical-keyed read cache.
func (v *Volume) WriteAt(p []byte, off int64) error {
	if off < 0 || off+int64(len(p)) > v.LogicalBytes() {
		return ErrRange
	}
	eb := v.extBytes()
	for len(p) > 0 {
		lext := uint32(off / eb)
		in := off % eb
		n := eb - in
		if n > int64(len(p)) {
			n = int64(len(p))
		}
		if err := v.writeExtent(lext, in, p[:n]); err != nil {
			return err
		}
		p = p[n:]
		off += n
	}
	return nil
}

// writeExtent writes one extent-contained span.
func (v *Volume) writeExtent(lext uint32, in int64, p []byte) error {
	v.mu.RLock()
	if v.dead {
		v.mu.RUnlock()
		return ErrDead
	}
	if ext, ok := v.live[lext]; ok && ext != Hole {
		// Steady state: the live map owns this extent (it was allocated
		// in the current generation), so an in-place overwrite is safe —
		// no snapshot can see it.
		phys := int64(v.mgr.pool.physBlock(ext))*protocol.BlockSize + in
		_, err := v.mgr.backend.WriteAt(p, phys)
		v.mu.RUnlock()
		return err
	}
	v.mu.RUnlock()
	return v.cowExtent(lext, in, p)
}

// cowExtent breaks an extent out of the chain (or materializes a thin
// hole): allocate, build the full image, write it, publish the mapping.
func (v *Volume) cowExtent(lext uint32, in int64, p []byte) error {
	v.mu.Lock()
	defer v.mu.Unlock()
	if v.dead {
		return ErrDead
	}
	if ext, ok := v.live[lext]; ok && ext != Hole {
		// Lost the race to another writer's CoW break; write in place.
		phys := int64(v.mgr.pool.physBlock(ext))*protocol.BlockSize + in
		_, err := v.mgr.backend.WriteAt(p, phys)
		return err
	}
	eb := v.extBytes()
	newExt, ok := v.mgr.pool.alloc()
	if !ok {
		return ErrNoSpace
	}
	lease := bufpool.Get(int(eb))
	buf := lease.Bytes()[:eb]
	old, mapped := v.lookupLocked(lext)
	if mapped && old != Hole {
		oldOff := int64(v.mgr.pool.physBlock(old)) * protocol.BlockSize
		if _, err := v.mgr.backend.ReadAt(buf, oldOff); err != nil {
			lease.Release()
			v.mgr.pool.release(newExt)
			return err
		}
	} else {
		zeroFill(buf)
	}
	copy(buf[in:], p)
	newOff := int64(v.mgr.pool.physBlock(newExt)) * protocol.BlockSize
	_, err := v.mgr.backend.WriteAt(buf, newOff)
	lease.Release()
	if err != nil {
		v.mgr.pool.release(newExt)
		return err
	}
	v.live[lext] = newExt
	return nil
}

// Trim discards the whole extents covered by [off, off+n): live-owned
// extents return to the pool immediately; extents inherited from the
// chain are shadowed with a Hole so they read as zeros without disturbing
// snapshots or clones. Partial extents at the edges are left alone —
// discard is advisory.
func (v *Volume) Trim(off, n int64) (freed int) {
	if n <= 0 {
		return 0
	}
	if end := v.LogicalBytes(); off+n > end {
		n = end - off
	}
	eb := v.extBytes()
	first := (off + eb - 1) / eb // first fully covered extent
	last := (off + n) / eb       // one past the last fully covered
	v.mu.Lock()
	defer v.mu.Unlock()
	if v.dead {
		return 0
	}
	for lext := first; lext < last; lext++ {
		l := uint32(lext)
		if ext, ok := v.live[l]; ok {
			if ext != Hole {
				v.mgr.pool.release(ext)
				freed++
			}
		}
		if _, chained := v.chainHasLocked(l); chained {
			v.live[l] = Hole
		} else {
			delete(v.live, l)
		}
	}
	return freed
}

// chainHasLocked reports whether any frozen layer maps lext.
func (v *Volume) chainHasLocked(lext uint32) (uint32, bool) {
	for l := v.parent; l != nil; l = l.parent {
		if e, ok := l.ents[lext]; ok {
			return e, true
		}
	}
	return 0, false
}

// Diff enumerates the logical extents written in generations (genA,
// genB], sorted ascending — the incremental backup set between two
// snapshots (genB may be the current generation to include live writes).
// genA == 0 diffs from the volume's birth: every extent allocated by
// generation genB.
func (v *Volume) Diff(genA, genB uint64) ([]uint32, error) {
	if genB < genA {
		return nil, fmt.Errorf("volume: diff generations inverted (%d > %d)", genA, genB)
	}
	v.mu.RLock()
	defer v.mu.RUnlock()
	if v.dead {
		return nil, ErrDead
	}
	if genB > v.gen {
		return nil, fmt.Errorf("volume: generation %d not reached (current %d)", genB, v.gen)
	}
	set := make(map[uint32]struct{})
	if v.gen > genA && v.gen <= genB {
		for l := range v.live {
			set[l] = struct{}{}
		}
	}
	for l := v.parent; l != nil; l = l.parent {
		if l.gen <= genA {
			break // chain gens are strictly descending
		}
		if l.gen > genB {
			continue
		}
		for e := range l.ents {
			set[e] = struct{}{}
		}
	}
	out := make([]uint32, 0, len(set))
	for e := range set {
		out = append(out, e)
	}
	sortU32(out)
	return out, nil
}

// sortU32 sorts ascending without pulling in package sort's interface
// allocation on tiny slices (insertion for short, else simple quicksort).
func sortU32(a []uint32) {
	if len(a) < 2 {
		return
	}
	if len(a) < 16 {
		for i := 1; i < len(a); i++ {
			for j := i; j > 0 && a[j] < a[j-1]; j-- {
				a[j], a[j-1] = a[j-1], a[j]
			}
		}
		return
	}
	pivot := a[len(a)/2]
	lo, hi := 0, len(a)-1
	for lo <= hi {
		for a[lo] < pivot {
			lo++
		}
		for a[hi] > pivot {
			hi--
		}
		if lo <= hi {
			a[lo], a[hi] = a[hi], a[lo]
			lo++
			hi--
		}
	}
	sortU32(a[:hi+1])
	sortU32(a[lo:])
}

// ExtentBlocks returns the manager's extent size in protocol blocks.
func (v *Volume) ExtentBlocks() uint32 { return v.mgr.extBlocks }

// Snapshots lists the volume's registered snapshot generations, sorted.
func (v *Volume) Snapshots() []uint64 {
	v.mu.RLock()
	defer v.mu.RUnlock()
	out := make([]uint64, 0, len(v.snaps))
	for g := range v.snaps {
		out = append(out, g)
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// Info is one volume's directory entry.
type Info struct {
	Name    string
	Handle  uint16
	Blocks  uint64
	Gen     uint64
	Extents uint32 // extents mapped by the live map (not Holes)
	Snaps   []uint64
}

// Config configures a Manager.
type Config struct {
	// Backend is the device store volumes allocate from. Every byte the
	// manager writes lands through it — wrap it with cache invalidation
	// before handing it over.
	Backend storage.Backend
	// FirstBlock/Blocks reserve the physical pool range in protocol
	// blocks.
	FirstBlock uint64
	Blocks     uint64
	// ExtentBlocks is the extent size in protocol blocks (default
	// DefaultExtentBlocks). Must keep extents 4 KiB-aligned so read-cache
	// pages never straddle extents.
	ExtentBlocks uint32
}

// Manager owns the extent pool and the volume registry.
type Manager struct {
	backend   storage.Backend
	pool      *Pool
	extBlocks uint32

	mu      sync.Mutex
	vols    map[string]*Volume
	handles [MaxVolumes + 1]*Volume
	nextH   uint16
}

// NewManager builds a volume manager over cfg's pool range.
func NewManager(cfg Config) (*Manager, error) {
	if cfg.Backend == nil {
		return nil, fmt.Errorf("volume: nil backend")
	}
	eb := cfg.ExtentBlocks
	if eb == 0 {
		eb = DefaultExtentBlocks
	}
	if eb%8 != 0 {
		return nil, fmt.Errorf("volume: extent size %d blocks not 4KiB-aligned", eb)
	}
	devBlocks := uint64(cfg.Backend.Size()) / protocol.BlockSize
	if cfg.FirstBlock+cfg.Blocks > devBlocks {
		return nil, fmt.Errorf("volume: pool [%d,%d) exceeds device (%d blocks)",
			cfg.FirstBlock, cfg.FirstBlock+cfg.Blocks, devBlocks)
	}
	pool, err := NewPool(cfg.FirstBlock, cfg.Blocks, eb)
	if err != nil {
		return nil, err
	}
	return &Manager{
		backend:   cfg.Backend,
		pool:      pool,
		extBlocks: eb,
		vols:      make(map[string]*Volume),
		nextH:     1,
	}, nil
}

// Pool exposes the extent pool (occupancy stats, OnFree hook).
func (m *Manager) Pool() *Pool { return m.pool }

// ExtentBlocks returns the extent size in protocol blocks.
func (m *Manager) ExtentBlocks() uint32 { return m.extBlocks }

// claimHandle finds a free handle 1..MaxVolumes. Caller holds m.mu.
func (m *Manager) claimHandle() (uint16, bool) {
	for i := 0; i < MaxVolumes; i++ {
		h := m.nextH
		m.nextH++
		if m.nextH > MaxVolumes {
			m.nextH = 1
		}
		if m.handles[h] == nil {
			return h, true
		}
	}
	return 0, false
}

// Create registers a new thin volume of the given logical size.
func (m *Manager) Create(name string, blocks uint64) (*Volume, error) {
	if name == "" || len(name) > 255 {
		return nil, fmt.Errorf("volume: bad name %q", name)
	}
	if blocks == 0 || blocks > uint64(^uint32(0))*uint64(m.extBlocks) {
		return nil, fmt.Errorf("volume: bad size %d blocks", blocks)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.vols[name]; ok {
		return nil, ErrExists
	}
	h, ok := m.claimHandle()
	if !ok {
		return nil, fmt.Errorf("volume: all %d handles live", MaxVolumes)
	}
	v := &Volume{
		mgr:    m,
		name:   name,
		handle: h,
		blocks: blocks,
		live:   make(map[uint32]uint32),
		gen:    1,
		snaps:  make(map[uint64]*layer),
	}
	m.vols[name] = v
	m.handles[h] = v
	return v, nil
}

// Get resolves a volume by name; ByHandle by wire handle.
func (m *Manager) Get(name string) (*Volume, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	v, ok := m.vols[name]
	return v, ok
}
func (m *Manager) ByHandle(h uint16) (*Volume, bool) {
	if h == 0 || h > MaxVolumes {
		return nil, false
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	v := m.handles[h]
	return v, v != nil
}

// List returns the volume directory sorted by name.
func (m *Manager) List() []Info {
	m.mu.Lock()
	vols := make([]*Volume, 0, len(m.vols))
	for _, v := range m.vols {
		vols = append(vols, v)
	}
	m.mu.Unlock()
	for i := 1; i < len(vols); i++ {
		for j := i; j > 0 && vols[j].name < vols[j-1].name; j-- {
			vols[j], vols[j-1] = vols[j-1], vols[j]
		}
	}
	out := make([]Info, 0, len(vols))
	for _, v := range vols {
		v.mu.RLock()
		mapped := uint32(0)
		for _, e := range v.live {
			if e != Hole {
				mapped++
			}
		}
		info := Info{
			Name:    v.name,
			Handle:  v.handle,
			Blocks:  v.blocks,
			Gen:     v.gen,
			Extents: mapped,
		}
		for g := range v.snaps {
			info.Snaps = append(info.Snaps, g)
		}
		v.mu.RUnlock()
		for i := 1; i < len(info.Snaps); i++ {
			for j := i; j > 0 && info.Snaps[j] < info.Snaps[j-1]; j-- {
				info.Snaps[j], info.Snaps[j-1] = info.Snaps[j-1], info.Snaps[j]
			}
		}
		out = append(out, info)
	}
	return out
}

// Snapshot freezes the volume's live map under its current generation and
// returns that generation. O(1): no extent is copied or even touched.
func (m *Manager) Snapshot(name string) (uint64, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	v, ok := m.vols[name]
	if !ok {
		return 0, ErrNotFound
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if v.dead {
		return 0, ErrDead
	}
	l := &layer{
		gen:    v.gen,
		parent: v.parent,
		ents:   v.live,
		refs:   2, // chain child (the volume) + the snapshot registry
	}
	v.parent = l
	v.live = make(map[uint32]uint32)
	v.snaps[l.gen] = l
	gen := l.gen
	v.gen++
	return gen, nil
}

// Clone creates a writable volume rooted at src's snapshot generation
// gen. Instant: the clone shares every frozen extent through the chain
// and CoWs on write like its source.
func (m *Manager) Clone(src string, gen uint64, name string) (*Volume, error) {
	if name == "" || len(name) > 255 {
		return nil, fmt.Errorf("volume: bad name %q", name)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	sv, ok := m.vols[src]
	if !ok {
		return nil, ErrNotFound
	}
	if _, ok := m.vols[name]; ok {
		return nil, ErrExists
	}
	sv.mu.RLock()
	l, ok := sv.snaps[gen]
	blocks := sv.blocks
	sv.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("volume: %s has no snapshot generation %d", src, gen)
	}
	h, hok := m.claimHandle()
	if !hok {
		return nil, fmt.Errorf("volume: all %d handles live", MaxVolumes)
	}
	l.refs++
	v := &Volume{
		mgr:    m,
		name:   name,
		handle: h,
		blocks: blocks,
		live:   make(map[uint32]uint32),
		parent: l,
		gen:    gen + 1,
		snaps:  make(map[uint64]*layer),
	}
	m.vols[name] = v
	m.handles[h] = v
	return v, nil
}

// Delete removes a volume (gen == 0) or unregisters one snapshot
// generation (gen != 0). Extents return to the pool as soon as no layer
// or live map owns them — a snapshot still referenced by a clone keeps
// its extents until the clone dies too. Returns the number of extents
// freed.
func (m *Manager) Delete(name string, gen uint64) (int, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	v, ok := m.vols[name]
	if !ok {
		return 0, ErrNotFound
	}
	if gen != 0 {
		v.mu.Lock()
		l, ok := v.snaps[gen]
		if ok {
			delete(v.snaps, gen)
		}
		v.mu.Unlock()
		if !ok {
			return 0, fmt.Errorf("volume: %s has no snapshot generation %d", name, gen)
		}
		return m.unrefLayer(l), nil
	}
	v.mu.Lock()
	v.dead = true
	freed := 0
	for _, e := range v.live {
		if e != Hole {
			m.pool.release(e)
			freed++
		}
	}
	v.live = nil
	snaps := v.snaps
	v.snaps = nil
	chain := v.parent
	v.parent = nil
	v.mu.Unlock()
	delete(m.vols, name)
	m.handles[v.handle] = nil
	if chain != nil {
		freed += m.unrefLayer(chain)
	}
	for _, l := range snaps {
		freed += m.unrefLayer(l)
	}
	return freed, nil
}

// unrefLayer drops one reference; at zero the layer's extents return to
// the pool and the reference it holds on its parent cascades. Caller
// holds m.mu.
func (m *Manager) unrefLayer(l *layer) int {
	freed := 0
	for l != nil {
		l.refs--
		if l.refs > 0 {
			return freed
		}
		for _, e := range l.ents {
			if e != Hole {
				m.pool.release(e)
				freed++
			}
		}
		l.ents = nil
		next := l.parent
		l.parent = nil
		l = next
	}
	return freed
}
