package volume

import (
	"bytes"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"github.com/reflex-go/reflex/internal/protocol"
	"github.com/reflex-go/reflex/internal/storage"
)

// testMgr builds a manager over a fresh Mem backend with small extents
// (16 blocks = 8 KiB) so a few writes exercise multi-extent paths.
func testMgr(t testing.TB, poolExtents int) *Manager {
	t.Helper()
	const extBlocks = 16
	blocks := uint64(poolExtents * extBlocks)
	m, err := NewManager(Config{
		Backend:      storage.NewMem(int64(blocks) * protocol.BlockSize),
		FirstBlock:   0,
		Blocks:       blocks,
		ExtentBlocks: extBlocks,
	})
	if err != nil {
		t.Fatalf("NewManager: %v", err)
	}
	return m
}

func pat(seed byte, n int) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = seed + byte(i)
	}
	return b
}

func TestVolumeThinReadZeros(t *testing.T) {
	m := testMgr(t, 64)
	v, err := m.Create("v0", 1024)
	if err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 4096)
	got[17] = 0xFF
	if err := v.ReadAt(got, 123*protocol.BlockSize); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, make([]byte, 4096)) {
		t.Fatal("unwritten volume read nonzero bytes")
	}
	if m.Pool().Allocated() != 0 {
		t.Fatalf("thin volume allocated %d extents before any write", m.Pool().Allocated())
	}
}

func TestVolumeWriteReadBack(t *testing.T) {
	m := testMgr(t, 64)
	v, _ := m.Create("v0", 1024)
	// Straddle three 8 KiB extents with one write at an odd offset.
	data := pat(3, 20_000)
	off := int64(5 * 512)
	if err := v.WriteAt(data, off); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(data))
	if err := v.ReadAt(got, off); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("read-back mismatch")
	}
	// Bytes before the write still read zero.
	head := make([]byte, off)
	if err := v.ReadAt(head, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(head, make([]byte, off)) {
		t.Fatal("bytes before first write not zero")
	}
	if a := m.Pool().Allocated(); a != 3 {
		t.Fatalf("allocated %d extents, want 3", a)
	}
}

func TestVolumeRange(t *testing.T) {
	m := testMgr(t, 8)
	v, _ := m.Create("v0", 64)
	if err := v.WriteAt(make([]byte, 1024), 64*protocol.BlockSize-512); err != ErrRange {
		t.Fatalf("overflow write: got %v, want ErrRange", err)
	}
	if err := v.ReadAt(make([]byte, 1024), -1); err != ErrRange {
		t.Fatalf("negative read: got %v, want ErrRange", err)
	}
}

func TestVolumeNoSpace(t *testing.T) {
	m := testMgr(t, 2)
	v, _ := m.Create("v0", 1024) // thin: logical far exceeds pool
	if err := v.WriteAt(make([]byte, 2*16*512), 0); err != nil {
		t.Fatal(err)
	}
	if err := v.WriteAt([]byte{1}, 3*16*512); err != ErrNoSpace {
		t.Fatalf("exhausted pool: got %v, want ErrNoSpace", err)
	}
}

func TestSnapshotCoWIsolation(t *testing.T) {
	m := testMgr(t, 64)
	v, _ := m.Create("v0", 1024)
	before := pat(1, 8192)
	if err := v.WriteAt(before, 0); err != nil {
		t.Fatal(err)
	}
	gen, err := m.Snapshot("v0")
	if err != nil {
		t.Fatal(err)
	}
	if gen != 1 {
		t.Fatalf("first snapshot gen = %d, want 1", gen)
	}
	// Overwrite post-snapshot: live changes, snapshot image must not.
	after := pat(9, 8192)
	if err := v.WriteAt(after, 0); err != nil {
		t.Fatal(err)
	}
	live := make([]byte, 8192)
	snap := make([]byte, 8192)
	if err := v.ReadAt(live, 0); err != nil {
		t.Fatal(err)
	}
	if err := v.ReadAtGen(snap, 0, gen); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(live, after) {
		t.Fatal("live image lost post-snapshot write")
	}
	if !bytes.Equal(snap, before) {
		t.Fatal("snapshot image changed after CoW write")
	}
}

func TestCloneWritableAndIndependent(t *testing.T) {
	m := testMgr(t, 64)
	v, _ := m.Create("src", 1024)
	base := pat(5, 16384)
	if err := v.WriteAt(base, 0); err != nil {
		t.Fatal(err)
	}
	gen, _ := m.Snapshot("src")
	c, err := m.Clone("src", gen, "clone")
	if err != nil {
		t.Fatal(err)
	}
	// Clone starts as the snapshot image.
	got := make([]byte, len(base))
	if err := c.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, base) {
		t.Fatal("clone does not match snapshot image")
	}
	// Writes to the clone leave source and snapshot untouched, and vice
	// versa.
	if err := c.WriteAt(pat(77, 4096), 0); err != nil {
		t.Fatal(err)
	}
	if err := v.WriteAt(pat(99, 4096), 8192); err != nil {
		t.Fatal(err)
	}
	if err := v.ReadAtGen(got, 0, gen); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, base) {
		t.Fatal("snapshot image disturbed by clone/source writes")
	}
	cGot := make([]byte, 4096)
	if err := c.ReadAt(cGot, 8192); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(cGot, base[8192:8192+4096]) {
		t.Fatal("source write leaked into clone")
	}
}

func TestDiffEnumeratesWindow(t *testing.T) {
	m := testMgr(t, 64)
	v, _ := m.Create("v0", 2048)
	eb := int64(16 * 512)
	w := func(ext int) {
		if err := v.WriteAt([]byte{0xAB}, int64(ext)*eb); err != nil {
			t.Fatal(err)
		}
	}
	w(0)
	w(1)
	g1, _ := m.Snapshot("v0") // gen 1 holds {0,1}
	w(1)                      // CoW
	w(5)
	g2, _ := m.Snapshot("v0") // gen 2 holds {1,5}
	w(7)
	d, err := v.Diff(g1, g2)
	if err != nil {
		t.Fatal(err)
	}
	if want := []uint32{1, 5}; !equalU32(d, want) {
		t.Fatalf("Diff(%d,%d) = %v, want %v", g1, g2, d, want)
	}
	// Diff to the current generation includes live writes.
	d, err = v.Diff(g2, v.Gen())
	if err != nil {
		t.Fatal(err)
	}
	if want := []uint32{7}; !equalU32(d, want) {
		t.Fatalf("Diff(%d,cur) = %v, want %v", g2, d, want)
	}
	// Full diff from birth covers everything ever written.
	d, err = v.Diff(0, v.Gen())
	if err != nil {
		t.Fatal(err)
	}
	if want := []uint32{0, 1, 5, 7}; !equalU32(d, want) {
		t.Fatalf("Diff(0,cur) = %v, want %v", d, want)
	}
	if _, err := v.Diff(5, 99); err == nil {
		t.Fatal("Diff beyond current gen succeeded")
	}
}

func equalU32(a, b []uint32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestTrimFreesAndReadsZero(t *testing.T) {
	m := testMgr(t, 64)
	v, _ := m.Create("v0", 1024)
	eb := int64(16 * 512)
	if err := v.WriteAt(pat(1, int(4*eb)), 0); err != nil {
		t.Fatal(err)
	}
	if a := m.Pool().Allocated(); a != 4 {
		t.Fatalf("allocated %d, want 4", a)
	}
	// Trim the middle two extents; partial edges must be left alone.
	freed := v.Trim(eb-512, 2*eb+1024+512)
	if freed != 2 {
		t.Fatalf("freed %d extents, want 2", freed)
	}
	if a := m.Pool().Allocated(); a != 2 {
		t.Fatalf("allocated %d after trim, want 2", a)
	}
	got := make([]byte, 4*eb)
	if err := v.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	want := pat(1, int(4*eb))
	for i := eb; i < 3*eb; i++ {
		want[i] = 0
	}
	if !bytes.Equal(got, want) {
		t.Fatal("trim read-back mismatch")
	}
}

func TestTrimOverSnapshotIsHole(t *testing.T) {
	m := testMgr(t, 64)
	v, _ := m.Create("v0", 1024)
	eb := int64(16 * 512)
	base := pat(3, int(eb))
	if err := v.WriteAt(base, 0); err != nil {
		t.Fatal(err)
	}
	gen, _ := m.Snapshot("v0")
	// Trim post-snapshot: live reads zeros, the snapshot keeps its data,
	// no extent is freed (the layer still owns it).
	if freed := v.Trim(0, eb); freed != 0 {
		t.Fatalf("trim over snapshotted extent freed %d", freed)
	}
	got := make([]byte, eb)
	if err := v.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, make([]byte, eb)) {
		t.Fatal("trimmed extent not reading zeros")
	}
	if err := v.ReadAtGen(got, 0, gen); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, base) {
		t.Fatal("snapshot lost data to a live trim")
	}
	// Writing after the trim materializes a fresh zero-based extent.
	if err := v.WriteAt([]byte{0xEE}, 100); err != nil {
		t.Fatal(err)
	}
	if err := v.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	if got[100] != 0xEE || got[0] != 0 || got[101] != 0 {
		t.Fatal("write-after-trim resurrected snapshot bytes")
	}
}

func TestDeleteReclaims(t *testing.T) {
	m := testMgr(t, 64)
	v, _ := m.Create("v0", 1024)
	eb := int64(16 * 512)
	if err := v.WriteAt(pat(1, int(2*eb)), 0); err != nil {
		t.Fatal(err)
	}
	gen, _ := m.Snapshot("v0")
	if err := v.WriteAt(pat(2, int(2*eb)), 0); err != nil {
		t.Fatal(err)
	}
	c, _ := m.Clone("v0", gen, "c0")
	if err := c.WriteAt(pat(9, int(eb)), 4*eb); err != nil {
		t.Fatal(err)
	}
	// 2 (snap layer) + 2 (v live CoW) + 1 (clone live) allocated.
	if a := m.Pool().Allocated(); a != 5 {
		t.Fatalf("allocated %d, want 5", a)
	}
	// Deleting the source frees its live extents but NOT the snapshot
	// layer — the clone's chain still needs it.
	if _, err := m.Delete("v0", 0); err != nil {
		t.Fatal(err)
	}
	if a := m.Pool().Allocated(); a != 3 {
		t.Fatalf("allocated %d after source delete, want 3", a)
	}
	got := make([]byte, 2*eb)
	if err := c.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, pat(1, int(2*eb))) {
		t.Fatal("clone lost shared extents when source died")
	}
	// Deleting the clone cascades: everything returns to the pool.
	if _, err := m.Delete("c0", 0); err != nil {
		t.Fatal(err)
	}
	if a := m.Pool().Allocated(); a != 0 {
		t.Fatalf("allocated %d after full delete, want 0", a)
	}
	if _, ok := m.ByHandle(v.Handle()); ok {
		t.Fatal("dead handle still resolves")
	}
	if err := v.ReadAt(got, 0); err != ErrDead {
		t.Fatalf("read on deleted volume: %v, want ErrDead", err)
	}
}

func TestSnapshotDeleteKeepsChainUntilUnused(t *testing.T) {
	m := testMgr(t, 64)
	v, _ := m.Create("v0", 1024)
	eb := int64(16 * 512)
	if err := v.WriteAt(pat(1, int(eb)), 0); err != nil {
		t.Fatal(err)
	}
	gen, _ := m.Snapshot("v0")
	// Deleting the snapshot alone frees nothing (live chain still walks
	// the layer) but unregisters the generation.
	if freed, err := m.Delete("v0", gen); err != nil || freed != 0 {
		t.Fatalf("snapshot delete: freed %d err %v", freed, err)
	}
	got := make([]byte, eb)
	if err := v.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, pat(1, int(eb))) {
		t.Fatal("live image lost data when snapshot unregistered")
	}
	if len(v.Snapshots()) != 0 {
		t.Fatal("snapshot still listed after delete")
	}
	// CoW-overwriting then deleting the volume reclaims everything.
	if err := v.WriteAt(pat(2, int(eb)), 0); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Delete("v0", 0); err != nil {
		t.Fatal(err)
	}
	if a := m.Pool().Allocated(); a != 0 {
		t.Fatalf("allocated %d after delete, want 0", a)
	}
}

func TestTranslate(t *testing.T) {
	m := testMgr(t, 64)
	v, _ := m.Create("v0", 1024)
	eb := int64(16 * 512)
	if _, ok := v.Translate(0, 4096); ok {
		t.Fatal("hole translated")
	}
	if err := v.WriteAt(pat(1, int(eb)), eb); err != nil {
		t.Fatal(err)
	}
	poff, ok := v.Translate(eb+512, 4096)
	if !ok {
		t.Fatal("mapped extent did not translate")
	}
	got := make([]byte, 4096)
	if _, err := m.backend.ReadAt(got, poff); err != nil {
		t.Fatal(err)
	}
	want := pat(1, int(eb))[512 : 512+4096]
	if !bytes.Equal(got, want) {
		t.Fatal("translated offset reads wrong bytes")
	}
	if _, ok := v.Translate(2*eb-512, 1024); ok {
		t.Fatal("extent-straddling range translated")
	}
}

func TestImageRoundtrip(t *testing.T) {
	m := testMgr(t, 64)
	v, _ := m.Create("vol-a", 2048)
	eb := int64(16 * 512)
	if err := v.WriteAt(pat(1, int(2*eb)), 0); err != nil {
		t.Fatal(err)
	}
	g1, _ := m.Snapshot("vol-a")
	if err := v.WriteAt(pat(2, int(eb)), 0); err != nil {
		t.Fatal(err)
	}
	v.Trim(3*eb, eb) // no-op trim keeps codec honest about empty state
	img := v.Export()
	b := img.Marshal()
	got, err := UnmarshalImage(b)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != img.Name || got.Gen != img.Gen || got.Blocks != img.Blocks ||
		len(got.Layers) != len(img.Layers) || len(got.Snaps) != 1 || got.Snaps[0] != g1 {
		t.Fatalf("roundtrip mismatch: %+v vs %+v", got, img)
	}
	for i := range img.Layers {
		if img.Layers[i].Gen != got.Layers[i].Gen || len(img.Layers[i].Ents) != len(got.Layers[i].Ents) {
			t.Fatalf("layer %d mismatch", i)
		}
		for j := range img.Layers[i].Ents {
			if img.Layers[i].Ents[j] != got.Layers[i].Ents[j] {
				t.Fatalf("layer %d ent %d mismatch", i, j)
			}
		}
	}
}

func TestImageStrictUnmarshal(t *testing.T) {
	m := testMgr(t, 64)
	v, _ := m.Create("vol-a", 2048)
	if err := v.WriteAt(pat(1, 8192), 0); err != nil {
		t.Fatal(err)
	}
	m.Snapshot("vol-a")
	good := v.Export().Marshal()
	cases := []struct {
		name string
		mut  func([]byte) []byte
	}{
		{"empty", func(b []byte) []byte { return nil }},
		{"bad magic", func(b []byte) []byte { b[0] ^= 0xFF; return b }},
		{"bad version", func(b []byte) []byte { b[5] = 99; return b }},
		{"truncated", func(b []byte) []byte { return b[:len(b)-1] }},
		{"trailing", func(b []byte) []byte { return append(b, 0) }},
		{"every prefix", nil},
	}
	for _, tc := range cases {
		if tc.mut == nil {
			for i := 0; i < len(good); i++ {
				if _, err := UnmarshalImage(append([]byte{}, good[:i]...)); err == nil {
					t.Fatalf("prefix of %d bytes decoded", i)
				}
			}
			continue
		}
		b := tc.mut(append([]byte{}, good...))
		if _, err := UnmarshalImage(b); err == nil {
			t.Fatalf("%s: decoded", tc.name)
		}
	}
}

func TestImportRebuildsVolume(t *testing.T) {
	m := testMgr(t, 64)
	v, _ := m.Create("vol-a", 2048)
	eb := int64(16 * 512)
	if err := v.WriteAt(pat(1, int(2*eb)), 0); err != nil {
		t.Fatal(err)
	}
	g1, _ := m.Snapshot("vol-a")
	if err := v.WriteAt(pat(2, int(eb)), 0); err != nil {
		t.Fatal(err)
	}
	img := v.Export()
	want := make([]byte, 2*eb)
	if err := v.ReadAt(want, 0); err != nil {
		t.Fatal(err)
	}
	wantSnap := make([]byte, 2*eb)
	if err := v.ReadAtGen(wantSnap, 0, g1); err != nil {
		t.Fatal(err)
	}
	// Drop the registration without releasing extents (a crash), then
	// replay the journal image onto the same device.
	m.mu.Lock()
	delete(m.vols, "vol-a")
	m.handles[v.handle] = nil
	m.mu.Unlock()
	alloc := m.Pool().Allocated()
	m.Pool().mu.Lock()
	// Crash lost the in-memory pool state: rebuild free list as if booting.
	m.Pool().free = m.Pool().free[:0]
	for i := int(m.Pool().total) - 1; i >= 0; i-- {
		m.Pool().free = append(m.Pool().free, uint32(i))
	}
	m.Pool().allocated = 0
	m.Pool().mu.Unlock()
	_ = alloc

	r, err := m.Import(img)
	if err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 2*eb)
	if err := r.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("imported live image mismatch")
	}
	if err := r.ReadAtGen(got, 0, g1); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, wantSnap) {
		t.Fatal("imported snapshot image mismatch")
	}
	// The imported volume's extents are claimed: a second import of the
	// same image must fail instead of double-owning extents.
	if _, err := m.Import(img); err == nil {
		t.Fatal("double import succeeded")
	}
}

// TestVolumeSteadyStateAllocs is the package-level half of the pcore
// zero-alloc acceptance: once an extent is live-owned, reads and in-place
// overwrites allocate nothing.
func TestVolumeSteadyStateAllocs(t *testing.T) {
	m := testMgr(t, 64)
	v, _ := m.Create("v0", 1024)
	buf := pat(7, 4096)
	if err := v.WriteAt(buf, 0); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 4096)
	allocs := testing.AllocsPerRun(200, func() {
		if err := v.WriteAt(buf, 0); err != nil {
			t.Fatal(err)
		}
		if err := v.ReadAt(got, 0); err != nil {
			t.Fatal(err)
		}
		if _, ok := v.Translate(0, 4096); !ok {
			t.Fatal("translate failed")
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state volume I/O allocates %.1f/op, want 0", allocs)
	}
}

// refVolume is the flat-array model the fuzz test checks against: one
// byte slice per named volume plus per-snapshot frozen copies.
type refVolume struct {
	live  []byte
	snaps map[uint64][]byte
}

// TestVolumePropertyFuzz drives random write/snapshot/clone/trim/delete
// interleavings against the extent-map implementation and a flat
// reference model; every read-back (live and per-snapshot) must match.
// Runs under -race via the normal test binary.
func TestVolumePropertyFuzz(t *testing.T) {
	seeds := []int64{1, 2, 42}
	if testing.Short() {
		seeds = seeds[:1]
	}
	for _, seed := range seeds {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) { volumeFuzzRun(t, seed) })
	}
}

func volumeFuzzRun(t *testing.T, seed int64) {
	// The pool is sized so it can never exhaust (≤7 volumes × ≤8 owning
	// maps × 32 extents each): a mid-write ErrNoSpace would leave a
	// partially applied multi-extent write and the flat model can't see
	// how far it got.
	const (
		volBlocks = 512 // 256 KiB logical per volume
		poolExts  = 2048
		steps     = 2000
	)
	rng := rand.New(rand.NewSource(seed))
	m := testMgr(t, poolExts)
	refs := make(map[string]*refVolume)
	names := []string{}
	logical := volBlocks * protocol.BlockSize

	create := func(name string) {
		if _, err := m.Create(name, volBlocks); err != nil {
			t.Fatalf("create %s: %v", name, err)
		}
		refs[name] = &refVolume{live: make([]byte, logical), snaps: map[uint64][]byte{}}
		names = append(names, name)
	}
	create("v0")

	for step := 0; step < steps; step++ {
		name := names[rng.Intn(len(names))]
		ref := refs[name]
		vol, ok := m.Get(name)
		if !ok {
			t.Fatalf("step %d: %s vanished", step, name)
		}
		switch op := rng.Intn(100); {
		case op < 55: // write
			off := rng.Intn(logical)
			n := 1 + rng.Intn(12000)
			if off+n > logical {
				n = logical - off
			}
			data := make([]byte, n)
			rng.Read(data)
			if err := vol.WriteAt(data, int64(off)); err != nil {
				t.Fatalf("step %d write: %v", step, err)
			}
			copy(ref.live[off:], data)
		case op < 65: // read-back a random span (checked below anyway)
			off := rng.Intn(logical)
			n := 1 + rng.Intn(16000)
			if off+n > logical {
				n = logical - off
			}
			got := make([]byte, n)
			if err := vol.ReadAt(got, int64(off)); err != nil {
				t.Fatalf("step %d read: %v", step, err)
			}
			if !bytes.Equal(got, ref.live[off:off+n]) {
				t.Fatalf("step %d: read mismatch at %d+%d on %s", step, off, n, name)
			}
		case op < 75: // snapshot
			if len(ref.snaps) > 6 {
				continue
			}
			gen, err := m.Snapshot(name)
			if err != nil {
				t.Fatalf("step %d snapshot: %v", step, err)
			}
			ref.snaps[gen] = append([]byte(nil), ref.live...)
		case op < 85: // trim
			off := rng.Intn(logical)
			n := 1 + rng.Intn(64000)
			if off+n > logical {
				n = logical - off
			}
			vol.Trim(int64(off), int64(n))
			// Model: only fully covered extents are discarded.
			eb := int(vol.ExtentBlocks()) * protocol.BlockSize
			first := (off + eb - 1) / eb
			last := (off + n) / eb
			for e := first; e < last; e++ {
				for i := e * eb; i < (e+1)*eb; i++ {
					ref.live[i] = 0
				}
			}
		case op < 92: // clone from a random snapshot
			if len(ref.snaps) == 0 || len(names) > 6 {
				continue
			}
			gens := []uint64{}
			for g := range ref.snaps {
				gens = append(gens, g)
			}
			gen := gens[rng.Intn(len(gens))]
			cname := fmt.Sprintf("c%d", step)
			if _, err := m.Clone(name, gen, cname); err != nil {
				t.Fatalf("step %d clone: %v", step, err)
			}
			refs[cname] = &refVolume{
				live:  append([]byte(nil), ref.snaps[gen]...),
				snaps: map[uint64][]byte{},
			}
			names = append(names, cname)
		default: // delete a snapshot or a whole volume
			if len(ref.snaps) > 0 && rng.Intn(2) == 0 {
				for g := range ref.snaps {
					if _, err := m.Delete(name, g); err != nil {
						t.Fatalf("step %d snap delete: %v", step, err)
					}
					delete(ref.snaps, g)
					break
				}
			} else if len(names) > 1 {
				if _, err := m.Delete(name, 0); err != nil {
					t.Fatalf("step %d delete: %v", step, err)
				}
				delete(refs, name)
				for i, n2 := range names {
					if n2 == name {
						names = append(names[:i], names[i+1:]...)
						break
					}
				}
			}
		}
	}

	// Final sweep: every surviving volume's live image and every
	// registered snapshot must match the model byte-for-byte.
	for _, name := range names {
		ref := refs[name]
		vol, _ := m.Get(name)
		got := make([]byte, logical)
		if err := vol.ReadAt(got, 0); err != nil {
			t.Fatalf("final read %s: %v", name, err)
		}
		if !bytes.Equal(got, ref.live) {
			t.Fatalf("final live mismatch on %s", name)
		}
		for gen, want := range ref.snaps {
			if err := vol.ReadAtGen(got, 0, gen); err != nil {
				t.Fatalf("final snap read %s@%d: %v", name, gen, err)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("final snapshot mismatch on %s@%d", name, gen)
			}
		}
	}
	// Extent accounting: deleting everything returns the pool to empty.
	for _, name := range append([]string(nil), names...) {
		if _, err := m.Delete(name, 0); err != nil {
			t.Fatalf("final delete %s: %v", name, err)
		}
	}
	if a := m.Pool().Allocated(); a != 0 {
		t.Fatalf("%d extents leaked after deleting all volumes", a)
	}
}

// TestVolumeConcurrentReadWrite exercises the shared-lock fast path under
// -race: concurrent readers, in-place writers and a snapshotter.
func TestVolumeConcurrentReadWrite(t *testing.T) {
	m := testMgr(t, 256)
	v, _ := m.Create("v0", 2048)
	if err := v.WriteAt(make([]byte, 2048*protocol.BlockSize), 0); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			buf := pat(byte(w), 4096)
			rng := rand.New(rand.NewSource(int64(w)))
			for {
				select {
				case <-stop:
					return
				default:
				}
				off := int64(rng.Intn(250)) * 4096
				if err := v.WriteAt(buf, off); err != nil && err != ErrNoSpace {
					t.Errorf("writer: %v", err)
					return
				}
			}
		}(w)
	}
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			got := make([]byte, 4096)
			rng := rand.New(rand.NewSource(int64(100 + r)))
			for {
				select {
				case <-stop:
					return
				default:
				}
				if err := v.ReadAt(got, int64(rng.Intn(250))*4096); err != nil {
					t.Errorf("reader: %v", err)
					return
				}
			}
		}(r)
	}
	for i := 0; i < 5; i++ {
		if _, err := m.Snapshot("v0"); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
}
