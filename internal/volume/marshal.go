package volume

import (
	"encoding/binary"
	"fmt"
)

// Image is a volume's complete extent-map state as pure data — the unit
// that gets journaled or shipped. Export captures it under the volume
// lock; Marshal/UnmarshalImage are the strict wire codec (exact length,
// sorted unique entries, bounded counts — a corrupt journal fails loudly
// instead of materializing a wrong map).
type Image struct {
	Name         string
	Blocks       uint64
	ExtentBlocks uint32
	Gen          uint64
	// Layers holds the frozen chain oldest-first, then the live map last
	// (its Gen equals the volume's current generation).
	Layers []LayerImage
	// Snaps lists which layer generations are registered snapshots.
	Snaps []uint64
}

// LayerImage is one generation's extent map.
type LayerImage struct {
	Gen  uint64
	Ents []Extent
}

// Extent maps one logical extent index to a pool extent index (or Hole).
type Extent struct {
	Logical uint32
	Phys    uint32
}

// imageMagic / imageVersion head every marshaled image.
const (
	imageMagic   = 0x5246564C // "RFVL"
	imageVersion = 1
)

// Export snapshots the volume's full map state.
func (v *Volume) Export() Image {
	v.mu.RLock()
	defer v.mu.RUnlock()
	img := Image{
		Name:         v.name,
		Blocks:       v.blocks,
		ExtentBlocks: v.mgr.extBlocks,
		Gen:          v.gen,
	}
	// Chain newest-first → collect then reverse to oldest-first.
	var chain []*layer
	for l := v.parent; l != nil; l = l.parent {
		chain = append(chain, l)
	}
	for i := len(chain) - 1; i >= 0; i-- {
		img.Layers = append(img.Layers, layerImage(chain[i].gen, chain[i].ents))
	}
	img.Layers = append(img.Layers, layerImage(v.gen, v.live))
	for g := range v.snaps {
		img.Snaps = append(img.Snaps, g)
	}
	for i := 1; i < len(img.Snaps); i++ {
		for j := i; j > 0 && img.Snaps[j] < img.Snaps[j-1]; j-- {
			img.Snaps[j], img.Snaps[j-1] = img.Snaps[j-1], img.Snaps[j]
		}
	}
	return img
}

func layerImage(gen uint64, ents map[uint32]uint32) LayerImage {
	li := LayerImage{Gen: gen, Ents: make([]Extent, 0, len(ents))}
	for l, p := range ents {
		li.Ents = append(li.Ents, Extent{Logical: l, Phys: p})
	}
	// Sort by logical — the codec requires (and enforces) strict order.
	for i := 1; i < len(li.Ents); i++ {
		for j := i; j > 0 && li.Ents[j].Logical < li.Ents[j-1].Logical; j-- {
			li.Ents[j], li.Ents[j-1] = li.Ents[j-1], li.Ents[j]
		}
	}
	return li
}

// Marshal encodes the image:
//
//	magic u32 | version u16 | nameLen u16 | name |
//	blocks u64 | extentBlocks u32 | gen u64 |
//	layerCount u32 | per layer: gen u64, entCount u32,
//	    entries (logical u32, phys u32) sorted strictly by logical |
//	snapCount u32 | snap gens u64 each, strictly ascending
func (img Image) Marshal() []byte {
	n := 4 + 2 + 2 + len(img.Name) + 8 + 4 + 8 + 4
	for _, l := range img.Layers {
		n += 8 + 4 + 8*len(l.Ents)
	}
	n += 4 + 8*len(img.Snaps)
	b := make([]byte, 0, n)
	b = binary.BigEndian.AppendUint32(b, imageMagic)
	b = binary.BigEndian.AppendUint16(b, imageVersion)
	b = binary.BigEndian.AppendUint16(b, uint16(len(img.Name)))
	b = append(b, img.Name...)
	b = binary.BigEndian.AppendUint64(b, img.Blocks)
	b = binary.BigEndian.AppendUint32(b, img.ExtentBlocks)
	b = binary.BigEndian.AppendUint64(b, img.Gen)
	b = binary.BigEndian.AppendUint32(b, uint32(len(img.Layers)))
	for _, l := range img.Layers {
		b = binary.BigEndian.AppendUint64(b, l.Gen)
		b = binary.BigEndian.AppendUint32(b, uint32(len(l.Ents)))
		for _, e := range l.Ents {
			b = binary.BigEndian.AppendUint32(b, e.Logical)
			b = binary.BigEndian.AppendUint32(b, e.Phys)
		}
	}
	b = binary.BigEndian.AppendUint32(b, uint32(len(img.Snaps)))
	for _, g := range img.Snaps {
		b = binary.BigEndian.AppendUint64(b, g)
	}
	return b
}

// maxImageEnts bounds any single count field so a corrupt length can't
// drive a giant allocation before validation catches it.
const maxImageEnts = 1 << 24

// UnmarshalImage decodes and validates a marshaled image. Strict: short
// buffers, trailing bytes, unsorted or duplicate entries, out-of-range
// names and non-ascending layer generations are all errors.
func UnmarshalImage(b []byte) (Image, error) {
	var img Image
	r := reader{b: b}
	if m := r.u32(); m != imageMagic {
		return img, fmt.Errorf("volume: bad image magic %#x", m)
	}
	if v := r.u16(); v != imageVersion {
		return img, fmt.Errorf("volume: unsupported image version %d", v)
	}
	nameLen := int(r.u16())
	name := r.bytes(nameLen)
	if r.err != nil {
		return img, r.err
	}
	if nameLen == 0 || nameLen > 255 {
		return img, fmt.Errorf("volume: bad image name length %d", nameLen)
	}
	img.Name = string(name)
	img.Blocks = r.u64()
	img.ExtentBlocks = r.u32()
	img.Gen = r.u64()
	if r.err == nil && (img.Blocks == 0 || img.ExtentBlocks == 0) {
		return img, fmt.Errorf("volume: zero size in image")
	}
	nLayers := int(r.u32())
	if r.err != nil {
		return img, r.err
	}
	if nLayers == 0 || nLayers > maxImageEnts {
		return img, fmt.Errorf("volume: bad layer count %d", nLayers)
	}
	prevGen := uint64(0)
	for i := 0; i < nLayers; i++ {
		gen := r.u64()
		nEnts := int(r.u32())
		if r.err != nil {
			return img, r.err
		}
		if gen <= prevGen && i > 0 {
			return img, fmt.Errorf("volume: layer generations not ascending (%d after %d)", gen, prevGen)
		}
		if gen == 0 || nEnts > maxImageEnts {
			return img, fmt.Errorf("volume: bad layer (gen %d, %d entries)", gen, nEnts)
		}
		prevGen = gen
		li := LayerImage{Gen: gen, Ents: make([]Extent, 0, min(nEnts, 4096))}
		prevLog := int64(-1)
		for j := 0; j < nEnts; j++ {
			log := r.u32()
			phys := r.u32()
			if r.err != nil {
				return img, r.err
			}
			if int64(log) <= prevLog {
				return img, fmt.Errorf("volume: layer %d entries not strictly sorted at %d", gen, log)
			}
			prevLog = int64(log)
			li.Ents = append(li.Ents, Extent{Logical: log, Phys: phys})
		}
		img.Layers = append(img.Layers, li)
	}
	if last := img.Layers[len(img.Layers)-1].Gen; last != img.Gen {
		return img, fmt.Errorf("volume: live layer gen %d != volume gen %d", last, img.Gen)
	}
	nSnaps := int(r.u32())
	if r.err != nil {
		return img, r.err
	}
	if nSnaps > maxImageEnts {
		return img, fmt.Errorf("volume: bad snapshot count %d", nSnaps)
	}
	prevSnap := uint64(0)
	for i := 0; i < nSnaps; i++ {
		g := r.u64()
		if r.err != nil {
			return img, r.err
		}
		if g <= prevSnap {
			return img, fmt.Errorf("volume: snapshot gens not ascending at %d", g)
		}
		prevSnap = g
		img.Snaps = append(img.Snaps, g)
	}
	if len(r.b) != 0 {
		return img, fmt.Errorf("volume: %d trailing bytes after image", len(r.b))
	}
	return img, nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// reader is a sticky-error big-endian cursor.
type reader struct {
	b   []byte
	err error
}

func (r *reader) fail() {
	if r.err == nil {
		r.err = fmt.Errorf("volume: truncated image")
	}
}
func (r *reader) u16() uint16 {
	if r.err != nil || len(r.b) < 2 {
		r.fail()
		return 0
	}
	v := binary.BigEndian.Uint16(r.b)
	r.b = r.b[2:]
	return v
}
func (r *reader) u32() uint32 {
	if r.err != nil || len(r.b) < 4 {
		r.fail()
		return 0
	}
	v := binary.BigEndian.Uint32(r.b)
	r.b = r.b[4:]
	return v
}
func (r *reader) u64() uint64 {
	if r.err != nil || len(r.b) < 8 {
		r.fail()
		return 0
	}
	v := binary.BigEndian.Uint64(r.b)
	r.b = r.b[8:]
	return v
}
func (r *reader) bytes(n int) []byte {
	if r.err != nil || n < 0 || len(r.b) < n {
		r.fail()
		return nil
	}
	v := r.b[:n]
	r.b = r.b[n:]
	return v
}

// Import reconstitutes a volume from an image on this manager's pool:
// the image's physical extent indexes are claimed out of the free list
// (journal replay onto the same device). Fails if the name or any extent
// is already taken, or the extent size disagrees with the pool's.
func (m *Manager) Import(img Image) (*Volume, error) {
	if img.ExtentBlocks != m.extBlocks {
		return nil, fmt.Errorf("volume: image extent size %d != pool %d", img.ExtentBlocks, m.extBlocks)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.vols[img.Name]; ok {
		return nil, ErrExists
	}
	h, hok := m.claimHandle()
	if !hok {
		return nil, fmt.Errorf("volume: all %d handles live", MaxVolumes)
	}
	// Claim every physical extent the image references.
	var claimed []uint32
	unwind := func() {
		for _, e := range claimed {
			m.pool.release(e)
		}
	}
	for _, li := range img.Layers {
		for _, e := range li.Ents {
			if e.Phys == Hole {
				continue
			}
			if !m.pool.claim(e.Phys) {
				unwind()
				return nil, fmt.Errorf("volume: image extent %d unavailable", e.Phys)
			}
			claimed = append(claimed, e.Phys)
		}
	}
	v := &Volume{
		mgr:    m,
		name:   img.Name,
		handle: h,
		blocks: img.Blocks,
		gen:    img.Gen,
		snaps:  make(map[uint64]*layer),
	}
	// Rebuild the chain oldest-first; the last layer is the live map.
	var parent *layer
	for i, li := range img.Layers {
		ents := make(map[uint32]uint32, len(li.Ents))
		for _, e := range li.Ents {
			ents[e.Logical] = e.Phys
		}
		if i == len(img.Layers)-1 {
			v.live = ents
			v.parent = parent
			break
		}
		l := &layer{gen: li.Gen, parent: parent, ents: ents, refs: 1}
		parent = l
	}
	for _, g := range img.Snaps {
		for l := v.parent; l != nil; l = l.parent {
			if l.gen == g {
				l.refs++
				v.snaps[g] = l
				break
			}
		}
		if _, ok := v.snaps[g]; !ok {
			unwind()
			return nil, fmt.Errorf("volume: image snapshot gen %d has no layer", g)
		}
	}
	m.vols[img.Name] = v
	m.handles[h] = v
	return v, nil
}

// claim removes a specific extent index from the free list (image
// import). Returns false when the extent is out of range or already
// allocated.
func (p *Pool) claim(idx uint32) bool {
	if idx >= p.total {
		return false
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	for i, f := range p.free {
		if f == idx {
			p.free[i] = p.free[len(p.free)-1]
			p.free = p.free[:len(p.free)-1]
			p.allocated++
			return true
		}
	}
	return false
}
