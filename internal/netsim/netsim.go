// Package netsim is a message-level network simulator: 10GbE links modeled
// as serial byte-rate resources, a fixed wire/switch latency, and per-host
// protocol-stack latency profiles (a fast kernel-bypass IX stack versus the
// Linux socket stack, §5.1-§5.2 of the paper).
//
// Packets are not modeled individually; a message (one ReFlex request or
// response) is the unit of transfer. This captures what the paper's
// evaluation depends on — per-message latency adders per stack type, NIC
// byte-rate saturation, and serialization delay of 4KB payloads — without a
// full TCP implementation. The real TCP path is exercised by the
// internal/server and internal/client packages instead.
package netsim

import (
	"fmt"

	"github.com/reflex-go/reflex/internal/faults"
	"github.com/reflex-go/reflex/internal/sim"
)

// Config describes the fabric between hosts.
type Config struct {
	// WireLatency is the one-way propagation plus switch latency.
	WireLatency sim.Time
	// LinkBytesPerSec is the per-port line rate in bytes/second.
	LinkBytesPerSec int64
	// PerMessageOverheadBytes models framing (Ethernet/IP/TCP headers and
	// inter-frame gaps) added to every message on the wire.
	PerMessageOverheadBytes int
}

// TenGbE returns the paper's network fabric: Intel 82599ES 10GbE through an
// Arista 7050S switch. The effective byte rate accounts for framing
// efficiency with jumbo frames enabled (§5.1).
func TenGbE() Config {
	return Config{
		WireLatency:             2 * sim.Microsecond,
		LinkBytesPerSec:         1_170_000_000, // ~1.17 GB/s effective
		PerMessageOverheadBytes: 78,            // headers + CRC + IFG
	}
}

// HundredGbE returns a next-generation fabric (§5.3's projection: "future
// datacenters will likely deploy 100GbE ... Both technologies will remove
// this bottleneck").
func HundredGbE() Config {
	return Config{
		WireLatency:             1 * sim.Microsecond,
		LinkBytesPerSec:         11_700_000_000,
		PerMessageOverheadBytes: 78,
	}
}

// Network is a set of ports connected through one fabric.
type Network struct {
	eng *sim.Engine
	cfg Config
	inj *faults.Injector
}

// SetFaults installs a fault injector on the fabric: every message
// transfer consults it for loss, duplication and extra delay. Pass nil to
// disable. The injector's PRNG draws happen in engine context, so runs
// stay deterministic for a given seed.
func (n *Network) SetFaults(in *faults.Injector) { n.inj = in }

// New creates a network. It panics on a non-positive line rate; fabric
// configs are program constants.
func New(eng *sim.Engine, cfg Config) *Network {
	if cfg.LinkBytesPerSec <= 0 {
		panic("netsim: LinkBytesPerSec must be positive")
	}
	return &Network{eng: eng, cfg: cfg}
}

// Engine returns the simulation engine.
func (n *Network) Engine() *sim.Engine { return n.eng }

// Config returns the fabric configuration.
func (n *Network) Config() Config { return n.cfg }

// Port is one host NIC: independent TX and RX serial resources at the line
// rate.
type Port struct {
	net *Network
	tx  *sim.Resource
	rx  *sim.Resource
}

// NewPort creates a NIC port on the network.
func (n *Network) NewPort(name string) *Port {
	return &Port{
		net: n,
		tx:  sim.NewResource(n.eng, name+"/tx"),
		rx:  sim.NewResource(n.eng, name+"/rx"),
	}
}

// serialization returns the time to put size payload bytes on the wire.
func (n *Network) serialization(size int) sim.Time {
	bytes := int64(size + n.cfg.PerMessageOverheadBytes)
	return sim.Time(bytes * int64(sim.Second) / n.cfg.LinkBytesPerSec)
}

// TxUtilization returns the port's transmit-side utilization.
func (p *Port) TxUtilization() float64 { return p.tx.Utilization() }

// RxUtilization returns the port's receive-side utilization.
func (p *Port) RxUtilization() float64 { return p.rx.Utilization() }

// Transfer moves size bytes from port src to port dst: serialization on the
// sender's TX link, wire latency, serialization on the receiver's RX link,
// then deliver fires in engine context. Queueing arises naturally when
// either link is saturated.
func (n *Network) Transfer(src, dst *Port, size int, deliver func(at sim.Time)) {
	if src == nil || dst == nil {
		panic("netsim: Transfer with nil port")
	}
	if n.inj != nil {
		drop, dup, delay := n.inj.MessageFate()
		if drop {
			// The message still burns the sender's TX serialization time;
			// it just never arrives (lost in the fabric).
			src.tx.Schedule(n.serialization(size), nil)
			return
		}
		if dup {
			n.transfer1(src, dst, size, 0, deliver)
		}
		n.transfer1(src, dst, size, delay, deliver)
		return
	}
	n.transfer1(src, dst, size, 0, deliver)
}

// transfer1 performs one fault-free transfer with an optional extra
// fabric delay.
func (n *Network) transfer1(src, dst *Port, size int, extra sim.Time, deliver func(at sim.Time)) {
	ser := n.serialization(size)
	src.tx.Schedule(ser, func(sim.Time) {
		n.eng.After(n.cfg.WireLatency+extra, func() {
			dst.rx.Schedule(ser, func(at sim.Time) {
				if deliver != nil {
					deliver(at)
				}
			})
		})
	})
}

// StackProfile is a host protocol-stack latency profile applied around the
// NIC: the cost of pushing a message through (or receiving it from) the
// host's networking stack.
type StackProfile struct {
	Name string
	// SendLatency/RecvLatency are fixed per-message stack latencies.
	SendLatency sim.Time
	RecvLatency sim.Time
	// JitterMean adds exponential jitter to each traversal — the "Linux
	// performance unpredictability" of §2.1. Zero disables jitter.
	JitterMean sim.Time
}

// IXClientStack models the paper's IX dataplane client: kernel-bypass
// polling, low and predictable latency (§5.2 "ReFlex (IX Client)").
func IXClientStack() StackProfile {
	return StackProfile{
		Name:        "ix",
		SendLatency: 4300,
		RecvLatency: 4300,
		JitterMean:  500,
	}
}

// LinuxClientStack models a conventional Linux sockets client: interrupt
// driven, higher latency and more jitter (§5.2 "ReFlex (Linux Client)").
func LinuxClientStack() StackProfile {
	return StackProfile{
		Name:        "linux",
		SendLatency: 13300,
		RecvLatency: 13300,
		JitterMean:  2000,
	}
}

// NullStack has zero stack cost. Dataplane servers use it because their
// network processing is charged explicitly on the dataplane core.
func NullStack() StackProfile {
	return StackProfile{Name: "null"}
}

// Endpoint is a host on the network: a port plus a stack profile.
type Endpoint struct {
	net   *Network
	port  *Port
	stack StackProfile
	rng   *sim.RNG
}

// NewEndpoint creates a host endpoint with its own NIC port.
func (n *Network) NewEndpoint(name string, stack StackProfile, seed int64) *Endpoint {
	return &Endpoint{
		net:   n,
		port:  n.NewPort(name),
		stack: stack,
		rng:   sim.NewRNG(seed),
	}
}

// Port returns the endpoint's NIC port.
func (e *Endpoint) Port() *Port { return e.port }

// Stack returns the endpoint's stack profile.
func (e *Endpoint) Stack() StackProfile { return e.stack }

func (e *Endpoint) stackDelay(base sim.Time) sim.Time {
	d := base
	if e.stack.JitterMean > 0 {
		d += e.rng.Exp(e.stack.JitterMean)
	}
	return d
}

// Send pushes a message of size bytes through this endpoint's send stack,
// across the network, and up through the receiver's receive stack. deliver
// fires in engine context when the message reaches the receiving
// application.
func (e *Endpoint) Send(to *Endpoint, size int, deliver func(at sim.Time)) {
	if to == nil {
		panic("netsim: Send to nil endpoint")
	}
	e.net.eng.After(e.stackDelay(e.stack.SendLatency), func() {
		e.net.Transfer(e.port, to.port, size, func(sim.Time) {
			to.net.eng.After(to.stackDelay(to.stack.RecvLatency), func() {
				if deliver != nil {
					deliver(to.net.eng.Now())
				}
			})
		})
	})
}

// String identifies the endpoint's stack for debugging.
func (e *Endpoint) String() string {
	return fmt.Sprintf("endpoint(%s)", e.stack.Name)
}
