package netsim

import (
	"testing"

	"github.com/reflex-go/reflex/internal/faults"
	"github.com/reflex-go/reflex/internal/sim"
)

// TestFaultsMessageLoss: with p(loss)=1 every transfer burns TX
// serialization but never delivers.
func TestFaultsMessageLoss(t *testing.T) {
	eng := sim.NewEngine()
	n := New(eng, Config{WireLatency: 0, LinkBytesPerSec: 1_000_000_000})
	n.SetFaults(faults.New(faults.Config{Seed: 1, MsgLossProb: 1}))
	a, b := n.NewPort("a"), n.NewPort("b")
	delivered := 0
	eng.At(0, func() {
		for i := 0; i < 10; i++ {
			n.Transfer(a, b, 4000, func(sim.Time) { delivered++ })
		}
	})
	eng.Run()
	if delivered != 0 {
		t.Fatalf("delivered %d messages through a total-loss fabric", delivered)
	}
	if a.tx.BusyTime() == 0 {
		t.Fatal("lost messages must still occupy the sender's TX link")
	}
}

// TestFaultsMessageDup: with p(dup)=1 every transfer delivers twice.
func TestFaultsMessageDup(t *testing.T) {
	eng := sim.NewEngine()
	n := New(eng, Config{WireLatency: 0, LinkBytesPerSec: 1_000_000_000})
	n.SetFaults(faults.New(faults.Config{Seed: 1, MsgDupProb: 1}))
	a, b := n.NewPort("a"), n.NewPort("b")
	delivered := 0
	eng.At(0, func() {
		for i := 0; i < 5; i++ {
			n.Transfer(a, b, 1000, func(sim.Time) { delivered++ })
		}
	})
	eng.Run()
	if delivered != 10 {
		t.Fatalf("delivered %d, want 10 (every message duplicated)", delivered)
	}
}

// TestFaultsMessageDelay: injected delay pushes delivery past the
// fault-free arrival time.
func TestFaultsMessageDelay(t *testing.T) {
	baseline := func(in *faults.Injector) sim.Time {
		eng := sim.NewEngine()
		n := New(eng, Config{WireLatency: 10 * sim.Microsecond, LinkBytesPerSec: 1_000_000_000})
		n.SetFaults(in)
		a, b := n.NewPort("a"), n.NewPort("b")
		var at sim.Time
		eng.At(0, func() {
			n.Transfer(a, b, 1000, func(t2 sim.Time) { at = t2 })
		})
		eng.Run()
		return at
	}
	clean := baseline(nil)
	delayed := baseline(faults.New(faults.Config{
		Seed: 1, MsgDelayProb: 1, MsgDelayMax: 100 * sim.Microsecond,
	}))
	if delayed <= clean {
		t.Fatalf("delayed delivery %d not after clean delivery %d", delayed, clean)
	}
}
