package netsim

import (
	"testing"

	"github.com/reflex-go/reflex/internal/hist"
	"github.com/reflex-go/reflex/internal/sim"
)

func TestSerializationTime(t *testing.T) {
	eng := sim.NewEngine()
	n := New(eng, Config{WireLatency: 0, LinkBytesPerSec: 1_000_000_000, PerMessageOverheadBytes: 0})
	// 4000 bytes at 1 GB/s = 4us.
	if got := n.serialization(4000); got != 4*sim.Microsecond {
		t.Fatalf("serialization(4000) = %d, want 4000ns", got)
	}
}

func TestTransferLatencyComponents(t *testing.T) {
	eng := sim.NewEngine()
	n := New(eng, Config{WireLatency: 10 * sim.Microsecond, LinkBytesPerSec: 1_000_000_000, PerMessageOverheadBytes: 0})
	a, b := n.NewPort("a"), n.NewPort("b")
	var at sim.Time
	eng.At(0, func() {
		n.Transfer(a, b, 1000, func(t2 sim.Time) { at = t2 })
	})
	eng.Run()
	// 1us tx + 10us wire + 1us rx = 12us.
	if at != 12*sim.Microsecond {
		t.Fatalf("delivered at %d, want 12us", at)
	}
}

func TestLinkSaturationQueues(t *testing.T) {
	// Ten back-to-back 4KB messages serialize on the sender's TX link.
	eng := sim.NewEngine()
	n := New(eng, Config{WireLatency: 0, LinkBytesPerSec: 1_000_000_000, PerMessageOverheadBytes: 0})
	a, b := n.NewPort("a"), n.NewPort("b")
	var last sim.Time
	eng.At(0, func() {
		for i := 0; i < 10; i++ {
			n.Transfer(a, b, 4000, func(t2 sim.Time) { last = t2 })
		}
	})
	eng.Run()
	// TX drains at 4us per message; the final message leaves TX at 40us and
	// needs 4us on RX: 44us.
	if last != 44*sim.Microsecond {
		t.Fatalf("last delivery at %d, want 44us", last)
	}
}

func TestThroughputCapped(t *testing.T) {
	// Offered load of 2 GB/s through a 1 GB/s link delivers ~1 GB/s.
	eng := sim.NewEngine()
	n := New(eng, Config{WireLatency: sim.Microsecond, LinkBytesPerSec: 1_000_000_000, PerMessageOverheadBytes: 0})
	a, b := n.NewPort("a"), n.NewPort("b")
	delivered := 0
	msg := 4096
	interval := sim.Time(2 * sim.Microsecond) // 2 GB/s offered
	var send func()
	deadline := sim.Time(100 * sim.Millisecond)
	send = func() {
		if eng.Now() >= deadline {
			return
		}
		n.Transfer(a, b, msg, func(at sim.Time) {
			if at <= deadline {
				delivered += msg
			}
		})
		eng.After(interval, send)
	}
	eng.At(0, send)
	eng.Run()
	rate := float64(delivered) / 0.1 // bytes/s delivered within the window
	if rate < 0.9e9 || rate > 1.15e9 {
		t.Fatalf("delivered %.2g B/s through 1 GB/s link", rate)
	}
	if u := a.TxUtilization(); u < 0.5 {
		t.Fatalf("tx utilization = %v, want saturated-ish", u)
	}
	if u := b.RxUtilization(); u < 0.5 {
		t.Fatalf("rx utilization = %v", u)
	}
}

func TestEndpointStackLatency(t *testing.T) {
	eng := sim.NewEngine()
	n := New(eng, Config{WireLatency: 2 * sim.Microsecond, LinkBytesPerSec: 1_170_000_000, PerMessageOverheadBytes: 0})
	client := n.NewEndpoint("client", StackProfile{Name: "fixed", SendLatency: 5 * sim.Microsecond, RecvLatency: 7 * sim.Microsecond}, 1)
	server := n.NewEndpoint("server", NullStack(), 2)
	var at sim.Time
	eng.At(0, func() {
		client.Send(server, 0, func(t2 sim.Time) { at = t2 })
	})
	eng.Run()
	// 5us send stack + 2us wire + zero-byte serialization + 0 recv stack.
	want := 5*sim.Microsecond + 2*sim.Microsecond
	if at != want {
		t.Fatalf("delivered at %d, want %d", at, want)
	}
	// Reverse direction picks up the 7us receive stack.
	at = 0
	eng.At(eng.Now()+1000, func() {
		server.Send(client, 0, func(t2 sim.Time) { at = t2 })
	})
	start := eng.Now() + 1000
	eng.Run()
	if got := at - start; got != 2*sim.Microsecond+7*sim.Microsecond {
		t.Fatalf("reverse latency = %d", got)
	}
}

func TestLinuxSlowerThanIX(t *testing.T) {
	// Round-trip latency with a Linux client must exceed the IX client by
	// roughly the stack difference (~18us), mirroring Table 2.
	rtt := func(stack StackProfile) float64 {
		eng := sim.NewEngine()
		n := New(eng, TenGbE())
		client := n.NewEndpoint("client", stack, 3)
		server := n.NewEndpoint("server", NullStack(), 4)
		h := hist.New()
		var ping func(i int)
		ping = func(i int) {
			if i >= 2000 {
				return
			}
			start := eng.Now()
			client.Send(server, 24, func(sim.Time) {
				server.Send(client, 4096+24, func(sim.Time) {
					h.Record(eng.Now() - start)
					ping(i + 1)
				})
			})
		}
		eng.At(0, func() { ping(0) })
		eng.Run()
		return h.Mean() / 1000 // us
	}
	ix := rtt(IXClientStack())
	linux := rtt(LinuxClientStack())
	diff := linux - ix
	if diff < 14 || diff > 24 {
		t.Fatalf("linux - ix RTT = %.1fus, want ~18us (Table 2)", diff)
	}
	// IX round trip without server processing: ~16us (stacks ~9.6 + wire 4
	// + serialization ~7.3 of the 4KB response and headers).
	if ix < 12 || ix > 24 {
		t.Fatalf("ix RTT = %.1fus, want ~16us", ix)
	}
}

func TestNilArguments(t *testing.T) {
	eng := sim.NewEngine()
	n := New(eng, TenGbE())
	a := n.NewPort("a")
	e := n.NewEndpoint("e", NullStack(), 1)
	mustPanic := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		fn()
	}
	mustPanic("Transfer nil", func() { n.Transfer(a, nil, 1, nil) })
	mustPanic("Send nil", func() { e.Send(nil, 1, nil) })
	mustPanic("bad config", func() { New(eng, Config{}) })
}

func TestEndpointString(t *testing.T) {
	eng := sim.NewEngine()
	n := New(eng, TenGbE())
	e := n.NewEndpoint("e", IXClientStack(), 1)
	if e.String() != "endpoint(ix)" {
		t.Fatalf("String = %q", e.String())
	}
	if e.Stack().Name != "ix" || e.Port() == nil {
		t.Fatal("accessors broken")
	}
	if n.Engine() != eng {
		t.Fatal("Engine accessor broken")
	}
	if n.Config().LinkBytesPerSec != TenGbE().LinkBytesPerSec {
		t.Fatal("Config accessor broken")
	}
}
