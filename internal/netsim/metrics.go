package netsim

import "github.com/reflex-go/reflex/internal/obs"

// RegisterMetrics exposes an endpoint's NIC-port state on a telemetry
// registry (read-side functions; evaluate from engine context).
func (e *Endpoint) RegisterMetrics(reg *obs.Registry, labels ...obs.Label) {
	reg.GaugeFunc("net_tx_utilization", "transmit link utilization since start",
		e.port.TxUtilization, labels...)
	reg.GaugeFunc("net_rx_utilization", "receive link utilization since start",
		e.port.RxUtilization, labels...)
	reg.CounterFunc("net_tx_messages_total", "messages serialized onto the TX link",
		func() float64 { return float64(e.port.tx.Jobs()) }, labels...)
	reg.CounterFunc("net_rx_messages_total", "messages serialized off the RX link",
		func() float64 { return float64(e.port.rx.Jobs()) }, labels...)
	reg.GaugeFunc("net_tx_backlog_ns", "TX link booking horizon",
		func() float64 { return float64(e.port.tx.Backlog()) }, labels...)
	reg.GaugeFunc("net_rx_backlog_ns", "RX link booking horizon",
		func() float64 { return float64(e.port.rx.Backlog()) }, labels...)
}
