package client

import (
	"bufio"
	"bytes"
	"errors"
	"net"
	"sync"
	"testing"
	"time"

	"github.com/reflex-go/reflex/internal/protocol"
)

// fakeServer answers protocol messages over one TCP connection with a
// caller-provided handler.
func fakeServer(t *testing.T, handle func(m *protocol.Message, reply func(*protocol.Header, []byte))) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			go func() {
				defer c.Close()
				br := bufio.NewReader(c)
				var wmu sync.Mutex
				for {
					m, err := protocol.ReadMessage(br)
					if err != nil {
						return
					}
					handle(m, func(h *protocol.Header, payload []byte) {
						wmu.Lock()
						defer wmu.Unlock()
						protocol.WriteMessage(c, h, payload)
					})
				}
			}()
		}
	}()
	return ln.Addr().String()
}

// echoHandler implements just enough of the server to satisfy the client.
func echoHandler(m *protocol.Message, reply func(*protocol.Header, []byte)) {
	h := protocol.Header{
		Opcode: m.Header.Opcode,
		Flags:  protocol.FlagResponse,
		Handle: 1,
		Cookie: m.Header.Cookie,
	}
	switch m.Header.Opcode {
	case protocol.OpRead:
		reply(&h, bytes.Repeat([]byte{0xEE}, int(m.Header.Count)))
	default:
		reply(&h, nil)
	}
}

func TestClientMatchesResponsesByCookie(t *testing.T) {
	// Responses delivered out of order still resolve the right calls.
	var mu sync.Mutex
	var pendingReplies []func()
	addr := fakeServer(t, func(m *protocol.Message, reply func(*protocol.Header, []byte)) {
		h := protocol.Header{
			Opcode: m.Header.Opcode, Flags: protocol.FlagResponse,
			Cookie: m.Header.Cookie, Handle: 1,
		}
		payload := []byte{byte(m.Header.LBA)} // echo which request this is
		mu.Lock()
		pendingReplies = append(pendingReplies, func() { reply(&h, payload) })
		if len(pendingReplies) == 3 {
			// Reply in reverse order.
			for i := len(pendingReplies) - 1; i >= 0; i-- {
				pendingReplies[i]()
			}
			pendingReplies = nil
		}
		mu.Unlock()
	})
	cl, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	var calls []*Call
	for i := 0; i < 3; i++ {
		call, err := cl.GoRead(1, uint32(i), 512)
		if err != nil {
			t.Fatal(err)
		}
		calls = append(calls, call)
	}
	for i, c := range calls {
		<-c.Done
		if c.Err != nil {
			t.Fatal(c.Err)
		}
		if c.Data[0] != byte(i) {
			t.Fatalf("call %d got reply for request %d", i, c.Data[0])
		}
	}
}

func TestClientUnknownCookieIgnored(t *testing.T) {
	addr := fakeServer(t, func(m *protocol.Message, reply func(*protocol.Header, []byte)) {
		// Send a spurious response first, then the real one.
		reply(&protocol.Header{
			Opcode: m.Header.Opcode, Flags: protocol.FlagResponse, Cookie: 999_999,
		}, nil)
		echoHandler(m, reply)
	})
	cl, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if _, err := cl.Read(1, 0, 512); err != nil {
		t.Fatalf("spurious response broke the client: %v", err)
	}
}

func TestClientServerDisconnectFailsPending(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	accepted := make(chan net.Conn, 1)
	go func() {
		c, err := ln.Accept()
		if err == nil {
			accepted <- c
		}
	}()
	cl, err := Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	call, err := cl.GoRead(1, 0, 512)
	if err != nil {
		t.Fatal(err)
	}
	(<-accepted).Close() // server dies with the call pending
	select {
	case <-call.Done:
	case <-time.After(2 * time.Second):
		t.Fatal("pending call not failed after disconnect")
	}
	if !errors.Is(call.Err, ErrClosed) {
		t.Fatalf("call error = %v, want ErrClosed", call.Err)
	}
	// New sends fail immediately.
	if _, err := cl.GoRead(1, 0, 512); !errors.Is(err, ErrClosed) {
		t.Fatalf("send after disconnect: %v, want ErrClosed", err)
	}
}

func TestClientStatusMapping(t *testing.T) {
	statuses := map[protocol.Status]error{
		protocol.StatusBadRequest: ErrBadRequest,
		protocol.StatusNoTenant:   ErrNoTenant,
		protocol.StatusDenied:     ErrDenied,
		protocol.StatusNoCapacity: ErrNoCapacity,
		protocol.StatusError:      ErrServer,
	}
	var next protocol.Status
	var mu sync.Mutex
	addr := fakeServer(t, func(m *protocol.Message, reply func(*protocol.Header, []byte)) {
		mu.Lock()
		st := next
		mu.Unlock()
		reply(&protocol.Header{
			Opcode: m.Header.Opcode, Flags: protocol.FlagResponse,
			Cookie: m.Header.Cookie, Status: st,
		}, nil)
	})
	cl, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	for st, want := range statuses {
		mu.Lock()
		next = st
		mu.Unlock()
		_, err := cl.Read(1, 0, 512)
		if !errors.Is(err, want) {
			t.Errorf("status %v mapped to %v, want %v", st, err, want)
		}
	}
}

func TestUDPTransportSizeCaps(t *testing.T) {
	// Pure transport-level checks, no server needed.
	tr := &udpTransport{}
	if err := tr.writeMessage(&protocol.Header{Count: MaxUDPPayload + 1}, nil); !errors.Is(err, ErrBadRequest) {
		t.Fatalf("oversize Count: %v", err)
	}
	if err := tr.writeMessage(&protocol.Header{}, make([]byte, MaxUDPPayload+1)); !errors.Is(err, ErrBadRequest) {
		t.Fatalf("oversize payload: %v", err)
	}
}

func TestDialFailures(t *testing.T) {
	if _, err := Dial("127.0.0.1:1"); err == nil {
		t.Error("dial to closed port succeeded")
	}
	if _, err := DialUDP("not-an-address"); err == nil {
		t.Error("bad UDP address accepted")
	}
}

func TestClientControlOps(t *testing.T) {
	addr := fakeServer(t, func(m *protocol.Message, reply func(*protocol.Header, []byte)) {
		h := protocol.Header{
			Opcode: m.Header.Opcode, Flags: protocol.FlagResponse,
			Cookie: m.Header.Cookie, Handle: 7,
		}
		switch m.Header.Opcode {
		case protocol.OpRegister:
			var reg protocol.Registration
			if err := reg.Unmarshal(m.Payload); err != nil || reg.ReadPercent != 80 {
				h.Status = protocol.StatusBadRequest
			}
			reply(&h, nil)
		case protocol.OpStats:
			st := protocol.TenantStats{Submitted: 123, Tokens: -5}
			reply(&h, st.Marshal())
		default:
			reply(&h, nil)
		}
	})
	cl, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	h, err := cl.Register(protocol.Registration{ReadPercent: 80, IOPS: 1, LatencyP95: 1})
	if err != nil || h != 7 {
		t.Fatalf("register: handle=%d err=%v", h, err)
	}
	if err := cl.Unregister(h); err != nil {
		t.Fatal(err)
	}
	if err := cl.Barrier(h); err != nil {
		t.Fatal(err)
	}
	st, err := cl.Stats(h)
	if err != nil || st.Submitted != 123 || st.Tokens != -5 {
		t.Fatalf("stats = %+v, err=%v", st, err)
	}
	if err := cl.Write(h, 4, make([]byte, 512)); err != nil {
		t.Fatal(err)
	}
}

func TestClientStatsShortPayload(t *testing.T) {
	addr := fakeServer(t, func(m *protocol.Message, reply func(*protocol.Header, []byte)) {
		reply(&protocol.Header{
			Opcode: m.Header.Opcode, Flags: protocol.FlagResponse, Cookie: m.Header.Cookie,
		}, []byte{1, 2, 3}) // truncated stats
	})
	cl, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if _, err := cl.Stats(1); err == nil {
		t.Fatal("truncated stats accepted")
	}
}

func TestClientUDPLoopbackEcho(t *testing.T) {
	// A minimal datagram echo server driving the udpTransport directly.
	pc, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	defer pc.Close()
	go func() {
		buf := make([]byte, 64<<10)
		for {
			n, from, err := pc.ReadFromUDP(buf)
			if err != nil {
				return
			}
			m, err := protocol.ReadMessage(bytes.NewReader(buf[:n]))
			if err != nil {
				continue
			}
			h := protocol.Header{
				Opcode: m.Header.Opcode, Flags: protocol.FlagResponse,
				Cookie: m.Header.Cookie, Handle: 2,
			}
			var out bytes.Buffer
			payload := []byte(nil)
			if m.Header.Opcode == protocol.OpRead {
				payload = bytes.Repeat([]byte{0x5F}, int(m.Header.Count))
			}
			protocol.WriteMessage(&out, &h, payload)
			pc.WriteToUDP(out.Bytes(), from)
		}
	}()

	cl, err := DialUDP(pc.LocalAddr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	got, err := cl.Read(2, 0, 1024)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1024 || got[0] != 0x5F {
		t.Fatalf("udp echo data wrong: %d bytes", len(got))
	}
	if err := cl.Write(2, 0, make([]byte, 512)); err != nil {
		t.Fatal(err)
	}
}

func TestClientInputBounds(t *testing.T) {
	addr := fakeServer(t, echoHandler)
	cl, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if _, err := cl.GoRead(1, 0, 0); !errors.Is(err, ErrBadRequest) {
		t.Fatalf("zero read: %v", err)
	}
	if _, err := cl.GoRead(1, 0, protocol.MaxPayload+1); !errors.Is(err, ErrBadRequest) {
		t.Fatalf("huge read: %v", err)
	}
	if _, err := cl.GoWrite(1, 0, nil); !errors.Is(err, ErrBadRequest) {
		t.Fatalf("nil write: %v", err)
	}
	if _, err := cl.GoWrite(1, 0, make([]byte, protocol.MaxPayload+1)); !errors.Is(err, ErrBadRequest) {
		t.Fatalf("huge write: %v", err)
	}
}
