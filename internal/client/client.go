// Package client is the user-level ReFlex client library (§4.2): it opens
// TCP connections to a ReFlex server and issues register/unregister and
// logical-block read/write requests, bypassing any client-side filesystem
// or block layer. Both synchronous and asynchronous (callback-free,
// net/rpc-style future) interfaces are provided; many requests may be in
// flight on one connection, matched by cookie.
package client

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"

	"github.com/reflex-go/reflex/internal/protocol"
)

// Errors mapped from response statuses.
var (
	// ErrBadRequest is a malformed or out-of-range request.
	ErrBadRequest = errors.New("reflex: bad request")
	// ErrNoTenant means the handle is not registered.
	ErrNoTenant = errors.New("reflex: unknown tenant handle")
	// ErrDenied means the tenant's ACL rejects the operation.
	ErrDenied = errors.New("reflex: permission denied")
	// ErrNoCapacity means the SLO was not admissible.
	ErrNoCapacity = errors.New("reflex: tenant SLO not admissible")
	// ErrServer is an internal server failure.
	ErrServer = errors.New("reflex: server error")
	// ErrClosed means the connection is gone.
	ErrClosed = errors.New("reflex: connection closed")
)

func statusErr(s protocol.Status) error {
	switch s {
	case protocol.StatusOK:
		return nil
	case protocol.StatusBadRequest:
		return ErrBadRequest
	case protocol.StatusNoTenant:
		return ErrNoTenant
	case protocol.StatusDenied:
		return ErrDenied
	case protocol.StatusNoCapacity:
		return ErrNoCapacity
	default:
		return ErrServer
	}
}

// Call is an in-flight asynchronous request. Wait on Done, then read Err
// and Data.
type Call struct {
	// Done is closed when the response arrives or the connection fails.
	Done chan struct{}
	// Data is the read payload (reads only).
	Data []byte
	// Err is the outcome.
	Err error

	handle uint16
	status protocol.Status
}

// transport frames protocol messages over some connection type.
type transport interface {
	writeMessage(hdr *protocol.Header, payload []byte) error
	readMessage() (*protocol.Message, error)
	close() error
}

// tcpTransport streams framed messages over TCP.
type tcpTransport struct {
	c  net.Conn
	br *bufio.Reader
	bw *bufio.Writer
}

func (t *tcpTransport) writeMessage(hdr *protocol.Header, payload []byte) error {
	if err := protocol.WriteMessage(t.bw, hdr, payload); err != nil {
		return err
	}
	return t.bw.Flush()
}

func (t *tcpTransport) readMessage() (*protocol.Message, error) {
	return protocol.ReadMessage(t.br)
}

func (t *tcpTransport) close() error { return t.c.Close() }

// udpTransport carries one message per datagram (§4.1: TCP is the
// conservative choice; UDP is the lighter-weight transport the paper
// anticipates). Datagram transports are lossy in general: a dropped
// request or response leaves its Call pending forever, so callers on
// unreliable networks should impose their own deadlines and retries. Only
// I/Os that fit one datagram are allowed.
type udpTransport struct {
	c *net.UDPConn
}

// MaxUDPPayload bounds a single UDP I/O.
const MaxUDPPayload = 32 << 10

func (t *udpTransport) writeMessage(hdr *protocol.Header, payload []byte) error {
	if len(payload) > MaxUDPPayload || hdr.Count > MaxUDPPayload {
		return ErrBadRequest
	}
	var buf bytes.Buffer
	if err := protocol.WriteMessage(&buf, hdr, payload); err != nil {
		return err
	}
	_, err := t.c.Write(buf.Bytes())
	return err
}

func (t *udpTransport) readMessage() (*protocol.Message, error) {
	buf := make([]byte, 64<<10)
	n, err := t.c.Read(buf)
	if err != nil {
		return nil, err
	}
	return protocol.ReadMessage(bytes.NewReader(buf[:n]))
}

func (t *udpTransport) close() error { return t.c.Close() }

// Client is a connection to a ReFlex server. It is safe for concurrent use
// by multiple goroutines.
type Client struct {
	t transport

	wmu sync.Mutex

	mu      sync.Mutex
	pending map[uint64]*Call
	closed  bool

	cookie atomic.Uint64
}

// Dial connects to a ReFlex server over TCP.
func Dial(addr string) (*Client, error) {
	c, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	if tc, ok := c.(*net.TCPConn); ok {
		// The paper's driver sends each request immediately without
		// coalescing (§4.2); disable Nagle for the same reason.
		tc.SetNoDelay(true)
	}
	return newClient(&tcpTransport{
		c:  c,
		br: bufio.NewReaderSize(c, 64<<10),
		bw: bufio.NewWriterSize(c, 64<<10),
	}), nil
}

// DialUDP connects to a ReFlex server's UDP endpoint.
func DialUDP(addr string) (*Client, error) {
	ua, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return nil, err
	}
	c, err := net.DialUDP("udp", nil, ua)
	if err != nil {
		return nil, err
	}
	return newClient(&udpTransport{c: c}), nil
}

func newClient(t transport) *Client {
	cl := &Client{t: t, pending: make(map[uint64]*Call)}
	go cl.readLoop()
	return cl
}

// Close tears the connection down; in-flight calls fail with ErrClosed.
func (cl *Client) Close() error {
	return cl.t.close()
}

func (cl *Client) readLoop() {
	for {
		m, err := cl.t.readMessage()
		if err != nil {
			cl.fail(fmt.Errorf("%w: %v", ErrClosed, err))
			return
		}
		cl.mu.Lock()
		call := cl.pending[m.Header.Cookie]
		delete(cl.pending, m.Header.Cookie)
		cl.mu.Unlock()
		if call == nil {
			continue // response to an abandoned call
		}
		call.status = m.Header.Status
		call.handle = m.Header.Handle
		call.Data = m.Payload
		call.Err = statusErr(m.Header.Status)
		close(call.Done)
	}
}

func (cl *Client) fail(err error) {
	cl.mu.Lock()
	cl.closed = true
	pending := cl.pending
	cl.pending = make(map[uint64]*Call)
	cl.mu.Unlock()
	for _, call := range pending {
		call.Err = err
		close(call.Done)
	}
	cl.t.close()
}

// send registers the call and writes the request.
func (cl *Client) send(hdr *protocol.Header, payload []byte) (*Call, error) {
	call := &Call{Done: make(chan struct{})}
	hdr.Cookie = cl.cookie.Add(1)

	cl.mu.Lock()
	if cl.closed {
		cl.mu.Unlock()
		return nil, ErrClosed
	}
	cl.pending[hdr.Cookie] = call
	cl.mu.Unlock()

	cl.wmu.Lock()
	err := cl.t.writeMessage(hdr, payload)
	cl.wmu.Unlock()
	if err != nil {
		cl.mu.Lock()
		delete(cl.pending, hdr.Cookie)
		cl.mu.Unlock()
		if errors.Is(err, ErrBadRequest) {
			return nil, err // transport-level size limit, not a dead link
		}
		return nil, fmt.Errorf("%w: %v", ErrClosed, err)
	}
	return call, nil
}

func (cl *Client) wait(call *Call) error {
	<-call.Done
	return call.Err
}

// Register registers a tenant and returns its handle.
func (cl *Client) Register(reg protocol.Registration) (uint16, error) {
	call, err := cl.send(&protocol.Header{Opcode: protocol.OpRegister}, reg.Marshal())
	if err != nil {
		return 0, err
	}
	if err := cl.wait(call); err != nil {
		return 0, err
	}
	return call.handle, nil
}

// Unregister removes a tenant.
func (cl *Client) Unregister(handle uint16) error {
	call, err := cl.send(&protocol.Header{Opcode: protocol.OpUnregister, Handle: handle}, nil)
	if err != nil {
		return err
	}
	return cl.wait(call)
}

// GoRead starts an asynchronous read of n bytes at lba (512-byte units).
func (cl *Client) GoRead(handle uint16, lba uint32, n int) (*Call, error) {
	if n <= 0 || n > protocol.MaxPayload {
		return nil, ErrBadRequest
	}
	return cl.send(&protocol.Header{
		Opcode: protocol.OpRead,
		Handle: handle,
		LBA:    lba,
		Count:  uint32(n),
	}, nil)
}

// GoWrite starts an asynchronous write of data at lba (512-byte units).
func (cl *Client) GoWrite(handle uint16, lba uint32, data []byte) (*Call, error) {
	if len(data) == 0 || len(data) > protocol.MaxPayload {
		return nil, ErrBadRequest
	}
	return cl.send(&protocol.Header{
		Opcode: protocol.OpWrite,
		Handle: handle,
		LBA:    lba,
		Count:  uint32(len(data)),
	}, data)
}

// GoBarrier starts an asynchronous ordering barrier on the tenant: it
// completes after every I/O submitted before it has completed, and I/O
// submitted after it waits for it.
func (cl *Client) GoBarrier(handle uint16) (*Call, error) {
	return cl.send(&protocol.Header{Opcode: protocol.OpBarrier, Handle: handle}, nil)
}

// Barrier issues a synchronous ordering barrier.
func (cl *Client) Barrier(handle uint16) error {
	call, err := cl.GoBarrier(handle)
	if err != nil {
		return err
	}
	return cl.wait(call)
}

// Stats fetches the tenant's scheduler counters.
func (cl *Client) Stats(handle uint16) (protocol.TenantStats, error) {
	var out protocol.TenantStats
	call, err := cl.send(&protocol.Header{Opcode: protocol.OpStats, Handle: handle}, nil)
	if err != nil {
		return out, err
	}
	if err := cl.wait(call); err != nil {
		return out, err
	}
	if err := out.Unmarshal(call.Data); err != nil {
		return out, err
	}
	return out, nil
}

// Read reads n bytes at lba synchronously.
func (cl *Client) Read(handle uint16, lba uint32, n int) ([]byte, error) {
	call, err := cl.GoRead(handle, lba, n)
	if err != nil {
		return nil, err
	}
	if err := cl.wait(call); err != nil {
		return nil, err
	}
	return call.Data, nil
}

// Write writes data at lba synchronously.
func (cl *Client) Write(handle uint16, lba uint32, data []byte) error {
	call, err := cl.GoWrite(handle, lba, data)
	if err != nil {
		return err
	}
	return cl.wait(call)
}
