// Package client is the user-level ReFlex client library (§4.2): it opens
// TCP connections to a ReFlex server and issues register/unregister and
// logical-block read/write requests, bypassing any client-side filesystem
// or block layer. Both synchronous and asynchronous (callback-free,
// net/rpc-style future) interfaces are provided; many requests may be in
// flight on one connection, matched by cookie.
//
// Failure hardening: DialOptions enables per-request timeouts (no call
// ever hangs forever) and transparent reconnection with bounded
// exponential backoff. On reconnect the client re-registers its tenants
// (the server unregisters a dead connection's tenants) and transparently
// remaps handles, replays idempotent in-flight requests (reads, writes,
// barriers, stats) and cancels non-idempotent ones (register/unregister)
// with a typed error.
package client

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/reflex-go/reflex/internal/bufpool"
	"github.com/reflex-go/reflex/internal/obs"
	"github.com/reflex-go/reflex/internal/protocol"
)

// Errors mapped from response statuses.
var (
	// ErrBadRequest is a malformed or out-of-range request.
	ErrBadRequest = errors.New("reflex: bad request")
	// ErrNoTenant means the handle is not registered.
	ErrNoTenant = errors.New("reflex: unknown tenant handle")
	// ErrDenied means the tenant's ACL rejects the operation.
	ErrDenied = errors.New("reflex: permission denied")
	// ErrNoCapacity means the SLO was not admissible.
	ErrNoCapacity = errors.New("reflex: tenant SLO not admissible")
	// ErrServer is an internal server failure.
	ErrServer = errors.New("reflex: server error")
	// ErrDevice means the device failed this I/O; the operation is safe
	// to retry on the same connection.
	ErrDevice = errors.New("reflex: device I/O error")
	// ErrOverloaded means the server shed this best-effort request; back
	// off and retry.
	ErrOverloaded = errors.New("reflex: server overloaded, request shed")
	// ErrTruncated means a datagram transport truncated the request.
	ErrTruncated = errors.New("reflex: datagram truncated")
	// ErrClosed means the connection is gone.
	ErrClosed = errors.New("reflex: connection closed")
	// ErrTimeout means the per-request timeout expired before a response
	// arrived (the request may still execute on the server).
	ErrTimeout = errors.New("reflex: request timed out")
	// ErrNoReplicas means every configured replica address is down: the
	// failover sweep dialed them all (with backoff) and none answered.
	ErrNoReplicas = errors.New("reflex: no replicas reachable")
	// ErrStaleEpoch means the server refused a write because the cluster
	// epoch moved on (this client was talking to a deposed primary) and
	// the request could not be transparently replayed.
	ErrStaleEpoch = errors.New("reflex: stale cluster epoch")
	// ErrChecksum means the payload CRC32C did not verify end-to-end: the
	// data was corrupted in flight. The operation is safe to retry.
	ErrChecksum = errors.New("reflex: payload checksum mismatch")
	// ErrWrongShard means the server does not own the requested LBA range
	// under its installed shard map: the client's routing table is stale.
	// Refetch the map (shard.Router does this transparently) and retry at
	// the owner.
	ErrWrongShard = errors.New("reflex: wrong shard (stale routing table)")
)

func statusErr(s protocol.Status) error {
	switch s {
	case protocol.StatusOK:
		return nil
	case protocol.StatusBadRequest:
		return ErrBadRequest
	case protocol.StatusNoTenant:
		return ErrNoTenant
	case protocol.StatusDenied:
		return ErrDenied
	case protocol.StatusNoCapacity:
		return ErrNoCapacity
	case protocol.StatusDeviceError:
		return ErrDevice
	case protocol.StatusOverloaded:
		return ErrOverloaded
	case protocol.StatusTruncated:
		return ErrTruncated
	case protocol.StatusStaleEpoch:
		return ErrStaleEpoch
	case protocol.StatusBadChecksum:
		return ErrChecksum
	case protocol.StatusWrongShard:
		return ErrWrongShard
	default:
		return ErrServer
	}
}

// Call is an in-flight asynchronous request. Wait on Done, then read Err
// and Data.
type Call struct {
	// Done is closed when the response arrives or the connection fails.
	Done chan struct{}
	// Data is the read payload (reads only).
	Data []byte
	// Err is the outcome.
	Err error

	handle uint16
	status protocol.Status
	// respLBA/respCount echo the response header's LBA and Count fields:
	// OpShardMap responses carry the map version in LBA, and
	// StatusWrongShard responses carry the server's map version in Count.
	respLBA   uint32
	respCount uint32

	// hdr is the request as submitted (user-space handles) and payload
	// its body, kept for replay after reconnect.
	hdr     protocol.Header
	payload []byte
	timer   *time.Timer
	// lease is the pooled buffer backing payload (checksum-sealed write
	// frames). It is released exactly once, at the call's completion
	// point; stale-epoch re-pends keep it alive because the payload is
	// replayed at the new primary.
	lease *bufpool.Buf
	// staleLeft bounds transparent re-pends after a StatusStaleEpoch
	// response: the call is put back in flight and replayed at the new
	// primary at most this many times before the error surfaces.
	staleLeft int

	// TraceID is the distributed trace id this call carries (0 =
	// untraced). The client-side root span (ID == TraceID by convention)
	// is pushed into Options.TraceRing when the call completes.
	TraceID uint64
	// startNS anchors the root span's arrival stamp (client clock).
	startNS int64
}

// release returns the call's pooled payload lease. Every completion path
// (deliver, expire, fail, reconnect-cancel, drop) funnels through exactly
// one of the mutually exclusive pending-map removals, so release runs
// once per call.
func (c *Call) release() {
	if c.lease != nil {
		c.lease.Release()
		c.lease = nil
	}
}

// replayable reports whether the call is safe to re-issue on a fresh
// connection: reads, writes (idempotent at fixed LBA), trims (freeing a
// freed extent is a no-op), barriers and stats are; register/unregister
// are not (their effects are not idempotent and a lost response loses
// the handle).
func (c *Call) replayable() bool {
	switch c.hdr.Opcode {
	case protocol.OpRead, protocol.OpWrite, protocol.OpTrim, protocol.OpBarrier, protocol.OpStats:
		return true
	default:
		return false
	}
}

// transport frames protocol messages over some connection type.
type transport interface {
	writeMessage(hdr *protocol.Header, payload []byte) error
	readMessage() (*protocol.Message, error)
	close() error
}

// tcpTransport streams framed messages over TCP.
type tcpTransport struct {
	c  net.Conn
	br *bufio.Reader
	bw *bufio.Writer

	// hb is the header marshal scratch; writes are serialized by the
	// client's wmu, so one scratch per transport suffices and the write
	// path stays allocation-free.
	hb [protocol.HeaderSize]byte
	// msg is reused across readMessage calls: the read loop consumes each
	// message fully (only Payload, freshly allocated per message, escapes
	// into user hands via Call.Data) before reading the next.
	msg protocol.Message
}

// writeMessageBuffered frames hdr+payload into the buffered writer
// without flushing; the client's flusher goroutine coalesces one Flush
// across a submission burst (the client-side mirror of the server's
// adaptive response batching). A bufio write error is sticky, so a dead
// socket surfaces on the next call even if the failing flush happened on
// the flusher goroutine.
func (t *tcpTransport) writeMessageBuffered(hdr *protocol.Header, payload []byte) error {
	hdr.Len = uint32(len(payload))
	if hdr.Len > protocol.MaxPayload {
		return fmt.Errorf("protocol: payload %d exceeds max %d", hdr.Len, protocol.MaxPayload)
	}
	hdr.MarshalTo(t.hb[:])
	if _, err := t.bw.Write(t.hb[:]); err != nil {
		return err
	}
	if len(payload) > 0 {
		if _, err := t.bw.Write(payload); err != nil {
			return err
		}
	}
	return nil
}

func (t *tcpTransport) flush() error { return t.bw.Flush() }

func (t *tcpTransport) writeMessage(hdr *protocol.Header, payload []byte) error {
	if err := t.writeMessageBuffered(hdr, payload); err != nil {
		return err
	}
	return t.bw.Flush()
}

func (t *tcpTransport) readMessage() (*protocol.Message, error) {
	if err := protocol.ReadMessageInto(t.br, &t.msg, nil); err != nil {
		return nil, err
	}
	return &t.msg, nil
}

func (t *tcpTransport) close() error { return t.c.Close() }

// udpTransport carries one message per datagram (§4.1: TCP is the
// conservative choice; UDP is the lighter-weight transport the paper
// anticipates). Datagram transports are lossy in general: a dropped
// request or response leaves its Call pending until the per-request
// timeout fires, so callers on unreliable networks should set
// Options.Timeout. Only I/Os that fit one datagram are allowed.
type udpTransport struct {
	c *net.UDPConn
	// msg is reused across readMessage calls (see tcpTransport.msg).
	msg protocol.Message
}

// MaxUDPPayload bounds a single UDP I/O.
const MaxUDPPayload = 32 << 10

func (t *udpTransport) writeMessage(hdr *protocol.Header, payload []byte) error {
	if len(payload) > MaxUDPPayload || hdr.Count > MaxUDPPayload {
		return ErrBadRequest
	}
	// Frame into a pooled arena and send one datagram: no per-message
	// buffer allocation.
	frame := bufpool.Get(protocol.HeaderSize + len(payload))
	defer frame.Release()
	b, err := protocol.AppendMessage(frame.Bytes()[:0], hdr, payload)
	if err != nil {
		return err
	}
	_, err = t.c.Write(b)
	return err
}

func (t *udpTransport) readMessage() (*protocol.Message, error) {
	// Pooled receive scratch: the datagram is parsed in place and only the
	// payload — which becomes the user-owned Call.Data — is copied out
	// before the scratch returns to the pool.
	lease := bufpool.Get(64 << 10)
	defer lease.Release()
	buf := lease.Bytes()
	n, err := t.c.Read(buf)
	if err != nil {
		return nil, err
	}
	if err := t.msg.UnmarshalFrame(buf[:n]); err != nil {
		return nil, err
	}
	if len(t.msg.Payload) > 0 {
		t.msg.Payload = append([]byte(nil), t.msg.Payload...)
	}
	return &t.msg, nil
}

func (t *udpTransport) close() error { return t.c.Close() }

// Options harden a client connection against failures.
type Options struct {
	// Timeout bounds every request: a call whose response has not arrived
	// within Timeout completes with ErrTimeout. 0 disables (a lost
	// response then leaves the call pending until the connection dies).
	Timeout time.Duration
	// Reconnect enables transparent reconnection with bounded exponential
	// backoff when the connection dies. Tenants registered through this
	// client are re-registered on the new connection (handles are remapped
	// internally; callers keep using the handle Register returned), and
	// in-flight idempotent requests are replayed.
	Reconnect bool
	// MaxAttempts bounds dial attempts per outage (default 8).
	MaxAttempts int
	// BackoffBase and BackoffMax bound the exponential backoff between
	// dial attempts (defaults 10ms and 1s).
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// Dialer optionally replaces net.Dial — chaos harnesses wrap the
	// returned conn with fault injection. It always dials the client's
	// original address; cluster clients that fail over between replicas
	// should use DialerFor instead.
	Dialer func() (net.Conn, error)
	// DialerFor optionally replaces net.Dial per target address, so a
	// failover to another replica dials the right place (and chaos
	// harnesses can wrap every replica connection). Takes precedence over
	// Dialer.
	DialerFor func(addr string) (net.Conn, error)

	// Checksum enables end-to-end payload integrity: write payloads are
	// sealed with a CRC32C trailer (verified server-side before touching
	// media) and reads request checksummed responses (verified here;
	// mismatches surface as ErrChecksum).
	Checksum bool

	// HedgeReads enables hedged reads on a DialCluster client: when a
	// synchronous Read has not completed after an adaptive delay (the
	// client's windowed read p95, clamped to [HedgeMinDelay,
	// HedgeMaxDelay]), a duplicate read is issued to a backup replica and
	// the first response wins. Hedges run on the backup's own tenant
	// registration, so they never double-charge the primary-side token
	// bucket.
	HedgeReads    bool
	HedgeMinDelay time.Duration
	HedgeMaxDelay time.Duration

	// Trace enables distributed tracing: every read and write carries a
	// FlagTraced trailer (16 bytes: trace id + parent span id) that
	// downstream hops — serving node, backup replica, migration relay —
	// record child spans against. The client records the root span of
	// each traced request into TraceRing. Off by default: untraced
	// requests are bit-for-bit the pre-tracing wire image.
	Trace bool
	// TraceRing receives the client-side root spans (required for Trace;
	// also used by WriteTraced). Shared rings are fine — spans carry the
	// node name "client".
	TraceRing *obs.Ring
}

func (o *Options) fill() {
	if o.MaxAttempts <= 0 {
		o.MaxAttempts = 8
	}
	if o.BackoffBase <= 0 {
		o.BackoffBase = 10 * time.Millisecond
	}
	if o.BackoffMax <= 0 {
		o.BackoffMax = time.Second
	}
	if o.HedgeMinDelay <= 0 {
		o.HedgeMinDelay = 200 * time.Microsecond
	}
	if o.HedgeMaxDelay <= 0 {
		o.HedgeMaxDelay = 20 * time.Millisecond
	}
}

// Client is a connection to a ReFlex server. It is safe for concurrent use
// by multiple goroutines.
type Client struct {
	opts Options
	dial func() (transport, error) // nil: no reconnect (UDP, plain Dial)

	// targets is the replica address list; tIdx indexes the current dial
	// target. The target lives here — not captured in a dialer closure —
	// precisely so failover can swap it atomically while the reconnect
	// machinery keeps working unchanged.
	targets []string
	tIdx    atomic.Int32

	// Cluster failover state (DialCluster). epochA holds the cluster
	// epoch stamped on every request; failovers counts promote-accepted
	// target switches; the consec* counters feed the forced-failover
	// triggers (a run of timeouts or device errors on one replica).
	cluster        bool
	epochA         atomic.Uint32
	failovers      atomic.Uint64
	consecTimeouts atomic.Int32
	consecDevice   atomic.Int32
	hedge          *hedger

	// wmu serializes writes and is held across an entire reconnect, so
	// senders block (bounded by the backoff budget) instead of writing
	// into a dead transport.
	wmu sync.Mutex
	// dirty (guarded by wmu) marks frames buffered in the TCP transport's
	// writer but not yet flushed; the flusher goroutine clears it with one
	// Flush per kick, so a pipelined submission burst shares one syscall.
	dirty     bool
	flushKick chan struct{} // cap 1: a pending kick covers any later ones
	flushStop chan struct{}
	flushOnce sync.Once

	mu      sync.Mutex
	t       transport
	pending map[uint64]*Call
	// regs and handleMap implement reconnect handle continuity: regs
	// remembers every live registration by the user-visible handle (the
	// one Register returned); handleMap maps it to the server's current
	// handle for that tenant, which changes across reconnects.
	regs      map[uint16]protocol.Registration
	handleMap map[uint16]uint16
	closed    bool

	cookie     atomic.Uint64
	reconnects atomic.Uint64
	replayed   atomic.Uint64

	// shardVer is the routing-table version stamped (low 16 bits) into
	// the Status field of every I/O request — the map-version header echo
	// that lets a sharded server see how stale its caller is. 0 =
	// shard-unaware client (the pre-sharding wire image, bit for bit).
	shardVer atomic.Uint32

	// Tracing state: trace ids are traceBase | traceSeq, where traceBase
	// seeds from wall-clock nanoseconds at construction — unique across
	// clients without coordination. start anchors span stamps (ns since
	// client creation, same convention as the server's registry clock).
	start     time.Time
	traceBase uint64
	traceSeq  atomic.Uint64
}

// now returns nanoseconds since client creation (span stamp clock).
func (cl *Client) now() int64 { return int64(time.Since(cl.start)) }

// nextTrace mints a process-unique non-zero trace id.
func (cl *Client) nextTrace() uint64 {
	id := cl.traceBase | (cl.traceSeq.Add(1) & (1<<20 - 1))
	if id == 0 {
		id = 1
	}
	return id
}

// SetShardVersion records the client's routing-table version; subsequent
// I/O requests carry its low 16 bits in the header Status field. The
// shard router calls this after every map fetch.
func (cl *Client) SetShardVersion(v uint32) { cl.shardVer.Store(v) }

// target returns the current dial target.
func (cl *Client) target() string {
	return cl.targets[int(cl.tIdx.Load())%len(cl.targets)]
}

// rotateTarget atomically advances to the next replica address.
func (cl *Client) rotateTarget() {
	if len(cl.targets) > 1 {
		cl.tIdx.Add(1)
	}
}

// dialTCP opens a TCP transport to addr. The target is read from the
// client at call time (not captured at construction), so a failover that
// swaps cl.tIdx redirects every subsequent reconnect attempt.
func (cl *Client) dialTCP(addr string) (transport, error) {
	var c net.Conn
	var err error
	switch {
	case cl.opts.DialerFor != nil:
		c, err = cl.opts.DialerFor(addr)
	case cl.opts.Dialer != nil:
		c, err = cl.opts.Dialer()
	default:
		c, err = net.Dial("tcp", addr)
	}
	if err != nil {
		return nil, err
	}
	if tc, ok := c.(*net.TCPConn); ok {
		// The paper's driver sends each request immediately without
		// coalescing (§4.2); disable Nagle for the same reason.
		tc.SetNoDelay(true)
	}
	return &tcpTransport{
		c:  c,
		br: bufio.NewReaderSize(c, 64<<10),
		bw: bufio.NewWriterSize(c, 64<<10),
	}, nil
}

// dialCurrent dials whatever the current target is.
func (cl *Client) dialCurrent() (transport, error) {
	return cl.dialTCP(cl.target())
}

// Dial connects to a ReFlex server over TCP with default options (no
// timeout, no reconnection).
func Dial(addr string) (*Client, error) {
	return DialOptions(addr, Options{})
}

// DialOptions connects to a ReFlex server over TCP with failure-hardening
// options.
func DialOptions(addr string, o Options) (*Client, error) {
	o.fill()
	cl := newClient(nil, o, []string{addr})
	t, err := cl.dialCurrent()
	if err != nil {
		return nil, err
	}
	cl.t = t
	if o.Reconnect {
		cl.dial = cl.dialCurrent
	}
	go cl.readLoop()
	return cl, nil
}

// DialUDP connects to a ReFlex server's UDP endpoint.
func DialUDP(addr string) (*Client, error) {
	return DialUDPOptions(addr, Options{})
}

// DialUDPOptions connects over UDP with options. Reconnect is ignored
// (datagram sockets do not die); Timeout is the defense against loss.
func DialUDPOptions(addr string, o Options) (*Client, error) {
	o.fill()
	ua, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return nil, err
	}
	c, err := net.DialUDP("udp", nil, ua)
	if err != nil {
		return nil, err
	}
	cl := newClient(&udpTransport{c: c}, o, []string{addr})
	go cl.readLoop()
	return cl, nil
}

// newClient builds the client shell; the caller installs the transport
// and dial hook before starting the read loop.
func newClient(t transport, o Options, targets []string) *Client {
	cl := &Client{
		opts:      o,
		t:         t,
		targets:   targets,
		pending:   make(map[uint64]*Call),
		regs:      make(map[uint16]protocol.Registration),
		handleMap: make(map[uint16]uint16),
		flushKick: make(chan struct{}, 1),
		flushStop: make(chan struct{}),
		start:     time.Now(),
		traceBase: uint64(time.Now().UnixNano()) << 20,
	}
	go cl.flushLoop()
	return cl
}

// kickFlush wakes the flusher; a kick already pending covers this one
// (the flusher re-checks dirty under wmu after every wake).
func (cl *Client) kickFlush() {
	select {
	case cl.flushKick <- struct{}{}:
	default:
	}
}

// flushLoop coalesces submission flushes: send() frames requests into the
// TCP transport's buffered writer, marks it dirty and kicks; one Flush
// here covers every frame buffered up to that point. Under light load the
// kick fires per request (one goroutine wake of added latency); under a
// pipelined burst many submissions share a single flush and syscall —
// the client-side counterpart of the server's §3.2.1 adaptive batching.
func (cl *Client) flushLoop() {
	for {
		select {
		case <-cl.flushStop:
			return
		case <-cl.flushKick:
		}
		cl.wmu.Lock()
		if cl.dirty {
			cl.dirty = false
			if tt, ok := cl.t.(*tcpTransport); ok {
				if err := tt.flush(); err != nil {
					// Dead socket: close it so the read loop notices now
					// rather than at the next response. The sticky bufio
					// error also surfaces on the next send.
					tt.close()
				}
			}
		}
		cl.wmu.Unlock()
	}
}

// stopFlusher halts the flush goroutine (Close and permanent failure).
func (cl *Client) stopFlusher() {
	cl.flushOnce.Do(func() { close(cl.flushStop) })
}

// Reconnects returns how many times the client has reconnected.
func (cl *Client) Reconnects() uint64 { return cl.reconnects.Load() }

// Replayed returns how many in-flight requests were replayed across
// reconnects.
func (cl *Client) Replayed() uint64 { return cl.replayed.Load() }

// Close tears the connection down; in-flight calls fail with ErrClosed.
func (cl *Client) Close() error {
	cl.mu.Lock()
	cl.closed = true
	t := cl.t
	cl.mu.Unlock()
	cl.stopFlusher()
	if h := cl.hedge; h != nil {
		h.close()
	}
	if t != nil {
		return t.close()
	}
	return nil
}

func (cl *Client) isClosed() bool {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	return cl.closed
}

func (cl *Client) readLoop() {
	for {
		cl.mu.Lock()
		t := cl.t
		cl.mu.Unlock()
		if t == nil {
			cl.fail(ErrClosed)
			return
		}
		m, err := t.readMessage()
		if err != nil {
			if cl.reconnect(err) {
				continue
			}
			return
		}
		cl.deliver(m)
	}
}

// deliver completes the pending call matching a response.
func (cl *Client) deliver(m *protocol.Message) {
	cl.mu.Lock()
	call := cl.pending[m.Header.Cookie]
	delete(cl.pending, m.Header.Cookie)
	cl.mu.Unlock()
	if call == nil {
		return // response to an abandoned, timed-out or duplicated call
	}
	// Epoch-fenced failover: a stale-epoch refusal of an idempotent call
	// is re-pended (bounded) and the client fails over — the reconnect
	// handshake promotes a fresh primary and the replay machinery
	// re-issues the call there, stamped with the new epoch.
	if cl.cluster && m.Header.Status == protocol.StatusStaleEpoch &&
		call.replayable() && call.staleLeft > 0 {
		call.staleLeft--
		cl.mu.Lock()
		repend := !cl.closed
		if repend {
			cl.pending[call.hdr.Cookie] = call
		}
		cl.mu.Unlock()
		if repend {
			cl.forceFailover()
			return
		}
	}
	if call.timer != nil {
		call.timer.Stop()
	}
	call.release()
	call.status = m.Header.Status
	call.handle = m.Header.Handle
	call.respLBA = m.Header.LBA
	call.respCount = m.Header.Count
	call.Data = m.Payload
	call.Err = statusErr(m.Header.Status)
	// End-to-end integrity: a response whose CRC32C trailer failed
	// verification must not be trusted, however OK its status.
	if m.ChecksumErr && call.Err == nil {
		call.Err = ErrChecksum
	}
	if cl.cluster {
		cl.consecTimeouts.Store(0)
		if errors.Is(call.Err, ErrDevice) {
			if cl.consecDevice.Add(1) >= deviceFailoverRuns {
				cl.consecDevice.Store(0)
				cl.forceFailover()
			}
		} else {
			cl.consecDevice.Store(0)
		}
	}
	cl.pushRootSpan(call)
	close(call.Done)
}

// pushRootSpan records a traced call's client-side root span (the
// timeline anchor every downstream hop parents to, directly or
// transitively). By convention the root span's ID equals the trace id.
func (cl *Client) pushRootSpan(call *Call) {
	if call.TraceID == 0 || cl.opts.TraceRing == nil {
		return
	}
	sp := obs.Span{
		ID:     call.TraceID,
		Trace:  call.TraceID,
		Node:   "client",
		Hop:    obs.HopClient,
		Write:  call.hdr.Opcode == protocol.OpWrite,
		Size:   int(call.hdr.Count),
		Tenant: int(call.hdr.Handle),
	}
	sp.Mark(obs.StageArrival, call.startNS)
	sp.Mark(obs.StageTx, cl.now())
	cl.opts.TraceRing.Push(sp)
}

// expire completes a call with ErrTimeout when its deadline passes.
func (cl *Client) expire(call *Call) {
	cl.mu.Lock()
	cur, ok := cl.pending[call.hdr.Cookie]
	if !ok || cur != call {
		cl.mu.Unlock()
		return // already completed
	}
	delete(cl.pending, call.hdr.Cookie)
	cl.mu.Unlock()
	call.release()
	call.Err = ErrTimeout
	if cl.cluster {
		// A run of timeouts on one replica (blackholed or GC-wedged) is
		// the failover trigger a half-open peer never gives us via errors.
		if cl.consecTimeouts.Add(1) >= timeoutFailoverRuns {
			cl.consecTimeouts.Store(0)
			cl.forceFailover()
		}
	}
	cl.pushRootSpan(call)
	close(call.Done)
}

// drop removes a never-sent call. The pending-map check keeps the lease
// release exclusive with a concurrently firing expire timer.
func (cl *Client) drop(call *Call) {
	cl.mu.Lock()
	_, mine := cl.pending[call.hdr.Cookie]
	delete(cl.pending, call.hdr.Cookie)
	cl.mu.Unlock()
	if call.timer != nil {
		call.timer.Stop()
	}
	if mine {
		call.release()
	}
}

// fail completes every pending call with err and closes the transport.
func (cl *Client) fail(err error) {
	cl.mu.Lock()
	cl.closed = true
	pending := cl.pending
	cl.pending = make(map[uint64]*Call)
	t := cl.t
	cl.mu.Unlock()
	cl.stopFlusher()
	for _, call := range pending {
		if call.timer != nil {
			call.timer.Stop()
		}
		call.Err = err
		call.release()
		close(call.Done)
	}
	if t != nil {
		t.close()
	}
}

// reconnect re-dials with bounded exponential backoff, re-registers
// tenants and replays idempotent in-flight requests. It returns true when
// the read loop should continue on the fresh transport. Senders block on
// wmu for the duration, bounded by the backoff budget.
func (cl *Client) reconnect(cause error) bool {
	if cl.dial == nil || cl.isClosed() {
		cl.fail(fmt.Errorf("%w: %v", ErrClosed, cause))
		return false
	}
	cl.wmu.Lock()
	defer cl.wmu.Unlock()
	cl.mu.Lock()
	if cl.t != nil {
		cl.t.close()
	}
	cl.mu.Unlock()

	backoff := cl.opts.BackoffBase
	for attempt := 0; attempt < cl.opts.MaxAttempts; attempt++ {
		if cl.isClosed() {
			cl.fail(ErrClosed)
			return false
		}
		if attempt > 0 {
			time.Sleep(backoff)
			backoff *= 2
			if backoff > cl.opts.BackoffMax {
				backoff = cl.opts.BackoffMax
			}
		}
		nt, err := cl.dial()
		if err != nil {
			// With several replicas configured, a dead target rotates to
			// the next one — the failover sweep.
			cl.rotateTarget()
			continue
		}
		if cl.resume(nt) {
			cl.reconnects.Add(1)
			return true
		}
		nt.close()
		cl.rotateTarget()
	}
	if len(cl.targets) > 1 {
		// The sweep dialed every replica (with backoff) and none came up.
		cl.fail(fmt.Errorf("%w: %v", ErrNoReplicas, cause))
		return false
	}
	cl.fail(fmt.Errorf("%w: reconnect gave up: %v", ErrClosed, cause))
	return false
}

// resume re-registers tenants on a fresh transport, rebuilds the handle
// map, replays replayable in-flight calls and cancels the rest. Called
// with wmu held by the read loop, which is also the only reader of nt.
func (cl *Client) resume(nt transport) bool {
	// Cluster mode: probe the server's epoch and role first; a backup or
	// fenced replica is promoted at a higher epoch before any traffic,
	// and a replica whose epoch is behind ours is refused outright.
	if cl.cluster && !cl.clusterHandshake(nt) {
		return false
	}
	cl.mu.Lock()
	users := make([]uint16, 0, len(cl.regs))
	for h := range cl.regs {
		users = append(users, h)
	}
	cl.mu.Unlock()
	sort.Slice(users, func(i, j int) bool { return users[i] < users[j] })

	// Re-register each tenant synchronously: writes and reads on nt are
	// exclusively ours until the read loop resumes.
	for _, uh := range users {
		cl.mu.Lock()
		reg, ok := cl.regs[uh]
		cl.mu.Unlock()
		if !ok {
			continue
		}
		hdr := protocol.Header{Opcode: protocol.OpRegister, Cookie: cl.cookie.Add(1)}
		if err := nt.writeMessage(&hdr, reg.Marshal()); err != nil {
			return false
		}
		m, err := nt.readMessage()
		if err != nil {
			return false
		}
		cl.mu.Lock()
		if m.Header.Status == protocol.StatusOK {
			cl.handleMap[uh] = m.Header.Handle
		} else {
			// The server no longer admits this tenant (capacity was
			// re-allocated). Later calls on the handle get NoTenant.
			delete(cl.regs, uh)
			delete(cl.handleMap, uh)
		}
		cl.mu.Unlock()
	}

	// Partition in-flight calls: replay the idempotent ones, cancel the
	// rest with a typed error.
	cl.mu.Lock()
	calls := make([]*Call, 0, len(cl.pending))
	for _, c := range cl.pending {
		calls = append(calls, c)
	}
	sort.Slice(calls, func(i, j int) bool { return calls[i].hdr.Cookie < calls[j].hdr.Cookie })
	var cancel []*Call
	var pins []*bufpool.Buf
	type replayReq struct {
		hdr     protocol.Header
		payload []byte
	}
	var replay []replayReq
	for _, c := range calls {
		if c.replayable() {
			// Snapshot the request and pin its pooled payload for the
			// replay write: an expire timer may complete (and release) the
			// call between this snapshot and the write below. The retain —
			// and the payload capture — happen in the same critical section
			// that saw the call still pending, so neither can race the
			// timer's release (which runs strictly after its own
			// pending-map removal).
			if c.lease != nil {
				c.lease.Retain()
				pins = append(pins, c.lease)
			}
			replay = append(replay, replayReq{hdr: c.hdr, payload: c.payload})
		} else {
			delete(cl.pending, c.hdr.Cookie)
			cancel = append(cancel, c)
		}
	}
	cl.mu.Unlock()
	for _, c := range cancel {
		if c.timer != nil {
			c.timer.Stop()
		}
		c.Err = fmt.Errorf("%w: connection reset during reconnect", ErrClosed)
		c.release()
		close(c.Done)
	}
	replayErr := false
	for _, r := range replay {
		w := r.hdr
		w.Handle = cl.mapHandle(r.hdr.Handle)
		// Re-stamp the epoch: a replay after failover must carry the new
		// primary's epoch or it would bounce off its own fence.
		w.Epoch = cl.Epoch()
		cl.stampShardVersion(&w)
		if err := nt.writeMessage(&w, r.payload); err != nil {
			replayErr = true
			break
		}
		cl.replayed.Add(1)
	}
	for _, p := range pins {
		p.Release() // drop the replay pin
	}
	if replayErr {
		return false
	}

	cl.mu.Lock()
	cl.t = nt
	cl.mu.Unlock()
	return true
}

// mapHandle translates a user-visible handle to the server's current one.
func (cl *Client) mapHandle(h uint16) uint16 {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	if sh, ok := cl.handleMap[h]; ok {
		return sh
	}
	return h
}

// send registers the call and writes the request.
func (cl *Client) send(hdr *protocol.Header, payload []byte) (*Call, error) {
	return cl.sendLease(hdr, payload, nil)
}

// sendLease is send with a pooled payload lease attached to the call
// (checksum-sealed write frames). Ownership of the lease transfers to the
// call on success and is released here on every early-error path.
func (cl *Client) sendLease(hdr *protocol.Header, payload []byte, lease *bufpool.Buf) (*Call, error) {
	return cl.sendCall(hdr, payload, lease, 0)
}

// sendCall is sendLease for a traced request: trace (non-zero) is
// recorded on the call BEFORE it enters the pending map, so the read
// loop's deliver can never observe a half-initialized call.
func (cl *Client) sendCall(hdr *protocol.Header, payload []byte, lease *bufpool.Buf, trace uint64) (*Call, error) {
	call := &Call{Done: make(chan struct{}), payload: payload, lease: lease, staleLeft: 2,
		TraceID: trace, startNS: cl.now()}
	hdr.Cookie = cl.cookie.Add(1)
	call.hdr = *hdr

	cl.mu.Lock()
	if cl.closed {
		cl.mu.Unlock()
		call.release()
		return nil, ErrClosed
	}
	cl.pending[hdr.Cookie] = call
	if cl.opts.Timeout > 0 {
		call.timer = time.AfterFunc(cl.opts.Timeout, func() { cl.expire(call) })
	}
	cl.mu.Unlock()

	w := *hdr
	w.Handle = cl.mapHandle(hdr.Handle)
	w.Epoch = cl.Epoch()
	cl.stampShardVersion(&w)
	cl.wmu.Lock()
	t := cl.t
	var err error
	switch tt := t.(type) {
	case nil:
		err = ErrClosed
	case *tcpTransport:
		// Buffered submission: frame into the transport's writer and let
		// the flusher goroutine coalesce the flush across the burst.
		if err = tt.writeMessageBuffered(&w, payload); err == nil {
			cl.dirty = true
		}
	default:
		err = t.writeMessage(&w, payload)
	}
	cl.wmu.Unlock()
	if err == nil {
		cl.kickFlush()
	}
	if err != nil {
		if errors.Is(err, ErrBadRequest) {
			cl.drop(call)
			return nil, err // transport-level size limit, not a dead link
		}
		if cl.dial != nil && !cl.isClosed() && call.replayable() {
			// The read loop will detect the dead transport and replay
			// this call after reconnecting; the caller just waits.
			return call, nil
		}
		cl.drop(call)
		return nil, fmt.Errorf("%w: %v", ErrClosed, err)
	}
	return call, nil
}

func (cl *Client) wait(call *Call) error {
	<-call.Done
	return call.Err
}

// Register registers a tenant and returns its handle. The handle stays
// valid across reconnects: the client re-registers the tenant and remaps
// internally.
func (cl *Client) Register(reg protocol.Registration) (uint16, error) {
	call, err := cl.send(&protocol.Header{Opcode: protocol.OpRegister}, reg.Marshal())
	if err != nil {
		return 0, err
	}
	if err := cl.wait(call); err != nil {
		return 0, err
	}
	h := call.handle
	cl.mu.Lock()
	cl.regs[h] = reg
	cl.handleMap[h] = h
	cl.mu.Unlock()
	return h, nil
}

// Unregister removes a tenant.
func (cl *Client) Unregister(handle uint16) error {
	call, err := cl.send(&protocol.Header{Opcode: protocol.OpUnregister, Handle: handle}, nil)
	if err != nil {
		return err
	}
	err = cl.wait(call)
	if err == nil {
		cl.mu.Lock()
		delete(cl.regs, handle)
		delete(cl.handleMap, handle)
		cl.mu.Unlock()
	}
	return err
}

// GoRead starts an asynchronous read of n bytes at lba (512-byte units).
func (cl *Client) GoRead(handle uint16, lba uint32, n int) (*Call, error) {
	max := protocol.MaxPayload
	if cl.opts.Checksum {
		max -= protocol.ChecksumSize // room for the response trailer
	}
	if n <= 0 || n > max {
		return nil, ErrBadRequest
	}
	hdr := &protocol.Header{
		Opcode: protocol.OpRead,
		Handle: handle,
		LBA:    lba,
		Count:  uint32(n),
	}
	if cl.opts.Checksum {
		// Ask the server to seal the response; ReadMessage verifies and
		// strips the trailer, and deliver maps a mismatch to ErrChecksum.
		hdr.Flags |= protocol.FlagChecksum
	}
	if cl.opts.Trace {
		// Traced read: the request's entire payload is the 16-byte trace
		// trailer (reads otherwise have no body to append it to).
		trace := cl.nextTrace()
		hdr.Flags |= protocol.FlagTraced
		lease := bufpool.Get(protocol.TraceSize)
		payload := protocol.AppendTrace(lease.Bytes()[:0], trace, trace)
		return cl.sendCall(hdr, payload, lease, trace)
	}
	return cl.send(hdr, nil)
}

// GoWrite starts an asynchronous write of data at lba (512-byte units).
func (cl *Client) GoWrite(handle uint16, lba uint32, data []byte) (*Call, error) {
	return cl.goWriteFlags(handle, lba, data, 0)
}

// GoWriteHinted starts an asynchronous write carrying an FDP-style data
// lifetime hint (protocol.HintShort or protocol.HintLong). The hint is
// advisory: placement-aware servers segregate hinted writes into
// separate streams/erase units to cut write amplification; others count
// and ignore it. Traced clients drop the hint (the trace trailer owns
// that path today).
func (cl *Client) GoWriteHinted(handle uint16, lba uint32, data []byte, hint int) (*Call, error) {
	var flags uint16
	switch hint {
	case protocol.HintShort:
		flags = protocol.FlagHintShort
	case protocol.HintLong:
		flags = protocol.FlagHintLong
	}
	return cl.goWriteFlags(handle, lba, data, flags)
}

// WriteHinted is the synchronous form of GoWriteHinted.
func (cl *Client) WriteHinted(handle uint16, lba uint32, data []byte, hint int) error {
	call, err := cl.GoWriteHinted(handle, lba, data, hint)
	if err != nil {
		return err
	}
	return cl.wait(call)
}

func (cl *Client) goWriteFlags(handle uint16, lba uint32, data []byte, flags uint16) (*Call, error) {
	if cl.opts.Trace {
		trace := cl.nextTrace()
		return cl.goWriteTraced(handle, lba, data, trace, trace)
	}
	max := protocol.MaxPayload
	if cl.opts.Checksum {
		max -= protocol.ChecksumSize
	}
	if len(data) == 0 || len(data) > max {
		return nil, ErrBadRequest
	}
	hdr := &protocol.Header{
		Opcode: protocol.OpWrite,
		Handle: handle,
		LBA:    lba,
		Count:  uint32(len(data)),
		Flags:  flags,
	}
	payload := data
	var lease *bufpool.Buf
	if cl.opts.Checksum {
		hdr.Flags |= protocol.FlagChecksum
		// Seal into a pooled frame: one copy into a lease with trailer
		// slack, CRC appended in place. The lease lives until the call
		// completes — the sealed payload may be replayed across
		// reconnects and failovers.
		lease = bufpool.Get(len(data) + protocol.ChecksumSize)
		buf := lease.Bytes()[:len(data)]
		copy(buf, data)
		payload = protocol.AppendChecksum(buf)
	}
	return cl.sendLease(hdr, payload, lease)
}

// GoWriteTraced starts an asynchronous write carrying an explicit trace
// context (trace id + parent span id), regardless of Options.Trace. The
// migration sink uses it to relay forwarded writes without breaking the
// originating request's timeline; Options.Trace routes here too (with
// parent == trace: the client root span).
func (cl *Client) GoWriteTraced(handle uint16, lba uint32, data []byte, trace, parent uint64) (*Call, error) {
	if trace == 0 {
		return cl.GoWrite(handle, lba, data)
	}
	return cl.goWriteTraced(handle, lba, data, trace, parent)
}

func (cl *Client) goWriteTraced(handle uint16, lba uint32, data []byte, trace, parent uint64) (*Call, error) {
	max := protocol.MaxPayload - protocol.TraceSize
	if cl.opts.Checksum {
		max -= protocol.ChecksumSize
	}
	if len(data) == 0 || len(data) > max {
		return nil, ErrBadRequest
	}
	hdr := &protocol.Header{
		Opcode: protocol.OpWrite,
		Handle: handle,
		LBA:    lba,
		Count:  uint32(len(data)),
		Flags:  protocol.FlagTraced,
	}
	// Seal data [+ CRC] + trace trailer into one pooled frame. Layering
	// matters: the server strips the trace trailer before verifying the
	// checksum, so the CRC goes on first (over data only).
	lease := bufpool.Get(len(data) + protocol.ChecksumSize + protocol.TraceSize)
	buf := lease.Bytes()[:len(data)]
	copy(buf, data)
	if cl.opts.Checksum {
		hdr.Flags |= protocol.FlagChecksum
		buf = protocol.AppendChecksum(buf)
	}
	payload := protocol.AppendTrace(buf, trace, parent)
	return cl.sendCall(hdr, payload, lease, trace)
}

// WriteTraced is the synchronous form of GoWriteTraced.
func (cl *Client) WriteTraced(handle uint16, lba uint32, data []byte, trace, parent uint64) error {
	call, err := cl.GoWriteTraced(handle, lba, data, trace, parent)
	if err != nil {
		return err
	}
	return cl.wait(call)
}

// GoBarrier starts an asynchronous ordering barrier on the tenant: it
// completes after every I/O submitted before it has completed, and I/O
// submitted after it waits for it.
func (cl *Client) GoBarrier(handle uint16) (*Call, error) {
	return cl.send(&protocol.Header{Opcode: protocol.OpBarrier, Handle: handle}, nil)
}

// Barrier issues a synchronous ordering barrier.
func (cl *Client) Barrier(handle uint16) error {
	call, err := cl.GoBarrier(handle)
	if err != nil {
		return err
	}
	return cl.wait(call)
}

// Stats fetches the tenant's scheduler counters.
func (cl *Client) Stats(handle uint16) (protocol.TenantStats, error) {
	var out protocol.TenantStats
	call, err := cl.send(&protocol.Header{Opcode: protocol.OpStats, Handle: handle}, nil)
	if err != nil {
		return out, err
	}
	if err := cl.wait(call); err != nil {
		return out, err
	}
	if err := out.Unmarshal(call.Data); err != nil {
		return out, err
	}
	return out, nil
}

// stampShardVersion writes the routing-table version echo into an I/O
// request header (the Status field is unused on requests). Non-I/O
// opcodes are left untouched so control traffic stays byte-identical to
// the pre-sharding protocol.
func (cl *Client) stampShardVersion(w *protocol.Header) {
	if w.Opcode != protocol.OpRead && w.Opcode != protocol.OpWrite {
		return
	}
	if v := cl.shardVer.Load(); v != 0 {
		w.Status = protocol.Status(uint16(v))
	}
}

// FetchShardMap retrieves the server's installed shard map: its version
// (0 = none installed) and marshaled form (shard.Unmarshal decodes it).
func (cl *Client) FetchShardMap() (uint32, []byte, error) {
	call, err := cl.send(&protocol.Header{Opcode: protocol.OpShardMap}, nil)
	if err != nil {
		return 0, nil, err
	}
	if err := cl.wait(call); err != nil {
		return 0, nil, err
	}
	return call.respLBA, call.Data, nil
}

// InstallShardMap offers a marshaled shard map to the server, which
// adopts it iff newer. Returns the server's resulting map version; a
// server already holding a newer map returns it with ErrStaleEpoch.
func (cl *Client) InstallShardMap(raw []byte) (uint32, error) {
	call, err := cl.send(&protocol.Header{Opcode: protocol.OpShardMap}, raw)
	if err != nil {
		return 0, err
	}
	err = cl.wait(call)
	return call.respLBA, err
}

// Read reads n bytes at lba synchronously. On a hedging cluster client,
// a read that outlives the adaptive hedge delay is duplicated to a backup
// replica and the first successful response wins.
func (cl *Client) Read(handle uint16, lba uint32, n int) ([]byte, error) {
	call, err := cl.GoRead(handle, lba, n)
	if err != nil {
		return nil, err
	}
	if h := cl.hedge; h != nil {
		return h.await(call, handle, lba, n)
	}
	if err := cl.wait(call); err != nil {
		return nil, err
	}
	return call.Data, nil
}

// Write writes data at lba synchronously.
func (cl *Client) Write(handle uint16, lba uint32, data []byte) error {
	call, err := cl.GoWrite(handle, lba, data)
	if err != nil {
		return err
	}
	return cl.wait(call)
}
