package client

import (
	"bufio"
	"fmt"
	"net"
	"time"

	"github.com/reflex-go/reflex/internal/protocol"
)

// Volume client API (DESIGN.md §18): thin-provisioned logical volumes,
// CoW snapshots and writable clones, and snapshot-diff restore streams.
//
// Management calls (VolCreate, VolSnapshot, ...) ride the normal request
// pipeline — cookie-matched, timeout-bounded, epoch-stamped. Volume I/O
// is just Read/Write/Trim on a handle registered through OpenVolume: the
// server translates logical LBAs through the volume's extent map, so the
// data path is unchanged from the client's point of view.

// VolCreate creates a thin-provisioned volume of blocks logical 512-byte
// blocks and returns its volume handle (bind tenants to it with
// OpenVolume).
func (cl *Client) VolCreate(name string, blocks uint64) (uint16, error) {
	req := protocol.VolumeReq{Name: name, Blocks: blocks}
	call, err := cl.send(&protocol.Header{Opcode: protocol.OpVolCreate}, req.Marshal())
	if err != nil {
		return 0, err
	}
	if err := cl.wait(call); err != nil {
		return 0, err
	}
	return call.handle, nil
}

// VolDelete deletes a volume (gen 0) or one of its snapshots (gen != 0)
// and returns how many thin extents the delete reclaimed.
func (cl *Client) VolDelete(name string, gen uint64) (int, error) {
	req := protocol.VolumeReq{Name: name, Gen: gen}
	call, err := cl.send(&protocol.Header{Opcode: protocol.OpVolDelete}, req.Marshal())
	if err != nil {
		return 0, err
	}
	if err := cl.wait(call); err != nil {
		return 0, err
	}
	return int(call.respCount), nil
}

// VolSnapshot takes an instant CoW snapshot of the volume and returns
// the frozen generation number.
func (cl *Client) VolSnapshot(name string) (uint64, error) {
	req := protocol.VolumeReq{Name: name}
	call, err := cl.send(&protocol.Header{Opcode: protocol.OpVolSnapshot}, req.Marshal())
	if err != nil {
		return 0, err
	}
	if err := cl.wait(call); err != nil {
		return 0, err
	}
	// The generation rides the payload full-width (Header.LBA is 32-bit).
	return protocol.UnmarshalGen(call.Data)
}

// VolClone creates a writable clone named name from source@gen (a
// generation VolSnapshot returned) and returns the clone's volume
// handle.
func (cl *Client) VolClone(source string, gen uint64, name string) (uint16, error) {
	req := protocol.VolumeReq{Name: name, Source: source, Gen: gen}
	call, err := cl.send(&protocol.Header{Opcode: protocol.OpVolClone}, req.Marshal())
	if err != nil {
		return 0, err
	}
	if err := cl.wait(call); err != nil {
		return 0, err
	}
	return call.handle, nil
}

// VolDiff returns the extents written in generation window (genA, genB]
// (genB 0 = the volume's current generation) plus the resolved upper
// generation — the incremental-backup manifest.
func (cl *Client) VolDiff(name string, genA, genB uint64) (protocol.VolDiff, uint64, error) {
	var d protocol.VolDiff
	req := protocol.VolumeReq{Name: name, GenA: genA, GenB: genB}
	call, err := cl.send(&protocol.Header{Opcode: protocol.OpVolDiff}, req.Marshal())
	if err != nil {
		return d, 0, err
	}
	if err := cl.wait(call); err != nil {
		return d, 0, err
	}
	if err := d.Unmarshal(call.Data); err != nil {
		return d, 0, err
	}
	return d, d.Gen, nil
}

// VolList fetches the server's volume directory.
func (cl *Client) VolList() ([]protocol.VolumeInfo, error) {
	call, err := cl.send(&protocol.Header{Opcode: protocol.OpVolList}, nil)
	if err != nil {
		return nil, err
	}
	if err := cl.wait(call); err != nil {
		return nil, err
	}
	return protocol.UnmarshalVolumeList(call.Data, int(call.respCount))
}

// OpenVolume registers a tenant bound to a volume: reads, writes and
// trims on the returned handle are volume-addressed (logical LBAs,
// thin-provisioned, CoW under snapshots) and bounded by the volume's
// logical size instead of the raw device. The registration's Device must
// be 0 (volumes live on the clustered device).
func (cl *Client) OpenVolume(reg protocol.Registration, vol uint16) (uint16, error) {
	if vol == 0 || vol > 255 {
		return 0, ErrBadRequest
	}
	reg.Volume = uint8(vol)
	return cl.Register(reg)
}

// GoTrim starts an asynchronous discard of count bytes at lba (512-byte
// units). On a volume-bound handle the fully covered thin extents are
// freed (and read as zeros afterwards); on a raw handle it is an
// advisory no-op. Count is not payload-bounded — nothing moves.
func (cl *Client) GoTrim(handle uint16, lba uint32, count uint32) (*Call, error) {
	if count == 0 {
		return nil, ErrBadRequest
	}
	return cl.send(&protocol.Header{
		Opcode: protocol.OpTrim,
		Handle: handle,
		LBA:    lba,
		Count:  count,
	}, nil)
}

// Trim discards synchronously, returning how many thin extents the
// server freed.
func (cl *Client) Trim(handle uint16, lba uint32, count uint32) (uint32, error) {
	call, err := cl.GoTrim(handle, lba, count)
	if err != nil {
		return 0, err
	}
	if err := cl.wait(call); err != nil {
		return 0, err
	}
	return call.respCount, nil
}

// VolRestore opens a dedicated connection to addr and receives the
// snapshot-diff stream Diff(genA, genB] of the named volume (genB 0 =
// the source's current generation), calling apply for every chunk
// (byte offset in the volume's logical space plus its data, in ascending
// offset order). Chunks are acked one at a time, so the stream is
// self-paced and never builds a queue in front of the source's
// latency-critical traffic. Returns the resolved upper generation: after
// a complete restore, the receiver holds the volume's image at exactly
// that generation (given it started from a genA image).
//
// The connection is private to the stream — the chunk traffic would
// interleave with cookie-matched responses on a shared client.
func VolRestore(addr, name string, genA, genB uint64, apply func(off int64, data []byte) error) (uint64, error) {
	c, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		return 0, err
	}
	defer c.Close()
	if tc, ok := c.(*net.TCPConn); ok {
		tc.SetNoDelay(true)
	}
	br := bufio.NewReaderSize(c, 256<<10)
	bw := bufio.NewWriterSize(c, 4<<10)

	write := func(hdr *protocol.Header, payload []byte) error {
		hdr.Len = uint32(len(payload))
		var hb [protocol.HeaderSize]byte
		hdr.MarshalTo(hb[:])
		if _, err := bw.Write(hb[:]); err != nil {
			return err
		}
		if len(payload) > 0 {
			if _, err := bw.Write(payload); err != nil {
				return err
			}
		}
		return bw.Flush()
	}

	req := protocol.VolumeReq{Name: name, GenA: genA, GenB: genB}
	if err := write(&protocol.Header{Opcode: protocol.OpVolStream, Cookie: 1}, req.Marshal()); err != nil {
		return 0, err
	}

	// Self-paced chunks arrive one round trip apart, so a healthy stream
	// is never silent for long: an idle read deadline turns a dead or
	// wedged source into an error instead of a forever-blocked receiver.
	const idle = 30 * time.Second
	readFrame := func(msg *protocol.Message) error {
		if err := c.SetReadDeadline(time.Now().Add(idle)); err != nil {
			return err
		}
		return protocol.ReadMessageInto(br, msg, nil)
	}

	var msg protocol.Message
	if err := readFrame(&msg); err != nil {
		return 0, err
	}
	if msg.Header.Opcode != protocol.OpVolStream || msg.Header.Flags&protocol.FlagResponse == 0 {
		return 0, fmt.Errorf("reflex: unexpected %s frame before stream OK", msg.Header.Opcode)
	}
	if err := statusErr(msg.Header.Status); err != nil {
		return 0, err
	}
	gen, err := protocol.UnmarshalGen(msg.Payload)
	if err != nil {
		return 0, err
	}

	for {
		if err := readFrame(&msg); err != nil {
			return 0, err
		}
		hdr := msg.Header
		if hdr.Opcode != protocol.OpVolStream || hdr.Flags&protocol.FlagResponse != 0 {
			return 0, fmt.Errorf("reflex: unexpected %s frame in volume stream", hdr.Opcode)
		}
		if hdr.Len == 0 && hdr.Count == 0 {
			// Terminal marker: StatusOK means every chunk before it was
			// acked; a non-OK status is the source's abort signal (backend
			// read failure) — the partial image must not pass as a restore.
			if err := statusErr(hdr.Status); err != nil {
				return 0, fmt.Errorf("reflex: volume stream aborted by source: %w", err)
			}
			return gen, nil
		}
		off := int64(hdr.LBA) * protocol.BlockSize
		if err := apply(off, msg.Payload); err != nil {
			return 0, err
		}
		// Ack after apply: the sender's self-pacing window is exactly one
		// chunk, and an ack promises the chunk is durable at the receiver.
		ack := protocol.Header{
			Opcode: protocol.OpVolStream,
			Flags:  protocol.FlagResponse,
			Cookie: hdr.Cookie,
			Status: protocol.StatusOK,
		}
		if err := write(&ack, nil); err != nil {
			return 0, err
		}
	}
}
