package client

import (
	"errors"
	"net"
	"sync/atomic"
	"testing"
	"time"

	"github.com/reflex-go/reflex/internal/protocol"
)

// clusterHandler answers the cluster handshake (OpPing/OpPromote) plus the
// basic ops, reporting a primary at the given epoch.
func clusterHandler(epoch uint16) func(m *protocol.Message, reply func(*protocol.Header, []byte)) {
	return func(m *protocol.Message, reply func(*protocol.Header, []byte)) {
		h := protocol.Header{
			Opcode: m.Header.Opcode,
			Flags:  protocol.FlagResponse,
			Handle: 1,
			Cookie: m.Header.Cookie,
			Epoch:  epoch,
		}
		switch m.Header.Opcode {
		case protocol.OpPing:
			h.Count = 0 // primary role bits
			reply(&h, nil)
		default:
			echoHandler(m, reply)
		}
	}
}

func TestDialClusterEmptyAddrs(t *testing.T) {
	if _, err := DialCluster(nil, Options{}); !errors.Is(err, ErrNoReplicas) {
		t.Fatalf("err = %v, want ErrNoReplicas", err)
	}
}

func TestDialClusterAllReplicasDown(t *testing.T) {
	// Reserve two ports and close them: both dials must be refused.
	dead := make([]string, 2)
	for i := range dead {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		dead[i] = ln.Addr().String()
		ln.Close()
	}
	_, err := DialCluster(dead, Options{Timeout: 200 * time.Millisecond})
	if !errors.Is(err, ErrNoReplicas) {
		t.Fatalf("err = %v, want ErrNoReplicas", err)
	}
}

// TestDialClusterSkipsDeadFirstReplica: the first listed replica is down;
// the sweep must land on the second and adopt its epoch.
func TestDialClusterSkipsDeadFirstReplica(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	deadAddr := ln.Addr().String()
	ln.Close()

	liveAddr := fakeServer(t, clusterHandler(7))
	cl, err := DialCluster([]string{deadAddr, liveAddr}, Options{Timeout: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if cl.Epoch() != 7 {
		t.Fatalf("epoch %d after handshake, want 7", cl.Epoch())
	}
}

// TestDialClusterPromotesBackup: a replica that answers the handshake in
// backup role is promoted at a strictly higher epoch before any traffic.
func TestDialClusterPromotesBackup(t *testing.T) {
	var promoted atomic.Bool
	addr := fakeServer(t, func(m *protocol.Message, reply func(*protocol.Header, []byte)) {
		h := protocol.Header{
			Opcode: m.Header.Opcode,
			Flags:  protocol.FlagResponse,
			Handle: 1,
			Cookie: m.Header.Cookie,
		}
		switch m.Header.Opcode {
		case protocol.OpPing:
			if promoted.Load() {
				h.Epoch, h.Count = 4, 0
			} else {
				h.Epoch, h.Count = 3, uint32(protocol.RoleBackupBit)
			}
			reply(&h, nil)
		case protocol.OpPromote:
			promoted.Store(true)
			h.Epoch = m.Header.Epoch
			reply(&h, nil)
		default:
			echoHandler(m, reply)
		}
	})
	cl, err := DialCluster([]string{addr}, Options{Timeout: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if !promoted.Load() {
		t.Fatal("backup-role replica was not promoted during the handshake")
	}
	if cl.Epoch() != 4 {
		t.Fatalf("client epoch %d after promote, want 4", cl.Epoch())
	}
	if cl.Failovers() != 1 {
		t.Fatalf("failovers %d, want 1", cl.Failovers())
	}
}

// TestClusterRequestsCarryEpoch: after the handshake, data-path requests
// are stamped with the adopted epoch (the split-brain write fence).
func TestClusterRequestsCarryEpoch(t *testing.T) {
	gotEpoch := make(chan uint16, 1)
	addr := fakeServer(t, func(m *protocol.Message, reply func(*protocol.Header, []byte)) {
		if m.Header.Opcode == protocol.OpWrite {
			select {
			case gotEpoch <- m.Header.Epoch:
			default:
			}
		}
		clusterHandler(9)(m, reply)
	})
	cl, err := DialCluster([]string{addr}, Options{Timeout: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	h, err := cl.Register(protocol.Registration{BestEffort: true, Writable: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.Write(h, 0, make([]byte, 512)); err != nil {
		t.Fatal(err)
	}
	select {
	case e := <-gotEpoch:
		if e != 9 {
			t.Fatalf("write stamped epoch %d, want 9", e)
		}
	case <-time.After(time.Second):
		t.Fatal("no write observed")
	}
}

// TestPlainDialUnaffectedByClusterPaths: the non-cluster Dial path still
// works (no handshake sent, epoch stays 0).
func TestPlainDialUnaffectedByClusterPaths(t *testing.T) {
	var sawPing atomic.Bool
	addr := fakeServer(t, func(m *protocol.Message, reply func(*protocol.Header, []byte)) {
		if m.Header.Opcode == protocol.OpPing {
			sawPing.Store(true)
		}
		echoHandler(m, reply)
	})
	cl, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if _, err := cl.Register(protocol.Registration{BestEffort: true}); err != nil {
		t.Fatal(err)
	}
	if sawPing.Load() {
		t.Fatal("plain Dial sent a cluster handshake")
	}
	if cl.Epoch() != 0 {
		t.Fatalf("plain client epoch %d, want 0", cl.Epoch())
	}
}
