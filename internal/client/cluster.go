package client

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"github.com/reflex-go/reflex/internal/obs"
	"github.com/reflex-go/reflex/internal/protocol"
)

// Client-side cluster robustness (DESIGN.md §11): epoch-fenced failover
// across a replica set and hedged reads against the backup.
//
// Failover reuses PR 2's reconnect machinery wholesale — the dial target
// is client state (not a captured closure), so swapping it redirects the
// existing backoff/re-register/replay pipeline at the next replica. What
// cluster mode adds on top:
//
//   - a handshake on every fresh transport (OpPing; promote a backup or
//     fenced replica at a higher epoch before any traffic; refuse a
//     replica whose epoch is behind ours — it has stale data);
//   - forced failover triggers that a half-open or degraded replica never
//     raises as transport errors: a run of request timeouts, a run of
//     device errors, or a StatusStaleEpoch refusal;
//   - best-effort fencing of the deposed primary after a promotion, so a
//     merely-slow (not dead) old primary cannot accept stale writes.

// Failover tuning knobs.
const (
	// timeoutFailoverRuns is how many consecutive ErrTimeout resolutions
	// force a failover (a blackholed replica only ever times out).
	timeoutFailoverRuns = 2
	// deviceFailoverRuns is how many consecutive ErrDevice resolutions
	// force a failover (a dying device error-storms).
	deviceFailoverRuns = 3
	// hedgeEvalEvery rate-limits re-evaluating the adaptive hedge delay
	// from the windowed p95.
	hedgeEvalEvery = 100 * time.Millisecond
)

// DialCluster connects to a replicated server pair (or any replica set):
// addrs lists every replica, first entry tried first. Options.Reconnect
// is implied. The client probes the target's epoch and role on every
// (re)connection, fails over between replicas on timeouts, resets, device
// errors and stale-epoch refusals, and — with Options.HedgeReads — hedges
// slow reads to a backup replica.
func DialCluster(addrs []string, o Options) (*Client, error) {
	if len(addrs) == 0 {
		return nil, ErrNoReplicas
	}
	o.Reconnect = true
	o.fill()
	cl := newClient(nil, o, append([]string(nil), addrs...))
	cl.cluster = true
	cl.dial = cl.dialCurrent

	// Initial connection: sweep the replica list once, handshaking each
	// candidate, before giving up with the typed no-replicas error.
	var t transport
	var lastErr error
	for i := 0; i < len(cl.targets); i++ {
		nt, err := cl.dialCurrent()
		if err != nil {
			lastErr = err
			cl.rotateTarget()
			continue
		}
		if !cl.clusterHandshake(nt) {
			nt.close()
			lastErr = ErrStaleEpoch
			cl.rotateTarget()
			continue
		}
		t = nt
		break
	}
	if t == nil {
		return nil, fmt.Errorf("%w: %v", ErrNoReplicas, lastErr)
	}
	cl.t = t
	if o.HedgeReads && len(cl.targets) > 1 {
		cl.hedge = newHedger(cl)
	}
	go cl.readLoop()
	return cl, nil
}

// Epoch returns the cluster epoch the client currently stamps on
// requests (0 on non-cluster clients).
func (cl *Client) Epoch() uint16 { return uint16(cl.epochA.Load()) }

// Failovers returns how many times the client promoted a new primary.
func (cl *Client) Failovers() uint64 { return cl.failovers.Load() }

// HedgesWon returns how many hedged reads were answered first by the
// backup (0 when hedging is disabled).
func (cl *Client) HedgesWon() uint64 {
	if cl.hedge == nil {
		return 0
	}
	return cl.hedge.won.Load()
}

// HedgesIssued returns how many duplicate reads the hedger sent.
func (cl *Client) HedgesIssued() uint64 {
	if cl.hedge == nil {
		return 0
	}
	return cl.hedge.issued.Load()
}

// setEpoch raises the client's epoch (never lowers it).
func (cl *Client) setEpoch(e uint16) {
	for {
		cur := cl.epochA.Load()
		if uint32(e) <= cur || cl.epochA.CompareAndSwap(cur, uint32(e)) {
			return
		}
	}
}

// forceFailover rotates to the next replica and kills the transport; the
// read loop's reconnect then runs the normal failover pipeline (backoff,
// handshake/promote, re-register, replay).
func (cl *Client) forceFailover() {
	if !cl.cluster {
		return
	}
	cl.rotateTarget()
	cl.mu.Lock()
	t := cl.t
	cl.mu.Unlock()
	if t != nil {
		t.close()
	}
}

// clusterHandshake probes a fresh transport (which the caller owns
// exclusively) and makes it safe to use: adopt a healthy primary's epoch,
// promote a backup/fenced replica at a higher epoch, refuse a replica
// whose epoch is behind what this client has already seen (its data may
// be stale). Returns false to make resume try the next replica.
func (cl *Client) clusterHandshake(nt transport) bool {
	ping := protocol.Header{Opcode: protocol.OpPing, Cookie: cl.cookie.Add(1), Epoch: cl.Epoch()}
	if err := nt.writeMessage(&ping, nil); err != nil {
		return false
	}
	m, err := nt.readMessage()
	if err != nil || m.Header.Opcode != protocol.OpPing {
		return false
	}
	srvEpoch, role := m.Header.Epoch, m.Header.Count
	if srvEpoch < cl.Epoch() {
		return false // behind the cluster: stale data, never promote it
	}
	if role&(protocol.RoleBackupBit|protocol.RoleFencedBit) == 0 {
		cl.setEpoch(srvEpoch)
		return true
	}
	// Backup or deposed replica: promote it at a strictly higher epoch.
	promote := protocol.Header{
		Opcode: protocol.OpPromote,
		Cookie: cl.cookie.Add(1),
		Epoch:  srvEpoch + 1,
	}
	if err := nt.writeMessage(&promote, nil); err != nil {
		return false
	}
	m, err = nt.readMessage()
	if err != nil || m.Header.Opcode != protocol.OpPromote ||
		m.Header.Status != protocol.StatusOK {
		return false // lost a promote race or refused: try the next replica
	}
	cl.setEpoch(m.Header.Epoch)
	cl.failovers.Add(1)
	// Split-brain defense in depth: tell the other replicas (in
	// particular a slow-but-alive old primary) that a higher epoch
	// exists. Best-effort and asynchronous — the epoch stamp on every
	// write is the actual correctness fence.
	go cl.fenceOthers(cl.target(), m.Header.Epoch)
	if h := cl.hedge; h != nil {
		h.invalidate()
	}
	return true
}

// fenceOthers sends a best-effort OpFence at epoch e to every replica
// except keep (the just-promoted primary).
func (cl *Client) fenceOthers(keep string, e uint16) {
	for _, addr := range cl.targets {
		if addr == keep {
			continue
		}
		t, err := cl.dialTCP(addr)
		if err != nil {
			continue
		}
		hdr := protocol.Header{Opcode: protocol.OpFence, Cookie: cl.cookie.Add(1), Epoch: e}
		if t.writeMessage(&hdr, nil) == nil {
			// Read the ack so the fence is actually processed before the
			// connection drops; ignore its contents.
			if tt, ok := t.(*tcpTransport); ok {
				tt.c.SetReadDeadline(time.Now().Add(2 * time.Second))
			}
			t.readMessage()
		}
		t.close()
	}
}

// hedger issues duplicate reads to a backup replica when the primary is
// slow. The hedge delay adapts to the client's own windowed read p95 (the
// same quantile the obs SLO sampler watches), clamped to the configured
// bounds: when the primary serves its p95 well, hedges are rare; during a
// GC pulse the delay is overtaken constantly and the backup carries the
// tail. Hedged reads run on the backup's own mirror tenant registration,
// so the primary-side token bucket is never double-charged.
type hedger struct {
	cl *Client

	// lat is the primary-read latency histogram backing the adaptive
	// delay; p95 computes the windowed quantile over it.
	lat *obs.Histogram
	p95 func() float64

	mu       sync.Mutex
	sub      *Client           // plain client to the backup replica
	subAddr  string            // which replica sub talks to
	handles  map[uint16]uint16 // user handle -> backup mirror handle
	delayNS  int64             // cached adaptive delay
	lastEval time.Time

	issued atomic.Uint64
	won    atomic.Uint64
}

func newHedger(cl *Client) *hedger {
	reg := obs.NewRegistry()
	lat := reg.Histogram("client_read_latency_ns", "primary read latency (hedge delay source)")
	h := &hedger{
		cl:      cl,
		lat:     lat,
		p95:     obs.WindowedHistQuantile(lat, 0.95),
		handles: make(map[uint16]uint16),
		delayNS: int64(2 * time.Millisecond), // until the window warms up
	}
	return h
}

// close tears down the backup sub-client.
func (h *hedger) close() {
	h.mu.Lock()
	sub := h.sub
	h.sub = nil
	h.handles = make(map[uint16]uint16)
	h.mu.Unlock()
	if sub != nil {
		sub.Close()
	}
}

// invalidate drops the sub-client (called after a failover: the replica
// it talks to may now be the primary).
func (h *hedger) invalidate() { h.close() }

// delay returns the adaptive hedge delay: the windowed read p95, clamped,
// re-evaluated at most every hedgeEvalEvery.
func (h *hedger) delay() time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	now := time.Now()
	if now.Sub(h.lastEval) >= hedgeEvalEvery {
		h.lastEval = now
		if p := h.p95(); p > 0 {
			d := time.Duration(p)
			if d < h.cl.opts.HedgeMinDelay {
				d = h.cl.opts.HedgeMinDelay
			}
			if d > h.cl.opts.HedgeMaxDelay {
				d = h.cl.opts.HedgeMaxDelay
			}
			h.delayNS = int64(d)
		}
	}
	return time.Duration(h.delayNS)
}

// backup returns (dialing lazily) the sub-client and the mirror handle
// for the user's tenant.
func (h *hedger) backup(user uint16) (*Client, uint16, error) {
	cl := h.cl
	primary := cl.target()

	h.mu.Lock()
	if h.sub != nil && h.subAddr != primary {
		// The failover moved the primary onto our backup; re-pick.
		sub := h.sub
		h.sub = nil
		h.handles = make(map[uint16]uint16)
		h.mu.Unlock()
		sub.Close()
		h.mu.Lock()
	}
	if h.sub == nil {
		var sub *Client
		var err error
		for _, addr := range cl.targets {
			if addr == primary {
				continue
			}
			sub, err = DialOptions(addr, Options{
				Timeout:   cl.opts.Timeout,
				DialerFor: cl.opts.DialerFor,
				Checksum:  cl.opts.Checksum,
			})
			if err == nil {
				h.sub = sub
				h.subAddr = addr
				break
			}
		}
		if h.sub == nil {
			h.mu.Unlock()
			if err == nil {
				err = ErrNoReplicas
			}
			return nil, 0, err
		}
	}
	sub := h.sub
	bh, ok := h.handles[user]
	h.mu.Unlock()
	if ok {
		return sub, bh, nil
	}

	// Mirror the tenant on the backup: hedged reads are admitted and
	// token-accounted there, not against the primary's bucket.
	cl.mu.Lock()
	reg, ok := cl.regs[user]
	cl.mu.Unlock()
	if !ok {
		return nil, 0, ErrNoTenant
	}
	bh, err := sub.Register(reg)
	if err != nil {
		return nil, 0, err
	}
	h.mu.Lock()
	if h.sub == sub && h.handles != nil {
		h.handles[user] = bh
	}
	h.mu.Unlock()
	return sub, bh, nil
}

// dropSub discards a misbehaving sub-client so the next hedge re-dials.
func (h *hedger) dropSub(sub *Client) {
	h.mu.Lock()
	if h.sub != sub {
		h.mu.Unlock()
		return
	}
	h.sub = nil
	h.handles = make(map[uint16]uint16)
	h.mu.Unlock()
	sub.Close()
}

// await races the primary call against an adaptive-delay hedge to the
// backup and returns the first successful response.
func (h *hedger) await(call *Call, user uint16, lba uint32, n int) ([]byte, error) {
	start := time.Now()
	timer := time.NewTimer(h.delay())
	defer timer.Stop()
	select {
	case <-call.Done:
		h.lat.Record(int64(time.Since(start)))
		if call.Err != nil {
			return nil, call.Err
		}
		return call.Data, nil
	case <-timer.C:
	}

	// The primary is past its p95: hedge to the backup.
	sub, bh, err := h.backup(user)
	if err != nil {
		// No backup available; fall back to waiting out the primary.
		<-call.Done
		h.lat.Record(int64(time.Since(start)))
		if call.Err != nil {
			return nil, call.Err
		}
		return call.Data, nil
	}
	hc, err := sub.GoRead(bh, lba, n)
	if err != nil {
		h.dropSub(sub)
		<-call.Done
		h.lat.Record(int64(time.Since(start)))
		if call.Err != nil {
			return nil, call.Err
		}
		return call.Data, nil
	}
	h.issued.Add(1)

	select {
	case <-call.Done:
		h.lat.Record(int64(time.Since(start)))
		if call.Err == nil {
			return call.Data, nil
		}
		// Primary failed outright; the hedge is now the only hope.
		<-hc.Done
		if hc.Err == nil {
			h.won.Add(1)
			return hc.Data, nil
		}
		return nil, call.Err
	case <-hc.Done:
		if hc.Err == nil {
			h.won.Add(1)
			return hc.Data, nil
		}
		// Hedge failed; wait out the primary after all.
		<-call.Done
		h.lat.Record(int64(time.Since(start)))
		if call.Err != nil {
			return nil, call.Err
		}
		return call.Data, nil
	}
}
