package client

import (
	"bufio"
	"bytes"
	"errors"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/reflex-go/reflex/internal/protocol"
)

// TestRequestTimeout: a request whose response never arrives completes
// with ErrTimeout after Options.Timeout — and the connection itself stays
// usable for later calls (a lost response is not a dead transport).
func TestRequestTimeout(t *testing.T) {
	addr := fakeServer(t, func(m *protocol.Message, reply func(*protocol.Header, []byte)) {
		if m.Header.Opcode == protocol.OpRead {
			return // swallow: the response is "lost in the network"
		}
		echoHandler(m, reply)
	})
	cl, err := DialOptions(addr, Options{Timeout: 100 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	h, err := cl.Register(protocol.Registration{Writable: true})
	if err != nil {
		t.Fatal(err)
	}

	t0 := time.Now()
	_, err = cl.Read(h, 0, 512)
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("swallowed read: %v, want ErrTimeout", err)
	}
	if d := time.Since(t0); d < 90*time.Millisecond || d > 5*time.Second {
		t.Fatalf("timeout fired after %v, want ~100ms", d)
	}
	// The transport survives: control traffic still flows.
	if err := cl.Barrier(h); err != nil {
		t.Fatalf("connection dead after a request timeout: %v", err)
	}
}

// remapServer is a server whose first connection assigns one handle and
// then drops dead mid-read; every later connection assigns a different
// handle. It exercises the full reconnect path: re-register, handle
// remap, replay.
type remapServer struct {
	ln    net.Listener
	conns atomic.Int64
}

const (
	remapHandleFirst  = 100
	remapHandleSecond = 200
)

func startRemapServer(t *testing.T) *remapServer {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	rs := &remapServer{ln: ln}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			n := rs.conns.Add(1)
			go rs.serve(c, n)
		}
	}()
	return rs
}

func (rs *remapServer) serve(c net.Conn, n int64) {
	defer c.Close()
	br := bufio.NewReader(c)
	handle := uint16(remapHandleSecond)
	if n == 1 {
		handle = remapHandleFirst
	}
	for {
		m, err := protocol.ReadMessage(br)
		if err != nil {
			return
		}
		hdr := protocol.Header{
			Opcode: m.Header.Opcode,
			Flags:  protocol.FlagResponse,
			Cookie: m.Header.Cookie,
		}
		switch m.Header.Opcode {
		case protocol.OpRegister:
			hdr.Handle = handle
			protocol.WriteMessage(c, &hdr, nil)
		case protocol.OpRead:
			if n == 1 {
				return // die mid-request: the client must reconnect
			}
			if m.Header.Handle != handle {
				// A replay that was not remapped would still carry the
				// first connection's handle — refuse it loudly.
				hdr.Status = protocol.StatusNoTenant
				protocol.WriteMessage(c, &hdr, nil)
				continue
			}
			hdr.Count = m.Header.Count
			protocol.WriteMessage(c, &hdr, bytes.Repeat([]byte{0xAB}, int(m.Header.Count)))
		default:
			protocol.WriteMessage(c, &hdr, nil)
		}
	}
}

// TestReconnectRemapsHandlesAndReplays: the server dies mid-read and comes
// back assigning a different handle. The client must reconnect with
// backoff, re-register its tenants, remap the user-visible handle to the
// new server handle, and replay the in-flight read — which then succeeds
// transparently. The caller keeps using the original handle throughout.
func TestReconnectRemapsHandlesAndReplays(t *testing.T) {
	rs := startRemapServer(t)
	cl, err := DialOptions(rs.ln.Addr().String(), Options{
		Reconnect:   true,
		BackoffBase: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	h, err := cl.Register(protocol.Registration{Writable: true})
	if err != nil {
		t.Fatal(err)
	}
	if h != remapHandleFirst {
		t.Fatalf("first handle = %d, want %d", h, remapHandleFirst)
	}

	// This read hits connection 1, which dies. The reconnect machinery
	// must resolve it against connection 2 without caller involvement.
	data, err := cl.Read(h, 0, 512)
	if err != nil {
		t.Fatalf("read across server death: %v", err)
	}
	if len(data) != 512 || data[0] != 0xAB {
		t.Fatalf("replayed read returned wrong payload (%d bytes)", len(data))
	}
	if got := cl.Reconnects(); got != 1 {
		t.Fatalf("Reconnects() = %d, want 1", got)
	}
	if got := cl.Replayed(); got < 1 {
		t.Fatalf("Replayed() = %d, want >= 1", got)
	}

	// Handle continuity: the original user handle keeps working on the
	// new connection (it maps to the second server handle internally).
	if _, err := cl.Read(h, 8, 512); err != nil {
		t.Fatalf("read on remapped handle: %v", err)
	}
}

// TestReconnectGivesUpBounded: when the server never comes back, the
// reconnect loop stops after MaxAttempts and fails pending calls with
// ErrClosed — it must not retry forever.
func TestReconnectGivesUpBounded(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	var accepted sync.WaitGroup
	accepted.Add(1)
	go func() {
		c, err := ln.Accept()
		if err != nil {
			return
		}
		// Serve exactly one register, then vanish for good.
		br := bufio.NewReader(c)
		m, err := protocol.ReadMessage(br)
		if err == nil && m.Header.Opcode == protocol.OpRegister {
			protocol.WriteMessage(c, &protocol.Header{
				Opcode: protocol.OpRegister,
				Flags:  protocol.FlagResponse,
				Handle: 7,
				Cookie: m.Header.Cookie,
			}, nil)
		}
		protocol.ReadMessage(br) // wait for the next request…
		c.Close()                // …then drop dead
		ln.Close()               // and take the listener with us
		accepted.Done()
	}()

	cl, err := DialOptions(ln.Addr().String(), Options{
		Reconnect:   true,
		MaxAttempts: 3,
		BackoffBase: time.Millisecond,
		BackoffMax:  5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	h, err := cl.Register(protocol.Registration{Writable: true})
	if err != nil {
		t.Fatal(err)
	}

	t0 := time.Now()
	_, err = cl.Read(h, 0, 512)
	accepted.Wait()
	if !errors.Is(err, ErrClosed) {
		t.Fatalf("read against a gone server: %v, want ErrClosed", err)
	}
	// 3 attempts with 1ms..5ms backoff: failure must be prompt, proving
	// the loop is bounded rather than infinite.
	if d := time.Since(t0); d > 10*time.Second {
		t.Fatalf("reconnect gave up after %v — backoff not bounded", d)
	}
	// Later calls fail fast on the closed client.
	if _, err := cl.Read(h, 0, 512); !errors.Is(err, ErrClosed) {
		t.Fatalf("read after give-up: %v, want ErrClosed", err)
	}
}
