// TestShardMigrationSoak is the CI migration soak (run with -race): a
// 4-node cluster of replicated pairs under continuous writer load and a
// latency-critical read probe, subjected to one forced live shard
// migration and one primary kill. The pass conditions are strict:
//
//   - every acked write reads back correctly afterwards (zero lost acked
//     writes, the DESIGN.md §13 invariant);
//   - the LC read probe's p95 stays within the in-process SLO across the
//     move and the kill.
package shard_test

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"sort"
	"sync"
	"testing"
	"time"

	"github.com/reflex-go/reflex/internal/client"
	"github.com/reflex-go/reflex/internal/cluster"
	"github.com/reflex-go/reflex/internal/core"
	"github.com/reflex-go/reflex/internal/protocol"
	"github.com/reflex-go/reflex/internal/server"
	"github.com/reflex-go/reflex/internal/shard"
	"github.com/reflex-go/reflex/internal/storage"
)

// pairNode is one replicated primary/backup pair acting as a single
// named cluster node.
type pairNode struct {
	name    string
	primary *server.Server
	backup  *server.Server
	bk      *cluster.Backup
}

func startPairNode(t *testing.T, name string) *pairNode {
	t.Helper()
	mk := func(backupRole bool) *server.Server {
		srv, err := server.New(server.Config{
			Addr:       "127.0.0.1:0",
			Threads:    2,
			Epoch:      1,
			BackupRole: backupRole,
			Model:      costModel(),
			TokenRate:  1_000_000 * core.TokenUnit,
			NodeName:   name,
		}, storage.NewMem(32<<20))
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { srv.Close() })
		return srv
	}
	p := &pairNode{name: name, primary: mk(false), backup: mk(true)}
	p.bk = cluster.StartBackup(p.primary.Addr(), p.backup, cluster.BackupOptions{})
	t.Cleanup(p.bk.Stop)
	bk := p.bk
	p.backup.SetOnPromote(func(uint16) { go bk.Stop() })
	deadline := time.Now().Add(5 * time.Second)
	for !p.primary.ReplicaCaughtUp() {
		if time.Now().After(deadline) {
			t.Fatalf("pair %s: backup never caught up", name)
		}
		time.Sleep(5 * time.Millisecond)
	}
	return p
}

func (p *pairNode) addrs() []string { return []string{p.primary.Addr(), p.backup.Addr()} }

func p95(durs []time.Duration) time.Duration {
	if len(durs) == 0 {
		return 0
	}
	s := append([]time.Duration(nil), durs...)
	sort.Slice(s, func(a, b int) bool { return s[a] < s[b] })
	return s[(len(s)*95)/100]
}

func TestShardMigrationSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("soak: skipped in -short")
	}
	const (
		numNodes    = 4
		numShards   = 16
		shardBlocks = 1024
		lcSLO       = 250 * time.Millisecond // generous in-process p95 bound (race-enabled CI)
	)
	pairs := make([]*pairNode, numNodes)
	nodes := make([]shard.Node, numNodes)
	for i := range pairs {
		name := fmt.Sprintf("node%d", i)
		pairs[i] = startPairNode(t, name)
		nodes[i] = shard.Node{Name: name, Addrs: pairs[i].addrs()}
	}
	coord, err := shard.NewCoordinator(shard.CoordinatorConfig{
		Nodes:          nodes,
		NumShards:      numShards,
		ShardBlocks:    shardBlocks,
		InstallTimeout: 2 * time.Second,
		AutoHeal:       true,
		Probe: shard.MembershipConfig{
			Interval: 50 * time.Millisecond,
			Timeout:  500 * time.Millisecond,
		},
		Logf: t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := coord.InstallAll(); err != nil {
		t.Fatal(err)
	}
	coord.StartMembership()
	defer coord.Stop()

	var seeds []string
	for _, p := range pairs {
		seeds = append(seeds, p.addrs()...)
	}
	router := func() *shard.Router {
		r, err := shard.NewRouter(shard.RouterConfig{
			Seeds: seeds,
			Reg:   protocol.Registration{BestEffort: true, Writable: true},
			Opts:  client.Options{Timeout: 2 * time.Second},
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { r.Close() })
		return r
	}

	// The shard the forced migration moves, and its source/destination.
	m := coord.Map()
	moveShard := 0
	srcName := m.Nodes[m.Assign[moveShard]].Name
	destName := ""
	for _, n := range m.Nodes {
		if n.Name != srcName {
			destName = n.Name
			break
		}
	}
	// The primary to kill: a node that is NEITHER migration source nor
	// destination (so the two faults exercise independent paths) and that
	// OWNS at least one shard — killing an empty node would fault nothing,
	// since no client ever dials it.
	owned := make(map[int]int)
	for _, o := range m.Assign {
		if o >= 0 {
			owned[int(o)]++
		}
	}
	killIdx := -1
	for i, n := range m.Nodes {
		if n.Name != srcName && n.Name != destName && owned[i] > 0 {
			killIdx = i
			break
		}
	}
	if killIdx < 0 {
		t.Skip("ring left every third node empty (deterministic hash said no)")
	}

	// Writers: three goroutines spraying the whole mapped space, each
	// with its own router, ledgering every acked write.
	const writers = 3
	type entry struct {
		lba uint32
		seq uint64
	}
	var (
		mu      sync.Mutex
		ledger  = map[uint32]uint64{}
		tainted = map[uint32]bool{} // LBAs with a failed write: state undefined
		wrote   uint64
	)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	writerErrs := make(chan error, writers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			r := router()
			seq := uint64(w) << 32
			var softErrs int
			for {
				select {
				case <-stop:
					return
				default:
				}
				seq++
				// Spread across every shard; keep per-writer LBA sets
				// disjoint (lba ≡ w mod 4) so ledger entries never race
				// between writers.
				lba := uint32((seq*7)%(numShards*shardBlocks))/4*4 + uint32(w)
				if err := r.Write(lba, block(lba, seq)); err != nil {
					// A write that FAILS during the kill window was not
					// acked — it never enters the ledger — but the protocol
					// allows it to have executed anyway (timeouts), so the
					// LBA's content is undefined from here on: quarantine it.
					mu.Lock()
					tainted[lba] = true
					mu.Unlock()
					softErrs++
					if softErrs > 200 {
						writerErrs <- fmt.Errorf("writer %d: too many failures, last: %w", w, err)
						return
					}
					time.Sleep(5 * time.Millisecond) // pace retries across a failover
					continue
				}
				mu.Lock()
				ledger[lba] = seq
				wrote++
				mu.Unlock()
			}
		}(w)
	}

	// LC probe: synchronous reads of a fixed LBA in the moving shard,
	// latency sampled continuously. Residue 3 mod 4 — the writers use
	// residues 0..2, so the probe's block is never overwritten.
	probeLBA := uint32(moveShard)*shardBlocks + 3
	var lats []time.Duration
	wg.Add(1)
	go func() {
		defer wg.Done()
		r := router()
		// Seed the probe block so reads return real data.
		for {
			if err := r.Write(probeLBA, block(probeLBA, 1)); err == nil {
				break
			}
			select {
			case <-stop:
				return
			default:
			}
		}
		for {
			select {
			case <-stop:
				return
			default:
			}
			t0 := time.Now()
			if _, err := r.Read(probeLBA, 512); err == nil {
				lats = append(lats, time.Since(t0))
			}
			time.Sleep(2 * time.Millisecond)
		}
	}()

	// Fault 1: forced live migration under load.
	time.Sleep(300 * time.Millisecond)
	if err := coord.MoveShard(moveShard, destName, 30*time.Second); err != nil {
		t.Fatalf("forced migration: %v", err)
	}

	// Fault 2: kill a primary; membership promotes its backup.
	time.Sleep(200 * time.Millisecond)
	pairs[killIdx].primary.Close()
	promoteDeadline := time.Now().Add(10 * time.Second)
	for pairs[killIdx].backup.ClusterEpoch() < 2 {
		if time.Now().After(promoteDeadline) {
			t.Fatal("backup never promoted after primary kill")
		}
		time.Sleep(20 * time.Millisecond)
	}
	time.Sleep(300 * time.Millisecond) // steady-state after both faults

	close(stop)
	wg.Wait()
	close(writerErrs)
	for err := range writerErrs {
		t.Error(err)
	}

	mu.Lock()
	total := wrote
	entries := make([]entry, 0, len(ledger))
	skipped := 0
	for lba, seq := range ledger {
		if tainted[lba] {
			skipped++ // a failed (unacked) write may have executed here
			continue
		}
		entries = append(entries, entry{lba, seq})
	}
	mu.Unlock()
	if total < 100 {
		t.Fatalf("soak produced only %d acked writes", total)
	}
	if len(entries) == 0 {
		t.Fatal("every ledger entry tainted — the cluster error-stormed")
	}

	// Strict read-back: every acked write, via a fresh router. The block
	// self-describes its (lba, seq); a write issued after the ledgered
	// one but never acked (a timeout that executed anyway) is legal, so
	// accept any self-consistent seq >= the acked one from the same
	// writer — anything older or inconsistent is a lost acked write.
	verify := router()
	for _, e := range entries {
		got, err := verify.Read(e.lba, 512)
		if err != nil {
			t.Fatalf("ledger read lba %d: %v", e.lba, err)
		}
		gotLBA := binary.BigEndian.Uint32(got)
		gotSeq := binary.BigEndian.Uint64(got[4:])
		if gotLBA != e.lba || gotSeq < e.seq || gotSeq>>32 != e.seq>>32 ||
			!bytes.Equal(got, block(e.lba, gotSeq)) {
			t.Fatalf("lba %d: acked seq %d lost (found lba %d seq %d; migration or failover dropped it)",
				e.lba, e.seq, gotLBA, gotSeq)
		}
	}

	if got := p95(lats); got > lcSLO {
		t.Fatalf("LC read p95 across faults = %v, want <= %v (%d samples)", got, lcSLO, len(lats))
	}
	t.Logf("soak: %d acked writes over %d LBAs verified (%d tainted skipped), LC p95 %v over %d samples, map v%d, killed pair epoch %d",
		total, len(entries), skipped, p95(lats), len(lats), coord.Map().Version, pairs[killIdx].backup.ClusterEpoch())
}
