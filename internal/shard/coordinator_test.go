package shard

import (
	"fmt"
	"testing"
	"time"

	"github.com/reflex-go/reflex/internal/core"
	"github.com/reflex-go/reflex/internal/protocol"
)

func coordRig(t *testing.T, autoHeal bool) (*Coordinator, *fakeCluster, map[string]*fakeNode) {
	t.Helper()
	fc := newFakeCluster()
	fakes := map[string]*fakeNode{
		"a:1": fc.add("a:1"), "a:2": fc.add("a:2"),
		"b:1": fc.add("b:1"),
		"c:1": fc.add("c:1"),
	}
	fakes["a:2"].mu.Lock()
	fakes["a:2"].role = protocol.RoleBackupBit
	fakes["a:2"].epoch = 2
	fakes["a:2"].mu.Unlock()
	c, err := NewCoordinator(CoordinatorConfig{
		Nodes: []Node{
			{Name: "na", Addrs: []string{"a:1", "a:2"}},
			{Name: "nb", Addrs: []string{"b:1"}},
			{Name: "nc", Addrs: []string{"c:1"}},
		},
		NumShards:      32,
		ShardBlocks:    256,
		InstallTimeout: time.Second,
		AutoHeal:       autoHeal,
		Dialer:         fc.dial,
		Logf:           t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	return c, fc, fakes
}

func TestCoordinatorInstallAll(t *testing.T) {
	c, _, fakes := coordRig(t, false)
	if err := c.InstallAll(); err != nil {
		t.Fatal(err)
	}
	for addr, f := range fakes {
		f.mu.Lock()
		inst := f.installed
		f.mu.Unlock()
		if inst == nil || inst.Version != 1 {
			t.Fatalf("%s: map not installed at v1", addr)
		}
	}
	// Re-install of the same version is tolerated (StatusStaleEpoch).
	if err := c.InstallAll(); err != nil {
		t.Fatalf("idempotent reinstall failed: %v", err)
	}
}

func TestCoordinatorValidation(t *testing.T) {
	bad := []CoordinatorConfig{
		{NumShards: 4, ShardBlocks: 16},
		{Nodes: []Node{{Name: "x", Addrs: []string{"a"}}}, ShardBlocks: 16},
		{Nodes: []Node{{Name: "x", Addrs: []string{"a"}}, {Name: "x", Addrs: []string{"b"}}}, NumShards: 4, ShardBlocks: 16},
		{Nodes: []Node{{Name: "x"}}, NumShards: 4, ShardBlocks: 16},
	}
	for i, cfg := range bad {
		if _, err := NewCoordinator(cfg); err == nil {
			t.Fatalf("config %d accepted", i)
		}
	}
}

func TestCoordinatorPromotesAnsweringBackup(t *testing.T) {
	c, _, fakes := coordRig(t, true)
	if err := c.InstallAll(); err != nil {
		t.Fatal(err)
	}
	// Primary address dies; the backup keeps answering. The pair-level
	// state stays Alive throughout (a pair is as healthy as its healthiest
	// member), so promotion MUST come from the detector's address-level
	// OnPrimaryDown trigger — no hand-driven transitions here.
	fakes["a:1"].setDown(true)
	for i := 0; i < 4; i++ {
		c.Membership().Tick()
	}
	if got := c.Membership().State("na"); got != StateAlive {
		t.Fatalf("pair with live backup = %s, want alive", got)
	}
	fakes["a:2"].mu.Lock()
	promotes, epoch := fakes["a:2"].promotes, fakes["a:2"].epoch
	fakes["a:2"].mu.Unlock()
	if promotes != 1 {
		t.Fatalf("backup promotes = %d, want 1", promotes)
	}
	if epoch != 3 {
		t.Fatalf("promotion epoch = %d, want 3 (reported 2 + 1)", epoch)
	}
	if c.promoted.Load() != 1 || c.reassigns.Load() != 0 {
		t.Fatalf("counters promoted=%d reassigns=%d, want 1/0", c.promoted.Load(), c.reassigns.Load())
	}
	// The shard map did not change: promotion is pair-internal.
	if got := c.Map().Version; got != 1 {
		t.Fatalf("map version after promotion = %d, want 1", got)
	}
	// The trigger is latched: further rounds with the primary still down
	// must not re-promote (the promoted backup no longer reports the
	// backup role anyway, but the latch guards the window in between).
	for i := 0; i < 4; i++ {
		c.Membership().Tick()
	}
	fakes["a:2"].mu.Lock()
	promotes = fakes["a:2"].promotes
	fakes["a:2"].mu.Unlock()
	if promotes != 1 {
		t.Fatalf("backup promotes after extra rounds = %d, want 1 (latch failed)", promotes)
	}
}

// TestCoordinatorMapEditsSerialized races MoveShard-style edits against
// membership-driven reassignment/state edits: every produced map version
// must be unique and strictly increasing — two editors cloning the same
// base would mint duplicate versions and diverge the installed view.
func TestCoordinatorMapEditsSerialized(t *testing.T) {
	c, _, _ := coordRig(t, true)
	const editors, edits = 4, 50
	done := make(chan struct{})
	for g := 0; g < editors; g++ {
		g := g
		go func() {
			defer func() { done <- struct{}{} }()
			for i := 0; i < edits; i++ {
				switch g % 2 {
				case 0:
					c.edit(EditRecord{Kind: EditMovePrepare, Shard: i % 4}, func(cur *Map) *Map {
						nm := cur.Clone()
						nm.Migrating[i%len(nm.Migrating)] = int32(i % len(nm.Nodes))
						return nm
					})
				case 1:
					c.noteState("nb", MemberState(i%3))
				}
			}
		}()
	}
	for g := 0; g < editors; g++ {
		<-done
	}
	// Half the editors bump the version edits times each; noteState keeps
	// it. Monotonicity plus the exact final count proves no bump was lost
	// to a concurrent clone of the same base.
	want := uint32(1 + (editors/2)*edits)
	if got := c.Map().Version; got != want {
		t.Fatalf("map version after racing edits = %d, want %d (lost edits)", got, want)
	}
}

func TestCoordinatorRejectsUnmarshalableConfigs(t *testing.T) {
	long := make([]byte, 300)
	for i := range long {
		long[i] = 'x'
	}
	manyAddrs := make([]string, 300)
	for i := range manyAddrs {
		manyAddrs[i] = fmt.Sprintf("a:%d", i)
	}
	manyNodes := make([]Node, maxNodes+1)
	for i := range manyNodes {
		manyNodes[i] = Node{Name: fmt.Sprintf("n%d", i), Addrs: []string{"a:1"}}
	}
	bad := []CoordinatorConfig{
		{Nodes: []Node{{Name: string(long), Addrs: []string{"a:1"}}}, NumShards: 4, ShardBlocks: 16},
		{Nodes: []Node{{Name: "x", Addrs: manyAddrs}}, NumShards: 4, ShardBlocks: 16},
		{Nodes: []Node{{Name: "x", Addrs: []string{string(make([]byte, 70_000))}}}, NumShards: 4, ShardBlocks: 16},
		{Nodes: manyNodes, NumShards: 4, ShardBlocks: 16},
	}
	for i, cfg := range bad {
		if _, err := NewCoordinator(cfg); err == nil {
			t.Fatalf("config %d accepted: its map would marshal truncated", i)
		}
	}
	// Sanity: the bounds admit realistic values.
	ok := CoordinatorConfig{
		Nodes:       []Node{{Name: "n0", Addrs: []string{"host-1.example:9000", "host-2.example:9000"}}},
		NumShards:   8,
		ShardBlocks: 64,
	}
	if _, err := NewCoordinator(ok); err != nil {
		t.Fatalf("valid config refused: %v", err)
	}
}

func TestCoordinatorReassignsDeadNode(t *testing.T) {
	c, _, fakes := coordRig(t, true)
	if err := c.InstallAll(); err != nil {
		t.Fatal(err)
	}
	before := c.Map()
	deadIdx := before.NodeIndex("nb")
	owned := 0
	for _, o := range before.Assign {
		if int(o) == deadIdx {
			owned++
		}
	}
	if owned == 0 {
		t.Fatal("test needs nb to own at least one shard")
	}

	fakes["b:1"].setDown(true)
	for i := 0; i < 4; i++ {
		c.Membership().Tick()
	}
	// The detector saw every address dead; its transition fired the
	// reassignment (no backup answered, so promotion was skipped).
	m := c.Map()
	if m.Version <= before.Version {
		t.Fatalf("map version %d did not advance past %d", m.Version, before.Version)
	}
	for s, o := range m.Assign {
		if int(o) == deadIdx {
			t.Fatalf("shard %d still assigned to dead node", s)
		}
		if before.Assign[s] != int32(deadIdx) && m.Assign[s] != before.Assign[s] {
			t.Fatalf("shard %d moved although its owner survived", s)
		}
	}
	if c.reassigns.Load() != 1 {
		t.Fatalf("reassigns = %d, want 1", c.reassigns.Load())
	}
	if c.Moves() == 0 {
		t.Fatal("Moves() did not account the reassignment")
	}
	// Survivors got the new map; the dead node did not.
	for _, addr := range []string{"a:1", "c:1"} {
		fakes[addr].mu.Lock()
		v := uint32(0)
		if fakes[addr].installed != nil {
			v = fakes[addr].installed.Version
		}
		fakes[addr].mu.Unlock()
		if v != m.Version {
			t.Fatalf("%s holds v%d, want v%d", addr, v, m.Version)
		}
	}
}

func TestRatesForSLOSplitsProportionally(t *testing.T) {
	c, _, _ := coordRig(t, false)
	model := core.CostModel{
		ReadCost:         core.TokenUnit,
		ReadOnlyReadCost: core.TokenUnit / 2,
		WriteCost:        10 * core.TokenUnit,
	}
	const iops = 120_000
	rates := c.RatesForSLO(model, iops, 80)
	if len(rates) == 0 {
		t.Fatal("no rates")
	}
	m := c.Map()
	owned := map[string]int{}
	for _, o := range m.Assign {
		if o >= 0 {
			owned[m.Nodes[o].Name]++
		}
	}
	var sumIOPS int
	for name, rate := range rates {
		k := owned[name]
		wantIOPS := (iops*k + len(m.Assign) - 1) / len(m.Assign)
		if want := model.RateForSLO(wantIOPS, 80); rate != want {
			t.Fatalf("%s rate = %d, want %d", name, rate, want)
		}
		sumIOPS += wantIOPS
	}
	if sumIOPS < iops {
		t.Fatalf("per-node IOPS sum %d under-provisions the cluster SLO %d", sumIOPS, iops)
	}
}

// While a MoveShard holds moveMu, the anti-entropy pass must yield: the
// move installs maps destination-first, and a concurrent Reconcile
// pushing the authoritative map to arbitrary addresses could fence
// writes off the source before the destination's install landed.
func TestReconcileSkipsDuringLiveMove(t *testing.T) {
	c, _, fakes := coordRig(t, false)
	if err := c.InstallAll(); err != nil {
		t.Fatal(err)
	}
	// Stage stragglers a free-running pass would repair: advance the
	// authoritative map without installing it anywhere.
	m2 := c.Map().Clone()
	m2.Version++
	if !c.Adopt(m2) {
		t.Fatal("newer map not adopted")
	}

	// A live move owns moveMu across its install sequence.
	c.moveMu.Lock()
	repaired := c.Reconcile()
	c.moveMu.Unlock()
	if repaired != 0 {
		t.Fatalf("reconcile during a live move repaired %d addresses, want 0 (skipped)", repaired)
	}

	// The next tick, move finished, repairs every straggler.
	if repaired := c.Reconcile(); repaired != 4 {
		t.Fatalf("reconcile after the move repaired %d addresses, want 4", repaired)
	}
	for addr, f := range fakes {
		f.mu.Lock()
		inst := f.installed
		f.mu.Unlock()
		if inst == nil || inst.Version != m2.Version {
			t.Fatalf("%s still stale after the post-move reconcile", addr)
		}
	}
}
