package shard

import (
	"bufio"
	"errors"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/reflex-go/reflex/internal/obs"
	"github.com/reflex-go/reflex/internal/protocol"
)

// destEndpoint is a minimal real-TCP server speaking just enough client
// protocol for the migration sink's destination leg (client.DialCluster
// bypasses the coordinator's dial seam): cluster handshake (OpPing as an
// unfenced primary), registration, and OK acks for everything else.
func destEndpoint(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			go func() {
				defer c.Close()
				br := bufio.NewReader(c)
				var wmu sync.Mutex
				for {
					m, err := protocol.ReadMessage(br)
					if err != nil {
						return
					}
					h := protocol.Header{
						Opcode: m.Header.Opcode,
						Flags:  protocol.FlagResponse,
						Cookie: m.Header.Cookie,
						Handle: 1,
						Epoch:  1,
					}
					if m.Header.Opcode == protocol.OpPing {
						h.Count = 0 // primary, unfenced
					}
					wmu.Lock()
					protocol.WriteMessage(c, &h, nil)
					wmu.Unlock()
				}
			}()
		}
	}()
	return ln.Addr().String()
}

// TestCoordinatorStopAbortsInFlightMove parks a MoveShard in its
// catch-up phase (the fake source accepts the ranged join but never
// streams) and stops the coordinator: Stop must return only after the
// move unwound, and the dual-ownership window must be rolled back — no
// Migrating entry survives a stop.
func TestCoordinatorStopAbortsInFlightMove(t *testing.T) {
	fc := newFakeCluster()
	src := fc.add("s:1")
	destAddr := destEndpoint(t)
	// The destination's control-plane traffic (installs, probes) rides the
	// dial seam like everyone else; only the sink's data leg hits the real
	// listener address.
	fc.add(destAddr)

	c, err := NewCoordinator(CoordinatorConfig{
		Nodes: []Node{
			{Name: "nsrc", Addrs: []string{"s:1"}},
			{Name: "ndst", Addrs: []string{destAddr}},
		},
		NumShards:      4,
		ShardBlocks:    64,
		InstallTimeout: 2 * time.Second,
		Dialer:         fc.dial,
		Logf:           t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.InstallAll(); err != nil {
		t.Fatal(err)
	}
	m := c.Map()
	moveShard := -1
	for s := range m.Assign {
		if m.Nodes[m.Assign[s]].Name == "nsrc" {
			moveShard = s
			break
		}
	}
	if moveShard < 0 {
		t.Skip("nsrc owns nothing (improbable)")
	}

	moveErr := make(chan error, 1)
	go func() { moveErr <- c.MoveShard(moveShard, "ndst", 30*time.Second) }()

	// Wait until the sink is attached (the source answered the ranged
	// join) — the move is now parked in phase 2.
	deadline := time.Now().Add(5 * time.Second)
	for {
		src.mu.Lock()
		joined := src.joins > 0
		src.mu.Unlock()
		if joined {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("sink never attached")
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Stop blocks until the move goroutine has fully unwound (moveMu).
	stopDone := make(chan struct{})
	go func() { c.Stop(); close(stopDone) }()
	select {
	case <-stopDone:
	case <-time.After(10 * time.Second):
		t.Fatal("Stop did not return: in-flight move not aborted")
	}
	var err2 error
	select {
	case err2 = <-moveErr:
	case <-time.After(time.Second):
		t.Fatal("MoveShard still running after Stop returned")
	}
	if err2 == nil || !strings.Contains(err2.Error(), "stopped") {
		t.Fatalf("aborted move error = %v, want coordinator-stopped", err2)
	}

	// The window was rolled back at a fresh version: prepare bumped to
	// v2, rollback to v3, Migrating cleared.
	final := c.Map()
	if final.Migrating[moveShard] != Unassigned {
		t.Fatalf("dual-ownership window survived Stop: Migrating[%d]=%d",
			moveShard, final.Migrating[moveShard])
	}
	if final.Version != 3 {
		t.Fatalf("map version after abort = %d, want 3 (prepare+rollback)", final.Version)
	}
	abortSeen := false
	for _, e := range c.Journal().Recent(64) {
		if e.Kind == obs.EvMoveAbort {
			abortSeen = true
		}
	}
	if !abortSeen {
		t.Fatal("abort not journaled")
	}

	// A post-Stop move is refused outright.
	if err := c.MoveShard(moveShard, "ndst", time.Second); err == nil ||
		!strings.Contains(err.Error(), "stopped") {
		t.Fatalf("post-Stop move = %v, want coordinator-stopped", err)
	}
}

func TestMembershipConfigValidation(t *testing.T) {
	bad := []MembershipConfig{
		{Interval: -time.Second},
		{Timeout: -time.Millisecond},
		{SuspectAfter: -1},
		{DeadAfter: -2},
		{SuspectAfter: 4, DeadAfter: 4}, // dead must exceed suspect
		{DeadAfter: 1},                  // effective SuspectAfter default is 1
	}
	for i, cfg := range bad {
		if err := cfg.validate(); err == nil {
			t.Fatalf("probe config %d accepted: %+v", i, cfg)
		}
	}
	good := []MembershipConfig{
		{}, // all defaults
		{Interval: time.Second, Timeout: 100 * time.Millisecond, SuspectAfter: 2, DeadAfter: 5},
		{DeadAfter: 2}, // above the defaulted SuspectAfter 1
	}
	for i, cfg := range good {
		if err := cfg.validate(); err != nil {
			t.Fatalf("probe config %d refused: %v", i, err)
		}
	}

	// The coordinator rejects bad probe tuning and a negative install
	// timeout up front — a broken detector would otherwise sit silent
	// until the first failure mattered.
	nodes := []Node{{Name: "x", Addrs: []string{"a:1"}}}
	if _, err := NewCoordinator(CoordinatorConfig{
		Nodes: nodes, NumShards: 4, ShardBlocks: 16,
		Probe: MembershipConfig{Interval: -time.Second},
	}); err == nil {
		t.Fatal("negative probe interval accepted")
	}
	if _, err := NewCoordinator(CoordinatorConfig{
		Nodes: nodes, NumShards: 4, ShardBlocks: 16,
		Probe: MembershipConfig{SuspectAfter: 3, DeadAfter: 2},
	}); err == nil {
		t.Fatal("DeadAfter <= SuspectAfter accepted")
	}
	if _, err := NewCoordinator(CoordinatorConfig{
		Nodes: nodes, NumShards: 4, ShardBlocks: 16,
		InstallTimeout: -time.Second,
	}); err == nil {
		t.Fatal("negative InstallTimeout accepted")
	}
}

// TestCommitHookFencesEdits: a refused commit aborts the edit — the map
// neither advances nor installs, the exact behaviour that fences a
// deposed control-plane leader.
func TestCommitHookFencesEdits(t *testing.T) {
	fc := newFakeCluster()
	fakes := map[string]*fakeNode{"a:1": fc.add("a:1"), "b:1": fc.add("b:1")}
	allow := true
	var mu sync.Mutex
	var committed []EditRecord
	c, err := NewCoordinator(CoordinatorConfig{
		Nodes: []Node{
			{Name: "na", Addrs: []string{"a:1"}},
			{Name: "nb", Addrs: []string{"b:1"}},
		},
		NumShards:      4,
		ShardBlocks:    64,
		InstallTimeout: time.Second,
		Dialer:         fc.dial,
		Commit: func(rec EditRecord) error {
			mu.Lock()
			defer mu.Unlock()
			if !allow {
				return errors.New("commit refused: not the leaseholder")
			}
			committed = append(committed, rec)
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.InstallAll(); err != nil {
		t.Fatal(err)
	}

	// Allowed: the edit commits, swaps and carries the new map.
	nm := c.edit(EditRecord{Kind: EditMovePrepare, Shard: 0, Src: "na", Dest: "nb"},
		func(cur *Map) *Map {
			n := cur.Clone()
			n.Migrating[0] = 1
			return n
		})
	if nm == nil || c.Map().Version != 2 {
		t.Fatalf("allowed edit did not apply (map v%d)", c.Map().Version)
	}
	mu.Lock()
	if len(committed) != 1 || committed[0].Kind != EditMovePrepare || committed[0].Map == nil ||
		committed[0].Map.Version != 2 {
		t.Fatalf("commit record wrong: %+v", committed)
	}
	allow = false
	mu.Unlock()

	// Refused: the map must not move, and nothing installs.
	before := c.Map().Version
	fakes["a:1"].mu.Lock()
	installsBefore := fakes["a:1"].installs
	fakes["a:1"].mu.Unlock()
	nm = c.edit(EditRecord{Kind: EditMoveRollback, Shard: 0, Src: "na", Dest: "nb"},
		func(cur *Map) *Map {
			n := cur.Clone()
			n.Migrating[0] = Unassigned
			return n
		})
	if nm != nil || c.Map().Version != before {
		t.Fatalf("refused edit applied anyway (map v%d)", c.Map().Version)
	}
	if err := c.installOn(c.Map(), "na"); err != nil {
		t.Fatal(err)
	}
	fakes["a:1"].mu.Lock()
	if fakes["a:1"].installs != installsBefore+1 {
		t.Fatalf("install bookkeeping broken")
	}
	if fakes["a:1"].installed.Version != before {
		t.Fatalf("node holds v%d after refused edit, want v%d",
			fakes["a:1"].installed.Version, before)
	}
	fakes["a:1"].mu.Unlock()
}
