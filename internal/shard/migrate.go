package shard

import (
	"bufio"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"github.com/reflex-go/reflex/internal/client"
	"github.com/reflex-go/reflex/internal/obs"
	"github.com/reflex-go/reflex/internal/protocol"
)

// Live shard migration (DESIGN.md §13). The move reuses the replication
// machinery end to end — no separate bulk-copy path to keep correct:
//
//  1. Dual-ownership map (v+1): Migrating[shard] = dest is installed on
//     the DESTINATION FIRST, then the source, then everyone else. From
//     here the destination accepts writes for the shard, which is what
//     authorizes the sink's relayed traffic.
//  2. The sink attaches to the source primary with a ranged OpJoin. The
//     source's migration replicator streams the shard's blocks
//     (serialized against live forwards under the session's sendMu, so
//     a stale chunk can never overwrite a newer write) and forwards
//     every acked write intersecting the window — each with the client
//     ack DEFERRED until the sink has applied it at the destination and
//     acked back. "Acked" therefore means "on both nodes" for the whole
//     window, which is the zero-lost-acked-writes invariant.
//  3. The catch-up marker (a non-response OpJoin echoing the window)
//     tells the sink every block is across; the coordinator cuts over:
//     map v+2 (Assign = dest, Migrating cleared) installs on the
//     destination first, then the source — whose shard-map enforcement
//     now answers StatusWrongShard for the range, fencing new I/O off
//     the old owner exactly like an epoch fence, while clients refetch
//     and re-route.
//  4. Drain: writes admitted at the source before its v+2 install may
//     still be in its scheduler; they apply locally and forward to the
//     still-attached sink. The coordinator polls the source's OpPing
//     pending count until it reads zero for settleRounds consecutive
//     polls, then detaches the sink.
//
// A sink failure before the cutover rolls the map back (Migrating
// cleared at v+2) and the move reports the error; acked data was never
// only on the sink, so nothing is lost.

// Migration pacing knobs.
const (
	// settleRounds is how many consecutive zero-pending OpPing polls end
	// the drain (spaced settleEvery apart, comfortably longer than the
	// source's admit→forward scheduling latency).
	settleRounds = 3
	settleEvery  = 50 * time.Millisecond
	// applyRetries bounds per-write retries at the destination on
	// transient refusals (shed/timeout) before the sink gives up.
	applyRetries = 8
)

// MoveShard live-migrates one shard from its current owner to destName
// with zero lost acked writes. Blocks until the move completes, the
// sink fails, or timeout expires (0 = 60s). Concurrent MoveShard calls
// are serialized per coordinator.
func (c *Coordinator) MoveShard(shardIdx int, destName string, timeout time.Duration) error {
	if timeout <= 0 {
		timeout = 60 * time.Second
	}
	c.moveMu.Lock()
	defer c.moveMu.Unlock()
	if c.stopped() {
		return fmt.Errorf("shard: move %d: coordinator stopped", shardIdx)
	}

	m := c.Map()
	if shardIdx < 0 || shardIdx >= len(m.Assign) {
		return fmt.Errorf("shard: shard %d out of range [0,%d)", shardIdx, len(m.Assign))
	}
	destIdx := m.NodeIndex(destName)
	if destIdx < 0 {
		return fmt.Errorf("shard: unknown destination node %q", destName)
	}
	srcIdx := int(m.Assign[shardIdx])
	if srcIdx == destIdx {
		return nil // already there
	}
	if srcIdx < 0 || srcIdx >= len(m.Nodes) {
		return fmt.Errorf("shard: shard %d has no live owner", shardIdx)
	}
	srcName := m.Nodes[srcIdx].Name

	// Phase 1: dual-ownership map, destination first. The edit re-checks
	// ownership under editMu: a dead-node reassignment racing in from the
	// membership goroutine may have moved the shard off srcIdx already.
	rec := EditRecord{Kind: EditMovePrepare, Shard: shardIdx, Src: srcName, Dest: destName,
		Detail: "dual-ownership window opened"}
	m1 := c.edit(rec, func(cur *Map) *Map {
		if int(cur.Assign[shardIdx]) != srcIdx {
			return nil
		}
		nm := cur.Clone()
		nm.Migrating[shardIdx] = int32(destIdx)
		return nm
	})
	if m1 == nil {
		return fmt.Errorf("shard: move %d: owner changed or commit refused (was %s)", shardIdx, srcName)
	}
	if err := c.installOn(m1, destName); err != nil {
		c.abortMove(shardIdx, destName, srcName, "dest install failed: %v", err)
		return fmt.Errorf("shard: move %d: dest install: %w", shardIdx, err)
	}
	if err := c.installOn(m1, srcName); err != nil {
		c.abortMove(shardIdx, destName, srcName, "source install failed: %v", err)
		return fmt.Errorf("shard: move %d: source install: %w", shardIdx, err)
	}
	c.installRest(m1, destName, srcName)
	c.cfg.Journal.Record(obs.EvMovePrepare, srcName, shardIdx,
		"dual-ownership map v%d installed, moving to %s", m1.Version, destName)

	return c.driveMove(shardIdx, srcName, destName, m1, timeout)
}

// ResumeMove re-drives an in-flight move recorded in the replicated log
// after a leadership change: a follower that wins the lease either
// finishes the move (re-attaching a fresh sink and re-running catch-up —
// idempotent, the stream is content-addressed by LBA) or rolls its
// window back. phase is the replicated move phase: MovePrepared (the
// dual-ownership window was committed but no cutover) or MoveCutover
// (the destination is already authoritative; only reconcile + drain
// bookkeeping remain). The committed map is re-installed first — servers
// already holding it answer StatusStaleEpoch, which installMap treats
// as success, so resume is idempotent against whatever the dead leader
// managed to push.
func (c *Coordinator) ResumeMove(shardIdx int, destName string, phase MovePhase, timeout time.Duration) error {
	if timeout <= 0 {
		timeout = 60 * time.Second
	}
	c.moveMu.Lock()
	defer c.moveMu.Unlock()
	if c.stopped() {
		return fmt.Errorf("shard: resume %d: coordinator stopped", shardIdx)
	}

	m := c.Map()
	if shardIdx < 0 || shardIdx >= len(m.Assign) {
		return fmt.Errorf("shard: resume %d: out of range [0,%d)", shardIdx, len(m.Assign))
	}
	destIdx := m.NodeIndex(destName)
	if destIdx < 0 {
		return fmt.Errorf("shard: resume %d: unknown destination %q", shardIdx, destName)
	}
	c.cfg.Journal.Record(obs.EvMoveResume, destName, shardIdx,
		"resuming move at phase %d (map v%d)", phase, m.Version)

	// Cutover already committed: the destination owns the shard; the old
	// leader just never finished reconciling/draining. Converge installs
	// and mark the move done.
	if phase == MoveCutover || int(m.Assign[shardIdx]) == destIdx {
		c.installAllOf(m)
		if err := c.commit(EditRecord{Kind: EditMoveDone, Shard: shardIdx, Dest: destName,
			Detail: "resumed post-cutover: installs reconciled"}); err != nil {
			return fmt.Errorf("shard: resume %d: done commit: %w", shardIdx, err)
		}
		c.cfg.Journal.Record(obs.EvMoveDone, destName, shardIdx,
			"resumed move finished post-cutover (map v%d)", m.Version)
		return nil
	}

	// The committed map no longer shows the window (a rollback or
	// reassignment won the race): clear the stale move record and stop.
	if int(m.Migrating[shardIdx]) != destIdx {
		if err := c.commit(EditRecord{Kind: EditMoveDone, Shard: shardIdx, Dest: destName,
			Detail: "stale move record: window not in committed map"}); err != nil {
			return fmt.Errorf("shard: resume %d: stale-record commit: %w", shardIdx, err)
		}
		return nil
	}

	srcIdx := int(m.Assign[shardIdx])
	if srcIdx < 0 || srcIdx >= len(m.Nodes) {
		return fmt.Errorf("shard: resume %d: no live owner", shardIdx)
	}
	srcName := m.Nodes[srcIdx].Name

	// Re-install the committed dual-ownership map (idempotent) before
	// re-driving phases 2-4 with a fresh sink.
	if err := c.installOn(m, destName); err != nil {
		c.abortMove(shardIdx, destName, srcName, "resume dest install failed: %v", err)
		return fmt.Errorf("shard: resume %d: dest install: %w", shardIdx, err)
	}
	if err := c.installOn(m, srcName); err != nil {
		c.abortMove(shardIdx, destName, srcName, "resume source install failed: %v", err)
		return fmt.Errorf("shard: resume %d: source install: %w", shardIdx, err)
	}
	c.installRest(m, destName, srcName)
	return c.driveMove(shardIdx, srcName, destName, m, timeout)
}

// driveMove runs phases 2-4 of a move whose dual-ownership map m1 is
// committed and installed: sink catch-up, cutover, drain. Callers hold
// moveMu.
func (c *Coordinator) driveMove(shardIdx int, srcName, destName string, m1 *Map, timeout time.Duration) error {
	destIdx := m1.NodeIndex(destName)
	srcIdx := m1.NodeIndex(srcName)
	if destIdx < 0 || srcIdx < 0 {
		return fmt.Errorf("shard: move %d: nodes %q/%q not in map", shardIdx, srcName, destName)
	}
	firstLBA := uint32(shardIdx) * m1.ShardBlocks

	// Phase 2: attach the sink and wait for the catch-up marker.
	srcAddr, err := c.primaryAddr(m1, srcIdx)
	if err != nil {
		c.abortMove(shardIdx, destName, srcName, "no answering source primary: %v", err)
		return err
	}
	sink, err := c.startSink(srcAddr, m1.Nodes[destIdx].Addrs, firstLBA, m1.ShardBlocks)
	if err != nil {
		c.abortMove(shardIdx, destName, srcName, "sink attach failed: %v", err)
		return fmt.Errorf("shard: move %d: sink: %w", shardIdx, err)
	}
	deadline := time.NewTimer(timeout)
	defer deadline.Stop()
	select {
	case <-sink.caught:
	case err := <-sink.errCh:
		sink.close()
		c.abortMove(shardIdx, destName, srcName, "catch-up failed: %v", err)
		return fmt.Errorf("shard: move %d: catch-up: %w", shardIdx, err)
	case <-deadline.C:
		sink.close()
		c.abortMove(shardIdx, destName, srcName, "catch-up timed out after %v", timeout)
		return fmt.Errorf("shard: move %d: catch-up timed out after %v", shardIdx, timeout)
	case <-c.stopCh:
		sink.close()
		c.abortMove(shardIdx, destName, srcName, "coordinator stopped mid-catch-up")
		return fmt.Errorf("shard: move %d: coordinator stopped mid-catch-up", shardIdx)
	}
	c.logf("shard: move %d %s->%s: caught up (%d writes relayed), cutting over",
		shardIdx, srcName, destName, sink.applied.Load())
	c.cfg.Journal.Record(obs.EvMoveCatchup, srcName, shardIdx,
		"catch-up complete, %d writes relayed so far", sink.applied.Load())

	// The sink can fail AFTER signalling caught-up — a live forward relayed
	// to the destination may be refused there (the sink acks the source
	// non-OK and dies). Re-check immediately before making the destination
	// authoritative: cutting over now would install an owner that is
	// missing a write. With forwardWrite propagating the non-OK ack, that
	// write was never acked StatusOK to the client — so rolling back here
	// keeps the zero-lost-acked-writes invariant airtight: either the
	// write is on both nodes (sink healthy, cutover proceeds) or the
	// client saw the failure and the source stays authoritative.
	select {
	case err := <-sink.errCh:
		sink.close()
		c.abortMove(shardIdx, destName, srcName, "sink failed before cutover: %v", err)
		return fmt.Errorf("shard: move %d: sink failed before cutover: %w", shardIdx, err)
	default:
	}

	// Phase 3: cutover, destination first; the source install fences the
	// range off the old owner (StatusWrongShard redirects from here on).
	// A refused commit here means we were deposed between catch-up and
	// cutover: the source stays authoritative in the committed map, the
	// new leader resumes or rolls back, and nothing was lost (the window
	// map is still what every server holds).
	cutRec := EditRecord{Kind: EditMoveCutover, Shard: shardIdx, Src: srcName, Dest: destName,
		Detail: "destination authoritative"}
	m2 := c.edit(cutRec, func(cur *Map) *Map {
		nm := cur.Clone()
		nm.Assign[shardIdx] = int32(destIdx)
		nm.Migrating[shardIdx] = Unassigned
		return nm
	})
	if m2 == nil {
		sink.close()
		c.cfg.Journal.Record(obs.EvMoveAbort, srcName, shardIdx,
			"cutover commit refused (deposed?); leaving window to the next leader")
		return fmt.Errorf("shard: move %d: cutover commit refused", shardIdx)
	}
	if err := c.installOn(m2, destName); err != nil {
		sink.close()
		return fmt.Errorf("shard: move %d: cutover dest install: %w", shardIdx, err)
	}
	if err := c.installOn(m2, srcName); err != nil {
		sink.close()
		return fmt.Errorf("shard: move %d: cutover source install: %w", shardIdx, err)
	}
	c.installRest(m2, destName, srcName)
	c.cfg.Journal.Record(obs.EvMoveCutover, destName, shardIdx,
		"cutover map v%d installed, %s now authoritative", m2.Version, destName)

	// Phase 4: drain writes admitted at the source before its cutover
	// install; they still forward to the attached sink.
	if err := c.drainSource(srcAddr, timeout); err != nil {
		sink.close()
		c.cfg.Journal.Record(obs.EvMoveAbort, srcName, shardIdx, "drain failed: %v", err)
		return fmt.Errorf("shard: move %d: %w", shardIdx, err)
	}
	c.cfg.Journal.Record(obs.EvMoveDrain, srcName, shardIdx, "source drained (pending quiesced)")
	sink.close()
	select {
	case err := <-sink.errCh:
		return fmt.Errorf("shard: move %d: sink failed during drain: %w", shardIdx, err)
	default:
	}
	if err := c.commit(EditRecord{Kind: EditMoveDone, Shard: shardIdx, Src: srcName, Dest: destName,
		Detail: "move complete"}); err != nil {
		// The data move is finished and safe (cutover committed earlier);
		// only the in-flight-move bookkeeping failed to clear. The next
		// leader sees phase=cutover and re-runs the trivial finish path.
		return fmt.Errorf("shard: move %d: done commit: %w", shardIdx, err)
	}
	c.logf("shard: move %d %s->%s: done (map v%d, %d writes relayed)",
		shardIdx, srcName, destName, m2.Version, sink.applied.Load())
	c.cfg.Journal.Record(obs.EvMoveDone, destName, shardIdx,
		"move %s->%s done (map v%d, %d writes relayed)", srcName, destName, m2.Version, sink.applied.Load())
	return nil
}

// abortMove rolls back a failed move's dual-ownership window and records
// the abort in the journal.
func (c *Coordinator) abortMove(shardIdx int, destName, srcName, format string, args ...any) {
	c.cfg.Journal.Record(obs.EvMoveAbort, srcName, shardIdx, format, args...)
	c.rollbackMigrating(shardIdx, destName, srcName)
}

// rollbackMigrating clears a failed move's dual-ownership window with a
// fresh map version. A refused commit (this coordinator was deposed)
// leaves the window to the new leader, which resumes or rolls it back
// from the replicated log — a deposed leader installing its own
// rollback would be minting a map version it no longer owns.
func (c *Coordinator) rollbackMigrating(shardIdx int, destName, srcName string) {
	rec := EditRecord{Kind: EditMoveRollback, Shard: shardIdx, Src: srcName, Dest: destName,
		Detail: "dual-ownership window rolled back"}
	nm := c.edit(rec, func(cur *Map) *Map {
		n := cur.Clone()
		n.Migrating[shardIdx] = Unassigned
		return n
	})
	if nm == nil {
		c.logf("shard: move %d: rollback commit refused; deferring to the next leader", shardIdx)
		return
	}
	c.installOn(nm, srcName)
	c.installOn(nm, destName)
	c.installRest(nm, destName, srcName)
}

// MovePhase is the replicated control plane's record of how far an
// in-flight MoveShard got before its leader died (ResumeMove input).
type MovePhase uint8

const (
	// MovePrepared: the dual-ownership window was committed; catch-up
	// and cutover still pending. Resume re-drives the whole move.
	MovePrepared MovePhase = 1
	// MoveCutover: the cutover map was committed; the destination is
	// authoritative and only install reconciliation remains.
	MoveCutover MovePhase = 2
)

// installAllOf pushes m to every non-dead node (best-effort).
func (c *Coordinator) installAllOf(m *Map) {
	for _, n := range m.Nodes {
		if n.State == StateDead {
			continue
		}
		c.installOn(m, n.Name)
	}
}

// installRest pushes m to every node except the two named (best-effort;
// stale nodes redirect their clients into a refetch anyway).
func (c *Coordinator) installRest(m *Map, a, b string) {
	for _, n := range m.Nodes {
		if n.Name == a || n.Name == b || n.State == StateDead {
			continue
		}
		c.installOn(m, n.Name)
	}
}

// primaryAddr probes a node's addresses and returns the one serving as
// unfenced primary.
func (c *Coordinator) primaryAddr(m *Map, idx int) (string, error) {
	for _, addr := range m.Nodes[idx].Addrs {
		r := probe(c.cfg.Dialer, addr, c.cfg.InstallTimeout)
		if r.err == nil && r.role&(protocol.RoleBackupBit|protocol.RoleFencedBit) == 0 {
			return addr, nil
		}
	}
	return "", fmt.Errorf("shard: node %s has no answering primary", m.Nodes[idx].Name)
}

// drainSource polls the source's migration-pending count (OpPing
// response LBA) until it stays zero for settleRounds consecutive polls.
func (c *Coordinator) drainSource(srcAddr string, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	zeros := 0
	for zeros < settleRounds {
		if c.stopped() {
			// The cutover is committed and installed — the move is decided;
			// stopping here only skips the courtesy drain wait. Pending
			// source forwards still flow to the attached sink until the
			// caller closes it.
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("drain timed out after %v", timeout)
		}
		r := probe(c.cfg.Dialer, srcAddr, c.cfg.InstallTimeout)
		if r.err != nil {
			// The source died mid-drain; its pending forwards degrade to
			// standalone acks on teardown and the pair's backup (which saw
			// every one of those writes over its own session) takes over.
			return nil
		}
		if r.pending == 0 {
			zeros++
		} else {
			zeros = 0
		}
		time.Sleep(settleEvery)
	}
	return nil
}

// migrationSink is the coordinator-side receiver of one shard's
// migration stream: it relays every OpReplicate frame to the
// destination as an ordinary write (authorized by the dual-ownership
// map) and acks the source only after the destination acked — the
// deferred-ack chain that makes migration lossless.
type migrationSink struct {
	c      *Coordinator
	src    net.Conn
	dst    *client.Client
	handle uint16

	caught  chan struct{}
	errCh   chan error // buffered; first terminal error wins
	applied atomic.Uint64

	stop     chan struct{}
	stopOnce sync.Once
	caughtOn sync.Once
}

// startSink dials the source, performs the ranged join handshake, and
// starts the relay loop.
func (c *Coordinator) startSink(srcAddr string, destAddrs []string, firstLBA, blockCount uint32) (*migrationSink, error) {
	dst, err := client.DialCluster(destAddrs, client.Options{Timeout: c.cfg.InstallTimeout})
	if err != nil {
		return nil, fmt.Errorf("dial destination: %w", err)
	}
	handle, err := dst.Register(protocol.Registration{BestEffort: true, Writable: true})
	if err != nil {
		dst.Close()
		return nil, fmt.Errorf("register at destination: %w", err)
	}

	var src net.Conn
	if c.cfg.Dialer != nil {
		src, err = c.cfg.Dialer(srcAddr)
	} else {
		src, err = net.DialTimeout("tcp", srcAddr, c.cfg.InstallTimeout)
	}
	if err != nil {
		dst.Close()
		return nil, fmt.Errorf("dial source: %w", err)
	}
	join := protocol.Header{Opcode: protocol.OpJoin, LBA: firstLBA, Count: blockCount}
	frame, _ := protocol.AppendMessage(nil, &join, nil)
	if _, err := src.Write(frame); err != nil {
		src.Close()
		dst.Close()
		return nil, fmt.Errorf("ranged join: %w", err)
	}
	s := &migrationSink{
		c:      c,
		src:    src,
		dst:    dst,
		handle: handle,
		caught: make(chan struct{}),
		errCh:  make(chan error, 1),
		stop:   make(chan struct{}),
	}
	go s.loop()
	return s, nil
}

func (s *migrationSink) close() {
	s.stopOnce.Do(func() {
		close(s.stop)
		s.src.Close()
		s.dst.Close()
	})
}

func (s *migrationSink) fail(err error) {
	select {
	case s.errCh <- err:
	default:
	}
}

func (s *migrationSink) stopped() bool {
	select {
	case <-s.stop:
		return true
	default:
		return false
	}
}

// loop reads the join channel: the handshake response, catch-up chunks
// and live forwards (OpReplicate requests, relayed then acked), and the
// catch-up marker (non-response OpJoin).
func (s *migrationSink) loop() {
	br := bufio.NewReaderSize(s.src, 256<<10)
	var msg protocol.Message
	var ackBuf []byte
	first := true
	for {
		if err := protocol.ReadMessageInto(br, &msg, nil); err != nil {
			if !s.stopped() {
				s.fail(err)
			}
			return
		}
		hdr := msg.Header
		switch {
		case first && hdr.Opcode == protocol.OpJoin && hdr.IsResponse():
			if hdr.Status != protocol.StatusOK {
				s.fail(fmt.Errorf("join refused: %s", hdr.Status))
				return
			}
			first = false
		case hdr.Opcode == protocol.OpJoin && !hdr.IsResponse():
			// Catch-up marker: every block of the window is across.
			s.caughtOn.Do(func() { close(s.caught) })
		case hdr.Opcode == protocol.OpReplicate && !hdr.IsResponse():
			// A traced forward parents the destination's serve span to a
			// fresh relay span here, keeping the hop visible: client ->
			// source serve -> sink relay -> destination serve.
			var relayID uint64
			relayStart := time.Now().UnixNano()
			if msg.TraceID != 0 {
				relayID = s.c.spanID()
			}
			st := s.apply(hdr.LBA, msg.Payload, msg.TraceID, relayID)
			if msg.TraceID != 0 {
				sp := obs.Span{
					ID:     relayID,
					Trace:  msg.TraceID,
					Parent: msg.ParentSpan,
					Node:   "coord",
					Hop:    obs.HopRelay,
					Write:  true,
					Size:   len(msg.Payload),
				}
				sp.Mark(obs.StageArrival, relayStart)
				sp.Mark(obs.StageTx, time.Now().UnixNano())
				s.c.cfg.TraceRing.Push(sp)
			}
			ack := protocol.Header{
				Opcode: protocol.OpReplicate,
				Flags:  protocol.FlagResponse,
				Cookie: hdr.Cookie,
				Epoch:  hdr.Epoch,
				LBA:    hdr.LBA,
				Status: st,
			}
			var err error
			ackBuf, err = protocol.AppendMessage(ackBuf[:0], &ack, nil)
			if err == nil {
				_, err = s.src.Write(ackBuf)
			}
			if err != nil {
				if !s.stopped() {
					s.fail(err)
				}
				return
			}
			if st != protocol.StatusOK {
				s.fail(fmt.Errorf("apply at destination failed: %s", st))
				return
			}
			s.applied.Add(1)
		default:
			// Tolerate anything else (keep-alives, stray responses).
		}
	}
}

// apply writes one relayed frame at the destination, retrying transient
// refusals (shed, timeout) — the destination is a live server taking
// client traffic of its own. A non-zero trace relays the originating
// request's trace context, with the sink's relay span as parent.
func (s *migrationSink) apply(lba uint32, payload []byte, trace, relayID uint64) protocol.Status {
	if len(payload) == 0 {
		return protocol.StatusBadRequest
	}
	var err error
	for attempt := 0; attempt < applyRetries; attempt++ {
		if trace != 0 {
			err = s.dst.WriteTraced(s.handle, lba, payload, trace, relayID)
		} else {
			err = s.dst.Write(s.handle, lba, payload)
		}
		if err == nil {
			return protocol.StatusOK
		}
		switch err {
		case client.ErrOverloaded, client.ErrTimeout:
			time.Sleep(time.Duration(attempt+1) * 5 * time.Millisecond)
			continue
		}
		break
	}
	return protocol.StatusDeviceError
}
