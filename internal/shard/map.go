package shard

import (
	"encoding/binary"
	"fmt"
)

// MemberState is the SWIM-lite health state of a node as seen by the
// coordinator (and disseminated to everyone through the shard map).
type MemberState uint8

const (
	// StateAlive: the node answered its most recent probe.
	StateAlive MemberState = iota
	// StateSuspect: the node missed one probe window; traffic still routes
	// to it but the membership layer is watching.
	StateSuspect
	// StateDead: the node missed SuspectLimit consecutive probes; the
	// coordinator has (or is about to have) reassigned its shards.
	StateDead
)

func (s MemberState) String() string {
	switch s {
	case StateAlive:
		return "alive"
	case StateSuspect:
		return "suspect"
	case StateDead:
		return "dead"
	default:
		return fmt.Sprintf("state(%d)", uint8(s))
	}
}

// Unassigned marks a shard with no owner in Map.Assign / Map.Migrating.
const Unassigned = int32(-1)

// maxNodes bounds the node list in a marshaled map (fits the u16 node
// count; in practice clusters are a handful of pairs).
const maxNodes = 1024

// Node is one replica pair in the cluster: a logical name plus the
// dial addresses of its members (primary first by convention — clients
// hand the whole slice to DialCluster, which sorts out roles itself).
type Node struct {
	Name  string
	Addrs []string
	State MemberState
}

// Map is the versioned, immutable routing table: which node owns which
// contiguous LBA range ("shard"). A Map is never mutated after
// construction/unmarshal — updates produce a new Map with Version+1 and
// are installed over protocol.OpShardMap. Servers enforce it
// (StatusWrongShard for out-of-range I/O), clients cache it and route by
// it.
//
// Assign[s] is the authoritative owner of shard s. Migrating[s], when
// not Unassigned, is a secondary owner that also accepts I/O for the
// shard — this is the dual-ownership window that makes live migration
// lossless: the destination is added to Migrating in version v, traffic
// drains over, and version v+1 flips Assign and clears Migrating.
type Map struct {
	Version     uint32
	ShardBlocks uint32 // LBA blocks per shard (contiguous range size)
	Nodes       []Node
	Assign      []int32 // per-shard authoritative owner (index into Nodes)
	Migrating   []int32 // per-shard secondary owner, Unassigned if none
}

// NumShards returns the shard count.
func (m *Map) NumShards() int { return len(m.Assign) }

// Shard maps an LBA to its shard index, or -1 if the LBA is beyond the
// mapped space.
func (m *Map) Shard(lba uint64) int {
	if m.ShardBlocks == 0 {
		return -1
	}
	s := lba / uint64(m.ShardBlocks)
	if s >= uint64(len(m.Assign)) {
		return -1
	}
	return int(s)
}

// Owner returns the index into Nodes of the authoritative owner of lba,
// or -1 if unmapped.
func (m *Map) Owner(lba uint64) int {
	s := m.Shard(lba)
	if s < 0 {
		return -1
	}
	o := m.Assign[s]
	if o < 0 || int(o) >= len(m.Nodes) {
		return -1
	}
	return int(o)
}

// NodeIndex returns the index of the node with the given name, or -1.
func (m *Map) NodeIndex(name string) int {
	for i := range m.Nodes {
		if m.Nodes[i].Name == name {
			return i
		}
	}
	return -1
}

// OwnedBy reports whether the request window [lba, lba+count) falls
// entirely inside shards owned by the named node — either
// authoritatively (Assign) or as a migration destination (Migrating).
// A request spanning a shard boundary into foreign territory is NOT
// owned; the client must split or refetch. An empty map (no shards)
// owns everything: sharding disabled.
func (m *Map) OwnedBy(name string, lba uint64, count uint32) bool {
	if m == nil || len(m.Assign) == 0 {
		return true
	}
	ni := m.NodeIndex(name)
	if ni < 0 {
		return false
	}
	return m.ownedByIndex(ni, lba, count)
}

func (m *Map) ownedByIndex(ni int, lba uint64, count uint32) bool {
	end := lba
	if count > 0 {
		end = lba + uint64(count) - 1
	}
	first := m.Shard(lba)
	last := m.Shard(end)
	if first < 0 || last < 0 {
		return false
	}
	for s := first; s <= last; s++ {
		if int(m.Assign[s]) != ni && int(m.Migrating[s]) != ni {
			return false
		}
	}
	return true
}

// OwnerAddrs returns the dial addresses of the authoritative owner of
// lba, or nil if unmapped.
func (m *Map) OwnerAddrs(lba uint64) []string {
	o := m.Owner(lba)
	if o < 0 {
		return nil
	}
	return m.Nodes[o].Addrs
}

// Clone returns a deep copy with Version+1 — the starting point for the
// coordinator's next edit. The receiver is never mutated.
func (m *Map) Clone() *Map {
	n := &Map{
		Version:     m.Version + 1,
		ShardBlocks: m.ShardBlocks,
		Nodes:       make([]Node, len(m.Nodes)),
		Assign:      append([]int32(nil), m.Assign...),
		Migrating:   append([]int32(nil), m.Migrating...),
	}
	for i, nd := range m.Nodes {
		n.Nodes[i] = Node{Name: nd.Name, Addrs: append([]string(nil), nd.Addrs...), State: nd.State}
	}
	return n
}

// DiffMoves counts shards whose authoritative owner differs between m
// and prev — the "blast radius" of a map change, fed into the
// shard_moves metric.
func (m *Map) DiffMoves(prev *Map) int {
	if prev == nil {
		return 0
	}
	n := 0
	for s := 0; s < len(m.Assign) && s < len(prev.Assign); s++ {
		if m.Assign[s] != prev.Assign[s] {
			n++
		}
	}
	return n
}

// Wire format (big-endian):
//
//	u32 version
//	u32 shardBlocks
//	u16 nodeCount
//	  per node: u8 state, u8 nameLen, name, u8 addrCount,
//	            per addr: u16 addrLen, addr
//	u32 shardCount
//	  per shard: u16 assign (0xFFFF = unassigned), u16 migrating
const noOwner16 = uint16(0xFFFF)

// Marshal serializes the map for an OpShardMap payload.
func (m *Map) Marshal() []byte {
	var b []byte
	b = binary.BigEndian.AppendUint32(b, m.Version)
	b = binary.BigEndian.AppendUint32(b, m.ShardBlocks)
	b = binary.BigEndian.AppendUint16(b, uint16(len(m.Nodes)))
	for _, nd := range m.Nodes {
		b = append(b, byte(nd.State), byte(len(nd.Name)))
		b = append(b, nd.Name...)
		b = append(b, byte(len(nd.Addrs)))
		for _, a := range nd.Addrs {
			b = binary.BigEndian.AppendUint16(b, uint16(len(a)))
			b = append(b, a...)
		}
	}
	b = binary.BigEndian.AppendUint32(b, uint32(len(m.Assign)))
	own := func(v int32) uint16 {
		if v < 0 || v >= int32(len(m.Nodes)) {
			return noOwner16
		}
		return uint16(v)
	}
	for s := range m.Assign {
		b = binary.BigEndian.AppendUint16(b, own(m.Assign[s]))
		b = binary.BigEndian.AppendUint16(b, own(m.Migrating[s]))
	}
	return b
}

// Unmarshal parses a marshaled map. It validates lengths defensively —
// the payload arrives off the wire.
func Unmarshal(b []byte) (*Map, error) {
	rd := wireReader{b: b}
	m := &Map{}
	m.Version = rd.u32()
	m.ShardBlocks = rd.u32()
	nNodes := int(rd.u16())
	if rd.err == nil && nNodes > maxNodes {
		return nil, fmt.Errorf("shard: map has %d nodes (max %d)", nNodes, maxNodes)
	}
	for i := 0; i < nNodes && rd.err == nil; i++ {
		var nd Node
		nd.State = MemberState(rd.u8())
		nd.Name = string(rd.bytes(int(rd.u8())))
		nAddrs := int(rd.u8())
		for a := 0; a < nAddrs && rd.err == nil; a++ {
			nd.Addrs = append(nd.Addrs, string(rd.bytes(int(rd.u16()))))
		}
		m.Nodes = append(m.Nodes, nd)
	}
	nShards := int(rd.u32())
	if rd.err == nil {
		// Each shard costs 4 bytes; bound by what's actually left.
		if nShards < 0 || nShards*4 > len(rd.b)-rd.off {
			return nil, fmt.Errorf("shard: map truncated: %d shards, %d bytes left", nShards, len(rd.b)-rd.off)
		}
	}
	deref := func(v uint16) int32 {
		if v == noOwner16 {
			return Unassigned
		}
		return int32(v)
	}
	for s := 0; s < nShards && rd.err == nil; s++ {
		m.Assign = append(m.Assign, deref(rd.u16()))
		m.Migrating = append(m.Migrating, deref(rd.u16()))
	}
	if rd.err != nil {
		return nil, rd.err
	}
	if rd.off != len(rd.b) {
		return nil, fmt.Errorf("shard: map has %d trailing bytes", len(rd.b)-rd.off)
	}
	for s := range m.Assign {
		if m.Assign[s] >= int32(len(m.Nodes)) || m.Migrating[s] >= int32(len(m.Nodes)) {
			return nil, fmt.Errorf("shard: shard %d references node beyond the %d listed", s, len(m.Nodes))
		}
	}
	return m, nil
}

// wireReader is a tiny cursor with sticky error handling.
type wireReader struct {
	b   []byte
	off int
	err error
}

func (r *wireReader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if n < 0 || r.off+n > len(r.b) {
		r.err = fmt.Errorf("shard: map truncated at offset %d (want %d bytes, have %d)", r.off, n, len(r.b)-r.off)
		return nil
	}
	out := r.b[r.off : r.off+n]
	r.off += n
	return out
}

func (r *wireReader) u8() uint8 {
	b := r.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (r *wireReader) u16() uint16 {
	b := r.take(2)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint16(b)
}

func (r *wireReader) u32() uint32 {
	b := r.take(4)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint32(b)
}

func (r *wireReader) bytes(n int) []byte { return r.take(n) }

// BuildMap constructs a version-1 map placing numShards shards of
// shardBlocks LBA blocks each over the given nodes using a consistent-
// hash ring. Suspect/dead nodes still receive placements — the
// coordinator's job is to move them off; BuildMap is pure placement.
func BuildMap(nodes []Node, numShards int, shardBlocks uint32, vnodes int) *Map {
	names := make([]string, len(nodes))
	for i := range nodes {
		names[i] = nodes[i].Name
	}
	m := &Map{
		Version:     1,
		ShardBlocks: shardBlocks,
		Nodes:       nodes,
		Migrating:   make([]int32, numShards),
	}
	for s := range m.Migrating {
		m.Migrating[s] = Unassigned
	}
	if len(nodes) == 0 {
		m.Assign = make([]int32, numShards)
		for s := range m.Assign {
			m.Assign[s] = Unassigned
		}
		return m
	}
	m.Assign = NewRing(names, vnodes).Assign(numShards)
	return m
}

// Reassign returns a new map (Version+1) with every shard owned by the
// node at index dead moved to its ring successor among the survivors.
// Shards not owned by dead keep their owner — the consistent-hashing
// minimal-disruption property.
func (m *Map) Reassign(dead int, vnodes int) *Map {
	n := m.Clone()
	var names []string
	idx := make([]int32, 0, len(m.Nodes))
	for i := range m.Nodes {
		if i == dead || m.Nodes[i].State == StateDead {
			continue
		}
		names = append(names, m.Nodes[i].Name)
		idx = append(idx, int32(i))
	}
	if dead >= 0 && dead < len(n.Nodes) {
		n.Nodes[dead].State = StateDead
	}
	if len(names) == 0 {
		for s := range n.Assign {
			n.Assign[s] = Unassigned
		}
		return n
	}
	ring := NewRing(names, vnodes)
	for s := range n.Assign {
		if int(n.Assign[s]) == dead {
			n.Assign[s] = idx[ring.Lookup(ShardKey(s))]
		}
		if n.Migrating[s] != Unassigned && int(n.Migrating[s]) == dead {
			n.Migrating[s] = Unassigned
		}
	}
	return n
}
