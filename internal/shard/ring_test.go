package shard

import (
	"testing"
)

func TestRingDeterministicAndBalanced(t *testing.T) {
	names := []string{"n0", "n1", "n2", "n3"}
	a := NewRing(names, DefaultVNodes).Assign(256)
	b := NewRing(names, DefaultVNodes).Assign(256)
	counts := make([]int, len(names))
	for s := range a {
		if a[s] != b[s] {
			t.Fatalf("ring placement not deterministic at shard %d: %d vs %d", s, a[s], b[s])
		}
		if a[s] < 0 || int(a[s]) >= len(names) {
			t.Fatalf("shard %d assigned out of range: %d", s, a[s])
		}
		counts[a[s]]++
	}
	min, max := counts[0], counts[0]
	for _, c := range counts[1:] {
		if c < min {
			min = c
		}
		if c > max {
			max = c
		}
	}
	if min == 0 {
		t.Fatalf("a node owns zero shards: %v", counts)
	}
	// 64 vnodes over 4 nodes keeps the split reasonably tight.
	if max > 3*min {
		t.Fatalf("ring badly unbalanced: %v (max > 3*min)", counts)
	}
}

func TestRingLookupOrderInvariant(t *testing.T) {
	// Node order must not matter: the ring hashes names.
	a := NewRing([]string{"x", "y", "z"}, 32).Assign(64)
	b := NewRing([]string{"z", "x", "y"}, 32).Assign(64)
	// b's indices are into its own name order; translate both to names.
	an := []string{"x", "y", "z"}
	bn := []string{"z", "x", "y"}
	for s := range a {
		if an[a[s]] != bn[b[s]] {
			t.Fatalf("shard %d owner differs by input order: %s vs %s", s, an[a[s]], bn[b[s]])
		}
	}
}

func TestRingEmpty(t *testing.T) {
	r := NewRing(nil, 8)
	if got := r.Lookup(12345); got != -1 {
		t.Fatalf("empty ring Lookup = %d, want -1", got)
	}
}

func TestReassignMovesOnlyDeadNodesShards(t *testing.T) {
	nodes := []Node{
		{Name: "n0", Addrs: []string{"a0"}},
		{Name: "n1", Addrs: []string{"a1"}},
		{Name: "n2", Addrs: []string{"a2"}},
		{Name: "n3", Addrs: []string{"a3"}},
	}
	m := BuildMap(nodes, 128, 2048, DefaultVNodes)
	dead := m.NodeIndex("n2")
	nm := m.Reassign(dead, DefaultVNodes)
	if nm.Version != m.Version+1 {
		t.Fatalf("Reassign version = %d, want %d", nm.Version, m.Version+1)
	}
	for s := range m.Assign {
		if int(m.Assign[s]) != dead {
			if nm.Assign[s] != m.Assign[s] {
				t.Fatalf("shard %d moved although its owner %d survived", s, m.Assign[s])
			}
			continue
		}
		if int(nm.Assign[s]) == dead || nm.Assign[s] == Unassigned {
			t.Fatalf("dead node's shard %d not reassigned: %d", s, nm.Assign[s])
		}
	}
	if nm.Nodes[dead].State != StateDead {
		t.Fatal("dead node not marked StateDead in the reassigned map")
	}
	if moves := nm.DiffMoves(m); moves == 0 {
		t.Fatal("DiffMoves reported zero moves across a reassignment")
	}
}
