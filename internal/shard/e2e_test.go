// End-to-end sharding tests over real servers and sockets: map install,
// shard-map enforcement, router fetch/redirect behaviour, and live shard
// migration. External test package — internal/server imports
// internal/shard, so these live on the far side of that edge.
package shard_test

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"github.com/reflex-go/reflex/internal/client"
	"github.com/reflex-go/reflex/internal/core"
	"github.com/reflex-go/reflex/internal/protocol"
	"github.com/reflex-go/reflex/internal/server"
	"github.com/reflex-go/reflex/internal/shard"
	"github.com/reflex-go/reflex/internal/storage"
)

func costModel() core.CostModel {
	return core.CostModel{
		ReadCost:         core.TokenUnit,
		ReadOnlyReadCost: core.TokenUnit / 2,
		WriteCost:        10 * core.TokenUnit,
	}
}

// startSolo starts one single-server "node" (no pair backup) named name.
func startSolo(t *testing.T, name string) *server.Server {
	t.Helper()
	srv, err := server.New(server.Config{
		Addr:      "127.0.0.1:0",
		Threads:   2,
		Model:     costModel(),
		TokenRate: 1_000_000 * core.TokenUnit,
		NodeName:  name,
	}, storage.NewMem(32<<20))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv
}

// soloCluster starts n solo nodes plus a coordinator over them and
// installs the v1 map everywhere.
func soloCluster(t *testing.T, n, numShards int, shardBlocks uint32) (*shard.Coordinator, []*server.Server) {
	t.Helper()
	srvs := make([]*server.Server, n)
	nodes := make([]shard.Node, n)
	for i := range srvs {
		name := fmt.Sprintf("node%d", i)
		srvs[i] = startSolo(t, name)
		nodes[i] = shard.Node{Name: name, Addrs: []string{srvs[i].Addr()}}
	}
	c, err := shard.NewCoordinator(shard.CoordinatorConfig{
		Nodes:          nodes,
		NumShards:      numShards,
		ShardBlocks:    shardBlocks,
		InstallTimeout: 2 * time.Second,
		Logf:           t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.InstallAll(); err != nil {
		t.Fatal(err)
	}
	return c, srvs
}

func newRouter(t *testing.T, seeds []string) *shard.Router {
	t.Helper()
	r, err := shard.NewRouter(shard.RouterConfig{
		Seeds: seeds,
		Reg:   protocol.Registration{BestEffort: true, Writable: true},
		Opts:  client.Options{Timeout: 2 * time.Second},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { r.Close() })
	return r
}

func block(lba uint32, seq uint64) []byte {
	b := make([]byte, 512)
	binary.BigEndian.PutUint32(b, lba)
	binary.BigEndian.PutUint64(b[4:], seq)
	for i := 12; i < len(b); i++ {
		b[i] = byte(lba + uint32(seq) + uint32(i))
	}
	return b
}

func TestClusterRoutingEndToEnd(t *testing.T) {
	const numShards, shardBlocks = 8, 1024
	c, srvs := soloCluster(t, 3, numShards, shardBlocks)
	seeds := []string{srvs[0].Addr(), srvs[1].Addr(), srvs[2].Addr()}
	r := newRouter(t, seeds)

	// One write+read per shard, routed to three different nodes.
	for s := 0; s < numShards; s++ {
		lba := uint32(s)*shardBlocks + uint32(s)
		data := block(lba, 1)
		if err := r.Write(lba, data); err != nil {
			t.Fatalf("shard %d write: %v", s, err)
		}
		got, err := r.Read(lba, 512)
		if err != nil {
			t.Fatalf("shard %d read: %v", s, err)
		}
		if !bytes.Equal(got, data) {
			t.Fatalf("shard %d read back different data", s)
		}
	}
	if got := r.Redirects(); got != 0 {
		t.Fatalf("fresh map produced %d redirects, want 0", got)
	}
	m := r.Map()
	if m == nil || m.Version != c.Map().Version {
		t.Fatalf("router map out of sync with coordinator")
	}

	// Every node serves the map it installed.
	cl, err := client.Dial(srvs[1].Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	ver, raw, err := cl.FetchShardMap()
	if err != nil {
		t.Fatal(err)
	}
	if ver != m.Version {
		t.Fatalf("fetched map v%d, want v%d", ver, m.Version)
	}
	if _, err := shard.Unmarshal(raw); err != nil {
		t.Fatalf("fetched map does not decode: %v", err)
	}

	// A node refuses I/O for ranges it does not own, echoing its version.
	h, err := cl.Register(protocol.Registration{BestEffort: true, Writable: true})
	if err != nil {
		t.Fatal(err)
	}
	foreign := uint32(0)
	found := false
	for s := 0; s < numShards; s++ {
		if m.Nodes[m.Assign[s]].Name != "node1" {
			foreign = uint32(s) * shardBlocks
			found = true
			break
		}
	}
	if !found {
		t.Skip("node1 owns everything (improbable)")
	}
	if _, err := cl.Read(h, foreign, 512); !errors.Is(err, client.ErrWrongShard) {
		t.Fatalf("foreign read = %v, want ErrWrongShard", err)
	}
	if err := cl.Write(h, foreign, block(foreign, 1)); !errors.Is(err, client.ErrWrongShard) {
		t.Fatalf("foreign write = %v, want ErrWrongShard", err)
	}
	if srvs[1].Metrics() == nil {
		t.Fatal("metrics missing")
	}
}

func TestRouterFetchOnMissAndNoMap(t *testing.T) {
	// A cluster with no installed map: the router surfaces ErrNoMap.
	srv := startSolo(t, "solo")
	r := newRouter(t, []string{srv.Addr()})
	if err := r.Write(0, block(0, 1)); !errors.Is(err, shard.ErrNoMap) {
		t.Fatalf("no-map write = %v, want ErrNoMap", err)
	}
}

func TestRouterTargetHygiene(t *testing.T) {
	// All-blank seeds are a typed error.
	if _, err := shard.NewRouter(shard.RouterConfig{Seeds: []string{"", "  "}}); !errors.Is(err, shard.ErrNoTargets) {
		t.Fatalf("blank seeds = %v, want ErrNoTargets", err)
	}

	// Duplicate and blank entries — in the seed list AND in a node's
	// address list — are cleaned up before dialing.
	srv := startSolo(t, "node0")
	addr := srv.Addr()
	c, err := shard.NewCoordinator(shard.CoordinatorConfig{
		Nodes:          []shard.Node{{Name: "node0", Addrs: []string{addr, addr, ""}}},
		NumShards:      4,
		ShardBlocks:    256,
		InstallTimeout: 2 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.InstallAll(); err != nil {
		t.Fatal(err)
	}
	r := newRouter(t, []string{addr, "", addr, " " + addr + " "})
	if err := r.Write(7, block(7, 1)); err != nil {
		t.Fatal(err)
	}
	got, err := r.Read(7, 512)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, block(7, 1)) {
		t.Fatal("data mismatch through deduped targets")
	}
}

func TestMoveShardCarriesDataAndRedirects(t *testing.T) {
	const numShards, shardBlocks = 4, 512
	c, srvs := soloCluster(t, 2, numShards, shardBlocks)
	m := c.Map()

	// Pick a shard owned by node0 and pre-write data into it.
	moveShard := -1
	for s := 0; s < numShards; s++ {
		if m.Nodes[m.Assign[s]].Name == "node0" {
			moveShard = s
			break
		}
	}
	if moveShard < 0 {
		t.Skip("node0 owns nothing (improbable)")
	}
	r := newRouter(t, []string{srvs[0].Addr(), srvs[1].Addr()})
	base := uint32(moveShard) * shardBlocks
	for i := uint32(0); i < 8; i++ {
		if err := r.Write(base+i, block(base+i, 7)); err != nil {
			t.Fatal(err)
		}
	}

	if err := c.MoveShard(moveShard, "node1", 20*time.Second); err != nil {
		t.Fatal(err)
	}

	// The router's map is now two versions stale; its next access
	// redirects, refreshes, and lands on node1 — where the catch-up
	// stream already placed the pre-move data.
	for i := uint32(0); i < 8; i++ {
		got, err := r.Read(base+i, 512)
		if err != nil {
			t.Fatalf("post-move read %d: %v", i, err)
		}
		if !bytes.Equal(got, block(base+i, 7)) {
			t.Fatalf("post-move read %d: data lost in migration", i)
		}
	}
	if r.Redirects() == 0 {
		t.Fatal("stale router never redirected")
	}
	if got := r.Map().Version; got != c.Map().Version {
		t.Fatalf("router converged to v%d, want v%d", got, c.Map().Version)
	}
	// The old owner now refuses the range.
	cl, err := client.Dial(srvs[0].Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	h, err := cl.Register(protocol.Registration{BestEffort: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Read(h, base, 512); !errors.Is(err, client.ErrWrongShard) {
		t.Fatalf("old owner read = %v, want ErrWrongShard", err)
	}
	// Moving a shard to its current owner is a no-op.
	before := c.Map().Version
	if err := c.MoveShard(moveShard, "node1", time.Second); err != nil {
		t.Fatal(err)
	}
	if c.Map().Version != before {
		t.Fatal("no-op move bumped the map version")
	}
}

// TestRedirectStormConverges: a stale router hammered by many goroutines
// converges through single-flight refreshes — every operation succeeds
// and the refresh count stays near one, not near the goroutine count.
func TestRedirectStormConverges(t *testing.T) {
	const numShards, shardBlocks = 4, 512
	c, srvs := soloCluster(t, 2, numShards, shardBlocks)
	m := c.Map()
	moveShard := -1
	for s := 0; s < numShards; s++ {
		if m.Nodes[m.Assign[s]].Name == "node0" {
			moveShard = s
			break
		}
	}
	if moveShard < 0 {
		t.Skip("node0 owns nothing")
	}
	r := newRouter(t, []string{srvs[0].Addr(), srvs[1].Addr()})
	base := uint32(moveShard) * shardBlocks
	if err := r.Write(base, block(base, 3)); err != nil {
		t.Fatal(err) // warm the router's map and node0's pool
	}
	if err := c.MoveShard(moveShard, "node1", 20*time.Second); err != nil {
		t.Fatal(err)
	}

	const workers = 24
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			lba := base + uint32(w%int(shardBlocks))
			if err := r.Write(lba, block(lba, uint64(w))); err != nil {
				errs <- fmt.Errorf("worker %d: %w", w, err)
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if got := r.Map().Version; got != c.Map().Version {
		t.Fatalf("router at v%d after storm, want v%d", got, c.Map().Version)
	}
	if refreshes := r.Refreshes(); refreshes > workers/2 {
		t.Fatalf("refresh storm: %d sweeps for %d workers (single-flight broken)", refreshes, workers)
	}
	t.Logf("storm: %d redirects, %d refreshes", r.Redirects(), r.Refreshes())
}

// TestMoveShardLiveWriterZeroLoss: a writer keeps acking writes into the
// moving shard throughout the move; every acked write is readable
// afterwards. This is the zero-lost-acked-writes invariant on the happy
// path (the soak test adds failures).
func TestMoveShardLiveWriterZeroLoss(t *testing.T) {
	const numShards, shardBlocks = 4, 1024
	c, srvs := soloCluster(t, 2, numShards, shardBlocks)
	m := c.Map()
	moveShard := -1
	for s := 0; s < numShards; s++ {
		if m.Nodes[m.Assign[s]].Name == "node0" {
			moveShard = s
			break
		}
	}
	if moveShard < 0 {
		t.Skip("node0 owns nothing")
	}
	base := uint32(moveShard) * shardBlocks
	r := newRouter(t, []string{srvs[0].Addr(), srvs[1].Addr()})

	// Ledger of acked writes: lba -> last acked sequence.
	var (
		mu     sync.Mutex
		ledger = map[uint32]uint64{}
		stop   = make(chan struct{})
		done   = make(chan struct{})
	)
	go func() {
		defer close(done)
		seq := uint64(0)
		for {
			select {
			case <-stop:
				return
			default:
			}
			seq++
			lba := base + uint32(seq%64)
			if err := r.Write(lba, block(lba, seq)); err != nil {
				// Router retries wrong-shard internally; anything else is a
				// real failure worth surfacing.
				t.Errorf("live write seq %d: %v", seq, err)
				return
			}
			mu.Lock()
			ledger[lba] = seq
			mu.Unlock()
		}
	}()

	time.Sleep(50 * time.Millisecond) // let the writer build history
	if err := c.MoveShard(moveShard, "node1", 30*time.Second); err != nil {
		t.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond) // writes continue at the new owner
	close(stop)
	<-done

	mu.Lock()
	defer mu.Unlock()
	if len(ledger) == 0 {
		t.Fatal("writer acked nothing")
	}
	// Read every acked write back through a FRESH router (no warm pools:
	// everything must come off the destination).
	r2 := newRouter(t, []string{srvs[1].Addr()})
	for lba, seq := range ledger {
		got, err := r2.Read(lba, 512)
		if err != nil {
			t.Fatalf("ledger read lba %d: %v", lba, err)
		}
		if !bytes.Equal(got, block(lba, seq)) {
			t.Fatalf("lba %d: acked seq %d lost in migration", lba, seq)
		}
	}
	t.Logf("zero loss across move: %d distinct LBAs verified", len(ledger))
}
