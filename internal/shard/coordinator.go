package shard

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"github.com/reflex-go/reflex/internal/core"
	"github.com/reflex-go/reflex/internal/obs"
)

// EditKind classifies a coordinator map edit for the replicated control
// plane (internal/ctrlplane): each kind maps onto one replicated-log
// entry kind, so a follower that wins the lease can replay the
// coordinator's decisions from the log alone.
type EditKind uint8

const (
	// EditSeed is the initial placement (version-1 map) committed by the
	// first leader so followers start from the same map.
	EditSeed EditKind = iota + 1
	// EditState is a membership-state annotation riding on the map.
	EditState
	// EditReassign moved a dead node's shards to ring successors.
	EditReassign
	// EditMovePrepare opened a MoveShard dual-ownership window.
	EditMovePrepare
	// EditMoveCutover made the move destination authoritative.
	EditMoveCutover
	// EditMoveRollback cleared a failed move's dual-ownership window.
	EditMoveRollback
	// EditMoveDone marks a completed move (no map change: the cutover
	// already carried it; this clears the in-flight move record).
	EditMoveDone
)

// EditRecord is one edit() product offered to CoordinatorConfig.Commit
// before the map is swapped in and installed: the replicated control
// plane's log entry payload. Map is nil for EditMoveDone (a pure
// state-machine transition with no new map version).
type EditRecord struct {
	Kind      EditKind
	Shard     int // -1 when not shard-scoped
	Src, Dest string
	Map       *Map
	Detail    string
}

// CoordinatorConfig configures the cluster control plane (the paper's
// §4.3 global controller, DESIGN.md §13).
type CoordinatorConfig struct {
	// Nodes lists the replica pairs under management (primary address
	// first by convention).
	Nodes []Node
	// NumShards and ShardBlocks define the sharded LBA space: NumShards
	// contiguous ranges of ShardBlocks 512-byte blocks each.
	NumShards   int
	ShardBlocks uint32
	// VNodes is the consistent-hash virtual-node count (0 = default).
	VNodes int
	// InstallTimeout bounds each control-plane exchange (default 5s).
	InstallTimeout time.Duration
	// Probe tunes the SWIM-lite failure detector.
	Probe MembershipConfig
	// AutoHeal reacts to dead nodes: promote the pair's backup when one
	// answers, otherwise reassign the dead node's shards over the
	// survivors and reinstall the map.
	AutoHeal bool
	// Reg optionally receives the coordinator's metrics: per-node
	// membership-state gauges, the map-version gauge and the shard_moves
	// counter.
	Reg *obs.Registry
	// Journal receives control-plane events (promotions, fencings,
	// reassignments, MoveShard phases). Auto-created when nil; read it
	// back via Coordinator.Journal.
	Journal *obs.Journal
	// TraceRing receives the migration sink's relay spans, linking a
	// traced write forwarded through a live MoveShard into its cross-node
	// timeline. Auto-created when nil; read via Coordinator.TraceRing.
	TraceRing *obs.Ring
	// Logf receives control-plane decisions (nil = silent).
	Logf func(format string, args ...any)
	// Dialer is the control-plane dial seam (nil: net.DialTimeout).
	Dialer dialFunc
	// Commit, when set, must durably commit the edit record before the
	// coordinator swaps the result in as authoritative and installs it —
	// the replicated control plane routes every edit through its quorum
	// log here. An error aborts the edit: the map is unchanged and
	// nothing installs, which is what fences a deposed leader (its
	// commits fail, so it can never mint a map version). Nil means
	// standalone operation: every edit commits trivially.
	Commit func(rec EditRecord) error
}

func (c *CoordinatorConfig) fill() error {
	if len(c.Nodes) == 0 {
		return fmt.Errorf("shard: coordinator needs at least one node")
	}
	if c.NumShards <= 0 || c.ShardBlocks == 0 {
		return fmt.Errorf("shard: NumShards and ShardBlocks must be positive")
	}
	if c.InstallTimeout < 0 {
		return fmt.Errorf("shard: negative InstallTimeout %v", c.InstallTimeout)
	}
	if c.InstallTimeout == 0 {
		c.InstallTimeout = 5 * time.Second
	}
	if err := c.Probe.validate(); err != nil {
		return err
	}
	if len(c.Nodes) > maxNodes {
		return fmt.Errorf("shard: %d nodes exceed the wire-format max %d", len(c.Nodes), maxNodes)
	}
	seen := map[string]bool{}
	for _, n := range c.Nodes {
		if n.Name == "" || seen[n.Name] {
			return fmt.Errorf("shard: node names must be unique and non-empty")
		}
		seen[n.Name] = true
		if len(n.Addrs) == 0 {
			return fmt.Errorf("shard: node %s has no addresses", n.Name)
		}
		// Marshal packs these into u8/u16 fields; an oversized value would
		// silently truncate into a payload every Unmarshal refuses (or
		// worse, mis-parses), poisoning the whole control plane.
		if len(n.Name) > 255 {
			return fmt.Errorf("shard: node name %.16q… is %d bytes (max 255)", n.Name, len(n.Name))
		}
		if len(n.Addrs) > 255 {
			return fmt.Errorf("shard: node %s has %d addresses (max 255)", n.Name, len(n.Addrs))
		}
		for _, a := range n.Addrs {
			if len(a) > 65535 {
				return fmt.Errorf("shard: node %s has a %d-byte address (max 65535)", n.Name, len(a))
			}
		}
	}
	return nil
}

// Coordinator owns the authoritative shard map: placement over the
// consistent-hash ring, map installation on every node, failure
// reaction (pair promotion / shard reassignment), per-node SLO rate
// splits, and live shard migration (MoveShard, migrate.go).
type Coordinator struct {
	cfg CoordinatorConfig
	mem *Membership

	mu  sync.Mutex
	cur *Map

	// moveMu serializes live shard migrations (one MoveShard at a time).
	moveMu sync.Mutex

	// editMu serializes every read-modify-write of the authoritative map.
	// MoveShard (caller goroutine) and reassignDead/noteState (membership
	// goroutine, via onTransition) edit concurrently; without this, two
	// editors can Clone() the same base and swap() two different maps
	// carrying the same Version — servers adopt whichever installs first
	// and refuse the other as stale, silently diverging from the
	// coordinator's view. moveMu cannot serve here: it is held across the
	// whole (possibly minutes-long) move, and the membership goroutine
	// must not stall probing behind it.
	editMu sync.Mutex

	moves     atomic.Uint64
	promoted  atomic.Uint64
	reassigns atomic.Uint64
	repairs   atomic.Uint64

	// spanSeq mints relay span ids under the coordinator's own id-space
	// prefix (same partitioning scheme as the servers' metrics.spanID).
	spanSeq atomic.Uint64

	// stopCh aborts an in-flight MoveShard: phase 2's catch-up wait and
	// phase 4's drain poll both select on it, so Stop() never leaves a
	// dual-ownership window behind (rolled back pre-cutover, completed
	// after).
	stopCh   chan struct{}
	stopOnce sync.Once

	memStarted bool
}

// coordSpanBase prefixes relay span ids; FNV-1a 64 of "coord" shifted
// into the high bits, matching the per-node span-id partitioning in
// internal/server (wrapping shift: only the prefix has to be distinct).
const coordSpanBase = uint64(0x3ae7ae) << 40 // low 24 bits of fnv64a("coord")

// Journal returns the coordinator's control-plane event journal.
func (c *Coordinator) Journal() *obs.Journal { return c.cfg.Journal }

// TraceRing returns the ring holding the migration sink's relay spans.
func (c *Coordinator) TraceRing() *obs.Ring { return c.cfg.TraceRing }

func (c *Coordinator) spanID() uint64 {
	return coordSpanBase | (c.spanSeq.Add(1) & (1<<40 - 1))
}

// NewCoordinator builds the coordinator and its version-1 map (ring
// placement over all configured nodes). Nothing is installed yet; call
// InstallAll, then StartMembership.
func NewCoordinator(cfg CoordinatorConfig) (*Coordinator, error) {
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	nodes := make([]Node, len(cfg.Nodes))
	for i, n := range cfg.Nodes {
		nodes[i] = Node{Name: n.Name, Addrs: append([]string(nil), n.Addrs...), State: StateAlive}
	}
	if cfg.Journal == nil {
		cfg.Journal = obs.NewJournal(1024)
	}
	if cfg.TraceRing == nil {
		cfg.TraceRing = obs.NewRing(4096, 16)
	}
	c := &Coordinator{cfg: cfg, stopCh: make(chan struct{})}
	c.cur = BuildMap(nodes, cfg.NumShards, cfg.ShardBlocks, cfg.VNodes)
	probe := cfg.Probe
	probe.Dialer = firstDialer(probe.Dialer, cfg.Dialer)
	probe.OnTransition = c.onTransition
	probe.OnPrimaryDown = c.onPrimaryDown
	c.mem = NewMembership(nodes, probe)
	if cfg.Reg != nil {
		c.registerMetrics(cfg.Reg)
	}
	return c, nil
}

func firstDialer(ds ...dialFunc) dialFunc {
	for _, d := range ds {
		if d != nil {
			return d
		}
	}
	return nil
}

func (c *Coordinator) logf(format string, args ...any) {
	if c.cfg.Logf != nil {
		c.cfg.Logf(format, args...)
	}
}

// Map returns the current authoritative map (immutable).
func (c *Coordinator) Map() *Map {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.cur
}

// Membership exposes the failure detector (gauges, reflex-cli).
func (c *Coordinator) Membership() *Membership { return c.mem }

// Moves returns how many shard ownership changes the coordinator has
// pushed (map-diff accumulated across installs).
func (c *Coordinator) Moves() uint64 { return c.moves.Load() }

// swap installs nm as the coordinator's authoritative map, accounting
// the ownership diff.
func (c *Coordinator) swap(nm *Map) {
	c.mu.Lock()
	c.moves.Add(uint64(nm.DiffMoves(c.cur)))
	c.cur = nm
	c.mu.Unlock()
}

// edit atomically applies fn to the current map, commits the result
// through the configured Commit hook, and installs it as authoritative.
// fn runs under editMu — its base cannot be cloned by a concurrent
// editor — and may return nil to abort (the current map is kept and nil
// is returned). rec describes the edit for the replicated log; its Map
// field is filled with fn's product before the commit. A failed commit
// (deposed leader, lost quorum) also aborts: the map is unchanged,
// nothing installs. Every map mutation in the coordinator goes through
// here.
func (c *Coordinator) edit(rec EditRecord, fn func(cur *Map) *Map) *Map {
	c.editMu.Lock()
	defer c.editMu.Unlock()
	nm := fn(c.Map())
	if nm == nil {
		return nil
	}
	if c.cfg.Commit != nil {
		rec.Map = nm
		if err := c.cfg.Commit(rec); err != nil {
			c.logf("shard: edit %d (shard %d) commit refused: %v", rec.Kind, rec.Shard, err)
			return nil
		}
	}
	c.swap(nm)
	return nm
}

// commit offers a map-less edit record (EditMoveDone) to the Commit
// hook. Trivially succeeds in standalone operation.
func (c *Coordinator) commit(rec EditRecord) error {
	if c.cfg.Commit == nil {
		return nil
	}
	return c.cfg.Commit(rec)
}

// Adopt installs m as the coordinator's authoritative map iff it is
// newer than the current one — the replicated control plane's
// state-seeding path on leadership change. It deliberately bypasses the
// Commit hook: the map came OUT of the quorum-committed log, so
// re-committing it would double-append. Reports whether the map was
// adopted.
func (c *Coordinator) Adopt(m *Map) bool {
	c.editMu.Lock()
	defer c.editMu.Unlock()
	if m == nil || m.Version <= c.Map().Version {
		return false
	}
	c.swap(m)
	return true
}

// stopped reports whether Stop has been called.
func (c *Coordinator) stopped() bool {
	select {
	case <-c.stopCh:
		return true
	default:
		return false
	}
}

// Reconcile is the anti-entropy pass: it compares every live node's
// installed map version against the authoritative one and re-installs
// where stale (a node that missed an install while partitioned, or that
// a deposed leader fed an old version, converges here). Returns how
// many addresses were repaired. While a MoveShard is in flight the pass
// is skipped entirely: the move installs its maps in a deliberate
// destination-first order, and a concurrent Reconcile pushing the
// authoritative map to arbitrary addresses could e.g. fence writes off
// the source with the cutover map before the destination's install
// landed, briefly inverting that ordering.
func (c *Coordinator) Reconcile() int {
	if !c.moveMu.TryLock() {
		return 0 // a live move owns install ordering; next tick retries
	}
	defer c.moveMu.Unlock()
	m := c.Map()
	raw := m.Marshal()
	repaired := 0
	for _, n := range m.Nodes {
		if n.State == StateDead {
			continue
		}
		for _, addr := range n.Addrs {
			v, err := fetchMapVersion(c.cfg.Dialer, addr, c.cfg.InstallTimeout)
			if err != nil || v >= m.Version {
				continue
			}
			if _, err := installMap(c.cfg.Dialer, addr, c.cfg.InstallTimeout, raw); err != nil {
				c.logf("shard: reconcile %s (%s): %v", n.Name, addr, err)
				continue
			}
			repaired++
			c.repairs.Add(1)
			c.cfg.Journal.Record(obs.EvMapInstall, n.Name, -1,
				"anti-entropy repaired %s: v%d -> v%d", addr, v, m.Version)
		}
	}
	return repaired
}

// installOn pushes the current map to every address of the named nodes
// (every member of a pair holds the map: a promoted backup must enforce
// it immediately). A node counts as installed when at least one of its
// addresses accepted; errors on the rest are expected during failures.
func (c *Coordinator) installOn(m *Map, names ...string) error {
	raw := m.Marshal()
	var firstErr error
	for _, name := range names {
		ok := false
		var lastErr error
		for _, n := range m.Nodes {
			if n.Name != name {
				continue
			}
			for _, addr := range n.Addrs {
				if _, err := installMap(c.cfg.Dialer, addr, c.cfg.InstallTimeout, raw); err != nil {
					lastErr = err
					continue
				}
				ok = true
			}
		}
		if !ok && firstErr == nil {
			if lastErr == nil {
				lastErr = fmt.Errorf("shard: node %s not in map", name)
			}
			firstErr = fmt.Errorf("shard: install on %s failed: %w", name, lastErr)
		}
	}
	return firstErr
}

// InstallAll pushes the current map to every node. Returns the first
// hard failure (a node none of whose addresses accepted) but installs
// on everyone regardless.
func (c *Coordinator) InstallAll() error {
	m := c.Map()
	names := make([]string, len(m.Nodes))
	for i, n := range m.Nodes {
		names[i] = n.Name
	}
	return c.installOn(m, names...)
}

// StartMembership launches the probe loop (Stop tears it down).
func (c *Coordinator) StartMembership() {
	c.mu.Lock()
	started := c.memStarted
	c.memStarted = true
	c.mu.Unlock()
	if !started {
		go c.mem.Run()
	}
}

// Stop halts the probe loop and deterministically resolves any
// in-flight MoveShard: pre-cutover the move aborts and rolls back its
// dual-ownership window; post-cutover it is already decided and Stop
// merely waits for the drain to exit. Stop returns only once the move
// goroutine has left moveMu — no Migrating window survives a stop.
func (c *Coordinator) Stop() {
	c.stopOnce.Do(func() { close(c.stopCh) })
	c.mu.Lock()
	started := c.memStarted
	c.mu.Unlock()
	if started {
		c.mem.Stop()
	}
	c.moveMu.Lock()
	//lint:ignore SA2001 acquiring moveMu is the synchronization: it
	// blocks until the aborted move has fully unwound.
	c.moveMu.Unlock()
}

// onTransition is the node-level failure-reaction policy, fired by the
// detector. Note that a pair whose primary died but whose backup still
// answers never transitions to Dead (the node is as healthy as its
// healthiest member) — that case is handled by onPrimaryDown, the
// detector's address-level trigger. Reaching Dead means every address is
// gone; a last-gasp promotion attempt is tried anyway (an address may
// have answered with the backup role just before the pair fell over, and
// flapping pairs recover through it), then the shards are reassigned.
func (c *Coordinator) onTransition(name string, from, to MemberState) {
	c.logf("shard: node %s: %s -> %s", name, from, to)
	c.noteState(name, to)
	if !c.cfg.AutoHeal || to != StateDead {
		return
	}
	if !c.tryPromote(name) {
		c.reassignDead(name)
	}
}

// onPrimaryDown is the address-level promotion trigger: the pair's
// primary address has missed DeadAfter consecutive probes while a
// backup-role address still answers. This — not the node-level Dead
// transition, which requires EVERY address dead and therefore excludes
// an alive backup — is the path that promotes in production.
func (c *Coordinator) onPrimaryDown(name string) {
	c.logf("shard: node %s: primary address dead, backup answering", name)
	if !c.cfg.AutoHeal {
		return
	}
	c.tryPromote(name)
}

// tryPromote promotes the named pair's answering backup to primary at
// the next epoch, fencing its peers. Reports whether a promotion
// happened.
func (c *Coordinator) tryPromote(name string) bool {
	addr, epoch, ok := c.mem.AliveBackup(name)
	if !ok {
		return false
	}
	e, err := promote(c.cfg.Dialer, addr, c.cfg.InstallTimeout, epoch+1)
	if err != nil {
		c.logf("shard: promote %s (%s): %v", name, addr, err)
		return false
	}
	c.promoted.Add(1)
	c.logf("shard: promoted %s (%s) to primary at epoch %d", name, addr, e)
	c.cfg.Journal.Record(obs.EvPromote, name, -1,
		"backup %s promoted to primary at epoch %d", addr, e)
	c.fencePeers(name, addr, e)
	return true
}

// noteState mirrors a node's membership state into the current map's
// node list (a copy at same version is not pushed — the state bits ride
// along with the next install). Routed through edit so a state
// annotation cannot race a concurrent Clone-and-swap and lose either
// side's change.
func (c *Coordinator) noteState(name string, st MemberState) {
	c.cfg.Journal.Record(obs.EvNodeState, name, -1, "membership state -> %s", st)
	rec := EditRecord{Kind: EditState, Shard: -1, Src: name,
		Detail: fmt.Sprintf("membership state -> %s", st)}
	c.edit(rec, func(cur *Map) *Map {
		idx := cur.NodeIndex(name)
		if idx < 0 {
			return nil
		}
		nm := *cur // shallow copy, then fresh node slice: keep Map immutable
		nm.Nodes = make([]Node, len(cur.Nodes))
		copy(nm.Nodes, cur.Nodes)
		nm.Nodes[idx].State = st
		return &nm
	})
}

// fencePeers sends a best-effort OpFence at epoch e to every other
// address of the named pair (the possibly-alive-but-slow old primary).
func (c *Coordinator) fencePeers(name, keep string, e uint16) {
	m := c.Map()
	for _, n := range m.Nodes {
		if n.Name != name {
			continue
		}
		for _, addr := range n.Addrs {
			if addr != keep {
				fence(c.cfg.Dialer, addr, c.cfg.InstallTimeout, e)
			}
		}
	}
	c.cfg.Journal.Record(obs.EvFence, name, -1, "peers fenced at epoch %d (kept %s)", e, keep)
}

// reassignDead moves a dead node's shards to their ring successors and
// reinstalls the map on the survivors. Consistent hashing means only
// the dead node's shards move.
func (c *Coordinator) reassignDead(name string) {
	var (
		idx   = -1
		moved int
	)
	rec := EditRecord{Kind: EditReassign, Shard: -1, Src: name,
		Detail: "dead-node shard reassignment"}
	nm := c.edit(rec, func(cur *Map) *Map {
		idx = cur.NodeIndex(name)
		if idx < 0 {
			return nil
		}
		n := cur.Reassign(idx, c.cfg.VNodes)
		moved = n.DiffMoves(cur)
		return n
	})
	if nm == nil {
		return
	}
	c.reassigns.Add(1)
	c.logf("shard: reassigned %d shards off dead node %s (map v%d)",
		moved, name, nm.Version)
	c.cfg.Journal.Record(obs.EvReassign, name, -1,
		"%d shards reassigned off dead node (map v%d)", moved, nm.Version)
	survivors := make([]string, 0, len(nm.Nodes))
	for i, n := range nm.Nodes {
		if i != idx && n.State != StateDead {
			survivors = append(survivors, n.Name)
		}
	}
	if err := c.installOn(nm, survivors...); err != nil {
		c.logf("shard: reassign install: %v", err)
	}
}

// RatesForSLO splits a cluster-wide latency-critical SLO into per-node
// token rates: each node's share of the cluster IOPS is proportional to
// the fraction of shards it owns (uniform key distribution — the ring's
// virtual nodes keep the split tight), then converted to a token rate
// through the device cost model exactly like single-node admission
// (§3.2.2). The result is what each node's operator passes as the
// tenant's rate when admitting the cluster tenant locally.
func (c *Coordinator) RatesForSLO(model core.CostModel, iops, readPercent int) map[string]core.Tokens {
	m := c.Map()
	owned := make(map[string]int)
	for _, o := range m.Assign {
		if o >= 0 {
			owned[m.Nodes[o].Name]++
		}
	}
	out := make(map[string]core.Tokens, len(owned))
	total := len(m.Assign)
	if total == 0 {
		return out
	}
	for name, k := range owned {
		nodeIOPS := (iops*k + total - 1) / total // ceil: never under-provision
		out[name] = model.RateForSLO(nodeIOPS, readPercent)
	}
	return out
}

// registerMetrics exposes the coordinator's view on an obs registry:
// shard_map_version, shard_moves and a per-node membership-state gauge
// (0 alive, 1 suspect, 2 dead).
func (c *Coordinator) registerMetrics(reg *obs.Registry) {
	reg.GaugeFunc("shard_map_version", "coordinator's authoritative shard-map version",
		func() float64 { return float64(c.Map().Version) })
	reg.CounterFunc("shard_moves", "shard ownership changes pushed by the coordinator",
		func() float64 { return float64(c.moves.Load()) })
	reg.CounterFunc("shard_promotions", "pair backups promoted after primary death",
		func() float64 { return float64(c.promoted.Load()) })
	reg.CounterFunc("shard_reassigns", "dead-node shard reassignments",
		func() float64 { return float64(c.reassigns.Load()) })
	reg.CounterFunc("shard_map_repairs", "stale installed maps repaired by anti-entropy",
		func() float64 { return float64(c.repairs.Load()) })
	for _, n := range c.cfg.Nodes {
		name := n.Name
		reg.GaugeFunc("shard_node_state", "membership state (0 alive, 1 suspect, 2 dead)",
			func() float64 { return float64(c.mem.State(name)) }, obs.L("node", name))
	}
}
