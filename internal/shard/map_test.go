package shard

import (
	"testing"
)

func testMap(t *testing.T) *Map {
	t.Helper()
	nodes := []Node{
		{Name: "n0", Addrs: []string{"127.0.0.1:1", "127.0.0.1:2"}},
		{Name: "n1", Addrs: []string{"127.0.0.1:3"}, State: StateSuspect},
		{Name: "n2", Addrs: []string{"127.0.0.1:4"}},
	}
	m := BuildMap(nodes, 16, 1024, 16)
	m.Migrating[3] = 2
	return m
}

func TestMapMarshalRoundTrip(t *testing.T) {
	m := testMap(t)
	m.Version = 7
	got, err := Unmarshal(m.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if got.Version != m.Version || got.ShardBlocks != m.ShardBlocks {
		t.Fatalf("header mismatch: v%d/%d vs v%d/%d", got.Version, got.ShardBlocks, m.Version, m.ShardBlocks)
	}
	if len(got.Nodes) != len(m.Nodes) {
		t.Fatalf("node count %d, want %d", len(got.Nodes), len(m.Nodes))
	}
	for i := range m.Nodes {
		if got.Nodes[i].Name != m.Nodes[i].Name || got.Nodes[i].State != m.Nodes[i].State {
			t.Fatalf("node %d mismatch: %+v vs %+v", i, got.Nodes[i], m.Nodes[i])
		}
		if len(got.Nodes[i].Addrs) != len(m.Nodes[i].Addrs) {
			t.Fatalf("node %d addr count mismatch", i)
		}
		for j := range m.Nodes[i].Addrs {
			if got.Nodes[i].Addrs[j] != m.Nodes[i].Addrs[j] {
				t.Fatalf("node %d addr %d mismatch", i, j)
			}
		}
	}
	for s := range m.Assign {
		if got.Assign[s] != m.Assign[s] || got.Migrating[s] != m.Migrating[s] {
			t.Fatalf("shard %d mismatch: (%d,%d) vs (%d,%d)",
				s, got.Assign[s], got.Migrating[s], m.Assign[s], m.Migrating[s])
		}
	}
}

func TestMapUnmarshalRejectsGarbage(t *testing.T) {
	m := testMap(t)
	raw := m.Marshal()
	for _, cut := range []int{0, 1, 4, 8, len(raw) / 2, len(raw) - 1} {
		if _, err := Unmarshal(raw[:cut]); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
	if _, err := Unmarshal(append(append([]byte(nil), raw...), 0xFF)); err == nil {
		t.Fatal("trailing byte accepted")
	}
}

func TestMapCloneIsDeepAndBumpsVersion(t *testing.T) {
	m := testMap(t)
	n := m.Clone()
	if n.Version != m.Version+1 {
		t.Fatalf("Clone version %d, want %d", n.Version, m.Version+1)
	}
	n.Assign[0] = 99
	n.Migrating[0] = 99
	n.Nodes[0].State = StateDead
	n.Nodes[0].Addrs[0] = "mutated"
	if m.Assign[0] == 99 || m.Migrating[0] == 99 || m.Nodes[0].State == StateDead || m.Nodes[0].Addrs[0] == "mutated" {
		t.Fatal("Clone shares state with the original")
	}
}

func TestMapOwnership(t *testing.T) {
	m := testMap(t)
	blocks := uint64(m.ShardBlocks)

	// A nil map owns everything (pre-sharding deployments).
	var nilMap *Map
	if !nilMap.OwnedBy("anyone", 123, 4) {
		t.Fatal("nil map should own everything")
	}

	// The authoritative owner owns its shard; others do not.
	ownerOf := func(s int) string { return m.Nodes[m.Assign[s]].Name }
	for s := 0; s < m.NumShards(); s++ {
		lba := uint64(s) * blocks
		if !m.OwnedBy(ownerOf(s), lba, 1) {
			t.Fatalf("shard %d: owner %s does not own its own range", s, ownerOf(s))
		}
		for i, n := range m.Nodes {
			if int32(i) == m.Assign[s] || int32(i) == m.Migrating[s] {
				continue
			}
			if m.OwnedBy(n.Name, lba, 1) {
				t.Fatalf("shard %d: non-owner %s owns it", s, n.Name)
			}
		}
	}

	// Migration destination co-owns the migrating shard.
	if !m.OwnedBy(m.Nodes[2].Name, 3*blocks, 1) {
		t.Fatal("migration destination does not co-own the migrating shard")
	}

	// A range spanning into a differently-owned shard is not owned.
	for s := 0; s < m.NumShards()-1; s++ {
		if m.Assign[s] == m.Assign[s+1] {
			continue
		}
		last := uint64(s)*blocks + blocks - 1
		if m.OwnedBy(ownerOf(s), last, 2) {
			t.Fatalf("shard %d: boundary-spanning range reported owned", s)
		}
		break
	}

	// Beyond the mapped space: unowned.
	if m.OwnedBy(ownerOf(0), uint64(m.NumShards())*blocks, 1) {
		t.Fatal("LBA beyond the mapped space reported owned")
	}
}

func TestMapOwnerAddrs(t *testing.T) {
	m := testMap(t)
	addrs := m.OwnerAddrs(0)
	want := m.Nodes[m.Assign[0]].Addrs
	if len(addrs) != len(want) {
		t.Fatalf("OwnerAddrs len %d, want %d", len(addrs), len(want))
	}
}

func TestDedupeTargets(t *testing.T) {
	got := dedupeTargets([]string{" a:1 ", "", "a:1", "b:2", "  ", "b:2", "c:3"})
	want := []string{"a:1", "b:2", "c:3"}
	if len(got) != len(want) {
		t.Fatalf("dedupeTargets = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("dedupeTargets = %v, want %v", got, want)
		}
	}
}
