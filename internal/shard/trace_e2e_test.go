package shard_test

import (
	"sync"
	"testing"
	"time"

	"github.com/reflex-go/reflex/internal/client"
	"github.com/reflex-go/reflex/internal/obs"
	"github.com/reflex-go/reflex/internal/protocol"
	"github.com/reflex-go/reflex/internal/shard"
)

// newTracedRouter is newRouter with distributed tracing enabled: every
// routed I/O carries a trace trailer and root spans land in ring.
func newTracedRouter(t *testing.T, seeds []string, ring *obs.Ring) *shard.Router {
	t.Helper()
	r, err := shard.NewRouter(shard.RouterConfig{
		Seeds:     seeds,
		Reg:       protocol.Registration{BestEffort: true, Writable: true},
		Opts:      client.Options{Timeout: 2 * time.Second},
		Trace:     true,
		TraceRing: ring,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { r.Close() })
	return r
}

// TestTraceE2E drives a traced write through a live shard migration and
// asserts the full observability story (ISSUE 6 acceptance):
//
//   - one stitched cross-node timeline covering every hop the write
//     took: client -> source serve -> migration-relay -> destination
//     serve, assembled purely from span parent links across four
//     independently collected rings;
//   - the coordinator's event journal holds the complete MoveShard
//     phase sequence (prepare -> catchup -> cutover -> drain -> done).
func TestTraceE2E(t *testing.T) {
	const numShards, shardBlocks = 2, 1024
	c, srvs := soloCluster(t, 2, numShards, shardBlocks)
	m := c.Map()
	moveShard := -1
	for s := 0; s < numShards; s++ {
		if m.Nodes[m.Assign[s]].Name == "node0" {
			moveShard = s
			break
		}
	}
	if moveShard < 0 {
		t.Skip("node0 owns nothing")
	}
	base := uint32(moveShard) * shardBlocks

	// Large enough to retain every root span pushed during the move:
	// relays happen mid-move, and a small ring would evict their roots
	// by the time we stitch.
	clientRing := obs.NewRing(1<<16, 16)
	r := newTracedRouter(t, []string{srvs[0].Addr(), srvs[1].Addr()}, clientRing)

	// Continuous traced writes into the moving shard: some land before
	// the move, some are forwarded through the migration sink mid-move,
	// some land at the destination after cutover.
	var (
		mu      sync.Mutex
		wrote   int
		stop    = make(chan struct{})
		done    = make(chan struct{})
		failure error
	)
	go func() {
		defer close(done)
		seq := uint64(0)
		for {
			select {
			case <-stop:
				return
			default:
			}
			seq++
			lba := base + uint32(seq%64)
			if err := r.Write(lba, block(lba, seq)); err != nil {
				mu.Lock()
				failure = err
				mu.Unlock()
				return
			}
			mu.Lock()
			wrote++
			mu.Unlock()
			// Throttle: the per-node trace rings are bounded (4096
			// spans); an unthrottled writer pushes the mid-move spans
			// out of every ring before the timeline is stitched.
			time.Sleep(200 * time.Microsecond)
		}
	}()

	time.Sleep(50 * time.Millisecond)
	if err := c.MoveShard(moveShard, "node1", 30*time.Second); err != nil {
		t.Fatal(err)
	}
	// Stop immediately: every write after cutover lands directly on the
	// destination and would push the relayed writes (which arrived there
	// pre-cutover) out of its bounded trace ring.
	close(stop)
	<-done
	mu.Lock()
	if failure != nil {
		t.Fatalf("live writer failed after %d writes: %v", wrote, failure)
	}
	t.Logf("live writer acked %d traced writes across the move", wrote)
	mu.Unlock()

	// Pick a write that went through the migration sink: any relay span
	// in the coordinator's trace ring names such a trace.
	relays := c.TraceRing().Recent(0)
	var trace uint64
	for _, sp := range relays {
		if sp.Hop == obs.HopRelay && sp.Trace != 0 {
			trace = sp.Trace
			break
		}
	}
	if trace == 0 {
		t.Fatal("no relay spans recorded: no traced write was forwarded through the live move")
	}

	// Union the four collection points exactly as a fleet scraper would
	// and stitch one timeline from span parent links alone.
	var spans []obs.Span
	spans = append(spans, clientRing.TraceSpans(trace)...)
	spans = append(spans, srvs[0].TraceRing().TraceSpans(trace)...)
	spans = append(spans, srvs[1].TraceRing().TraceSpans(trace)...)
	spans = append(spans, c.TraceRing().TraceSpans(trace)...)
	tl := obs.Stitch(trace, spans)
	if len(tl.Hops) < 4 {
		for _, h := range tl.Hops {
			t.Logf("hop: node=%s hop=%s depth=%d", h.Span.Node, obs.HopName(h.Span.Hop), h.Depth)
		}
		t.Fatalf("stitched only %d hops for trace %x, want >= 4 (client, src serve, relay, dst serve)", len(tl.Hops), trace)
	}
	for _, want := range []struct {
		hop  uint8
		node string
	}{
		{obs.HopClient, "client"},
		{obs.HopServe, "node0"},
		{obs.HopRelay, "coord"},
		{obs.HopServe, "node1"},
	} {
		if !tl.Has(want.hop, want.node) {
			t.Errorf("timeline missing hop %s on %q", obs.HopName(want.hop), want.node)
		}
	}
	if tl.Orphans != 0 {
		t.Errorf("timeline has %d orphan spans (parent links broken)", tl.Orphans)
	}

	// Journal: the coordinator's event log must carry the complete move
	// phase sequence for the moved shard, in order.
	wantKinds := []obs.EventKind{
		obs.EvMovePrepare, obs.EvMoveCatchup, obs.EvMoveCutover, obs.EvMoveDrain, obs.EvMoveDone,
	}
	events := c.Journal().Recent(0)
	got := make([]obs.EventKind, 0, len(wantKinds))
	for _, ev := range events {
		if ev.Shard == moveShard {
			got = append(got, ev.Kind)
		}
	}
	ki := 0
	for _, k := range got {
		if ki < len(wantKinds) && k == wantKinds[ki] {
			ki++
		}
	}
	if ki != len(wantKinds) {
		t.Errorf("journal move sequence incomplete: matched %d/%d phases, events for shard %d: %v",
			ki, len(wantKinds), moveShard, got)
	}
}
