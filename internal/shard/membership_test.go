package shard

import (
	"testing"
	"time"

	"github.com/reflex-go/reflex/internal/protocol"
)

func detector(t *testing.T, fc *fakeCluster, nodes []Node) (*Membership, *[]string) {
	t.Helper()
	var transitions []string
	cfg := MembershipConfig{
		Timeout:      500 * time.Millisecond,
		SuspectAfter: 1,
		DeadAfter:    3,
		Dialer:       fc.dial,
		OnTransition: func(node string, from, to MemberState) {
			transitions = append(transitions, node+":"+from.String()+"->"+to.String())
		},
	}
	return NewMembership(nodes, cfg), &transitions
}

func TestMembershipTransitions(t *testing.T) {
	fc := newFakeCluster()
	fa := fc.add("a:1")
	fb := fc.add("b:1")
	m, transitions := detector(t, fc, []Node{
		{Name: "n0", Addrs: []string{"a:1"}},
		{Name: "n1", Addrs: []string{"b:1"}},
	})

	m.Tick()
	if m.State("n0") != StateAlive || m.State("n1") != StateAlive {
		t.Fatal("healthy nodes not alive after a clean round")
	}

	fa.setDown(true)
	m.Tick()
	if got := m.State("n0"); got != StateSuspect {
		t.Fatalf("n0 after 1 miss = %s, want suspect", got)
	}
	m.Tick()
	m.Tick()
	if got := m.State("n0"); got != StateDead {
		t.Fatalf("n0 after 3 misses = %s, want dead", got)
	}
	if m.State("n1") != StateAlive {
		t.Fatal("n1 dragged down by n0's death")
	}

	// Recovery: one clean probe resurrects.
	fa.setDown(false)
	m.Tick()
	if got := m.State("n0"); got != StateAlive {
		t.Fatalf("n0 after recovery = %s, want alive", got)
	}

	want := []string{
		"n0:alive->suspect",
		"n0:suspect->dead",
		"n0:dead->alive",
	}
	if len(*transitions) != len(want) {
		t.Fatalf("transitions = %v, want %v", *transitions, want)
	}
	for i := range want {
		if (*transitions)[i] != want[i] {
			t.Fatalf("transitions = %v, want %v", *transitions, want)
		}
	}
	_ = fb
}

func TestMembershipPairIsAsHealthyAsItsBestAddr(t *testing.T) {
	fc := newFakeCluster()
	fp := fc.add("p:1")
	fb := fc.add("p:2")
	fb.mu.Lock()
	fb.role = protocol.RoleBackupBit
	fb.epoch = 4
	fb.mu.Unlock()
	m, _ := detector(t, fc, []Node{{Name: "pair", Addrs: []string{"p:1", "p:2"}}})

	m.Tick()
	if m.State("pair") != StateAlive {
		t.Fatal("pair not alive")
	}

	// Primary dies; the answering backup keeps the pair out of Dead.
	fp.setDown(true)
	for i := 0; i < 4; i++ {
		m.Tick()
	}
	if got := m.State("pair"); got != StateAlive {
		t.Fatalf("pair with live backup = %s, want alive", got)
	}

	addr, epoch, ok := m.AliveBackup("pair")
	if !ok || addr != "p:2" || epoch != 4 {
		t.Fatalf("AliveBackup = (%s,%d,%v), want (p:2,4,true)", addr, epoch, ok)
	}

	// Whole pair down: dead, and no promotion target.
	fb.setDown(true)
	for i := 0; i < 4; i++ {
		m.Tick()
	}
	if got := m.State("pair"); got != StateDead {
		t.Fatalf("fully-down pair = %s, want dead", got)
	}
	if _, _, ok := m.AliveBackup("pair"); ok {
		t.Fatal("AliveBackup found a target on a dead pair")
	}
}

func TestMembershipPrimaryDownTrigger(t *testing.T) {
	fc := newFakeCluster()
	fp := fc.add("p:1")
	fb := fc.add("p:2")
	fb.mu.Lock()
	fb.role = protocol.RoleBackupBit
	fb.mu.Unlock()
	var fired []string
	cfg := MembershipConfig{
		Timeout:       500 * time.Millisecond,
		SuspectAfter:  1,
		DeadAfter:     3,
		Dialer:        fc.dial,
		OnPrimaryDown: func(node string) { fired = append(fired, node) },
	}
	m := NewMembership([]Node{{Name: "pair", Addrs: []string{"p:1", "p:2"}}}, cfg)

	m.Tick() // learn roles
	fp.setDown(true)
	for i := 0; i < 2; i++ { // 2 misses: suspect, not yet dead
		m.Tick()
	}
	if len(fired) != 0 {
		t.Fatalf("OnPrimaryDown fired before DeadAfter: %v", fired)
	}
	m.Tick() // 3rd miss: primary address dead, backup alive -> fire
	if len(fired) != 1 || fired[0] != "pair" {
		t.Fatalf("OnPrimaryDown = %v, want [pair]", fired)
	}
	// Latched: further rounds in the same episode stay silent.
	for i := 0; i < 3; i++ {
		m.Tick()
	}
	if len(fired) != 1 {
		t.Fatalf("OnPrimaryDown refired within one episode: %v", fired)
	}
	// Recovery re-arms; a fresh outage fires again.
	fp.setDown(false)
	m.Tick()
	fp.setDown(true)
	for i := 0; i < 3; i++ {
		m.Tick()
	}
	if len(fired) != 2 {
		t.Fatalf("OnPrimaryDown after re-arm = %v, want a second firing", fired)
	}
	// Both down: no alive backup, nothing to promote onto — silent.
	fp.setDown(false)
	m.Tick()
	fb.setDown(true)
	fp.setDown(true)
	for i := 0; i < 4; i++ {
		m.Tick()
	}
	if len(fired) != 2 {
		t.Fatalf("OnPrimaryDown fired with no alive backup: %v", fired)
	}
}

func TestMembershipSnapshotAndUnknown(t *testing.T) {
	fc := newFakeCluster()
	fn := fc.add("a:1")
	fn.mu.Lock()
	fn.pending = 9
	fn.mu.Unlock()
	m, _ := detector(t, fc, []Node{{Name: "n0", Addrs: []string{"a:1"}}})
	m.Tick()
	snap := m.Snapshot()
	if len(snap["n0"]) != 1 || snap["n0"][0].Pending != 9 {
		t.Fatalf("snapshot = %+v, want pending 9 on n0", snap)
	}
	if m.State("nope") != StateDead {
		t.Fatal("unknown node should read dead")
	}
}

func TestMembershipRunStop(t *testing.T) {
	fc := newFakeCluster()
	fc.add("a:1")
	m := NewMembership([]Node{{Name: "n0", Addrs: []string{"a:1"}}},
		MembershipConfig{Interval: 5 * time.Millisecond, Dialer: fc.dial})
	go m.Run()
	time.Sleep(30 * time.Millisecond)
	m.Stop()
	m.Stop() // idempotent
	if m.State("n0") != StateAlive {
		t.Fatal("run loop never probed")
	}
}
