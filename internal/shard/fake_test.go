package shard

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"sync"

	"github.com/reflex-go/reflex/internal/protocol"
)

// fakeNode is an in-memory control-plane endpoint speaking just enough
// protocol for the coordinator: OpPing, OpShardMap, OpPromote, OpFence.
type fakeNode struct {
	mu        sync.Mutex
	down      bool
	epoch     uint16
	role      uint32
	pending   uint32
	installed *Map
	installs  int
	promotes  int
	fences    []uint16
	joins     int // ranged OpJoin handshakes accepted (stream never progresses)
}

func (f *fakeNode) setDown(d bool) {
	f.mu.Lock()
	f.down = d
	f.mu.Unlock()
}

func (f *fakeNode) dial() (net.Conn, error) {
	f.mu.Lock()
	down := f.down
	f.mu.Unlock()
	if down {
		return nil, errors.New("fake: node down")
	}
	c1, c2 := net.Pipe()
	go f.serve(c2)
	return c1, nil
}

func (f *fakeNode) serve(c net.Conn) {
	defer c.Close()
	br := bufio.NewReader(c)
	for {
		var m protocol.Message
		if err := protocol.ReadMessageInto(br, &m, nil); err != nil {
			return
		}
		h := m.Header
		resp := protocol.Header{Opcode: h.Opcode, Flags: protocol.FlagResponse, Cookie: h.Cookie}
		var payload []byte
		f.mu.Lock()
		switch h.Opcode {
		case protocol.OpPing:
			resp.Epoch, resp.Count, resp.LBA = f.epoch, f.role, f.pending
		case protocol.OpShardMap:
			if len(m.Payload) == 0 {
				if f.installed != nil {
					resp.LBA = f.installed.Version
					payload = f.installed.Marshal()
				}
			} else if nm, err := Unmarshal(m.Payload); err != nil {
				resp.Status = protocol.StatusBadRequest
			} else if f.installed != nil && nm.Version <= f.installed.Version {
				resp.LBA, resp.Status = f.installed.Version, protocol.StatusStaleEpoch
			} else {
				f.installed = nm
				f.installs++
				resp.LBA = nm.Version
			}
		case protocol.OpPromote:
			f.promotes++
			f.epoch = h.Epoch
			f.role &^= protocol.RoleBackupBit
			resp.Epoch = h.Epoch
		case protocol.OpFence:
			f.fences = append(f.fences, h.Epoch)
			resp.Epoch = h.Epoch
		case protocol.OpJoin:
			// Accept the ranged join but never stream: the handshake response
			// goes out and the connection parks, leaving the caller's
			// migration sink waiting for a catch-up marker that never comes
			// (Stop-mid-move tests).
			f.joins++
			resp.LBA, resp.Count = h.LBA, h.Count
		default:
			resp.Status = protocol.StatusBadRequest
		}
		f.mu.Unlock()
		frame, err := protocol.AppendMessage(nil, &resp, payload)
		if err != nil {
			return
		}
		if _, err := c.Write(frame); err != nil {
			return
		}
	}
}

// fakeCluster routes dials by address to fake nodes.
type fakeCluster struct {
	mu    sync.Mutex
	nodes map[string]*fakeNode
}

func newFakeCluster() *fakeCluster {
	return &fakeCluster{nodes: make(map[string]*fakeNode)}
}

func (fc *fakeCluster) add(addr string) *fakeNode {
	fc.mu.Lock()
	defer fc.mu.Unlock()
	n := &fakeNode{}
	fc.nodes[addr] = n
	return n
}

func (fc *fakeCluster) dial(addr string) (net.Conn, error) {
	fc.mu.Lock()
	n := fc.nodes[addr]
	fc.mu.Unlock()
	if n == nil {
		return nil, fmt.Errorf("fake: no node at %s", addr)
	}
	return n.dial()
}
