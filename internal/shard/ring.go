// Package shard is the cluster-wide control plane the paper leaves as
// future work (§4.3): it turns N independent ReFlex replica pairs into one
// logical flash target. The pieces:
//
//   - a consistent-hash ring with virtual nodes (Ring) that places
//     contiguous LBA ranges ("shards") on nodes;
//   - a versioned, immutable shard map (Map) — the routing table every
//     node installs and every client caches — served and installed over
//     protocol.OpShardMap;
//   - SWIM-lite membership (Membership): direct health probes driving
//     alive → suspect → dead transitions, plus pair-level primary
//     promotion when a node's primary dies but its backup answers;
//   - a coordinator (Coordinator) that assigns shards to primary/backup
//     pairs, recomputes per-node tenant token rates from cluster-wide
//     SLOs, and orchestrates live shard migration (MoveShard) reusing the
//     internal/cluster OpJoin catch-up stream with an epoch-fenced
//     cutover — zero lost acked writes during a move;
//   - a client-side router (Router) with fetch-on-miss and
//     redirect-driven map refresh over per-node DialCluster pools.
//
// See DESIGN.md §13.
package shard

import (
	"encoding/binary"
	"hash/fnv"
	"sort"
)

// DefaultVNodes is the virtual-node count per physical node. More virtual
// nodes smooth the hash-space split (the classic consistent-hashing
// variance reduction) at the cost of a larger sorted point list.
const DefaultVNodes = 64

// point is one virtual node on the ring.
type point struct {
	hash uint64
	node int // index into the node list the ring was built over
}

// Ring is a consistent-hash ring over node indices. It is immutable after
// construction; rebuilding on membership change only moves the keys that
// hashed into the dead node's arcs — the consistent-hashing property that
// keeps a node failure from reshuffling the whole cluster.
type Ring struct {
	points []point
	nodes  int
}

// hash64 hashes b with FNV-1a and a 64-bit avalanche finalizer. Raw
// FNV-1a disperses suffix-only variation poorly — the vnode counters and
// shard indices this ring hashes differ only in their trailing bytes, and
// without the finalizer every virtual node of one name lands in a tight
// cluster (one node then captures the whole ring). The finalizer is the
// standard MurmurHash3 fmix64; the whole function is stable across
// processes, which the ring needs to agree between coordinator restarts.
func hash64(b []byte) uint64 {
	h := fnv.New64a()
	h.Write(b)
	x := h.Sum64()
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// NewRing builds a ring over n nodes (identified by the names given, which
// determine vnode placement) with vnodes virtual nodes each. vnodes <= 0
// selects DefaultVNodes.
func NewRing(names []string, vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	r := &Ring{nodes: len(names)}
	var key [8]byte
	for i, name := range names {
		for v := 0; v < vnodes; v++ {
			binary.BigEndian.PutUint64(key[:], uint64(v))
			r.points = append(r.points, point{
				hash: hash64(append([]byte(name+"#"), key[:]...)),
				node: i,
			})
		}
	}
	sort.Slice(r.points, func(a, b int) bool {
		if r.points[a].hash != r.points[b].hash {
			return r.points[a].hash < r.points[b].hash
		}
		return r.points[a].node < r.points[b].node // deterministic tie-break
	})
	return r
}

// Lookup returns the node index owning key (the first virtual node
// clockwise from the key's hash). Returns -1 on an empty ring.
func (r *Ring) Lookup(key uint64) int {
	if len(r.points) == 0 {
		return -1
	}
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= key })
	if i == len(r.points) {
		i = 0 // wrap: the ring is circular
	}
	return r.points[i].node
}

// ShardKey hashes a shard index onto the ring's key space.
func ShardKey(shard int) uint64 {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], uint64(shard))
	return hash64(b[:])
}

// Assign places numShards shards over the ring, returning the node index
// per shard.
func (r *Ring) Assign(numShards int) []int32 {
	out := make([]int32, numShards)
	for s := range out {
		out[s] = int32(r.Lookup(ShardKey(s)))
	}
	return out
}
