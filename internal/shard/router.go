package shard

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/reflex-go/reflex/internal/client"
	"github.com/reflex-go/reflex/internal/obs"
	"github.com/reflex-go/reflex/internal/protocol"
)

// Router errors.
var (
	// ErrNoTargets means a node's address list (or the seed list) was
	// empty after dropping blanks and duplicates.
	ErrNoTargets = errors.New("shard: no usable targets")
	// ErrNoMap means no seed served a shard map — the cluster has not
	// been initialised by a coordinator yet.
	ErrNoMap = errors.New("shard: no shard map available from any seed")
	// ErrUnassigned means the LBA falls in a shard with no owner (or
	// beyond the mapped space).
	ErrUnassigned = errors.New("shard: LBA range has no owning node")
	// ErrRedirectLoop means redirect-driven refreshes kept chasing a
	// moving map past the retry budget.
	ErrRedirectLoop = errors.New("shard: redirect retries exhausted")
)

// RouterConfig configures the client-side routing table.
type RouterConfig struct {
	// Seeds are bootstrap addresses used to fetch the first map (and as
	// refresh fallbacks if every mapped node stops answering). Blanks and
	// duplicates are dropped; empty-after-cleanup is ErrNoTargets.
	Seeds []string
	// Reg is the tenant registration presented to every node the router
	// talks to (the cluster tenant: same LBA window everywhere, the shard
	// map — not the registration ACL — decides who serves what).
	Reg protocol.Registration
	// RegForNode optionally specialises Reg per node — the hook for
	// Coordinator.RatesForSLO's per-node IOPS splits.
	RegForNode func(node string, reg protocol.Registration) protocol.Registration
	// Opts configures every per-node DialCluster pool.
	Opts client.Options
	// MaxRedirects bounds StatusWrongShard-driven retries per operation
	// (default 4).
	MaxRedirects int
	// FetchTimeout bounds one map-fetch exchange (default 5s).
	FetchTimeout time.Duration
	// Metrics optionally receives router_map_version, router_redirects
	// and router_map_refreshes.
	Metrics *obs.Registry
	// Trace enables distributed tracing on every per-node client pool:
	// each routed I/O carries a trace trailer, and the pools record their
	// root spans into TraceRing.
	Trace     bool
	TraceRing *obs.Ring
	// Dialer is the map-fetch dial seam (nil: net.DialTimeout).
	Dialer dialFunc
}

// Router is the client-side shard routing table (DESIGN.md §13): it
// holds the latest shard map it has seen, keeps one DialCluster pool per
// owning node (every shard resolves to its owner's pool, so pools are
// shared across shards), fetches the map on first miss and refreshes it
// when a node answers StatusWrongShard. Refreshes are single-flight: a
// redirect storm from a stale map collapses into one fetch sweep.
type Router struct {
	cfg RouterConfig

	mu    sync.Mutex
	cur   *Map
	pools map[string]*routerPool
	done  bool

	refMu sync.Mutex // single-flight map refresh

	redirects atomic.Uint64
	refreshes atomic.Uint64
}

// routerPool is one node's lazily-dialed DialCluster pool plus the
// router's tenant handle on it.
type routerPool struct {
	node     string
	addrsKey string
	once     sync.Once
	cl       *client.Client
	handle   uint16
	err      error
}

// NewRouter validates the seed list; the first operation (or an explicit
// Refresh) fetches the map.
func NewRouter(cfg RouterConfig) (*Router, error) {
	cfg.Seeds = dedupeTargets(cfg.Seeds)
	if len(cfg.Seeds) == 0 {
		return nil, fmt.Errorf("%w: seed list empty", ErrNoTargets)
	}
	if cfg.MaxRedirects <= 0 {
		cfg.MaxRedirects = 4
	}
	if cfg.FetchTimeout <= 0 {
		cfg.FetchTimeout = 5 * time.Second
	}
	r := &Router{cfg: cfg, pools: make(map[string]*routerPool)}
	if cfg.Metrics != nil {
		cfg.Metrics.GaugeFunc("router_map_version", "router's shard-map version",
			func() float64 {
				if m := r.Map(); m != nil {
					return float64(m.Version)
				}
				return 0
			})
		cfg.Metrics.CounterFunc("router_redirects", "wrong-shard redirects chased by the router",
			func() float64 { return float64(r.redirects.Load()) })
		cfg.Metrics.CounterFunc("router_map_refreshes", "shard-map refresh sweeps",
			func() float64 { return float64(r.refreshes.Load()) })
	}
	return r, nil
}

// dedupeTargets drops blank and duplicate addresses, preserving order.
func dedupeTargets(addrs []string) []string {
	out := make([]string, 0, len(addrs))
	seen := make(map[string]bool, len(addrs))
	for _, a := range addrs {
		a = strings.TrimSpace(a)
		if a == "" || seen[a] {
			continue
		}
		seen[a] = true
		out = append(out, a)
	}
	return out
}

// Map returns the router's current map (nil before the first fetch).
func (r *Router) Map() *Map {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.cur
}

// Redirects returns how many StatusWrongShard answers the router has
// chased; Refreshes how many map-fetch sweeps it has run.
func (r *Router) Redirects() uint64 { return r.redirects.Load() }
func (r *Router) Refreshes() uint64 { return r.refreshes.Load() }

// Refresh fetches the newest map visible from the mapped nodes and the
// seeds, adopting it if it advances past staleVersion. Single-flight:
// concurrent callers behind the same stale map ride one sweep.
func (r *Router) Refresh(staleVersion uint32) (*Map, error) {
	r.refMu.Lock()
	defer r.refMu.Unlock()
	if m := r.Map(); m != nil && m.Version > staleVersion {
		return m, nil // a concurrent refresh already got us past stale
	}
	r.refreshes.Add(1)
	var addrs []string
	if m := r.Map(); m != nil {
		for _, n := range m.Nodes {
			addrs = append(addrs, n.Addrs...)
		}
	}
	addrs = dedupeTargets(append(addrs, r.cfg.Seeds...))
	var best *Map
	var lastErr error
	for _, a := range addrs {
		m, err := fetchMap(r.cfg.Dialer, a, r.cfg.FetchTimeout)
		if err != nil {
			lastErr = err
			continue
		}
		if m != nil && (best == nil || m.Version > best.Version) {
			best = m
		}
	}
	if best == nil {
		if lastErr != nil {
			return nil, fmt.Errorf("%w (last: %v)", ErrNoMap, lastErr)
		}
		return nil, ErrNoMap
	}
	r.adopt(best)
	return r.Map(), nil
}

// adopt installs m if newer, drops pools of nodes that vanished or moved
// addresses, and re-stamps the surviving pools' shard version.
func (r *Router) adopt(m *Map) {
	var stale []*routerPool
	r.mu.Lock()
	if r.cur != nil && m.Version <= r.cur.Version {
		m = r.cur
	} else {
		r.cur = m
	}
	for name, p := range r.pools {
		ni := m.NodeIndex(name)
		if ni < 0 || addrsKey(m.Nodes[ni].Addrs) != p.addrsKey {
			stale = append(stale, p)
			delete(r.pools, name)
			continue
		}
		if p.cl != nil {
			p.cl.SetShardVersion(m.Version)
		}
	}
	r.mu.Unlock()
	for _, p := range stale {
		if p.cl != nil {
			p.cl.Close()
		}
	}
}

func addrsKey(addrs []string) string { return strings.Join(dedupeTargets(addrs), "\x00") }

// pool returns the (lazily dialed) pool for node index ni of map m.
func (r *Router) pool(m *Map, ni int) (*routerPool, error) {
	name := m.Nodes[ni].Name
	r.mu.Lock()
	if r.done {
		r.mu.Unlock()
		return nil, client.ErrClosed
	}
	p := r.pools[name]
	if p == nil {
		p = &routerPool{node: name, addrsKey: addrsKey(m.Nodes[ni].Addrs)}
		r.pools[name] = p
	}
	r.mu.Unlock()

	p.once.Do(func() {
		addrs := dedupeTargets(m.Nodes[ni].Addrs)
		if len(addrs) == 0 {
			p.err = fmt.Errorf("%w: node %s", ErrNoTargets, name)
			return
		}
		opts := r.cfg.Opts
		if r.cfg.Trace {
			opts.Trace = true
			opts.TraceRing = r.cfg.TraceRing
		}
		cl, err := client.DialCluster(addrs, opts)
		if err != nil {
			p.err = fmt.Errorf("shard: dial node %s: %w", name, err)
			return
		}
		cl.SetShardVersion(m.Version)
		reg := r.cfg.Reg
		if r.cfg.RegForNode != nil {
			reg = r.cfg.RegForNode(name, reg)
		}
		h, err := cl.Register(reg)
		if err != nil {
			cl.Close()
			p.err = fmt.Errorf("shard: register on node %s: %w", name, err)
			return
		}
		p.cl, p.handle = cl, h
	})
	if p.err != nil {
		// Drop the failed entry so the next operation redials rather than
		// being pinned to a dead pool forever.
		r.mu.Lock()
		if r.pools[name] == p {
			delete(r.pools, name)
		}
		r.mu.Unlock()
		return nil, p.err
	}
	return p, nil
}

// route runs op against the owner of [lba, lba+blocks), chasing
// wrong-shard redirects through map refreshes up to the retry budget.
func (r *Router) route(lba uint32, blocks uint32, op func(p *routerPool) error) error {
	var lastVer uint32
	for attempt := 0; attempt <= r.cfg.MaxRedirects; attempt++ {
		m := r.Map()
		if m == nil {
			var err error
			if m, err = r.Refresh(0); err != nil {
				return err
			}
		}
		lastVer = m.Version
		oi := -1
		if s := m.Shard(uint64(lba)); s >= 0 {
			if o := m.Assign[s]; o >= 0 && int(o) < len(m.Nodes) {
				oi = int(o)
			}
		}
		if oi < 0 {
			return fmt.Errorf("%w: lba %d", ErrUnassigned, lba)
		}
		if blocks > 1 && !m.ownedByIndex(oi, uint64(lba), blocks) {
			// The range straddles a shard boundary into foreign territory;
			// no single node can serve it.
			return fmt.Errorf("%w: range [%d,+%d) crosses shard ownership", ErrUnassigned, lba, blocks)
		}
		p, err := r.pool(m, oi)
		if err != nil {
			return err
		}
		err = op(p)
		if !errors.Is(err, client.ErrWrongShard) {
			return err
		}
		r.redirects.Add(1)
		if _, err := r.Refresh(m.Version); err != nil {
			return err
		}
	}
	return fmt.Errorf("%w after %d attempts (last map v%d)", ErrRedirectLoop, r.cfg.MaxRedirects+1, lastVer)
}

func blocksFor(n int) uint32 {
	b := uint32((n + protocol.BlockSize - 1) / protocol.BlockSize)
	if b == 0 {
		b = 1
	}
	return b
}

// Read reads n bytes at lba from the shard owner.
func (r *Router) Read(lba uint32, n int) ([]byte, error) {
	var data []byte
	err := r.route(lba, blocksFor(n), func(p *routerPool) error {
		d, err := p.cl.Read(p.handle, lba, n)
		data = d
		return err
	})
	return data, err
}

// Write writes data at lba on the shard owner.
func (r *Router) Write(lba uint32, data []byte) error {
	return r.route(lba, blocksFor(len(data)), func(p *routerPool) error {
		return p.cl.Write(p.handle, lba, data)
	})
}

// Node returns the routed client and tenant handle for lba — escape
// hatch for callers that need the richer Client API (async calls,
// barriers, stats) while still following the map. The handle is only
// valid against the returned client.
func (r *Router) Node(lba uint32) (*client.Client, uint16, error) {
	var cl *client.Client
	var h uint16
	err := r.route(lba, 1, func(p *routerPool) error {
		cl, h = p.cl, p.handle
		return nil
	})
	return cl, h, err
}

// Close tears down every pool. The router is unusable afterwards.
func (r *Router) Close() error {
	r.mu.Lock()
	if r.done {
		r.mu.Unlock()
		return nil
	}
	r.done = true
	pools := make([]*routerPool, 0, len(r.pools))
	for _, p := range r.pools {
		pools = append(pools, p)
	}
	r.pools = map[string]*routerPool{}
	r.mu.Unlock()
	var firstErr error
	for _, p := range pools {
		if p.cl != nil {
			if err := p.cl.Close(); err != nil && firstErr == nil {
				firstErr = err
			}
		}
	}
	return firstErr
}
