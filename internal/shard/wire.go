package shard

import (
	"bufio"
	"fmt"
	"net"
	"time"

	"github.com/reflex-go/reflex/internal/protocol"
)

// Raw wire helpers: the control plane (membership probes, map installs,
// promotion, drain polling) speaks one-shot protocol exchanges over
// short-lived TCP connections instead of holding client pools — control
// traffic is rare and the simplicity keeps the coordinator dependency-
// free of the data-path client.

// dialFunc dials one address (test seam; nil selects net.Dial with the
// probe timeout).
type dialFunc func(addr string) (net.Conn, error)

func (c *CoordinatorConfig) dial(addr string, timeout time.Duration) (net.Conn, error) {
	if c.Dialer != nil {
		return c.Dialer(addr)
	}
	return net.DialTimeout("tcp", addr, timeout)
}

// rawRequest performs one request/response exchange on a fresh
// connection to addr, bounded by timeout end to end.
func rawRequest(dial dialFunc, addr string, timeout time.Duration, hdr *protocol.Header, payload []byte) (*protocol.Message, error) {
	var c net.Conn
	var err error
	if dial != nil {
		c, err = dial(addr)
	} else {
		c, err = net.DialTimeout("tcp", addr, timeout)
	}
	if err != nil {
		return nil, err
	}
	defer c.Close()
	c.SetDeadline(time.Now().Add(timeout))
	frame, err := protocol.AppendMessage(nil, hdr, payload)
	if err != nil {
		return nil, err
	}
	if _, err := c.Write(frame); err != nil {
		return nil, err
	}
	br := bufio.NewReaderSize(c, 64<<10)
	var m protocol.Message
	if err := protocol.ReadMessageInto(br, &m, nil); err != nil {
		return nil, err
	}
	if m.Header.Opcode != hdr.Opcode || !m.Header.IsResponse() {
		return nil, fmt.Errorf("shard: unexpected %s response to %s from %s",
			m.Header.Opcode, hdr.Opcode, addr)
	}
	return &m, nil
}

// probeResult is one OpPing exchange's outcome.
type probeResult struct {
	epoch   uint16
	role    uint32 // protocol.RoleBackupBit / RoleFencedBit
	pending uint32 // migration forwards awaiting a sink ack
	err     error
}

// probe pings addr once.
func probe(dial dialFunc, addr string, timeout time.Duration) probeResult {
	m, err := rawRequest(dial, addr, timeout, &protocol.Header{Opcode: protocol.OpPing}, nil)
	if err != nil {
		return probeResult{err: err}
	}
	return probeResult{epoch: m.Header.Epoch, role: m.Header.Count, pending: m.Header.LBA}
}

// installMap offers a marshaled map to addr, returning the node's
// resulting version. StatusStaleEpoch (the node already holds a newer
// map) is not an error here — the caller compares versions.
func installMap(dial dialFunc, addr string, timeout time.Duration, raw []byte) (uint32, error) {
	m, err := rawRequest(dial, addr, timeout, &protocol.Header{Opcode: protocol.OpShardMap}, raw)
	if err != nil {
		return 0, err
	}
	if m.Header.Status != protocol.StatusOK && m.Header.Status != protocol.StatusStaleEpoch {
		return 0, fmt.Errorf("shard: install at %s refused: %s", addr, m.Header.Status)
	}
	return m.Header.LBA, nil
}

// fetchMap retrieves addr's installed shard map, or (nil, nil) when the
// node holds none yet.
func fetchMap(dial dialFunc, addr string, timeout time.Duration) (*Map, error) {
	m, err := rawRequest(dial, addr, timeout, &protocol.Header{Opcode: protocol.OpShardMap}, nil)
	if err != nil {
		return nil, err
	}
	if m.Header.Status != protocol.StatusOK {
		return nil, fmt.Errorf("shard: map fetch at %s refused: %s", addr, m.Header.Status)
	}
	if m.Header.LBA == 0 || len(m.Payload) == 0 {
		return nil, nil
	}
	return Unmarshal(m.Payload)
}

// fetchMapVersion retrieves just the version of addr's installed map
// (0 when none) without parsing the payload — the anti-entropy probe.
func fetchMapVersion(dial dialFunc, addr string, timeout time.Duration) (uint32, error) {
	m, err := rawRequest(dial, addr, timeout, &protocol.Header{Opcode: protocol.OpShardMap}, nil)
	if err != nil {
		return 0, err
	}
	if m.Header.Status != protocol.StatusOK {
		return 0, fmt.Errorf("shard: map fetch at %s refused: %s", addr, m.Header.Status)
	}
	return m.Header.LBA, nil
}

// promote asks addr to serve as primary at epoch e.
func promote(dial dialFunc, addr string, timeout time.Duration, e uint16) (uint16, error) {
	m, err := rawRequest(dial, addr, timeout, &protocol.Header{Opcode: protocol.OpPromote, Epoch: e}, nil)
	if err != nil {
		return 0, err
	}
	if m.Header.Status != protocol.StatusOK {
		return m.Header.Epoch, fmt.Errorf("shard: promote %s at epoch %d refused: %s", addr, e, m.Header.Status)
	}
	return m.Header.Epoch, nil
}

// fence tells addr that epoch e exists (best-effort split-brain guard).
func fence(dial dialFunc, addr string, timeout time.Duration, e uint16) {
	rawRequest(dial, addr, timeout, &protocol.Header{Opcode: protocol.OpFence, Epoch: e}, nil)
}
