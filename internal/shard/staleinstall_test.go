// Adopt-iff-newer under a deposed leader (external package: drives real
// servers through internal/server, on the far side of the import edge).
//
// The replicated control plane's second fence lives in the data plane:
// every server adopts an offered shard map iff its version is strictly
// newer than the installed one. A deposed leader that still manages to
// push installs (its lease expired mid-flight, its commits fail, but a
// frame already on the wire lands anyway) can therefore only ever
// deliver no-ops — the authoritative version never regresses, and the
// new leader's anti-entropy pass converges any replica the old leader
// fed something stale.
package shard_test

import (
	"testing"
	"time"

	"github.com/reflex-go/reflex/internal/protocol"
	"github.com/reflex-go/reflex/internal/shard"
)

func TestServersRejectStaleAndDuplicateInstalls(t *testing.T) {
	c, srvs := soloCluster(t, 2, 4, 256)
	m1 := c.Map()
	if got := srvs[0].ShardMapVersion(); got != m1.Version {
		t.Fatalf("installed v%d, want v%d", got, m1.Version)
	}

	// Advance the authoritative map twice (the live leader's edits) and
	// push each version out.
	for i := 0; i < 2; i++ {
		if !c.Adopt(c.Map().Clone()) {
			t.Fatal("newer map not adopted")
		}
		if err := c.InstallAll(); err != nil {
			t.Fatal(err)
		}
	}
	cur := c.Map()
	if cur.Version <= m1.Version {
		t.Fatalf("clone did not advance the version: v%d", cur.Version)
	}
	for _, s := range srvs {
		if got := s.ShardMapVersion(); got != cur.Version {
			t.Fatalf("server at v%d, want v%d", got, cur.Version)
		}
	}

	// A deposed leader re-offers the old map: refused as stale, version
	// unchanged — on every server, every time.
	for _, s := range srvs {
		v, st := s.InstallShardMap(m1)
		if st != protocol.StatusStaleEpoch {
			t.Fatalf("stale install status = %s, want StatusStaleEpoch", st)
		}
		if v != cur.Version || s.ShardMapVersion() != cur.Version {
			t.Fatalf("stale install moved the version: %d", v)
		}
	}
	// A duplicate of the CURRENT map is equally refused (iff-NEWER, not
	// iff-newer-or-equal: re-installs are idempotent no-ops).
	v, st := srvs[0].InstallShardMap(cur)
	if st != protocol.StatusStaleEpoch || v != cur.Version {
		t.Fatalf("duplicate install = (%d, %s), want (%d, StatusStaleEpoch)", v, st, cur.Version)
	}
}

func TestAntiEntropyRepairsStaleServer(t *testing.T) {
	c, srvs := soloCluster(t, 3, 8, 256)
	v1 := c.Map().Version

	// The coordinator advances (a committed edit a partitioned server
	// missed): install only on two of the three.
	adopted := c.Adopt(advanceVersion(t, c.Map()))
	if !adopted {
		t.Fatal("newer map not adopted")
	}
	cur := c.Map()
	for _, s := range srvs[:2] {
		if _, st := s.InstallShardMap(cur); st != protocol.StatusOK {
			t.Fatalf("install refused: %s", st)
		}
	}
	if got := srvs[2].ShardMapVersion(); got != v1 {
		t.Fatalf("straggler at v%d, want v%d", got, v1)
	}

	// One reconcile pass finds exactly the straggler and repairs it.
	if repaired := c.Reconcile(); repaired != 1 {
		t.Fatalf("reconcile repaired %d addresses, want 1", repaired)
	}
	for i, s := range srvs {
		if got := s.ShardMapVersion(); got != cur.Version {
			t.Fatalf("server %d at v%d after reconcile, want v%d", i, got, cur.Version)
		}
	}
	// Convergence is stable: a second pass has nothing to do.
	if repaired := c.Reconcile(); repaired != 0 {
		t.Fatalf("second reconcile repaired %d, want 0", repaired)
	}
}

// TestAdoptIffNewerOnCoordinator: Adopt is the leadership-change seeding
// path and must obey the same version fence as the servers.
func TestAdoptIffNewerOnCoordinator(t *testing.T) {
	c, _ := soloCluster(t, 2, 4, 256)
	v := c.Map().Version
	if c.Adopt(nil) {
		t.Fatal("adopted nil")
	}
	if c.Adopt(c.Map()) {
		t.Fatal("adopted an equal-version map")
	}
	old := c.Map().Clone() // Clone bumps: this is newer
	if !c.Adopt(old) {
		t.Fatal("newer map refused")
	}
	if c.Adopt(cloneAt(old, v)) {
		t.Fatal("adopted a version regression")
	}
	if got := c.Map().Version; got != old.Version {
		t.Fatalf("version %d after refused regressions, want %d", got, old.Version)
	}
}

// advanceVersion returns a copy of m at the next version (Clone bumps).
func advanceVersion(t *testing.T, m *shard.Map) *shard.Map {
	t.Helper()
	n := m.Clone()
	if n.Version != m.Version+1 {
		t.Fatalf("Clone version %d, want %d", n.Version, m.Version+1)
	}
	return n
}

// cloneAt forges a map claiming version v (stale-offer construction).
func cloneAt(m *shard.Map, v uint32) *shard.Map {
	n := m.Clone()
	n.Version = v
	return n
}

// TestReconcileSkipsDeadNodes: anti-entropy must not stall on (or count)
// nodes marked dead in the map.
func TestReconcileSkipsDeadNodes(t *testing.T) {
	c, srvs := soloCluster(t, 2, 4, 256)
	srvs[1].Close()
	// Mark node1 dead in the authoritative map so Reconcile skips it
	// rather than timing out against a closed listener.
	m := c.Map().Clone()
	idx := m.NodeIndex("node1")
	if idx < 0 {
		t.Fatal("node1 missing")
	}
	m.Nodes[idx].State = shard.StateDead
	if !c.Adopt(m) {
		t.Fatal("adopt failed")
	}
	if _, st := srvs[0].InstallShardMap(c.Map()); st != protocol.StatusOK {
		t.Fatalf("install: %s", st)
	}
	start := time.Now()
	if repaired := c.Reconcile(); repaired != 0 {
		t.Fatalf("reconcile repaired %d, want 0", repaired)
	}
	if took := time.Since(start); took > time.Second {
		t.Fatalf("reconcile stalled %v on a dead node", took)
	}
}
