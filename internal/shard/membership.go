package shard

import (
	"fmt"
	"sync"
	"time"

	"github.com/reflex-go/reflex/internal/protocol"
)

// MembershipConfig tunes the SWIM-lite failure detector. "Lite" because
// the cluster is a handful of pairs steered by one coordinator: direct
// probes from the coordinator suffice, so the gossip/indirect-probe
// machinery of full SWIM (see the consul model in /root/related) is
// deliberately omitted — the alive → suspect → dead state machine and
// the probe pacing are what matter here.
type MembershipConfig struct {
	// Interval paces probe rounds when Run drives them (default 250ms).
	Interval time.Duration
	// Timeout bounds one probe exchange (default 1s).
	Timeout time.Duration
	// SuspectAfter is how many consecutive missed probes mark an address
	// suspect (default 1); DeadAfter marks it dead (default 3).
	SuspectAfter int
	DeadAfter    int
	// OnTransition fires on every node-level state change (after the
	// round that caused it), outside the membership lock.
	OnTransition func(node string, from, to MemberState)
	// OnPrimaryDown fires (once per outage episode, outside the lock)
	// when a node's primary-role address has missed DeadAfter consecutive
	// probes while a backup-role address still answers. This is the
	// promotion trigger: the node-level state cannot express it — a pair
	// is as healthy as its healthiest member, so an answering backup
	// keeps the node Alive and no node-level transition ever fires for a
	// dead primary. The latch re-arms when the dead address recovers.
	OnPrimaryDown func(node string)
	// Dialer is the probe dial seam (nil: net.DialTimeout).
	Dialer dialFunc
}

func (c *MembershipConfig) fill() {
	if c.Interval <= 0 {
		c.Interval = 250 * time.Millisecond
	}
	if c.Timeout <= 0 {
		c.Timeout = time.Second
	}
	if c.SuspectAfter <= 0 {
		c.SuspectAfter = 1
	}
	if c.DeadAfter <= c.SuspectAfter {
		c.DeadAfter = c.SuspectAfter + 2
	}
}

// validate rejects explicitly-broken probe tuning before fill() papers
// over it with defaults. Zero values keep the documented defaults;
// negative durations/counts, and an explicit DeadAfter at or below the
// effective SuspectAfter (which fill would silently bump, hiding a
// config that never reaches Dead when the operator meant it to), are
// config bugs and refuse to start.
func (c *MembershipConfig) validate() error {
	if c.Interval < 0 {
		return fmt.Errorf("shard: negative probe Interval %v", c.Interval)
	}
	if c.Timeout < 0 {
		return fmt.Errorf("shard: negative probe Timeout %v", c.Timeout)
	}
	if c.SuspectAfter < 0 {
		return fmt.Errorf("shard: negative SuspectAfter %d", c.SuspectAfter)
	}
	if c.DeadAfter < 0 {
		return fmt.Errorf("shard: negative DeadAfter %d", c.DeadAfter)
	}
	effSuspect := c.SuspectAfter
	if effSuspect == 0 {
		effSuspect = 1
	}
	if c.DeadAfter != 0 && c.DeadAfter <= effSuspect {
		return fmt.Errorf("shard: DeadAfter %d must exceed SuspectAfter %d",
			c.DeadAfter, effSuspect)
	}
	return nil
}

// AddrHealth is one probed address's last-known condition.
type AddrHealth struct {
	Addr    string
	Misses  int
	State   MemberState
	Epoch   uint16
	Role    uint32 // RoleBackupBit / RoleFencedBit from the last answer
	Pending uint32 // migration forwards awaiting a sink ack
}

// memberNode is one pair under observation.
type memberNode struct {
	name  string
	addrs []AddrHealth
	state MemberState
	// primaryDownFired latches the OnPrimaryDown callback for the current
	// outage episode; it re-arms when no primary-role address is dead.
	primaryDownFired bool
}

// primaryDown reports whether the node currently has a dead primary-role
// address alongside an alive backup-role address — the promotable-outage
// condition. An address that never answered a probe has Role 0 and
// counts as primary (addresses list the primary first by convention, and
// a member we have never heard from must be assumed to hold the role it
// was deployed with).
func (n *memberNode) primaryDown() (deadPrimary, aliveBackup bool) {
	for _, ah := range n.addrs {
		isBackup := ah.Role&protocol.RoleBackupBit != 0
		if ah.State == StateDead && !isBackup {
			deadPrimary = true
		}
		if ah.State == StateAlive && isBackup {
			aliveBackup = true
		}
	}
	return deadPrimary, aliveBackup
}

// Membership is the coordinator's failure detector: it probes every
// address of every node and aggregates per-node state (a pair is as
// healthy as its healthiest member — one answering address keeps the
// node out of Dead, because the pair can be promoted around a dead
// primary).
type Membership struct {
	cfg MembershipConfig

	mu    sync.Mutex
	nodes []*memberNode

	stop chan struct{}
	done chan struct{}
	once sync.Once
}

// NewMembership builds a detector over the given nodes (all initially
// Alive). It does not start probing; call Run (goroutine) or Tick
// (manual pacing, tests).
func NewMembership(nodes []Node, cfg MembershipConfig) *Membership {
	cfg.fill()
	m := &Membership{cfg: cfg, stop: make(chan struct{}), done: make(chan struct{})}
	for _, n := range nodes {
		mn := &memberNode{name: n.Name, state: StateAlive}
		for _, a := range n.Addrs {
			mn.addrs = append(mn.addrs, AddrHealth{Addr: a, State: StateAlive})
		}
		m.nodes = append(m.nodes, mn)
	}
	return m
}

// Run drives probe rounds at the configured interval until Stop.
func (m *Membership) Run() {
	defer close(m.done)
	t := time.NewTicker(m.cfg.Interval)
	defer t.Stop()
	for {
		select {
		case <-m.stop:
			return
		case <-t.C:
			m.Tick()
		}
	}
}

// Stop halts Run (idempotent) and waits for the in-flight round.
func (m *Membership) Stop() {
	m.once.Do(func() { close(m.stop) })
	<-m.done
}

// Tick runs one probe round: every address of every node, transitions
// applied, node-level callbacks fired. Probes within a round run
// sequentially — the cluster is small and the coordinator is the only
// prober.
func (m *Membership) Tick() {
	m.mu.Lock()
	type target struct{ node, addr int }
	var targets []target
	for ni, n := range m.nodes {
		for ai := range n.addrs {
			targets = append(targets, target{ni, ai})
		}
	}
	m.mu.Unlock()

	results := make([]probeResult, len(targets))
	for i, t := range targets {
		m.mu.Lock()
		addr := m.nodes[t.node].addrs[t.addr].Addr
		m.mu.Unlock()
		results[i] = probe(m.cfg.Dialer, addr, m.cfg.Timeout)
	}

	type transition struct {
		node     string
		from, to MemberState
	}
	var fired []transition
	var primaryDown []string
	m.mu.Lock()
	for i, t := range targets {
		ah := &m.nodes[t.node].addrs[t.addr]
		r := results[i]
		if r.err != nil {
			ah.Misses++
		} else {
			ah.Misses = 0
			ah.Epoch, ah.Role, ah.Pending = r.epoch, r.role, r.pending
		}
		switch {
		case ah.Misses >= m.cfg.DeadAfter:
			ah.State = StateDead
		case ah.Misses >= m.cfg.SuspectAfter:
			ah.State = StateSuspect
		default:
			ah.State = StateAlive
		}
	}
	for _, n := range m.nodes {
		best := StateDead
		for _, ah := range n.addrs {
			if ah.State < best {
				best = ah.State
			}
		}
		if len(n.addrs) == 0 {
			best = StateDead
		}
		if best != n.state {
			fired = append(fired, transition{n.name, n.state, best})
			n.state = best
		}
		deadPrimary, aliveBackup := n.primaryDown()
		switch {
		case deadPrimary && aliveBackup && !n.primaryDownFired:
			n.primaryDownFired = true
			primaryDown = append(primaryDown, n.name)
		case !deadPrimary:
			n.primaryDownFired = false // episode over: re-arm
		}
	}
	m.mu.Unlock()
	if m.cfg.OnTransition != nil {
		for _, tr := range fired {
			m.cfg.OnTransition(tr.node, tr.from, tr.to)
		}
	}
	if m.cfg.OnPrimaryDown != nil {
		for _, name := range primaryDown {
			m.cfg.OnPrimaryDown(name)
		}
	}
}

// State returns a node's aggregated state (StateDead for unknown names).
func (m *Membership) State(name string) MemberState {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, n := range m.nodes {
		if n.name == name {
			return n.state
		}
	}
	return StateDead
}

// Snapshot returns every node's per-address health, for gauges and the
// reflex-cli ring view.
func (m *Membership) Snapshot() map[string][]AddrHealth {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make(map[string][]AddrHealth, len(m.nodes))
	for _, n := range m.nodes {
		out[n.name] = append([]AddrHealth(nil), n.addrs...)
	}
	return out
}

// AliveBackup returns an answering address of the node whose last probe
// reported the backup role — the promotion target when the pair's
// primary is gone — along with the epoch it reported. ok is false when
// no such address exists.
func (m *Membership) AliveBackup(name string) (addr string, epoch uint16, ok bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, n := range m.nodes {
		if n.name != name {
			continue
		}
		for _, ah := range n.addrs {
			if ah.State == StateAlive && ah.Role&protocol.RoleBackupBit != 0 {
				return ah.Addr, ah.Epoch, true
			}
		}
	}
	return "", 0, false
}
