package server

import (
	"bytes"
	"errors"
	"net"
	"sync"
	"testing"

	"github.com/reflex-go/reflex/internal/client"
	"github.com/reflex-go/reflex/internal/core"
	"github.com/reflex-go/reflex/internal/protocol"
	"github.com/reflex-go/reflex/internal/storage"
)

func startUDPServer(t *testing.T, mutate func(*Config)) (*Server, *client.Client) {
	t.Helper()
	cfg := Config{
		Addr:      "127.0.0.1:0",
		UDPAddr:   "127.0.0.1:0",
		Threads:   2,
		Model:     modelA(),
		TokenRate: 1_000_000 * core.TokenUnit,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	srv, err := New(cfg, storage.NewMem(64<<20))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	if srv.UDPAddr() == "" {
		t.Fatal("UDP endpoint not bound")
	}
	cl, err := client.DialUDP(srv.UDPAddr())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cl.Close() })
	return srv, cl
}

func TestUDPRegisterWriteRead(t *testing.T) {
	_, cl := startUDPServer(t, nil)
	h, err := cl.Register(beWritable())
	if err != nil {
		t.Fatal(err)
	}
	data := bytes.Repeat([]byte{0x3C}, 4096)
	if err := cl.Write(h, 16, data); err != nil {
		t.Fatal(err)
	}
	got, err := cl.Read(h, 16, 4096)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("UDP round trip corrupted data")
	}
}

func TestUDPAndTCPShareTenants(t *testing.T) {
	srv, udpClient := startUDPServer(t, nil)
	tcpClient, err := client.Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer tcpClient.Close()
	// Register over TCP; use the handle over UDP (tenants are
	// server-global, as connections sharing a tenant are in the paper).
	h, err := tcpClient.Register(beWritable())
	if err != nil {
		t.Fatal(err)
	}
	data := bytes.Repeat([]byte{0x77}, 512)
	if err := tcpClient.Write(h, 0, data); err != nil {
		t.Fatal(err)
	}
	got, err := udpClient.Read(h, 0, 512)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("UDP read did not see TCP write")
	}
}

func TestUDPOversizeIORejected(t *testing.T) {
	_, cl := startUDPServer(t, nil)
	h, err := cl.Register(beWritable())
	if err != nil {
		t.Fatal(err)
	}
	// Client-side guard.
	if _, err := cl.GoRead(h, 0, MaxUDPIO+4096); !errors.Is(err, client.ErrBadRequest) {
		t.Fatalf("oversize UDP read: %v, want ErrBadRequest", err)
	}
	// At the cap it works.
	if _, err := cl.Read(h, 0, MaxUDPIO); err != nil {
		t.Fatalf("read at UDP cap failed: %v", err)
	}
}

func TestUDPBarrier(t *testing.T) {
	_, cl := startUDPServer(t, func(c *Config) {
		c.WriteLatency = 10_000_000 // 10ms
	})
	h, err := cl.Register(beWritable())
	if err != nil {
		t.Fatal(err)
	}
	data := bytes.Repeat([]byte{0x88}, 512)
	if _, err := cl.GoWrite(h, 0, data); err != nil {
		t.Fatal(err)
	}
	if err := cl.Barrier(h); err != nil {
		t.Fatal(err)
	}
	got, err := cl.Read(h, 0, 512)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("UDP barrier did not order the read after the write")
	}
}

func TestUDPConcurrentClients(t *testing.T) {
	srv, _ := startUDPServer(t, nil)
	var wg sync.WaitGroup
	errs := make(chan error, 4)
	for i := 0; i < 4; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			cl, err := client.DialUDP(srv.UDPAddr())
			if err != nil {
				errs <- err
				return
			}
			defer cl.Close()
			h, err := cl.Register(beWritable())
			if err != nil {
				errs <- err
				return
			}
			base := uint32(i * 4096)
			for rep := 0; rep < 30; rep++ {
				data := bytes.Repeat([]byte{byte(i*100 + rep)}, 512)
				if err := cl.Write(h, base+uint32(rep), data); err != nil {
					errs <- err
					return
				}
				got, err := cl.Read(h, base+uint32(rep), 512)
				if err != nil {
					errs <- err
					return
				}
				if !bytes.Equal(got, data) {
					errs <- errors.New("udp concurrent corruption")
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

func TestUDPMalformedDatagramIgnored(t *testing.T) {
	srv, cl := startUDPServer(t, nil)
	h, err := cl.Register(beWritable())
	if err != nil {
		t.Fatal(err)
	}
	// Fire garbage at the UDP port directly; the server must survive.
	raw, err := client.DialUDP(srv.UDPAddr())
	if err != nil {
		t.Fatal(err)
	}
	raw.Close()
	conn, err := netDialUDP(srv.UDPAddr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.Write([]byte("not a reflex message"))
	conn.Write(make([]byte, protocol.HeaderSize)) // zero magic
	// The real client still works afterwards.
	if _, err := cl.Read(h, 0, 512); err != nil {
		t.Fatalf("server broken after malformed datagrams: %v", err)
	}
}

// netDialUDP opens a raw UDP socket to addr for malformed-input tests.
func netDialUDP(addr string) (*net.UDPConn, error) {
	ua, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return nil, err
	}
	return net.DialUDP("udp", nil, ua)
}
