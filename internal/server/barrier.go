package server

import (
	"github.com/reflex-go/reflex/internal/protocol"
)

// Per-tenant ordering barriers (the §4.1 future-work extension): a barrier
// completes only after every I/O submitted before it on the tenant has
// completed, and I/O submitted after it is held until it completes. ReFlex
// otherwise serves requests without ordering guarantees beyond those of
// the transport.
//
// The sequencer keeps a FIFO that is only populated while a barrier is
// pending, so the unordered fast path costs one mutex acquisition.
//
// Failure handling: when a tenant dies mid-barrier (client disconnect,
// idle reap, explicit unregister), kill drains the FIFO — held I/Os and
// pending barriers are dropped, and later submissions are refused — so no
// waiter is ever stuck on a dead tenant. Surviving tenants have
// independent sequencers and are unaffected.

// seqItem is either a held I/O (io != nil) or a pending barrier.
type seqItem struct {
	io    *enqueued
	bconn responder
	bhdr  protocol.Header
}

// submitIO routes an I/O through the tenant's ordering sequencer: straight
// to the scheduler thread when no barrier is pending, held otherwise. It
// reports false when the tenant is already torn down.
func (st *stenant) submitIO(s *Server, e enqueued) bool {
	st.mu.Lock()
	if st.dead {
		st.mu.Unlock()
		return false
	}
	if len(st.seq) > 0 {
		st.seq = append(st.seq, seqItem{io: &e})
		st.mu.Unlock()
		return true
	}
	st.outstanding++
	st.mu.Unlock()
	s.cores[st.coreID].enqueue(e)
	return true
}

// submitBarrier registers a barrier; it completes immediately when the
// tenant has nothing in flight. It reports false when the tenant is
// already torn down.
func (st *stenant) submitBarrier(conn responder, hdr protocol.Header) bool {
	st.mu.Lock()
	if st.dead {
		st.mu.Unlock()
		return false
	}
	if st.outstanding == 0 && len(st.seq) == 0 {
		st.mu.Unlock()
		conn.send(&protocol.Header{
			Opcode: protocol.OpBarrier,
			Flags:  protocol.FlagResponse,
			Handle: hdr.Handle,
			Cookie: hdr.Cookie,
		}, nil, nil)
		return true
	}
	st.seq = append(st.seq, seqItem{bconn: conn, bhdr: hdr})
	st.mu.Unlock()
	return true
}

// kill tears the sequencer down: pending barriers are answered with
// StatusNoTenant (their submitter may be a different live connection) and
// held I/Os are dropped. Subsequent submissions are refused. Idempotent.
func (st *stenant) kill() {
	st.mu.Lock()
	if st.dead {
		st.mu.Unlock()
		return
	}
	st.dead = true
	seq := st.seq
	st.seq = nil
	st.mu.Unlock()
	for _, it := range seq {
		if it.io == nil && it.bconn != nil {
			it.bconn.send(&protocol.Header{
				Opcode: protocol.OpBarrier,
				Flags:  protocol.FlagResponse,
				Handle: it.bhdr.Handle,
				Cookie: it.bhdr.Cookie,
				Status: protocol.StatusNoTenant,
			}, nil, nil)
			continue
		}
		// Dropped held I/O: its request context may hold a retained
		// write-payload lease that will never reach submit; release it
		// here so the pooled buffer is not leaked for the process
		// lifetime.
		if it.io != nil {
			if ctx, ok := it.io.req.Context.(*reqCtx); ok {
				ctx.releaseLease()
			}
		}
	}
}

// ioDone retires one in-flight I/O and pumps the sequencer: barriers at
// the front complete once the tenant drains; held I/Os behind a completed
// barrier are released to the scheduler.
func (st *stenant) ioDone(s *Server) {
	var release []enqueued
	var replies []seqItem

	st.mu.Lock()
	st.outstanding--
	for len(st.seq) > 0 {
		head := st.seq[0]
		if head.io == nil {
			if st.outstanding != 0 || len(release) > 0 {
				break
			}
			replies = append(replies, head)
			st.seq = st.seq[1:]
			continue
		}
		st.outstanding++
		release = append(release, *head.io)
		st.seq = st.seq[1:]
	}
	st.mu.Unlock()

	for _, b := range replies {
		b.bconn.send(&protocol.Header{
			Opcode: protocol.OpBarrier,
			Flags:  protocol.FlagResponse,
			Handle: b.bhdr.Handle,
			Cookie: b.bhdr.Cookie,
		}, nil, nil)
	}
	if len(release) == 0 {
		return
	}
	// Release off the caller's goroutine: ioDone may run on the core
	// goroutine itself, and enqueue blocks when the core's ring is full.
	pc := s.cores[st.coreID]
	go func() {
		for _, e := range release {
			pc.enqueue(e)
		}
	}()
}
