package server

import (
	"github.com/reflex-go/reflex/internal/protocol"
)

// Per-tenant ordering barriers (the §4.1 future-work extension): a barrier
// completes only after every I/O submitted before it on the tenant has
// completed, and I/O submitted after it is held until it completes. ReFlex
// otherwise serves requests without ordering guarantees beyond those of
// the transport.
//
// The sequencer keeps a FIFO that is only populated while a barrier is
// pending, so the unordered fast path costs one mutex acquisition.

// seqItem is either a held I/O (io != nil) or a pending barrier.
type seqItem struct {
	io    *enqueued
	bconn responder
	bhdr  protocol.Header
}

// submitIO routes an I/O through the tenant's ordering sequencer: straight
// to the scheduler thread when no barrier is pending, held otherwise.
func (st *stenant) submitIO(s *Server, e enqueued) {
	st.mu.Lock()
	if len(st.seq) > 0 {
		st.seq = append(st.seq, seqItem{io: &e})
		st.mu.Unlock()
		return
	}
	st.outstanding++
	st.mu.Unlock()
	s.threads[st.thread].enqueue(e)
}

// submitBarrier registers a barrier; it completes immediately when the
// tenant has nothing in flight.
func (st *stenant) submitBarrier(conn responder, hdr protocol.Header) {
	st.mu.Lock()
	if st.outstanding == 0 && len(st.seq) == 0 {
		st.mu.Unlock()
		conn.send(&protocol.Header{
			Opcode: protocol.OpBarrier,
			Flags:  protocol.FlagResponse,
			Handle: hdr.Handle,
			Cookie: hdr.Cookie,
		}, nil)
		return
	}
	st.seq = append(st.seq, seqItem{bconn: conn, bhdr: hdr})
	st.mu.Unlock()
}

// ioDone retires one in-flight I/O and pumps the sequencer: barriers at
// the front complete once the tenant drains; held I/Os behind a completed
// barrier are released to the scheduler.
func (st *stenant) ioDone(s *Server) {
	var release []enqueued
	var replies []seqItem

	st.mu.Lock()
	st.outstanding--
	for len(st.seq) > 0 {
		head := st.seq[0]
		if head.io == nil {
			if st.outstanding != 0 || len(release) > 0 {
				break
			}
			replies = append(replies, head)
			st.seq = st.seq[1:]
			continue
		}
		st.outstanding++
		release = append(release, *head.io)
		st.seq = st.seq[1:]
	}
	st.mu.Unlock()

	for _, b := range replies {
		b.bconn.send(&protocol.Header{
			Opcode: protocol.OpBarrier,
			Flags:  protocol.FlagResponse,
			Handle: b.bhdr.Handle,
			Cookie: b.bhdr.Cookie,
		}, nil)
	}
	if len(release) == 0 {
		return
	}
	// Release off the caller's goroutine: ioDone may run on the scheduler
	// thread itself, and enqueue blocks when the thread's queue is full.
	th := s.threads[st.thread]
	go func() {
		for _, e := range release {
			th.enqueue(e)
		}
	}()
}
