package server

import (
	"bufio"
	"errors"
	"net"
	"os"
	"sync"
	"time"

	"github.com/reflex-go/reflex/internal/core"
	"github.com/reflex-go/reflex/internal/obs"
	"github.com/reflex-go/reflex/internal/protocol"
)

// responder delivers response messages back to a client over whatever
// transport the request arrived on.
type responder interface {
	send(hdr *protocol.Header, payload []byte)
}

// srvConn is one client TCP connection.
type srvConn struct {
	srv *Server
	c   netConn

	wmu sync.Mutex
	bw  *bufio.Writer

	// owned tracks tenant handles registered over this connection; they
	// are unregistered when the connection tears down, so a dead peer no
	// longer leaks its registrations (and their token reservations).
	omu   sync.Mutex
	owned map[uint16]struct{}

	// replica is the cluster replication session token while this
	// connection is the backup's join channel (nil otherwise); teardown
	// detaches it so pending forwards degrade to standalone acks.
	rmu     sync.Mutex
	replica any

	downOnce sync.Once
}

// netConn is the subset of net.Conn the server uses (test seam).
type netConn interface {
	Read(p []byte) (int, error)
	Write(p []byte) (int, error)
	Close() error
	SetReadDeadline(t time.Time) error
	SetWriteDeadline(t time.Time) error
}

// send writes one response message. Responses may originate from scheduler
// threads and timer goroutines concurrently, so writes are serialized.
// A write or flush failure means the client can no longer be served:
// the connection tears down fully — closed, deregistered, its tenants
// unregistered and their unspent tokens returned to the scheduler —
// instead of lingering half-dead.
func (sc *srvConn) send(hdr *protocol.Header, payload []byte) {
	if hdr.Epoch == 0 {
		hdr.Epoch = sc.srv.ClusterEpoch()
	}
	sc.wmu.Lock()
	if sc.bw == nil {
		sc.bw = bufio.NewWriterSize(writerOnly{sc.c}, 64<<10)
	}
	if wt := sc.srv.cfg.WriteTimeout; wt > 0 {
		sc.c.SetWriteDeadline(time.Now().Add(wt))
	}
	err := protocol.WriteMessage(sc.bw, hdr, payload)
	if err == nil {
		err = sc.bw.Flush()
	}
	sc.wmu.Unlock()
	if err != nil {
		sc.teardown(false)
	}
}

type writerOnly struct{ c netConn }

func (w writerOnly) Write(p []byte) (int, error) { return w.c.Write(p) }

// teardown closes the connection, removes it from the server's conn set
// and unregisters every tenant registered over it (dropping held
// sequencer work and returning unspent token reservations to the
// scheduler). Idempotent: send-side flush failures and the read loop's
// exit may both arrive here.
func (sc *srvConn) teardown(reaped bool) {
	sc.downOnce.Do(func() {
		sc.c.Close()
		sc.detachReplica()
		sc.srv.mu.Lock()
		delete(sc.srv.conns, sc)
		sc.srv.mu.Unlock()
		if reaped {
			sc.srv.m.reaped.Inc()
		}
		sc.omu.Lock()
		owned := make([]uint16, 0, len(sc.owned))
		for h := range sc.owned {
			owned = append(owned, h)
		}
		sc.owned = nil
		sc.omu.Unlock()
		if len(owned) == 0 {
			return
		}
		// Unregister off this goroutine: teardown can run on a scheduler
		// thread (flush failure inside a response callback), and
		// unregistration round-trips through that same thread's command
		// channel. The goroutine never blocks indefinitely — thread
		// commands select on server shutdown.
		srv := sc.srv
		go func() {
			for _, h := range owned {
				if srv.unregisterTenant(h) == protocol.StatusOK {
					srv.m.removed.Inc()
				}
			}
		}()
	})
}

// addOwned records a tenant registered over this connection. If the
// connection already tore down (the registration raced teardown), the
// tenant is unregistered immediately instead of leaking.
func (sc *srvConn) addOwned(h uint16) {
	sc.omu.Lock()
	if sc.owned != nil {
		sc.owned[h] = struct{}{}
		sc.omu.Unlock()
		return
	}
	sc.omu.Unlock()
	sc.srv.unregisterTenant(h)
}

// dropOwned forgets a tenant explicitly unregistered by the client.
func (sc *srvConn) dropOwned(h uint16) {
	sc.omu.Lock()
	delete(sc.owned, h)
	sc.omu.Unlock()
}

// isTimeout reports whether err is a deadline expiry.
func isTimeout(err error) bool {
	if errors.Is(err, os.ErrDeadlineExceeded) {
		return true
	}
	var ne net.Error
	return errors.As(err, &ne) && ne.Timeout()
}

// readLoop decodes requests until the connection dies. The read deadline
// is re-armed before every message, so a half-open peer (one that will
// never send again) is reaped after IdleTimeout instead of pinning a
// goroutine and its tenant registrations forever.
func (sc *srvConn) readLoop() {
	reaped := false
	defer func() {
		sc.teardown(reaped)
		sc.srv.wg.Done()
	}()
	idle := sc.srv.cfg.IdleTimeout
	br := bufio.NewReaderSize(sc.c, 64<<10)
	for {
		if idle > 0 {
			sc.c.SetReadDeadline(time.Now().Add(idle))
		}
		m, err := protocol.ReadMessage(br)
		if err != nil {
			reaped = isTimeout(err)
			return
		}
		sc.srv.dispatch(sc, m)
	}
}

// dispatch routes one decoded request from any transport.
func (s *Server) dispatch(rsp responder, m *protocol.Message) {
	hdr := m.Header
	// Responses arriving on a server connection are replication acks from
	// an attached backup (the join channel carries requests out and acks
	// back in); anything else is dropped.
	if hdr.IsResponse() {
		if hdr.Opcode == protocol.OpReplicate {
			s.repl.HandleAck(&hdr)
		}
		return
	}
	// Transports with bounded response sizes (UDP) cap the I/O length.
	if lim, ok := rsp.(interface{ maxIO() uint32 }); ok && hdr.Count > lim.maxIO() {
		reject(rsp, &hdr, protocol.StatusBadRequest)
		return
	}
	switch hdr.Opcode {
	case protocol.OpRegister:
		var reg protocol.Registration
		resp := protocol.Header{
			Opcode: protocol.OpRegister,
			Flags:  protocol.FlagResponse,
			Cookie: hdr.Cookie,
		}
		if err := reg.Unmarshal(m.Payload); err != nil {
			resp.Status = protocol.StatusBadRequest
		} else {
			resp.Handle, resp.Status = s.registerTenant(reg)
			if resp.Status == protocol.StatusOK {
				s.m.registered.Inc()
				if sc, ok := rsp.(*srvConn); ok {
					sc.addOwned(resp.Handle)
				}
			}
		}
		rsp.send(&resp, nil)

	case protocol.OpUnregister:
		resp := protocol.Header{
			Opcode: protocol.OpUnregister,
			Flags:  protocol.FlagResponse,
			Handle: hdr.Handle,
			Cookie: hdr.Cookie,
			Status: s.unregisterTenant(hdr.Handle),
		}
		if resp.Status == protocol.StatusOK {
			s.m.removed.Inc()
			if sc, ok := rsp.(*srvConn); ok {
				sc.dropOwned(hdr.Handle)
			}
		}
		rsp.send(&resp, nil)

	case protocol.OpRead, protocol.OpWrite:
		arrival := s.now()
		if hdr.Opcode == protocol.OpWrite {
			s.m.writes.Inc()
			// Split-brain fence: a deposed or backup-role server refuses
			// writes, as does one receiving a stale epoch stamp.
			if st := s.writeAllowed(hdr.Epoch); st != protocol.StatusOK {
				s.m.staleRejects.Inc()
				reject(rsp, &hdr, st)
				return
			}
			// End-to-end integrity: a write whose CRC32C trailer failed
			// verification is refused before it can touch media.
			if m.ChecksumErr {
				s.m.checksumErrs.Inc()
				reject(rsp, &hdr, protocol.StatusBadChecksum)
				return
			}
		} else {
			s.m.reads.Inc()
		}
		ten, ok := s.lookup(hdr.Handle)
		if !ok {
			s.m.rejected.Inc()
			reject(rsp, &hdr, protocol.StatusNoTenant)
			return
		}
		// Graceful shed: refuse best-effort work under overload instead
		// of letting readers block on a saturated scheduler queue. LC
		// tenants are never shed.
		if s.shedNow(ten) {
			s.m.shed.Inc()
			reject(rsp, &hdr, protocol.StatusOverloaded)
			return
		}
		if st := checkACL(&ten.reg, &hdr, s.devices[ten.device].backend.Size()); st != protocol.StatusOK {
			s.m.rejected.Inc()
			reject(rsp, &hdr, st)
			return
		}
		op := core.OpRead
		if hdr.Opcode == protocol.OpWrite {
			op = core.OpWrite
		}
		ctx := &reqCtx{conn: rsp, ten: ten, hdr: hdr, payload: m.Payload}
		ctx.span.ID = s.m.seq.Add(1)
		ctx.span.Tenant = ten.t.ID
		ctx.span.Write = op == core.OpWrite
		ctx.span.Size = int(hdr.Count)
		ctx.span.Mark(obs.StageArrival, arrival)
		ctx.span.Mark(obs.StageParse, s.now())
		req := &core.Request{
			Op:      op,
			Block:   uint64(hdr.LBA) * protocol.BlockSize / 4096,
			Size:    int(hdr.Count),
			Cookie:  hdr.Cookie,
			Arrival: arrival,
			Context: ctx,
		}
		if !ten.submitIO(s, enqueued{ten: ten, req: req}) {
			s.m.rejected.Inc()
			reject(rsp, &hdr, protocol.StatusNoTenant)
		}

	case protocol.OpBarrier:
		s.m.barriers.Inc()
		ten, ok := s.lookup(hdr.Handle)
		if !ok {
			reject(rsp, &hdr, protocol.StatusNoTenant)
			return
		}
		if !ten.submitBarrier(rsp, hdr) {
			reject(rsp, &hdr, protocol.StatusNoTenant)
		}

	case protocol.OpStats:
		ten, ok := s.lookup(hdr.Handle)
		if !ok {
			reject(rsp, &hdr, protocol.StatusNoTenant)
			return
		}
		// Tenant scheduler state is owned by its thread; read it there.
		th := s.threads[ten.thread]
		done := make(chan protocol.TenantStats, 1)
		th.do(func() {
			st := ten.t.Stats()
			done <- protocol.TenantStats{
				Enqueued:        st.Enqueued,
				Submitted:       st.Submitted,
				SubmittedTokens: uint64(st.SubmittedTokens),
				NegLimitHits:    st.NegLimitHits,
				Donated:         uint64(st.Donated),
				Claimed:         uint64(st.Claimed),
				QueueLen:        uint64(ten.t.QueueLen()),
				Tokens:          ten.t.Tokens(),
			}
		})
		select {
		case stats := <-done:
			rsp.send(&protocol.Header{
				Opcode: protocol.OpStats,
				Flags:  protocol.FlagResponse,
				Handle: hdr.Handle,
				Cookie: hdr.Cookie,
			}, stats.Marshal())
		case <-s.done:
		}

	case protocol.OpJoin:
		// A backup attaches as the replica over this connection. TCP only:
		// the join channel carries the ordered replication stream.
		resp := protocol.Header{
			Opcode: protocol.OpJoin,
			Flags:  protocol.FlagResponse,
			Cookie: hdr.Cookie,
		}
		sc, isTCP := rsp.(*srvConn)
		if !isTCP || s.backupRole.Load() {
			resp.Status = protocol.StatusBadRequest
			rsp.send(&resp, nil)
			return
		}
		s.AdoptEpoch(hdr.Epoch)
		resp.Epoch = s.ClusterEpoch()
		// The OK must be on the wire before the catch-up stream starts,
		// or the backup would read a chunk as its handshake response.
		rsp.send(&resp, nil)
		s.joinReplica(sc)

	case protocol.OpPromote:
		e, st := s.Promote(hdr.Epoch)
		rsp.send(&protocol.Header{
			Opcode: protocol.OpPromote,
			Flags:  protocol.FlagResponse,
			Cookie: hdr.Cookie,
			Epoch:  e,
			Status: st,
		}, nil)

	case protocol.OpFence:
		e := s.Fence(hdr.Epoch)
		rsp.send(&protocol.Header{
			Opcode: protocol.OpFence,
			Flags:  protocol.FlagResponse,
			Cookie: hdr.Cookie,
			Epoch:  e,
		}, nil)

	case protocol.OpPing:
		var role uint32
		if s.backupRole.Load() {
			role |= protocol.RoleBackupBit
		}
		if s.fenced.Load() {
			role |= protocol.RoleFencedBit
		}
		rsp.send(&protocol.Header{
			Opcode: protocol.OpPing,
			Flags:  protocol.FlagResponse,
			Cookie: hdr.Cookie,
			Epoch:  s.ClusterEpoch(),
			Count:  role,
		}, nil)

	default:
		reject(rsp, &hdr, protocol.StatusBadRequest)
	}
}

// reject replies with an error status without scheduling.
func reject(rsp responder, hdr *protocol.Header, st protocol.Status) {
	rsp.send(&protocol.Header{
		Opcode: hdr.Opcode,
		Flags:  protocol.FlagResponse,
		Handle: hdr.Handle,
		Cookie: hdr.Cookie,
		LBA:    hdr.LBA,
		Status: st,
	}, nil)
}
