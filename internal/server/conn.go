package server

import (
	"bufio"
	"sync"

	"github.com/reflex-go/reflex/internal/core"
	"github.com/reflex-go/reflex/internal/obs"
	"github.com/reflex-go/reflex/internal/protocol"
)

// responder delivers response messages back to a client over whatever
// transport the request arrived on.
type responder interface {
	send(hdr *protocol.Header, payload []byte)
}

// srvConn is one client TCP connection.
type srvConn struct {
	srv *Server
	c   netConn

	wmu sync.Mutex
	bw  *bufio.Writer
}

// netConn is the subset of net.Conn the server uses (test seam).
type netConn interface {
	Read(p []byte) (int, error)
	Write(p []byte) (int, error)
	Close() error
}

// send writes one response message. Responses may originate from scheduler
// threads and timer goroutines concurrently, so writes are serialized.
func (sc *srvConn) send(hdr *protocol.Header, payload []byte) {
	sc.wmu.Lock()
	defer sc.wmu.Unlock()
	if sc.bw == nil {
		sc.bw = bufio.NewWriterSize(writerOnly{sc.c}, 64<<10)
	}
	if err := protocol.WriteMessage(sc.bw, hdr, payload); err != nil {
		sc.c.Close()
		return
	}
	if err := sc.bw.Flush(); err != nil {
		sc.c.Close()
	}
}

type writerOnly struct{ c netConn }

func (w writerOnly) Write(p []byte) (int, error) { return w.c.Write(p) }

// readLoop decodes requests until the connection dies.
func (sc *srvConn) readLoop() {
	defer func() {
		sc.c.Close()
		sc.srv.mu.Lock()
		delete(sc.srv.conns, sc)
		sc.srv.mu.Unlock()
		sc.srv.wg.Done()
	}()
	br := bufio.NewReaderSize(sc.c, 64<<10)
	for {
		m, err := protocol.ReadMessage(br)
		if err != nil {
			return
		}
		sc.srv.dispatch(sc, m)
	}
}

// dispatch routes one decoded request from any transport.
func (s *Server) dispatch(rsp responder, m *protocol.Message) {
	hdr := m.Header
	// Transports with bounded response sizes (UDP) cap the I/O length.
	if lim, ok := rsp.(interface{ maxIO() uint32 }); ok && hdr.Count > lim.maxIO() {
		reject(rsp, &hdr, protocol.StatusBadRequest)
		return
	}
	switch hdr.Opcode {
	case protocol.OpRegister:
		var reg protocol.Registration
		resp := protocol.Header{
			Opcode: protocol.OpRegister,
			Flags:  protocol.FlagResponse,
			Cookie: hdr.Cookie,
		}
		if err := reg.Unmarshal(m.Payload); err != nil {
			resp.Status = protocol.StatusBadRequest
		} else {
			resp.Handle, resp.Status = s.registerTenant(reg)
			if resp.Status == protocol.StatusOK {
				s.m.registered.Inc()
			}
		}
		rsp.send(&resp, nil)

	case protocol.OpUnregister:
		resp := protocol.Header{
			Opcode: protocol.OpUnregister,
			Flags:  protocol.FlagResponse,
			Handle: hdr.Handle,
			Cookie: hdr.Cookie,
			Status: s.unregisterTenant(hdr.Handle),
		}
		if resp.Status == protocol.StatusOK {
			s.m.removed.Inc()
		}
		rsp.send(&resp, nil)

	case protocol.OpRead, protocol.OpWrite:
		arrival := s.now()
		if hdr.Opcode == protocol.OpWrite {
			s.m.writes.Inc()
		} else {
			s.m.reads.Inc()
		}
		ten, ok := s.lookup(hdr.Handle)
		if !ok {
			s.m.rejected.Inc()
			reject(rsp, &hdr, protocol.StatusNoTenant)
			return
		}
		if st := checkACL(&ten.reg, &hdr, s.devices[ten.device].backend.Size()); st != protocol.StatusOK {
			s.m.rejected.Inc()
			reject(rsp, &hdr, st)
			return
		}
		op := core.OpRead
		if hdr.Opcode == protocol.OpWrite {
			op = core.OpWrite
		}
		ctx := &reqCtx{conn: rsp, ten: ten, hdr: hdr, payload: m.Payload}
		ctx.span.ID = s.m.seq.Add(1)
		ctx.span.Tenant = ten.t.ID
		ctx.span.Write = op == core.OpWrite
		ctx.span.Size = int(hdr.Count)
		ctx.span.Mark(obs.StageArrival, arrival)
		ctx.span.Mark(obs.StageParse, s.now())
		req := &core.Request{
			Op:      op,
			Block:   uint64(hdr.LBA) * protocol.BlockSize / 4096,
			Size:    int(hdr.Count),
			Cookie:  hdr.Cookie,
			Arrival: arrival,
			Context: ctx,
		}
		ten.submitIO(s, enqueued{ten: ten, req: req})

	case protocol.OpBarrier:
		s.m.barriers.Inc()
		ten, ok := s.lookup(hdr.Handle)
		if !ok {
			reject(rsp, &hdr, protocol.StatusNoTenant)
			return
		}
		ten.submitBarrier(rsp, hdr)

	case protocol.OpStats:
		ten, ok := s.lookup(hdr.Handle)
		if !ok {
			reject(rsp, &hdr, protocol.StatusNoTenant)
			return
		}
		// Tenant scheduler state is owned by its thread; read it there.
		th := s.threads[ten.thread]
		done := make(chan protocol.TenantStats, 1)
		th.do(func() {
			st := ten.t.Stats()
			done <- protocol.TenantStats{
				Enqueued:        st.Enqueued,
				Submitted:       st.Submitted,
				SubmittedTokens: uint64(st.SubmittedTokens),
				NegLimitHits:    st.NegLimitHits,
				Donated:         uint64(st.Donated),
				Claimed:         uint64(st.Claimed),
				QueueLen:        uint64(ten.t.QueueLen()),
				Tokens:          ten.t.Tokens(),
			}
		})
		select {
		case stats := <-done:
			rsp.send(&protocol.Header{
				Opcode: protocol.OpStats,
				Flags:  protocol.FlagResponse,
				Handle: hdr.Handle,
				Cookie: hdr.Cookie,
			}, stats.Marshal())
		case <-s.done:
		}

	default:
		reject(rsp, &hdr, protocol.StatusBadRequest)
	}
}

// reject replies with an error status without scheduling.
func reject(rsp responder, hdr *protocol.Header, st protocol.Status) {
	rsp.send(&protocol.Header{
		Opcode: hdr.Opcode,
		Flags:  protocol.FlagResponse,
		Handle: hdr.Handle,
		Cookie: hdr.Cookie,
		LBA:    hdr.LBA,
		Status: st,
	}, nil)
}
