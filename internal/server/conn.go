package server

import (
	"bufio"
	"errors"
	"net"
	"os"
	"sync"
	"time"

	"github.com/reflex-go/reflex/internal/bufpool"
	"github.com/reflex-go/reflex/internal/cluster"
	"github.com/reflex-go/reflex/internal/core"
	"github.com/reflex-go/reflex/internal/obs"
	"github.com/reflex-go/reflex/internal/protocol"
)

// responder delivers response messages back to a client over whatever
// transport the request arrived on. send takes ownership of one lease
// reference when lease is non-nil: the reference is released once the
// bytes are on the wire (or the message is dropped on teardown) — never
// earlier, so a pooled payload cannot be recycled under an in-flight
// flush.
type responder interface {
	send(hdr *protocol.Header, payload []byte, lease *bufpool.Buf)
}

// Adaptive wire-batching bounds, mirroring the paper's §3.2.1 adaptive
// batching: responses are coalesced into one vectored flush until the
// batch reaches wireBatchMsgs messages or wireBatchBytes bytes, or the
// response queue drains — whichever comes first. Under light load every
// response flushes alone (no added latency); under load the syscall cost
// amortizes across up to 64 completions exactly like the paper's NVMe
// submission batching cap.
const (
	wireBatchMsgs  = 64
	wireBatchBytes = 256 << 10
	// outQueueDepth is the per-connection response queue; senders block
	// when it fills (backpressure toward the scheduler callback).
	outQueueDepth = 256
)

// outMsg is one queued response.
type outMsg struct {
	hdr     protocol.Header
	payload []byte
	lease   *bufpool.Buf
}

// srvConn is one client TCP connection, pinned to one core (pc) at accept
// time. Responses are appended to a cond-guarded out-queue; the owning
// core's flusher goroutine swaps the queue out and writes it with
// vectored flushes (see flush). A connection has exactly one goroutine of
// its own (the reader) — the old per-connection writer goroutine is
// absorbed into the core flusher, so N connections cost N+2 goroutines
// per core instead of 2N.
type srvConn struct {
	srv  *Server
	c    netConn
	core *pcore
	// vectored is computed once: real TCP conns take the writev path,
	// test seams and fault-wrapped conns the flat-buffer path.
	vectored bool

	// outMu guards the response queue. Senders (core goroutines, timer
	// goroutines, readers replying inline) append and block on outCond
	// when the queue is full; the flusher swaps outQ with flushQ and
	// broadcasts. downB marks teardown: senders drop instead of queueing.
	outMu   sync.Mutex
	outCond *sync.Cond
	outQ    []outMsg
	flushQ  []outMsg
	// queued is true while the connection sits on its core's dirty list;
	// the empty→non-empty sender arms it so the conn is listed at most
	// once per flush cycle.
	queued bool
	downB  bool

	// Flusher-confined batch scratch (touched only by the core flusher):
	// header arena (never exceeds cap, so subslices stay valid), the
	// iovec list, and the leases to release after each wire batch.
	hdrs   []byte
	iov    net.Buffers
	leases []*bufpool.Buf

	// owned tracks tenant handles registered over this connection; they
	// are unregistered when the connection tears down, so a dead peer no
	// longer leaks its registrations (and their token reservations).
	omu   sync.Mutex
	owned map[uint16]struct{}

	// replica is the cluster replication session token while this
	// connection is the backup's (or a migration sink's) join channel,
	// nil otherwise; replicaOf is the replicator owning that session
	// (s.repl for backup joins, s.migr for ranged migration joins) so
	// acks and teardown route to the right one.
	rmu       sync.Mutex
	replica   any
	replicaOf *cluster.Replicator

	// vstream is the active snapshot-diff stream (OpVolStream) riding
	// this connection, nil otherwise. One at a time per connection: acks
	// route to it by opcode, teardown closes it.
	vsMu    sync.Mutex
	vstream *cluster.Stream

	downOnce sync.Once
}

// netConn is the subset of net.Conn the server uses (test seam).
type netConn interface {
	Read(p []byte) (int, error)
	Write(p []byte) (int, error)
	Close() error
	SetReadDeadline(t time.Time) error
	SetWriteDeadline(t time.Time) error
}

// newSrvConn builds a connection, pins it to the least-loaded core,
// registers it in the server's set and starts its reader goroutine.
func newSrvConn(s *Server, c netConn) *srvConn {
	// Accept-time pinning: the connection lands on the core with the
	// fewest connections, and every tenant registered over it lands on
	// the same core (see registerTenant), keeping the tenant's whole
	// request path core-local.
	pc := s.cores[0]
	for _, cand := range s.cores[1:] {
		if cand.nconns.Load() < pc.nconns.Load() {
			pc = cand
		}
	}
	_, vectored := c.(*net.TCPConn)
	sc := &srvConn{
		srv:      s,
		c:        c,
		core:     pc,
		vectored: vectored,
		outQ:     make([]outMsg, 0, outQueueDepth),
		flushQ:   make([]outMsg, 0, outQueueDepth),
		hdrs:     make([]byte, 0, wireBatchMsgs*protocol.HeaderSize),
		iov:      make(net.Buffers, 0, 2*wireBatchMsgs),
		leases:   make([]*bufpool.Buf, 0, wireBatchMsgs),
		owned:    make(map[uint16]struct{}),
	}
	sc.outCond = sync.NewCond(&sc.outMu)
	s.connMu.Lock()
	select {
	case <-s.done:
		// The accept raced Close past its conn sweep: refuse instead of
		// leaking a socket no one will ever close.
		s.connMu.Unlock()
		c.Close()
		return sc
	default:
	}
	s.conns[sc] = struct{}{}
	s.connMu.Unlock()
	s.connCount.Add(1)
	pc.nconns.Add(1)
	s.wg.Add(1)
	go sc.readLoop()
	return sc
}

// send enqueues one response message. Responses may originate from core
// goroutines and timer goroutines concurrently; ordering is the queue's
// FIFO order per connection. A non-nil lease transfers one reference to
// the flusher, released after the flush that carries the message. Once
// the connection is down the message is dropped and the lease released
// immediately. The empty→non-empty transition lists the connection on
// its core's dirty set — one flusher wakeup covers every response queued
// since the last flush, across all of the core's connections.
func (sc *srvConn) send(hdr *protocol.Header, payload []byte, lease *bufpool.Buf) {
	if hdr.Epoch == 0 {
		hdr.Epoch = sc.srv.ClusterEpoch()
	}
	m := outMsg{hdr: *hdr, payload: payload, lease: lease}
	m.hdr.Len = uint32(len(payload))
	sc.outMu.Lock()
	for !sc.downB && len(sc.outQ) >= outQueueDepth {
		sc.outCond.Wait()
	}
	if sc.downB {
		sc.outMu.Unlock()
		bufpool.ReleaseIf(lease)
		return
	}
	sc.outQ = append(sc.outQ, m)
	kick := !sc.queued
	sc.queued = true
	sc.outMu.Unlock()
	if kick {
		sc.core.noteDirty(sc)
	}
}

// flush drains the response queue into adaptive vectored flushes. Runs
// only on the owning core's flusher goroutine: it swaps the queue out
// under the lock, releases any blocked senders, then assembles batches of
// up to wireBatchMsgs/wireBatchBytes and writes each with one writev
// (net.Buffers on a *net.TCPConn) or one flat Write (test seams and
// fault-wrapped conns) — one syscall and zero allocations per batch at
// steady state. A write or deadline error tears the connection down
// fully — closed, deregistered, its tenants unregistered and their
// unspent tokens returned to the scheduler — instead of lingering
// half-dead.
func (sc *srvConn) flush() {
	sc.outMu.Lock()
	sc.outQ, sc.flushQ = sc.flushQ[:0], sc.outQ
	sc.queued = false
	down := sc.downB
	sc.outMu.Unlock()
	sc.outCond.Broadcast()
	msgs := sc.flushQ
	if len(msgs) == 0 {
		return
	}
	if down {
		for i := range msgs {
			bufpool.ReleaseIf(msgs[i].lease)
			msgs[i] = outMsg{}
		}
		return
	}
	m := sc.srv.m
	i := 0
	for i < len(msgs) {
		hdrs := sc.hdrs[:0]
		iov := sc.iov[:0]
		leases := sc.leases[:0]
		batch, bytes := 0, 0
		for i < len(msgs) && batch < wireBatchMsgs && bytes < wireBatchBytes {
			msg := &msgs[i]
			off := len(hdrs)
			hdrs = append(hdrs, hdrSpace[:]...)
			msg.hdr.MarshalTo(hdrs[off:])
			iov = append(iov, hdrs[off:off+protocol.HeaderSize])
			if len(msg.payload) > 0 {
				iov = append(iov, msg.payload)
			}
			if msg.lease != nil {
				leases = append(leases, msg.lease)
			}
			bytes += protocol.HeaderSize + len(msg.payload)
			batch++
			i++
		}
		err := sc.flushBatch(iov, bytes)
		for _, l := range leases {
			l.Release()
		}
		m.flushes.Inc()
		m.flushBatch.Record(int64(batch))
		sc.core.flushes.Add(1)
		sc.core.flushMsgs.Add(int64(batch))
		if err != nil {
			for ; i < len(msgs); i++ {
				bufpool.ReleaseIf(msgs[i].lease)
			}
			for j := range msgs {
				msgs[j] = outMsg{}
			}
			sc.teardown(false)
			return
		}
	}
	for j := range msgs {
		msgs[j] = outMsg{} // drop payload/lease refs; the buffer is reused
	}
}

// hdrSpace reserves header space in the batch arena without a make call.
var hdrSpace [protocol.HeaderSize]byte

// flushBatch writes one assembled batch: writev on a real TCP conn, a
// single flat Write otherwise. The write deadline is armed first; a
// SetWriteDeadline failure is surfaced like a write failure (it means the
// socket is already dead) instead of being ignored.
func (sc *srvConn) flushBatch(iov net.Buffers, size int) error {
	if wt := sc.srv.cfg.WriteTimeout; wt > 0 {
		if err := sc.c.SetWriteDeadline(time.Now().Add(wt)); err != nil {
			return err
		}
	}
	if sc.vectored {
		v := iov
		_, err := v.WriteTo(sc.c.(*net.TCPConn))
		return err
	}
	// Flat path: coalesce into one pooled buffer and a single Write. The
	// pooled buffer grows past its class only for oversize single
	// messages (> wireBatchBytes), which are off the steady-state path.
	flat := bufpool.Get(wireBatchBytes)
	buf := flat.Bytes()[:0]
	for _, b := range iov {
		buf = append(buf, b...)
	}
	_, err := sc.c.Write(buf)
	flat.Release()
	return err
}

// teardown closes the connection, removes it from the server's conn set
// and unregisters every tenant registered over it (dropping held
// sequencer work and returning unspent token reservations to the
// scheduler). Queued responses are dropped with their leases released,
// and blocked senders are woken to observe the down flag. Idempotent:
// flusher-side write failures and the read loop's exit may both arrive
// here.
func (sc *srvConn) teardown(reaped bool) {
	sc.downOnce.Do(func() {
		sc.outMu.Lock()
		sc.downB = true
		drop := sc.outQ
		sc.outQ = nil
		sc.outMu.Unlock()
		sc.outCond.Broadcast()
		for i := range drop {
			bufpool.ReleaseIf(drop[i].lease)
			drop[i] = outMsg{}
		}
		sc.c.Close()
		sc.detachReplica()
		sc.detachVolStream()
		s := sc.srv
		s.connMu.Lock()
		delete(s.conns, sc)
		s.connMu.Unlock()
		s.connCount.Add(-1)
		sc.core.nconns.Add(-1)
		// Wake the core flusher: its shutdown drain parks until every
		// connection on the core is gone, and this may be the last one.
		select {
		case sc.core.flushKick <- struct{}{}:
		default:
		}
		if reaped {
			s.m.reaped.Inc()
			s.m.journal.Record(obs.EvReap, s.cfg.NodeName, -1,
				"idle connection reaped")
		}
		sc.omu.Lock()
		owned := make([]uint16, 0, len(sc.owned))
		for h := range sc.owned {
			owned = append(owned, h)
		}
		sc.owned = nil
		sc.omu.Unlock()
		// Unregister off this goroutine: teardown can run on a core's
		// flusher (flush failure), and unregistration round-trips through
		// that core's command channel. The work funnels through the
		// server's single reaper goroutine instead of spawning one
		// goroutine per torn-down connection.
		sc.srv.queueUnregister(owned)
	})
}

// addOwned records a tenant registered over this connection. If the
// connection already tore down (the registration raced teardown), the
// tenant is unregistered immediately instead of leaking.
func (sc *srvConn) addOwned(h uint16) {
	sc.omu.Lock()
	if sc.owned != nil {
		sc.owned[h] = struct{}{}
		sc.omu.Unlock()
		return
	}
	sc.omu.Unlock()
	sc.srv.unregisterTenant(h)
}

// dropOwned forgets a tenant explicitly unregistered by the client.
func (sc *srvConn) dropOwned(h uint16) {
	sc.omu.Lock()
	delete(sc.owned, h)
	sc.omu.Unlock()
}

// isTimeout reports whether err is a deadline expiry.
func isTimeout(err error) bool {
	if errors.Is(err, os.ErrDeadlineExceeded) {
		return true
	}
	var ne net.Error
	return errors.As(err, &ne) && ne.Timeout()
}

// readLoop decodes requests until the connection dies. The read deadline
// is re-armed before every message, so a half-open peer (one that will
// never send again) is reaped after IdleTimeout instead of pinning a
// goroutine and its tenant registrations forever.
//
// The loop is allocation-free at steady state: one Message is reused for
// every request and payloads land in pooled leases. dispatch borrows the
// lease; paths that need the payload beyond dispatch (the write path's
// trip through the scheduler) retain their own reference.
func (sc *srvConn) readLoop() {
	reaped := false
	defer func() {
		sc.teardown(reaped)
		sc.srv.wg.Done()
	}()
	idle := sc.srv.cfg.IdleTimeout
	br := bufio.NewReaderSize(sc.c, 64<<10)
	var (
		msg   protocol.Message
		lease *bufpool.Buf
	)
	alloc := func(n int) []byte {
		lease = bufpool.Get(n)
		return lease.Bytes()
	}
	for {
		if idle > 0 {
			sc.c.SetReadDeadline(time.Now().Add(idle))
		}
		lease = nil
		if err := protocol.ReadMessageInto(br, &msg, alloc); err != nil {
			bufpool.ReleaseIf(lease) // payload leased before a truncation error
			reaped = isTimeout(err)
			return
		}
		sc.srv.dispatch(sc, &msg, lease)
		bufpool.ReleaseIf(lease)
	}
}

// dispatch routes one decoded request from any transport. lease, when
// non-nil, backs m.Payload; dispatch borrows it for the duration of the
// call and the write path retains its own reference before handing the
// payload to the scheduler.
func (s *Server) dispatch(rsp responder, m *protocol.Message, lease *bufpool.Buf) {
	hdr := m.Header
	// Responses arriving on a server connection are replication acks from
	// an attached backup or migration sink (the join channel carries
	// requests out and acks back in); they route to whichever replicator
	// owns this connection's session. Anything else is dropped.
	if hdr.IsResponse() {
		switch hdr.Opcode {
		case protocol.OpReplicate:
			r := s.repl
			if sc, ok := rsp.(*srvConn); ok {
				sc.rmu.Lock()
				if sc.replicaOf != nil {
					r = sc.replicaOf
				}
				sc.rmu.Unlock()
			}
			r.HandleAck(&hdr)
		case protocol.OpVolStream:
			// Snapshot-diff stream chunk ack from the restore receiver:
			// route to the stream attached to this connection.
			if sc, ok := rsp.(*srvConn); ok {
				sc.vsMu.Lock()
				vs := sc.vstream
				sc.vsMu.Unlock()
				if vs != nil {
					vs.HandleAck(&hdr)
				}
			}
		}
		return
	}
	// Transports with bounded response sizes (UDP) cap the I/O length.
	if lim, ok := rsp.(interface{ maxIO() uint32 }); ok && hdr.Count > lim.maxIO() {
		reject(rsp, &hdr, protocol.StatusBadRequest)
		return
	}
	switch hdr.Opcode {
	case protocol.OpRegister:
		var reg protocol.Registration
		resp := protocol.Header{
			Opcode: protocol.OpRegister,
			Flags:  protocol.FlagResponse,
			Cookie: hdr.Cookie,
		}
		if err := reg.Unmarshal(m.Payload); err != nil {
			resp.Status = protocol.StatusBadRequest
		} else {
			// Core-affine registration: a tenant registered over a TCP
			// connection is pinned to that connection's core, so its
			// requests never cross a core boundary. Coreless transports
			// (UDP) fall back to least-loaded placement.
			pin := -1
			if sc, ok := rsp.(*srvConn); ok {
				pin = sc.core.id
			}
			resp.Handle, resp.Status = s.registerTenant(reg, pin)
			if resp.Status == protocol.StatusOK {
				s.m.registered.Inc()
				if sc, ok := rsp.(*srvConn); ok {
					sc.addOwned(resp.Handle)
				}
			}
		}
		rsp.send(&resp, nil, nil)

	case protocol.OpUnregister:
		resp := protocol.Header{
			Opcode: protocol.OpUnregister,
			Flags:  protocol.FlagResponse,
			Handle: hdr.Handle,
			Cookie: hdr.Cookie,
			Status: s.unregisterTenant(hdr.Handle),
		}
		if resp.Status == protocol.StatusOK {
			s.m.removed.Inc()
			if sc, ok := rsp.(*srvConn); ok {
				sc.dropOwned(hdr.Handle)
			}
		}
		rsp.send(&resp, nil, nil)

	case protocol.OpRead, protocol.OpWrite:
		arrival := s.now()
		// Shard-map enforcement first: a request for a range this node
		// does not own is a routing error, not an I/O — redirect before
		// fences, tenants or QoS get a say. Volume-bound tenants are
		// exempt: their LBAs are volume-logical, and a volume lives
		// wholly on the node that created it (volume DR is the
		// snapshot-diff stream, not shard routing). The tenant lookup is
		// hoisted for that test only — unknown handles still take the
		// shard check first so a stale client is redirected, not told
		// NoTenant.
		vten, vok := s.lookup(hdr.Handle)
		if !(vok && vten.vol != nil) && !s.checkShard(&hdr) {
			s.rejectWrongShard(rsp, m)
			return
		}
		s.m.noteShardOp(s.shardIndex(&hdr), hdr.Opcode == protocol.OpWrite)
		if hdr.Opcode == protocol.OpWrite {
			s.m.writes.Inc()
			// Split-brain fence: a deposed or backup-role server refuses
			// writes, as does one receiving a stale epoch stamp.
			if st := s.writeAllowed(hdr.Epoch); st != protocol.StatusOK {
				s.m.staleRejects.Inc()
				reject(rsp, &hdr, st)
				return
			}
			// End-to-end integrity: a write whose CRC32C trailer failed
			// verification is refused before it can touch media.
			if m.ChecksumErr {
				s.m.checksumErrs.Inc()
				s.m.journal.Record(obs.EvChecksum, s.cfg.NodeName, -1,
					"write lba=%d len=%d failed CRC32C verification", hdr.LBA, hdr.Count)
				reject(rsp, &hdr, protocol.StatusBadChecksum)
				return
			}
		} else {
			s.m.reads.Inc()
		}
		ten, ok := vten, vok
		if !ok {
			s.m.rejected.Inc()
			reject(rsp, &hdr, protocol.StatusNoTenant)
			return
		}
		// Graceful shed: refuse best-effort work under overload instead
		// of letting readers block on a saturated scheduler queue. LC
		// tenants are never shed.
		if s.shedNow(ten) {
			s.m.shed.Inc()
			s.m.journal.Record(obs.EvShed, s.cfg.NodeName, -1,
				"best-effort tenant %d shed under overload", ten.t.ID)
			reject(rsp, &hdr, protocol.StatusOverloaded)
			return
		}
		// Volume-bound tenants are bounded by the volume's logical size;
		// raw tenants by the device.
		aclSize := s.devices[ten.device].backend.Size()
		if ten.vol != nil {
			aclSize = ten.vol.LogicalBytes()
		}
		if st := checkACL(&ten.reg, &hdr, aclSize); st != protocol.StatusOK {
			s.m.rejected.Inc()
			reject(rsp, &hdr, st)
			return
		}
		op := core.OpRead
		if hdr.Opcode == protocol.OpWrite {
			op = core.OpWrite
		}
		ctx := &reqCtx{conn: rsp, ten: ten, hdr: hdr, payload: m.Payload}
		if op == core.OpWrite && lease != nil {
			// The payload outlives dispatch (device write + replication
			// forward run on the core goroutine later): take a
			// reference the completion path releases.
			lease.Retain()
			ctx.lease = lease
		}
		var costOverride core.Tokens
		if s.cache != nil {
			if op == core.OpRead {
				costOverride = s.probeCache(ctx, ten)
			}
		}
		if op == core.OpWrite {
			// FDP-style lifetime hints: real backends have no placement
			// streams, so the hint is counted (capacity planning signal),
			// not acted on — the simulator carries the placement model.
			s.m.hintWrites[hdr.LifetimeHint()].Inc()
		}
		ctx.span.ID = s.m.spanID()
		ctx.span.Tenant = ten.t.ID
		ctx.span.Write = op == core.OpWrite
		ctx.span.Size = int(hdr.Count)
		// This is a serve span whether or not the caller traced it —
		// HopClient is the zero value, so leaving Hop unset would make
		// untraced spans masquerade as client roots in /traces.
		ctx.span.Node = s.cfg.NodeName
		ctx.span.Hop = obs.HopServe
		if m.TraceID != 0 {
			// The request carried a trace trailer: adopt the caller's
			// trace context so this serve span stitches under the
			// client's (or a relay's) span in the cross-node timeline.
			ctx.span.Trace = m.TraceID
			ctx.span.Parent = m.ParentSpan
		}
		ctx.span.Mark(obs.StageArrival, arrival)
		ctx.span.Mark(obs.StageParse, s.now())
		req := &core.Request{
			Op:           op,
			Block:        uint64(hdr.LBA) * protocol.BlockSize / 4096,
			Size:         int(hdr.Count),
			Cookie:       hdr.Cookie,
			Arrival:      arrival,
			Context:      ctx,
			CostOverride: costOverride,
		}
		if !ten.submitIO(s, enqueued{ten: ten, req: req}) {
			ctx.releaseLease()
			s.m.rejected.Inc()
			reject(rsp, &hdr, protocol.StatusNoTenant)
		}

	case protocol.OpBarrier:
		s.m.barriers.Inc()
		ten, ok := s.lookup(hdr.Handle)
		if !ok {
			reject(rsp, &hdr, protocol.StatusNoTenant)
			return
		}
		if !ten.submitBarrier(rsp, hdr) {
			reject(rsp, &hdr, protocol.StatusNoTenant)
		}

	case protocol.OpStats:
		ten, ok := s.lookup(hdr.Handle)
		if !ok {
			reject(rsp, &hdr, protocol.StatusNoTenant)
			return
		}
		// Tenant scheduler state is owned by its core; read it there.
		pc := s.cores[ten.coreID]
		done := make(chan protocol.TenantStats, 1)
		pc.do(func() {
			st := ten.t.Stats()
			done <- protocol.TenantStats{
				Enqueued:        st.Enqueued,
				Submitted:       st.Submitted,
				SubmittedTokens: uint64(st.SubmittedTokens),
				NegLimitHits:    st.NegLimitHits,
				Donated:         uint64(st.Donated),
				Claimed:         uint64(st.Claimed),
				QueueLen:        uint64(ten.t.QueueLen()),
				Tokens:          ten.t.Tokens(),
			}
		})
		select {
		case stats := <-done:
			rsp.send(&protocol.Header{
				Opcode: protocol.OpStats,
				Flags:  protocol.FlagResponse,
				Handle: hdr.Handle,
				Cookie: hdr.Cookie,
			}, stats.Marshal(), nil)
		case <-s.done:
		}

	case protocol.OpJoin:
		// A backup (Count == 0) or a migration sink (Count != 0, window
		// [LBA, LBA+Count) blocks) attaches over this connection. TCP
		// only: the join channel carries the ordered replication stream.
		resp := protocol.Header{
			Opcode: protocol.OpJoin,
			Flags:  protocol.FlagResponse,
			Cookie: hdr.Cookie,
			LBA:    hdr.LBA,
			Count:  hdr.Count,
		}
		sc, isTCP := rsp.(*srvConn)
		if !isTCP || s.backupRole.Load() {
			resp.Status = protocol.StatusBadRequest
			rsp.send(&resp, nil, nil)
			return
		}
		s.AdoptEpoch(hdr.Epoch)
		resp.Epoch = s.ClusterEpoch()
		// The OK must be queued ahead of the catch-up stream — the
		// per-connection FIFO guarantees the backup reads it as its
		// handshake response before the first chunk.
		rsp.send(&resp, nil, nil)
		if hdr.Count != 0 {
			s.joinMigration(sc, hdr.LBA, hdr.Count)
		} else {
			s.joinReplica(sc)
		}

	case protocol.OpPromote:
		e, st := s.Promote(hdr.Epoch)
		rsp.send(&protocol.Header{
			Opcode: protocol.OpPromote,
			Flags:  protocol.FlagResponse,
			Cookie: hdr.Cookie,
			Epoch:  e,
			Status: st,
		}, nil, nil)

	case protocol.OpFence:
		e := s.Fence(hdr.Epoch)
		rsp.send(&protocol.Header{
			Opcode: protocol.OpFence,
			Flags:  protocol.FlagResponse,
			Cookie: hdr.Cookie,
			Epoch:  e,
		}, nil, nil)

	case protocol.OpPing:
		var role uint32
		if s.backupRole.Load() {
			role |= protocol.RoleBackupBit
		}
		if s.fenced.Load() {
			role |= protocol.RoleFencedBit
		}
		rsp.send(&protocol.Header{
			Opcode: protocol.OpPing,
			Flags:  protocol.FlagResponse,
			Cookie: hdr.Cookie,
			Epoch:  s.ClusterEpoch(),
			Count:  role,
			// Migration drain signal: forwards still awaiting a sink ack.
			LBA: uint32(s.migr.Pending()),
		}, nil, nil)

	case protocol.OpShardMap:
		s.handleShardMap(rsp, &hdr, m.Payload)

	case protocol.OpVolCreate, protocol.OpVolDelete, protocol.OpVolSnapshot,
		protocol.OpVolClone, protocol.OpVolDiff, protocol.OpVolList:
		s.handleVolOp(rsp, &hdr, m.Payload)

	case protocol.OpVolStream:
		s.handleVolStream(rsp, &hdr, m.Payload)

	case protocol.OpTrim:
		s.handleTrim(rsp, &hdr)

	default:
		reject(rsp, &hdr, protocol.StatusBadRequest)
	}
}

// reject replies with an error status without scheduling.
func reject(rsp responder, hdr *protocol.Header, st protocol.Status) {
	rsp.send(&protocol.Header{
		Opcode: hdr.Opcode,
		Flags:  protocol.FlagResponse,
		Handle: hdr.Handle,
		Cookie: hdr.Cookie,
		LBA:    hdr.LBA,
		Status: st,
	}, nil, nil)
}
