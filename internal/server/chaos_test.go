package server

import (
	"errors"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/reflex-go/reflex/internal/client"
	"github.com/reflex-go/reflex/internal/ctrl"
	"github.com/reflex-go/reflex/internal/faults"
	"github.com/reflex-go/reflex/internal/protocol"
)

// TestChaosSoak drives the real TCP path through the fault injector on
// both sides — the server wraps accepted connections, the clients dial
// through a faulted dialer — for a few seconds of mixed read/write load,
// and then asserts the hardening invariants:
//
//   - every issued request resolves (success or typed error; none hang),
//   - latency-critical traffic is never shed,
//   - no goroutines leak once the clients are gone,
//   - faults were actually injected (the run exercised the error paths).
//
// The CI chaos-soak job runs exactly this test under -race.
func TestChaosSoak(t *testing.T) {
	dur := 3 * time.Second
	if testing.Short() {
		dur = time.Second
	}

	inj := faults.New(faults.Chaos(1))
	srv, _ := startServer(t, func(c *Config) {
		c.Faults = inj
		c.IdleTimeout = time.Second
		c.Shed = ctrl.ShedConfig{ConnLimit: 64}
	})
	base := runtime.NumGoroutine()

	deadline := time.Now().Add(dur)
	var issued, resolved, lcShed atomic.Uint64
	var wg sync.WaitGroup

	// Best-effort workers: faulted dialers, request timeouts, reconnect.
	// Every synchronous call that returns — whatever the error — counts
	// as resolved; a stuck call shows up as issued > resolved below.
	clientOpts := func(seed int64) client.Options {
		return client.Options{
			Timeout:     500 * time.Millisecond,
			Reconnect:   true,
			MaxAttempts: 4,
			BackoffBase: 5 * time.Millisecond,
			BackoffMax:  50 * time.Millisecond,
			Dialer:      faults.Dialer("tcp", srv.Addr(), faults.New(faults.Chaos(seed))),
		}
	}
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			var cl *client.Client
			var h uint16
			redial := func() bool {
				if cl != nil {
					cl.Close()
				}
				var err error
				cl, err = client.DialOptions(srv.Addr(), clientOpts(int64(100+w)))
				if err != nil {
					return false
				}
				h, err = cl.Register(beWritable())
				return err == nil
			}
			if !redial() {
				t.Error("chaos worker could not establish its first session")
				return
			}
			defer func() { cl.Close() }()
			buf := make([]byte, 4096)
			for time.Now().Before(deadline) {
				issued.Add(1)
				var err error
				if rng.Intn(100) < 80 {
					_, err = cl.Read(h, uint32(rng.Intn(1024)*8), 4096)
				} else {
					err = cl.Write(h, uint32(rng.Intn(1024)*8), buf)
				}
				resolved.Add(1)
				if errors.Is(err, client.ErrClosed) || errors.Is(err, client.ErrNoTenant) {
					// Reconnect gave up or the tenant was reaped: start a
					// fresh session and keep soaking.
					if !redial() {
						time.Sleep(20 * time.Millisecond)
					}
				}
			}
		}(w)
	}

	// The LC probe: its requests must never be shed, no matter what the
	// chaos around it does to the server. Device errors, timeouts and
	// resets can still hit it (the server wraps every accepted conn with
	// the injector) — only ErrOverloaded violates the invariant.
	wg.Add(1)
	go func() {
		defer wg.Done()
		lcReg := protocol.Registration{
			Writable:    true,
			IOPS:        1000,
			ReadPercent: 100,
			LatencyP95:  uint64(time.Millisecond),
		}
		lcOpts := client.Options{
			Timeout:     500 * time.Millisecond,
			Reconnect:   true,
			MaxAttempts: 4,
			BackoffBase: 5 * time.Millisecond,
			BackoffMax:  50 * time.Millisecond,
		}
		var cl *client.Client
		var h uint16
		redial := func() bool {
			if cl != nil {
				cl.Close()
			}
			var err error
			cl, err = client.DialOptions(srv.Addr(), lcOpts)
			if err != nil {
				return false
			}
			h, err = cl.Register(lcReg)
			return err == nil
		}
		if !redial() {
			t.Error("LC probe could not establish its first session")
			return
		}
		defer func() { cl.Close() }()
		for time.Now().Before(deadline) {
			issued.Add(1)
			_, err := cl.Read(h, 0, 512)
			resolved.Add(1)
			if errors.Is(err, client.ErrOverloaded) {
				lcShed.Add(1)
			} else if errors.Is(err, client.ErrClosed) || errors.Is(err, client.ErrNoTenant) {
				if !redial() {
					time.Sleep(20 * time.Millisecond)
				}
			}
			time.Sleep(time.Millisecond)
		}
	}()

	// Every worker must come home: a missing one means a call hung.
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(dur + 30*time.Second):
		t.Fatalf("soak workers stuck: %d of %d requests resolved",
			resolved.Load(), issued.Load())
	}

	if issued.Load() == 0 {
		t.Fatal("soak issued no requests")
	}
	if resolved.Load() != issued.Load() {
		t.Fatalf("unresolved requests: issued %d, resolved %d",
			issued.Load(), resolved.Load())
	}
	if lcShed.Load() != 0 {
		t.Fatalf("%d latency-critical requests were shed", lcShed.Load())
	}
	if inj.Injected() == 0 {
		t.Fatal("server-side injector fired no faults — the soak proved nothing")
	}
	// All clients are closed: reader goroutines, reapers' per-conn state
	// and barrier waiters must all unwind.
	waitFor(t, 10*time.Second, "goroutines back to baseline", func() bool {
		return runtime.NumGoroutine() <= base+2
	})
	t.Logf("soak: %d requests, %d faults injected, %.0f conns reaped, %.0f shed",
		issued.Load(), inj.Injected(), srv.m.reaped.Value(), srv.m.shed.Value())
}
