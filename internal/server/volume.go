package server

import (
	"github.com/reflex-go/reflex/internal/cluster"
	"github.com/reflex-go/reflex/internal/obs"
	"github.com/reflex-go/reflex/internal/protocol"
	"github.com/reflex-go/reflex/internal/volume"
)

// Volume control plane (DESIGN.md §18): the OpVol* opcodes are rare
// management operations handled inline on the dispatch goroutine — they
// never touch the QoS scheduler. Snapshot and clone are O(1) map freezes,
// so even "inline" they cost microseconds; the diff stream is the only
// long-running piece and it runs on its own goroutine, self-paced by
// receiver acks so it stays best-effort.

// volStatus maps volume-manager failures onto wire statuses.
func volStatus(err error) protocol.Status {
	switch err {
	case nil:
		return protocol.StatusOK
	case volume.ErrNoSpace:
		return protocol.StatusNoCapacity
	case volume.ErrNotFound:
		return protocol.StatusNoTenant
	case volume.ErrExists, volume.ErrRange:
		return protocol.StatusBadRequest
	case volume.ErrDead:
		return protocol.StatusBadRequest
	default:
		return protocol.StatusBadRequest
	}
}

// handleVolOp serves the inline volume-management opcodes.
func (s *Server) handleVolOp(rsp responder, hdr *protocol.Header, payload []byte) {
	resp := protocol.Header{
		Opcode: hdr.Opcode,
		Flags:  protocol.FlagResponse,
		Cookie: hdr.Cookie,
	}
	if s.vols == nil {
		resp.Status = protocol.StatusBadRequest
		rsp.send(&resp, nil, nil)
		return
	}
	// Volume DDL mutates state shared with the replica set: fence it like
	// a write so a deposed primary or an un-promoted backup refuses.
	if hdr.Opcode != protocol.OpVolList {
		if st := s.writeAllowed(hdr.Epoch); st != protocol.StatusOK {
			s.m.staleRejects.Inc()
			resp.Status = st
			rsp.send(&resp, nil, nil)
			return
		}
	}
	var req protocol.VolumeReq
	if hdr.Opcode != protocol.OpVolList {
		if err := req.Unmarshal(payload); err != nil {
			resp.Status = protocol.StatusBadRequest
			rsp.send(&resp, nil, nil)
			return
		}
	}
	switch hdr.Opcode {
	case protocol.OpVolCreate:
		v, err := s.vols.Create(req.Name, req.Blocks)
		resp.Status = volStatus(err)
		if err == nil {
			resp.Handle = v.Handle()
			s.m.volOps.Inc()
			s.m.journal.Record(obsVolEv, s.cfg.NodeName, -1,
				"volume %s created: %d blocks, handle %d", req.Name, req.Blocks, v.Handle())
		}
		rsp.send(&resp, nil, nil)

	case protocol.OpVolDelete:
		freed, err := s.vols.Delete(req.Name, req.Gen)
		resp.Status = volStatus(err)
		resp.Count = uint32(freed)
		if err == nil {
			s.m.volOps.Inc()
			// Reclaimed thin extents are dead flash: pass the discard down
			// so a trim-capable device drops them from its erase units.
			s.m.journal.Record(obsVolEv, s.cfg.NodeName, -1,
				"volume %s gen %d deleted: %d extents freed", req.Name, req.Gen, freed)
		}
		rsp.send(&resp, nil, nil)

	case protocol.OpVolSnapshot:
		gen, err := s.vols.Snapshot(req.Name)
		resp.Status = volStatus(err)
		// Generations are 64-bit: they ride the payload, not the 32-bit
		// Header.LBA, so they can never silently wrap on the wire.
		var pay []byte
		if err == nil {
			pay = protocol.MarshalGen(gen)
			s.m.volOps.Inc()
			s.m.journal.Record(obsVolEv, s.cfg.NodeName, -1,
				"volume %s snapshotted at gen %d", req.Name, gen)
		}
		rsp.send(&resp, pay, nil)

	case protocol.OpVolClone:
		v, err := s.vols.Clone(req.Source, req.Gen, req.Name)
		resp.Status = volStatus(err)
		if err == nil {
			resp.Handle = v.Handle()
			s.m.volOps.Inc()
			s.m.journal.Record(obsVolEv, s.cfg.NodeName, -1,
				"volume %s cloned from %s@%d, handle %d", req.Name, req.Source, req.Gen, v.Handle())
		}
		rsp.send(&resp, nil, nil)

	case protocol.OpVolDiff:
		v, ok := s.vols.Get(req.Name)
		if !ok {
			resp.Status = protocol.StatusNoTenant
			rsp.send(&resp, nil, nil)
			return
		}
		genB := req.GenB
		if genB == 0 {
			genB = v.Gen()
		}
		exts, err := v.Diff(req.GenA, genB)
		if err != nil {
			resp.Status = volStatus(err)
			rsp.send(&resp, nil, nil)
			return
		}
		d := protocol.VolDiff{Gen: genB, ExtentBlocks: v.ExtentBlocks(), Extents: exts}
		resp.Count = uint32(len(exts))
		rsp.send(&resp, d.Marshal(), nil)

	case protocol.OpVolList:
		infos := s.vols.List()
		var b []byte
		for _, in := range infos {
			vi := protocol.VolumeInfo{
				Name:         in.Name,
				Handle:       in.Handle,
				Blocks:       in.Blocks,
				Gen:          in.Gen,
				Extents:      in.Extents,
				ExtentBlocks: s.vols.ExtentBlocks(),
				Snaps:        in.Snaps,
			}
			b = vi.AppendMarshal(b)
		}
		resp.Count = uint32(len(infos))
		rsp.send(&resp, b, nil)
	}
}

// obsVolEv is the journal event class for volume operations.
const obsVolEv = obs.EvVolume

// handleVolStream starts a snapshot-diff stream on this connection: the
// OK response (Count = extents, LBA = resolved upper generation) goes
// first in the connection FIFO, then the stream goroutine ships each
// diff extent as self-paced OpVolStream chunks, ending with the
// zero-length marker. One stream per connection at a time.
func (s *Server) handleVolStream(rsp responder, hdr *protocol.Header, payload []byte) {
	resp := protocol.Header{
		Opcode: protocol.OpVolStream,
		Flags:  protocol.FlagResponse,
		Handle: hdr.Handle,
		Cookie: hdr.Cookie,
	}
	sc, isTCP := rsp.(*srvConn)
	var req protocol.VolumeReq
	if s.vols == nil || !isTCP || req.Unmarshal(payload) != nil {
		resp.Status = protocol.StatusBadRequest
		rsp.send(&resp, nil, nil)
		return
	}
	v, ok := s.vols.Get(req.Name)
	if !ok {
		resp.Status = protocol.StatusNoTenant
		rsp.send(&resp, nil, nil)
		return
	}
	genB := req.GenB
	if genB == 0 {
		genB = v.Gen()
	}
	exts, err := v.Diff(req.GenA, genB)
	if err != nil {
		resp.Status = volStatus(err)
		rsp.send(&resp, nil, nil)
		return
	}
	extBytes := int64(v.ExtentBlocks()) * protocol.BlockSize
	logical := v.LogicalBytes()
	ranges := make([]cluster.StreamRange, 0, len(exts))
	for _, e := range exts {
		// Coalesce adjacent extents into one range so chunking is not
		// bounded by the extent size. The tail extent of a volume whose
		// size is not an extent multiple is clamped to the logical size:
		// ReadAtGen refuses reads past LogicalBytes, so an unclamped
		// range would abort the stream mid-flight.
		off := int64(e) * extBytes
		l := extBytes
		if off+l > logical {
			l = logical - off
		}
		if l <= 0 {
			continue
		}
		if n := len(ranges); n > 0 && ranges[n-1].Off+ranges[n-1].Len == off {
			ranges[n-1].Len += l
			continue
		}
		ranges = append(ranges, cluster.StreamRange{Off: off, Len: l})
	}
	var vs *cluster.Stream
	vs = cluster.NewStream(cluster.StreamConfig{
		Op:     protocol.OpVolStream,
		Handle: hdr.Handle,
		Epoch:  s.ClusterEpoch,
		ReadAt: func(p []byte, off int64) error { return v.ReadAtGen(p, off, genB) },
		Sender: replicaSender{sc: sc},
		OnChunk: func(n int) {
			s.m.volStreamBytes.Add(uint64(n))
		},
		OnDone: func(complete bool) {
			// Only clear our own slot: a finished stream's callback must
			// not tear down a successor already installed on the
			// connection.
			sc.vsMu.Lock()
			if sc.vstream == vs {
				sc.vstream = nil
			}
			sc.vsMu.Unlock()
		},
	})
	sc.vsMu.Lock()
	// One *running* stream per connection: a finished slot whose OnDone
	// has not fired yet (the receiver reads the end marker before the
	// sender goroutine unwinds) counts as free.
	if sc.vstream != nil && !sc.vstream.Done() {
		sc.vsMu.Unlock()
		resp.Status = protocol.StatusBadRequest // one stream per connection
		rsp.send(&resp, nil, nil)
		return
	}
	sc.vstream = vs
	sc.vsMu.Unlock()
	resp.Count = uint32(len(exts))
	// FIFO: the receiver reads this OK (payload = resolved generation,
	// 64-bit so it rides the payload) before the first chunk.
	rsp.send(&resp, protocol.MarshalGen(genB), nil)
	s.m.volOps.Inc()
	s.m.journal.Record(obsVolEv, s.cfg.NodeName, -1,
		"volume %s diff stream (%d,%d]: %d extents", req.Name, req.GenA, genB, len(exts))
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		vs.Run(ranges)
	}()
}

// detachVolStream closes the connection's diff stream on teardown.
func (sc *srvConn) detachVolStream() {
	sc.vsMu.Lock()
	vs := sc.vstream
	sc.vstream = nil
	sc.vsMu.Unlock()
	if vs != nil {
		vs.Close()
	}
}

// handleTrim serves OpTrim (discard): volume-bound tenants free the
// fully covered thin extents (chain-inherited data becomes an explicit
// hole); raw tenants get an advisory no-op OK — the real backends have
// no discard primitive, and the flash simulator's trim accounting rides
// reflex-calibrate, not this path. Inline like the other metadata ops:
// a trim moves no payload and frees extents under short locks.
func (s *Server) handleTrim(rsp responder, hdr *protocol.Header) {
	resp := protocol.Header{
		Opcode: protocol.OpTrim,
		Flags:  protocol.FlagResponse,
		Handle: hdr.Handle,
		Cookie: hdr.Cookie,
		LBA:    hdr.LBA,
	}
	// A trim mutates the extent map: fence it like a write.
	if st := s.writeAllowed(hdr.Epoch); st != protocol.StatusOK {
		s.m.staleRejects.Inc()
		resp.Status = st
		rsp.send(&resp, nil, nil)
		return
	}
	ten, ok := s.lookup(hdr.Handle)
	if !ok {
		resp.Status = protocol.StatusNoTenant
		rsp.send(&resp, nil, nil)
		return
	}
	aclSize := s.devices[ten.device].backend.Size()
	if ten.vol != nil {
		aclSize = ten.vol.LogicalBytes()
	}
	if st := checkACL(&ten.reg, hdr, aclSize); st != protocol.StatusOK {
		resp.Status = st
		rsp.send(&resp, nil, nil)
		return
	}
	if ten.vol != nil {
		freed := ten.vol.Trim(int64(hdr.LBA)*protocol.BlockSize, int64(hdr.Count))
		resp.Count = uint32(freed)
	}
	s.m.trims.Inc()
	rsp.send(&resp, nil, nil)
}
