package server

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"github.com/reflex-go/reflex/internal/client"
	"github.com/reflex-go/reflex/internal/core"
)

func TestBarrierNoInflightCompletesImmediately(t *testing.T) {
	_, cl := startServer(t, nil)
	h, err := cl.Register(beWritable())
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if err := cl.Barrier(h); err != nil {
		t.Fatal(err)
	}
	if time.Since(start) > 100*time.Millisecond {
		t.Fatal("idle barrier took far too long")
	}
}

func TestBarrierOrdersReadAfterSlowWrite(t *testing.T) {
	// Writes take 30ms at the "device"; reads are instant. Without a
	// barrier a read overtakes the write and sees stale data; with one it
	// must see the new data.
	_, cl := startServer(t, func(c *Config) {
		c.WriteLatency = 30 * time.Millisecond
	})
	h, err := cl.Register(beWritable())
	if err != nil {
		t.Fatal(err)
	}
	data := bytes.Repeat([]byte{0xEE}, 512)

	// Unordered: the read overtakes the 30ms write.
	wcall, err := cl.GoWrite(h, 0, data)
	if err != nil {
		t.Fatal(err)
	}
	stale, err := cl.Read(h, 0, 512)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(stale, data) {
		t.Fatal("read did not overtake the slow write; the race this test needs is gone")
	}
	<-wcall.Done

	// Ordered: write, barrier, read — the read must see the write.
	data2 := bytes.Repeat([]byte{0xDD}, 512)
	if _, err := cl.GoWrite(h, 8, data2); err != nil {
		t.Fatal(err)
	}
	bcall, err := cl.GoBarrier(h)
	if err != nil {
		t.Fatal(err)
	}
	got, err := cl.Read(h, 8, 512)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data2) {
		t.Fatal("read after barrier returned stale data")
	}
	<-bcall.Done
	if bcall.Err != nil {
		t.Fatal(bcall.Err)
	}
}

func TestBarrierWaitsForAllPriorIOs(t *testing.T) {
	_, cl := startServer(t, func(c *Config) {
		c.WriteLatency = 20 * time.Millisecond
	})
	h, err := cl.Register(beWritable())
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	var calls []*client.Call
	for i := 0; i < 8; i++ {
		call, err := cl.GoWrite(h, uint32(i*8), make([]byte, 512))
		if err != nil {
			t.Fatal(err)
		}
		calls = append(calls, call)
	}
	if err := cl.Barrier(h); err != nil {
		t.Fatal(err)
	}
	// The barrier cannot complete before the 20ms writes do.
	if el := time.Since(start); el < 20*time.Millisecond {
		t.Fatalf("barrier completed in %v, before the writes", el)
	}
	for _, c := range calls {
		select {
		case <-c.Done:
		default:
			t.Fatal("barrier completed while a prior write was still in flight")
		}
	}
}

func TestMultipleBarriersChain(t *testing.T) {
	_, cl := startServer(t, func(c *Config) {
		c.WriteLatency = 10 * time.Millisecond
	})
	h, err := cl.Register(beWritable())
	if err != nil {
		t.Fatal(err)
	}
	// w1, B1, w2, B2, w3 — every barrier and write must complete, in order.
	v1 := bytes.Repeat([]byte{1}, 512)
	v2 := bytes.Repeat([]byte{2}, 512)
	v3 := bytes.Repeat([]byte{3}, 512)
	if _, err := cl.GoWrite(h, 0, v1); err != nil {
		t.Fatal(err)
	}
	b1, _ := cl.GoBarrier(h)
	if _, err := cl.GoWrite(h, 0, v2); err != nil {
		t.Fatal(err)
	}
	b2, _ := cl.GoBarrier(h)
	if _, err := cl.GoWrite(h, 0, v3); err != nil {
		t.Fatal(err)
	}
	if err := cl.Barrier(h); err != nil {
		t.Fatal(err)
	}
	<-b1.Done
	<-b2.Done
	got, err := cl.Read(h, 0, 512)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, v3) {
		t.Fatalf("final value = %v, want v3", got[0])
	}
}

func TestBarrierIsolatedPerTenant(t *testing.T) {
	// One tenant's barrier must not hold another tenant's I/O.
	_, cl := startServer(t, func(c *Config) {
		c.WriteLatency = 50 * time.Millisecond
	})
	h1, err := cl.Register(beWritable())
	if err != nil {
		t.Fatal(err)
	}
	h2, err := cl.Register(beWritable())
	if err != nil {
		t.Fatal(err)
	}
	// Tenant 1: slow write + barrier.
	if _, err := cl.GoWrite(h1, 0, make([]byte, 512)); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.GoBarrier(h1); err != nil {
		t.Fatal(err)
	}
	// Tenant 2's read completes immediately despite tenant 1's barrier.
	start := time.Now()
	if _, err := cl.Read(h2, 0, 512); err != nil {
		t.Fatal(err)
	}
	if el := time.Since(start); el > 30*time.Millisecond {
		t.Fatalf("tenant 2 read stalled %v behind tenant 1's barrier", el)
	}
}

func TestBarrierUnknownTenant(t *testing.T) {
	_, cl := startServer(t, nil)
	if err := cl.Barrier(4242); !errors.Is(err, client.ErrNoTenant) {
		t.Fatalf("barrier on unknown tenant: %v, want ErrNoTenant", err)
	}
}

func TestBarrierHeavyPipelineStress(t *testing.T) {
	// Many interleaved writes and barriers on a throttled server: all must
	// complete and the final value must be the last write.
	_, cl := startServer(t, func(c *Config) {
		c.TokenRate = 200_000 * core.TokenUnit
	})
	h, err := cl.Register(beWritable())
	if err != nil {
		t.Fatal(err)
	}
	var last byte
	var calls []*client.Call
	for i := 0; i < 200; i++ {
		last = byte(i)
		call, err := cl.GoWrite(h, 0, bytes.Repeat([]byte{last}, 512))
		if err != nil {
			t.Fatal(err)
		}
		calls = append(calls, call)
		if i%10 == 9 {
			bcall, err := cl.GoBarrier(h)
			if err != nil {
				t.Fatal(err)
			}
			calls = append(calls, bcall)
		}
	}
	if err := cl.Barrier(h); err != nil {
		t.Fatal(err)
	}
	for i, c := range calls {
		<-c.Done
		if c.Err != nil {
			t.Fatalf("call %d: %v", i, c.Err)
		}
	}
	got, err := cl.Read(h, 0, 512)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != last {
		t.Fatalf("final value %d, want %d", got[0], last)
	}
}
