package server

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"github.com/reflex-go/reflex/internal/client"
	"github.com/reflex-go/reflex/internal/core"
	"github.com/reflex-go/reflex/internal/protocol"
	"github.com/reflex-go/reflex/internal/storage"
)

// startMultiServer runs a server with two devices: a fast one and a small,
// heavily throttled one.
func startMultiServer(t *testing.T) (*Server, *client.Client) {
	t.Helper()
	srv, err := NewMulti(Config{Addr: "127.0.0.1:0", Threads: 2}, []DeviceConfig{
		{
			Backend:   storage.NewMem(32 << 20),
			Model:     modelA(),
			TokenRate: 1_000_000 * core.TokenUnit,
		},
		{
			Backend: storage.NewMem(8 << 20),
			Model: core.CostModel{
				ReadCost:         core.TokenUnit,
				ReadOnlyReadCost: core.TokenUnit,
				WriteCost:        20 * core.TokenUnit, // a device-B-like drive
			},
			TokenRate: 10_000 * core.TokenUnit,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	cl, err := client.Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cl.Close() })
	return srv, cl
}

func TestMultiDeviceIsolatedData(t *testing.T) {
	srv, cl := startMultiServer(t)
	if srv.Devices() != 2 {
		t.Fatal("device count")
	}
	h0, err := cl.Register(protocol.Registration{BestEffort: true, Writable: true, Device: 0})
	if err != nil {
		t.Fatal(err)
	}
	h1, err := cl.Register(protocol.Registration{BestEffort: true, Writable: true, Device: 1})
	if err != nil {
		t.Fatal(err)
	}
	d0 := bytes.Repeat([]byte{0xA0}, 512)
	d1 := bytes.Repeat([]byte{0xB1}, 512)
	if err := cl.Write(h0, 0, d0); err != nil {
		t.Fatal(err)
	}
	if err := cl.Write(h1, 0, d1); err != nil {
		t.Fatal(err)
	}
	// Same LBA, different devices, different data.
	g0, err := cl.Read(h0, 0, 512)
	if err != nil {
		t.Fatal(err)
	}
	g1, err := cl.Read(h1, 0, 512)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(g0, d0) || !bytes.Equal(g1, d1) {
		t.Fatal("devices share data at the same LBA")
	}
}

func TestMultiDevicePerDeviceBounds(t *testing.T) {
	_, cl := startMultiServer(t)
	h1, err := cl.Register(protocol.Registration{BestEffort: true, Writable: true, Device: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Device 1 is 8 MiB: an LBA valid on device 0 is out of range here.
	if _, err := cl.Read(h1, (16<<20)/protocol.BlockSize, 512); !errors.Is(err, client.ErrBadRequest) {
		t.Fatalf("out-of-device read: %v, want ErrBadRequest", err)
	}
}

func TestMultiDeviceUnknownDeviceRejected(t *testing.T) {
	_, cl := startMultiServer(t)
	_, err := cl.Register(protocol.Registration{BestEffort: true, Device: 7})
	if !errors.Is(err, client.ErrBadRequest) {
		t.Fatalf("register on unknown device: %v, want ErrBadRequest", err)
	}
}

func TestMultiDeviceIndependentAdmission(t *testing.T) {
	_, cl := startMultiServer(t)
	// Device 1 has only 10K tokens/s: a 5K-IOPS 80%-read tenant needs
	// 0.8*5K + 0.2*5K*20 = 24K tokens/s -> rejected there, fine on dev 0.
	lc := protocol.Registration{ReadPercent: 80, IOPS: 5_000, LatencyP95: 1_000_000}
	lc.Device = 1
	if _, err := cl.Register(lc); !errors.Is(err, client.ErrNoCapacity) {
		t.Fatalf("oversubscribed device-1 tenant: %v, want ErrNoCapacity", err)
	}
	lc.Device = 0
	if _, err := cl.Register(lc); err != nil {
		t.Fatalf("device-0 admission failed: %v", err)
	}
}

func TestMultiDeviceIndependentThrottling(t *testing.T) {
	// The throttled device 1 (10K tokens/s) must not slow device 0 down.
	_, cl := startMultiServer(t)
	h0, err := cl.Register(protocol.Registration{BestEffort: true, Writable: true, Device: 0})
	if err != nil {
		t.Fatal(err)
	}
	h1, err := cl.Register(protocol.Registration{BestEffort: true, Writable: true, Device: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Saturate device 1 with writes (20 tokens each -> 500 writes/s).
	var slowCalls []*client.Call
	for i := 0; i < 100; i++ {
		call, err := cl.GoWrite(h1, uint32(i*8), make([]byte, 4096))
		if err != nil {
			t.Fatal(err)
		}
		slowCalls = append(slowCalls, call)
	}
	// Device 0 reads proceed at full speed meanwhile.
	start := time.Now()
	for i := 0; i < 200; i++ {
		if _, err := cl.Read(h0, uint32(i*8), 4096); err != nil {
			t.Fatal(err)
		}
	}
	if el := time.Since(start); el > 2*time.Second {
		t.Fatalf("device-0 reads took %v behind device-1 congestion", el)
	}
	for _, c := range slowCalls {
		<-c.Done
		if c.Err != nil {
			t.Fatal(c.Err)
		}
	}
}

func TestMultiDeviceValidation(t *testing.T) {
	if _, err := NewMulti(Config{Addr: "127.0.0.1:0", Threads: 1}, nil); err == nil {
		t.Error("zero devices accepted")
	}
	if _, err := NewMulti(Config{Addr: "127.0.0.1:0", Threads: 1}, []DeviceConfig{
		{Backend: nil, Model: modelA(), TokenRate: 1},
	}); err == nil {
		t.Error("nil backend accepted")
	}
	if _, err := NewMulti(Config{Addr: "127.0.0.1:0", Threads: 1}, []DeviceConfig{
		{Backend: storage.NewMem(1024), Model: modelA(), TokenRate: 0},
	}); err == nil {
		t.Error("zero token rate accepted")
	}
	if _, err := NewMulti(Config{Addr: "127.0.0.1:0", Threads: 1}, []DeviceConfig{
		{Backend: storage.NewMem(1024), TokenRate: 1},
	}); err == nil {
		t.Error("invalid model accepted")
	}
}
