package server

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"github.com/reflex-go/reflex/internal/bufpool"
	"github.com/reflex-go/reflex/internal/core"
	"github.com/reflex-go/reflex/internal/obs"
	"github.com/reflex-go/reflex/internal/protocol"
	"github.com/reflex-go/reflex/internal/readcache"
	"github.com/reflex-go/reflex/internal/volume"
)

// schedBatchMax caps how many enqueued requests one select round absorbs
// before scheduling — the same 64-request adaptive batching bound the
// paper applies to NVMe submissions (§3.2.1). Draining in batches cuts
// channel operations per request while the cap keeps one round from
// starving the timer tick.
const schedBatchMax = 64

// pcore is one shared-nothing core of the server's dataplane (§3.2): it
// owns a disjoint set of tenants and their QoS schedulers (one
// core.Scheduler per device, "we run an independent instance of the
// scheduling algorithm for each device", §3.2.2), a bounded request ring,
// and the batched response flusher for every connection pinned to it.
// Connections are pinned to a core at accept time and tenants registered
// over a connection land on its core, so a request's whole path — decode,
// schedule, submit, respond, flush — touches only this core's state.
//
// Cross-core interaction is reduced to the atomic global token bucket
// (core.SharedState), the atomics-only tenant registry, and the shed
// signal's atomic indicators; no mutex is shared between cores on the
// request path.
type pcore struct {
	id     int
	srv    *Server
	scheds []*core.Scheduler // one per device

	// ring is the core's request ring: connection readers push, the core
	// loop drains in batches. Capacity is Config.RingSize.
	ring  chan enqueued
	cmdCh chan func()

	// debt is the aggregate token debt (sum of negative tenant balances,
	// in millitokens) across this core's schedulers, published after each
	// round for the load-shed signal. Written only by the core goroutine;
	// read by connection readers. Padded: every core publishes every
	// round, and a shared cache line here would put all cores back on one
	// line.
	debt obs.PaddedInt64

	// nconns / ntenants drive the accept-time and registration-time
	// placement policy (fewest-loaded core wins) and the per-core gauges.
	nconns   obs.PaddedInt64
	ntenants obs.PaddedInt64

	// Batched response flusher state: connections with queued responses
	// enqueue themselves on dirty exactly once and kick the flusher; one
	// wakeup drains every dirty connection with one writev each (batched
	// wakeups — N responses across M conns cost one park/unpark).
	fmu       sync.Mutex
	dirty     []*srvConn
	dirtySwap []*srvConn
	flushKick chan struct{}

	// Flusher telemetry (per-core batch gauges).
	flushes   obs.PaddedInt64
	flushMsgs obs.PaddedInt64
}

// do runs fn on the core goroutine (tenant register/unregister).
func (pc *pcore) do(fn func()) {
	select {
	case pc.cmdCh <- fn:
	case <-pc.srv.done:
	}
}

// enqueue hands an I/O to the core's request ring. It blocks if the core
// is severely backlogged, providing natural backpressure to the
// connection reader. A request dropped because the server is shutting
// down is failed properly — lease released, span retired, tenant
// in-flight count retired, error response attempted — instead of silently
// vanishing with its resources held (the shutdown-leak fix).
func (pc *pcore) enqueue(e enqueued) {
	select {
	case pc.ring <- e:
	case <-pc.srv.done:
		pc.srv.failDropped(e)
	}
}

// failDropped fails a request that was dropped before reaching a
// scheduler (server shutdown raced the enqueue). The payload lease is
// released (a leaked lease would pin a poisoned pool buffer forever and
// fail the zero-steady-state-alloc accounting), the span is retired into
// the trace ring, the tenant's in-flight count is decremented so barrier
// waiters and the sequencer do not hang on a request that will never
// complete, and the client gets a best-effort StatusOverloaded (its
// connection is usually mid-teardown anyway; the send path drops the
// response on a down connection).
func (s *Server) failDropped(e enqueued) {
	ctx := e.req.Context.(*reqCtx)
	ctx.releaseLease()
	reject(ctx.conn, &ctx.hdr, protocol.StatusOverloaded)
	ctx.span.Mark(obs.StageTx, s.now())
	s.m.ring.Push(ctx.span)
	s.m.rejected.Inc()
	ctx.ten.ioDone(s)
}

// loop is the core's scheduler goroutine: it drains the request ring in
// adaptive batches, runs one scheduling round per wakeup, and publishes
// the core's token debt. With busy-poll enabled it spins (yielding to the
// Go scheduler) for the configured window before parking, trading CPU for
// wakeup latency exactly like the paper's polling dataplane cores.
func (pc *pcore) loop() {
	defer pc.srv.wg.Done()
	ticker := time.NewTicker(pc.srv.cfg.SchedInterval)
	defer ticker.Stop()
	spin := pc.srv.cfg.BusyPoll
	for {
		if spin > 0 {
			if !pc.spinWait(spin) {
				pc.failRing()
				return // server shut down mid-spin
			}
		}
		select {
		case <-pc.srv.done:
			pc.failRing()
			return
		case fn := <-pc.cmdCh:
			fn()
		case e := <-pc.ring:
			pc.scheds[e.ten.device].Enqueue(e.ten.t, e.req)
			// Drain whatever else arrived, up to the adaptive batching
			// cap; one scheduling round covers the batch.
			n := 1
		drain:
			for n < schedBatchMax {
				select {
				case e := <-pc.ring:
					pc.scheds[e.ten.device].Enqueue(e.ten.t, e.req)
					n++
				default:
					break drain
				}
			}
			pc.srv.m.schedBatch.Record(int64(n))
		case <-ticker.C:
			// Periodic round: token accrual for queued requests.
		}
		now := pc.srv.now()
		for _, sched := range pc.scheds {
			sched.Schedule(now, pc.submit)
		}
		pc.publishDebt()
	}
}

// failRing fails every request still parked in the ring when the core
// loop exits at shutdown — same resource discipline as the enqueue drop
// path. A reader racing the drain can still slip one request into the
// ring afterwards; its pooled buffer is then garbage-collected (one pool
// miss, never a correctness leak), matching the response-queue
// teardown policy.
func (pc *pcore) failRing() {
	for {
		select {
		case e := <-pc.ring:
			pc.srv.failDropped(e)
		default:
			return
		}
	}
}

// spinWait polls the ring and command channel for up to d before letting
// the caller park in the blocking select. It yields to the Go scheduler
// between probes so co-scheduled goroutines (connection readers producing
// the very work it is waiting for) still run on a shared CPU. Returns
// false when the server shut down while spinning.
func (pc *pcore) spinWait(d time.Duration) bool {
	deadline := time.Now().Add(d)
	for i := 0; len(pc.ring) == 0 && len(pc.cmdCh) == 0; i++ {
		select {
		case <-pc.srv.done:
			return false
		default:
		}
		// Check the clock every few probes, not every probe.
		if i%64 == 63 && time.Now().After(deadline) {
			return true
		}
		runtime.Gosched()
	}
	return true
}

// publishDebt sums this core's tenants' negative token balances into the
// atomically readable debt gauge that feeds the shed signal. Tenant
// state is core-confined, so the walk happens here.
func (pc *pcore) publishDebt() {
	var debt core.Tokens
	for _, sched := range pc.scheds {
		lc, be := sched.Tenants()
		for _, t := range lc {
			if b := t.Tokens(); b < 0 {
				debt -= b
			}
		}
		for _, t := range be {
			if b := t.Tokens(); b < 0 {
				debt -= b
			}
		}
	}
	pc.debt.Store(int64(debt))
}

// noteDirty enqueues sc on the core's dirty list (the caller observed the
// empty→non-empty transition of sc's response queue, so sc appears at
// most once) and kicks the flusher. The cap-1 kick channel coalesces
// wakeups: a burst of responses across many connections costs one
// park/unpark of the flusher, which then drains every dirty connection.
func (pc *pcore) noteDirty(sc *srvConn) {
	pc.fmu.Lock()
	pc.dirty = append(pc.dirty, sc)
	pc.fmu.Unlock()
	select {
	case pc.flushKick <- struct{}{}:
	default:
	}
}

// flushLoop is the core's single response flusher: it absorbs the old
// per-connection writer goroutines into one goroutine per core. Each
// wakeup swaps out the dirty list and flushes every connection on it with
// batched writev calls. On shutdown it keeps draining until every
// connection pinned to this core has torn down, so a sender blocked on a
// full response queue is always released (either by a flush or by its
// connection's teardown) before the flusher exits.
func (pc *pcore) flushLoop() {
	defer pc.srv.wg.Done()
	spin := pc.srv.cfg.BusyPoll
	closing := false
	for {
		if !closing {
			if spin > 0 && !pc.spinFlushWait(spin) {
				closing = true
			}
			if !closing {
				select {
				case <-pc.srv.done:
					closing = true
				case <-pc.flushKick:
				}
			}
		} else {
			if pc.nconns.Load() == 0 {
				pc.drainDirty() // final sweep: all conns down, discard
				return
			}
			select {
			case <-pc.flushKick:
			case <-time.After(time.Millisecond):
				// Teardown kicks the flusher, but poll anyway so a lost
				// race on the final kick cannot wedge shutdown.
			}
		}
		pc.drainDirty()
	}
}

// spinFlushWait busy-polls the dirty list before parking the flusher.
// Returns false when the server shut down while spinning.
func (pc *pcore) spinFlushWait(d time.Duration) bool {
	deadline := time.Now().Add(d)
	for i := 0; ; i++ {
		pc.fmu.Lock()
		dirty := len(pc.dirty) != 0
		pc.fmu.Unlock()
		if dirty {
			return true
		}
		select {
		case <-pc.srv.done:
			return false
		default:
		}
		if i%64 == 63 && time.Now().After(deadline) {
			return true
		}
		runtime.Gosched()
	}
}

// drainDirty flushes every dirty connection until the list is empty.
func (pc *pcore) drainDirty() {
	for {
		pc.fmu.Lock()
		batch := pc.dirty
		pc.dirty = pc.dirtySwap[:0]
		pc.dirtySwap = batch
		pc.fmu.Unlock()
		if len(batch) == 0 {
			return
		}
		for i, sc := range batch {
			sc.flush()
			batch[i] = nil // drop the reference; the swap buffer is reused
		}
	}
}

// forwardWrite replicates one locally applied write to the backup
// replicator and the migration replicator (the latter filters by its
// shard window). It reports whether any forward happened — if so, finish
// is deferred until the last outstanding forward acks; if not, the
// caller acks the client immediately (standalone path, unchanged).
//
// The counter is pre-charged with one hold per potential forward plus
// one for the caller, so an ack racing the second Forward call cannot
// fire finish early: holds for forwards that never happened are released
// synchronously, and finish runs exactly once when the count hits zero
// (possibly on this goroutine when nothing forwarded).
func (pc *pcore) forwardWrite(ctx *reqCtx, resp *protocol.Header, finish func()) bool {
	var (
		remaining atomic.Int32
		stale     atomic.Bool
		failed    atomic.Uint32 // first non-OK, non-stale forward ack status
	)
	remaining.Store(3) // repl hold + migr hold + caller hold
	release := func() bool {
		if remaining.Add(-1) != 0 {
			return false
		}
		switch {
		case stale.Load():
			// Deposed mid-write: the local apply stands but the ack must
			// tell the client to fail over (it will replay at the new
			// primary).
			resp.Status = protocol.StatusStaleEpoch
		case failed.Load() != 0:
			// A replica or migration sink failed to apply the forwarded
			// copy (e.g. the destination refused the relayed write). The
			// write is NOT on every owner, so the client must not see
			// StatusOK — "acked" means "on both nodes", and a cutover that
			// makes the destination authoritative must never strand a
			// write the client believes durable. The client retries.
			resp.Status = protocol.Status(failed.Load())
		}
		finish()
		return true
	}
	fwdStart := pc.srv.now()
	onAck := func(st protocol.Status) {
		pc.srv.m.replAckLag.Record(pc.srv.now() - fwdStart)
		switch st {
		case protocol.StatusOK:
		case protocol.StatusStaleEpoch:
			stale.Store(true)
		default:
			failed.CompareAndSwap(0, uint32(st))
		}
		release()
	}
	n := 0
	if pc.srv.repl.Forward(ctx.hdr.LBA, ctx.payload, ctx.lease, ctx.span.Trace, ctx.span.ID, onAck) {
		n++
	} else {
		release()
	}
	if pc.srv.migr.Forward(ctx.hdr.LBA, ctx.payload, ctx.lease, ctx.span.Trace, ctx.span.ID, onAck) {
		n++
		// path="migrate" internal-traffic accounting happens at the
		// source: the destination sees relayed writes as ordinary client
		// writes and cannot tell them apart.
		pc.srv.m.migrPathReqs.Inc()
		pc.srv.m.migrPathBytes.Add(uint64(ctx.hdr.Count))
	} else {
		release()
	}
	if n == 0 {
		// Both holds already released; drop the caller hold without
		// firing finish — the caller's synchronous path sends the ack.
		remaining.Add(-1)
		return false
	}
	release() // caller hold: finish now runs on the last ack
	return true
}

// submit performs the admitted I/O against the backend and sends the
// response. With a configured simulated device latency, the backend
// operation itself happens after the delay — a later request really can
// overtake it, which is exactly what barriers exist to prevent.
func (pc *pcore) submit(req *core.Request) {
	ctx := req.Context.(*reqCtx)
	ctx.span.Mark(obs.StageAdmit, pc.srv.now())
	delay := pc.srv.cfg.ReadLatency
	if ctx.hdr.Opcode == protocol.OpWrite {
		delay = pc.srv.cfg.WriteLatency
	}
	if ctx.cbuf != nil {
		// Read-cache hit: served from DRAM, so the simulated device
		// latency does not apply (that gap is the point of the cache).
		delay = 0
	}
	// Injected device timeout pulse: the device goes away for a while
	// (GC stall, controller reset) but the request still completes.
	inj := pc.srv.cfg.Faults
	if stall := inj.DeviceStall(); stall > 0 {
		delay += stall
	}
	dev := pc.srv.devices[ctx.ten.device]
	m := pc.srv.m
	work := func() {
		// The request-payload lease (write path) is done once the local
		// apply and the replication forward hand-off complete below; the
		// forward retains its own reference for the backup-bound flush.
		defer ctx.releaseLease()
		resp := protocol.Header{
			Opcode: ctx.hdr.Opcode,
			Flags:  protocol.FlagResponse,
			Handle: ctx.hdr.Handle,
			Cookie: ctx.hdr.Cookie,
			LBA:    ctx.hdr.LBA,
			Count:  ctx.hdr.Count,
		}
		off := int64(ctx.hdr.LBA) * protocol.BlockSize
		var payload []byte
		var please *bufpool.Buf // response-payload lease (read path)
		// finish sends the response and retires the request; the write
		// path may defer it until the backup acks the replicated copy.
		// Ownership of please transfers to send, which releases it after
		// the flush that carries the response.
		finish := func() {
			ctx.span.Mark(obs.StageDevDone, pc.srv.now())
			ctx.conn.send(&resp, payload, please)
			now := pc.srv.now()
			ctx.span.Mark(obs.StageTx, now)
			if ctx.hdr.Opcode == protocol.OpWrite {
				m.writeLat.Record(now - req.Arrival)
			} else {
				m.readLat.Record(now - req.Arrival)
			}
			m.responses.Inc()
			m.spans.Inc()
			m.ring.Push(ctx.span)
			ctx.ten.ioDone(pc.srv)
		}
		switch {
		case ctx.cbuf != nil && ctx.hdr.Opcode == protocol.OpRead:
			// Read-cache hit: the payload was copied out of the cache at
			// dispatch (under the segment lock, after any invalidating
			// write acked). The backend — and injected device faults —
			// are never touched; the tenant was charged CacheServeCost.
			buf := ctx.cbuf.Bytes()[:ctx.hdr.Count]
			m.bytesRead.Add(uint64(len(buf)))
			if ctx.hdr.Flags&protocol.FlagChecksum != 0 {
				buf = protocol.AppendChecksum(buf)
				resp.Flags |= protocol.FlagChecksum
			}
			payload = buf
			// Ownership of the lease moves to send via please;
			// releaseLease must not see it again.
			please = ctx.cbuf
			ctx.cbuf = nil
		case inj.DeviceError():
			// Injected per-request device error: the op fails with a
			// typed, retryable status; the tenant and connection live on.
			resp.Status = protocol.StatusDeviceError
			m.errored.Inc()
		case ctx.hdr.Opcode == protocol.OpRead:
			// Pooled response frame with trailer slack: the checksum (when
			// requested) is appended in place into the same backing array —
			// no second allocation, no second copy.
			lease := bufpool.Get(int(ctx.hdr.Count) + protocol.ChecksumSize)
			buf := lease.Bytes()[:ctx.hdr.Count]
			var err error
			if ctx.ten.vol != nil {
				// Volume-addressed read: the LBA is logical; the extent map
				// walk resolves each piece against the chain (holes read as
				// zeros). No allocation — the chain walk reuses buf.
				err = ctx.ten.vol.ReadAt(buf, off)
			} else {
				_, err = dev.backend.ReadAt(buf, off)
			}
			if err != nil {
				lease.Release()
				resp.Status = protocol.StatusDeviceError
				m.errored.Inc()
			} else {
				m.bytesRead.Add(uint64(len(buf)))
				if ctx.fill {
					commit := true
					if ctx.ten.vol != nil {
						// A CoW break between dispatch and here moves the
						// logical block to a fresh extent without ever
						// writing the old physical block, so the epoch
						// fence alone cannot catch the remap. Re-verify
						// the translation; if the mapping moved, drop the
						// fill. (Reuse of the old extent always rewrites
						// its full image first, which the epoch fence DOES
						// catch.)
						poff, ok := ctx.ten.vol.Translate(off, len(buf))
						commit = ok && readcache.Key(ctx.ten.device,
							uint64(poff)/readcache.BlockSize) == ctx.fillKey
					}
					// Admitted miss on an aligned 4KB read: buf is the
					// whole block image — commit it before anything
					// (checksum trailer, injected corruption) touches the
					// wire copy. The fence epoch drops the fill if a write
					// invalidated the block since dispatch.
					if commit {
						pc.srv.cache.CommitFill(ctx.fillKey, ctx.fillEpoch, buf)
					}
				}
				if ctx.hdr.Flags&protocol.FlagChecksum != 0 {
					// Seal first, then let the injector corrupt the wire
					// image: the flip is exactly what the client-side
					// verifier must catch.
					buf = protocol.AppendChecksum(buf)
					resp.Flags |= protocol.FlagChecksum
				}
				inj.CorruptPayload(buf)
				payload = buf
				please = lease
			}
		case ctx.hdr.Opcode == protocol.OpWrite:
			dev.lastWrite.Store(pc.srv.now())
			var err error
			if ctx.ten.vol != nil {
				// Volume-addressed write: first touch of an extent allocates
				// it (thin provisioning); a write below a snapshot breaks
				// CoW. Steady-state overwrites hit the in-place fast path.
				err = ctx.ten.vol.WriteAt(ctx.payload, off)
			} else {
				_, err = dev.backend.WriteAt(ctx.payload, off)
			}
			if err != nil {
				if err == volume.ErrNoSpace {
					// Thin pool exhausted: typed, retryable after a trim or
					// delete — not a device fault.
					resp.Status = protocol.StatusNoCapacity
				} else {
					resp.Status = protocol.StatusDeviceError
				}
				m.errored.Inc()
			} else {
				m.bytesWrite.Add(uint64(ctx.hdr.Count))
				// Replication: forward the acked write to the backup (and,
				// during a live shard move, to the migration sink) and
				// defer the client ack until every forward acks — this is
				// what makes "acked" mean "survives a primary kill" and
				// "survives the cutover". Covers device 0 (the clustered
				// device).
				// Volume writes are not raw-LBA replicated: the logical LBA
				// is meaningless on the backup's device, and volume DR is
				// the snapshot-diff stream (DESIGN.md §18).
				if dev.idx == 0 && ctx.ten.vol == nil && pc.forwardWrite(ctx, &resp, finish) {
					return // finish runs on the last forward's ack
				}
			}
		}
		finish()
	}
	// Submission happens now; a configured latency models device service
	// time, so the Submit→DevDone span delta carries it.
	ctx.span.Mark(obs.StageSubmit, pc.srv.now())
	if delay > 0 {
		time.AfterFunc(delay, work)
		return
	}
	work()
}
