package server

import "sync/atomic"

// tenantTable is the server's atomics-only tenant registry: a
// handle-indexed slot table whose hot-path operation — lookup on every
// I/O — is a single atomic load. Registration claims a free slot with a
// CAS probe and unregistration swaps the slot back to nil, so the request
// path never takes a lock to resolve a handle (the old map + server
// mutex pairing was the last shared lock on the per-core request path).
//
// Handle 0 is reserved as invalid on the wire, so slot 0 is never
// claimed. The table is 2^16 pointers (512 KiB) — the price of O(1)
// lockless lookup over the full handle space.
type tenantTable struct {
	slots [handleSpace]atomic.Pointer[stenant]
	live  atomic.Int64
	// next is the allocation cursor. Claims probe forward from it, so
	// sequential registrations get sequential handles and a wrapped
	// cursor colliding with a long-lived tenant probes past it instead of
	// refusing (the handle-wrap starvation fix: a server with tenant
	// churn must only report exhaustion when all 65535 handles are truly
	// live).
	next atomic.Uint32
}

const handleSpace = 1 << 16

// reservedSlot marks a handle claimed by an in-flight registration:
// the slot is taken (claims probe past it) but the tenant is not yet
// visible (lookups miss) until publish stores the real entry.
var reservedSlot = &stenant{}

// lookup resolves a handle with one atomic load. Safe from any goroutine.
func (tt *tenantTable) lookup(h uint16) (*stenant, bool) {
	if h == 0 {
		return nil, false
	}
	st := tt.slots[h].Load()
	if st == nil || st == reservedSlot {
		return nil, false
	}
	return st, true
}

// claim reserves a free handle, probing forward from the allocation
// cursor through the entire handle space (bounded full scan: 65536
// cursor increments visit every handle exactly once, skipping the
// reserved handle 0). Returns false only when every live handle is
// taken — true 65K-tenant exhaustion, not a wrap collision.
func (tt *tenantTable) claim() (uint16, bool) {
	for i := 0; i < handleSpace; i++ {
		h := uint16(tt.next.Add(1))
		if h == 0 {
			continue // 0 is reserved as invalid on the wire
		}
		if tt.slots[h].CompareAndSwap(nil, reservedSlot) {
			return h, true
		}
	}
	return 0, false
}

// publish makes a claimed handle's tenant visible to lookups.
func (tt *tenantTable) publish(h uint16, st *stenant) {
	tt.slots[h].Store(st)
	tt.live.Add(1)
}

// unclaim releases a claimed-but-never-published handle (registration
// failed after the claim).
func (tt *tenantTable) unclaim(h uint16) {
	tt.slots[h].Store(nil)
}

// remove atomically takes a live tenant out of the table, returning it,
// or nil when the handle is not live. The CAS makes concurrent
// unregistrations race-free: exactly one caller wins the removal and
// performs the teardown accounting.
func (tt *tenantTable) remove(h uint16) *stenant {
	if h == 0 {
		return nil
	}
	for {
		st := tt.slots[h].Load()
		if st == nil || st == reservedSlot {
			return nil
		}
		if tt.slots[h].CompareAndSwap(st, nil) {
			tt.live.Add(-1)
			return st
		}
	}
}
