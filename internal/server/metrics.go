package server

import (
	"hash/fnv"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"github.com/reflex-go/reflex/internal/bufpool"
	"github.com/reflex-go/reflex/internal/core"
	"github.com/reflex-go/reflex/internal/obs"
	"github.com/reflex-go/reflex/internal/protocol"
)

// metrics is the real server's telemetry: atomic counters and histograms
// on the request path (allocation-free, safe across connection reader
// goroutines and scheduler threads), read-side gauges over atomics and
// channel lengths, plus the per-request span trace ring.
//
// Scheduler and tenant internals are goroutine-confined to their thread,
// so none of the functions registered here touch them; cross-goroutine
// stats reads go through atomics only — this is what keeps the stats path
// race-free under `go test -race`.
type metrics struct {
	reg  *obs.Registry
	ring *obs.Ring

	reads      *obs.Counter
	writes     *obs.Counter
	responses  *obs.Counter
	rejected   *obs.Counter
	errored    *obs.Counter
	barriers   *obs.Counter
	registered *obs.Counter
	removed    *obs.Counter
	bytesRead  *obs.Counter
	bytesWrite *obs.Counter

	readLat  *obs.Histogram
	writeLat *obs.Histogram

	spans *obs.Counter  // spans recorded into the ring
	seq   atomic.Uint64 // span ID allocator
	// nodeBase is folded into every span ID so two nodes' per-process
	// sequences (both starting near zero) cannot mint the same span ID —
	// cross-node stitching links hops by span identity, so a collision
	// would graft one request's hop onto another request's tree.
	nodeBase uint64
	// journal is the structured cluster event log served at /events.
	journal *obs.Journal

	// Failure-hardening counters (the chaos-soak acceptance trio).
	faults *obs.Counter // faults injected by the configured injector
	shed   *obs.Counter // best-effort requests refused under overload
	reaped *obs.Counter // connections reaped on idle timeout

	// Cluster robustness counters (DESIGN.md §11).
	checksumErrs  *obs.Counter // writes refused on CRC32C mismatch
	staleRejects  *obs.Counter // writes refused on epoch fence
	promotions    *obs.Counter // successful promotions to primary
	fencings      *obs.Counter // times this server was deposed
	replForwarded *obs.Counter // writes forwarded to the backup
	replAcked     *obs.Counter // backup acks received
	replApplied   *obs.Counter // replicated writes applied (backup side)
	replJoins     *obs.Counter // backup join sessions accepted

	// Sharding counters (DESIGN.md §13).
	wrongShard    *obs.Counter // I/Os refused with StatusWrongShard (redirects)
	shardInstalls *obs.Counter // shard-map installs adopted
	shardMoves    *obs.Counter // shards whose owner changed across installs
	migrForwarded *obs.Counter // writes forwarded to a migration sink
	migrAcked     *obs.Counter // migration sink acks received
	migrJoins     *obs.Counter // ranged migration joins accepted

	// Volume-layer counters (DESIGN.md §18).
	volOps         *obs.Counter // volume lifecycle ops (create/delete/snap/clone/stream)
	volStreamBytes *obs.Counter // snapshot-diff stream bytes acked by receivers
	trims          *obs.Counter // OpTrim requests served

	// Cluster-internal traffic, labeled by path so fleet aggregation can
	// separate client load from replication applies and migration-relay
	// forwards (DESIGN.md §14).
	replPathReqs  *obs.Counter   // srv_requests_total{op=write,path=replicate}
	replPathBytes *obs.Counter   // srv_bytes_total{op=write,path=replicate}
	migrPathReqs  *obs.Counter   // srv_requests_total{op=write,path=migrate}
	migrPathBytes *obs.Counter   // srv_bytes_total{op=write,path=migrate}
	replAckLag    *obs.Histogram // primary->replica forward ack lag

	// Per-shard request counters (srv_shard_requests_total{shard,op}),
	// registered lazily as shard maps install. The slice is swapped
	// atomically so the request path reads it without a lock.
	shardMu  sync.Mutex
	shardOps atomic.Value // []*shardOpCounts

	// Per-tenant SLO burn gauges (srv_tenant_slo_burn{tenant}), registered
	// once per tenant ID on first registration; the gauge func reads live
	// tenant state so ID reuse after unregister stays correct.
	burnMu   sync.Mutex
	burnSeen map[int]bool

	// Write lifetime hints carried on the wire (DESIGN.md §17), indexed by
	// protocol.HintNone/HintShort/HintLong. These count what clients
	// declared, whether or not the backend does placement with them.
	hintWrites [3]*obs.Counter

	// Hot-path batching telemetry (DESIGN.md §12): how well the adaptive
	// wire coalescer and the scheduler batch drain amortize per-message
	// costs. flushBatch records messages per writev flush; schedBatch
	// records requests absorbed per scheduling round.
	flushes    *obs.Counter   // wire flushes (writev or single-write) issued
	flushBatch *obs.Histogram // messages coalesced per wire flush
	schedBatch *obs.Histogram // requests drained per scheduler round
}

// shardOpCounts is one shard's request counters, incremented with atomics
// on the request path and read by lazily registered CounterFuncs.
type shardOpCounts struct {
	reads  atomic.Uint64
	writes atomic.Uint64
}

// spanID allocates a cluster-unique span ID: the node-name hash in the
// high bits, the per-process sequence in the low 40 (a trillion requests
// before wrap — and even then IDs only matter within a trace's lifetime
// in the bounded span rings).
func (m *metrics) spanID() uint64 {
	return m.nodeBase | (m.seq.Add(1) & (1<<40 - 1))
}

// ensureShardSlots grows the per-shard counter table to n shards,
// registering srv_shard_requests_total{shard,op} for each new slot.
// Called from InstallShardMap; idempotent and monotonic (slots are never
// removed — a shrunk map's stale slots just stop moving).
func (m *metrics) ensureShardSlots(n int) {
	if n <= 0 {
		return
	}
	m.shardMu.Lock()
	defer m.shardMu.Unlock()
	cur, _ := m.shardOps.Load().([]*shardOpCounts)
	if len(cur) >= n {
		return
	}
	grown := make([]*shardOpCounts, n)
	copy(grown, cur)
	for i := len(cur); i < n; i++ {
		sc := &shardOpCounts{}
		grown[i] = sc
		lbl := obs.L("shard", strconv.Itoa(i))
		m.reg.CounterFunc("srv_shard_requests_total", "I/O requests received per shard",
			func() float64 { return float64(sc.reads.Load()) }, lbl, obs.L("op", "read"))
		m.reg.CounterFunc("srv_shard_requests_total", "",
			func() float64 { return float64(sc.writes.Load()) }, lbl, obs.L("op", "write"))
	}
	m.shardOps.Store(grown)
}

// noteShardOp bumps one shard's request counter (lock-free: the slot
// table is read through an atomic.Value).
func (m *metrics) noteShardOp(shard int, write bool) {
	ops, _ := m.shardOps.Load().([]*shardOpCounts)
	if shard < 0 || shard >= len(ops) {
		return
	}
	if write {
		ops[shard].writes.Add(1)
	} else {
		ops[shard].reads.Add(1)
	}
}

// burnWindow is how many recent spans the SLO burn gauge scans per read.
const burnWindow = 512

// ensureTenantBurn registers srv_tenant_slo_burn{tenant=id} on the first
// registration of that tenant ID. The gauge computes the tenant's SLO
// error-budget burn rate on demand: the fraction of its spans in the
// recent ring window exceeding its p95 latency SLO, divided by the 5%
// budget (1.0 = burning the budget exactly, >1 = violating the SLO).
func (m *metrics) ensureTenantBurn(s *Server, id int) {
	m.burnMu.Lock()
	defer m.burnMu.Unlock()
	if m.burnSeen[id] {
		return
	}
	m.burnSeen[id] = true
	m.reg.GaugeFunc("srv_tenant_slo_burn", "SLO error-budget burn rate (frac over p95 SLO / 5% budget)",
		func() float64 {
			slo := s.tenantSLO(id)
			if slo <= 0 {
				return 0
			}
			var n, over int
			for _, sp := range m.ring.Recent(burnWindow) {
				if sp.Tenant != id {
					continue
				}
				n++
				if sp.Total() > slo {
					over++
				}
			}
			if n == 0 {
				return 0
			}
			return float64(over) / float64(n) / 0.05
		}, obs.L("tenant", strconv.Itoa(id)))
}

// tenantSLO returns the tenant's p95 latency SLO in nanoseconds (0 for
// best-effort, unknown or unregistered tenants). Lock-free: one atomic
// registry lookup.
func (s *Server) tenantSLO(id int) int64 {
	st, ok := s.tenants.lookup(uint16(id))
	if !ok || st.t.Class != core.LatencyCritical {
		return 0
	}
	return st.t.SLO.LatencyP95
}

func newMetrics(s *Server) *metrics {
	reg := obs.NewRegistry()
	reg.SetClock(s.now)
	h := fnv.New64a()
	h.Write([]byte(s.cfg.NodeName))
	m := &metrics{
		reg:      reg,
		ring:     obs.NewRing(4096, 16),
		journal:  obs.NewJournal(1024),
		nodeBase: h.Sum64() << 40,
		burnSeen: make(map[int]bool),
	}
	m.reads = reg.Counter("srv_requests_total", "I/O requests received", obs.L("op", "read"))
	m.writes = reg.Counter("srv_requests_total", "", obs.L("op", "write"))
	m.responses = reg.Counter("srv_responses_total", "I/O responses sent")
	m.rejected = reg.Counter("srv_rejected_total", "requests rejected before scheduling (ACL, bad request)")
	m.errored = reg.Counter("srv_errors_total", "backend I/O errors")
	m.barriers = reg.Counter("srv_barriers_total", "barrier operations received")
	m.registered = reg.Counter("srv_tenants_registered_total", "successful tenant registrations")
	m.removed = reg.Counter("srv_tenants_unregistered_total", "tenant unregistrations")
	m.bytesRead = reg.Counter("srv_bytes_total", "payload bytes served", obs.L("op", "read"))
	m.bytesWrite = reg.Counter("srv_bytes_total", "", obs.L("op", "write"))
	m.readLat = reg.Histogram("srv_request_latency_ns", "arrival-to-response latency", obs.L("op", "read"))
	m.writeLat = reg.Histogram("srv_request_latency_ns", "", obs.L("op", "write"))
	m.spans = reg.Counter("srv_spans_total", "request spans recorded")
	if inj := s.cfg.Faults; inj != nil {
		m.faults = reg.CounterFunc("faults_injected", "faults injected by the chaos injector",
			func() float64 { return float64(inj.Injected()) })
	} else {
		m.faults = reg.Counter("faults_injected", "faults injected by the chaos injector")
	}
	m.shed = reg.Counter("requests_shed", "best-effort requests refused under overload (LC is never shed)")
	m.reaped = reg.Counter("conns_reaped", "connections reaped on idle timeout")
	m.checksumErrs = reg.Counter("checksum_errors", "payload CRC32C mismatches detected")
	m.staleRejects = reg.Counter("stale_epoch_rejects", "writes refused by the epoch fence")
	m.promotions = reg.Counter("cluster_promotions", "successful promotions to primary")
	m.fencings = reg.Counter("cluster_fencings", "times this server was deposed")
	m.replForwarded = reg.Counter("repl_forwarded", "acked writes forwarded to the backup")
	m.replAcked = reg.Counter("repl_acked", "backup replication acks received")
	m.replApplied = reg.Counter("repl_applied", "replicated writes applied (backup role)")
	m.replJoins = reg.Counter("repl_joins", "backup join sessions accepted")
	m.volOps = reg.Counter("vol_ops", "volume lifecycle operations (create/delete/snapshot/clone/stream)")
	m.volStreamBytes = reg.Counter("vol_stream_bytes", "snapshot-diff stream bytes acked by receivers")
	m.trims = reg.Counter("trims", "OpTrim discard requests served")
	m.wrongShard = reg.Counter("wrong_shard_redirects", "I/Os refused with StatusWrongShard (stale client routing)")
	m.shardInstalls = reg.Counter("shard_map_installs", "shard-map installs adopted over OpShardMap")
	m.shardMoves = reg.Counter("shard_moves", "shards whose authoritative owner changed across map installs")
	m.migrForwarded = reg.Counter("migr_forwarded", "acked writes forwarded to a migration sink")
	m.migrAcked = reg.Counter("migr_acked", "migration sink acks received")
	m.migrJoins = reg.Counter("migr_joins", "ranged migration join sessions accepted")
	m.replPathReqs = reg.Counter("srv_requests_total", "", obs.L("op", "write"), obs.L("path", "replicate"))
	m.replPathBytes = reg.Counter("srv_bytes_total", "", obs.L("op", "write"), obs.L("path", "replicate"))
	m.migrPathReqs = reg.Counter("srv_requests_total", "", obs.L("op", "write"), obs.L("path", "migrate"))
	m.migrPathBytes = reg.Counter("srv_bytes_total", "", obs.L("op", "write"), obs.L("path", "migrate"))
	m.replAckLag = reg.Histogram("repl_ack_lag_ns", "forward-to-ack lag of replication/migration forwards")
	reg.GaugeFunc("migr_pending", "migration forwards awaiting a sink ack (drain signal)",
		func() float64 { return float64(s.migr.Pending()) })
	reg.GaugeFunc("shard_map_version", "version of the installed shard map (0 = none)",
		func() float64 { return float64(s.ShardMapVersion()) })
	m.hintWrites[protocol.HintNone] = reg.Counter("srv_hinted_writes_total", "writes by declared lifetime hint", obs.L("hint", "none"))
	m.hintWrites[protocol.HintShort] = reg.Counter("srv_hinted_writes_total", "", obs.L("hint", "short"))
	m.hintWrites[protocol.HintLong] = reg.Counter("srv_hinted_writes_total", "", obs.L("hint", "long"))
	if s.cache != nil {
		s.cache.RegisterMetrics(reg)
	}
	m.flushes = reg.Counter("srv_wire_flushes_total", "wire flushes issued by connection writers")
	m.flushBatch = reg.Histogram("srv_flush_batch_msgs", "responses coalesced per wire flush")
	m.schedBatch = reg.Histogram("srv_sched_batch", "requests drained per scheduler round")
	for c := 0; c < bufpool.NumClasses; c++ {
		c := c
		lbl := obs.L("class", strconv.Itoa(bufpool.ClassSize(c)))
		reg.CounterFunc("bufpool_hits", "pooled buffer gets served from the pool",
			func() float64 { return float64(bufpool.Stats()[c].Hits) }, lbl)
		reg.CounterFunc("bufpool_misses", "pooled buffer gets that allocated",
			func() float64 { return float64(bufpool.Stats()[c].Misses) }, lbl)
	}
	reg.CounterFunc("bufpool_unpooled", "oversize buffer gets that bypassed the pool",
		func() float64 { return float64(bufpool.Unpooled()) })
	reg.GaugeFunc("cluster_epoch", "current cluster epoch",
		func() float64 { return float64(s.ClusterEpoch()) })
	reg.GaugeFunc("cluster_fenced", "1 when deposed (writes refused)",
		func() float64 {
			if s.fenced.Load() {
				return 1
			}
			return 0
		})
	reg.GaugeFunc("cluster_backup_role", "1 while serving as replication backup",
		func() float64 {
			if s.backupRole.Load() {
				return 1
			}
			return 0
		})

	reg.GaugeFunc("srv_tenants", "live tenants", func() float64 {
		return float64(s.tenants.live.Load())
	})
	reg.GaugeFunc("srv_conns", "live TCP connections", func() float64 {
		return float64(s.connCount.Load())
	})
	for _, pc := range s.cores {
		pc := pc
		lbl := obs.L("core", strconv.Itoa(pc.id))
		reg.GaugeFunc("srv_core_queue_depth", "requests waiting in the core's request ring",
			func() float64 { return float64(len(pc.ring)) }, lbl)
		reg.GaugeFunc("srv_core_conns", "connections pinned to the core",
			func() float64 { return float64(pc.nconns.Load()) }, lbl)
		reg.GaugeFunc("srv_core_tenants", "tenants pinned to the core",
			func() float64 { return float64(pc.ntenants.Load()) }, lbl)
		reg.GaugeFunc("srv_core_token_debt", "aggregate token debt published by the core (mt)",
			func() float64 { return float64(pc.debt.Load()) }, lbl)
		reg.CounterFunc("srv_core_flushes_total", "wire flushes issued by the core's flusher",
			func() float64 { return float64(pc.flushes.Load()) }, lbl)
		reg.CounterFunc("srv_core_flush_msgs_total", "responses flushed by the core's flusher",
			func() float64 { return float64(pc.flushMsgs.Load()) }, lbl)
	}
	for _, d := range s.devices {
		lbl := obs.L("device", strconv.Itoa(d.idx))
		core.RegisterSharedMetrics(reg, d.shared, lbl)
		d := d
		reg.GaugeFunc("srv_device_readonly_mode", "1 when the cost model is in read-only fast mode",
			func() float64 {
				if s.readOnlyProbe(d) {
					return 1
				}
				return 0
			}, lbl)
	}
	return m
}

// Metrics returns the server's telemetry registry. Every exported value is
// safe to scrape from any goroutine while the server runs.
func (s *Server) Metrics() *obs.Registry { return s.m.reg }

// TraceRing returns the per-request span ring and slow-request log.
func (s *Server) TraceRing() *obs.Ring { return s.m.ring }

// EventJournal exposes the node's structured event journal for HTTP
// mounting (/events) and tests.
func (s *Server) EventJournal() *obs.Journal { return s.m.journal }

// StartSampler begins periodic wall-clock sampling of SLO-relevant server
// state: per-op interval p95, throughput, queue depths and per-device
// token-bucket levels. The returned stop function halts the ticker (taking
// one final sample) and returns the series; it is safe to call once.
func (s *Server) StartSampler(period time.Duration) (*obs.Series, func()) {
	series := obs.NewSeries("server")
	series.AddColumn("read_p95_us", obs.WindowedHistQuantile(s.m.readLat, 0.95))
	series.AddColumn("write_p95_us", obs.WindowedHistQuantile(s.m.writeLat, 0.95))
	series.AddColumn("iops", obs.WindowedRate(s.m.responses.Value, s.now))
	series.AddColumn("requests_total", func() float64 {
		return s.m.reads.Value() + s.m.writes.Value()
	})
	for _, pc := range s.cores {
		pc := pc
		series.AddColumn("q"+strconv.Itoa(pc.id),
			func() float64 { return float64(len(pc.ring)) })
	}
	for _, d := range s.devices {
		d := d
		series.AddColumn("bucket"+strconv.Itoa(d.idx)+"_tokens",
			func() float64 { return float64(d.shared.Bucket.Tokens()) })
	}
	stop := series.StartTicker(period, s.now)
	return series, stop
}
