package server

import (
	"sync/atomic"
	"time"

	"github.com/reflex-go/reflex/internal/bufpool"
	"github.com/reflex-go/reflex/internal/core"
	"github.com/reflex-go/reflex/internal/obs"
	"github.com/reflex-go/reflex/internal/protocol"
)

// schedBatchMax caps how many enqueued requests one select round absorbs
// before scheduling — the same 64-request adaptive batching bound the
// paper applies to NVMe submissions (§3.2.1). Draining in batches cuts
// channel operations per request while the cap keeps one round from
// starving the timer tick.
const schedBatchMax = 64

// sthread owns one QoS scheduler instance per device ("we run an
// independent instance of the scheduling algorithm for each device",
// §3.2.2). All scheduler and tenant state is confined to the thread
// goroutine; connections communicate through channels, mirroring the
// paper's share-nothing threads whose only cross-thread interaction is the
// atomic global token bucket.
type sthread struct {
	id     int
	srv    *Server
	scheds []*core.Scheduler // one per device
	reqCh  chan enqueued
	cmdCh  chan func()

	// debt is the aggregate token debt (sum of negative tenant balances,
	// in millitokens) across this thread's schedulers, published after
	// each round for the load-shed signal. Written only by the thread
	// goroutine; read by connection readers.
	debt atomic.Int64
}

// do runs fn on the thread goroutine (tenant register/unregister).
func (th *sthread) do(fn func()) {
	select {
	case th.cmdCh <- fn:
	case <-th.srv.done:
	}
}

// enqueue hands an I/O to the thread. It blocks if the thread is severely
// backlogged, providing natural backpressure to the connection reader.
func (th *sthread) enqueue(e enqueued) {
	select {
	case th.reqCh <- e:
	case <-th.srv.done:
	}
}

func (th *sthread) loop() {
	defer th.srv.wg.Done()
	ticker := time.NewTicker(th.srv.cfg.SchedInterval)
	defer ticker.Stop()
	for {
		select {
		case <-th.srv.done:
			return
		case fn := <-th.cmdCh:
			fn()
		case e := <-th.reqCh:
			th.scheds[e.ten.device].Enqueue(e.ten.t, e.req)
			// Drain whatever else arrived, up to the adaptive batching
			// cap; one scheduling round covers the batch.
			n := 1
		drain:
			for n < schedBatchMax {
				select {
				case e := <-th.reqCh:
					th.scheds[e.ten.device].Enqueue(e.ten.t, e.req)
					n++
				default:
					break drain
				}
			}
			th.srv.m.schedBatch.Record(int64(n))
		case <-ticker.C:
			// Periodic round: token accrual for queued requests.
		}
		now := th.srv.now()
		for _, sched := range th.scheds {
			sched.Schedule(now, th.submit)
		}
		th.publishDebt()
	}
}

// publishDebt sums this thread's tenants' negative token balances into
// the atomically readable debt gauge that feeds the shed signal. Tenant
// state is thread-confined, so the walk happens here.
func (th *sthread) publishDebt() {
	var debt core.Tokens
	for _, sched := range th.scheds {
		lc, be := sched.Tenants()
		for _, t := range lc {
			if b := t.Tokens(); b < 0 {
				debt -= b
			}
		}
		for _, t := range be {
			if b := t.Tokens(); b < 0 {
				debt -= b
			}
		}
	}
	th.debt.Store(int64(debt))
}

// forwardWrite replicates one locally applied write to the backup
// replicator and the migration replicator (the latter filters by its
// shard window). It reports whether any forward happened — if so, finish
// is deferred until the last outstanding forward acks; if not, the
// caller acks the client immediately (standalone path, unchanged).
//
// The counter is pre-charged with one hold per potential forward plus
// one for the caller, so an ack racing the second Forward call cannot
// fire finish early: holds for forwards that never happened are released
// synchronously, and finish runs exactly once when the count hits zero
// (possibly on this goroutine when nothing forwarded).
func (th *sthread) forwardWrite(ctx *reqCtx, resp *protocol.Header, finish func()) bool {
	var (
		remaining atomic.Int32
		stale     atomic.Bool
		failed    atomic.Uint32 // first non-OK, non-stale forward ack status
	)
	remaining.Store(3) // repl hold + migr hold + caller hold
	release := func() bool {
		if remaining.Add(-1) != 0 {
			return false
		}
		switch {
		case stale.Load():
			// Deposed mid-write: the local apply stands but the ack must
			// tell the client to fail over (it will replay at the new
			// primary).
			resp.Status = protocol.StatusStaleEpoch
		case failed.Load() != 0:
			// A replica or migration sink failed to apply the forwarded
			// copy (e.g. the destination refused the relayed write). The
			// write is NOT on every owner, so the client must not see
			// StatusOK — "acked" means "on both nodes", and a cutover that
			// makes the destination authoritative must never strand a
			// write the client believes durable. The client retries.
			resp.Status = protocol.Status(failed.Load())
		}
		finish()
		return true
	}
	fwdStart := th.srv.now()
	onAck := func(st protocol.Status) {
		th.srv.m.replAckLag.Record(th.srv.now() - fwdStart)
		switch st {
		case protocol.StatusOK:
		case protocol.StatusStaleEpoch:
			stale.Store(true)
		default:
			failed.CompareAndSwap(0, uint32(st))
		}
		release()
	}
	n := 0
	if th.srv.repl.Forward(ctx.hdr.LBA, ctx.payload, ctx.lease, ctx.span.Trace, ctx.span.ID, onAck) {
		n++
	} else {
		release()
	}
	if th.srv.migr.Forward(ctx.hdr.LBA, ctx.payload, ctx.lease, ctx.span.Trace, ctx.span.ID, onAck) {
		n++
		// path="migrate" internal-traffic accounting happens at the
		// source: the destination sees relayed writes as ordinary client
		// writes and cannot tell them apart.
		th.srv.m.migrPathReqs.Inc()
		th.srv.m.migrPathBytes.Add(uint64(ctx.hdr.Count))
	} else {
		release()
	}
	if n == 0 {
		// Both holds already released; drop the caller hold without
		// firing finish — the caller's synchronous path sends the ack.
		remaining.Add(-1)
		return false
	}
	release() // caller hold: finish now runs on the last ack
	return true
}

// submit performs the admitted I/O against the backend and sends the
// response. With a configured simulated device latency, the backend
// operation itself happens after the delay — a later request really can
// overtake it, which is exactly what barriers exist to prevent.
func (th *sthread) submit(req *core.Request) {
	ctx := req.Context.(*reqCtx)
	ctx.span.Mark(obs.StageAdmit, th.srv.now())
	delay := th.srv.cfg.ReadLatency
	if ctx.hdr.Opcode == protocol.OpWrite {
		delay = th.srv.cfg.WriteLatency
	}
	// Injected device timeout pulse: the device goes away for a while
	// (GC stall, controller reset) but the request still completes.
	inj := th.srv.cfg.Faults
	if stall := inj.DeviceStall(); stall > 0 {
		delay += stall
	}
	dev := th.srv.devices[ctx.ten.device]
	m := th.srv.m
	work := func() {
		// The request-payload lease (write path) is done once the local
		// apply and the replication forward hand-off complete below; the
		// forward retains its own reference for the backup-bound flush.
		defer ctx.releaseLease()
		resp := protocol.Header{
			Opcode: ctx.hdr.Opcode,
			Flags:  protocol.FlagResponse,
			Handle: ctx.hdr.Handle,
			Cookie: ctx.hdr.Cookie,
			LBA:    ctx.hdr.LBA,
			Count:  ctx.hdr.Count,
		}
		off := int64(ctx.hdr.LBA) * protocol.BlockSize
		var payload []byte
		var please *bufpool.Buf // response-payload lease (read path)
		// finish sends the response and retires the request; the write
		// path may defer it until the backup acks the replicated copy.
		// Ownership of please transfers to send, which releases it after
		// the flush that carries the response.
		finish := func() {
			ctx.span.Mark(obs.StageDevDone, th.srv.now())
			ctx.conn.send(&resp, payload, please)
			now := th.srv.now()
			ctx.span.Mark(obs.StageTx, now)
			if ctx.hdr.Opcode == protocol.OpWrite {
				m.writeLat.Record(now - req.Arrival)
			} else {
				m.readLat.Record(now - req.Arrival)
			}
			m.responses.Inc()
			m.spans.Inc()
			m.ring.Push(ctx.span)
			ctx.ten.ioDone(th.srv)
		}
		switch {
		case inj.DeviceError():
			// Injected per-request device error: the op fails with a
			// typed, retryable status; the tenant and connection live on.
			resp.Status = protocol.StatusDeviceError
			m.errored.Inc()
		case ctx.hdr.Opcode == protocol.OpRead:
			// Pooled response frame with trailer slack: the checksum (when
			// requested) is appended in place into the same backing array —
			// no second allocation, no second copy.
			lease := bufpool.Get(int(ctx.hdr.Count) + protocol.ChecksumSize)
			buf := lease.Bytes()[:ctx.hdr.Count]
			if _, err := dev.backend.ReadAt(buf, off); err != nil {
				lease.Release()
				resp.Status = protocol.StatusDeviceError
				m.errored.Inc()
			} else {
				m.bytesRead.Add(uint64(len(buf)))
				if ctx.hdr.Flags&protocol.FlagChecksum != 0 {
					// Seal first, then let the injector corrupt the wire
					// image: the flip is exactly what the client-side
					// verifier must catch.
					buf = protocol.AppendChecksum(buf)
					resp.Flags |= protocol.FlagChecksum
				}
				inj.CorruptPayload(buf)
				payload = buf
				please = lease
			}
		case ctx.hdr.Opcode == protocol.OpWrite:
			dev.lastWrite.Store(th.srv.now())
			if _, err := dev.backend.WriteAt(ctx.payload, off); err != nil {
				resp.Status = protocol.StatusDeviceError
				m.errored.Inc()
			} else {
				m.bytesWrite.Add(uint64(ctx.hdr.Count))
				// Replication: forward the acked write to the backup (and,
				// during a live shard move, to the migration sink) and
				// defer the client ack until every forward acks — this is
				// what makes "acked" mean "survives a primary kill" and
				// "survives the cutover". Covers device 0 (the clustered
				// device).
				if dev.idx == 0 && th.forwardWrite(ctx, &resp, finish) {
					return // finish runs on the last forward's ack
				}
			}
		}
		finish()
	}
	// Submission happens now; a configured latency models device service
	// time, so the Submit→DevDone span delta carries it.
	ctx.span.Mark(obs.StageSubmit, th.srv.now())
	if delay > 0 {
		time.AfterFunc(delay, work)
		return
	}
	work()
}
