// Package server implements a real TCP/UDP ReFlex server: the
// production-path counterpart of the simulated dataplane. It speaks the
// internal/protocol wire format, enforces per-tenant ACLs (§4.1 "Security
// model"), supports ordering barriers, and runs the same QoS scheduler as
// the simulator (internal/core) on a set of scheduler threads, one tenant
// per thread (§4.1). A server may front several devices; each device gets
// an independent scheduler instance with its own token accounting
// (§3.2.2).
//
// Go's runtime cannot dedicate spinning cores with exclusive NIC/NVMe
// queues the way the paper's IX dataplane does, so this server is the
// faithful *functional* implementation — protocol, tenants, ACLs, token
// accounting, rate limiting — while the performance experiments run on the
// simulated dataplane (see DESIGN.md §1).
package server

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"github.com/reflex-go/reflex/internal/bufpool"
	"github.com/reflex-go/reflex/internal/cluster"
	"github.com/reflex-go/reflex/internal/core"
	"github.com/reflex-go/reflex/internal/ctrl"
	"github.com/reflex-go/reflex/internal/faults"
	"github.com/reflex-go/reflex/internal/obs"
	"github.com/reflex-go/reflex/internal/protocol"
	"github.com/reflex-go/reflex/internal/storage"
)

// DeviceConfig describes one flash device behind the server.
type DeviceConfig struct {
	// Backend stores the device's bytes.
	Backend storage.Backend
	// Model is the device's calibrated cost model.
	Model core.CostModel
	// TokenRate is the token generation rate (mt/s) at the strictest
	// latency SLO this device accepts.
	TokenRate core.Tokens
	// ReadOnlyWindow is how long after the last write the cost model
	// treats the device as read-only (0 disables the discount).
	ReadOnlyWindow time.Duration
}

func (d *DeviceConfig) validate(i int) error {
	if d.Backend == nil {
		return fmt.Errorf("server: device %d: nil backend", i)
	}
	if d.TokenRate <= 0 {
		return fmt.Errorf("server: device %d: TokenRate must be positive", i)
	}
	if err := d.Model.Validate(); err != nil {
		return fmt.Errorf("server: device %d: %w", i, err)
	}
	return nil
}

// Config configures a server.
type Config struct {
	// Addr is the TCP listen address (e.g. "127.0.0.1:0").
	Addr string
	// UDPAddr optionally enables the datagram endpoint on this address.
	UDPAddr string
	// Threads is the number of scheduler threads (1..64).
	Threads int
	// SchedInterval bounds the time between scheduling rounds.
	SchedInterval time.Duration
	// ReadLatency/WriteLatency optionally delay the device operation to
	// emulate flash on fast in-memory backends (useful in examples,
	// demos, and the barrier tests).
	ReadLatency  time.Duration
	WriteLatency time.Duration

	// Model, TokenRate and ReadOnlyWindow describe device 0 when the
	// single-device New constructor is used.
	Model          core.CostModel
	TokenRate      core.Tokens
	ReadOnlyWindow time.Duration

	// IdleTimeout reaps TCP connections with no inbound traffic: the
	// reader's deadline is re-armed before every message, so a half-open
	// peer can no longer leak a goroutine and its tenant registrations
	// forever. 0 selects the 2-minute default; negative disables reaping.
	IdleTimeout time.Duration
	// WriteTimeout bounds each response write; a peer that stops reading
	// tears the connection down instead of wedging a scheduler callback.
	// 0 selects the 10-second default; negative disables the deadline.
	WriteTimeout time.Duration

	// Faults optionally injects faults on the real path: accepted
	// connections are wrapped (drops/stalls/partial I/O/resets/jitter)
	// and the device path injects per-request I/O errors and timeout
	// pulses. Injections surface as the faults_injected metric.
	Faults *faults.Injector

	// Shed configures graceful load shedding: when the scheduler backlog,
	// aggregate token debt or connection count crosses its limit, new
	// best-effort I/O is refused with StatusOverloaded. Latency-critical
	// tenants are never shed. Zero-valued fields pick defaults (queue
	// high watermark at 3/4 of the thread queue); set ShedDisabled to
	// turn shedding off entirely.
	Shed         ctrl.ShedConfig
	ShedDisabled bool

	// NodeName identifies this server (pair) in a sharded cluster's shard
	// map (DESIGN.md §13). Empty disables shard enforcement entirely: the
	// server serves its whole device like a pre-sharding node even if a
	// map is installed.
	NodeName string

	// Epoch seeds the cluster epoch (0 = standalone; see internal/cluster
	// and DESIGN.md §11).
	Epoch uint16
	// BackupRole starts the server as a replication backup: it refuses
	// client writes (StatusStaleEpoch), applies the primary's replication
	// stream to device 0, and serves client reads (the hedged-read
	// target) until promoted.
	BackupRole bool
}

// Default failure-hardening parameters.
const (
	// DefaultIdleTimeout reaps connections idle longer than this.
	DefaultIdleTimeout = 2 * time.Minute
	// DefaultWriteTimeout bounds one response write.
	DefaultWriteTimeout = 10 * time.Second
)

func (c *Config) fill() error {
	if c.Threads <= 0 {
		c.Threads = 1
	}
	if c.Threads > 64 {
		return fmt.Errorf("server: at most 64 threads")
	}
	if c.SchedInterval <= 0 {
		c.SchedInterval = 200 * time.Microsecond
	}
	if c.IdleTimeout == 0 {
		c.IdleTimeout = DefaultIdleTimeout
	}
	if c.WriteTimeout == 0 {
		c.WriteTimeout = DefaultWriteTimeout
	}
	if c.Shed.QueueHigh == 0 {
		c.Shed.QueueHigh = 3 * reqChCapacity / 4
	}
	return nil
}

// reqChCapacity is the per-thread request channel capacity; the default
// shed high watermark sits at 3/4 of it so backpressure turns into
// explicit refusal before readers block.
const reqChCapacity = 4096

// sdevice is one device's runtime state.
type sdevice struct {
	idx     int
	backend storage.Backend
	cfg     DeviceConfig
	shared  *core.SharedState
	// lcReserved is guarded by Server.mu.
	lcReserved core.Tokens
	lastWrite  atomic.Int64
}

// Server is a running ReFlex server.
type Server struct {
	cfg     Config
	devices []*sdevice
	ln      net.Listener
	udp     *net.UDPConn
	threads []*sthread
	start   time.Time
	// m is the unified telemetry layer (internal/obs): wall-clock metrics
	// registry plus the per-request span trace ring.
	m *metrics
	// shed is the graceful load-shed signal consulted on every
	// best-effort I/O; nil when shedding is disabled.
	shed *ctrl.Shedder

	// Cluster robustness state (internal/cluster; DESIGN.md §11). cmu
	// serializes epoch transitions (promote/fence) so role and epoch move
	// together; reads go through the atomics.
	cmu        sync.Mutex
	epoch      atomic.Uint32 // current cluster epoch (uint16 range)
	fenced     atomic.Bool   // deposed primary: writes refused
	backupRole atomic.Bool   // replication backup: client writes refused
	onPromote  atomic.Value  // func(uint16)
	repl       *cluster.Replicator
	// migr is the migration-source replicator: a second forward stream,
	// attached by a ranged OpJoin, that carries one shard's catch-up and
	// live writes to a migration sink during a live shard move
	// (DESIGN.md §13). Independent of repl so a node can host a backup
	// session and a migration session at once.
	migr *cluster.Replicator
	// shardMap holds the installed *shard.Map (nil until one arrives over
	// OpShardMap). Immutable once stored; installs swap the pointer.
	shardMap atomic.Value

	mu         sync.Mutex
	tenants    map[uint16]*stenant
	nextHandle uint16
	conns      map[*srvConn]struct{}

	// Tenant-unregistration reaper: connection teardown funnels its owned
	// handles through one server-lifetime goroutine instead of spawning a
	// goroutine per torn-down connection. The queue is an unbounded slice
	// (teardown must never block a scheduler thread) with a cap-1 kick
	// channel.
	unregMu   sync.Mutex
	unregPend []uint16
	unregKick chan struct{}

	wg        sync.WaitGroup
	done      chan struct{}
	closeOnce sync.Once
}

// stenant couples a scheduler tenant with its wire registration (the ACL),
// device binding, and barrier sequencer state.
type stenant struct {
	t      *core.Tenant
	reg    protocol.Registration
	thread int
	device int
	rate   core.Tokens

	mu          sync.Mutex
	outstanding int
	seq         []seqItem
	// dead marks a tenant torn down (unregistered or its connection
	// reaped); the sequencer drops held work instead of leaking waiters.
	dead bool
}

// enqueued is a request handed from a connection reader to its scheduler
// thread.
type enqueued struct {
	ten *stenant
	req *core.Request
}

// reqCtx travels through the scheduler as core.Request.Context.
type reqCtx struct {
	conn    responder
	ten     *stenant
	hdr     protocol.Header
	payload []byte
	// lease backs payload when the request arrived in a pooled buffer
	// (write payloads that outlive dispatch). The completion path — or
	// any path that drops the request — releases it exactly once via
	// releaseLease.
	lease *bufpool.Buf
	// span is the request's lifecycle record; stamped along the pipeline
	// and pushed into the trace ring when the response is sent.
	span obs.Span
}

// releaseLease drops the request-payload lease (idempotent: the pointer
// is cleared so drop paths and the completion path cannot double-release).
func (ctx *reqCtx) releaseLease() {
	if ctx.lease != nil {
		ctx.lease.Release()
		ctx.lease = nil
	}
}

// New starts a single-device server listening on cfg.Addr over backend,
// with the device described by cfg.Model/TokenRate/ReadOnlyWindow.
func New(cfg Config, backend storage.Backend) (*Server, error) {
	return NewMulti(cfg, []DeviceConfig{{
		Backend:        backend,
		Model:          cfg.Model,
		TokenRate:      cfg.TokenRate,
		ReadOnlyWindow: cfg.ReadOnlyWindow,
	}})
}

// NewMulti starts a server fronting several devices. Registration selects
// a device by index; each device runs an independent scheduler instance
// with its own token rate (§3.2.2).
func NewMulti(cfg Config, devices []DeviceConfig) (*Server, error) {
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	if len(devices) == 0 || len(devices) > 256 {
		return nil, fmt.Errorf("server: need 1..256 devices, have %d", len(devices))
	}
	for i := range devices {
		if err := devices[i].validate(i); err != nil {
			return nil, err
		}
	}
	ln, err := net.Listen("tcp", cfg.Addr)
	if err != nil {
		return nil, err
	}
	s := &Server{
		cfg:       cfg,
		ln:        ln,
		start:     time.Now(),
		tenants:   make(map[uint16]*stenant),
		conns:     make(map[*srvConn]struct{}),
		unregKick: make(chan struct{}, 1),
		done:      make(chan struct{}),
	}
	if !cfg.ShedDisabled {
		s.shed = ctrl.NewShedder(cfg.Shed)
	}
	s.epoch.Store(uint32(cfg.Epoch))
	s.backupRole.Store(cfg.BackupRole)
	for i, dc := range devices {
		s.devices = append(s.devices, &sdevice{
			idx:     i,
			backend: dc.Backend,
			cfg:     dc,
			shared:  core.NewSharedState(cfg.Threads, dc.TokenRate),
		})
	}
	for i := 0; i < cfg.Threads; i++ {
		th := &sthread{
			id:    i,
			srv:   s,
			reqCh: make(chan enqueued, reqChCapacity),
			cmdCh: make(chan func(), 64),
		}
		for _, d := range s.devices {
			d := d
			sched := core.NewScheduler(d.cfg.Model, i, d.shared)
			sched.ReadOnlyProbe = func() bool { return s.readOnlyProbe(d) }
			th.scheds = append(th.scheds, sched)
		}
		s.threads = append(s.threads, th)
	}
	// Telemetry wires gauge functions over threads and devices, so it is
	// built after both exist and before any goroutine can serve a request.
	s.m = newMetrics(s)
	// The primary-side replicator is always present (a standalone server's
	// replicator simply never attaches a backup): forwards cover device 0.
	s.repl = cluster.NewReplicator(cluster.ReplicatorConfig{
		Backend:   s.devices[0].backend,
		Epoch:     s.ClusterEpoch,
		OnStale:   func(e uint16) { s.Fence(e) },
		OnForward: func() { s.m.replForwarded.Inc() },
		OnAck:     func() { s.m.replAcked.Inc() },
	})
	// Migration-source replicator (DESIGN.md §13): sends one shard's
	// catch-up and live writes to a ranged-join sink. The sink relays
	// chunks to the destination as ordinary OpWrites, so chunks stay well
	// under MaxPayload. A stale ack from the sink must NOT fence this
	// node — migration failure is the coordinator's problem, not a
	// deposition — hence no OnStale.
	s.migr = cluster.NewReplicator(cluster.ReplicatorConfig{
		Backend:    s.devices[0].backend,
		Epoch:      s.ClusterEpoch,
		OnForward:  func() { s.m.migrForwarded.Inc() },
		OnAck:      func() { s.m.migrAcked.Inc() },
		ChunkBytes: 128 << 10,
	})
	for _, th := range s.threads {
		s.wg.Add(1)
		go th.loop()
	}
	s.wg.Add(1)
	go s.reaperLoop()
	if cfg.UDPAddr != "" {
		ua, err := net.ResolveUDPAddr("udp", cfg.UDPAddr)
		if err != nil {
			ln.Close()
			return nil, err
		}
		pc, err := net.ListenUDP("udp", ua)
		if err != nil {
			ln.Close()
			return nil, err
		}
		s.udp = pc
		s.wg.Add(1)
		go s.serveUDP(pc)
	}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the bound TCP listen address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// UDPAddr returns the bound UDP address, or "" when UDP is disabled.
func (s *Server) UDPAddr() string {
	if s.udp == nil {
		return ""
	}
	return s.udp.LocalAddr().String()
}

// Devices returns the number of devices this server fronts.
func (s *Server) Devices() int { return len(s.devices) }

// Shared exposes a device's scheduler shared state (tests and stats).
func (s *Server) Shared(device int) *core.SharedState {
	return s.devices[device].shared
}

// now returns monotonic nanoseconds since server start.
func (s *Server) now() int64 { return int64(time.Since(s.start)) }

func (s *Server) readOnlyProbe(d *sdevice) bool {
	if d.cfg.ReadOnlyWindow <= 0 {
		return false
	}
	last := d.lastWrite.Load()
	return last == 0 || s.now()-last > int64(d.cfg.ReadOnlyWindow)
}

// Close shuts the server down: stops accepting, closes connections, stops
// scheduler threads, and waits for all goroutines.
func (s *Server) Close() error {
	s.closeOnce.Do(func() {
		close(s.done)
		s.ln.Close()
		if s.udp != nil {
			s.udp.Close()
		}
		s.mu.Lock()
		for c := range s.conns {
			c.c.Close()
		}
		s.mu.Unlock()
	})
	s.wg.Wait()
	return nil
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		c, err := s.ln.Accept()
		if err != nil {
			select {
			case <-s.done:
				return
			default:
			}
			var ne net.Error
			if errors.As(err, &ne) && ne.Timeout() {
				continue
			}
			return
		}
		// Chaos mode: wrap the accepted connection so the server's own
		// hardening (deadlines, reaping, flush-failure teardown) is
		// exercised by injected drops, stalls, partial I/O and resets.
		c = faults.WrapConn(c, s.cfg.Faults)
		newSrvConn(s, c)
	}
}

// queueUnregister hands a torn-down connection's owned tenant handles to
// the reaper goroutine. Never blocks (teardown may run on a scheduler
// thread).
func (s *Server) queueUnregister(handles []uint16) {
	if len(handles) == 0 {
		return
	}
	s.unregMu.Lock()
	s.unregPend = append(s.unregPend, handles...)
	s.unregMu.Unlock()
	select {
	case s.unregKick <- struct{}{}:
	default:
	}
}

// reaperLoop is the single server-lifetime goroutine that unregisters
// tenants owned by torn-down connections (replacing the old
// goroutine-per-teardown pattern). Unregistration round-trips through
// scheduler-thread command channels, which select on server shutdown, so
// the reaper can never wedge past Close.
func (s *Server) reaperLoop() {
	defer s.wg.Done()
	for {
		select {
		case <-s.done:
			return
		case <-s.unregKick:
		}
		for {
			s.unregMu.Lock()
			batch := s.unregPend
			s.unregPend = nil
			s.unregMu.Unlock()
			if len(batch) == 0 {
				break
			}
			for _, h := range batch {
				if s.unregisterTenant(h) == protocol.StatusOK {
					s.m.removed.Inc()
				}
			}
		}
	}
}

// shedNow reports whether a best-effort request for ten should be refused
// right now. Latency-critical tenants are never shed: their SLO was
// admitted against reserved capacity. The overload indicators are the
// tenant thread's queue backlog, the aggregate scheduler token debt
// (published by the threads after each round), and the live connection
// count.
func (s *Server) shedNow(ten *stenant) bool {
	if s.shed == nil || ten.t.Class != core.BestEffort {
		return false
	}
	var debt core.Tokens
	for _, th := range s.threads {
		debt += core.Tokens(th.debt.Load())
	}
	s.mu.Lock()
	conns := len(s.conns)
	s.mu.Unlock()
	return s.shed.Observe(len(s.threads[ten.thread].reqCh), conns, debt)
}

// registerTenant performs admission control and registration.
func (s *Server) registerTenant(reg protocol.Registration) (uint16, protocol.Status) {
	if int(reg.Device) >= len(s.devices) {
		return 0, protocol.StatusBadRequest
	}
	dev := s.devices[reg.Device]

	class := core.LatencyCritical
	slo := core.SLO{
		IOPS:        int(reg.IOPS),
		ReadPercent: int(reg.ReadPercent),
		LatencyP95:  int64(reg.LatencyP95),
	}
	if reg.BestEffort {
		class = core.BestEffort
		slo = core.SLO{}
	}

	s.mu.Lock()
	defer s.mu.Unlock()

	var rate core.Tokens
	if class == core.LatencyCritical {
		if slo.Validate() != nil {
			return 0, protocol.StatusBadRequest
		}
		rate = dev.cfg.Model.RateForSLO(slo.IOPS, slo.ReadPercent)
		if dev.lcReserved+rate > dev.cfg.TokenRate {
			// Table 1: "Registered tenant, or out of resources error".
			return 0, protocol.StatusNoCapacity
		}
	}
	if reg.LBACount != 0 {
		end := int64(reg.FirstLBA) + int64(reg.LBACount)
		if end*protocol.BlockSize > dev.backend.Size() {
			return 0, protocol.StatusBadRequest
		}
	}

	s.nextHandle++
	if s.nextHandle == 0 { // wrapped; 0 is reserved as invalid
		s.nextHandle = 1
	}
	h := s.nextHandle
	if _, taken := s.tenants[h]; taken {
		return 0, protocol.StatusNoCapacity // 65K live tenants exhausted
	}
	t, err := core.NewTenant(int(h), fmt.Sprintf("tenant-%d", h), class, slo)
	if err != nil {
		return 0, protocol.StatusBadRequest
	}

	// Place on the thread with the fewest tenants.
	best := 0
	counts := make([]int, len(s.threads))
	for _, st := range s.tenants {
		counts[st.thread]++
	}
	for i, n := range counts {
		if n < counts[best] {
			best = i
		}
	}
	st := &stenant{t: t, reg: reg, thread: best, device: int(reg.Device), rate: rate}
	s.tenants[h] = st
	dev.lcReserved += rate
	s.threads[best].do(func() { s.threads[best].scheds[st.device].Register(t) })
	return h, protocol.StatusOK
}

func (s *Server) unregisterTenant(h uint16) protocol.Status {
	s.mu.Lock()
	st, ok := s.tenants[h]
	if ok {
		delete(s.tenants, h)
		s.devices[st.device].lcReserved -= st.rate
	}
	s.mu.Unlock()
	if !ok {
		return protocol.StatusNoTenant
	}
	// Drop the sequencer's held work so no barrier waiter outlives the
	// tenant, then return the tenant's unspent token reservation to the
	// scheduler (Unregister releases the LC rate / BE share).
	st.kill()
	th := s.threads[st.thread]
	th.do(func() { th.scheds[st.device].Unregister(st.t) })
	return protocol.StatusOK
}

// lookup returns the tenant for a handle.
func (s *Server) lookup(h uint16) (*stenant, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	st, ok := s.tenants[h]
	return st, ok
}

// checkACL validates an I/O against the tenant's namespace permissions.
// hdr.Count must already be normalized to the I/O length.
func checkACL(reg *protocol.Registration, hdr *protocol.Header, backendSize int64) protocol.Status {
	if hdr.Count == 0 || hdr.Count > protocol.MaxPayload {
		return protocol.StatusBadRequest
	}
	if hdr.Opcode == protocol.OpWrite && hdr.Count != hdr.Len {
		return protocol.StatusBadRequest
	}
	off := int64(hdr.LBA) * protocol.BlockSize
	end := off + int64(hdr.Count)
	if end > backendSize {
		return protocol.StatusBadRequest
	}
	if hdr.Opcode == protocol.OpWrite && !reg.Writable {
		return protocol.StatusDenied
	}
	if reg.LBACount != 0 {
		first := int64(reg.FirstLBA) * protocol.BlockSize
		limit := first + int64(reg.LBACount)*protocol.BlockSize
		if off < first || end > limit {
			return protocol.StatusDenied
		}
	}
	return protocol.StatusOK
}
