// Package server implements a real TCP/UDP ReFlex server: the
// production-path counterpart of the simulated dataplane. It speaks the
// internal/protocol wire format, enforces per-tenant ACLs (§4.1 "Security
// model"), supports ordering barriers, and runs the same QoS scheduler as
// the simulator (internal/core) on a set of shared-nothing per-core event
// loops, one tenant per core (§4.1). A server may front several devices;
// each device gets an independent scheduler instance with its own token
// accounting (§3.2.2).
//
// Dataplane structure (DESIGN.md §15): connections are pinned to a core
// at accept time and tenants registered over a connection land on its
// core, so a request's whole lifecycle — decode, QoS scheduling, device
// I/O, response flush — runs against one core's private state. The only
// cross-core structures on the request path are atomics: the global token
// bucket (core.SharedState), the handle-indexed tenant registry, the live
// connection counter, and the per-core debt gauges feeding the shed
// signal. No mutex is shared between cores per request.
package server

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"github.com/reflex-go/reflex/internal/bufpool"
	"github.com/reflex-go/reflex/internal/cluster"
	"github.com/reflex-go/reflex/internal/core"
	"github.com/reflex-go/reflex/internal/ctrl"
	"github.com/reflex-go/reflex/internal/faults"
	"github.com/reflex-go/reflex/internal/obs"
	"github.com/reflex-go/reflex/internal/protocol"
	"github.com/reflex-go/reflex/internal/readcache"
	"github.com/reflex-go/reflex/internal/storage"
	"github.com/reflex-go/reflex/internal/volume"
)

// DeviceConfig describes one flash device behind the server.
type DeviceConfig struct {
	// Backend stores the device's bytes.
	Backend storage.Backend
	// Model is the device's calibrated cost model.
	Model core.CostModel
	// TokenRate is the token generation rate (mt/s) at the strictest
	// latency SLO this device accepts.
	TokenRate core.Tokens
	// ReadOnlyWindow is how long after the last write the cost model
	// treats the device as read-only (0 disables the discount).
	ReadOnlyWindow time.Duration
}

func (d *DeviceConfig) validate(i int) error {
	if d.Backend == nil {
		return fmt.Errorf("server: device %d: nil backend", i)
	}
	if d.TokenRate <= 0 {
		return fmt.Errorf("server: device %d: TokenRate must be positive", i)
	}
	if err := d.Model.Validate(); err != nil {
		return fmt.Errorf("server: device %d: %w", i, err)
	}
	return nil
}

// Config configures a server.
type Config struct {
	// Addr is the TCP listen address (e.g. "127.0.0.1:0").
	Addr string
	// UDPAddr optionally enables the datagram endpoint on this address.
	UDPAddr string
	// Cores is the number of shared-nothing per-core event loops (1..64).
	// Each core owns a request ring, one scheduler per device, and the
	// batched response flusher for the connections pinned to it.
	Cores int
	// Threads is the deprecated alias of Cores (pre-§15 naming); it is
	// used when Cores is zero.
	Threads int
	// RingSize is the per-core request ring capacity (default 4096). The
	// default shed high watermark derives from it, so resizing the ring
	// moves the backpressure-to-refusal crossover with it.
	RingSize int
	// BusyPoll spins each core's scheduler and flusher loops for this
	// long before parking, trading CPU for wakeup latency like the
	// paper's polling dataplane cores. 0 disables (park immediately).
	BusyPoll time.Duration
	// SchedInterval bounds the time between scheduling rounds.
	SchedInterval time.Duration
	// ReadLatency/WriteLatency optionally delay the device operation to
	// emulate flash on fast in-memory backends (useful in examples,
	// demos, and the barrier tests).
	ReadLatency  time.Duration
	WriteLatency time.Duration

	// Model, TokenRate and ReadOnlyWindow describe device 0 when the
	// single-device New constructor is used.
	Model          core.CostModel
	TokenRate      core.Tokens
	ReadOnlyWindow time.Duration

	// IdleTimeout reaps TCP connections with no inbound traffic: the
	// reader's deadline is re-armed before every message, so a half-open
	// peer can no longer leak a goroutine and its tenant registrations
	// forever. 0 selects the 2-minute default; negative disables reaping.
	IdleTimeout time.Duration
	// WriteTimeout bounds each response write; a peer that stops reading
	// tears the connection down instead of wedging a core's flusher.
	// 0 selects the 10-second default; negative disables the deadline.
	WriteTimeout time.Duration

	// Faults optionally injects faults on the real path: accepted
	// connections are wrapped (drops/stalls/partial I/O/resets/jitter)
	// and the device path injects per-request I/O errors and timeout
	// pulses. Injections surface as the faults_injected metric.
	Faults *faults.Injector

	// Shed configures graceful load shedding: when the scheduler backlog,
	// aggregate token debt or connection count crosses its limit, new
	// best-effort I/O is refused with StatusOverloaded. Latency-critical
	// tenants are never shed. Zero-valued fields pick defaults (queue
	// high watermark at 3/4 of the per-core ring capacity); set
	// ShedDisabled to turn shedding off entirely.
	Shed         ctrl.ShedConfig
	ShedDisabled bool

	// CacheBytes enables the tiered DRAM read cache (internal/readcache,
	// DESIGN.md §17) in front of every device: capacity in bytes, rounded
	// down to 4KB blocks. Hits are served from DRAM on the pcore, charged
	// the cache-service cost instead of a device read; every write path
	// (client, replication, migration) invalidates through the backend
	// wrapper before the write is acknowledged. 0 disables the cache.
	CacheBytes int64
	// CacheAdmit selects the cache admission policy: "cost" (default —
	// admit a block only when its observed re-reference traffic, priced
	// by the device cost model, pays for the fill), "always", or "never".
	CacheAdmit string

	// VolumeBytes reserves this many bytes at the top of device 0 as the
	// logical-volume extent pool (internal/volume, DESIGN.md §18),
	// enabling the OpVol* opcodes: thin-provisioned volumes, CoW
	// snapshots, clones and snapshot-diff streams. 0 disables volumes.
	// The pool range is carved out of the device; raw-LBA tenants should
	// be ACL-bounded below it.
	VolumeBytes int64
	// VolumeExtentBlocks sets the extent size in 512B blocks (default
	// volume.DefaultExtentBlocks = 128 → 64 KiB extents). Must be a
	// multiple of 8 so extents stay 4KiB-aligned for the read cache.
	VolumeExtentBlocks int

	// NodeName identifies this server (pair) in a sharded cluster's shard
	// map (DESIGN.md §13). Empty disables shard enforcement entirely: the
	// server serves its whole device like a pre-sharding node even if a
	// map is installed.
	NodeName string

	// Epoch seeds the cluster epoch (0 = standalone; see internal/cluster
	// and DESIGN.md §11).
	Epoch uint16
	// BackupRole starts the server as a replication backup: it refuses
	// client writes (StatusStaleEpoch), applies the primary's replication
	// stream to device 0, and serves client reads (the hedged-read
	// target) until promoted.
	BackupRole bool
}

// Default failure-hardening parameters.
const (
	// DefaultIdleTimeout reaps connections idle longer than this.
	DefaultIdleTimeout = 2 * time.Minute
	// DefaultWriteTimeout bounds one response write.
	DefaultWriteTimeout = 10 * time.Second
)

// DefaultRingSize is the per-core request ring capacity when
// Config.RingSize is zero.
const DefaultRingSize = 4096

func (c *Config) fill() error {
	if c.Cores <= 0 {
		c.Cores = c.Threads
	}
	if c.Cores <= 0 {
		c.Cores = 1
	}
	if c.Cores > 64 {
		return fmt.Errorf("server: at most 64 cores")
	}
	if c.RingSize <= 0 {
		c.RingSize = DefaultRingSize
	}
	if c.SchedInterval <= 0 {
		c.SchedInterval = 200 * time.Microsecond
	}
	if c.IdleTimeout == 0 {
		c.IdleTimeout = DefaultIdleTimeout
	}
	if c.WriteTimeout == 0 {
		c.WriteTimeout = DefaultWriteTimeout
	}
	if c.Shed.QueueHigh == 0 {
		// The shed high watermark sits at 3/4 of the actual per-core ring
		// capacity (not a fixed constant) so backpressure turns into
		// explicit refusal before readers block — and keeps doing so when
		// the ring is resized.
		c.Shed.QueueHigh = 3 * c.RingSize / 4
	}
	return nil
}

// sdevice is one device's runtime state.
type sdevice struct {
	idx     int
	backend storage.Backend
	cfg     DeviceConfig
	shared  *core.SharedState
	// lcReserved is guarded by Server.regMu (registration slow path only;
	// never touched per request).
	lcReserved core.Tokens
	lastWrite  atomic.Int64
}

// Server is a running ReFlex server.
type Server struct {
	cfg     Config
	devices []*sdevice
	ln      net.Listener
	udp     *net.UDPConn
	cores   []*pcore
	start   time.Time
	// m is the unified telemetry layer (internal/obs): wall-clock metrics
	// registry plus the per-request span trace ring.
	m *metrics
	// shed is the graceful load-shed signal consulted on every
	// best-effort I/O; nil when shedding is disabled.
	shed *ctrl.Shedder
	// cache is the tiered DRAM read cache (nil when disabled). Probed at
	// dispatch, filled on aligned 4KB read completions, invalidated by
	// the cachedBackend wrapper around every device backend.
	cache *readcache.Cache
	// vols is the logical-volume manager (nil when Config.VolumeBytes is
	// zero). Built over device 0's *wrapped* backend so every volume
	// write — in-place or CoW — invalidates the read cache at its
	// physical blocks before the ack, which is what makes physical cache
	// keys safe across CoW remaps.
	vols *volume.Manager

	// Cluster robustness state (internal/cluster; DESIGN.md §11). cmu
	// serializes epoch transitions (promote/fence) so role and epoch move
	// together; reads go through the atomics.
	cmu        sync.Mutex
	epoch      atomic.Uint32 // current cluster epoch (uint16 range)
	fenced     atomic.Bool   // deposed primary: writes refused
	backupRole atomic.Bool   // replication backup: client writes refused
	onPromote  atomic.Value  // func(uint16)
	repl       *cluster.Replicator
	// migr is the migration-source replicator: a second forward stream,
	// attached by a ranged OpJoin, that carries one shard's catch-up and
	// live writes to a migration sink during a live shard move
	// (DESIGN.md §13). Independent of repl so a node can host a backup
	// session and a migration session at once.
	migr *cluster.Replicator
	// shardMap holds the installed *shard.Map (nil until one arrives over
	// OpShardMap). Immutable once stored; installs swap the pointer.
	shardMap atomic.Value

	// tenants is the atomics-only tenant registry: lookup on the request
	// path is one atomic load (see registry.go).
	tenants *tenantTable
	// regMu serializes registration admission (per-device lcReserved
	// accounting). Registration and unregistration only — the I/O path
	// never takes it.
	regMu sync.Mutex

	// connMu guards the connection set used by accept, teardown and
	// Close. The request path reads only connCount (the shed signal's
	// connection indicator), never the map.
	connMu    sync.Mutex
	conns     map[*srvConn]struct{}
	connCount atomic.Int64

	// Tenant-unregistration reaper: connection teardown funnels its owned
	// handles through one server-lifetime goroutine instead of spawning a
	// goroutine per torn-down connection. The queue is an unbounded slice
	// (teardown must never block a core's flusher) with a cap-1 kick
	// channel.
	unregMu   sync.Mutex
	unregPend []uint16
	unregKick chan struct{}

	wg        sync.WaitGroup
	done      chan struct{}
	closeOnce sync.Once
}

// stenant couples a scheduler tenant with its wire registration (the ACL),
// core binding, and barrier sequencer state.
type stenant struct {
	t      *core.Tenant
	reg    protocol.Registration
	coreID int
	device int
	rate   core.Tokens
	// vol binds the tenant to a logical volume (Registration.Volume != 0):
	// its OpRead/OpWrite/OpTrim LBAs are volume-logical and the pcore
	// routes its I/O through the extent map instead of raw device offsets.
	// Immutable after registration — the hot path reads it without locks.
	vol *volume.Volume

	mu          sync.Mutex
	outstanding int
	seq         []seqItem
	// dead marks a tenant torn down (unregistered or its connection
	// reaped); the sequencer drops held work instead of leaking waiters.
	dead bool
}

// enqueued is a request handed from a connection reader to its core's
// request ring.
type enqueued struct {
	ten *stenant
	req *core.Request
}

// reqCtx travels through the scheduler as core.Request.Context.
type reqCtx struct {
	conn    responder
	ten     *stenant
	hdr     protocol.Header
	payload []byte
	// lease backs payload when the request arrived in a pooled buffer
	// (write payloads that outlive dispatch). The completion path — or
	// any path that drops the request — releases it exactly once via
	// releaseLease.
	lease *bufpool.Buf
	// span is the request's lifecycle record; stamped along the pipeline
	// and pushed into the trace ring when the response is sent.
	span obs.Span
	// cbuf carries a read-cache hit's response payload (copied out of the
	// cache at dispatch, under the segment lock). The pcore serves it
	// without touching the backend; drop paths release it via
	// releaseLease like the write lease.
	cbuf *bufpool.Buf
	// fill marks an admitted read miss: on a successful aligned-4KB
	// backend read the pcore commits the block under fillKey unless the
	// fence epoch moved (a write invalidated the range in flight).
	fill      bool
	fillKey   uint64
	fillEpoch uint64
}

// releaseLease drops the request-payload lease and any cache-hit payload
// (idempotent: pointers are cleared so drop paths and the completion path
// cannot double-release).
func (ctx *reqCtx) releaseLease() {
	if ctx.lease != nil {
		ctx.lease.Release()
		ctx.lease = nil
	}
	if ctx.cbuf != nil {
		ctx.cbuf.Release()
		ctx.cbuf = nil
	}
}

// New starts a single-device server listening on cfg.Addr over backend,
// with the device described by cfg.Model/TokenRate/ReadOnlyWindow.
func New(cfg Config, backend storage.Backend) (*Server, error) {
	return NewMulti(cfg, []DeviceConfig{{
		Backend:        backend,
		Model:          cfg.Model,
		TokenRate:      cfg.TokenRate,
		ReadOnlyWindow: cfg.ReadOnlyWindow,
	}})
}

// NewMulti starts a server fronting several devices. Registration selects
// a device by index; each device runs an independent scheduler instance
// per core with its own token rate (§3.2.2).
func NewMulti(cfg Config, devices []DeviceConfig) (*Server, error) {
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	if len(devices) == 0 || len(devices) > 256 {
		return nil, fmt.Errorf("server: need 1..256 devices, have %d", len(devices))
	}
	for i := range devices {
		if err := devices[i].validate(i); err != nil {
			return nil, err
		}
	}
	ln, err := net.Listen("tcp", cfg.Addr)
	if err != nil {
		return nil, err
	}
	s := &Server{
		cfg:       cfg,
		ln:        ln,
		start:     time.Now(),
		tenants:   &tenantTable{},
		conns:     make(map[*srvConn]struct{}),
		unregKick: make(chan struct{}, 1),
		done:      make(chan struct{}),
	}
	if !cfg.ShedDisabled {
		s.shed = ctrl.NewShedder(cfg.Shed)
	}
	s.epoch.Store(uint32(cfg.Epoch))
	s.backupRole.Store(cfg.BackupRole)
	for i, dc := range devices {
		s.devices = append(s.devices, &sdevice{
			idx:     i,
			backend: dc.Backend,
			cfg:     dc,
			shared:  core.NewSharedState(cfg.Cores, dc.TokenRate),
		})
	}
	if cfg.CacheBytes >= readcache.BlockSize {
		mode, err := readcache.ParseMode(cfg.CacheAdmit)
		if err != nil {
			ln.Close()
			return nil, err
		}
		// Admission prices hits by device 0's model (multi-device servers
		// share one cache; per-device pricing only shifts the hurdle).
		model := s.devices[0].cfg.Model
		s.cache, err = readcache.New(readcache.Config{
			Blocks:   int(cfg.CacheBytes / readcache.BlockSize),
			Mode:     mode,
			ReadCost: model.ReadCost,
			HitCost:  model.CacheServeCost(),
		})
		if err != nil {
			ln.Close()
			return nil, err
		}
		// Wrap every backend so each write — client dispatch, replication
		// apply, migration apply — invalidates before it is acknowledged.
		// Wrapping precedes the replicator construction below on purpose:
		// the replicators capture the wrapped backend.
		for _, d := range s.devices {
			d.backend = &cachedBackend{Backend: d.backend, cache: s.cache, dev: d.idx}
		}
	}
	if cfg.VolumeBytes > 0 {
		devBytes := s.devices[0].backend.Size()
		if cfg.VolumeBytes > devBytes {
			ln.Close()
			return nil, fmt.Errorf("server: volume pool %d bytes exceeds device 0 (%d)", cfg.VolumeBytes, devBytes)
		}
		poolBlocks := uint64(cfg.VolumeBytes) / protocol.BlockSize
		// Built after the cache wrap above so volume writes invalidate
		// physically; the pool sits at the top of device 0.
		mgr, err := volume.NewManager(volume.Config{
			Backend:      s.devices[0].backend,
			FirstBlock:   uint64(devBytes)/protocol.BlockSize - poolBlocks,
			Blocks:       poolBlocks,
			ExtentBlocks: uint32(cfg.VolumeExtentBlocks),
		})
		if err != nil {
			ln.Close()
			return nil, err
		}
		s.vols = mgr
	}
	for i := 0; i < cfg.Cores; i++ {
		pc := &pcore{
			id:        i,
			srv:       s,
			ring:      make(chan enqueued, cfg.RingSize),
			cmdCh:     make(chan func(), 64),
			flushKick: make(chan struct{}, 1),
		}
		for _, d := range s.devices {
			d := d
			sched := core.NewScheduler(d.cfg.Model, i, d.shared)
			sched.ReadOnlyProbe = func() bool { return s.readOnlyProbe(d) }
			pc.scheds = append(pc.scheds, sched)
		}
		s.cores = append(s.cores, pc)
	}
	// Telemetry wires gauge functions over cores and devices, so it is
	// built after both exist and before any goroutine can serve a request.
	s.m = newMetrics(s)
	// The primary-side replicator is always present (a standalone server's
	// replicator simply never attaches a backup): forwards cover device 0.
	s.repl = cluster.NewReplicator(cluster.ReplicatorConfig{
		Backend:   s.devices[0].backend,
		Epoch:     s.ClusterEpoch,
		OnStale:   func(e uint16) { s.Fence(e) },
		OnForward: func() { s.m.replForwarded.Inc() },
		OnAck:     func() { s.m.replAcked.Inc() },
	})
	// Migration-source replicator (DESIGN.md §13): sends one shard's
	// catch-up and live writes to a ranged-join sink. The sink relays
	// chunks to the destination as ordinary OpWrites, so chunks stay well
	// under MaxPayload. A stale ack from the sink must NOT fence this
	// node — migration failure is the coordinator's problem, not a
	// deposition — hence no OnStale.
	s.migr = cluster.NewReplicator(cluster.ReplicatorConfig{
		Backend:    s.devices[0].backend,
		Epoch:      s.ClusterEpoch,
		OnForward:  func() { s.m.migrForwarded.Inc() },
		OnAck:      func() { s.m.migrAcked.Inc() },
		ChunkBytes: 128 << 10,
	})
	for _, pc := range s.cores {
		s.wg.Add(2)
		go pc.loop()
		go pc.flushLoop()
	}
	s.wg.Add(1)
	go s.reaperLoop()
	if cfg.UDPAddr != "" {
		ua, err := net.ResolveUDPAddr("udp", cfg.UDPAddr)
		if err != nil {
			ln.Close()
			return nil, err
		}
		pc, err := net.ListenUDP("udp", ua)
		if err != nil {
			ln.Close()
			return nil, err
		}
		s.udp = pc
		s.wg.Add(1)
		go s.serveUDP(pc)
	}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the bound TCP listen address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// UDPAddr returns the bound UDP address, or "" when UDP is disabled.
func (s *Server) UDPAddr() string {
	if s.udp == nil {
		return ""
	}
	return s.udp.LocalAddr().String()
}

// Devices returns the number of devices this server fronts.
func (s *Server) Devices() int { return len(s.devices) }

// Cores returns the number of per-core event loops.
func (s *Server) Cores() int { return len(s.cores) }

// Shared exposes a device's scheduler shared state (tests and stats).
func (s *Server) Shared(device int) *core.SharedState {
	return s.devices[device].shared
}

// now returns monotonic nanoseconds since server start.
func (s *Server) now() int64 { return int64(time.Since(s.start)) }

func (s *Server) readOnlyProbe(d *sdevice) bool {
	if d.cfg.ReadOnlyWindow <= 0 {
		return false
	}
	last := d.lastWrite.Load()
	return last == 0 || s.now()-last > int64(d.cfg.ReadOnlyWindow)
}

// Close shuts the server down: stops accepting, closes connections, stops
// the core loops, and waits for all goroutines.
func (s *Server) Close() error {
	s.closeOnce.Do(func() {
		close(s.done)
		s.ln.Close()
		if s.udp != nil {
			s.udp.Close()
		}
		s.connMu.Lock()
		for c := range s.conns {
			c.c.Close()
		}
		s.connMu.Unlock()
	})
	s.wg.Wait()
	return nil
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		c, err := s.ln.Accept()
		if err != nil {
			select {
			case <-s.done:
				return
			default:
			}
			var ne net.Error
			if errors.As(err, &ne) && ne.Timeout() {
				continue
			}
			return
		}
		// Chaos mode: wrap the accepted connection so the server's own
		// hardening (deadlines, reaping, flush-failure teardown) is
		// exercised by injected drops, stalls, partial I/O and resets.
		c = faults.WrapConn(c, s.cfg.Faults)
		newSrvConn(s, c)
	}
}

// queueUnregister hands a torn-down connection's owned tenant handles to
// the reaper goroutine. Never blocks (teardown may run on a core's
// flusher).
func (s *Server) queueUnregister(handles []uint16) {
	if len(handles) == 0 {
		return
	}
	s.unregMu.Lock()
	s.unregPend = append(s.unregPend, handles...)
	s.unregMu.Unlock()
	select {
	case s.unregKick <- struct{}{}:
	default:
	}
}

// reaperLoop is the single server-lifetime goroutine that unregisters
// tenants owned by torn-down connections (replacing the old
// goroutine-per-teardown pattern). Unregistration round-trips through
// per-core command channels, which select on server shutdown, so the
// reaper can never wedge past Close.
func (s *Server) reaperLoop() {
	defer s.wg.Done()
	for {
		select {
		case <-s.done:
			return
		case <-s.unregKick:
		}
		for {
			s.unregMu.Lock()
			batch := s.unregPend
			s.unregPend = nil
			s.unregMu.Unlock()
			if len(batch) == 0 {
				break
			}
			for _, h := range batch {
				if s.unregisterTenant(h) == protocol.StatusOK {
					s.m.removed.Inc()
				}
			}
		}
	}
}

// shedNow reports whether a best-effort request for ten should be refused
// right now. Latency-critical tenants are never shed: their SLO was
// admitted against reserved capacity. The overload indicators are the
// tenant core's ring backlog, the aggregate scheduler token debt
// (published by the cores after each round), and the live connection
// count — all read through atomics; the shed decision takes no lock.
func (s *Server) shedNow(ten *stenant) bool {
	if s.shed == nil || ten.t.Class != core.BestEffort {
		return false
	}
	var debt core.Tokens
	for _, pc := range s.cores {
		debt += core.Tokens(pc.debt.Load())
	}
	conns := int(s.connCount.Load())
	return s.shed.Observe(len(s.cores[ten.coreID].ring), conns, debt)
}

// pinCore resolves a registration's core: a pinned index (the accepting
// connection's core) when valid, else the core with the fewest tenants.
// Pinning a tenant to its connection's core is what keeps a tenant's
// whole request path on one core — the connection reader, the scheduler
// that admits its I/O, and the flusher that writes its responses never
// cross a core boundary.
func (s *Server) pinCore(pin int) *pcore {
	if pin >= 0 && pin < len(s.cores) {
		return s.cores[pin]
	}
	best := s.cores[0]
	for _, pc := range s.cores[1:] {
		if pc.ntenants.Load() < best.ntenants.Load() {
			best = pc
		}
	}
	return best
}

// registerTenant performs admission control and registration. pin is the
// accepting connection's core (or -1 for coreless transports, which fall
// back to least-loaded placement).
func (s *Server) registerTenant(reg protocol.Registration, pin int) (uint16, protocol.Status) {
	if int(reg.Device) >= len(s.devices) {
		return 0, protocol.StatusBadRequest
	}
	dev := s.devices[reg.Device]

	class := core.LatencyCritical
	slo := core.SLO{
		IOPS:        int(reg.IOPS),
		ReadPercent: int(reg.ReadPercent),
		LatencyP95:  int64(reg.LatencyP95),
	}
	if reg.BestEffort {
		class = core.BestEffort
		slo = core.SLO{}
	}
	if class == core.LatencyCritical && slo.Validate() != nil {
		return 0, protocol.StatusBadRequest
	}
	// A volume-bound tenant addresses volume-logical LBAs: resolve the
	// volume handle now (one pointer on the stenant; the hot path never
	// looks it up again) and check the ACL range against the volume's
	// logical size instead of the raw device.
	var vol *volume.Volume
	if reg.Volume != 0 {
		if s.vols == nil || reg.Device != 0 {
			return 0, protocol.StatusBadRequest
		}
		v, ok := s.vols.ByHandle(uint16(reg.Volume))
		if !ok {
			return 0, protocol.StatusBadRequest
		}
		vol = v
	}
	if reg.LBACount != 0 {
		limit := dev.backend.Size()
		if vol != nil {
			limit = vol.LogicalBytes()
		}
		end := int64(reg.FirstLBA) + int64(reg.LBACount)
		if end*protocol.BlockSize > limit {
			return 0, protocol.StatusBadRequest
		}
	}

	// Admission: reserve the LC rate under the registration mutex — the
	// only lock in registration, never taken on the I/O path.
	var rate core.Tokens
	if class == core.LatencyCritical {
		rate = dev.cfg.Model.RateForSLO(slo.IOPS, slo.ReadPercent)
		s.regMu.Lock()
		if dev.lcReserved+rate > dev.cfg.TokenRate {
			s.regMu.Unlock()
			// Table 1: "Registered tenant, or out of resources error".
			return 0, protocol.StatusNoCapacity
		}
		dev.lcReserved += rate
		s.regMu.Unlock()
	}

	h, ok := s.tenants.claim()
	if !ok {
		s.returnReserved(dev, rate)
		return 0, protocol.StatusNoCapacity // all 65535 handles live
	}
	t, err := core.NewTenant(int(h), fmt.Sprintf("tenant-%d", h), class, slo)
	if err != nil {
		s.tenants.unclaim(h)
		s.returnReserved(dev, rate)
		return 0, protocol.StatusBadRequest
	}

	pc := s.pinCore(pin)
	st := &stenant{t: t, reg: reg, coreID: pc.id, device: int(reg.Device), rate: rate, vol: vol}
	s.tenants.publish(h, st)
	pc.ntenants.Add(1)
	pc.do(func() { pc.scheds[st.device].Register(t) })
	return h, protocol.StatusOK
}

// returnReserved undoes a registration's LC rate reservation.
func (s *Server) returnReserved(dev *sdevice, rate core.Tokens) {
	if rate == 0 {
		return
	}
	s.regMu.Lock()
	dev.lcReserved -= rate
	s.regMu.Unlock()
}

func (s *Server) unregisterTenant(h uint16) protocol.Status {
	st := s.tenants.remove(h)
	if st == nil {
		return protocol.StatusNoTenant
	}
	s.returnReserved(s.devices[st.device], st.rate)
	// Drop the sequencer's held work so no barrier waiter outlives the
	// tenant, then return the tenant's unspent token reservation to the
	// scheduler (Unregister releases the LC rate / BE share).
	st.kill()
	pc := s.cores[st.coreID]
	pc.ntenants.Add(-1)
	pc.do(func() { pc.scheds[st.device].Unregister(st.t) })
	return protocol.StatusOK
}

// lookup returns the tenant for a handle: one atomic load, no lock.
func (s *Server) lookup(h uint16) (*stenant, bool) {
	return s.tenants.lookup(h)
}

// checkACL validates an I/O against the tenant's namespace permissions.
// hdr.Count must already be normalized to the I/O length. For
// volume-bound tenants backendSize is the volume's logical size. OpTrim
// carries no payload, so its Count (the discard length in bytes) is
// exempt from the MaxPayload bound.
func checkACL(reg *protocol.Registration, hdr *protocol.Header, backendSize int64) protocol.Status {
	if hdr.Count == 0 || (hdr.Count > protocol.MaxPayload && hdr.Opcode != protocol.OpTrim) {
		return protocol.StatusBadRequest
	}
	if hdr.Opcode == protocol.OpWrite && hdr.Count != hdr.Len {
		return protocol.StatusBadRequest
	}
	off := int64(hdr.LBA) * protocol.BlockSize
	end := off + int64(hdr.Count)
	if end > backendSize {
		return protocol.StatusBadRequest
	}
	if (hdr.Opcode == protocol.OpWrite || hdr.Opcode == protocol.OpTrim) && !reg.Writable {
		return protocol.StatusDenied
	}
	if reg.LBACount != 0 {
		first := int64(reg.FirstLBA) * protocol.BlockSize
		limit := first + int64(reg.LBACount)*protocol.BlockSize
		if off < first || end > limit {
			return protocol.StatusDenied
		}
	}
	return protocol.StatusOK
}
