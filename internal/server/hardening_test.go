package server

import (
	"bytes"
	"errors"
	"io"
	"net"
	"runtime"
	"testing"
	"time"

	"github.com/reflex-go/reflex/internal/client"
	"github.com/reflex-go/reflex/internal/core"
	"github.com/reflex-go/reflex/internal/ctrl"
	"github.com/reflex-go/reflex/internal/protocol"
)

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestIdleReapGoroutineRegression is the satellite regression test for the
// half-open connection leak: before deadlines existed, a peer that went
// silent pinned its reader goroutine and tenant registrations forever.
// Now the idle reaper must close such connections, unregister their
// tenants, count them in conns_reaped, and return the goroutine count to
// its baseline.
func TestIdleReapGoroutineRegression(t *testing.T) {
	srv, cl := startServer(t, func(c *Config) { c.IdleTimeout = 150 * time.Millisecond })
	h, err := cl.Register(beWritable())
	if err != nil {
		t.Fatal(err)
	}
	base := runtime.NumGoroutine()

	// Half-open peers: they connect, say nothing, and never hang up.
	var conns []net.Conn
	for i := 0; i < 8; i++ {
		c, err := net.Dial("tcp", srv.Addr())
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		conns = append(conns, c)
	}
	waitFor(t, time.Second, "connections accepted", func() bool {
		return srv.connCount.Load() >= 8
	})

	// All silent connections (including the client's) are reaped.
	waitFor(t, 5*time.Second, "idle connections reaped", func() bool {
		return srv.m.reaped.Value() >= 8
	})
	waitFor(t, 5*time.Second, "conn set drained", func() bool {
		return srv.connCount.Load() == 0
	})
	// The reaped connection's tenant is unregistered with it.
	waitFor(t, 5*time.Second, "tenant unregistered on reap", func() bool {
		_, ok := srv.lookup(h)
		return !ok
	})
	// No leaked reader goroutines: the count returns to (near) baseline.
	// The baseline included the live client; allow it plus slack.
	waitFor(t, 5*time.Second, "goroutines back to baseline", func() bool {
		return runtime.NumGoroutine() <= base+2
	})
}

// flushFailConn is a netConn whose writes always fail: the seam for
// exercising the send/flush error path deterministically.
type flushFailConn struct{ closed chan struct{} }

func (f *flushFailConn) Read(p []byte) (int, error) { <-f.closed; return 0, net.ErrClosed }
func (f *flushFailConn) Write(p []byte) (int, error) {
	return len(p) / 2, io.ErrShortWrite
}
func (f *flushFailConn) Close() error {
	select {
	case <-f.closed:
	default:
		close(f.closed)
	}
	return nil
}
func (f *flushFailConn) SetReadDeadline(time.Time) error  { return nil }
func (f *flushFailConn) SetWriteDeadline(time.Time) error { return nil }

// TestFlushFailureTearsDownConn is the satellite bugfix test: a failed
// response flush (short write) must tear the connection down — closed,
// removed from the server's set, and its tenants unregistered — instead
// of being ignored and leaving a half-dead connection behind.
func TestFlushFailureTearsDownConn(t *testing.T) {
	srv, _ := startServer(t, nil)
	fc := &flushFailConn{closed: make(chan struct{})}
	sc := newSrvConn(srv, fc)

	h, st := srv.registerTenant(beWritable(), sc.core.id)
	if st != protocol.StatusOK {
		t.Fatalf("register: %v", st)
	}
	sc.addOwned(h)

	// Any response write fails; the writer goroutine's flush must trigger
	// full teardown (asynchronously — send only enqueues now).
	sc.send(&protocol.Header{Opcode: protocol.OpRead, Flags: protocol.FlagResponse}, nil, nil)

	waitFor(t, 5*time.Second, "flush failure closed the connection", func() bool {
		select {
		case <-fc.closed:
			return true
		default:
			return false
		}
	})
	waitFor(t, 5*time.Second, "conn removed from server set", func() bool {
		srv.connMu.Lock()
		defer srv.connMu.Unlock()
		_, stillThere := srv.conns[sc]
		return !stillThere
	})
	waitFor(t, 5*time.Second, "owned tenant unregistered", func() bool {
		_, ok := srv.lookup(h)
		return !ok
	})
}

// TestDeadConnReturnsLCReservation: when a connection dies, its tenants'
// unspent token reservations must return to the scheduler — otherwise a
// crashed LC tenant permanently eats device capacity.
func TestDeadConnReturnsLCReservation(t *testing.T) {
	srv, _ := startServer(t, func(c *Config) {
		c.TokenRate = 420_000 * core.TokenUnit
		c.IdleTimeout = -1 // isolate the teardown path under test
	})
	lc := protocol.Registration{
		Writable:    true,
		IOPS:        420_000, // consumes the whole device rate
		ReadPercent: 100,
		LatencyP95:  uint64(500 * time.Microsecond),
	}

	clA, err := client.Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := clA.Register(lc); err != nil {
		t.Fatal(err)
	}
	// Capacity exhausted: a second full-rate tenant is refused.
	clB, err := client.Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer clB.Close()
	if _, err := clB.Register(lc); !errors.Is(err, client.ErrNoCapacity) {
		t.Fatalf("second full-rate LC register: %v, want ErrNoCapacity", err)
	}

	// A dies without unregistering. Teardown must give the rate back.
	clA.Close()
	waitFor(t, 5*time.Second, "LC reservation returned", func() bool {
		h, err := clB.Register(lc)
		if err != nil {
			return false
		}
		clB.Unregister(h)
		return true
	})
}

// TestUDPTruncatedDatagramRejected is the satellite bugfix test for the
// datagram-truncation bug: a datagram larger than the receive buffer used
// to be parsed as if complete, reading garbage as payload. The server must
// detect the full buffer and reply with StatusTruncated.
func TestUDPTruncatedDatagramRejected(t *testing.T) {
	srv, cl := startUDPServer(t, nil)
	h, err := cl.Register(beWritable())
	if err != nil {
		t.Fatal(err)
	}

	conn, err := netDialUDP(srv.UDPAddr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	// A write request claiming (and carrying) more payload than the
	// server's receive buffer: the kernel truncates it on read.
	payload := MaxUDPIO + 8192
	hdr := protocol.Header{
		Opcode: protocol.OpWrite,
		Handle: h,
		Cookie: 0xBEEF,
		Count:  uint32(payload),
		Len:    uint32(payload),
	}
	pkt := make([]byte, protocol.HeaderSize+payload)
	hdr.MarshalTo(pkt)
	if _, err := conn.Write(pkt); err != nil {
		t.Fatal(err)
	}

	conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	buf := make([]byte, 64<<10)
	n, err := conn.Read(buf)
	if err != nil {
		t.Fatalf("no reply to truncated datagram: %v", err)
	}
	m, err := protocol.ReadMessage(bytes.NewReader(buf[:n]))
	if err != nil {
		t.Fatalf("parse reply: %v", err)
	}
	if m.Header.Status != protocol.StatusTruncated {
		t.Fatalf("status = %v, want %v", m.Header.Status, protocol.StatusTruncated)
	}
	if m.Header.Cookie != 0xBEEF {
		t.Fatalf("cookie = %#x, want the request's", m.Header.Cookie)
	}
	// The endpoint survives and still serves well-formed traffic.
	if _, err := cl.Read(h, 0, 512); err != nil {
		t.Fatalf("server broken after truncated datagram: %v", err)
	}
}

// TestBarrierMidDisconnectNoStuckWaiters is the satellite test for the
// barrier sequencer under client disconnect: a tenant dying mid-barrier
// (in-flight writes, pending barrier from another connection) must answer
// the barrier with a typed error — never leave the waiter stuck — and
// surviving tenants' ordering must keep working.
func TestBarrierMidDisconnectNoStuckWaiters(t *testing.T) {
	srv, clB := startServer(t, func(c *Config) { c.WriteLatency = 50 * time.Millisecond })

	clA, err := client.Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	h, err := clA.Register(beWritable())
	if err != nil {
		t.Fatal(err)
	}
	// In-flight writes keep the tenant busy so the barrier must queue.
	data := bytes.Repeat([]byte{0x5A}, 4096)
	for i := 0; i < 4; i++ {
		if _, err := clA.GoWrite(h, uint32(i*8), data); err != nil {
			t.Fatal(err)
		}
	}
	st, ok := srv.lookup(h)
	if !ok {
		t.Fatal("tenant vanished")
	}
	// The writes travel on clA's connection and the barrier on clB's: wait
	// until the server has the writes in flight so the barrier must queue
	// behind them rather than completing vacuously.
	waitFor(t, 2*time.Second, "writes in flight", func() bool {
		st.mu.Lock()
		defer st.mu.Unlock()
		return st.outstanding > 0
	})
	// The barrier waits on another connection sharing the handle (§3.2:
	// thousands of connections may share a tenant).
	call, err := clB.GoBarrier(h)
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, 2*time.Second, "barrier queued", func() bool {
		st.mu.Lock()
		defer st.mu.Unlock()
		return len(st.seq) > 0
	})

	// The owning connection dies mid-barrier.
	clA.Close()

	select {
	case <-call.Done:
		if !errors.Is(call.Err, client.ErrNoTenant) {
			t.Fatalf("barrier on dead tenant: %v, want ErrNoTenant", call.Err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("barrier waiter stuck on dead tenant")
	}

	// Survivor: a fresh tenant on the live connection still gets monotonic
	// barrier ordering (write -> barrier -> read observes the write).
	h2, err := clB.Register(beWritable())
	if err != nil {
		t.Fatal(err)
	}
	want := bytes.Repeat([]byte{0xC3}, 4096)
	if _, err := clB.GoWrite(h2, 0, want); err != nil {
		t.Fatal(err)
	}
	if err := clB.Barrier(h2); err != nil {
		t.Fatalf("survivor barrier: %v", err)
	}
	got, err := clB.Read(h2, 0, 4096)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("read after barrier did not observe the preceding write")
	}
}

// TestShedBestEffortNeverLC: over the connection limit, best-effort I/O is
// refused with StatusOverloaded while latency-critical I/O still flows.
func TestShedBestEffortNeverLC(t *testing.T) {
	srv, cl := startServer(t, func(c *Config) {
		c.Shed = ctrl.ShedConfig{ConnLimit: 1}
	})
	be, err := cl.Register(beWritable())
	if err != nil {
		t.Fatal(err)
	}
	lc, err := cl.Register(protocol.Registration{
		Writable:    true,
		IOPS:        10_000,
		ReadPercent: 100,
		LatencyP95:  uint64(500 * time.Microsecond),
	})
	if err != nil {
		t.Fatal(err)
	}
	// Requests flow while under the limit.
	if _, err := cl.Read(be, 0, 512); err != nil {
		t.Fatal(err)
	}

	// Push past the connection limit.
	extra, err := client.Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer extra.Close()
	waitFor(t, time.Second, "second connection accepted", func() bool {
		return srv.connCount.Load() >= 2
	})

	if _, err := cl.Read(be, 0, 512); !errors.Is(err, client.ErrOverloaded) {
		t.Fatalf("BE read over conn limit: %v, want ErrOverloaded", err)
	}
	if srv.m.shed.Value() < 1 {
		t.Fatal("requests_shed not incremented")
	}
	// LC is never shed.
	if _, err := cl.Read(lc, 0, 512); err != nil {
		t.Fatalf("LC read shed under overload: %v", err)
	}
}
