package server

import (
	"net"
	"sync"

	"github.com/reflex-go/reflex/internal/bufpool"
	"github.com/reflex-go/reflex/internal/protocol"
)

// UDP endpoint: the lighter-weight transport the paper anticipates
// alongside TCP (§4.1: "Both tail latency and throughput will improve
// when we implement UDP or other, lighter-weight transport protocols").
// One datagram carries one protocol message; I/O sizes are capped so a
// response always fits a datagram. Delivery is best-effort — a lost
// datagram surfaces as a client-side timeout, never as corruption.
//
// Memory discipline (DESIGN.md §12): both directions run on pooled
// buffers. The receive loop leases a datagram-sized buffer per read and
// releases it once dispatch returns (the write path retains its own
// reference when it needs the payload to outlive dispatch), and send
// frames the response into a pooled arena flushed with a single
// WriteToUDP — steady state allocates nothing per datagram.

// MaxUDPIO bounds a single I/O over the UDP transport.
const MaxUDPIO = 32 << 10

// udpRecvSize holds the largest legal request (header + MaxUDPIO write
// payload) with slack so truncation is detectable (see serveUDP).
const udpRecvSize = protocol.HeaderSize + MaxUDPIO + 4096

// udpResponder replies to the datagram's source address.
type udpResponder struct {
	srv  *Server
	pc   *net.UDPConn
	addr *net.UDPAddr
	wmu  *sync.Mutex
}

func (u udpResponder) maxIO() uint32 { return MaxUDPIO }

// send frames hdr+payload into a pooled arena and writes one datagram.
// It owns lease (the payload's pooled backing, when non-nil) and releases
// it once the datagram is on the wire — or dropped; UDP is best-effort,
// so a failed WriteToUDP is not a teardown event.
func (u udpResponder) send(hdr *protocol.Header, payload []byte, lease *bufpool.Buf) {
	defer bufpool.ReleaseIf(lease)
	if hdr.Epoch == 0 {
		hdr.Epoch = u.srv.ClusterEpoch()
	}
	frame := bufpool.Get(protocol.HeaderSize + len(payload))
	defer frame.Release()
	b, err := protocol.AppendMessage(frame.Bytes()[:0], hdr, payload)
	if err != nil {
		return
	}
	u.wmu.Lock()
	u.pc.WriteToUDP(b, u.addr)
	u.wmu.Unlock()
}

// serveUDP reads datagrams until the socket closes.
func (s *Server) serveUDP(pc *net.UDPConn) {
	defer s.wg.Done()
	var wmu sync.Mutex
	var msg protocol.Message
	for {
		// One pooled lease per datagram; ReadFromUDP silently truncates
		// anything larger than the buffer, which the loop detects below by
		// a completely full buffer. The parsed message's payload aliases
		// the lease, so it stays alive across dispatch and is released
		// right after (dispatch retains it when the write path needs it
		// longer).
		lease := bufpool.Get(udpRecvSize)
		buf := lease.Bytes()
		n, addr, err := pc.ReadFromUDP(buf)
		if err != nil {
			lease.Release()
			select {
			case <-s.done:
			default:
			}
			return
		}
		rsp := udpResponder{srv: s, pc: pc, addr: addr, wmu: &wmu}
		if n == len(buf) {
			// The datagram filled the receive buffer: it was (almost
			// certainly) truncated by the kernel. Parsing the remainder
			// would read garbage as payload — reply with a typed protocol
			// error instead, echoing the header when it is intact.
			s.m.rejected.Inc()
			var hdr protocol.Header
			if err := hdr.Unmarshal(buf[:protocol.HeaderSize]); err == nil {
				reject(rsp, &hdr, protocol.StatusTruncated)
			}
			lease.Release()
			continue
		}
		if err := msg.UnmarshalFrame(buf[:n]); err != nil {
			lease.Release()
			continue // malformed datagram: drop, as a NIC would a bad frame
		}
		s.dispatch(rsp, &msg, lease)
		lease.Release()
	}
}
