package server

import (
	"bytes"
	"net"
	"sync"

	"github.com/reflex-go/reflex/internal/protocol"
)

// UDP endpoint: the lighter-weight transport the paper anticipates
// alongside TCP (§4.1: "Both tail latency and throughput will improve
// when we implement UDP or other, lighter-weight transport protocols").
// One datagram carries one protocol message; I/O sizes are capped so a
// response always fits a datagram. Delivery is best-effort — a lost
// datagram surfaces as a client-side timeout, never as corruption.

// MaxUDPIO bounds a single I/O over the UDP transport.
const MaxUDPIO = 32 << 10

// udpResponder replies to the datagram's source address.
type udpResponder struct {
	srv  *Server
	pc   *net.UDPConn
	addr *net.UDPAddr
	wmu  *sync.Mutex
}

func (u udpResponder) maxIO() uint32 { return MaxUDPIO }

func (u udpResponder) send(hdr *protocol.Header, payload []byte) {
	if hdr.Epoch == 0 {
		hdr.Epoch = u.srv.ClusterEpoch()
	}
	var buf bytes.Buffer
	if err := protocol.WriteMessage(&buf, hdr, payload); err != nil {
		return
	}
	u.wmu.Lock()
	u.pc.WriteToUDP(buf.Bytes(), u.addr)
	u.wmu.Unlock()
}

// serveUDP reads datagrams until the socket closes.
func (s *Server) serveUDP(pc *net.UDPConn) {
	defer s.wg.Done()
	var wmu sync.Mutex
	// The buffer holds the largest legal request (header + MaxUDPIO write
	// payload) with slack; ReadFromUDP silently truncates anything larger,
	// which the loop detects below by a completely full buffer.
	buf := make([]byte, protocol.HeaderSize+MaxUDPIO+4096)
	for {
		n, addr, err := pc.ReadFromUDP(buf)
		if err != nil {
			select {
			case <-s.done:
			default:
			}
			return
		}
		rsp := udpResponder{srv: s, pc: pc, addr: addr, wmu: &wmu}
		if n == len(buf) {
			// The datagram filled the receive buffer: it was (almost
			// certainly) truncated by the kernel. Parsing the remainder
			// would read garbage as payload — reply with a typed protocol
			// error instead, echoing the header when it is intact.
			s.m.rejected.Inc()
			var hdr protocol.Header
			if err := hdr.Unmarshal(buf[:protocol.HeaderSize]); err == nil {
				reject(rsp, &hdr, protocol.StatusTruncated)
			}
			continue
		}
		m, err := protocol.ReadMessage(bytes.NewReader(buf[:n]))
		if err != nil {
			continue // malformed datagram: drop, as a NIC would a bad frame
		}
		s.dispatch(rsp, m)
	}
}
