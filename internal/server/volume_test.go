package server

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/reflex-go/reflex/internal/client"
	"github.com/reflex-go/reflex/internal/protocol"
)

// startVolServer is startServer with the volume layer enabled: a 16 MiB
// extent pool at the top of the 64 MiB mem device.
func startVolServer(t *testing.T, mutate func(*Config)) (*Server, *client.Client) {
	t.Helper()
	return startServer(t, func(cfg *Config) {
		cfg.VolumeBytes = 16 << 20
		if mutate != nil {
			mutate(cfg)
		}
	})
}

func TestVolumeLifecycleEndToEnd(t *testing.T) {
	_, cl := startVolServer(t, nil)

	vh, err := cl.VolCreate("tenants/alpha", 4096) // 2 MiB logical
	if err != nil {
		t.Fatal(err)
	}
	if vh == 0 {
		t.Fatal("zero volume handle")
	}
	h, err := cl.OpenVolume(beWritable(), vh)
	if err != nil {
		t.Fatal(err)
	}

	// Thin: unwritten space reads zero.
	z, err := cl.Read(h, 1000, 4096)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(z, make([]byte, 4096)) {
		t.Fatal("thin volume not zero-filled")
	}

	data := bytes.Repeat([]byte{0x5A}, 8192)
	if err := cl.Write(h, 256, data); err != nil {
		t.Fatal(err)
	}
	got, err := cl.Read(h, 256, len(data))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("volume write/read mismatch")
	}

	// Volume ACL: the logical size bounds I/O, not the device size.
	if _, err := cl.Read(h, 4095, 1024); !errors.Is(err, client.ErrBadRequest) {
		t.Fatalf("read past volume end: %v, want ErrBadRequest", err)
	}

	// Snapshot freezes the image; overwrites CoW away from it.
	gen, err := cl.VolSnapshot("tenants/alpha")
	if err != nil {
		t.Fatal(err)
	}
	over := bytes.Repeat([]byte{0xC3}, 8192)
	if err := cl.Write(h, 256, over); err != nil {
		t.Fatal(err)
	}

	// A clone of the snapshot still reads the pre-overwrite bytes while
	// the live volume serves the new ones.
	ch, err := cl.VolClone("tenants/alpha", gen, "tenants/alpha-restore")
	if err != nil {
		t.Fatal(err)
	}
	hc, err := cl.OpenVolume(beWritable(), ch)
	if err != nil {
		t.Fatal(err)
	}
	old, err := cl.Read(hc, 256, len(data))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(old, data) {
		t.Fatal("clone does not serve the snapshot image")
	}
	live, err := cl.Read(h, 256, len(over))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(live, over) {
		t.Fatal("live volume lost the overwrite")
	}

	// The clone is writable and independent.
	if err := cl.Write(hc, 0, bytes.Repeat([]byte{0x11}, 512)); err != nil {
		t.Fatal(err)
	}
	z, err = cl.Read(h, 0, 512)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(z, make([]byte, 512)) {
		t.Fatal("clone write leaked into the source volume")
	}

	// Diff (0, gen] names the extents of the first write, not the
	// post-snapshot overwrite.
	d, resolved, err := cl.VolDiff("tenants/alpha", 0, gen)
	if err != nil {
		t.Fatal(err)
	}
	if resolved != gen || len(d.Extents) == 0 {
		t.Fatalf("diff (0,%d]: resolved %d, %d extents", gen, resolved, len(d.Extents))
	}

	// Directory lists both volumes with the snapshot.
	infos, err := cl.VolList()
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) != 2 {
		t.Fatalf("VolList returned %d volumes, want 2", len(infos))
	}
	byName := map[string]protocol.VolumeInfo{}
	for _, in := range infos {
		byName[in.Name] = in
	}
	if in, ok := byName["tenants/alpha"]; !ok || len(in.Snaps) != 1 || in.Snaps[0] != gen {
		t.Fatalf("directory entry wrong: %+v", in)
	}

	// Trim frees thin extents on the live volume; the range reads zero.
	ext := int64(byName["tenants/alpha"].ExtentBlocks) * protocol.BlockSize
	freed, err := cl.Trim(h, 256, uint32(2*ext))
	if err != nil {
		t.Fatal(err)
	}
	_ = freed // live extents were CoW'd post-snapshot, so ≥1 is freed
	z, err = cl.Read(h, 256, 4096)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(z, make([]byte, 4096)) {
		t.Fatal("trimmed range does not read zero")
	}

	// Cleanup: snapshot first (a snapshot with a clone stays pinned),
	// then volumes.
	if _, err := cl.VolDelete("tenants/alpha-restore", 0); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.VolDelete("tenants/alpha", gen); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.VolDelete("tenants/alpha", 0); err != nil {
		t.Fatal(err)
	}
	infos, err = cl.VolList()
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) != 0 {
		t.Fatalf("%d volumes survive deletion", len(infos))
	}
}

// TestVolumeTrimOnRawTenantAdvisory: OpTrim on a raw-device tenant is an
// advisory no-op OK, so clients can trim unconditionally.
func TestVolumeTrimOnRawTenantAdvisory(t *testing.T) {
	_, cl := startVolServer(t, nil)
	h, err := cl.Register(beWritable())
	if err != nil {
		t.Fatal(err)
	}
	freed, err := cl.Trim(h, 0, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if freed != 0 {
		t.Fatalf("raw trim freed %d extents, want 0", freed)
	}
	// Read-only tenants may not trim (it mutates the extent map).
	ro, err := cl.Register(protocol.Registration{BestEffort: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Trim(ro, 0, 512); !errors.Is(err, client.ErrDenied) {
		t.Fatalf("read-only trim: %v, want ErrDenied", err)
	}
}

// TestVolumeCacheCoherentAcrossCoW is the stale-bytes regression test:
// with the DRAM read cache on, a cached pre-snapshot read must not be
// served for a post-snapshot overwrite (the CoW remap changes the
// physical cache key) and vice versa.
func TestVolumeCacheCoherentAcrossCoW(t *testing.T) {
	_, cl := startVolServer(t, func(cfg *Config) {
		cfg.CacheBytes = 8 << 20
		cfg.CacheAdmit = "always"
	})
	vh, err := cl.VolCreate("cached", 2048)
	if err != nil {
		t.Fatal(err)
	}
	h, err := cl.OpenVolume(beWritable(), vh)
	if err != nil {
		t.Fatal(err)
	}
	a := bytes.Repeat([]byte{0xAA}, 4096)
	if err := cl.Write(h, 0, a); err != nil {
		t.Fatal(err)
	}
	// Read twice: miss-then-fill, then a cache hit.
	for i := 0; i < 2; i++ {
		got, err := cl.Read(h, 0, 4096)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, a) {
			t.Fatalf("pre-snapshot read %d mismatch", i)
		}
	}
	if _, err := cl.VolSnapshot("cached"); err != nil {
		t.Fatal(err)
	}
	b := bytes.Repeat([]byte{0xBB}, 4096)
	if err := cl.Write(h, 0, b); err != nil {
		t.Fatal(err)
	}
	// The overwrite CoW'd to a new extent: the cached pre-snapshot block
	// lives under the old physical key and must not be served.
	for i := 0; i < 2; i++ {
		got, err := cl.Read(h, 0, 4096)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, b) {
			t.Fatalf("post-CoW read %d served stale bytes", i)
		}
	}
}

// TestVolRestoreStream: the OpVolStream diff stream reconstructs the
// snapshot image chunk by chunk on a dedicated connection.
func TestVolRestoreStream(t *testing.T) {
	srv, cl := startVolServer(t, nil)
	vh, err := cl.VolCreate("src", 4096)
	if err != nil {
		t.Fatal(err)
	}
	h, err := cl.OpenVolume(beWritable(), vh)
	if err != nil {
		t.Fatal(err)
	}
	data := make([]byte, 128<<10)
	for i := range data {
		data[i] = byte(i*7 + 3)
	}
	if err := cl.Write(h, 0, data); err != nil {
		t.Fatal(err)
	}
	gen, err := cl.VolSnapshot("src")
	if err != nil {
		t.Fatal(err)
	}
	// Post-snapshot noise the (0, gen] stream must not ship.
	if err := cl.Write(h, 0, bytes.Repeat([]byte{0xEE}, 4096)); err != nil {
		t.Fatal(err)
	}

	image := make([]byte, 4096*protocol.BlockSize)
	var streamed int
	got, err := client.VolRestore(srv.Addr(), "src", 0, gen, func(off int64, p []byte) error {
		streamed += len(p)
		copy(image[off:], p)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if got != gen {
		t.Fatalf("stream resolved gen %d, want %d", got, gen)
	}
	if streamed == 0 {
		t.Fatal("stream shipped nothing")
	}
	if !bytes.Equal(image[:len(data)], data) {
		t.Fatal("restored image does not match the snapshot")
	}
	for _, b := range image[len(data):] {
		if b != 0 {
			t.Fatal("restored image has non-zero bytes outside the written range")
		}
	}
}

// TestVolRestoreUnalignedVolume: a volume whose size is not an extent
// multiple streams its tail extent clamped to the logical size instead of
// aborting mid-stream (the stream would otherwise read past LogicalBytes
// and die without an end marker, hanging the receiver).
func TestVolRestoreUnalignedVolume(t *testing.T) {
	srv, cl := startVolServer(t, nil)
	const blocks = 3*128 + 37 // deliberately not a multiple of the 128-block extent
	vh, err := cl.VolCreate("odd", blocks)
	if err != nil {
		t.Fatal(err)
	}
	h, err := cl.OpenVolume(beWritable(), vh)
	if err != nil {
		t.Fatal(err)
	}
	// Data in the tail extent, reaching the very last logical block.
	tail := make([]byte, 8*protocol.BlockSize)
	for i := range tail {
		tail[i] = byte(i*13 + 1)
	}
	if err := cl.Write(h, blocks-8, tail); err != nil {
		t.Fatal(err)
	}
	head := bytes.Repeat([]byte{0xAB}, 4096)
	if err := cl.Write(h, 0, head); err != nil {
		t.Fatal(err)
	}
	gen, err := cl.VolSnapshot("odd")
	if err != nil {
		t.Fatal(err)
	}

	logical := int64(blocks) * protocol.BlockSize
	image := make([]byte, logical)
	got, err := client.VolRestore(srv.Addr(), "odd", 0, gen, func(off int64, p []byte) error {
		if off+int64(len(p)) > logical {
			return fmt.Errorf("chunk [%d, %d) past logical size %d", off, off+int64(len(p)), logical)
		}
		copy(image[off:], p)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if got != gen {
		t.Fatalf("stream resolved gen %d, want %d", got, gen)
	}
	if !bytes.Equal(image[:len(head)], head) {
		t.Fatal("restored head extent mismatch")
	}
	if !bytes.Equal(image[logical-int64(len(tail)):], tail) {
		t.Fatal("restored tail extent mismatch")
	}
}

// record stamps a 4KB write payload so the soak's verifier can identify
// which acked write a block holds: slot and sequence number repeated
// through the block.
func record(slot, seq uint32) []byte {
	p := make([]byte, 4096)
	for i := 0; i < len(p); i += 8 {
		binary.BigEndian.PutUint32(p[i:], slot)
		binary.BigEndian.PutUint32(p[i+4:], seq)
	}
	return p
}

// decodeRecord returns (slot, seq, ok); ok is false for a torn or
// zero block.
func decodeRecord(p []byte) (uint32, uint32, bool) {
	slot := binary.BigEndian.Uint32(p)
	seq := binary.BigEndian.Uint32(p[4:])
	for i := 0; i < len(p); i += 8 {
		if binary.BigEndian.Uint32(p[i:]) != slot || binary.BigEndian.Uint32(p[i+4:]) != seq {
			return slot, seq, false
		}
	}
	return slot, seq, true
}

// TestVolumeSnapshotSoak is the CI volume-soak job: ledgered writers
// hammer a live volume while a latency-critical reader runs unsheddable
// probes; mid-run the volume is snapshotted, cloned, and diff-restored
// over a dedicated stream. Acceptance: (1) the restored image is
// crash-consistent — every slot holds a whole record whose sequence
// number is between the writer's acked floor at the snapshot and its
// in-flight ceiling; (2) after the writers stop, the live volume holds
// exactly the last acked record per slot (zero lost acked writes);
// (3) the LC probe is never shed and never errors.
func TestVolumeSnapshotSoak(t *testing.T) {
	srv, cl := startVolServer(t, func(cfg *Config) {
		cfg.CacheBytes = 4 << 20
	})

	const (
		writers      = 4
		slotsPer     = 8
		slotBlocks   = 8 // one 4KB record per slot
		totalSlots   = writers * slotsPer
		soakDuration = 1500 * time.Millisecond
		snapAfter    = 400 * time.Millisecond
	)
	volBlocks := uint64(totalSlots*slotBlocks + 64)
	vh, err := cl.VolCreate("soak", volBlocks)
	if err != nil {
		t.Fatal(err)
	}

	// Ledger: per slot, the highest acked seq (atomics; verifier reads
	// them at well-defined points).
	var acked [totalSlots]atomic.Uint32

	stop := make(chan struct{})
	var wg sync.WaitGroup
	errCh := make(chan error, writers+1)

	for w := 0; w < writers; w++ {
		h, err := cl.OpenVolume(beWritable(), vh)
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(w int, h uint16) {
			defer wg.Done()
			seq := uint32(0)
			for {
				select {
				case <-stop:
					return
				default:
				}
				seq++
				slot := w*slotsPer + int(seq)%slotsPer
				if err := cl.Write(h, uint32(slot*slotBlocks), record(uint32(slot), seq)); err != nil {
					errCh <- fmt.Errorf("writer %d: %w", w, err)
					return
				}
				acked[slot].Store(seq)
			}
		}(w, h)
	}

	// LC probe: an unsheddable latency-critical reader on the same
	// volume. Any shed (ErrOverloaded) or error fails the soak.
	lcH, err := cl.OpenVolume(protocol.Registration{
		ReadPercent: 100,
		IOPS:        1000,
		LatencyP95:  uint64(2 * time.Millisecond),
		Volume:      0, // set by OpenVolume
	}, vh)
	if err != nil {
		t.Fatal(err)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		tick := time.NewTicker(2 * time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-stop:
				return
			case <-tick.C:
			}
			if _, err := cl.Read(lcH, 0, 4096); err != nil {
				errCh <- fmt.Errorf("LC probe: %w", err)
				return
			}
		}
	}()

	// Mid-run: snapshot, clone, and diff-restore while the writers keep
	// going. floor/ceil bracket the acked sequence numbers around the
	// snapshot instant.
	time.Sleep(snapAfter)
	var floor, ceil [totalSlots]uint32
	for i := range floor {
		floor[i] = acked[i].Load()
	}
	gen, err := cl.VolSnapshot("soak")
	if err != nil {
		t.Fatal(err)
	}
	for i := range ceil {
		// A slot's next write steps its seq by slotsPer, and each writer
		// has at most one write in flight across the snapshot instant.
		ceil[i] = acked[i].Load() + slotsPer
	}

	if _, err := cl.VolClone("soak", gen, "soak-clone"); err != nil {
		t.Fatal(err)
	}
	image := make([]byte, volBlocks*protocol.BlockSize)
	if _, err := client.VolRestore(srv.Addr(), "soak", 0, gen, func(off int64, p []byte) error {
		copy(image[off:], p)
		return nil
	}); err != nil {
		t.Fatal(err)
	}

	// Let the soak run on, then stop everything.
	time.Sleep(soakDuration - snapAfter)
	close(stop)
	wg.Wait()
	select {
	case err := <-errCh:
		t.Fatal(err)
	default:
	}

	// (1) Crash consistency of the snapshot image, via BOTH restore
	// paths: the diff-streamed image and the server-side clone must hold,
	// per slot, a whole record bracketed by [floor, ceil].
	hc, err := cl.OpenVolume(beWritable(), mustVolHandle(t, cl, "soak-clone"))
	if err != nil {
		t.Fatal(err)
	}
	for slot := 0; slot < totalSlots; slot++ {
		off := slot * slotBlocks * protocol.BlockSize
		fromStream := image[off : off+4096]
		fromClone, err := cl.Read(hc, uint32(slot*slotBlocks), 4096)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(fromStream, fromClone) {
			t.Fatalf("slot %d: diff-restored image differs from the clone", slot)
		}
		if bytes.Equal(fromStream, make([]byte, 4096)) {
			if floor[slot] != 0 {
				t.Fatalf("slot %d: snapshot lost acked write (floor %d, got zeros)", slot, floor[slot])
			}
			continue
		}
		gotSlot, seq, whole := decodeRecord(fromStream)
		if !whole {
			t.Fatalf("slot %d: torn record in snapshot", slot)
		}
		if gotSlot != uint32(slot) || seq < floor[slot] || seq > ceil[slot] {
			t.Fatalf("slot %d: snapshot record slot=%d seq=%d outside [%d,%d]",
				slot, gotSlot, seq, floor[slot], ceil[slot])
		}
	}

	// (2) Zero lost acked writes on the live volume.
	liveH, err := cl.OpenVolume(beWritable(), vh)
	if err != nil {
		t.Fatal(err)
	}
	for slot := 0; slot < totalSlots; slot++ {
		want := acked[slot].Load()
		if want == 0 {
			continue
		}
		got, err := cl.Read(liveH, uint32(slot*slotBlocks), 4096)
		if err != nil {
			t.Fatal(err)
		}
		gotSlot, seq, whole := decodeRecord(got)
		if !whole || gotSlot != uint32(slot) {
			t.Fatalf("slot %d: torn/foreign record after soak", slot)
		}
		// Writers ack-then-ledger and were joined, so the read-back must
		// be exact.
		if seq != want {
			t.Fatalf("slot %d: live volume holds seq %d, last acked %d (lost acked write)",
				slot, seq, want)
		}
	}
}

// mustVolHandle resolves a volume name to its wire handle via VolList.
func mustVolHandle(t *testing.T, cl *client.Client, name string) uint16 {
	t.Helper()
	infos, err := cl.VolList()
	if err != nil {
		t.Fatal(err)
	}
	for _, in := range infos {
		if in.Name == name {
			return in.Handle
		}
	}
	t.Fatalf("volume %q not in directory", name)
	return 0
}
