package server

import (
	"github.com/reflex-go/reflex/internal/bufpool"
	"github.com/reflex-go/reflex/internal/obs"
	"github.com/reflex-go/reflex/internal/protocol"
)

// Cluster role and epoch machinery (internal/cluster's server surface).
//
// Epoch rules (DESIGN.md §11):
//
//   - The epoch is a monotonically increasing uint16 carried in every
//     message header. 0 means standalone/epoch-unaware: such writes skip
//     the stamp comparison (pre-cluster clients interoperate) but are
//     still refused on a fenced or backup-role server.
//   - A server adopts any higher epoch it observes (join handshake,
//     OpFence, replication acks) — max-merge convergence.
//   - Promotion (OpPromote e) succeeds iff e > current, or e == current
//     on a server already serving as unfenced primary at e (idempotent
//     convergence when two failing-over clients race to the same target).
//   - Fencing (OpFence e with e > current) deposes a primary: it adopts
//     e, marks itself fenced, and rejects all writes with
//     StatusStaleEpoch until promoted at a yet-higher epoch.
//   - A backup-role server refuses client writes (they must go through
//     the primary and the replication stream) but serves client reads —
//     that is what hedged reads lean on.

// ClusterEpoch returns the server's current cluster epoch.
func (s *Server) ClusterEpoch() uint16 { return uint16(s.epoch.Load()) }

// IsBackupRole reports whether the server runs as a (non-promoted)
// backup.
func (s *Server) IsBackupRole() bool { return s.backupRole.Load() }

// IsFenced reports whether the server has been deposed and refuses
// writes.
func (s *Server) IsFenced() bool { return s.fenced.Load() }

// AdoptEpoch raises the epoch to e if higher (never lowers it).
func (s *Server) AdoptEpoch(e uint16) {
	for {
		cur := s.epoch.Load()
		if uint32(e) <= cur {
			return
		}
		if s.epoch.CompareAndSwap(cur, uint32(e)) {
			s.m.journal.Record(obs.EvEpoch, s.cfg.NodeName, -1,
				"epoch adopted %d -> %d", cur, e)
			return
		}
	}
}

// SetOnPromote registers a hook fired once per successful promotion with
// the new epoch (e.g. to stop a backup join loop).
func (s *Server) SetOnPromote(fn func(epoch uint16)) { s.onPromote.Store(fn) }

// Promote asks the server to serve as primary at epoch e. It returns the
// server's resulting epoch and a status: StatusOK on success (including
// the idempotent already-primary-at-e case), StatusStaleEpoch when e is
// not newer than what the server has seen.
func (s *Server) Promote(e uint16) (uint16, protocol.Status) {
	s.cmu.Lock()
	cur := s.ClusterEpoch()
	switch {
	case e > cur:
		s.epoch.Store(uint32(e))
	case e == cur && !s.fenced.Load() && !s.backupRole.Load():
		// Already primary at e: a racing client's duplicate promote.
		s.cmu.Unlock()
		return cur, protocol.StatusOK
	default:
		s.cmu.Unlock()
		return cur, protocol.StatusStaleEpoch
	}
	s.fenced.Store(false)
	s.backupRole.Store(false)
	s.cmu.Unlock()
	s.m.promotions.Inc()
	s.m.journal.Record(obs.EvPromote, s.cfg.NodeName, -1, "promoted to primary at epoch %d", e)
	if fn, ok := s.onPromote.Load().(func(uint16)); ok && fn != nil {
		fn(e)
	}
	return e, protocol.StatusOK
}

// Fence informs the server that epoch e exists elsewhere. With e greater
// than the current epoch the server deposes itself: adopts e, marks
// itself fenced, and fails any pending replication forwards with
// StatusStaleEpoch. Returns the resulting epoch.
func (s *Server) Fence(e uint16) uint16 {
	s.cmu.Lock()
	cur := s.ClusterEpoch()
	if e <= cur {
		s.cmu.Unlock()
		return cur
	}
	s.epoch.Store(uint32(e))
	s.fenced.Store(true)
	s.cmu.Unlock()
	s.m.fencings.Inc()
	s.m.journal.Record(obs.EvFence, s.cfg.NodeName, -1, "fenced at epoch %d (was %d)", e, cur)
	return e
}

// writeAllowed gates a client write by cluster role and epoch stamp.
func (s *Server) writeAllowed(epoch uint16) protocol.Status {
	if s.backupRole.Load() || s.fenced.Load() {
		return protocol.StatusStaleEpoch
	}
	if epoch != 0 && epoch != s.ClusterEpoch() {
		return protocol.StatusStaleEpoch
	}
	return protocol.StatusOK
}

// ApplyReplicate applies one replicated write (live forward or catch-up
// chunk) to device 0, bypassing the QoS scheduler: replication is
// infrastructure traffic and must neither charge nor be shed against any
// tenant's token bucket. Only a backup-role server at an epoch no newer
// than the stamp applies; anything else acks StatusStaleEpoch, fencing
// the sender.
func (s *Server) ApplyReplicate(lba uint32, payload []byte, epoch uint16) protocol.Status {
	if !s.backupRole.Load() {
		return protocol.StatusStaleEpoch
	}
	if epoch < s.ClusterEpoch() {
		return protocol.StatusStaleEpoch
	}
	s.AdoptEpoch(epoch)
	if len(payload) == 0 {
		return protocol.StatusBadRequest
	}
	dev := s.devices[0]
	off := int64(lba) * protocol.BlockSize
	if off+int64(len(payload)) > dev.backend.Size() {
		return protocol.StatusBadRequest
	}
	dev.lastWrite.Store(s.now())
	if _, err := dev.backend.WriteAt(payload, off); err != nil {
		s.m.errored.Inc()
		return protocol.StatusDeviceError
	}
	s.m.replApplied.Inc()
	// Internal-traffic accounting (path="replicate"): replicated applies
	// never show up in the per-tenant request counters, so without this
	// label a backup looks idle while absorbing the primary's full write
	// load.
	s.m.replPathReqs.Inc()
	s.m.replPathBytes.Add(uint64(len(payload)))
	return protocol.StatusOK
}

// ApplyReplicateTraced is ApplyReplicate for a forward that carried a
// trace trailer: the apply is recorded as a HopReplica child span of the
// primary's serve span, landing the backup's ack-path latency in the
// stitched cross-node timeline. Implements cluster.TracedApplier.
func (s *Server) ApplyReplicateTraced(lba uint32, payload []byte, epoch uint16, trace, parent uint64) protocol.Status {
	arrival := s.now()
	st := s.ApplyReplicate(lba, payload, epoch)
	if trace != 0 {
		sp := obs.Span{
			ID:     s.m.spanID(),
			Trace:  trace,
			Parent: parent,
			Node:   s.cfg.NodeName,
			Hop:    obs.HopReplica,
			Write:  true,
			Size:   len(payload),
		}
		sp.Mark(obs.StageArrival, arrival)
		sp.Mark(obs.StageDevDone, s.now())
		sp.Mark(obs.StageTx, s.now())
		s.m.ring.Push(sp)
	}
	return st
}

// replicaSender adapts a srvConn to cluster.ReplicaSender. The lease (a
// reference the replicator retained for the backup-bound copy) transfers
// to send, which releases it after the flush that carries the frame.
// Catch-up chunks arrive with a nil lease and a private buffer; their
// reuse is safe because the catch-up stream is ack-paced — the backup can
// only ack a chunk the writer goroutine already flushed.
type replicaSender struct{ sc *srvConn }

func (r replicaSender) SendToReplica(hdr *protocol.Header, payload []byte, lease *bufpool.Buf) {
	r.sc.send(hdr, payload, lease)
}

// joinReplica attaches sc as the backup session (OpJoin) and starts the
// catch-up stream. Called after the OK handshake response is on the wire,
// so the backup never mistakes the first catch-up chunk for the response.
func (s *Server) joinReplica(sc *srvConn) {
	token := s.repl.Attach(replicaSender{sc: sc})
	sc.rmu.Lock()
	sc.replica = token
	sc.replicaOf = s.repl
	sc.rmu.Unlock()
	s.m.replJoins.Inc()
}

// detachReplica is called from connection teardown: if this connection
// carried the backup (or migration-sink) session, pending forwards
// degrade to standalone acks on whichever replicator owned it.
func (sc *srvConn) detachReplica() {
	sc.rmu.Lock()
	token := sc.replica
	owner := sc.replicaOf
	sc.replica = nil
	sc.replicaOf = nil
	sc.rmu.Unlock()
	if token != nil {
		if owner == nil {
			owner = sc.srv.repl
		}
		owner.Detach(token, protocol.StatusOK)
	}
}

// ReplicaLive reports whether a backup session is currently attached.
func (s *Server) ReplicaLive() bool { return s.repl.Live() }

// ReplicaCaughtUp reports whether the attached backup has the full
// catch-up stream.
func (s *Server) ReplicaCaughtUp() bool { return s.repl.CaughtUp() }
