package server

import (
	"github.com/reflex-go/reflex/internal/obs"
	"github.com/reflex-go/reflex/internal/protocol"
	"github.com/reflex-go/reflex/internal/shard"
)

// Server-side sharding surface (DESIGN.md §13): the node installs the
// coordinator's versioned shard map over OpShardMap, serves it back to
// anyone who fetches it, and enforces it on the I/O path — a request for
// an LBA range this node does not own (neither authoritatively nor as a
// migration destination) is refused with StatusWrongShard carrying the
// node's map version in Count, which is the client router's refetch
// signal.

// ShardMap returns the installed shard map, or nil before the first
// install (enforcement disabled).
func (s *Server) ShardMap() *shard.Map {
	m, _ := s.shardMap.Load().(*shard.Map)
	return m
}

// ShardMapVersion returns the installed map's version (0 = none).
func (s *Server) ShardMapVersion() uint32 {
	if m := s.ShardMap(); m != nil {
		return m.Version
	}
	return 0
}

// InstallShardMap adopts m iff it is newer than the installed map,
// returning the resulting version. An older or equal offer returns the
// current version with StatusStaleEpoch — the installer learns it raced
// a newer map and must refetch. Serialized on cmu with role/epoch moves
// so a map install cannot interleave a promotion half-way.
func (s *Server) InstallShardMap(m *shard.Map) (uint32, protocol.Status) {
	s.cmu.Lock()
	defer s.cmu.Unlock()
	cur := s.ShardMap()
	if cur != nil && m.Version <= cur.Version {
		return cur.Version, protocol.StatusStaleEpoch
	}
	s.shardMap.Store(m)
	s.m.shardInstalls.Inc()
	moves := m.DiffMoves(cur)
	s.m.shardMoves.Add(uint64(moves))
	if moves > 0 && s.cache != nil {
		// Ownership changed: blocks this node cached may now be written
		// by their new owner without passing through our invalidation
		// path. Dropping everything is coarse but the only safe fence —
		// admission will re-fill the genuinely hot residue.
		s.cache.FlushAll()
	}
	s.m.ensureShardSlots(len(m.Assign))
	s.m.journal.Record(obs.EvMapInstall, s.cfg.NodeName, -1,
		"shard map v%d installed (%d shards, %d moved)", m.Version, len(m.Assign), moves)
	return m.Version, protocol.StatusOK
}

// checkShard gates an I/O by the installed shard map. Nodes without a
// NodeName (pre-sharding deployments) and nodes without an installed map
// own everything. Migration destinations own the ranges they are
// migrating into (Map.Migrating), which is what lets the sink relay
// catch-up chunks and live forwards as ordinary writes before the
// authoritative cutover.
func (s *Server) checkShard(hdr *protocol.Header) bool {
	if s.cfg.NodeName == "" {
		return true
	}
	m := s.ShardMap()
	if m == nil {
		return true
	}
	blocks := (hdr.Count + protocol.BlockSize - 1) / protocol.BlockSize
	return m.OwnedBy(s.cfg.NodeName, uint64(hdr.LBA), blocks)
}

// shardIndex maps a request header to its shard index under the
// installed map, or -1 when sharding is off (no NodeName / no map) —
// the per-shard request counters only exist on sharded deployments.
func (s *Server) shardIndex(hdr *protocol.Header) int {
	if s.cfg.NodeName == "" {
		return -1
	}
	m := s.ShardMap()
	if m == nil {
		return -1
	}
	return m.Shard(uint64(hdr.LBA))
}

// rejectWrongShard refuses an I/O for a range this node does not own.
// The response carries the node's map version in Count so the client can
// tell whether refetching the map will actually help (its map is older)
// or whether it raced an in-flight install (versions equal — retry after
// the router's refresh).
func (s *Server) rejectWrongShard(rsp responder, m *protocol.Message) {
	hdr := &m.Header
	s.m.wrongShard.Inc()
	if m.TraceID != 0 {
		// Record the bounce so the stitched timeline shows the extra hop
		// a stale client map cost this request.
		now := s.now()
		sp := obs.Span{
			ID:     s.m.spanID(),
			Trace:  m.TraceID,
			Parent: m.ParentSpan,
			Node:   s.cfg.NodeName,
			Hop:    obs.HopRedirect,
			Write:  hdr.Opcode == protocol.OpWrite,
			Size:   int(hdr.Count),
		}
		sp.Mark(obs.StageArrival, now)
		sp.Mark(obs.StageTx, now)
		s.m.ring.Push(sp)
	}
	rsp.send(&protocol.Header{
		Opcode: hdr.Opcode,
		Flags:  protocol.FlagResponse,
		Handle: hdr.Handle,
		Cookie: hdr.Cookie,
		LBA:    hdr.LBA,
		Count:  s.ShardMapVersion(),
		Status: protocol.StatusWrongShard,
	}, nil, nil)
}

// handleShardMap serves OpShardMap: an empty payload fetches (response
// payload = marshaled map, LBA = version, both zero when no map is
// installed); a non-empty payload installs.
func (s *Server) handleShardMap(rsp responder, hdr *protocol.Header, payload []byte) {
	resp := protocol.Header{
		Opcode: protocol.OpShardMap,
		Flags:  protocol.FlagResponse,
		Cookie: hdr.Cookie,
		Epoch:  s.ClusterEpoch(),
	}
	if len(payload) == 0 {
		var body []byte
		if cur := s.ShardMap(); cur != nil {
			resp.LBA = cur.Version
			body = cur.Marshal()
		}
		rsp.send(&resp, body, nil)
		return
	}
	nm, err := shard.Unmarshal(payload)
	if err != nil {
		resp.Status = protocol.StatusBadRequest
		rsp.send(&resp, nil, nil)
		return
	}
	resp.LBA, resp.Status = s.InstallShardMap(nm)
	rsp.send(&resp, nil, nil)
}

// joinMigration attaches sc as a ranged migration sink on the migration
// replicator: catch-up for [firstLBA, firstLBA+blockCount) followed by
// the live forward stream for writes intersecting the window, closed out
// by the catch-up marker frame. Replication acks arriving on sc route to
// s.migr (see dispatch), and teardown detaches the session.
func (s *Server) joinMigration(sc *srvConn, firstLBA, blockCount uint32) {
	token := s.migr.AttachRange(replicaSender{sc: sc}, firstLBA, blockCount)
	sc.rmu.Lock()
	sc.replica = token
	sc.replicaOf = s.migr
	sc.rmu.Unlock()
	s.m.migrJoins.Inc()
}

// MigrationPending returns the number of migration forwards awaiting a
// sink ack — the coordinator's post-cutover drain signal (served over
// OpPing in the response LBA).
func (s *Server) MigrationPending() int { return s.migr.Pending() }
