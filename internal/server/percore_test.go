package server

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
	"time"

	"github.com/reflex-go/reflex/internal/bufpool"
	"github.com/reflex-go/reflex/internal/client"
	"github.com/reflex-go/reflex/internal/core"
	"github.com/reflex-go/reflex/internal/ctrl"
	"github.com/reflex-go/reflex/internal/protocol"
	"github.com/reflex-go/reflex/internal/storage"
)

// TestHandleWrapProbesPastCollision is the handle-wrap starvation
// regression: after the allocation cursor wraps the uint16 space, a
// collision with a long-lived tenant used to return StatusNoCapacity even
// though almost every handle was free. Registration must probe past live
// handles (and skip the reserved handle 0) and only report exhaustion
// when the table is truly full.
func TestHandleWrapProbesPastCollision(t *testing.T) {
	srv, _ := startServer(t, nil)

	// Park a long-lived tenant at the very top of the handle space.
	srv.tenants.next.Store(65534) // next claim: 65534+1 = 65535
	hTop, st := srv.registerTenant(beWritable(), -1)
	if st != protocol.StatusOK || hTop != 65535 {
		t.Fatalf("top registration: handle %d status %v, want 65535 OK", hTop, st)
	}

	// Rewind the cursor so the next claim collides with the live tenant,
	// then wraps through 0. The fixed allocator must deliver handle 1.
	srv.tenants.next.Store(65534)
	h, st := srv.registerTenant(beWritable(), -1)
	if st != protocol.StatusOK {
		t.Fatalf("registration across the wrap: %v, want OK (old allocator starved here)", st)
	}
	if h != 1 {
		t.Fatalf("wrapped registration handle = %d, want 1 (probe past 65535, skip 0)", h)
	}

	// Churn across the wrap: register/unregister repeatedly with the
	// cursor pinned near the top so every iteration wraps and collides.
	for i := 0; i < 64; i++ {
		srv.tenants.next.Store(65534)
		hi, st := srv.registerTenant(beWritable(), -1)
		if st != protocol.StatusOK {
			t.Fatalf("churn iteration %d: %v, want OK", i, st)
		}
		if st := srv.unregisterTenant(hi); st != protocol.StatusOK {
			t.Fatalf("churn unregister %d: %v", i, st)
		}
	}

	// The long-lived tenant was never disturbed.
	if _, ok := srv.lookup(hTop); !ok {
		t.Fatal("long-lived tenant lost during wrap churn")
	}
}

// TestTenantTableExhaustion verifies the allocator's only refusal is true
// exhaustion: with every one of the 65535 usable handles claimed, claim
// fails; freeing a single slot makes it succeed again.
func TestTenantTableExhaustion(t *testing.T) {
	tt := &tenantTable{}
	for i := 0; i < handleSpace-1; i++ {
		if _, ok := tt.claim(); !ok {
			t.Fatalf("claim %d failed with free slots remaining", i)
		}
	}
	if h, ok := tt.claim(); ok {
		t.Fatalf("claim succeeded (%d) on a full table", h)
	}
	tt.unclaim(12345)
	h, ok := tt.claim()
	if !ok || h != 12345 {
		t.Fatalf("claim after freeing 12345: handle %d ok=%v, want 12345 true", h, ok)
	}
}

// recordResponder captures responses for drop-path assertions.
type recordResponder struct {
	mu   sync.Mutex
	hdrs []protocol.Header
}

func (r *recordResponder) send(hdr *protocol.Header, payload []byte, lease *bufpool.Buf) {
	r.mu.Lock()
	r.hdrs = append(r.hdrs, *hdr)
	r.mu.Unlock()
	bufpool.ReleaseIf(lease)
}

// TestShutdownDropFailsRequest is the shutdown lease-leak regression: a
// request dropped because server shutdown raced its enqueue used to
// vanish silently — payload lease held forever, tenant in-flight count
// never retired, no response. The drop path must release the lease
// (verified through recycle-time poisoning), answer the client with a
// typed error, and retire the tenant's in-flight count.
func TestShutdownDropFailsRequest(t *testing.T) {
	bufpool.SetPoison(true)
	defer bufpool.SetPoison(false)

	cfg := Config{
		Addr:      "127.0.0.1:0",
		Cores:     1,
		RingSize:  1,
		Model:     modelA(),
		TokenRate: 1_000_000 * core.TokenUnit,
	}
	srv, err := New(cfg, storage.NewMem(1<<20))
	if err != nil {
		t.Fatal(err)
	}
	h, st := srv.registerTenant(beWritable(), -1)
	if st != protocol.StatusOK {
		t.Fatalf("register: %v", st)
	}
	ten, ok := srv.lookup(h)
	if !ok {
		t.Fatal("tenant missing")
	}
	srv.Close() // core loop gone; s.done closed

	rr := &recordResponder{}
	mkReq := func() enqueued {
		lease := bufpool.Get(512)
		payload := lease.Bytes()
		for i := range payload {
			payload[i] = 0x5A
		}
		ctx := &reqCtx{
			conn:    rr,
			ten:     ten,
			hdr:     protocol.Header{Opcode: protocol.OpWrite, Handle: h, Count: 512, Len: 512},
			payload: payload,
			lease:   lease,
		}
		return enqueued{ten: ten, req: &core.Request{Op: core.OpWrite, Size: 512, Context: ctx}}
	}

	// Occupy the single ring slot so enqueue cannot take the ring branch
	// and must hit the shutdown drop path deterministically.
	blocker := mkReq()
	srv.cores[0].ring <- blocker

	e := mkReq()
	ctx := e.req.Context.(*reqCtx)
	leased := ctx.payload // window into the pooled backing array
	if !ten.submitIO(srv, e) {
		t.Fatal("submitIO refused a live tenant")
	}

	// The lease was released: the context pointer is cleared and the
	// backing bytes were poisoned on recycle.
	if ctx.lease != nil {
		t.Fatal("dropped request still holds its payload lease")
	}
	if leased[0] != bufpool.Poison {
		t.Fatalf("payload byte %#x after drop, want poison %#x (lease never recycled)",
			leased[0], bufpool.Poison)
	}
	// The client got a typed failure, not silence.
	rr.mu.Lock()
	got := len(rr.hdrs)
	var status protocol.Status
	if got > 0 {
		status = rr.hdrs[0].Status
	}
	rr.mu.Unlock()
	if got != 1 || status != protocol.StatusOverloaded {
		t.Fatalf("drop response: %d msgs, status %v; want 1 StatusOverloaded", got, status)
	}
	// The in-flight count was retired (submitIO charged 1, ioDone repaid
	// it), so barrier waiters cannot hang on the dropped request.
	ten.mu.Lock()
	outstanding := ten.outstanding
	ten.mu.Unlock()
	if outstanding != 0 {
		t.Fatalf("outstanding = %d after drop, want 0", outstanding)
	}

	// Clean up the blocker's lease (it never reached a scheduler).
	bctx := blocker.req.Context.(*reqCtx)
	bctx.releaseLease()
}

// TestShutdownUnderLoadPoisoned closes a multi-core server while clients
// hammer the write path with pooled payload leases in flight and recycle
// poisoning armed: any request abandoned with its lease still referenced,
// double-released, or flushed after recycling trips the poison/refcount
// checks (panic) or the race detector.
func TestShutdownUnderLoadPoisoned(t *testing.T) {
	bufpool.SetPoison(true)
	defer bufpool.SetPoison(false)

	cfg := Config{
		Addr:      "127.0.0.1:0",
		Cores:     2,
		RingSize:  64, // small ring: shutdown races enqueue backpressure
		Model:     modelA(),
		TokenRate: 1_000_000 * core.TokenUnit,
	}
	srv, err := New(cfg, storage.NewMem(16<<20))
	if err != nil {
		t.Fatal(err)
	}

	const workers = 4
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			cl, err := client.Dial(srv.Addr())
			if err != nil {
				return // accept may already be racing Close
			}
			defer cl.Close()
			h, err := cl.Register(beWritable())
			if err != nil {
				return
			}
			data := bytes.Repeat([]byte{byte(w + 1)}, 4096)
			for i := 0; ; i++ {
				// Errors are expected once Close lands; the test's
				// assertion is the absence of poison/refcount panics.
				if _, err := cl.GoWrite(h, uint32((i%64)*8), data); err != nil {
					return
				}
				if i%32 == 0 {
					if _, err := cl.Read(h, 0, 4096); err != nil {
						return
					}
				}
			}
		}(w)
	}

	time.Sleep(100 * time.Millisecond) // let the load reach steady state
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
}

// TestShedQueueHighDerivesFromRingSize is the shed-threshold regression:
// the default queue high watermark must track the configured per-core
// ring capacity (3/4 of it) instead of a fixed constant, so resizing the
// ring moves the backpressure-to-refusal crossover with it.
func TestShedQueueHighDerivesFromRingSize(t *testing.T) {
	for _, tc := range []struct {
		ring     int
		wantHigh int
	}{
		{0, 3 * DefaultRingSize / 4}, // default ring -> default watermark
		{100, 75},
		{8192, 6144},
	} {
		cfg := Config{RingSize: tc.ring}
		if err := cfg.fill(); err != nil {
			t.Fatal(err)
		}
		if cfg.Shed.QueueHigh != tc.wantHigh {
			t.Errorf("RingSize %d: QueueHigh = %d, want %d", tc.ring, cfg.Shed.QueueHigh, tc.wantHigh)
		}
	}
	// An explicit watermark is never overridden.
	cfg := Config{RingSize: 100, Shed: ctrl.ShedConfig{QueueHigh: 9}}
	if err := cfg.fill(); err != nil {
		t.Fatal(err)
	}
	if cfg.Shed.QueueHigh != 9 {
		t.Errorf("explicit QueueHigh overridden: got %d, want 9", cfg.Shed.QueueHigh)
	}
}

// TestCorePinnedChurn exercises the shared-nothing invariants under
// -race: a multi-core server with connections spread across cores,
// tenants pinned to their connection's core, and concurrent
// register/unregister churn while other connections push ledgered writes.
// The race detector proves no cross-core scheduler access; the final
// read-back proves every acknowledged write landed.
func TestCorePinnedChurn(t *testing.T) {
	srv, _ := startServer(t, func(c *Config) {
		c.Cores = 4
		c.Threads = 0
	})
	if srv.Cores() != 4 {
		t.Fatalf("Cores() = %d, want 4", srv.Cores())
	}

	// Pinning rule: every tenant registered over one connection lands on
	// that connection's core.
	cl0, err := client.Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cl0.Close()
	var handles []uint16
	for i := 0; i < 3; i++ {
		h, err := cl0.Register(beWritable())
		if err != nil {
			t.Fatal(err)
		}
		handles = append(handles, h)
	}
	first, _ := srv.lookup(handles[0])
	for _, h := range handles[1:] {
		st, ok := srv.lookup(h)
		if !ok || st.coreID != first.coreID {
			t.Fatalf("tenants on one connection landed on cores %d and %d, want co-located",
				first.coreID, st.coreID)
		}
	}

	const (
		writers = 4
		churns  = 2
		blocks  = 32
	)
	var wg sync.WaitGroup
	errCh := make(chan error, writers+churns)

	// Ledgered writers: each owns a disjoint LBA range on its own
	// connection (= its own core) and must read back everything it wrote.
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			cl, err := client.Dial(srv.Addr())
			if err != nil {
				errCh <- err
				return
			}
			defer cl.Close()
			h, err := cl.Register(beWritable())
			if err != nil {
				errCh <- err
				return
			}
			base := uint32(w * blocks * 8) // disjoint 4KiB-block ranges
			for i := 0; i < blocks; i++ {
				data := bytes.Repeat([]byte{byte(w<<4 | i&0xF)}, 4096)
				if err := cl.Write(h, base+uint32(i*8), data); err != nil {
					errCh <- fmt.Errorf("writer %d block %d: %w", w, i, err)
					return
				}
			}
			for i := 0; i < blocks; i++ {
				want := bytes.Repeat([]byte{byte(w<<4 | i&0xF)}, 4096)
				got, err := cl.Read(h, base+uint32(i*8), 4096)
				if err != nil {
					errCh <- fmt.Errorf("writer %d readback %d: %w", w, i, err)
					return
				}
				if !bytes.Equal(got, want) {
					errCh <- fmt.Errorf("writer %d block %d: ledgered write lost", w, i)
					return
				}
			}
		}(w)
	}

	// Churners: register/unregister and small I/O on their own
	// connections, concurrently with the ledgered writers.
	for c := 0; c < churns; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			cl, err := client.Dial(srv.Addr())
			if err != nil {
				errCh <- err
				return
			}
			defer cl.Close()
			for i := 0; i < 48; i++ {
				h, err := cl.Register(beWritable())
				if err != nil {
					errCh <- fmt.Errorf("churn %d register %d: %w", c, i, err)
					return
				}
				if _, err := cl.Read(h, uint32(1024+c*16), 512); err != nil {
					errCh <- fmt.Errorf("churn %d read %d: %w", c, i, err)
					return
				}
				if err := cl.Unregister(h); err != nil {
					errCh <- fmt.Errorf("churn %d unregister %d: %w", c, i, err)
					return
				}
			}
		}(c)
	}

	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
}
