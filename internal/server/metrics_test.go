package server

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"github.com/reflex-go/reflex/internal/obs"
)

// waitCounter polls an eventually consistent counter (responses and spans
// are recorded just after the reply is transmitted, so a client can observe
// completion a hair before the counter moves).
func waitCounter(t *testing.T, fn func() float64, want float64) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if fn() >= want {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("counter stuck at %v, want %v", fn(), want)
}

// TestPrometheusCountersMatchClient is the acceptance check: run a known
// number of operations through the client and require the scraped
// Prometheus text to report exactly those counts.
func TestPrometheusCountersMatchClient(t *testing.T) {
	srv, cl := startServer(t, nil)
	h, err := cl.Register(beWritable())
	if err != nil {
		t.Fatal(err)
	}

	const writes, reads = 7, 11
	buf := make([]byte, 4096)
	for i := 0; i < writes; i++ {
		if err := cl.Write(h, uint32(i*8), buf); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < reads; i++ {
		if _, err := cl.Read(h, uint32(i*8), 4096); err != nil {
			t.Fatal(err)
		}
	}

	reg := srv.Metrics()
	lookup := func(name string, labels ...obs.Label) float64 {
		v, ok := reg.LookupValue(name, labels...)
		if !ok {
			t.Fatalf("metric %s%v not registered", name, labels)
		}
		return v
	}
	if got := lookup("srv_requests_total", obs.L("op", "read")); got != reads {
		t.Errorf("read requests = %v, want %d", got, reads)
	}
	if got := lookup("srv_requests_total", obs.L("op", "write")); got != writes {
		t.Errorf("write requests = %v, want %d", got, writes)
	}
	waitCounter(t, func() float64 { return lookup("srv_responses_total") }, writes+reads)
	if got := lookup("srv_tenants_registered_total"); got != 1 {
		t.Errorf("registrations = %v", got)
	}
	if got := lookup("srv_bytes_total", obs.L("op", "write")); got != writes*4096 {
		t.Errorf("write bytes = %v", got)
	}

	// The same numbers must appear in the Prometheus text scrape.
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		fmt.Sprintf(`srv_requests_total{op="read"} %d`, reads),
		fmt.Sprintf(`srv_requests_total{op="write"} %d`, writes),
		fmt.Sprintf("srv_responses_total %d", writes+reads),
		`srv_request_latency_ns{op="read",quantile="0.95"}`,
		"srv_conns 1",
		"srv_tenants 1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("scrape missing %q", want)
		}
	}
}

// TestSlowLogBreakdowns injects device latency and requires the top-K
// slow-request log to carry per-stage breakdowns dominated by the device.
func TestSlowLogBreakdowns(t *testing.T) {
	srv, cl := startServer(t, func(c *Config) {
		c.ReadLatency = 3 * time.Millisecond
	})
	h, err := cl.Register(beWritable())
	if err != nil {
		t.Fatal(err)
	}
	const reads = 5
	for i := 0; i < reads; i++ {
		if _, err := cl.Read(h, uint32(i*8), 4096); err != nil {
			t.Fatal(err)
		}
	}
	waitCounter(t, func() float64 { return float64(srv.TraceRing().Count()) }, reads)

	slow := srv.TraceRing().Slowest()
	if len(slow) != reads {
		t.Fatalf("slow log has %d spans, want %d", len(slow), reads)
	}
	for _, sp := range slow {
		if sp.Total() < int64(3*time.Millisecond) {
			t.Errorf("span %d total %v < injected 3ms", sp.ID, sp.Total())
		}
		bd := sp.Breakdown()
		for _, stage := range []string{"parse=", "admit=", "submit=", "devdone=", "tx="} {
			if !strings.Contains(bd, stage) {
				t.Errorf("breakdown missing %s: %s", stage, bd)
			}
		}
	}
	var b strings.Builder
	if err := srv.TraceRing().WriteSlowLog(&b); err != nil {
		t.Fatal(err)
	}
	if lines := strings.Count(b.String(), "\n"); lines != reads {
		t.Errorf("slow log lines = %d, want %d", lines, reads)
	}
}

// TestStartSampler exercises the wall-clock SLO sampler end to end.
func TestStartSampler(t *testing.T) {
	srv, cl := startServer(t, nil)
	h, err := cl.Register(beWritable())
	if err != nil {
		t.Fatal(err)
	}
	series, stop := srv.StartSampler(5 * time.Millisecond)
	for i := 0; i < 20; i++ {
		if _, err := cl.Read(h, uint32(i*8), 4096); err != nil {
			t.Fatal(err)
		}
		time.Sleep(2 * time.Millisecond)
	}
	stop()
	if series.Len() < 2 {
		t.Fatalf("sampler took %d samples", series.Len())
	}
	cols := series.Columns()
	for _, want := range []string{"read_p95_us", "write_p95_us", "iops", "requests_total", "q0", "q1", "bucket0_tokens"} {
		found := false
		for _, c := range cols {
			if c == want {
				found = true
			}
		}
		if !found {
			t.Errorf("missing sampler column %q (have %v)", want, cols)
		}
	}
	reqs, _ := series.Column("requests_total")
	if final := reqs[len(reqs)-1]; final != 20 {
		t.Errorf("final requests_total sample = %v, want 20", final)
	}
	var b strings.Builder
	if err := series.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(b.String(), "time_us,read_p95_us") {
		t.Errorf("CSV header = %q", strings.SplitN(b.String(), "\n", 2)[0])
	}
}
