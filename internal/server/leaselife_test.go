package server

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
	"time"

	"github.com/reflex-go/reflex/internal/bufpool"
	"github.com/reflex-go/reflex/internal/client"
	"github.com/reflex-go/reflex/internal/protocol"
)

// TestLeaseLifetimeUnderReplicationChurn is the pooled-buffer lifetime
// regression test (run it under -race). With buffer poisoning enabled,
// any lease that recycles while a reference is still outstanding — a
// write payload shared between the local device apply and the replication
// forward, a read-response buffer awaiting its coalesced flush, a
// checksum-sealed client frame pending a replay — is overwritten with
// 0xDB the moment it returns to the pool, so a lifetime bug surfaces as a
// concrete data mismatch (or a client-verified checksum failure) instead
// of a silent heisenbug.
//
// The churn deliberately overlaps every lease path at once: simulated
// device latency keeps completions on timer goroutines, replication holds
// write payloads across the backup forward, hedged checksummed reads pull
// pooled response frames on both replicas, and the shared pool recycles
// buffers between all of them.
func TestLeaseLifetimeUnderReplicationChurn(t *testing.T) {
	bufpool.SetPoison(true)
	defer bufpool.SetPoison(false)

	p := startPair(t, func(c *Config) {
		// Keep completions asynchronous so submission, flush, replication
		// and response goroutines genuinely interleave.
		c.ReadLatency = 100 * time.Microsecond
		c.WriteLatency = 200 * time.Microsecond
	})
	cl := p.dialCluster(t, client.Options{
		Timeout:       10 * time.Second,
		Checksum:      true,
		HedgeReads:    true,
		HedgeMinDelay: 100 * time.Microsecond,
	})
	h, err := cl.Register(beWritable())
	if err != nil {
		t.Fatal(err)
	}

	const (
		workers = 8
		iters   = 120
		ioSize  = 4096
		stride  = 16 // sectors between worker ranges (8 used per I/O)
	)
	fill := func(buf []byte, w, i int) {
		for j := range buf {
			buf[j] = byte(w*37 + i*11 + j)
		}
	}

	errCh := make(chan error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			buf := make([]byte, ioSize)
			lba := uint32(w * stride)
			for i := 0; i < iters; i++ {
				fill(buf, w, i)
				if err := cl.Write(h, lba, buf); err != nil {
					errCh <- fmt.Errorf("worker %d iter %d write: %w", w, i, err)
					return
				}
				got, err := cl.Read(h, lba, ioSize)
				if err != nil {
					errCh <- fmt.Errorf("worker %d iter %d read: %w", w, i, err)
					return
				}
				if !bytes.Equal(got, buf) {
					errCh <- fmt.Errorf("worker %d iter %d: read-back mismatch (poisoned lease recycled under an outstanding reference?)", w, i)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}

	// Every acked write must have survived replication intact: read each
	// worker's final pattern straight off the backup. A write-payload
	// lease released before the backup-bound flush would have shipped
	// poison bytes here.
	bc, err := client.Dial(p.b.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer bc.Close()
	bh, err := bc.Register(protocol.Registration{BestEffort: true})
	if err != nil {
		t.Fatal(err)
	}
	want := make([]byte, ioSize)
	for w := 0; w < workers; w++ {
		fill(want, w, iters-1)
		got, err := bc.Read(bh, uint32(w*stride), ioSize)
		if err != nil {
			t.Fatalf("backup read worker %d: %v", w, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("worker %d: backup replica diverged from acked write (lease recycled before the replication flush?)", w)
		}
	}

	// Sanity: the churn actually exercised the pool (otherwise poisoning
	// proved nothing).
	var hits uint64
	for _, cs := range bufpool.Stats() {
		hits += cs.Hits
	}
	if hits == 0 {
		t.Fatal("buffer pool saw no hits during churn; lease paths not exercised")
	}
}
