package server

import (
	"github.com/reflex-go/reflex/internal/bufpool"
	"github.com/reflex-go/reflex/internal/core"
	"github.com/reflex-go/reflex/internal/protocol"
	"github.com/reflex-go/reflex/internal/readcache"
	"github.com/reflex-go/reflex/internal/storage"
)

// cachedBackend wraps a device backend so that every write invalidates
// the read cache before the caller can acknowledge it. All mutation
// paths converge here — client OpWrite dispatch, the replication stream
// apply on a backup, and migration catch-up writes — which is what makes
// the cache's consistency argument (DESIGN.md §17) hold on every role:
// the invalidation happens after the bytes land and before any ack
// propagates, and it also bumps the fill fence so a racing fill of
// pre-write data aborts.
type cachedBackend struct {
	storage.Backend
	cache *readcache.Cache
	dev   int
}

func (cb *cachedBackend) WriteAt(p []byte, off int64) (int, error) {
	n, err := cb.Backend.WriteAt(p, off)
	if n > 0 {
		first := uint64(off) / readcache.BlockSize
		last := (uint64(off) + uint64(n) - 1) / readcache.BlockSize
		cb.cache.Invalidate(readcache.Key(cb.dev, first), last-first+1)
	}
	return n, err
}

// probeCache looks a read up in the DRAM cache at dispatch time. On a
// hit the response payload is copied into a pooled lease under the
// cache's segment lock (ctx.cbuf; the pcore serves it without touching
// the backend) and the returned cost override charges the tenant the
// cache-service cost instead of a device read. On an admitted miss the
// fill fence is recorded on ctx so the pcore commits the block after the
// backend read. Reads that straddle a 4KB boundary skip the cache — the
// entry granularity is one costing page.
func (s *Server) probeCache(ctx *reqCtx, ten *stenant) core.Tokens {
	off := uint64(ctx.hdr.LBA) * protocol.BlockSize
	n := uint64(ctx.hdr.Count)
	if n == 0 || off%readcache.BlockSize+n > readcache.BlockSize {
		return 0
	}
	if ten.vol != nil {
		// Volume tenants cache at PHYSICAL blocks: a CoW break remaps the
		// logical block to a fresh extent, which changes the cache key, so
		// a snapshot-then-overwrite can never serve pre-snapshot bytes to a
		// live read (or vice versa). Unmapped and hole blocks skip the
		// cache — they read as zeros straight from the chain walk.
		poff, ok := ten.vol.Translate(int64(off), int(n))
		if !ok {
			return 0
		}
		off = uint64(poff)
	}
	key := readcache.Key(ten.device, off/readcache.BlockSize)
	lease := bufpool.Get(int(n) + protocol.ChecksumSize)
	hit, admit, epoch := s.cache.Probe(key, int(off%readcache.BlockSize), lease.Bytes()[:n])
	if hit {
		ctx.cbuf = lease
		return s.devices[ten.device].cfg.Model.CacheServeCost()
	}
	lease.Release()
	// Fills only work on exactly block-aligned full-page reads: the
	// response buffer then IS the block image, so the fill is a copy of
	// bytes already read — no second backend access.
	if admit && off%readcache.BlockSize == 0 && n == readcache.BlockSize {
		ctx.fill = true
		ctx.fillKey = key
		ctx.fillEpoch = epoch
	}
	return 0
}
