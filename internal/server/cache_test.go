package server

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/reflex-go/reflex/internal/client"
	"github.com/reflex-go/reflex/internal/protocol"
	"github.com/reflex-go/reflex/internal/readcache"
	"github.com/reflex-go/reflex/internal/shard"
)

// Cache consistency tests. The property under test throughout: once a
// write is acknowledged, no later read may observe the pre-write bytes —
// through the cache or around it (DESIGN.md §17). "Versioned block" here
// means a 4KB page carrying a u64 version header with every remaining
// byte equal to byte(version), so a reader can detect both staleness and
// torn mixes of two writes.

// cacheLBAStride spaces test blocks one cache line (8 LBAs = 4KB) apart.
const cacheLBAStride = readcache.BlockSize / protocol.BlockSize

func startCacheServer(t *testing.T, mutate func(*Config)) (*Server, *client.Client) {
	t.Helper()
	return startServer(t, func(cfg *Config) {
		cfg.CacheBytes = 4 << 20
		cfg.CacheAdmit = "always" // deterministic warm-up: first miss fills
		if mutate != nil {
			mutate(cfg)
		}
	})
}

func versionedBlock(v uint64) []byte {
	b := bytes.Repeat([]byte{byte(v)}, readcache.BlockSize)
	binary.BigEndian.PutUint64(b, v)
	return b
}

// checkVersioned decodes a versioned block, failing on a torn mix.
func checkVersioned(p []byte) (uint64, error) {
	if len(p) != readcache.BlockSize {
		return 0, fmt.Errorf("read %d bytes, want %d", len(p), readcache.BlockSize)
	}
	v := binary.BigEndian.Uint64(p)
	for i := 8; i < len(p); i++ {
		if p[i] != byte(v) {
			return 0, fmt.Errorf("torn block: header v%d but byte %d is %#x", v, i, p[i])
		}
	}
	return v, nil
}

// TestCacheHitServesFreshData: the smoke version of the consistency
// argument — a cached block must vanish the moment it is overwritten.
func TestCacheHitServesFreshData(t *testing.T) {
	srv, cl := startCacheServer(t, nil)
	h, err := cl.Register(beWritable())
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.Write(h, 0, versionedBlock(1)); err != nil {
		t.Fatal(err)
	}
	// First read fills, second must hit.
	for i := 0; i < 2; i++ {
		got, err := cl.Read(h, 0, readcache.BlockSize)
		if err != nil {
			t.Fatal(err)
		}
		if v, err := checkVersioned(got); err != nil || v != 1 {
			t.Fatalf("read %d: v=%d err=%v", i, v, err)
		}
	}
	st := srv.cache.Stats()
	if st.Hits == 0 {
		t.Fatalf("no cache hit after repeated read: %+v", st)
	}
	// Overwrite, then read: the acknowledged write must win.
	if err := cl.Write(h, 0, versionedBlock(2)); err != nil {
		t.Fatal(err)
	}
	got, err := cl.Read(h, 0, readcache.BlockSize)
	if err != nil {
		t.Fatal(err)
	}
	if v, err := checkVersioned(got); err != nil || v != 2 {
		t.Fatalf("post-write read served stale data: v=%d err=%v", v, err)
	}
}

// TestCacheReadHitWriteInvalidateRace hammers one hot block with a
// versioned writer while readers race it through the cache (run under
// -race in CI). Two invariants: no reader ever sees a torn block, and no
// reader's successive reads go backwards in version — a stale fill
// committing after an invalidation would violate the second.
func TestCacheReadHitWriteInvalidateRace(t *testing.T) {
	srv, wcl := startCacheServer(t, nil)
	h, err := wcl.Register(beWritable())
	if err != nil {
		t.Fatal(err)
	}
	if err := wcl.Write(h, 0, versionedBlock(1)); err != nil {
		t.Fatal(err)
	}

	const writes = 400
	const readers = 4
	var done atomic.Bool
	var wg sync.WaitGroup
	errc := make(chan error, readers+1)

	wg.Add(1)
	go func() {
		defer wg.Done()
		defer done.Store(true)
		for v := uint64(2); v <= writes; v++ {
			if err := wcl.Write(h, 0, versionedBlock(v)); err != nil {
				errc <- err
				return
			}
		}
	}()
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			rcl, err := client.Dial(srv.Addr())
			if err != nil {
				errc <- err
				return
			}
			defer rcl.Close()
			rh, err := rcl.Register(beWritable())
			if err != nil {
				errc <- err
				return
			}
			last := uint64(0)
			for !done.Load() {
				got, err := rcl.Read(rh, 0, readcache.BlockSize)
				if err != nil {
					errc <- err
					return
				}
				v, err := checkVersioned(got)
				if err != nil {
					errc <- err
					return
				}
				if v < last {
					errc <- fmt.Errorf("reader went back in time: v%d after v%d", v, last)
					return
				}
				last = v
			}
		}()
	}
	wg.Wait()
	select {
	case err := <-errc:
		t.Fatal(err)
	default:
	}
	// The cache must have been in the fight, not bypassed.
	st := srv.cache.Stats()
	if st.Hits == 0 || st.Invalidations == 0 {
		t.Fatalf("race ran around the cache: %+v", st)
	}
	got, err := wcl.Read(h, 0, readcache.BlockSize)
	if err != nil {
		t.Fatal(err)
	}
	if v, err := checkVersioned(got); err != nil || v != writes {
		t.Fatalf("final read: v=%d err=%v, want v=%d", v, err, writes)
	}
}

// cacheTestMap builds a 4-shard map owned entirely by "n1".
func cacheTestMap(addr string) *shard.Map {
	return &shard.Map{
		Version:     1,
		ShardBlocks: 64,
		Nodes: []shard.Node{
			{Name: "n1", Addrs: []string{addr}, State: shard.StateAlive},
			{Name: "n2", Addrs: []string{"127.0.0.1:1"}, State: shard.StateAlive},
		},
		Assign:    []int32{0, 0, 0, 0},
		Migrating: []int32{shard.Unassigned, shard.Unassigned, shard.Unassigned, shard.Unassigned},
	}
}

// TestCacheMoveShardInterleave pins the shard-map/cache interlock: a map
// install that moves ownership flushes the whole cache (blocks this node
// cached may be rewritten elsewhere while unowned), while a no-move
// version bump keeps the working set warm.
func TestCacheMoveShardInterleave(t *testing.T) {
	srv, cl := startCacheServer(t, func(cfg *Config) { cfg.NodeName = "n1" })
	m1 := cacheTestMap(srv.Addr())
	if _, st := srv.InstallShardMap(m1); st != protocol.StatusOK {
		t.Fatalf("install v1: %s", st)
	}
	h, err := cl.Register(beWritable())
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.Write(h, 0, versionedBlock(7)); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Read(h, 0, readcache.BlockSize); err != nil {
		t.Fatal(err)
	}
	if e := srv.cache.Stats().Entries; e == 0 {
		t.Fatal("read did not fill the cache")
	}

	// Version bump, same assignment: zero moves, cache stays warm.
	m2 := m1.Clone()
	if _, st := srv.InstallShardMap(m2); st != protocol.StatusOK {
		t.Fatalf("install v2: %s", st)
	}
	if e := srv.cache.Stats().Entries; e == 0 {
		t.Fatal("no-move install flushed the cache")
	}

	// Shard 3 moves to n2 (our test block lives in shard 0): the cache
	// must be dropped wholesale anyway — flush-on-move is conservative.
	m3 := m2.Clone()
	m3.Assign[3] = 1
	if _, st := srv.InstallShardMap(m3); st != protocol.StatusOK {
		t.Fatalf("install v3: %s", st)
	}
	if e := srv.cache.Stats().Entries; e != 0 {
		t.Fatalf("move install left %d cached entries", e)
	}

	// Still-owned blocks keep serving correct data and re-warm.
	got, err := cl.Read(h, 0, readcache.BlockSize)
	if err != nil {
		t.Fatal(err)
	}
	if v, err := checkVersioned(got); err != nil || v != 7 {
		t.Fatalf("post-move read: v=%d err=%v", v, err)
	}
	if _, err := cl.Read(h, 0, readcache.BlockSize); err != nil {
		t.Fatal(err)
	}
	if e := srv.cache.Stats().Entries; e == 0 {
		t.Fatal("cache did not re-warm after the move flush")
	}
}

// TestCacheChurnSoak runs ledgered writers over a small block set with
// readers verifying strict read-back: every read must return a version at
// least as new as the last acknowledged write to that block at the moment
// the read was issued.
func TestCacheChurnSoak(t *testing.T) {
	srv, _ := startCacheServer(t, nil)
	const (
		blocks  = 8
		writers = 4
		readers = 4
	)
	var acked [blocks]atomic.Uint64
	var done atomic.Bool
	var wg sync.WaitGroup
	errc := make(chan error, writers+readers)

	newClient := func() (*client.Client, uint16, error) {
		cl, err := client.Dial(srv.Addr())
		if err != nil {
			return nil, 0, err
		}
		h, err := cl.Register(beWritable())
		if err != nil {
			cl.Close()
			return nil, 0, err
		}
		return cl, h, nil
	}

	// Seed every block at v1 so readers never see the zero page.
	{
		cl, h, err := newClient()
		if err != nil {
			t.Fatal(err)
		}
		for b := 0; b < blocks; b++ {
			if err := cl.Write(h, uint32(b*cacheLBAStride), versionedBlock(1)); err != nil {
				t.Fatal(err)
			}
			acked[b].Store(1)
		}
		cl.Close()
	}

	deadline := time.Now().Add(400 * time.Millisecond)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			cl, h, err := newClient()
			if err != nil {
				errc <- err
				return
			}
			defer cl.Close()
			// Each writer owns blocks ≡ w (mod writers): versions per
			// block stay monotone without cross-writer coordination.
			v := uint64(1)
			for time.Now().Before(deadline) {
				v++
				for b := w; b < blocks; b += writers {
					if err := cl.Write(h, uint32(b*cacheLBAStride), versionedBlock(v)); err != nil {
						errc <- err
						return
					}
					acked[b].Store(v)
				}
			}
		}(w)
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			cl, h, err := newClient()
			if err != nil {
				errc <- err
				return
			}
			defer cl.Close()
			for i := 0; !done.Load(); i++ {
				b := (i*7 + r) % blocks
				floor := acked[b].Load()
				got, err := cl.Read(h, uint32(b*cacheLBAStride), readcache.BlockSize)
				if err != nil {
					errc <- err
					return
				}
				v, err := checkVersioned(got)
				if err != nil {
					errc <- fmt.Errorf("block %d: %v", b, err)
					return
				}
				if v < floor {
					errc <- fmt.Errorf("block %d: read v%d, but v%d was already acked", b, v, floor)
					return
				}
			}
		}(r)
	}

	// Writers finish first; readers stop after, so the tail of the run
	// reads a quiescent ledger.
	go func() {
		for time.Now().Before(deadline) {
			time.Sleep(10 * time.Millisecond)
		}
		time.Sleep(20 * time.Millisecond)
		done.Store(true)
	}()
	wg.Wait()
	select {
	case err := <-errc:
		t.Fatal(err)
	default:
	}

	// Quiescent read-back: every block at exactly its last acked version.
	cl, h, err := newClient()
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	for b := 0; b < blocks; b++ {
		got, err := cl.Read(h, uint32(b*cacheLBAStride), readcache.BlockSize)
		if err != nil {
			t.Fatal(err)
		}
		v, err := checkVersioned(got)
		if err != nil {
			t.Fatalf("block %d: %v", b, err)
		}
		if want := acked[b].Load(); v != want {
			t.Fatalf("block %d: final v%d, want v%d", b, v, want)
		}
	}
	if st := srv.cache.Stats(); st.Hits == 0 || st.Fills == 0 {
		t.Fatalf("soak never exercised the cache: %+v", st)
	}
}
