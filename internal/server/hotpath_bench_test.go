package server

import (
	"runtime"
	"sync"
	"testing"

	"github.com/reflex-go/reflex/internal/client"
	"github.com/reflex-go/reflex/internal/core"
	"github.com/reflex-go/reflex/internal/storage"
)

// Hot-path benchmarks: the real TCP/UDP request/response path over
// loopback, pipelined the way the paper's clients drive a dataplane core
// (many in-flight requests per connection, §3.2.1). These are the numbers
// BENCH_hotpath.json tracks; the CI bench-hotpath job runs them with
// -benchmem so allocation regressions on the steady-state path are
// visible.

// benchServer starts a loopback server tuned for throughput measurement:
// in-memory backend, no simulated device latency, effectively unthrottled
// token rate.
func benchServer(b *testing.B, mutate func(*Config)) *Server {
	b.Helper()
	cfg := Config{
		Addr:      "127.0.0.1:0",
		Threads:   2,
		Model:     modelA(),
		TokenRate: 100_000_000 * core.TokenUnit,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	srv, err := New(cfg, storage.NewMem(64<<20))
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { srv.Close() })
	return srv
}

// benchEcho drives size-byte pipelined reads with the given in-flight
// window and reports msg/s.
func benchEcho(b *testing.B, cl *client.Client, size, window int) {
	b.Helper()
	h, err := cl.Register(beWritable())
	if err != nil {
		b.Fatal(err)
	}
	benchEchoHandle(b, cl, h, size, window)
}

// benchEchoHandle is benchEcho on an already-registered tenant handle.
func benchEchoHandle(b *testing.B, cl *client.Client, h uint16, size, window int) {
	b.Helper()
	// Prime the block range so reads return real data.
	data := make([]byte, size)
	for i := range data {
		data[i] = byte(i)
	}
	if err := cl.Write(h, 0, data); err != nil {
		b.Fatal(err)
	}
	calls := make([]*client.Call, 0, window)
	b.SetBytes(int64(size))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(calls) == window {
			c := calls[0]
			calls = calls[:copy(calls, calls[1:])]
			<-c.Done
			if c.Err != nil {
				b.Fatal(c.Err)
			}
		}
		c, err := cl.GoRead(h, 0, size)
		if err != nil {
			b.Fatal(err)
		}
		calls = append(calls, c)
	}
	for _, c := range calls {
		<-c.Done
		if c.Err != nil {
			b.Fatal(c.Err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "msg/s")
}

// BenchmarkHotPathTCP measures pipelined 4KB reads over loopback TCP.
func BenchmarkHotPathTCP(b *testing.B) {
	srv := benchServer(b, nil)
	cl, err := client.Dial(srv.Addr())
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { cl.Close() })
	benchEcho(b, cl, 4096, 256)
}

// BenchmarkHotPathTCPCacheHit is BenchmarkHotPathTCP with the DRAM read
// cache on and a single hot block, so steady state serves ~100% hits: the
// pcore's cache-hit service path (pooled copy-out, no backend access).
// Run with -benchmem; hits must not add steady-state allocations over the
// plain hot path.
func BenchmarkHotPathTCPCacheHit(b *testing.B) {
	srv := benchServer(b, func(c *Config) {
		c.CacheBytes = 4 << 20
		c.CacheAdmit = "always"
	})
	cl, err := client.Dial(srv.Addr())
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { cl.Close() })
	benchEcho(b, cl, 4096, 256)
	// The framework's small calibration runs can finish before the single
	// fill commits; only a real measurement run must be hit-dominated.
	st := srv.cache.Stats()
	if b.N > 1024 && st.Hits == 0 {
		b.Fatalf("cache-hit benchmark never hit: %+v", st)
	}
	if st.Hits+st.Misses > 0 {
		b.ReportMetric(float64(st.Hits)/float64(st.Hits+st.Misses)*100, "hit%")
	}
}

// BenchmarkHotPathTCPVolume is BenchmarkHotPathTCP through a
// thin-provisioned volume: every read translates a logical LBA through
// the volume's extent map before hitting the backend. Run with -benchmem;
// the volume path must not add steady-state allocations over the raw
// device path (Translate and the in-place overwrite path are
// allocation-free by construction).
func BenchmarkHotPathTCPVolume(b *testing.B) {
	srv := benchServer(b, func(c *Config) { c.VolumeBytes = 16 << 20 })
	cl, err := client.Dial(srv.Addr())
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { cl.Close() })
	vol, err := cl.VolCreate("bench", 8192)
	if err != nil {
		b.Fatal(err)
	}
	h, err := cl.OpenVolume(beWritable(), vol)
	if err != nil {
		b.Fatal(err)
	}
	benchEchoHandle(b, cl, h, 4096, 256)
}

// BenchmarkHotPathUDP measures pipelined 4KB reads over loopback UDP with
// a small window (datagram sockets have shallow kernel buffers).
func BenchmarkHotPathUDP(b *testing.B) {
	srv := benchServer(b, func(c *Config) { c.UDPAddr = "127.0.0.1:0" })
	cl, err := client.DialUDP(srv.UDPAddr())
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { cl.Close() })
	benchEcho(b, cl, 4096, 16)
}

// BenchmarkHotPathTCPMulticore runs one pipelined connection per core on
// a server with a core per available CPU: the shared-nothing scaling
// number (aggregate msg/s across all cores). cmd/reflex-bench -hotpath
// sweeps the same shape over the GOMAXPROCS ladder for BENCH_hotpath.json.
func BenchmarkHotPathTCPMulticore(b *testing.B) {
	n := runtime.GOMAXPROCS(0)
	if n > 8 {
		n = 8
	}
	srv := benchServer(b, func(c *Config) { c.Cores = n })
	clients := make([]*client.Client, n)
	handles := make([]uint16, n)
	data := make([]byte, 4096)
	for i := range data {
		data[i] = byte(i)
	}
	for i := 0; i < n; i++ {
		cl, err := client.Dial(srv.Addr())
		if err != nil {
			b.Fatal(err)
		}
		b.Cleanup(func() { cl.Close() })
		h, err := cl.Register(beWritable())
		if err != nil {
			b.Fatal(err)
		}
		if err := cl.Write(h, 0, data); err != nil {
			b.Fatal(err)
		}
		clients[i] = cl
		handles[i] = h
	}
	const window = 128
	per := b.N / n
	if per == 0 {
		per = 1
	}
	b.SetBytes(4096)
	b.ReportAllocs()
	b.ResetTimer()
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			cl, h := clients[i], handles[i]
			calls := make([]*client.Call, 0, window)
			for j := 0; j < per; j++ {
				if len(calls) == window {
					c := calls[0]
					calls = calls[:copy(calls, calls[1:])]
					<-c.Done
					if c.Err != nil {
						errs[i] = c.Err
						return
					}
				}
				c, err := cl.GoRead(h, 0, 4096)
				if err != nil {
					errs[i] = err
					return
				}
				calls = append(calls, c)
			}
			for _, c := range calls {
				<-c.Done
				if c.Err != nil {
					errs[i] = c.Err
					return
				}
			}
		}(i)
	}
	wg.Wait()
	b.StopTimer()
	for _, err := range errs {
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(per*n)/b.Elapsed().Seconds(), "msg/s")
	b.ReportMetric(float64(n), "cores")
}
