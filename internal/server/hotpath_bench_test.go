package server

import (
	"testing"

	"github.com/reflex-go/reflex/internal/client"
	"github.com/reflex-go/reflex/internal/core"
	"github.com/reflex-go/reflex/internal/storage"
)

// Hot-path benchmarks: the real TCP/UDP request/response path over
// loopback, pipelined the way the paper's clients drive a dataplane core
// (many in-flight requests per connection, §3.2.1). These are the numbers
// BENCH_hotpath.json tracks; the CI bench-hotpath job runs them with
// -benchmem so allocation regressions on the steady-state path are
// visible.

// benchServer starts a loopback server tuned for throughput measurement:
// in-memory backend, no simulated device latency, effectively unthrottled
// token rate.
func benchServer(b *testing.B, mutate func(*Config)) *Server {
	b.Helper()
	cfg := Config{
		Addr:      "127.0.0.1:0",
		Threads:   2,
		Model:     modelA(),
		TokenRate: 100_000_000 * core.TokenUnit,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	srv, err := New(cfg, storage.NewMem(64<<20))
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { srv.Close() })
	return srv
}

// benchEcho drives size-byte pipelined reads with the given in-flight
// window and reports msg/s.
func benchEcho(b *testing.B, cl *client.Client, size, window int) {
	b.Helper()
	h, err := cl.Register(beWritable())
	if err != nil {
		b.Fatal(err)
	}
	// Prime the block range so reads return real data.
	data := make([]byte, size)
	for i := range data {
		data[i] = byte(i)
	}
	if err := cl.Write(h, 0, data); err != nil {
		b.Fatal(err)
	}
	calls := make([]*client.Call, 0, window)
	b.SetBytes(int64(size))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(calls) == window {
			c := calls[0]
			calls = calls[:copy(calls, calls[1:])]
			<-c.Done
			if c.Err != nil {
				b.Fatal(c.Err)
			}
		}
		c, err := cl.GoRead(h, 0, size)
		if err != nil {
			b.Fatal(err)
		}
		calls = append(calls, c)
	}
	for _, c := range calls {
		<-c.Done
		if c.Err != nil {
			b.Fatal(c.Err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "msg/s")
}

// BenchmarkHotPathTCP measures pipelined 4KB reads over loopback TCP.
func BenchmarkHotPathTCP(b *testing.B) {
	srv := benchServer(b, nil)
	cl, err := client.Dial(srv.Addr())
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { cl.Close() })
	benchEcho(b, cl, 4096, 256)
}

// BenchmarkHotPathUDP measures pipelined 4KB reads over loopback UDP with
// a small window (datagram sockets have shallow kernel buffers).
func BenchmarkHotPathUDP(b *testing.B) {
	srv := benchServer(b, func(c *Config) { c.UDPAddr = "127.0.0.1:0" })
	cl, err := client.DialUDP(srv.UDPAddr())
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { cl.Close() })
	benchEcho(b, cl, 4096, 16)
}
