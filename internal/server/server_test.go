package server

import (
	"bytes"
	"errors"
	"net"
	"sync"
	"testing"
	"time"

	"github.com/reflex-go/reflex/internal/client"
	"github.com/reflex-go/reflex/internal/core"
	"github.com/reflex-go/reflex/internal/protocol"
	"github.com/reflex-go/reflex/internal/storage"
)

func modelA() core.CostModel {
	return core.CostModel{
		ReadCost:         core.TokenUnit,
		ReadOnlyReadCost: core.TokenUnit / 2,
		WriteCost:        10 * core.TokenUnit,
	}
}

func startServer(t *testing.T, mutate func(*Config)) (*Server, *client.Client) {
	t.Helper()
	cfg := Config{
		Addr:      "127.0.0.1:0",
		Threads:   2,
		Model:     modelA(),
		TokenRate: 1_000_000 * core.TokenUnit, // effectively unthrottled
	}
	if mutate != nil {
		mutate(&cfg)
	}
	srv, err := New(cfg, storage.NewMem(64<<20))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	cl, err := client.Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cl.Close() })
	return srv, cl
}

func beWritable() protocol.Registration {
	return protocol.Registration{BestEffort: true, Writable: true}
}

func TestRegisterWriteReadRoundTrip(t *testing.T) {
	_, cl := startServer(t, nil)
	h, err := cl.Register(beWritable())
	if err != nil {
		t.Fatal(err)
	}
	if h == 0 {
		t.Fatal("zero handle")
	}
	data := bytes.Repeat([]byte{0xA7}, 4096)
	if err := cl.Write(h, 128, data); err != nil {
		t.Fatal(err)
	}
	got, err := cl.Read(h, 128, 4096)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("read returned different data")
	}
	// Unwritten area reads back zero.
	zero, err := cl.Read(h, 4096, 512)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range zero {
		if b != 0 {
			t.Fatal("unwritten block not zero")
		}
	}
}

func TestLargeIO(t *testing.T) {
	_, cl := startServer(t, nil)
	h, err := cl.Register(beWritable())
	if err != nil {
		t.Fatal(err)
	}
	data := make([]byte, 256<<10)
	for i := range data {
		data[i] = byte(i * 31)
	}
	if err := cl.Write(h, 0, data); err != nil {
		t.Fatal(err)
	}
	got, err := cl.Read(h, 0, len(data))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("large IO corrupted")
	}
}

func TestWriteDeniedForReadOnlyTenant(t *testing.T) {
	_, cl := startServer(t, nil)
	h, err := cl.Register(protocol.Registration{BestEffort: true, Writable: false})
	if err != nil {
		t.Fatal(err)
	}
	err = cl.Write(h, 0, make([]byte, 512))
	if !errors.Is(err, client.ErrDenied) {
		t.Fatalf("write on read-only tenant: %v, want ErrDenied", err)
	}
	if _, err := cl.Read(h, 0, 512); err != nil {
		t.Fatalf("read on read-only tenant failed: %v", err)
	}
}

func TestNamespaceACL(t *testing.T) {
	_, cl := startServer(t, nil)
	// Namespace: LBAs [100, 200).
	h, err := cl.Register(protocol.Registration{
		BestEffort: true, Writable: true, FirstLBA: 100, LBACount: 100,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.Write(h, 100, make([]byte, 512)); err != nil {
		t.Fatalf("in-range write failed: %v", err)
	}
	if err := cl.Write(h, 99, make([]byte, 512)); !errors.Is(err, client.ErrDenied) {
		t.Fatalf("below-range write: %v, want ErrDenied", err)
	}
	// Crossing the upper boundary: starts inside, ends outside.
	if err := cl.Write(h, 199, make([]byte, 1024)); !errors.Is(err, client.ErrDenied) {
		t.Fatalf("boundary-crossing write: %v, want ErrDenied", err)
	}
	if _, err := cl.Read(h, 500, 512); !errors.Is(err, client.ErrDenied) {
		t.Fatalf("out-of-range read: %v, want ErrDenied", err)
	}
}

func TestOutOfDeviceBounds(t *testing.T) {
	_, cl := startServer(t, nil)
	h, err := cl.Register(beWritable())
	if err != nil {
		t.Fatal(err)
	}
	// Device is 64 MiB = 131072 LBAs.
	if _, err := cl.Read(h, 1<<28, 512); !errors.Is(err, client.ErrBadRequest) {
		t.Fatalf("far out-of-bounds read: %v, want ErrBadRequest", err)
	}
}

func TestUnknownHandle(t *testing.T) {
	_, cl := startServer(t, nil)
	if _, err := cl.Read(9999, 0, 512); !errors.Is(err, client.ErrNoTenant) {
		t.Fatalf("unknown handle: %v, want ErrNoTenant", err)
	}
}

func TestUnregister(t *testing.T) {
	_, cl := startServer(t, nil)
	h, err := cl.Register(beWritable())
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.Unregister(h); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Read(h, 0, 512); !errors.Is(err, client.ErrNoTenant) {
		t.Fatalf("read after unregister: %v, want ErrNoTenant", err)
	}
	if err := cl.Unregister(h); !errors.Is(err, client.ErrNoTenant) {
		t.Fatalf("double unregister: %v, want ErrNoTenant", err)
	}
}

func TestLCAdmissionControl(t *testing.T) {
	// TokenRate 280K tokens/s fits exactly one 100K IOPS @ 80% read tenant.
	_, cl := startServer(t, func(c *Config) {
		c.TokenRate = 280_000 * core.TokenUnit
	})
	lc := protocol.Registration{
		ReadPercent: 80, IOPS: 100_000, LatencyP95: 500_000, Writable: true,
	}
	if _, err := cl.Register(lc); err != nil {
		t.Fatalf("first LC tenant rejected: %v", err)
	}
	if _, err := cl.Register(lc); !errors.Is(err, client.ErrNoCapacity) {
		t.Fatalf("oversubscribed LC tenant: %v, want ErrNoCapacity", err)
	}
	// Releasing the first admits the second.
	h3, err := cl.Register(protocol.Registration{
		ReadPercent: 100, IOPS: 10_000, LatencyP95: 500_000,
	})
	if err == nil {
		_ = cl.Unregister(h3)
	}
}

func TestLCBadSLORejected(t *testing.T) {
	_, cl := startServer(t, nil)
	if _, err := cl.Register(protocol.Registration{IOPS: 0, LatencyP95: 1}); !errors.Is(err, client.ErrBadRequest) {
		t.Fatalf("zero-IOPS LC: %v, want ErrBadRequest", err)
	}
}

func TestBadNamespaceRejected(t *testing.T) {
	_, cl := startServer(t, nil)
	_, err := cl.Register(protocol.Registration{
		BestEffort: true, FirstLBA: 1 << 30 / protocol.BlockSize, LBACount: 1 << 20,
	})
	if !errors.Is(err, client.ErrBadRequest) {
		t.Fatalf("namespace beyond device: %v, want ErrBadRequest", err)
	}
}

func TestBERateLimiting(t *testing.T) {
	// A BE tenant on a 10K tokens/s server: writes cost 10 tokens, so the
	// server sustains ~1000 writes/s. 300 writes must take ~300ms.
	_, cl := startServer(t, func(c *Config) {
		c.TokenRate = 10_000 * core.TokenUnit
	})
	h, err := cl.Register(beWritable())
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	var calls []*client.Call
	data := make([]byte, 4096)
	for i := 0; i < 300; i++ {
		call, err := cl.GoWrite(h, uint32(i*8), data)
		if err != nil {
			t.Fatal(err)
		}
		calls = append(calls, call)
	}
	for _, c := range calls {
		<-c.Done
		if c.Err != nil {
			t.Fatal(c.Err)
		}
	}
	elapsed := time.Since(start)
	if elapsed < 200*time.Millisecond {
		t.Errorf("300 writes at 1000 writes/s finished in %v, want >= ~300ms (rate limiting)", elapsed)
	}
	if elapsed > 3*time.Second {
		t.Errorf("writes took %v, scheduler far too slow", elapsed)
	}
}

func TestReadsFasterThanTokenLimitedWrites(t *testing.T) {
	// On the same throttled server, 300 reads (1 token each) are ~10x
	// faster than 300 writes (10 tokens each).
	_, cl := startServer(t, func(c *Config) {
		c.TokenRate = 10_000 * core.TokenUnit
	})
	h, err := cl.Register(beWritable())
	if err != nil {
		t.Fatal(err)
	}
	run := func(write bool) time.Duration {
		start := time.Now()
		var calls []*client.Call
		for i := 0; i < 300; i++ {
			var call *client.Call
			var err error
			if write {
				call, err = cl.GoWrite(h, uint32(i*8), make([]byte, 4096))
			} else {
				call, err = cl.GoRead(h, uint32(i*8), 4096)
			}
			if err != nil {
				t.Fatal(err)
			}
			calls = append(calls, call)
		}
		for _, c := range calls {
			<-c.Done
		}
		return time.Since(start)
	}
	reads := run(false)
	writes := run(true)
	if writes < 3*reads {
		t.Errorf("writes (%v) not much slower than reads (%v) under token limits", writes, reads)
	}
}

func TestConcurrentClients(t *testing.T) {
	srv, _ := startServer(t, nil)
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for i := 0; i < 8; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			cl, err := client.Dial(srv.Addr())
			if err != nil {
				errs <- err
				return
			}
			defer cl.Close()
			h, err := cl.Register(beWritable())
			if err != nil {
				errs <- err
				return
			}
			base := uint32(i * 10000)
			for rep := 0; rep < 20; rep++ {
				data := bytes.Repeat([]byte{byte(i + rep)}, 4096)
				if err := cl.Write(h, base+uint32(rep*8), data); err != nil {
					errs <- err
					return
				}
				got, err := cl.Read(h, base+uint32(rep*8), 4096)
				if err != nil {
					errs <- err
					return
				}
				if !bytes.Equal(got, data) {
					errs <- errors.New("data corruption under concurrency")
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

func TestManyAsyncInFlight(t *testing.T) {
	_, cl := startServer(t, nil)
	h, err := cl.Register(beWritable())
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.Write(h, 0, bytes.Repeat([]byte{0x42}, 4096)); err != nil {
		t.Fatal(err)
	}
	var calls []*client.Call
	for i := 0; i < 512; i++ {
		call, err := cl.GoRead(h, 0, 4096)
		if err != nil {
			t.Fatal(err)
		}
		calls = append(calls, call)
	}
	for i, c := range calls {
		<-c.Done
		if c.Err != nil {
			t.Fatalf("call %d: %v", i, c.Err)
		}
		if len(c.Data) != 4096 || c.Data[0] != 0x42 {
			t.Fatalf("call %d returned wrong data", i)
		}
	}
}

func TestSimulatedDeviceLatency(t *testing.T) {
	_, cl := startServer(t, func(c *Config) {
		c.ReadLatency = 20 * time.Millisecond
	})
	h, err := cl.Register(beWritable())
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if _, err := cl.Read(h, 0, 512); err != nil {
		t.Fatal(err)
	}
	if el := time.Since(start); el < 20*time.Millisecond {
		t.Errorf("read with 20ms simulated latency returned in %v", el)
	}
}

func TestClientOpsAfterClose(t *testing.T) {
	_, cl := startServer(t, nil)
	h, err := cl.Register(beWritable())
	if err != nil {
		t.Fatal(err)
	}
	cl.Close()
	time.Sleep(20 * time.Millisecond) // let readLoop observe the close
	if _, err := cl.Read(h, 0, 512); !errors.Is(err, client.ErrClosed) {
		t.Fatalf("read after close: %v, want ErrClosed", err)
	}
}

func TestClientInputValidation(t *testing.T) {
	_, cl := startServer(t, nil)
	h, _ := cl.Register(beWritable())
	if _, err := cl.GoRead(h, 0, 0); !errors.Is(err, client.ErrBadRequest) {
		t.Fatalf("zero-length read: %v", err)
	}
	if _, err := cl.GoWrite(h, 0, nil); !errors.Is(err, client.ErrBadRequest) {
		t.Fatalf("empty write: %v", err)
	}
	if _, err := cl.GoRead(h, 0, protocol.MaxPayload+1); !errors.Is(err, client.ErrBadRequest) {
		t.Fatalf("oversize read: %v", err)
	}
}

func TestServerConfigValidation(t *testing.T) {
	if _, err := New(Config{Addr: "127.0.0.1:0", Threads: 100, Model: modelA(), TokenRate: 1}, storage.NewMem(1024)); err == nil {
		t.Error("100 threads accepted")
	}
	if _, err := New(Config{Addr: "127.0.0.1:0", Model: modelA()}, storage.NewMem(1024)); err == nil {
		t.Error("zero token rate accepted")
	}
	if _, err := New(Config{Addr: "127.0.0.1:0", TokenRate: 1}, storage.NewMem(1024)); err == nil {
		t.Error("zero model accepted")
	}
}

func TestServerCloseIdempotent(t *testing.T) {
	srv, _ := startServer(t, nil)
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestStatsOp(t *testing.T) {
	_, cl := startServer(t, nil)
	h, err := cl.Register(beWritable())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 25; i++ {
		if err := cl.Write(h, uint32(i*8), make([]byte, 4096)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 50; i++ {
		if _, err := cl.Read(h, uint32(i*8), 4096); err != nil {
			t.Fatal(err)
		}
	}
	st, err := cl.Stats(h)
	if err != nil {
		t.Fatal(err)
	}
	if st.Enqueued != 75 || st.Submitted != 75 {
		t.Fatalf("stats = %+v, want 75 enqueued/submitted", st)
	}
	// 25 writes x 10 tokens + 50 reads x >= 0.5 token.
	if st.SubmittedTokens < 275_000-1000 {
		t.Fatalf("submitted tokens = %d, want >= ~275000 mt", st.SubmittedTokens)
	}
	if st.QueueLen != 0 {
		t.Fatalf("queue len = %d after quiescence", st.QueueLen)
	}
	if _, err := cl.Stats(9999); !errors.Is(err, client.ErrNoTenant) {
		t.Fatalf("stats on unknown tenant: %v", err)
	}
}

func TestGarbageOnTCPPortIgnored(t *testing.T) {
	srv, cl := startServer(t, nil)
	h, err := cl.Register(beWritable())
	if err != nil {
		t.Fatal(err)
	}
	// A rogue connection sends garbage; the server drops it and keeps
	// serving everyone else.
	rogue, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	rogue.Write([]byte("GET / HTTP/1.1\r\nHost: flash\r\n\r\n"))
	rogue.Close()
	if _, err := cl.Read(h, 0, 512); err != nil {
		t.Fatalf("server unusable after garbage connection: %v", err)
	}
}

func TestAbruptClientDisconnectWithInflight(t *testing.T) {
	srv, _ := startServer(t, func(c *Config) {
		c.WriteLatency = 30 * time.Millisecond
	})
	cl, err := client.Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	h, err := cl.Register(beWritable())
	if err != nil {
		t.Fatal(err)
	}
	// Leave 20 slow writes in flight and slam the connection shut.
	for i := 0; i < 20; i++ {
		if _, err := cl.GoWrite(h, uint32(i*8), make([]byte, 4096)); err != nil {
			t.Fatal(err)
		}
	}
	cl.Close()
	time.Sleep(60 * time.Millisecond) // in-flight completions hit a dead conn
	// The server is still healthy for new clients.
	cl2, err := client.Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cl2.Close()
	h2, err := cl2.Register(beWritable())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cl2.Read(h2, 0, 512); err != nil {
		t.Fatalf("server unhealthy after abrupt disconnect: %v", err)
	}
}

func TestCloseDuringTraffic(t *testing.T) {
	srv, err := New(Config{
		Addr:      "127.0.0.1:0",
		Threads:   2,
		Model:     modelA(),
		TokenRate: 1_000_000 * core.TokenUnit,
	}, storage.NewMem(16<<20))
	if err != nil {
		t.Fatal(err)
	}
	cl, err := client.Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	h, err := cl.Register(beWritable())
	if err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	go func() {
		for {
			select {
			case <-stop:
				return
			default:
			}
			call, err := cl.GoRead(h, 0, 4096)
			if err != nil {
				return
			}
			<-call.Done
		}
	}()
	time.Sleep(20 * time.Millisecond)
	if err := srv.Close(); err != nil { // must not deadlock or panic
		t.Fatal(err)
	}
	close(stop)
}

// failingBackend errors on every access, to exercise device-error paths.
type failingBackend struct{ size int64 }

func (f failingBackend) ReadAt(p []byte, off int64) (int, error) {
	return 0, errors.New("media error")
}
func (f failingBackend) WriteAt(p []byte, off int64) (int, error) {
	return 0, errors.New("media error")
}
func (f failingBackend) Size() int64  { return f.size }
func (f failingBackend) Close() error { return nil }

func TestBackendErrorsSurfaceAsDeviceError(t *testing.T) {
	srv, err := New(Config{
		Addr: "127.0.0.1:0", Threads: 1, Model: modelA(),
		TokenRate: 1_000_000 * core.TokenUnit,
	}, failingBackend{size: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cl, err := client.Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	h, err := cl.Register(beWritable())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Read(h, 0, 512); !errors.Is(err, client.ErrDevice) {
		t.Fatalf("read on failing media: %v, want ErrDevice", err)
	}
	if err := cl.Write(h, 0, make([]byte, 512)); !errors.Is(err, client.ErrDevice) {
		t.Fatalf("write on failing media: %v, want ErrDevice", err)
	}
}
