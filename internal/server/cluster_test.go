package server

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/reflex-go/reflex/internal/client"
	"github.com/reflex-go/reflex/internal/cluster"
	"github.com/reflex-go/reflex/internal/core"
	"github.com/reflex-go/reflex/internal/faults"
	"github.com/reflex-go/reflex/internal/protocol"
	"github.com/reflex-go/reflex/internal/storage"
)

// pair is an in-process replicated primary/backup pair for tests.
type pair struct {
	a, b *Server
	bk   *cluster.Backup
}

func startPair(t *testing.T, mutateA func(*Config)) *pair {
	t.Helper()
	mk := func(epoch uint16, backup bool, mutate func(*Config)) *Server {
		cfg := Config{
			Addr:       "127.0.0.1:0",
			Threads:    2,
			Epoch:      epoch,
			BackupRole: backup,
			Model:      modelA(),
			TokenRate:  1_000_000 * core.TokenUnit,
		}
		if mutate != nil {
			mutate(&cfg)
		}
		srv, err := New(cfg, storage.NewMem(16<<20))
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { srv.Close() })
		return srv
	}
	p := &pair{
		a: mk(1, false, mutateA),
		b: mk(1, true, nil),
	}
	p.bk = cluster.StartBackup(p.a.Addr(), p.b, cluster.BackupOptions{})
	t.Cleanup(p.bk.Stop)
	bk := p.bk
	p.b.SetOnPromote(func(uint16) { go bk.Stop() })
	deadline := time.Now().Add(5 * time.Second)
	for !p.a.ReplicaCaughtUp() {
		if time.Now().After(deadline) {
			t.Fatal("backup never caught up")
		}
		time.Sleep(5 * time.Millisecond)
	}
	return p
}

func (p *pair) dialCluster(t *testing.T, o client.Options) *client.Client {
	t.Helper()
	cl, err := client.DialCluster([]string{p.a.Addr(), p.b.Addr()}, o)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cl.Close() })
	return cl
}

// TestReplicationMirrorsAckedWrites: an acked write is on the backup (read
// it straight off the backup server, which serves reads in backup role).
func TestReplicationMirrorsAckedWrites(t *testing.T) {
	p := startPair(t, nil)
	cl := p.dialCluster(t, client.Options{Timeout: 2 * time.Second})
	h, err := cl.Register(beWritable())
	if err != nil {
		t.Fatal(err)
	}
	data := bytes.Repeat([]byte{0xC7}, 4096)
	if err := cl.Write(h, 8, data); err != nil {
		t.Fatal(err)
	}

	bc, err := client.Dial(p.b.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer bc.Close()
	bh, err := bc.Register(protocol.Registration{BestEffort: true})
	if err != nil {
		t.Fatal(err)
	}
	got, err := bc.Read(bh, 8, 4096)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("acked write not present on the backup")
	}
	if p.a.Metrics() == nil || p.a.ReplicaLive() != true {
		t.Fatal("replica session not live on the primary")
	}
}

// TestMigrationSinkFailureFailsClientWrite pins the lost-acked-write
// fix: when the migration sink acks a forwarded write non-OK (the
// destination refused to apply the relayed copy), the client must NOT
// be acked StatusOK — otherwise a later cutover would make a
// destination missing that write authoritative while the client
// believes it durable. The forward ack status must surface in the
// client's write response.
func TestMigrationSinkFailureFailsClientWrite(t *testing.T) {
	srv, cl := startServer(t, nil)
	h, err := cl.Register(beWritable())
	if err != nil {
		t.Fatal(err)
	}

	// Attach a raw migration sink via a ranged OpJoin over blocks [0, 64).
	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(5 * time.Second))
	send := func(hdr *protocol.Header) {
		t.Helper()
		frame, err := protocol.AppendMessage(nil, hdr, nil)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := conn.Write(frame); err != nil {
			t.Fatal(err)
		}
	}
	send(&protocol.Header{Opcode: protocol.OpJoin, LBA: 0, Count: 64})

	br := bufio.NewReaderSize(conn, 1<<20)
	var msg protocol.Message
	if err := protocol.ReadMessageInto(br, &msg, nil); err != nil {
		t.Fatal(err)
	}
	if msg.Header.Opcode != protocol.OpJoin || !msg.Header.IsResponse() || msg.Header.Status != protocol.StatusOK {
		t.Fatalf("join handshake: %+v", msg.Header)
	}
	// Drain the catch-up (ack each chunk OK) until the marker frame.
	for {
		if err := protocol.ReadMessageInto(br, &msg, nil); err != nil {
			t.Fatal(err)
		}
		if msg.Header.Opcode == protocol.OpJoin && !msg.Header.IsResponse() {
			break // catch-up marker: the window is across
		}
		if msg.Header.Opcode == protocol.OpReplicate && !msg.Header.IsResponse() {
			send(&protocol.Header{
				Opcode: protocol.OpReplicate,
				Flags:  protocol.FlagResponse,
				Cookie: msg.Header.Cookie,
				Epoch:  msg.Header.Epoch,
				LBA:    msg.Header.LBA,
				Status: protocol.StatusOK,
			})
		}
	}

	// Serve exactly one more forward — the client write below — and
	// refuse it the way a destination whose apply failed would.
	sinkDone := make(chan error, 1)
	go func() {
		var fwd protocol.Message
		for {
			if err := protocol.ReadMessageInto(br, &fwd, nil); err != nil {
				sinkDone <- err
				return
			}
			if fwd.Header.Opcode != protocol.OpReplicate || fwd.Header.IsResponse() {
				continue
			}
			frame, err := protocol.AppendMessage(nil, &protocol.Header{
				Opcode: protocol.OpReplicate,
				Flags:  protocol.FlagResponse,
				Cookie: fwd.Header.Cookie,
				Epoch:  fwd.Header.Epoch,
				LBA:    fwd.Header.LBA,
				Status: protocol.StatusDeviceError,
			}, nil)
			if err == nil {
				_, err = conn.Write(frame)
			}
			sinkDone <- err
			return
		}
	}()

	err = cl.Write(h, 8, bytes.Repeat([]byte{0x5A}, 4096))
	if !errors.Is(err, client.ErrDevice) {
		t.Fatalf("write with failing sink err = %v, want ErrDevice (the ack must not be StatusOK)", err)
	}
	if err := <-sinkDone; err != nil {
		t.Fatalf("sink: %v", err)
	}
}

// TestBackupRefusesClientWrites: backup role serves reads, fences writes.
func TestBackupRefusesClientWrites(t *testing.T) {
	p := startPair(t, nil)
	bc, err := client.Dial(p.b.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer bc.Close()
	bh, err := bc.Register(beWritable())
	if err != nil {
		t.Fatal(err)
	}
	err = bc.Write(bh, 0, make([]byte, 512))
	if !errors.Is(err, client.ErrStaleEpoch) {
		t.Fatalf("backup write err = %v, want ErrStaleEpoch", err)
	}
	if _, err := bc.Read(bh, 0, 512); err != nil {
		t.Fatalf("backup refused a read: %v", err)
	}
}

// TestPromoteFenceEpochRules pins the promotion/fencing state machine.
func TestPromoteFenceEpochRules(t *testing.T) {
	srv, _ := startServer(t, func(c *Config) { c.Epoch = 5 })

	if _, st := srv.Promote(4); st != protocol.StatusStaleEpoch {
		t.Fatal("promoted at a lower epoch")
	}
	if _, st := srv.Promote(5); st != protocol.StatusOK {
		t.Fatal("idempotent re-promote at current epoch refused on an unfenced primary")
	}
	if e, st := srv.Promote(7); st != protocol.StatusOK || e != 7 {
		t.Fatalf("promote(7) = %d,%v", e, st)
	}
	if e := srv.Fence(6); e != 7 {
		t.Fatalf("stale fence moved epoch to %d", e)
	}
	if srv.IsFenced() {
		t.Fatal("stale fence deposed the primary")
	}
	if e := srv.Fence(9); e != 9 || !srv.IsFenced() {
		t.Fatal("higher-epoch fence did not depose")
	}
	// Fenced at 9: promote at 9 must fail (only a strictly newer epoch
	// can resurrect a deposed primary), promote at 10 succeeds.
	if _, st := srv.Promote(9); st != protocol.StatusStaleEpoch {
		t.Fatal("promoted a fenced server at its fenced epoch")
	}
	if _, st := srv.Promote(10); st != protocol.StatusOK || srv.IsFenced() {
		t.Fatal("higher-epoch promote did not clear the fence")
	}
}

// TestFencedServerRejectsWrites: OpFence at a higher epoch makes the old
// primary refuse writes — the no-stale-epoch-write-accepted invariant.
func TestFencedServerRejectsWrites(t *testing.T) {
	srv, cl := startServer(t, func(c *Config) { c.Epoch = 1 })
	h, err := cl.Register(beWritable())
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.Write(h, 0, make([]byte, 512)); err != nil {
		t.Fatal(err)
	}
	srv.Fence(2)
	err = cl.Write(h, 0, make([]byte, 512))
	if !errors.Is(err, client.ErrStaleEpoch) {
		t.Fatalf("fenced write err = %v, want ErrStaleEpoch", err)
	}
	// Reads still served: a fenced replica remains a valid hedge target.
	if _, err := cl.Read(h, 0, 512); err != nil {
		t.Fatalf("fenced read err = %v", err)
	}
}

// TestChecksumEndToEnd: with Options.Checksum both directions carry CRC32C
// trailers; a clean server round-trips them, and server-side payload
// corruption surfaces as ErrChecksum at the client, counted on the server.
func TestChecksumEndToEnd(t *testing.T) {
	srv, _ := startServer(t, nil)
	cl, err := client.DialOptions(srv.Addr(), client.Options{Checksum: true, Timeout: 2 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	h, err := cl.Register(beWritable())
	if err != nil {
		t.Fatal(err)
	}
	data := bytes.Repeat([]byte{0x5C}, 4096)
	if err := cl.Write(h, 0, data); err != nil {
		t.Fatal(err)
	}
	got, err := cl.Read(h, 0, 4096)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("checksummed round trip corrupted data")
	}

	// Now a server whose device path corrupts read payloads after sealing.
	inj := faults.New(faults.Config{Seed: 2, CorruptProb: 1})
	srv2, _ := startServer(t, func(c *Config) { c.Faults = inj })
	cl2, err := client.DialOptions(srv2.Addr(), client.Options{Checksum: true, Timeout: 2 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer cl2.Close()
	h2, err := cl2.Register(beWritable())
	if err != nil {
		t.Fatal(err)
	}
	// Writes carry client-sealed checksums; the server verifies before
	// apply, so a corrupted inbound write bounces with ErrChecksum too.
	werr := cl2.Write(h2, 0, data)
	rerr := error(nil)
	if werr == nil {
		_, rerr = cl2.Read(h2, 0, 4096)
	}
	if !errors.Is(werr, client.ErrChecksum) && !errors.Is(rerr, client.ErrChecksum) {
		t.Fatalf("corruption not detected: write err %v, read err %v", werr, rerr)
	}
	_ = srv2
}

// metricValue reads one counter/gauge off a server's registry snapshot.
func metricValue(t *testing.T, srv *Server, name string) float64 {
	t.Helper()
	for _, m := range srv.Metrics().Snapshot().Metrics {
		if m.Name == name {
			return m.Value
		}
	}
	t.Fatalf("metric %q not registered", name)
	return 0
}

// TestInboundWriteChecksumRejected corrupts a client-sealed write payload
// in flight (raw wire, one byte flipped after sealing) and asserts the
// server refuses it with bad-checksum — corrupted data never reaches the
// device — and counts it.
func TestInboundWriteChecksumRejected(t *testing.T) {
	srv, _ := startServer(t, nil)
	c, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.SetDeadline(time.Now().Add(5 * time.Second))

	// Clean registration.
	reg := beWritable()
	rh := protocol.Header{Opcode: protocol.OpRegister}
	if err := protocol.WriteMessage(c, &rh, reg.Marshal()); err != nil {
		t.Fatal(err)
	}
	m, err := protocol.ReadMessage(c)
	if err != nil || m.Header.Status != protocol.StatusOK {
		t.Fatalf("register: %v %v", err, m)
	}
	handle := m.Header.Handle

	// Sealed write with a post-seal byte flip: exactly what a flaky NIC or
	// switch does to the frame.
	data := bytes.Repeat([]byte{3}, 4096)
	sealed := protocol.SealChecksum(data)
	sealed[100] ^= 0xA5
	wh := protocol.Header{
		Opcode: protocol.OpWrite,
		Flags:  protocol.FlagChecksum,
		Handle: handle,
		Count:  uint32(len(data)),
	}
	if err := protocol.WriteMessage(c, &wh, sealed); err != nil {
		t.Fatal(err)
	}
	m, err = protocol.ReadMessage(c)
	if err != nil {
		t.Fatal(err)
	}
	if m.Header.Status != protocol.StatusBadChecksum {
		t.Fatalf("corrupted inbound write status = %v, want bad-checksum", m.Header.Status)
	}
	if metricValue(t, srv, "checksum_errors") == 0 {
		t.Fatal("server did not count the checksum reject")
	}
	// The device must still hold zeros at that LBA.
	cl2, err := client.Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cl2.Close()
	h2, err := cl2.Register(protocol.Registration{BestEffort: true})
	if err != nil {
		t.Fatal(err)
	}
	got, err := cl2.Read(h2, 0, 4096)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, make([]byte, 4096)) {
		t.Fatal("corrupted write reached the device")
	}
}

// TestClusterClientFailsOverOnPrimaryDeath: kill the primary; the cluster
// client promotes the backup and traffic continues at a higher epoch.
func TestClusterClientFailsOverOnPrimaryDeath(t *testing.T) {
	p := startPair(t, nil)
	cl := p.dialCluster(t, client.Options{Timeout: 500 * time.Millisecond})
	h, err := cl.Register(beWritable())
	if err != nil {
		t.Fatal(err)
	}
	data := bytes.Repeat([]byte{7}, 512)
	if err := cl.Write(h, 4, data); err != nil {
		t.Fatal(err)
	}

	p.a.Close()

	// The very next writes ride the failover machinery; give the client a
	// few attempts (timeout -> rotate -> promote -> re-register -> replay).
	var lastErr error
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if lastErr = cl.Write(h, 8, data); lastErr == nil {
			break
		}
	}
	if lastErr != nil {
		t.Fatalf("writes never recovered after primary death: %v", lastErr)
	}
	if cl.Failovers() == 0 {
		t.Fatal("no failover counted")
	}
	if cl.Epoch() < 2 {
		t.Fatalf("client epoch %d after failover, want >= 2", cl.Epoch())
	}
	if p.b.IsBackupRole() {
		t.Fatal("backup not promoted")
	}
	// The pre-kill acked write survived.
	got, err := cl.Read(h, 4, 512)
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("acked write lost after failover: %v", err)
	}
}

// TestHedgedReadWinsDuringStall: the primary stalls every read for much
// longer than the hedge delay; hedges to the backup must win and keep
// observed latency far below the stall.
func TestHedgedReadWinsDuringStall(t *testing.T) {
	inj := faults.New(faults.Config{Seed: 4, DeviceStallProb: 1, DeviceStallDur: 300 * time.Millisecond})
	p := startPair(t, func(c *Config) { c.Faults = inj })
	cl := p.dialCluster(t, client.Options{
		Timeout:       5 * time.Second,
		HedgeReads:    true,
		HedgeMaxDelay: 20 * time.Millisecond,
	})
	h, err := cl.Register(beWritable())
	if err != nil {
		t.Fatal(err)
	}
	// Seed data through the stalling primary (writes stall too; patience).
	if err := cl.Write(h, 0, bytes.Repeat([]byte{9}, 512)); err != nil {
		t.Fatal(err)
	}

	for i := 0; i < 5; i++ {
		t0 := time.Now()
		if _, err := cl.Read(h, 0, 512); err != nil {
			t.Fatalf("hedged read %d: %v", i, err)
		}
		if d := time.Since(t0); d > 200*time.Millisecond {
			t.Fatalf("hedged read %d took %v; the hedge never rescued it", i, d)
		}
	}
	if cl.HedgesWon() == 0 {
		t.Fatalf("no hedge wins (issued %d)", cl.HedgesIssued())
	}
}

// TestBarrierReplicationInterleave: barriers must order client I/O even
// while write acks are deferred on the replication stream and the catch-up
// stream is concurrently walking the device. The write behind the barrier
// completes (backup-acked) before the barrier; the read behind the barrier
// sees its data.
func TestBarrierReplicationInterleave(t *testing.T) {
	p := startPair(t, func(c *Config) { c.WriteLatency = 2 * time.Millisecond })
	cl := p.dialCluster(t, client.Options{Timeout: 5 * time.Second})
	h, err := cl.Register(beWritable())
	if err != nil {
		t.Fatal(err)
	}

	// Re-attach a fresh backup session so the catch-up stream runs
	// concurrently with the barrier traffic below.
	bk2 := cluster.StartBackup(p.a.Addr(), p.b, cluster.BackupOptions{})
	defer bk2.Stop()

	want := make([]byte, 512)
	for round := 0; round < 20; round++ {
		want[0] = byte(round + 1)
		wc, err := cl.GoWrite(h, 16, want)
		if err != nil {
			t.Fatal(err)
		}
		bc, err := cl.GoBarrier(h)
		if err != nil {
			t.Fatal(err)
		}
		<-bc.Done
		if bc.Err != nil {
			t.Fatalf("barrier: %v", bc.Err)
		}
		// Ordering invariant: the barrier completed, so the write — whose
		// ack was deferred until the backup acked — must be done too.
		select {
		case <-wc.Done:
		default:
			t.Fatal("barrier completed before the replicated write's ack")
		}
		if wc.Err != nil {
			t.Fatalf("write: %v", wc.Err)
		}
		got, err := cl.Read(h, 16, 512)
		if err != nil || got[0] != byte(round+1) {
			t.Fatalf("read after barrier: %v (got[0]=%d want %d)", err, got[0], round+1)
		}
	}
}

// TestClusterFailoverSoak is the CI chaos job for the replication layer:
// concurrent writers on disjoint LBA ranges drive a cluster client with a
// verifiable-write ledger; the primary is killed mid-soak and restarted as
// a fresh backup of the promoted server; an LC probe runs throughout and
// must never be refused for overload. Afterwards: zero acked writes lost,
// at least one failover, epoch advanced, LC shed count zero.
func TestClusterFailoverSoak(t *testing.T) {
	dur := 3 * time.Second
	if testing.Short() {
		dur = time.Second
	}
	p := startPair(t, nil)
	cl := p.dialCluster(t, client.Options{Timeout: 400 * time.Millisecond, Checksum: true})
	h, err := cl.Register(beWritable())
	if err != nil {
		t.Fatal(err)
	}

	const writers = 4
	const perWriter = 256 // disjoint 512B blocks per writer
	type ledger struct {
		mu    sync.Mutex
		acked map[uint32]uint64
	}
	ledgers := make([]*ledger, writers)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	var ackTotal, errTotal atomic.Uint64
	for w := 0; w < writers; w++ {
		w := w
		ledgers[w] = &ledger{acked: make(map[uint32]uint64)}
		wg.Add(1)
		go func() {
			defer wg.Done()
			var seq uint64
			buf := make([]byte, 512)
			for {
				select {
				case <-stop:
					return
				default:
				}
				seq++
				lba := uint32(w*perWriter) + uint32(seq%perWriter)
				binary.BigEndian.PutUint64(buf, seq)
				binary.BigEndian.PutUint32(buf[8:], lba)
				if err := cl.Write(h, lba, buf); err != nil {
					errTotal.Add(1)
					continue
				}
				ackTotal.Add(1)
				ledgers[w].mu.Lock()
				ledgers[w].acked[lba] = seq
				ledgers[w].mu.Unlock()
			}
		}()
	}

	// LC probe: latency-critical reads must never be refused for overload,
	// failover or not.
	var lcShed atomic.Uint64
	wg.Add(1)
	go func() {
		defer wg.Done()
		lc, err := client.DialCluster([]string{p.a.Addr(), p.b.Addr()}, client.Options{
			Timeout: 400 * time.Millisecond,
		})
		if err != nil {
			return
		}
		defer lc.Close()
		lh, err := lc.Register(protocol.Registration{
			IOPS: 1000, ReadPercent: 100,
			LatencyP95: uint64(time.Millisecond.Nanoseconds()),
		})
		if err != nil {
			return
		}
		for {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := lc.Read(lh, 0, 512); errors.Is(err, client.ErrOverloaded) {
				lcShed.Add(1)
			}
			time.Sleep(2 * time.Millisecond)
		}
	}()

	time.Sleep(dur / 2)
	p.a.Close() // kill the primary mid-soak
	time.Sleep(dur / 2)
	close(stop)
	wg.Wait()

	if cl.Failovers() == 0 || cl.Epoch() < 2 {
		t.Fatalf("no failover happened (failovers %d, epoch %d)", cl.Failovers(), cl.Epoch())
	}
	if lcShed.Load() > 0 {
		t.Fatalf("LC probe shed %d times across the failover", lcShed.Load())
	}

	// Zero lost acked writes: replay every ledger against the survivor.
	lost := 0
	for _, ld := range ledgers {
		ld.mu.Lock()
		for lba, seq := range ld.acked {
			got, err := cl.Read(h, lba, 512)
			if err != nil ||
				binary.BigEndian.Uint64(got) != seq ||
				binary.BigEndian.Uint32(got[8:]) != lba {
				lost++
			}
		}
		ld.mu.Unlock()
	}
	if lost > 0 {
		t.Fatalf("%d acked writes lost after failover (acked %d, errored %d)",
			lost, ackTotal.Load(), errTotal.Load())
	}
	if ackTotal.Load() == 0 {
		t.Fatal("soak acked nothing; not a real run")
	}
	t.Logf("soak: %d acked, %d errored, %d failovers, epoch %d, 0 lost",
		ackTotal.Load(), errTotal.Load(), cl.Failovers(), cl.Epoch())
}
