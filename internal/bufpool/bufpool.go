// Package bufpool is the hot-path memory discipline of the real
// server/client path: a size-classed buffer pool with explicit,
// ref-counted leases.
//
// ReFlex's per-core throughput comes from an allocation-free
// run-to-completion loop (§3.2.1); the Go analogue is a steady state in
// which every wire payload, response frame and datagram scratch buffer is
// drawn from a sync.Pool instead of the garbage collector. Buffers are
// handed out as *Buf leases. A lease starts with one reference; every
// additional consumer that outlives the current owner (a replication
// forward riding a client write, a batched flush holding a response
// payload) takes Retain and the buffer returns to its class pool only
// when the final Release lands — never earlier, no matter which consumer
// finishes first.
//
// Size classes are 512B / 4KiB / 64KiB / 256KiB, matching the protocol's
// common shapes: a bare header or registration record, one logical block
// I/O, the UDP datagram ceiling, and the wire-batch/catch-up chunk bound.
// Requests larger than the top class fall through to plain allocations
// (Release then simply drops the buffer for the GC); they are off the
// steady-state path by construction.
//
// Debug poisoning (SetPoison) overwrites a buffer the moment it is
// recycled, so a use-after-release reads 0xDB garbage instead of
// plausible stale data — the regression seam for lease-lifetime tests
// under -race.
package bufpool

import (
	"fmt"
	"sync"
	"sync/atomic"
	"unsafe"
)

// Class sizes, smallest to largest.
var classSizes = [...]int{512, 4 << 10, 64 << 10, 256 << 10}

// NumClasses is the number of pooled size classes.
const NumClasses = len(classSizes)

// ClassSize returns the capacity of class c.
func ClassSize(c int) int { return classSizes[c] }

// Poison is the byte pattern written over recycled buffers when poisoning
// is enabled.
const Poison = 0xDB

var (
	pools [NumClasses]sync.Pool
	// unpooled counts Get calls that exceeded the top class.
	unpooled atomic.Uint64
	poison   atomic.Bool
)

// statStripes shards the hit/miss counters so every core's Get traffic
// lands on its own cache lines. A single global counter pair is bumped on
// every pooled Get — with per-core event loops that one line becomes the
// pool's only cross-core write traffic, which is exactly the coupling the
// shared-nothing dataplane removes. Must be a power of two.
const statStripes = 8

// statStripe is one shard of the per-class counters. The counters for all
// classes fit one 64-byte line (4 classes × 2 × 8B); the trailing pad
// keeps adjacent stripes off each other's line.
type statStripe struct {
	hits   [NumClasses]atomic.Uint64
	misses [NumClasses]atomic.Uint64
	_      [64]byte
}

var stripes [statStripes]statStripe

// stripeFor picks a stripe from the address of a stack local: goroutine
// stacks are spread across the address space, so concurrent Gets from
// different goroutines (≈ different cores) mostly land on different
// stripes. This is a statistics shard, not an identity — any skew only
// costs a little sharing, never correctness, and Stats sums all stripes.
func stripeFor() *statStripe {
	var probe byte
	return &stripes[(uintptr(unsafe.Pointer(&probe))>>10)&(statStripes-1)]
}

// SetPoison enables or disables recycle-time poisoning (tests only: it
// costs a memset per recycle).
func SetPoison(on bool) { poison.Store(on) }

// Buf is one leased buffer. The zero value is not a valid lease; obtain
// leases from Get. A Buf must not be touched after its final Release.
type Buf struct {
	p     []byte // full class-capacity backing array
	n     int    // live length (Get's request size)
	class int32  // class index, or -1 when unpooled
	refs  atomic.Int32
}

// Get leases a buffer of length n (capacity is the class size, so
// in-place appends up to Cap never reallocate). The lease starts with one
// reference.
func Get(n int) *Buf {
	c := classFor(n)
	if c < 0 {
		unpooled.Add(1)
		b := &Buf{p: make([]byte, n), n: n, class: -1}
		b.refs.Store(1)
		return b
	}
	var b *Buf
	st := stripeFor()
	if v := pools[c].Get(); v != nil {
		st.hits[c].Add(1)
		b = v.(*Buf)
	} else {
		st.misses[c].Add(1)
		b = &Buf{p: make([]byte, classSizes[c]), class: int32(c)}
	}
	b.n = n
	b.refs.Store(1)
	return b
}

// classFor picks the smallest class holding n, or -1.
func classFor(n int) int {
	for c, sz := range classSizes {
		if n <= sz {
			return c
		}
	}
	return -1
}

// Bytes returns the live n-byte window of the buffer.
func (b *Buf) Bytes() []byte { return b.p[:b.n] }

// Cap returns the full backing capacity (the class size).
func (b *Buf) Cap() int { return len(b.p) }

// Len returns the live length.
func (b *Buf) Len() int { return b.n }

// SetLen resizes the live window; n must not exceed Cap. Used when a
// frame is assembled in place (e.g. appending a checksum trailer into the
// same backing array).
func (b *Buf) SetLen(n int) {
	if n < 0 || n > len(b.p) {
		panic(fmt.Sprintf("bufpool: SetLen(%d) outside [0,%d]", n, len(b.p)))
	}
	b.n = n
}

// Retain adds a reference for an additional consumer; it must be paired
// with exactly one Release. Retain on a free buffer panics.
func (b *Buf) Retain() {
	if b.refs.Add(1) <= 1 {
		panic("bufpool: Retain on a released buffer")
	}
}

// Release drops one reference; the final release recycles the buffer into
// its class pool (poisoning it first when enabled). Releasing more times
// than retained panics — a double release is a lifetime bug, and silently
// recycling twice would hand the same backing array to two owners.
func (b *Buf) Release() {
	r := b.refs.Add(-1)
	if r > 0 {
		return
	}
	if r < 0 {
		panic("bufpool: Release of a free buffer")
	}
	if b.class < 0 {
		return // oversize one-shot: leave it to the GC
	}
	if poison.Load() {
		full := b.p
		for i := range full {
			full[i] = Poison
		}
	}
	pools[b.class].Put(b)
}

// ReleaseIf releases b when it is non-nil (sugar for optional leases).
func ReleaseIf(b *Buf) {
	if b != nil {
		b.Release()
	}
}

// ClassStats is one size class's traffic.
type ClassStats struct {
	Size   int
	Hits   uint64
	Misses uint64
}

// Stats snapshots per-class pool traffic, summed across the counter
// stripes. Hits are Gets served from the pool; misses allocated fresh
// backing (cold pool or GC-evicted).
func Stats() [NumClasses]ClassStats {
	var out [NumClasses]ClassStats
	for c := range classSizes {
		out[c].Size = classSizes[c]
		for s := range stripes {
			out[c].Hits += stripes[s].hits[c].Load()
			out[c].Misses += stripes[s].misses[c].Load()
		}
	}
	return out
}

// Unpooled returns how many Gets exceeded the top class.
func Unpooled() uint64 { return unpooled.Load() }
