package bufpool

import (
	"sync"
	"testing"
)

func TestClassSelection(t *testing.T) {
	cases := []struct {
		n    int
		size int
	}{
		{1, 512}, {512, 512}, {513, 4 << 10}, {4096, 4 << 10},
		{4097, 64 << 10}, {64 << 10, 64 << 10}, {65537, 256 << 10},
		{256 << 10, 256 << 10},
	}
	for _, c := range cases {
		b := Get(c.n)
		if b.Cap() != c.size {
			t.Fatalf("Get(%d): cap %d, want class %d", c.n, b.Cap(), c.size)
		}
		if b.Len() != c.n {
			t.Fatalf("Get(%d): len %d", c.n, b.Len())
		}
		b.Release()
	}
}

func TestOversizeUnpooled(t *testing.T) {
	before := Unpooled()
	b := Get((256 << 10) + 1)
	if b.Cap() != (256<<10)+1 {
		t.Fatalf("oversize cap %d", b.Cap())
	}
	if Unpooled() != before+1 {
		t.Fatal("unpooled counter did not move")
	}
	b.Release() // must not panic or recycle
}

// TestRefCountLifetime is the lease rule: with two consumers holding the
// buffer, the first Release must not recycle it.
func TestRefCountLifetime(t *testing.T) {
	SetPoison(true)
	defer SetPoison(false)
	b := Get(512)
	copy(b.Bytes(), "payload-under-lease")
	b.Retain() // second consumer (e.g. replication forward)
	b.Release()
	if string(b.Bytes()[:7]) != "payload" {
		t.Fatal("buffer recycled while a reference was live")
	}
	b.Release()
}

// TestPoisonOnRecycle: after the final release the recycled buffer is
// poisoned, so a use-after-release is loud.
func TestPoisonOnRecycle(t *testing.T) {
	SetPoison(true)
	defer SetPoison(false)
	b := Get(4096)
	window := b.Bytes() // illegally retained raw slice
	copy(window, "stale")
	b.Release()
	// The recycled backing is poisoned; the stale window reads 0xDB.
	for i := 0; i < 5; i++ {
		if window[i] != Poison {
			t.Fatalf("recycled byte %d = %#x, want poison", i, window[i])
		}
	}
}

func TestDoubleReleasePanics(t *testing.T) {
	b := Get(512)
	b.Release()
	defer func() {
		if recover() == nil {
			t.Fatal("double release did not panic")
		}
	}()
	// The buffer may have been recycled and re-leased by another test in
	// theory, but within this test nothing re-Gets: the refcount is 0.
	b.Release()
}

func TestRetainAfterFreePanics(t *testing.T) {
	b := Get(512)
	b.Release()
	defer func() {
		if recover() == nil {
			t.Fatal("retain-after-free did not panic")
		}
	}()
	b.Retain()
}

func TestSetLenBounds(t *testing.T) {
	b := Get(100)
	b.SetLen(512) // up to class capacity is fine
	if b.Len() != 512 {
		t.Fatal("SetLen did not take")
	}
	defer b.Release()
	defer func() {
		if recover() == nil {
			t.Fatal("SetLen beyond cap did not panic")
		}
	}()
	b.SetLen(513)
}

// TestConcurrentLeases hammers Retain/Release from many goroutines under
// -race: the recycle must happen exactly once, after the last reference.
func TestConcurrentLeases(t *testing.T) {
	SetPoison(true)
	defer SetPoison(false)
	for iter := 0; iter < 200; iter++ {
		b := Get(4096)
		payload := b.Bytes()
		for i := range payload {
			payload[i] = byte(iter)
		}
		const consumers = 8
		b.refs.Store(consumers)
		var wg sync.WaitGroup
		errs := make(chan string, consumers)
		for g := 0; g < consumers; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				// Every consumer must see intact data right up to its own
				// release.
				for i := 0; i < 64; i++ {
					if payload[i*8] != byte(iter) {
						errs <- "consumer saw recycled bytes while holding a reference"
						break
					}
				}
				b.Release()
			}()
		}
		wg.Wait()
		close(errs)
		if msg, ok := <-errs; ok {
			t.Fatal(msg)
		}
	}
}

func TestStats(t *testing.T) {
	a := Get(4096)
	a.Release()
	c := Get(4096)
	c.Release()
	st := Stats()
	if st[1].Size != 4<<10 {
		t.Fatalf("class 1 size %d", st[1].Size)
	}
	if st[1].Hits+st[1].Misses < 2 {
		t.Fatal("stats did not count gets")
	}
}

func BenchmarkGetRelease4K(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf := Get(4096)
		buf.Release()
	}
}
