package ctrlplane

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"github.com/reflex-go/reflex/internal/shard"
)

// ReplicaConfig binds one control-plane replica to the shard
// coordinator it will run while leading.
type ReplicaConfig struct {
	// Ctrl configures the consensus replica (OnLead/OnDepose are owned by
	// the Replica and must be left nil).
	Ctrl Config
	// Coord is the coordinator template: the data-plane node set, shard
	// geometry and detector tuning. Commit is owned by the Replica (the
	// quorum-log hook) and must be left nil. Reg should also be left nil:
	// a fresh coordinator is built per leadership term, and gauges
	// registered by a deposed incarnation would shadow its successor's —
	// the ctrl_* gauges carry the control-plane view instead.
	Coord shard.CoordinatorConfig
	// AntiEntropyEvery paces the leader's Reconcile pass over installed
	// maps (default 2s, 0 = default, negative = off).
	AntiEntropyEvery time.Duration
	// MoveTimeout bounds a resumed MoveShard's catch-up phase
	// (default 60s).
	MoveTimeout time.Duration
}

// Replica is one member of the replicated control plane: a consensus
// Node plus, while this replica holds the lease, a live
// shard.Coordinator whose every edit commits through the quorum log
// before it swaps in. Followers run no coordinator — they hold the
// committed state and stand by to take over.
//
// Leadership hand-off is the whole point: on OnLead the replica builds
// a FRESH coordinator, seeds it from the committed state (Adopt), and
// — when the log says a MoveShard was in flight — resumes or rolls the
// move back before anything else happens. On OnDepose the coordinator
// is stopped and discarded; its blocked commits fail with ErrNotLeader
// and it can never mint another map version.
type Replica struct {
	cfg  ReplicaConfig
	node *Node

	mu     sync.Mutex
	coord  *shard.Coordinator
	aeStop chan struct{}
}

// NewReplica builds the replica (not yet started).
func NewReplica(cfg ReplicaConfig) (*Replica, error) {
	if cfg.Ctrl.OnLead != nil || cfg.Ctrl.OnDepose != nil {
		return nil, fmt.Errorf("ctrlplane: Ctrl.OnLead/OnDepose are owned by the Replica")
	}
	if cfg.Coord.Commit != nil {
		return nil, fmt.Errorf("ctrlplane: Coord.Commit is owned by the Replica")
	}
	if cfg.AntiEntropyEvery == 0 {
		cfg.AntiEntropyEvery = 2 * time.Second
	}
	if cfg.MoveTimeout <= 0 {
		cfg.MoveTimeout = 60 * time.Second
	}
	// The coordinator journal and the consensus journal are one stream:
	// elections, commits, installs and move phases interleave in order.
	if cfg.Coord.Journal == nil {
		cfg.Coord.Journal = cfg.Ctrl.Journal
	}
	cfg.Coord.Reg = nil
	r := &Replica{cfg: cfg}
	r.cfg.Ctrl.OnLead = r.lead
	r.cfg.Ctrl.OnDepose = r.depose
	n, err := NewNode(r.cfg.Ctrl)
	if err != nil {
		return nil, err
	}
	r.node = n
	return r, nil
}

// Start launches the consensus replica.
func (r *Replica) Start() error { return r.node.Start() }

// Stop tears the replica down; if it was leading, the coordinator is
// deposed first (OnDepose runs before Stop returns).
func (r *Replica) Stop() { r.node.Stop() }

// Node exposes the consensus replica (status, metrics).
func (r *Replica) Node() *Node { return r.node }

// Coordinator returns the live coordinator while this replica leads
// (nil on followers).
func (r *Replica) Coordinator() *shard.Coordinator {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.coord
}

// MoveShard drives a live migration through the leading coordinator.
// ErrNotLeader when this replica does not hold the lease.
func (r *Replica) MoveShard(shardIdx int, destName string, timeout time.Duration) error {
	c := r.Coordinator()
	if c == nil {
		return ErrNotLeader
	}
	return c.MoveShard(shardIdx, destName, timeout)
}

// lead activates the coordinator for one leadership term. It runs on
// the node's notifier goroutine — strictly after the predecessor's
// depose — once the lease is held and the term-opening entry committed,
// so the committed state it reads is complete.
func (r *Replica) lead(term uint64) {
	st := r.node.StateSnapshot()
	ccfg := r.cfg.Coord
	ccfg.Commit = func(rec shard.EditRecord) error {
		e, err := entryFromRecord(rec)
		if err != nil {
			return err
		}
		_, err = r.node.ProposeAt(term, e)
		return err
	}
	coord, err := shard.NewCoordinator(ccfg)
	if err != nil {
		r.logf("ctrlplane: %s: coordinator build failed at term %d: %v",
			r.cfg.Ctrl.Self, term, err)
		return
	}

	if len(st.MapRaw) > 0 {
		m, err := shard.Unmarshal(st.MapRaw)
		if err != nil {
			r.logf("ctrlplane: %s: committed map unreadable at term %d: %v",
				r.cfg.Ctrl.Self, term, err)
			coord.Stop()
			return
		}
		coord.Adopt(m)
	} else {
		// First leader ever: commit the seed placement so followers start
		// from the same version-1 map.
		rec := shard.EditRecord{Kind: shard.EditSeed, Shard: -1,
			Map: coord.Map(), Detail: "initial placement"}
		e, _ := entryFromRecord(rec)
		if _, err := r.node.ProposeAt(term, e); err != nil {
			r.logf("ctrlplane: %s: seed commit failed at term %d: %v",
				r.cfg.Ctrl.Self, term, err)
			coord.Stop()
			return
		}
	}

	aeStop := make(chan struct{})
	r.mu.Lock()
	r.coord = coord
	r.aeStop = aeStop
	r.mu.Unlock()

	// Converge the data plane on the committed map, then watch it.
	if err := coord.InstallAll(); err != nil {
		r.logf("ctrlplane: %s: install on activation: %v", r.cfg.Ctrl.Self, err)
	}
	coord.StartMembership()
	if r.cfg.AntiEntropyEvery > 0 {
		go r.antiEntropy(coord, aeStop)
	}

	// The log says a move was mid-flight when the last leader died:
	// finish it or roll it back before anyone else edits the map. Runs
	// off the notifier goroutine — depose must stay deliverable.
	if st.Move != nil {
		mv := *st.Move
		go func() {
			err := coord.ResumeMove(int(mv.Shard), mv.Dest, shard.MovePhase(mv.Phase), r.cfg.MoveTimeout)
			if err != nil && !errors.Is(err, ErrNotLeader) {
				r.logf("ctrlplane: %s: resume of shard %d move: %v",
					r.cfg.Ctrl.Self, mv.Shard, err)
			}
		}()
	}
}

// depose stops and discards the term's coordinator. Runs on the
// notifier goroutine, before any successor's lead.
func (r *Replica) depose() {
	r.mu.Lock()
	coord, aeStop := r.coord, r.aeStop
	r.coord, r.aeStop = nil, nil
	r.mu.Unlock()
	if aeStop != nil {
		close(aeStop)
	}
	if coord != nil {
		// Stop aborts an in-flight move deterministically; its blocked
		// commit (if any) was already woken with ErrNotLeader by the role
		// change, so this cannot deadlock.
		coord.Stop()
	}
}

// antiEntropy periodically reconciles every live node's installed map
// against the committed one — the repair path for installs a deposed
// leader pushed stale or a partitioned node missed.
func (r *Replica) antiEntropy(coord *shard.Coordinator, stop chan struct{}) {
	t := time.NewTicker(r.cfg.AntiEntropyEvery)
	defer t.Stop()
	for {
		select {
		case <-stop:
			return
		case <-t.C:
			coord.Reconcile()
		}
	}
}

func (r *Replica) logf(format string, args ...any) {
	if r.cfg.Ctrl.Logf != nil {
		r.cfg.Ctrl.Logf(format, args...)
	}
}

// entryFromRecord maps a coordinator edit record onto its replicated
// log entry (the shard.EditKind -> EntryKind correspondence).
func entryFromRecord(rec shard.EditRecord) (Entry, error) {
	var k EntryKind
	switch rec.Kind {
	case shard.EditSeed:
		k = EntrySeed
	case shard.EditState:
		k = EntryState
	case shard.EditReassign:
		k = EntryReassign
	case shard.EditMovePrepare:
		k = EntryMovePrepare
	case shard.EditMoveCutover:
		k = EntryMoveCutover
	case shard.EditMoveRollback:
		k = EntryMoveRollback
	case shard.EditMoveDone:
		k = EntryMoveDone
	default:
		return Entry{}, fmt.Errorf("ctrlplane: unknown edit kind %d", rec.Kind)
	}
	e := Entry{Kind: k, Shard: int32(rec.Shard), Src: rec.Src, Dest: rec.Dest, Detail: rec.Detail}
	if rec.Map != nil {
		e.Map = rec.Map.Marshal()
	}
	return e, nil
}
