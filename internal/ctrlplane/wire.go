// Package ctrlplane replicates the shard coordinator's state machine —
// the authoritative shard map, membership verdicts and MoveShard phases
// — across a small set of replicas (3/5) so the control plane survives
// its leader (DESIGN.md §16). The design is Raft-lite, scoped to what
// the coordinator needs:
//
//   - A compact replicated log whose entries are exactly the
//     coordinator's edit() products (shard.EditRecord): map versions,
//     membership verdicts, move phases. The elected leader routes every
//     edit through Propose before swap()/installOn() — a deposed leader's
//     commits fail, so it can never mint a map version (the data-plane
//     servers' adopt-iff-newer install check is the second fence).
//   - A leader lease: the leader may act only while a quorum answered
//     its heartbeat round within LeaseTTL; followers refuse votes while
//     they recently heard a leader. Control-plane unavailability after a
//     leader kill is bounded by LeaseTTL + one election round.
//   - Snapshot install for late joiners: state is tiny (one map + the
//     in-flight move record + the peer set), so compaction snapshots at
//     the commit index and a lagging replica gets the whole state in one
//     OpCtrlSnapshot frame — the single-shot analogue of the data
//     plane's OpJoin catch-up stream.
//   - Autopilot: the leader removes a replica that has not answered for
//     CleanupAfter via a committed config entry, one at a time.
//
// Replicas speak one-shot protocol exchanges (OpCtrlVote, OpCtrlAppend,
// OpCtrlSnapshot) over short-lived TCP connections, the same idiom the
// shard coordinator uses for installs and probes: control traffic is
// rare and the simplicity beats connection pooling. State is in-memory;
// a restarted replica rejoins empty and catches up by snapshot. Because
// term and votedFor are not persisted either, a replica that restarts
// mid-election has forgotten any vote it cast this term — so for its
// first LeaseTTL after boot it refuses ALL votes (the restart
// quarantine, mirroring the lease-stickiness window), which keeps a
// single bounce during a contested election from granting two votes in
// one term and electing two leaders. The deployment assumption, as with
// the data plane's pairs, is that a majority does not restart
// simultaneously — see DESIGN.md §16's failure matrix.
package ctrlplane

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"net"
	"time"

	"github.com/reflex-go/reflex/internal/protocol"
)

// wire encoding helpers: big-endian, length-prefixed strings/bytes —
// the same shapes as the shard map's wire format.

func appendU8(b []byte, v uint8) []byte  { return append(b, v) }
func appendU16(b []byte, v uint16) []byte {
	return binary.BigEndian.AppendUint16(b, v)
}
func appendU32(b []byte, v uint32) []byte {
	return binary.BigEndian.AppendUint32(b, v)
}
func appendU64(b []byte, v uint64) []byte {
	return binary.BigEndian.AppendUint64(b, v)
}
func appendStr(b []byte, s string) []byte {
	b = appendU16(b, uint16(len(s)))
	return append(b, s...)
}
func appendBytes(b, p []byte) []byte {
	b = appendU32(b, uint32(len(p)))
	return append(b, p...)
}

// wireReader is a tiny cursor with sticky error handling (the shard
// map's Unmarshal idiom).
type wireReader struct {
	b   []byte
	off int
	err error
}

func (r *wireReader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if r.off+n > len(r.b) {
		r.err = fmt.Errorf("ctrlplane: truncated payload (%d of %d)", r.off+n, len(r.b))
		return nil
	}
	p := r.b[r.off : r.off+n]
	r.off += n
	return p
}

func (r *wireReader) u8() uint8 {
	p := r.take(1)
	if p == nil {
		return 0
	}
	return p[0]
}

func (r *wireReader) u16() uint16 {
	p := r.take(2)
	if p == nil {
		return 0
	}
	return binary.BigEndian.Uint16(p)
}

func (r *wireReader) u32() uint32 {
	p := r.take(4)
	if p == nil {
		return 0
	}
	return binary.BigEndian.Uint32(p)
}

func (r *wireReader) u64() uint64 {
	p := r.take(8)
	if p == nil {
		return 0
	}
	return binary.BigEndian.Uint64(p)
}

func (r *wireReader) str() string {
	n := int(r.u16())
	p := r.take(n)
	if p == nil {
		return ""
	}
	return string(p)
}

func (r *wireReader) bytes() []byte {
	n := int(r.u32())
	p := r.take(n)
	if p == nil {
		return nil
	}
	return append([]byte(nil), p...)
}

// dialFunc dials one replica address (test seam; nil = net.DialTimeout).
type dialFunc func(addr string) (net.Conn, error)

// ctrlRequest performs one request/response exchange on a fresh
// connection, bounded by timeout end to end — the control plane's only
// client-side transport.
func ctrlRequest(dial dialFunc, addr string, timeout time.Duration, op protocol.Opcode, payload []byte) ([]byte, error) {
	var c net.Conn
	var err error
	if dial != nil {
		c, err = dial(addr)
	} else {
		c, err = net.DialTimeout("tcp", addr, timeout)
	}
	if err != nil {
		return nil, err
	}
	defer c.Close()
	c.SetDeadline(time.Now().Add(timeout))
	hdr := protocol.Header{Opcode: op}
	frame, err := protocol.AppendMessage(nil, &hdr, payload)
	if err != nil {
		return nil, err
	}
	if _, err := c.Write(frame); err != nil {
		return nil, err
	}
	br := bufio.NewReaderSize(c, 64<<10)
	var m protocol.Message
	if err := protocol.ReadMessageInto(br, &m, nil); err != nil {
		return nil, err
	}
	if m.Header.Opcode != op || !m.Header.IsResponse() {
		return nil, fmt.Errorf("ctrlplane: unexpected %s response to %s from %s",
			m.Header.Opcode, op, addr)
	}
	if m.Header.Status != protocol.StatusOK {
		return nil, fmt.Errorf("ctrlplane: %s at %s refused: %s", op, addr, m.Header.Status)
	}
	return append([]byte(nil), m.Payload...), nil
}

// voteReq/voteResp are the OpCtrlVote payloads.
type voteReq struct {
	Term      uint64
	Candidate string
	LastIndex uint64
	LastTerm  uint64
}

type voteResp struct {
	Term    uint64
	Granted bool
}

func (v *voteReq) marshal() []byte {
	b := appendU64(nil, v.Term)
	b = appendStr(b, v.Candidate)
	b = appendU64(b, v.LastIndex)
	return appendU64(b, v.LastTerm)
}

func parseVoteReq(p []byte) (*voteReq, error) {
	r := wireReader{b: p}
	v := &voteReq{Term: r.u64(), Candidate: r.str(), LastIndex: r.u64(), LastTerm: r.u64()}
	return v, r.err
}

func (v *voteResp) marshal() []byte {
	b := appendU64(nil, v.Term)
	g := uint8(0)
	if v.Granted {
		g = 1
	}
	return appendU8(b, g)
}

func parseVoteResp(p []byte) (*voteResp, error) {
	r := wireReader{b: p}
	v := &voteResp{Term: r.u64(), Granted: r.u8() != 0}
	return v, r.err
}

// appendReq/appendResp are the OpCtrlAppend payloads: heartbeat, lease
// renewal and log shipment in one frame.
type appendReq struct {
	Term      uint64
	Leader    string
	PrevIndex uint64
	PrevTerm  uint64
	Commit    uint64
	Entries   []Entry
}

type appendResp struct {
	Term uint64
	OK   bool
	// Match is the highest index known replicated on success; on a log
	// mismatch it is the follower's lastIndex+1 hint for faster backoff.
	Match uint64
}

func (a *appendReq) marshal() []byte {
	b := appendU64(nil, a.Term)
	b = appendStr(b, a.Leader)
	b = appendU64(b, a.PrevIndex)
	b = appendU64(b, a.PrevTerm)
	b = appendU64(b, a.Commit)
	b = appendU16(b, uint16(len(a.Entries)))
	for i := range a.Entries {
		b = a.Entries[i].marshal(b)
	}
	return b
}

func parseAppendReq(p []byte) (*appendReq, error) {
	r := wireReader{b: p}
	a := &appendReq{Term: r.u64(), Leader: r.str(), PrevIndex: r.u64(),
		PrevTerm: r.u64(), Commit: r.u64()}
	n := int(r.u16())
	for i := 0; i < n && r.err == nil; i++ {
		a.Entries = append(a.Entries, parseEntry(&r))
	}
	return a, r.err
}

func (a *appendResp) marshal() []byte {
	b := appendU64(nil, a.Term)
	ok := uint8(0)
	if a.OK {
		ok = 1
	}
	b = appendU8(b, ok)
	return appendU64(b, a.Match)
}

func parseAppendResp(p []byte) (*appendResp, error) {
	r := wireReader{b: p}
	a := &appendResp{Term: r.u64(), OK: r.u8() != 0, Match: r.u64()}
	return a, r.err
}

// snapReq/snapResp are the OpCtrlSnapshot payloads: the whole state at
// the leader's compaction base in one frame.
type snapReq struct {
	Term      uint64
	Leader    string
	SnapIndex uint64
	SnapTerm  uint64
	State     []byte // marshaled State
}

type snapResp struct {
	Term uint64
	OK   bool
}

func (s *snapReq) marshal() []byte {
	b := appendU64(nil, s.Term)
	b = appendStr(b, s.Leader)
	b = appendU64(b, s.SnapIndex)
	b = appendU64(b, s.SnapTerm)
	return appendBytes(b, s.State)
}

func parseSnapReq(p []byte) (*snapReq, error) {
	r := wireReader{b: p}
	s := &snapReq{Term: r.u64(), Leader: r.str(), SnapIndex: r.u64(),
		SnapTerm: r.u64(), State: r.bytes()}
	return s, r.err
}

func (s *snapResp) marshal() []byte {
	b := appendU64(nil, s.Term)
	ok := uint8(0)
	if s.OK {
		ok = 1
	}
	return appendU8(b, ok)
}

func parseSnapResp(p []byte) (*snapResp, error) {
	r := wireReader{b: p}
	s := &snapResp{Term: r.u64(), OK: r.u8() != 0}
	return s, r.err
}
