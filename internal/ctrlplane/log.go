package ctrlplane

import "fmt"

// EntryKind classifies one replicated-log entry. Map-carrying kinds
// mirror shard.EditKind one for one; Noop and Config are control-plane
// internal.
type EntryKind uint8

const (
	// EntryNoop is the term-opening entry a new leader appends to commit
	// its predecessors' tail (the Raft no-op barrier: a leader may only
	// count replicas toward commit for entries of its own term).
	EntryNoop EntryKind = iota
	// EntrySeed is the initial placement map from the first leader.
	EntrySeed
	// EntryState is a membership-state annotation riding on the map.
	EntryState
	// EntryReassign moved a dead node's shards to ring successors.
	EntryReassign
	// EntryMovePrepare opened a MoveShard dual-ownership window.
	EntryMovePrepare
	// EntryMoveCutover made the move destination authoritative.
	EntryMoveCutover
	// EntryMoveRollback cleared a failed move's window.
	EntryMoveRollback
	// EntryMoveDone cleared the in-flight move record (no map change).
	EntryMoveDone
	// EntryConfig removes a dead replica from the peer set (autopilot;
	// Src is the action — only "remove" today — and Dest the peer).
	EntryConfig
)

// String names the entry kind (journal detail lines).
func (k EntryKind) String() string {
	switch k {
	case EntryNoop:
		return "noop"
	case EntrySeed:
		return "seed"
	case EntryState:
		return "state"
	case EntryReassign:
		return "reassign"
	case EntryMovePrepare:
		return "move-prepare"
	case EntryMoveCutover:
		return "move-cutover"
	case EntryMoveRollback:
		return "move-rollback"
	case EntryMoveDone:
		return "move-done"
	case EntryConfig:
		return "config"
	default:
		return fmt.Sprintf("entry(%d)", uint8(k))
	}
}

// Entry is one replicated-log record: a coordinator edit() product plus
// the log position stamped by the leader that appended it.
type Entry struct {
	Index uint64
	Term  uint64
	Kind  EntryKind
	// Shard is the shard the entry concerns (-1 when not shard-scoped).
	Shard int32
	// Src/Dest name the nodes involved (move source/destination, the
	// membership-verdict node, or the removed peer for EntryConfig).
	Src, Dest string
	// Map is the marshaled shard.Map this entry installs (nil for Noop,
	// MoveDone and Config).
	Map []byte
	// Detail is the human-readable specifics (journal passthrough).
	Detail string
}

func (e *Entry) marshal(b []byte) []byte {
	b = appendU64(b, e.Index)
	b = appendU64(b, e.Term)
	b = appendU8(b, uint8(e.Kind))
	b = appendU32(b, uint32(e.Shard))
	b = appendStr(b, e.Src)
	b = appendStr(b, e.Dest)
	b = appendBytes(b, e.Map)
	return appendStr(b, e.Detail)
}

func parseEntry(r *wireReader) Entry {
	return Entry{
		Index:  r.u64(),
		Term:   r.u64(),
		Kind:   EntryKind(r.u8()),
		Shard:  int32(r.u32()),
		Src:    r.str(),
		Dest:   r.str(),
		Map:    r.bytes(),
		Detail: r.str(),
	}
}

// raftLog is the in-memory replicated log with a compaction base:
// entries[i].Index == base+1+i, and everything at or before base is
// covered by the snapshot state held alongside (node.snapState).
type raftLog struct {
	base     uint64 // index the snapshot covers through (0 = none)
	baseTerm uint64
	entries  []Entry
}

func (l *raftLog) lastIndex() uint64 {
	return l.base + uint64(len(l.entries))
}

func (l *raftLog) lastTerm() uint64 {
	if n := len(l.entries); n > 0 {
		return l.entries[n-1].Term
	}
	return l.baseTerm
}

// termAt returns the term of the entry at index i; ok is false when i
// is beyond the log or already compacted away (i < base).
func (l *raftLog) termAt(i uint64) (uint64, bool) {
	if i == l.base {
		return l.baseTerm, true
	}
	if i < l.base || i > l.lastIndex() {
		return 0, false
	}
	return l.entries[i-l.base-1].Term, true
}

// at returns the entry at index i (nil when compacted or out of range).
func (l *raftLog) at(i uint64) *Entry {
	if i <= l.base || i > l.lastIndex() {
		return nil
	}
	return &l.entries[i-l.base-1]
}

// slice returns up to max entries starting at index from (copies — the
// caller serializes them outside the node lock).
func (l *raftLog) slice(from uint64, max int) []Entry {
	if from <= l.base {
		return nil
	}
	if from > l.lastIndex() {
		return nil
	}
	s := l.entries[from-l.base-1:]
	if len(s) > max {
		s = s[:max]
	}
	return append([]Entry(nil), s...)
}

// append adds e at the tail (the caller stamps Index/Term).
func (l *raftLog) append(e Entry) {
	l.entries = append(l.entries, e)
}

// truncateFrom drops every entry at index i and beyond (conflicting
// suffix from a deposed leader).
func (l *raftLog) truncateFrom(i uint64) {
	if i <= l.base {
		l.entries = nil
		return
	}
	if i > l.lastIndex() {
		return
	}
	l.entries = l.entries[:i-l.base-1]
}

// compactTo drops every entry through index i, which becomes the new
// snapshot base with term t.
func (l *raftLog) compactTo(i, t uint64) {
	if i <= l.base {
		return
	}
	if i >= l.lastIndex() {
		l.entries = nil
	} else {
		tail := l.entries[i-l.base:]
		l.entries = append([]Entry(nil), tail...)
	}
	l.base, l.baseTerm = i, t
}

// reset replaces the whole log with an installed snapshot's position.
func (l *raftLog) reset(i, t uint64) {
	l.base, l.baseTerm, l.entries = i, t, nil
}
